// Ablation benchmarks for the design choices DESIGN.md calls out: tree
// pruning, the C4.5 average-gain guard's companion knobs (depth), forest
// size, kNN vote weighting, Naive Bayes smoothing, and imputation
// strategy. Each bench reports the quality metric of both arms so the
// trade-off is visible in one line of bench output.
package openbi

import (
	"testing"

	"openbi/internal/clean"
	"openbi/internal/dq"
	"openbi/internal/eval"
	"openbi/internal/inject"
	"openbi/internal/mining"
	"openbi/internal/synth"
)

// noisyDataset returns the fixture used by the classifier ablations: an
// easy task corrupted with 25% label noise, where regularization choices
// actually matter.
func noisyDataset(b *testing.B) *mining.Dataset {
	b.Helper()
	ds, err := synth.MakeClassification(synth.ClassificationSpec{Rows: 300, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	dirty, err := inject.Apply(ds.T, ds.ClassCol,
		[]inject.Spec{{Criterion: dq.LabelNoise, Severity: 0.25}}, 7)
	if err != nil {
		b.Fatal(err)
	}
	out, err := mining.NewDataset(dirty, ds.ClassCol)
	if err != nil {
		b.Fatal(err)
	}
	return out
}

func cvKappa(b *testing.B, f mining.Factory, ds *mining.Dataset) float64 {
	b.Helper()
	m, err := eval.CrossValidate(f, ds, 3, 5)
	if err != nil {
		b.Fatal(err)
	}
	return m.Kappa
}

// BenchmarkAblation_TreePruning compares the pruned and unpruned C4.5
// tree under label noise (pruning is the tree's noise defence).
func BenchmarkAblation_TreePruning(b *testing.B) {
	ds := noisyDataset(b)
	var pruned, unpruned float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pruned = cvKappa(b, func() mining.Classifier {
			return &mining.DecisionTree{Criterion: mining.GainRatio, Prune: true}
		}, ds)
		unpruned = cvKappa(b, func() mining.Classifier {
			return &mining.DecisionTree{Criterion: mining.GainRatio, Prune: false}
		}, ds)
	}
	b.ReportMetric(pruned, "kappa-pruned")
	b.ReportMetric(unpruned, "kappa-unpruned")
}

// BenchmarkAblation_ForestSize compares 5- vs 50-tree forests: quality
// bought per tree, paid for in ns/op.
func BenchmarkAblation_ForestSize(b *testing.B) {
	ds := noisyDataset(b)
	var small, large float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		small = cvKappa(b, func() mining.Classifier { return mining.NewRandomForest(5, 1) }, ds)
		large = cvKappa(b, func() mining.Classifier { return mining.NewRandomForest(50, 1) }, ds)
	}
	b.ReportMetric(small, "kappa-5-trees")
	b.ReportMetric(large, "kappa-50-trees")
}

// BenchmarkAblation_KNNWeighting compares plain and distance-weighted
// 5-NN votes under attribute noise.
func BenchmarkAblation_KNNWeighting(b *testing.B) {
	base, err := synth.MakeClassification(synth.ClassificationSpec{Rows: 300, Seed: 78})
	if err != nil {
		b.Fatal(err)
	}
	dirtyT, err := inject.Apply(base.T, base.ClassCol,
		[]inject.Spec{{Criterion: dq.AttributeNoise, Severity: 0.3}}, 8)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := mining.NewDataset(dirtyT, base.ClassCol)
	if err != nil {
		b.Fatal(err)
	}
	var plain, weighted float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain = cvKappa(b, func() mining.Classifier { return &mining.KNN{K: 5} }, ds)
		weighted = cvKappa(b, func() mining.Classifier { return &mining.KNN{K: 5, Weighted: true} }, ds)
	}
	b.ReportMetric(plain, "kappa-plain")
	b.ReportMetric(weighted, "kappa-weighted")
}

// BenchmarkAblation_NaiveBayesSmoothing compares Laplace 1 vs 0.01 on a
// sparse nominal-heavy task with missing cells.
func BenchmarkAblation_NaiveBayesSmoothing(b *testing.B) {
	base, err := synth.MakeClassification(synth.ClassificationSpec{
		Rows: 200, Seed: 79, Numeric: 1, Nominal: 6, NominalLevels: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	dirtyT, err := inject.Apply(base.T, base.ClassCol,
		[]inject.Spec{{Criterion: dq.Completeness, Severity: 0.3}}, 9)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := mining.NewDataset(dirtyT, base.ClassCol)
	if err != nil {
		b.Fatal(err)
	}
	var strong, weak float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strong = cvKappa(b, func() mining.Classifier { return &mining.NaiveBayes{Laplace: 1} }, ds)
		weak = cvKappa(b, func() mining.Classifier { return &mining.NaiveBayes{Laplace: 0.01} }, ds)
	}
	b.ReportMetric(strong, "kappa-laplace-1")
	b.ReportMetric(weak, "kappa-laplace-0.01")
}

// BenchmarkAblation_Imputation compares mean/mode, median and kNN
// imputation by the downstream classifier quality they enable under 35%
// MNAR missingness (the hardest mechanism: value-dependent deletion).
func BenchmarkAblation_Imputation(b *testing.B) {
	base, err := synth.MakeClassification(synth.ClassificationSpec{Rows: 250, Seed: 80})
	if err != nil {
		b.Fatal(err)
	}
	dirtyT, err := inject.Apply(base.T, base.ClassCol, []inject.Spec{
		{Criterion: dq.Completeness, Severity: 0.35, Mechanism: inject.MNAR},
	}, 10)
	if err != nil {
		b.Fatal(err)
	}
	factory := func() mining.Classifier { return mining.NewKNN(5) }
	strategies := []struct {
		name string
		imp  clean.Imputer
	}{
		{"mean", clean.Imputer{Strategy: clean.MeanMode, ExcludeColumns: []string{"class"}}},
		{"median", clean.Imputer{Strategy: clean.Median, ExcludeColumns: []string{"class"}}},
		{"knn", clean.Imputer{Strategy: clean.KNNImpute, K: 5, ExcludeColumns: []string{"class"}}},
	}
	results := make([]float64, len(strategies))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for si, s := range strategies {
			repaired, _, err := s.imp.Apply(dirtyT)
			if err != nil {
				b.Fatal(err)
			}
			ds, err := mining.NewDataset(repaired, base.ClassCol)
			if err != nil {
				b.Fatal(err)
			}
			results[si] = cvKappa(b, factory, ds)
		}
	}
	for si, s := range strategies {
		b.ReportMetric(results[si], "kappa-"+s.name)
	}
}

// BenchmarkAblation_MissingnessMechanism holds the classifier fixed
// (naive Bayes) and varies the deletion mechanism at 30% — MCAR vs MAR vs
// MNAR — the ablation behind the inject package's Mechanism knob.
func BenchmarkAblation_MissingnessMechanism(b *testing.B) {
	base, err := synth.MakeClassification(synth.ClassificationSpec{Rows: 250, Seed: 81})
	if err != nil {
		b.Fatal(err)
	}
	factory := func() mining.Classifier { return mining.NewNaiveBayes() }
	mechs := []inject.Mechanism{inject.MCAR, inject.MAR, inject.MNAR}
	results := make([]float64, len(mechs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for mi, mech := range mechs {
			dirtyT, err := inject.Apply(base.T, base.ClassCol, []inject.Spec{
				{Criterion: dq.Completeness, Severity: 0.3, Mechanism: mech},
			}, 11)
			if err != nil {
				b.Fatal(err)
			}
			ds, err := mining.NewDataset(dirtyT, base.ClassCol)
			if err != nil {
				b.Fatal(err)
			}
			results[mi] = cvKappa(b, factory, ds)
		}
	}
	for mi, mech := range mechs {
		b.ReportMetric(results[mi], "kappa-"+mech.String())
	}
}
