# Developer entry points; CI runs the same commands (see .github/workflows).

.PHONY: build test race bench verify

build:
	go build ./... && go build ./examples/...

test:
	go test ./...

race:
	go test -race . ./internal/core/... ./internal/kb/... ./internal/experiment/... ./internal/eval/... ./internal/mining/... ./internal/server/... ./internal/rdf/... ./internal/dq/...

# Refresh the committed benchmark snapshot (BENCH_experiments.json); see
# scripts/bench.sh for BENCHTIME / BENCH / OUT overrides.
bench:
	./scripts/bench.sh

verify: build test
