# Developer entry points; CI runs the same commands (see .github/workflows).

.PHONY: build test race bench bench-check verify

build:
	go build ./... && go build ./examples/...

test:
	go test ./...

race:
	go test -race . ./internal/core/... ./internal/kb/... ./internal/experiment/... ./internal/eval/... ./internal/mining/... ./internal/server/... ./internal/rdf/... ./internal/dq/...

# Refresh the committed benchmark snapshot (BENCH_experiments.json); see
# scripts/bench.sh for BENCHTIME / BENCH / OUT overrides.
bench:
	./scripts/bench.sh

# Perf regression gate: rerun the bench suite into a scratch snapshot and
# fail on >25% ns/op or allocs/op regression against the committed
# baselines (see scripts/benchcmp).
bench-check:
	OUT=/tmp/openbi_bench_check.json INGEST_OUT=/tmp/openbi_bench_check_ingest.json ./scripts/bench.sh
	go run ./scripts/benchcmp BENCH_experiments.json /tmp/openbi_bench_check.json
	go run ./scripts/benchcmp BENCH_ingest.json /tmp/openbi_bench_check_ingest.json

verify: build test
