# Developer entry points; CI runs the same commands (see .github/workflows).

.PHONY: build test race bench bench-check replay-check kb-verify verify

build:
	go build ./... && go build ./examples/...

test:
	go test ./...

race:
	go test -race . ./internal/core/... ./internal/kb/... ./internal/experiment/... ./internal/eval/... ./internal/mining/... ./internal/server/... ./internal/rdf/... ./internal/dq/... ./internal/olap/... ./internal/clean/... ./internal/provenance/...

# Refresh the committed benchmark snapshot (BENCH_experiments.json); see
# scripts/bench.sh for BENCHTIME / BENCH / OUT overrides.
bench:
	./scripts/bench.sh

# Perf regression gate: rerun the bench suite into a scratch snapshot and
# fail on >25% ns/op or allocs/op regression against the committed
# baselines (see scripts/benchcmp). The serve curve gates p99-as-ns/op with
# a 100% band: load-test latency on a shared runner is far noisier than a
# microbenchmark, and a real admission/batching regression shows up as a
# multiple, not as +40%.
bench-check:
	OUT=/tmp/openbi_bench_check.json INGEST_OUT=/tmp/openbi_bench_check_ingest.json SERVE_OUT=/tmp/openbi_bench_check_serve.json ./scripts/bench.sh
	go run ./scripts/benchcmp BENCH_experiments.json /tmp/openbi_bench_check.json
	go run ./scripts/benchcmp BENCH_ingest.json /tmp/openbi_bench_check_ingest.json
	go run ./scripts/benchcmp -time-tolerance 1.0 BENCH_serve.json /tmp/openbi_bench_check_serve.json

# Behavior regression gate: record a capture against the seed KB, replay
# it against the same KB (-fail-on-diff: advice is byte-stable, any diff
# is a real change), and round-trip a promoted golden (see
# scripts/replaycheck.sh for REPLAY_DURATION / REPLAY_KB overrides).
replay-check:
	./scripts/replaycheck.sh

# Provenance gate: build a KB with a signed manifest, verify it, flip one
# byte inside a record (JSON stays parseable), and require the verifier to
# refuse the KB naming record 0 (see scripts/kbverify.sh).
kb-verify:
	./scripts/kbverify.sh

verify: build test
