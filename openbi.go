// Package openbi is the public facade of the OpenBI reproduction — an
// implementation of "Open Business Intelligence: on the importance of data
// quality awareness in user-friendly data mining" (Mazón et al., LWDM @
// EDBT 2012).
//
// The paper's pipeline, end to end:
//
//	eng, _ := openbi.New(openbi.WithSeed(42))
//	ds, _ := synth-or-ingested dataset
//	eng.RunExperiments(ctx, ds, "reference")          // Figure 2, left: build DQ4DM KB
//	adv, _ := eng.Advisor()                           // online session, pinned KB snapshot
//	advice, model, _ := adv.Advise(ctx, t, "class")   // Figure 2, right: "the best option is ALGORITHM X"
//	result, _ := adv.MineWithAdvice(ctx, t, "class", base) // mine + share back as LOD
//
// The Engine's configuration is immutable after New (functional options
// replace the old mutable fields), the knowledge base is served through
// atomically-swapped immutable snapshots, and every pipeline entry point
// takes a context.Context — so one populated Engine safely serves any
// number of concurrent Advise/MineWithAdvice callers while experiments
// re-run. Failures across the pipeline match the exported Err* sentinels
// via errors.Is.
//
// The heavy lifting lives in internal packages (table, rdf, cwm, dq,
// inject, clean, mining, eval, kb, experiment, olap, synth, report); this
// package re-exports the surface a downstream user needs.
package openbi

import (
	"crypto/ed25519"
	"io"
	"time"

	"openbi/internal/core"
	"openbi/internal/dq"
	"openbi/internal/eval"
	"openbi/internal/experiment"
	"openbi/internal/inject"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/provenance"
	"openbi/internal/rdf"
	"openbi/internal/server"
	"openbi/internal/synth"
	"openbi/internal/table"
)

// Engine is the OpenBI serving object; see core.Engine.
type Engine = core.Engine

// Option configures an Engine at construction time; see With*.
type Option = core.Option

// New builds an immutable, concurrency-safe Engine with an empty DQ4DM
// knowledge base. It fails eagerly on invalid options (ErrBadConfig,
// ErrUnknownAlgorithm).
func New(opts ...Option) (*Engine, error) { return core.New(opts...) }

// WithSeed sets the seed driving all stochastic components.
func WithSeed(seed int64) Option { return core.WithSeed(seed) }

// WithFolds sets the cross-validation fold count (default 5).
func WithFolds(folds int) Option { return core.WithFolds(folds) }

// WithWorkers bounds experiment parallelism (0 = GOMAXPROCS).
func WithWorkers(workers int) Option { return core.WithWorkers(workers) }

// WithCombos sets the Phase-2 mixed-criteria combinations.
func WithCombos(combos [][]Criterion) Option { return core.WithCombos(combos) }

// WithAlgorithms restricts the mining suite to the named algorithms.
func WithAlgorithms(names ...string) Option { return core.WithAlgorithms(names...) }

// WithCorpus registers a named experiment corpus; RunCorpora mines the
// grid over every registered corpus so the knowledge base learns from
// several data shapes ("scenario diversity") instead of one synthetic
// reference.
func WithCorpus(name string, ds *Dataset) Option { return core.WithCorpus(name, ds) }

// WithProgress streams per-record Events from a RunExperiments call.
func WithProgress(sink func(Event)) RunOption { return core.WithProgress(sink) }

// WithCheckpoint makes a RunExperiments call resumable: completed grid
// cells are journaled under dir and a rerun with the same configuration
// resumes mid-grid instead of restarting. The final knowledge base is
// byte-identical either way.
func WithCheckpoint(dir string) RunOption { return core.WithCheckpoint(dir) }

// NewEngine returns an Engine with an empty DQ4DM knowledge base.
//
// Deprecated: use New(WithSeed(seed)) and the WithFolds / WithWorkers
// options instead of the removed mutable fields.
func NewEngine(seed int64) *Engine { return core.NewEngine(seed) }

// Re-exported model types.
type (
	// Table is the columnar open-data table.
	Table = table.Table
	// Access is the read-only contract shared by *Table and the zero-copy
	// *TableView; pipeline entry points accept it so callers can pass
	// either without copying.
	Access = table.Access
	// TableView is an immutable zero-copy row/column window onto a Table.
	TableView = table.View
	// Column is one typed table column.
	Column = table.Column
	// Dataset is a supervised view over a Table.
	Dataset = mining.Dataset
	// Graph is an in-memory RDF graph (Linked Open Data).
	Graph = rdf.Graph
	// Triple is one RDF statement.
	Triple = rdf.Triple
	// TripleFunc consumes triples from a streaming RDF decoder.
	TripleFunc = rdf.TripleFunc
	// ProjectOptions controls the entity→table projection (batch and
	// streaming).
	ProjectOptions = rdf.ProjectOptions
	// Projector is the incremental entity→table projection: feed triples
	// with Add, finish with Table.
	Projector = rdf.Projector
	// LODProfile is the graph-level data-quality profile.
	LODProfile = dq.LODProfile
	// LODSketch computes an LODProfile from a triple stream in one pass;
	// partition sketches Merge deterministically.
	LODSketch = dq.LODSketch
	// LODIngest is the result of one streaming RDF ingestion (projected
	// table + graph-level profile from a single pass).
	LODIngest = core.LODIngest
	// Profile is a measured data-quality fingerprint.
	Profile = dq.Profile
	// Criterion identifies one data-quality criterion.
	Criterion = dq.Criterion
	// Advice is the advisor's ranked recommendation.
	Advice = kb.Advice
	// Advisor is a read-only advice session pinned to one KB snapshot.
	Advisor = core.Advisor
	// KnowledgeBase is the write-side DQ4DM experiment store.
	KnowledgeBase = kb.KnowledgeBase
	// Snapshot is the immutable, lock-free read side of the knowledge
	// base, as served by Engine.KB and Advisor sessions.
	Snapshot = kb.Snapshot
	// Event is one experiment-progress notification (see WithProgress).
	Event = experiment.Event
	// RunOption configures one RunExperiments call.
	RunOption = core.RunOption
	// ShardPlan is a stable partition of the experiment grid into n shard
	// jobs (see Engine.RunExperimentShard and MergeKB).
	ShardPlan = experiment.ShardPlan
	// Shard is one shard job's output: positioned experiment records plus
	// the run identity MergeKB validates.
	Shard = kb.Shard
	// Corpus is one named experiment dataset (see WithCorpus).
	Corpus = core.Corpus
	// Metrics is a classification quality record.
	Metrics = eval.Metrics
	// InjectSpec describes one controlled data-quality defect.
	InjectSpec = inject.Spec
	// Model is an annotated common representation (CWM catalog + profile).
	Model = core.Model
	// MiningResult is the outcome of MineWithAdvice: chosen algorithm,
	// holdout metrics, the advice and model that picked it, and the
	// predictions shared back as LOD.
	MiningResult = core.MiningResult
	// ClassificationSpec parameterizes the synthetic dataset generator.
	ClassificationSpec = synth.ClassificationSpec
	// LODSpec parameterizes the synthetic LOD generators.
	LODSpec = synth.LODSpec
)

// Data-quality criteria (dq.AllCriteria order).
const (
	Completeness   = dq.Completeness
	Duplicates     = dq.Duplicates
	Correlation    = dq.Correlation
	Imbalance      = dq.Imbalance
	LabelNoise     = dq.LabelNoise
	AttributeNoise = dq.AttributeNoise
	Dimensionality = dq.Dimensionality
)

// AllCriteria lists every data-quality criterion in canonical order.
func AllCriteria() []Criterion { return dq.AllCriteria() }

// MeasureQuality profiles a table against every criterion; classColumn may
// be "" when there is no classification target.
func MeasureQuality(t *Table, classColumn string) Profile {
	idx := -1
	if classColumn != "" {
		idx = t.ColumnIndex(classColumn)
	}
	return dq.Measure(t, dq.MeasureOptions{ClassColumn: idx})
}

// Corrupt injects controlled data-quality defects into a copy of t
// (§3.1's "introduce some data quality problems in a controlled manner").
// Only the columns a defect touches are deep-copied; the rest share
// storage with t, so t must not be mutated afterwards. A non-empty
// classColumn absent from t fails with ErrColumnNotFound.
func Corrupt(t Access, classColumn string, specs []InjectSpec, seed int64) (*Table, error) {
	return core.CorruptForDemo(t, classColumn, specs, seed)
}

// MakeClassification generates a clean synthetic classification dataset.
func MakeClassification(spec ClassificationSpec) (*Dataset, error) {
	return synth.MakeClassification(spec)
}

// MunicipalBudgetLOD generates an open-government municipal-finance LOD
// graph (see synth.MunicipalBudgetLOD).
func MunicipalBudgetLOD(spec LODSpec) (*Graph, error) { return synth.MunicipalBudgetLOD(spec) }

// AirQualityLOD generates an air-quality monitoring LOD graph.
func AirQualityLOD(spec LODSpec) (*Graph, error) { return synth.AirQualityLOD(spec) }

// EducationLOD generates a school-statistics LOD graph.
func EducationLOD(spec LODSpec) (*Graph, error) { return synth.EducationLOD(spec) }

// ProjectLargestClass flattens an RDF graph onto its most populous entity
// class — the default LOD → common-representation step.
func ProjectLargestClass(g *Graph) (*Table, error) { return core.ProjectLargestClass(g) }

// ---- Streaming LOD ingestion (constant-memory; see internal/rdf, dq, core) ----

// StreamRDF decodes RDF from r ("nt" or "ttl") in one pass, invoking fn
// per triple. Memory is bounded by the longest statement, not the graph,
// so documents larger than memory stream fine. Parse failures match
// ErrBadSyntax; unknown formats ErrUnsupportedFormat.
func StreamRDF(r io.Reader, format string, fn TripleFunc) error { return rdf.Stream(r, format, fn) }

// StreamProject decodes RDF from r straight into a projected table,
// byte-identical to Project over the loaded graph, without materializing
// the graph; memory scales with the projected content (distinct
// subject/predicate/object combinations), not the raw triple count.
func StreamProject(r io.Reader, format string, opts ProjectOptions) (*Table, error) {
	return rdf.StreamProject(r, format, opts)
}

// NewProjector returns an incremental entity→table projector (validates
// opts like Project).
func NewProjector(opts ProjectOptions) (*Projector, error) { return rdf.NewProjector(opts) }

// MeasureLOD profiles a graph's quality criteria before projection.
func MeasureLOD(g *Graph) LODProfile { return dq.MeasureLOD(g) }

// NewLODSketch returns an empty streaming LOD profile sketch.
func NewLODSketch() *LODSketch { return dq.NewLODSketch() }

// NewLODSketchAt returns a sketch for a stream partition beginning at the
// given raw-triple offset; merged partition sketches profile exactly like
// one monolithic pass, in any merge order.
func NewLODSketchAt(base uint64) *LODSketch { return dq.NewLODSketchAt(base) }

// IngestLOD streams an RDF document once, feeding the quality sketch and
// the table projector from the same constant-memory decoder pass; see
// core.IngestLOD for the precise memory contract.
func IngestLOD(r io.Reader, format string, opts ProjectOptions) (*LODIngest, error) {
	return core.IngestLOD(r, format, opts)
}

// WithLODCorpus registers an experiment corpus ingested from an RDF
// stream at New; RunCorpora then learns degradation curves straight from
// Linked Open Data next to tabular corpora.
func WithLODCorpus(name string, r io.Reader, format string, classColumn string) Option {
	return core.WithLODCorpus(name, r, format, classColumn)
}

// SuiteNames lists the registry names of the mining suite the advisor
// arbitrates between.
func SuiteNames() []string { return mining.SuiteNames() }

// ---- Scaling out (sharded KB construction; see internal/experiment) ----

// ParseShardPlan parses the CLI's "index/count" shard syntax (0-based),
// e.g. "0/2" and "1/2" are the two shards of a 2-way plan.
func ParseShardPlan(s string) (ShardPlan, error) { return experiment.ParseShardPlan(s) }

// MergeKB deterministically combines shard outputs (in any order) into one
// knowledge base with canonical record ordering — byte-identical, once
// saved, to the monolithic run with the same seed. It fails when shards
// come from different runs, overlap, or leave grid cells uncovered.
func MergeKB(shards ...*Shard) (*KnowledgeBase, error) { return kb.Merge(shards...) }

// LoadShard reads one shard file written by Engine.RunExperimentShard /
// `openbi experiments -shard`.
func LoadShard(r io.Reader) (*Shard, error) { return kb.LoadShard(r) }

// ---- Provenance (see internal/provenance, internal/kb) ----

// Manifest is the tamper-evident provenance record written beside a
// knowledge base (kb.json.manifest): a Merkle tree over the KB's record
// encodings plus the dataset hash, grid fingerprint, per-shard digests and
// toolchain that produced it, optionally ed25519-signed.
type Manifest = provenance.Manifest

// ManifestShardDigest pins one shard of a merged run inside a Manifest.
type ManifestShardDigest = provenance.ShardDigest

// RecordMismatchError names the first KB record whose encoding does not
// hash to the manifest's leaf, with its Merkle audit path; recover it with
// errors.As from BuildManifest/VerifyManifest failures.
type RecordMismatchError = provenance.RecordMismatchError

// BuildManifest derives the provenance manifest for a saved knowledge
// base: doc is the exact saved bytes, k the loaded KB.
func BuildManifest(doc []byte, k *KnowledgeBase) (*Manifest, error) { return kb.BuildManifest(doc, k) }

// BuildMergedManifest derives the manifest for a merged KB and
// cross-checks the record-level Merkle root against one recomputed from
// the per-shard trees — the merge refuses a manifest the shards disagree
// with.
func BuildMergedManifest(doc []byte, merged *KnowledgeBase, shards ...*Shard) (*Manifest, error) {
	return kb.BuildMergedManifest(doc, merged, shards...)
}

// VerifyManifest checks a saved KB against its manifest; failures match
// ErrManifestMismatch, and record-level corruption carries the first bad
// record's index via ManifestError / RecordMismatchError.
func VerifyManifest(m *Manifest, doc []byte, k *KnowledgeBase) error {
	return kb.VerifyManifest(m, doc, k)
}

// LoadManifest reads a manifest file written by `openbi experiments` or
// `openbi kb merge`.
func LoadManifest(r io.Reader) (*Manifest, error) { return provenance.Load(r) }

// ---- Serving (see internal/server) ----

// Server is the HTTP/JSON advice service around an Engine: POST /v1/advise
// (micro-batched + LRU-cached), POST /v1/profile, GET /v1/kb,
// POST /v1/kb/reload (atomic hot swap), GET /v1/metrics and GET /healthz.
// It is an http.Handler; run it with ListenAndServe(ctx, addr) for
// graceful drain on context cancellation, or mount it in a larger mux.
type Server = server.Server

// ServerOption configures NewServer; see WithKBPath, WithCacheSize,
// WithBatchWindow, WithBatchMaxSize, WithRequestTimeout, WithDrainTimeout
// and WithMaxBodyBytes.
type ServerOption = server.Option

// ServerMetrics is the counter snapshot returned by Server.Metrics and
// GET /v1/metrics.
type ServerMetrics = server.MetricsSnapshot

// NewServer builds the HTTP advice service around an engine. The engine's
// current KB snapshot becomes generation 0; POST /v1/kb/reload swaps in
// later generations without dropping in-flight requests.
func NewServer(e *Engine, opts ...ServerOption) (*Server, error) { return server.New(e, opts...) }

// WithKBPath sets the default file POST /v1/kb/reload reads.
func WithKBPath(path string) ServerOption { return server.WithKBPath(path) }

// WithCacheSize bounds the advice LRU cache (0 disables it).
func WithCacheSize(n int) ServerOption { return server.WithCacheSize(n) }

// WithBatchWindow sets the micro-batching window for concurrent advise
// calls (0 adds no latency and batches only what is already queued).
func WithBatchWindow(d time.Duration) ServerOption { return server.WithBatchWindow(d) }

// WithBatchMaxSize caps one advise scoring batch.
func WithBatchMaxSize(n int) ServerOption { return server.WithBatchMaxSize(n) }

// WithRequestTimeout bounds each HTTP request's handling time.
func WithRequestTimeout(d time.Duration) ServerOption { return server.WithRequestTimeout(d) }

// WithDrainTimeout bounds the graceful-shutdown drain.
func WithDrainTimeout(d time.Duration) ServerOption { return server.WithDrainTimeout(d) }

// WithMaxBodyBytes caps request body sizes (CSV uploads).
func WithMaxBodyBytes(n int64) ServerOption { return server.WithMaxBodyBytes(n) }

// WithMaxInflight bounds concurrently executing heavy requests (advise,
// profile, lod/profile); excess load beyond the bounded wait queue is
// shed with 429 overloaded + Retry-After. 0 (default) disables admission
// control.
func WithMaxInflight(n int) ServerOption { return server.WithMaxInflight(n) }

// WithQueueDepth bounds how many requests may wait for an inflight slot
// before shedding (default: equal to WithMaxInflight).
func WithQueueDepth(n int) ServerOption { return server.WithQueueDepth(n) }

// WithManifestRequired makes the server refuse any KB reload that does not
// carry a verified provenance manifest (422 manifest_mismatch).
func WithManifestRequired() ServerOption { return server.WithManifestRequired() }

// WithManifestKey pins the ed25519 public key every reload manifest must
// be signed by; unsigned or foreign-key manifests are refused.
func WithManifestKey(pub ed25519.PublicKey) ServerOption { return server.WithManifestKey(pub) }

// WithServerManifest seeds generation 0 with the already-verified manifest
// of the KB the engine was loaded from, so the reload chain starts at
// startup rather than at the first hot swap.
func WithServerManifest(m *Manifest) ServerOption { return server.WithManifest(m) }
