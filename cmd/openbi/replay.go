package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"openbi/internal/loadgen"
	"openbi/internal/replay"
)

// cmdReplay re-issues a recorded loadgen capture against a candidate
// server and reports the blast radius of whatever changed: top-1 advice
// flips, rank moves, predicted-kappa drift beyond -tolerance, broken down
// by the dominant quality defect of the affected requests.
//
// Baselines, mirroring loadgen's target modes:
//
//   - default: fresh responses diff against the capture's recorded
//     responses. Same KB generation => zero diffs (advice is byte-stable),
//     so any diff is a real behavior change.
//   - -against URL or -against-kb path: two-sided mode. Both servers are
//     asked fresh and diffed against each other; the capture only supplies
//     the request stream.
//
// -promote pins a zero-diff run as a golden (capture copy + response
// digest); -golden replays a pinned capture and fails on any digest
// drift — what `make replay-check` and CI run.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	capturePath := fs.String("capture", "", "loadgen capture to replay (see `openbi loadgen -record`)")
	target := fs.String("target", "", "candidate server base URL")
	selfserve := fs.Bool("selfserve", false, "serve the candidate in-process on 127.0.0.1:0")
	kbPath := fs.String("kb", "", "candidate knowledge base for -selfserve")
	against := fs.String("against", "", "two-sided mode: baseline server base URL")
	againstKB := fs.String("against-kb", "", "two-sided mode: serve this knowledge base in-process as the baseline")
	tolerance := fs.Float64("tolerance", 0, "allowed |Δ predictedKappa| per algorithm (0 = exact)")
	concurrency := fs.Int("concurrency", 8, "parallel replayed requests")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	allowTruncated := fs.Bool("allow-truncated", false, "replay the intact prefix of a capture with a torn tail or missing footer")
	failOnDiff := fs.Bool("fail-on-diff", false, "exit non-zero when the report has any diff (CI gate)")
	promote := fs.String("promote", "", "after the run, pin the capture and its response digest as a golden under this directory")
	golden := fs.String("golden", "", "verify this golden digest: refuse a swapped capture, fail on response drift")
	out := fs.String("out", "", "write the full JSON report here")
	maxExamples := fs.Int("max-examples", 10, "diff example lines kept in the report")
	fs.Parse(args)

	if *capturePath == "" {
		return fmt.Errorf("replay: -capture is required")
	}
	if (*target == "") == (!*selfserve) {
		return fmt.Errorf("replay: exactly one of -target or -selfserve is required")
	}
	if *against != "" && *againstKB != "" {
		return fmt.Errorf("replay: -against and -against-kb are mutually exclusive")
	}

	readOpt := loadgen.ReadOptions{AllowTruncated: *allowTruncated}
	var pinned *replay.Golden
	if *golden != "" {
		g, err := replay.LoadGolden(*golden)
		if err != nil {
			return err
		}
		// A swapped capture must fail here, before any replaying: zero
		// diffs against the wrong baseline proves nothing.
		if err := g.VerifyCapture(*capturePath); err != nil {
			return err
		}
		readOpt.Expect = &g.Spec
		pinned = &g
	}
	capture, err := loadgen.LoadCapture(*capturePath, readOpt)
	if err != nil {
		return err
	}
	if capture.Truncated {
		fmt.Fprintf(os.Stderr, "replay: warning: capture tail is torn; replaying the %d verified entries\n", len(capture.Entries))
	}

	ctx, cancel := runContext(0)
	defer cancel()

	if *selfserve {
		url, stop, err := startSelfServe(ctx, *kbPath, 64, -1, 1024)
		if err != nil {
			return err
		}
		defer stop()
		*target = url
	}
	if *againstKB != "" {
		url, stop, err := startSelfServe(ctx, *againstKB, 64, -1, 1024)
		if err != nil {
			return err
		}
		defer stop()
		*against = url
	}

	rep, err := replay.Replay(ctx, replay.Spec{
		Capture:     capture,
		Target:      *target,
		Baseline:    *against,
		Tolerance:   *tolerance,
		Concurrency: *concurrency,
		Timeout:     *timeout,
		MaxExamples: *maxExamples,
	})
	if err != nil {
		return explainRunError(err)
	}
	if !rep.TwoSided && rep.TargetKB.Generation != capture.Spec.KB.Generation {
		fmt.Fprintf(os.Stderr, "replay: note: capture was recorded against KB gen %d, candidate serves gen %d\n",
			capture.Spec.KB.Generation, rep.TargetKB.Generation)
	}
	fmt.Print(rep.Summary())

	if *out != "" {
		if err := writeFileAtomic(*out, func(f *os.File) error { return rep.WriteJSON(f) }); err != nil {
			return err
		}
		fmt.Printf("replay report written to %s\n", *out)
	}
	if *promote != "" {
		goldenPath, err := replay.Promote(*promote, *capturePath, rep)
		if err != nil {
			return err
		}
		fmt.Printf("golden promoted: %s\n", goldenPath)
	}
	if pinned != nil {
		if err := pinned.VerifyReport(rep); err != nil {
			return err
		}
		fmt.Println("golden ok: responses match the promoted digest")
	}
	if *failOnDiff && rep.HasDiffs() {
		return fmt.Errorf("replay: %d diffs across %d compared requests (blast radius %.1f%%)",
			rep.Diffs, rep.Compared, 100*rep.BlastRadius())
	}
	return nil
}
