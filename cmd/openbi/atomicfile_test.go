package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteFileAtomicFailureLeavesOldBytes is the regression for the torn
// -out hole: a write that fails partway (disk full, panic-recovered
// encoder, killed encoder goroutine) must leave the previous file contents
// intact — never a prefix of the new ones — and must not litter the
// directory with temp files.
func TestWriteFileAtomicFailureLeavesOldBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.json")
	if err := os.WriteFile(path, []byte("old complete artifact"), 0o644); err != nil {
		t.Fatal(err)
	}

	err := writeFileAtomic(path, func(f *os.File) error {
		if _, err := f.WriteString(`{"records": [truncat`); err != nil {
			return err
		}
		return fmt.Errorf("simulated mid-write failure")
	})
	if err == nil || err.Error() != "simulated mid-write failure" {
		t.Fatalf("err = %v, want the write func's failure", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old complete artifact" {
		t.Fatalf("failed write altered the target: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "kb.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("temp leftovers after failed write: %v", names)
	}
}

func TestWriteFileAtomicSuccessReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.nt")
	if err := os.WriteFile(path, []byte("previous"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(path, func(f *os.File) error {
		_, err := f.WriteString("fresh bytes")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "fresh bytes" {
		t.Fatalf("contents = %q", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("replaced file mode = %o, want 644", perm)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after success, want 1", len(entries))
	}
}
