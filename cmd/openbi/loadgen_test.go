package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLILoadgenRequiresExactlyOneTarget(t *testing.T) {
	if err := cmdLoadgen(nil); err == nil || !strings.Contains(err.Error(), "-target or -selfserve") {
		t.Fatalf("no target: err = %v", err)
	}
	err := cmdLoadgen([]string{"-target", "http://x", "-selfserve"})
	if err == nil || !strings.Contains(err.Error(), "-target or -selfserve") {
		t.Fatalf("both targets: err = %v", err)
	}
}

func TestCLILoadgenRejectsUnknownMix(t *testing.T) {
	err := cmdLoadgen([]string{"-target", "http://x", "-mix", "bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown mix") {
		t.Fatalf("err = %v", err)
	}
}

func TestCLILoadgenRunAndSnapshot(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"advice":{}}`))
	}))
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	err := cmdLoadgen([]string{
		"-target", ts.URL, "-duration", "200ms", "-warmup", "50ms",
		"-concurrency", "2", "-smoke", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Benchmarks []struct {
			Name    string             `json:"name"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if len(snap.Benchmarks) != 1 || snap.Benchmarks[0].Name != "LoadgenServeAdvise/closed/c=2" {
		t.Fatalf("unexpected snapshot shape: %+v", snap.Benchmarks)
	}
	if snap.Benchmarks[0].Metrics["ns/op"] <= 0 {
		t.Fatal("snapshot has no gated p99 metric")
	}
}

func TestCLILoadgenSmokeFailsOn5xx(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	err := cmdLoadgen([]string{
		"-target", ts.URL, "-duration", "150ms", "-concurrency", "2", "-smoke",
	})
	if err == nil || !strings.Contains(err.Error(), "smoke failed") {
		t.Fatalf("err = %v, want smoke failure", err)
	}
}
