package main

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"openbi/internal/core"
	"openbi/internal/kb"
	"openbi/internal/provenance"
	"openbi/internal/server"
)

// cmdServe runs the HTTP advice service: the paper's advisor as a network
// front end. The knowledge base at -kb is loaded at startup (when present)
// and can be hot-swapped at any time with POST /v1/kb/reload without
// dropping in-flight requests. SIGINT/SIGTERM drain gracefully within
// -drain. With -require-manifest every KB — the startup one included —
// must carry a valid provenance manifest; with -manifest-pub the manifest
// must additionally be signed by exactly that key.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	kbPath := fs.String("kb", "kb.json", "knowledge base path (loaded at startup if present; reload target)")
	cacheSize := fs.Int("cache", 1024, "advice LRU cache entries (0 disables)")
	batchWindow := fs.Duration("batch-window", 2*time.Millisecond, "micro-batching window for concurrent advise calls (0 = no added latency)")
	batchMax := fs.Int("batch-max", 64, "max advise calls scored in one batch")
	reqTimeout := fs.Duration("request-timeout", 10*time.Second, "deadline for an advise call waiting on its scoring batch")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")
	maxInflight := fs.Int("max-inflight", 64, "admission control: concurrent advise/profile calls before queueing (0 disables)")
	queueDepth := fs.Int("queue-depth", -1, "admission control: bounded wait queue past max-inflight; excess is shed with 429 (-1 = max-inflight)")
	requireManifest := fs.Bool("require-manifest", false, "refuse any KB (startup or reload) without a verified provenance manifest")
	manifestPub := fs.String("manifest-pub", "", "ed25519 public key file every manifest must be signed by (see openbi kb keygen)")
	fs.Parse(args)

	var pub ed25519.PublicKey
	if *manifestPub != "" {
		var err error
		pub, err = provenance.LoadPublicKeyFile(*manifestPub)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}

	eng, err := core.New()
	if err != nil {
		return err
	}
	var startupManifest *provenance.Manifest
	switch doc, readErr := os.ReadFile(*kbPath); {
	case readErr == nil:
		if err := eng.LoadKB(bytes.NewReader(doc)); err != nil {
			return fmt.Errorf("serve: loading %s: %w", *kbPath, err)
		}
		startupManifest, err = verifyStartupManifest(doc, *kbPath, *requireManifest, pub)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		fmt.Printf("loaded knowledge base (%d records) from %s\n", eng.KB().Len(), *kbPath)
		if startupManifest != nil {
			fmt.Printf("manifest verified (merkle root %s)\n", startupManifest.MerkleRoot)
		}
	case os.IsNotExist(readErr):
		// A missing KB is a legitimate cold start (reload can supply one
		// later); any other open failure is a real fault to surface.
		fmt.Fprintf(os.Stderr, "serve: %s not found; advise returns 503 empty_kb until POST /v1/kb/reload\n", *kbPath)
	default:
		return fmt.Errorf("serve: opening %s: %w", *kbPath, readErr)
	}

	opts := []server.Option{
		server.WithKBPath(*kbPath),
		server.WithCacheSize(*cacheSize),
		server.WithBatchWindow(*batchWindow),
		server.WithBatchMaxSize(*batchMax),
		server.WithRequestTimeout(*reqTimeout),
		server.WithDrainTimeout(*drain),
		server.WithMaxInflight(*maxInflight),
	}
	if *maxInflight > 0 && *queueDepth >= 0 {
		opts = append(opts, server.WithQueueDepth(*queueDepth))
	}
	if *requireManifest {
		opts = append(opts, server.WithManifestRequired())
	}
	if pub != nil {
		opts = append(opts, server.WithManifestKey(pub))
	}
	if startupManifest != nil {
		opts = append(opts, server.WithManifest(startupManifest))
	}
	srv, err := server.New(eng, opts...)
	if err != nil {
		return err
	}

	ctx, cancel := runContext(0)
	defer cancel()
	fmt.Printf("serving advice on %s (POST /v1/advise, POST /v1/profile, GET /v1/kb, POST /v1/kb/reload, GET /v1/metrics, GET /healthz)\n", *addr)
	return srv.ListenAndServe(ctx, *addr)
}

// verifyStartupManifest applies the same policy to the startup KB that the
// reload endpoint applies to hot-swaps: verify the manifest beside the KB
// when it exists, insist on one when -require-manifest is set, and check
// the signature against a pinned key. Returns nil (no manifest, allowed)
// only when the manifest is absent and absence is tolerated.
func verifyStartupManifest(doc []byte, kbPath string, required bool, pub ed25519.PublicKey) (*provenance.Manifest, error) {
	manifestPath := kbPath + ".manifest"
	if _, err := os.Stat(manifestPath); err != nil {
		if os.IsNotExist(err) {
			if required {
				return nil, fmt.Errorf("-require-manifest is set but %s does not exist", manifestPath)
			}
			return nil, nil
		}
		return nil, err
	}
	m, err := provenance.LoadFile(manifestPath)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", manifestPath, err)
	}
	base, err := kb.Load(bytes.NewReader(doc))
	if err != nil {
		return nil, err
	}
	if err := kb.VerifyManifest(m, doc, base); err != nil {
		return nil, fmt.Errorf("%s: %w", manifestPath, err)
	}
	switch sigErr := m.VerifySignature(pub); {
	case sigErr == nil:
	case errors.Is(sigErr, provenance.ErrUnsigned) && pub == nil:
		fmt.Fprintf(os.Stderr, "serve: WARNING: %s is unsigned; integrity only, no authenticity\n", manifestPath)
	default:
		return nil, fmt.Errorf("%s: %w", manifestPath, sigErr)
	}
	return m, nil
}
