package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"openbi/internal/core"
	"openbi/internal/server"
)

// cmdServe runs the HTTP advice service: the paper's advisor as a network
// front end. The knowledge base at -kb is loaded at startup (when present)
// and can be hot-swapped at any time with POST /v1/kb/reload without
// dropping in-flight requests. SIGINT/SIGTERM drain gracefully within
// -drain.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	kbPath := fs.String("kb", "kb.json", "knowledge base path (loaded at startup if present; reload target)")
	cacheSize := fs.Int("cache", 1024, "advice LRU cache entries (0 disables)")
	batchWindow := fs.Duration("batch-window", 2*time.Millisecond, "micro-batching window for concurrent advise calls (0 = no added latency)")
	batchMax := fs.Int("batch-max", 64, "max advise calls scored in one batch")
	reqTimeout := fs.Duration("request-timeout", 10*time.Second, "deadline for an advise call waiting on its scoring batch")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")
	maxInflight := fs.Int("max-inflight", 64, "admission control: concurrent advise/profile calls before queueing (0 disables)")
	queueDepth := fs.Int("queue-depth", -1, "admission control: bounded wait queue past max-inflight; excess is shed with 429 (-1 = max-inflight)")
	fs.Parse(args)

	eng, err := core.New()
	if err != nil {
		return err
	}
	switch f, openErr := os.Open(*kbPath); {
	case openErr == nil:
		loadErr := eng.LoadKB(f)
		f.Close()
		if loadErr != nil {
			return fmt.Errorf("serve: loading %s: %w", *kbPath, loadErr)
		}
		fmt.Printf("loaded knowledge base (%d records) from %s\n", eng.KB().Len(), *kbPath)
	case os.IsNotExist(openErr):
		// A missing KB is a legitimate cold start (reload can supply one
		// later); any other open failure is a real fault to surface.
		fmt.Fprintf(os.Stderr, "serve: %s not found; advise returns 503 empty_kb until POST /v1/kb/reload\n", *kbPath)
	default:
		return fmt.Errorf("serve: opening %s: %w", *kbPath, openErr)
	}

	opts := []server.Option{
		server.WithKBPath(*kbPath),
		server.WithCacheSize(*cacheSize),
		server.WithBatchWindow(*batchWindow),
		server.WithBatchMaxSize(*batchMax),
		server.WithRequestTimeout(*reqTimeout),
		server.WithDrainTimeout(*drain),
		server.WithMaxInflight(*maxInflight),
	}
	if *maxInflight > 0 && *queueDepth >= 0 {
		opts = append(opts, server.WithQueueDepth(*queueDepth))
	}
	srv, err := server.New(eng, opts...)
	if err != nil {
		return err
	}

	ctx, cancel := runContext(0)
	defer cancel()
	fmt.Printf("serving advice on %s (POST /v1/advise, POST /v1/profile, GET /v1/kb, POST /v1/kb/reload, GET /v1/metrics, GET /healthz)\n", *addr)
	return srv.ListenAndServe(ctx, *addr)
}
