package main

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"openbi/internal/rdf"
)

// goldenKBSHA256 pins the knowledge base `openbi experiments -rows 120
// -folds 3 -seed 42` must produce, byte for byte. It is the equivalence
// hash established by the immutable-Engine redesign (PR 2): any refactor
// of the table/mining/experiment stack that shifts a single float breaks
// this test instead of silently changing every downstream advice.
const goldenKBSHA256 = "1fae960cefdcab53e41b447620e13d1f495439006ef2b6dfeba7443121fd66cd"

// TestCLIEndToEndGolden drives the paper's full pipeline through the
// actual CLI entry points with one fixed seed: generate a classification
// source, profile it, build the knowledge base, ask for advice, mine with
// the advised algorithm and share the predictions as LOD. Asserts the KB
// is byte-stable against the pinned hash and that advice is deterministic.
func TestCLIEndToEndGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment grid")
	}
	dir := t.TempDir()
	csv := filepath.Join(dir, "data.csv")
	kbPath := filepath.Join(dir, "kb.json")
	shared := filepath.Join(dir, "predictions.nt")

	// generate: a clean synthetic classification source.
	out := captureStdout(t, func() error {
		return cmdGenerate([]string{"-kind", "classification", "-n", "120", "-seed", "42", "-out", csv})
	})
	if !strings.Contains(out, "wrote 120 rows") {
		t.Fatalf("generate output: %q", out)
	}

	// profile: the quality fingerprint the advisor will consume.
	out = captureStdout(t, func() error {
		return cmdProfile([]string{"-in", csv, "-class", "class"})
	})
	if !strings.Contains(out, "Data quality profile") || !strings.Contains(out, "completeness") {
		t.Fatalf("profile output:\n%s", out)
	}

	// experiments: the KB must be byte-identical to the pinned golden hash.
	captureStdout(t, func() error {
		return cmdExperiments([]string{"-rows", "120", "-folds", "3", "-seed", "42", "-out", kbPath})
	})
	raw, err := os.ReadFile(kbPath)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); got != goldenKBSHA256 {
		t.Fatalf("kb.json drifted from the PR 2 equivalence hash:\n got %s\nwant %s", got, goldenKBSHA256)
	}

	// advise: deterministic output, run twice.
	adviseArgs := []string{"-in", csv, "-class", "class", "-kb", kbPath}
	advice1 := captureStdout(t, func() error { return cmdAdvise(adviseArgs) })
	if !strings.Contains(advice1, "The best option is") {
		t.Fatalf("advise output:\n%s", advice1)
	}
	advice2 := captureStdout(t, func() error { return cmdAdvise(adviseArgs) })
	if advice1 != advice2 {
		t.Fatalf("advice is not stable across runs:\n--- first\n%s\n--- second\n%s", advice1, advice2)
	}

	// mine: train the advised algorithm and share predictions as LOD.
	out = captureStdout(t, func() error {
		return cmdMine([]string{"-in", csv, "-class", "class", "-kb", kbPath, "-share", shared})
	})
	if !strings.Contains(out, "mined with") || !strings.Contains(out, "prediction triples") {
		t.Fatalf("mine output:\n%s", out)
	}
	f, err := os.Open(shared)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := rdf.ReadNTriples(f)
	if err != nil {
		t.Fatalf("shared LOD does not parse back: %v", err)
	}
	if g.Len() == 0 {
		t.Fatal("shared LOD is empty")
	}
}
