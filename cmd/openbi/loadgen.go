package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"openbi/internal/core"
	"openbi/internal/loadgen"
	"openbi/internal/server"
	"openbi/internal/synth"
)

// cmdLoadgen drives POST /v1/advise on a running openbi serve with a
// recorded profile mix and reports latency quantiles, throughput, and
// error/shed rates — or, with -sweep, steps offered load geometrically
// until the p99 budget blows and locates the saturation knee.
//
// Two ways to point it at a server:
//
//   - -target URL: any openbi serve already listening (load-test over the
//     wire, possibly from another machine).
//   - -selfserve: build engine + server in this process on 127.0.0.1:0 and
//     drive it over real TCP. One command, no setup — what `make bench`
//     and the CI smoke job use.
func cmdLoadgen(args []string) (retErr error) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	target := fs.String("target", "", "base URL of a running openbi serve (e.g. http://127.0.0.1:8080)")
	selfserve := fs.Bool("selfserve", false, "start an in-process server on 127.0.0.1:0 and load-test it")
	kbPath := fs.String("kb", "", "knowledge base for -selfserve (absent: a small KB is built in-process)")
	maxInflight := fs.Int("max-inflight", 64, "-selfserve admission control: concurrent advise calls (0 disables)")
	queueDepth := fs.Int("queue-depth", -1, "-selfserve admission control: bounded wait queue (-1 = max-inflight)")
	cacheSize := fs.Int("cache", 1024, "-selfserve advice LRU cache entries (0 disables)")

	duration := fs.Duration("duration", 10*time.Second, "measured phase per run (per level with -sweep)")
	warmup := fs.Duration("warmup", time.Second, "warmup phase excluded from statistics")
	concurrency := fs.Int("concurrency", 8, "parallel connections")
	rps := fs.Float64("rps", 0, "offered load for open-loop pacing (0 = closed loop)")
	mixName := fs.String("mix", "recorded", "workload mix: "+strings.Join(loadgen.MixNames(), " | "))
	seed := fs.Int64("seed", 1, "seed for the severity-vector sequence")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	record := fs.String("record", "", "capture anonymized request/response pairs as JSONL under this directory")
	out := fs.String("out", "", "write a benchjson snapshot (BENCH_serve.json shape) here")

	sweep := fs.Bool("sweep", false, "saturation sweep: step offered load until p99 blows the budget")
	sweepStart := fs.Float64("sweep-start", 100, "first offered level (rps)")
	sweepFactor := fs.Float64("sweep-factor", 2, "offered-load multiplier between levels")
	sweepMaxLevels := fs.Int("sweep-max-levels", 8, "level cap")
	sweepMinLevels := fs.Int("sweep-min-levels", 3, "levels always run, so the snapshot has a curve")
	p99Budget := fs.Duration("p99-budget", 50*time.Millisecond, "p99 latency budget defining the knee")

	smoke := fs.Bool("smoke", false, "fail unless the run saw non-zero throughput and zero 5xx (CI gate)")
	fs.Parse(args)

	if (*target == "") == (!*selfserve) {
		return fmt.Errorf("loadgen: exactly one of -target or -selfserve is required")
	}
	mix, err := loadgen.ParseMix(*mixName)
	if err != nil {
		return err
	}

	ctx, cancel := runContext(0)
	defer cancel()

	if *selfserve {
		url, stop, err := startSelfServe(ctx, *kbPath, *maxInflight, *queueDepth, *cacheSize)
		if err != nil {
			return err
		}
		defer stop()
		*target = url
	}

	spec := loadgen.Spec{
		Target:      *target,
		Mix:         mix,
		Concurrency: *concurrency,
		Duration:    *duration,
		Warmup:      *warmup,
		RPS:         *rps,
		Timeout:     *timeout,
		Seed:        *seed,
	}
	if *record != "" {
		// Pin the run configuration and the serving KB generation in the
		// capture header, so a replayer can verify what it is replaying. A
		// probe failure (non-openbi target) degrades to a zero KBInfo.
		kbInfo, kerr := loadgen.ProbeKB(ctx, nil, *target)
		if kerr != nil {
			fmt.Fprintln(os.Stderr, "loadgen: record: KB probe failed, capture header will carry no generation:", kerr)
		}
		rec, err := loadgen.NewRecorder(*record, loadgen.CaptureSpec{
			Mix:         *mixName,
			Seed:        *seed,
			Dim:         loadgen.DefaultDim,
			Concurrency: *concurrency,
			KB:          kbInfo,
		})
		if err != nil {
			return err
		}
		defer func() {
			// A Close error means the capture has no verifying footer — it
			// is truncated and must fail the command, not exit 0 with a
			// stderr whisper while CI promotes a broken golden.
			if cerr := rec.Close(); cerr != nil {
				cerr = fmt.Errorf("loadgen: capture %s is truncated: %w", rec.Path(), cerr)
				if retErr == nil {
					retErr = cerr
				} else {
					fmt.Fprintln(os.Stderr, cerr)
				}
			} else {
				fmt.Printf("recorded %d request/response pairs to %s\n", rec.Count(), rec.Path())
			}
		}()
		spec.Recorder = rec
	}

	var levels []*loadgen.Result
	var sweepRes *loadgen.SweepResult
	if *sweep {
		sweepRes, err = loadgen.RunSweep(ctx, loadgen.SweepSpec{
			Base:      spec,
			StartRPS:  *sweepStart,
			Factor:    *sweepFactor,
			MaxLevels: *sweepMaxLevels,
			MinLevels: *sweepMinLevels,
			P99Budget: *p99Budget,
		}, func(line string) { fmt.Fprintln(os.Stderr, line) })
		if sweepRes != nil {
			levels = sweepRes.Levels
		}
		if err != nil {
			return explainRunError(err)
		}
		if sweepRes.KneeRPS > 0 {
			fmt.Printf("saturation knee: %.0f rps offered sustained (%.1f/s achieved) within p99 budget %s\n",
				sweepRes.KneeRPS, sweepRes.KneeThroughput, sweepRes.Budget)
		} else {
			fmt.Printf("no offered level sustained the p99 budget %s (start lower than %.0f rps)\n",
				sweepRes.Budget, *sweepStart)
		}
	} else {
		res, err := loadgen.Run(ctx, spec)
		if err != nil {
			return explainRunError(err)
		}
		levels = []*loadgen.Result{res}
		fmt.Println(res.Summary())
	}

	if *out != "" {
		snap := loadgen.BuildSnapshot("LoadgenServeAdvise", levels, sweepRes)
		if err := writeFileAtomic(*out, func(f *os.File) error {
			return loadgen.WriteSnapshot(f, snap)
		}); err != nil {
			return err
		}
		fmt.Printf("benchmark snapshot written to %s\n", *out)
	}

	if *smoke {
		var ok, s5xx int64
		for _, r := range levels {
			ok += r.StatusOK
			s5xx += r.Server5xx
		}
		if ok == 0 || s5xx > 0 {
			return fmt.Errorf("loadgen: smoke failed: %d ok responses, %d server errors", ok, s5xx)
		}
		fmt.Printf("smoke ok: %d successful responses, zero 5xx\n", ok)
	}
	return nil
}

// startSelfServe builds engine + server in-process and serves on a real
// 127.0.0.1 TCP socket, so the harness exercises the full network stack.
// When no usable KB is supplied it builds a small one from a synthetic
// reference dataset — slower to start, but the command stays one-shot.
func startSelfServe(ctx context.Context, kbPath string, maxInflight, queueDepth, cacheSize int) (url string, stop func(), err error) {
	eng, err := core.New(core.WithSeed(42))
	if err != nil {
		return "", nil, err
	}
	if kbPath != "" {
		f, err := os.Open(kbPath)
		if err != nil {
			return "", nil, fmt.Errorf("loadgen: opening -kb: %w", err)
		}
		loadErr := eng.LoadKB(f)
		f.Close()
		if loadErr != nil {
			return "", nil, fmt.Errorf("loadgen: loading %s: %w", kbPath, loadErr)
		}
		fmt.Fprintf(os.Stderr, "selfserve: loaded knowledge base (%d records) from %s\n", eng.KB().Len(), kbPath)
	} else {
		fmt.Fprintln(os.Stderr, "selfserve: no -kb; building a small knowledge base in-process...")
		ds, err := synth.MakeClassification(synth.ClassificationSpec{Rows: 80, Seed: 42})
		if err != nil {
			return "", nil, err
		}
		small, err := core.New(core.WithSeed(42), core.WithFolds(2))
		if err != nil {
			return "", nil, err
		}
		if _, err := small.RunExperiments(ctx, ds, "reference"); err != nil {
			return "", nil, explainRunError(err)
		}
		eng = small
	}

	opts := []server.Option{
		server.WithCacheSize(cacheSize),
		server.WithMaxInflight(maxInflight),
	}
	if maxInflight > 0 && queueDepth >= 0 {
		opts = append(opts, server.WithQueueDepth(queueDepth))
	}
	srv, err := server.New(eng, opts...)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}

	srvCtx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(srvCtx, ln) }()
	stop = func() {
		cancel()
		if err := <-done; err != nil {
			fmt.Fprintln(os.Stderr, "selfserve:", err)
		}
	}
	url = "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "selfserve: listening on %s (max-inflight %d)\n", url, maxInflight)
	return url, stop, nil
}
