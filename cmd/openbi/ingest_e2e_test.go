package main

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"openbi/internal/core"
	"openbi/internal/dq"
	"openbi/internal/rdf"
)

// goldenIngestCSVSHA256 pins the projected table `openbi generate -kind
// municipal -n 200 -seed 42 -dirty 0.2` → `openbi ingest` must produce,
// byte for byte. It guards the whole streaming chain — decoder, class
// selection, projection, CSV writer — the way goldenKBSHA256 guards the
// experiment stack: a refactor that moves one cell breaks here instead of
// silently changing downstream mining.
const goldenIngestCSVSHA256 = "318960a607880e6a656b8fd643dd2985878f82e62e0986196a8900b398775e23"

// TestCLIIngestGolden drives the LOD path end to end through the CLI:
// generate a dirty municipal LOD export, stream-ingest it, pin the
// projected-table hash, and cross-check the streamed output against the
// batch (graph-resident) projection and profile.
func TestCLIIngestGolden(t *testing.T) {
	dir := t.TempDir()
	nt := filepath.Join(dir, "lod.nt")
	csv := filepath.Join(dir, "lod.csv")

	out := captureStdout(t, func() error {
		return cmdGenerate([]string{"-kind", "municipal", "-n", "200", "-seed", "42", "-dirty", "0.2", "-out", nt})
	})
	if !strings.Contains(out, "triples") {
		t.Fatalf("generate output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdIngest([]string{"-in", nt, "-csv", csv})
	})
	for _, want := range []string{"LOD profile", "dangling link ratio",
		"projected class <http://opendata.example.org/def/Municipality>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ingest output missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); got != goldenIngestCSVSHA256 {
		t.Fatalf("projected CSV drifted from the golden hash:\n got %s\nwant %s", got, goldenIngestCSVSHA256)
	}

	// The batch path must agree byte for byte: load the graph, project the
	// largest class, compare against the streamed ingest output.
	f, err := os.Open(nt)
	if err != nil {
		t.Fatal(err)
	}
	g, err := rdf.ReadNTriples(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	batchT, err := core.ProjectLargestClass(g)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := os.Open(nt)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := core.IngestLOD(f2, "nt", rdf.ProjectOptions{LargestClass: true})
	f2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ing.Profile != dq.MeasureLOD(g) {
		t.Fatalf("streamed profile %+v != batch %+v", ing.Profile, dq.MeasureLOD(g))
	}
	if batchT.NumRows() != ing.Table.NumRows() || batchT.NumCols() != ing.Table.NumCols() {
		t.Fatalf("stream table %dx%d != batch %dx%d",
			ing.Table.NumRows(), ing.Table.NumCols(), batchT.NumRows(), batchT.NumCols())
	}

	// Streaming from stdin ('-in -') must match the file path exactly.
	stdinCSV := filepath.Join(dir, "stdin.csv")
	src, err := os.Open(nt)
	if err != nil {
		t.Fatal(err)
	}
	oldStdin := os.Stdin
	os.Stdin = src
	_ = captureStdout(t, func() error {
		return cmdIngest([]string{"-in", "-", "-format", "nt", "-csv", stdinCSV})
	})
	os.Stdin = oldStdin
	src.Close()
	raw2, err := os.ReadFile(stdinCSV)
	if err != nil {
		t.Fatal(err)
	}
	sum2 := sha256.Sum256(raw2)
	if got := hex.EncodeToString(sum2[:]); got != goldenIngestCSVSHA256 {
		t.Fatalf("stdin ingest diverged from file ingest: %s", got)
	}
}
