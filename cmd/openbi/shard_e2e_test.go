package main

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fileSHA256(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// TestCLIShardMergeMatchesMonolithic is the acceptance check of the
// sharded pipeline at the canonical configuration: running the grid as two
// independent, checkpointed `openbi experiments -shard i/2` jobs and
// recombining them with `openbi kb merge` must produce a kb.json
// byte-identical to the monolithic `-rows 120 -folds 3 -seed 42` run —
// pinned by the same golden hash the monolithic e2e test asserts (PR 2's
// equivalence hash).
func TestCLIShardMergeMatchesMonolithic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment grid")
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "checkpoints")
	shard0 := filepath.Join(dir, "shard-0-of-2.json")
	shard1 := filepath.Join(dir, "shard-1-of-2.json")
	merged := filepath.Join(dir, "kb.json")
	canonical := []string{"-rows", "120", "-folds", "3", "-seed", "42"}

	out := captureStdout(t, func() error {
		return cmdExperiments(append([]string{"-shard", "0/2", "-checkpoint", ckpt, "-out", shard0}, canonical...))
	})
	if !strings.Contains(out, "shard 0/2") {
		t.Fatalf("shard 0 output:\n%s", out)
	}
	captureStdout(t, func() error {
		return cmdExperiments(append([]string{"-shard", "1/2", "-checkpoint", ckpt, "-out", shard1}, canonical...))
	})

	out = captureStdout(t, func() error {
		return cmdKB([]string{"merge", "-out", merged, shard1, shard0}) // any order
	})
	if !strings.Contains(out, "merged 2 shards") {
		t.Fatalf("merge output:\n%s", out)
	}
	if got := fileSHA256(t, merged); got != goldenKBSHA256 {
		t.Fatalf("2-shard merge drifted from the monolithic golden hash:\n got %s\nwant %s", got, goldenKBSHA256)
	}

	// The shard files carry disjoint slices that sum to the whole grid.
	s0, err := os.ReadFile(shard0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := os.ReadFile(shard1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s0) == 0 || len(s1) == 0 {
		t.Fatal("a shard file is empty")
	}

	// Checkpoint-resume smoke at the CLI level: re-running shard 0 against
	// its completed journal must replay every cell (no re-execution, so it
	// is near-instant) and reproduce the identical shard file.
	before := fileSHA256(t, shard0)
	captureStdout(t, func() error {
		return cmdExperiments(append([]string{"-shard", "0/2", "-checkpoint", ckpt, "-out", shard0}, canonical...))
	})
	if after := fileSHA256(t, shard0); after != before {
		t.Fatalf("resumed shard 0 differs from its first run:\nbefore %s\nafter  %s", before, after)
	}

	journals, err := filepath.Glob(filepath.Join(ckpt, "*.journal"))
	if err != nil || len(journals) != 2 {
		t.Fatalf("expected 2 shard journals in the shared checkpoint dir, got %v (%v)", journals, err)
	}
}
