package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"openbi/internal/core"
	"openbi/internal/replay"
	"openbi/internal/synth"
)

func TestCLIReplayFlagValidation(t *testing.T) {
	if err := cmdReplay(nil); err == nil || !strings.Contains(err.Error(), "-capture") {
		t.Fatalf("no capture: err = %v", err)
	}
	err := cmdReplay([]string{"-capture", "x.jsonl"})
	if err == nil || !strings.Contains(err.Error(), "-target or -selfserve") {
		t.Fatalf("no target: err = %v", err)
	}
	err = cmdReplay([]string{"-capture", "x.jsonl", "-selfserve", "-against", "http://x", "-against-kb", "y.json"})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("both baselines: err = %v", err)
	}
}

// buildReplayKB builds a small knowledge base the way startSelfServe does,
// but seeded, so two calls with different seeds yield genuinely different
// advice surfaces.
func buildReplayKB(t *testing.T, dir string, seed int64) string {
	t.Helper()
	eng, err := core.New(core.WithSeed(seed), core.WithFolds(2))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.MakeClassification(synth.ClassificationSpec{Rows: 60, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunExperiments(context.Background(), ds, "reference"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("kb-seed%d.json", seed))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveKB(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCLIReplayEndToEnd drives the full record -> replay -> golden loop
// through the CLI entry points: a capture recorded against one KB replays
// with zero diffs against the same KB, yields a non-empty deterministic
// blast-radius report against a different KB, and golden promotion pins the
// good run so drift fails the -golden gate.
func TestCLIReplayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two knowledge bases and replays a capture repeatedly")
	}
	dir := t.TempDir()
	kbOld := buildReplayKB(t, dir, 42)
	kbNew := buildReplayKB(t, dir, 43)

	// Record a capture against the old KB.
	capDir := filepath.Join(dir, "captures")
	out := captureStdout(t, func() error {
		return cmdLoadgen([]string{
			"-selfserve", "-kb", kbOld, "-mix", "uniform", "-seed", "7",
			"-duration", "150ms", "-warmup", "50ms", "-concurrency", "2",
			"-record", capDir,
		})
	})
	if !strings.Contains(out, "recorded") {
		t.Fatalf("loadgen record output:\n%s", out)
	}
	capPath := filepath.Join(capDir, "loadgen-uniform-seed7.jsonl")
	if _, err := os.Stat(capPath); err != nil {
		t.Fatal(err)
	}

	// Same KB generation: advice is byte-stable, so zero diffs — and the
	// -fail-on-diff CI gate passes.
	out = captureStdout(t, func() error {
		return cmdReplay([]string{"-capture", capPath, "-selfserve", "-kb", kbOld, "-fail-on-diff"})
	})
	if !strings.Contains(out, "zero diffs") {
		t.Fatalf("same-KB replay:\n%s", out)
	}

	// A different KB re-advises part of the recorded request space: the
	// report is non-empty and byte-identical across runs.
	perturbed := []string{"-capture", capPath, "-selfserve", "-kb", kbNew}
	rep1 := captureStdout(t, func() error { return cmdReplay(perturbed) })
	if !strings.Contains(rep1, "verdict:") || strings.Contains(rep1, "zero diffs") {
		t.Fatalf("perturbed-KB replay found no diffs:\n%s", rep1)
	}
	if !strings.Contains(rep1, "blast radius") || !strings.Contains(rep1, "by dominant criterion:") {
		t.Fatalf("blast-radius report incomplete:\n%s", rep1)
	}
	rep2 := captureStdout(t, func() error { return cmdReplay(perturbed) })
	if rep1 != rep2 {
		t.Fatalf("replay report is not deterministic:\n--- first\n%s--- second\n%s", rep1, rep2)
	}
	if err := cmdReplay(append(perturbed, "-fail-on-diff")); err == nil || !strings.Contains(err.Error(), "diffs") {
		t.Fatalf("-fail-on-diff on a diffing replay: err = %v", err)
	}

	// Two-sided mode diffs the KBs directly, using the capture only as the
	// request stream.
	out = captureStdout(t, func() error {
		return cmdReplay([]string{"-capture", capPath, "-selfserve", "-kb", kbOld, "-against-kb", kbNew})
	})
	if strings.Contains(out, "zero diffs") {
		t.Fatalf("two-sided replay of different KBs reported zero diffs:\n%s", out)
	}

	// Golden promotion pins the capture and the zero-diff digest.
	goldDir := filepath.Join(dir, "goldens")
	out = captureStdout(t, func() error {
		return cmdReplay([]string{"-capture", capPath, "-selfserve", "-kb", kbOld, "-fail-on-diff", "-promote", goldDir})
	})
	if !strings.Contains(out, "golden promoted") {
		t.Fatalf("promotion output:\n%s", out)
	}
	pinnedCap := filepath.Join(goldDir, filepath.Base(capPath))
	goldenPath := replay.GoldenName(pinnedCap)
	out = captureStdout(t, func() error {
		return cmdReplay([]string{"-capture", pinnedCap, "-selfserve", "-kb", kbOld, "-golden", goldenPath})
	})
	if !strings.Contains(out, "golden ok") {
		t.Fatalf("golden verification output:\n%s", out)
	}
	err := cmdReplay([]string{"-capture", pinnedCap, "-selfserve", "-kb", kbNew, "-golden", goldenPath})
	if err == nil || !strings.Contains(err.Error(), "golden") {
		t.Fatalf("drifted KB passed the golden gate: err = %v", err)
	}
}
