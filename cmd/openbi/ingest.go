package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"openbi/internal/core"
	"openbi/internal/dq"
	"openbi/internal/rdf"
	"openbi/internal/report"
	"openbi/internal/table"
)

// cmdIngest streams an RDF document (file or stdin) once through the
// constant-memory LOD pipeline: graph-level quality profile + entity→table
// projection, without ever materializing the graph. It is the scalable
// counterpart of `openbi profile` for LOD inputs — the peak memory is
// bounded by the projected content plus one statement, so exports larger
// than memory ingest fine.
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	in := fs.String("in", "-", "input RDF file, or '-' to stream from stdin")
	format := fs.String("format", "", "nt | ttl (default: by file extension; nt for stdin)")
	class := fs.String("class", "", "entity class IRI to project (default: the most populous class)")
	csvOut := fs.String("csv", "", "write the projected table as CSV here")
	fs.Parse(args)

	var src io.Reader
	if *in == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	fmtName := *format
	if fmtName == "" {
		switch strings.ToLower(filepath.Ext(*in)) {
		case ".ttl":
			fmtName = "ttl"
		default:
			fmtName = "nt"
		}
	}
	opts := rdf.ProjectOptions{LargestClass: true}
	if *class != "" {
		opts = rdf.ProjectOptions{Class: rdf.NewIRI(*class)}
	}

	ing, err := core.IngestLOD(src, fmtName, opts)
	if err != nil {
		return err
	}
	printLODProfile(ing.Profile)
	if ing.Class != "" {
		fmt.Printf("projected class <%s>: %d rows × %d columns (from %d streamed triples)\n",
			ing.Class, ing.Table.NumRows(), ing.Table.NumCols(), ing.Triples)
	} else {
		fmt.Printf("projected every subject (graph has no typed entities): %d rows × %d columns (from %d streamed triples)\n",
			ing.Table.NumRows(), ing.Table.NumCols(), ing.Triples)
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := table.WriteCSV(f, ing.Table); err != nil {
			return err
		}
		fmt.Printf("projected table written to %s\n", *csvOut)
	}
	return nil
}

// printLODProfile renders the graph-level quality table (shared with
// `openbi profile` on RDF inputs).
func printLODProfile(lp dq.LODProfile) {
	lt := report.NewTable(fmt.Sprintf("LOD profile (%d triples, %d entities)", lp.Triples, lp.Entities),
		"criterion", "value")
	lt.AddRowf("property completeness", lp.PropertyCompleteness)
	lt.AddRowf("dangling link ratio", lp.DanglingLinkRatio)
	lt.AddRowf("sameAs per entity", lp.SameAsRatio)
	lt.AddRowf("label coverage", lp.LabelCoverage)
	lt.AddRowf("predicates per class", lp.PredicatesPerClass)
	lt.AddRowf("class entropy", lp.ClassEntropy)
	lt.Render(os.Stdout)
}
