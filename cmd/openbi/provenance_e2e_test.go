package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"openbi/internal/eval"
	"openbi/internal/kb"
	"openbi/internal/provenance"
)

// provTestKB builds a small deterministic knowledge base for manifest
// round-trips without running the experiment grid.
func provTestKB(algorithms ...string) *kb.KnowledgeBase {
	k := kb.New()
	for i, alg := range algorithms {
		base := 0.9 - 0.1*float64(i)
		k.Add(kb.Record{
			Algorithm: alg, Criterion: "clean", Severity: 0,
			MeasuredAll: map[string]float64{"label-noise": 0},
			Dataset:     "unit", Folds: 3,
			Metrics: eval.Metrics{Kappa: base, Accuracy: (base + 1) / 2},
		})
		for _, sev := range []float64{0.2, 0.4} {
			k.Add(kb.Record{
				Algorithm: alg, Criterion: "label-noise", Severity: sev,
				MeasuredSeverity: sev, Dataset: "unit", Folds: 3,
				Metrics: eval.Metrics{Kappa: base - sev, Accuracy: (base - sev + 1) / 2},
			})
		}
	}
	return k
}

// writeProvKB saves base as dir/kb.json with its manifest beside it — the
// same artifacts `openbi experiments` emits — and returns the KB path.
func writeProvKB(t *testing.T, dir string, base *kb.KnowledgeBase) string {
	t.Helper()
	path := filepath.Join(dir, "kb.json")
	var doc bytes.Buffer
	if err := writeFileAtomic(path, func(f *os.File) error {
		return base.Save(io.MultiWriter(f, &doc))
	}); err != nil {
		t.Fatal(err)
	}
	m, err := kb.BuildManifest(doc.Bytes(), base)
	if err != nil {
		t.Fatal(err)
	}
	if err := signAndWriteManifest(m, path+".manifest", nil); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCLIKBVerify drives the verify subcommand end to end: a pristine KB
// passes (with the unsigned warning), and flipping one byte inside a
// record's encoding fails naming that record and its audit path.
func TestCLIKBVerify(t *testing.T) {
	dir := t.TempDir()
	path := writeProvKB(t, dir, provTestKB("alpha", "beta"))

	out := captureStdout(t, func() error {
		return cmdKB([]string{"verify", path})
	})
	if !strings.Contains(out, "OK:") || !strings.Contains(out, "WARNING") {
		t.Fatalf("pristine verify output:\n%s", out)
	}

	doc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Record 3 (0-based) is beta's clean record: upper-casing its algorithm
	// keeps the JSON valid but changes the canonical encoding.
	tampered := bytes.Replace(doc, []byte(`"algorithm": "beta"`), []byte(`"algorithm": "BETA"`), 1)
	if bytes.Equal(tampered, doc) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	var verifyErr error
	out = captureStdout(t, func() error {
		verifyErr = cmdKB([]string{"verify", path})
		return nil
	})
	if verifyErr == nil || !errors.Is(verifyErr, provenance.ErrMismatch) {
		t.Fatalf("tampered verify err = %v", verifyErr)
	}
	if !strings.Contains(out, "FAIL: record 3") || !strings.Contains(out, "audit path:") {
		t.Fatalf("tampered verify should name record 3 with its audit path:\n%s", out)
	}
}

// TestCLIKBVerifySigned: keygen → sign at build time → verify -pub; a
// foreign key is rejected.
func TestCLIKBVerifySigned(t *testing.T) {
	dir := t.TempDir()
	keyPath := filepath.Join(dir, "openbi.key")
	captureStdout(t, func() error {
		return cmdKB([]string{"keygen", "-out", keyPath})
	})
	priv, err := provenance.LoadPrivateKeyFile(keyPath)
	if err != nil {
		t.Fatal(err)
	}

	base := provTestKB("alpha")
	path := filepath.Join(dir, "kb.json")
	var doc bytes.Buffer
	if err := writeFileAtomic(path, func(f *os.File) error {
		return base.Save(io.MultiWriter(f, &doc))
	}); err != nil {
		t.Fatal(err)
	}
	m, err := kb.BuildManifest(doc.Bytes(), base)
	if err != nil {
		t.Fatal(err)
	}
	if err := signAndWriteManifest(m, path+".manifest", priv); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() error {
		return cmdKB([]string{"verify", "-pub", keyPath + ".pub", path})
	})
	if !strings.Contains(out, "signature: OK") {
		t.Fatalf("signed verify output:\n%s", out)
	}

	otherKey := filepath.Join(dir, "other.key")
	captureStdout(t, func() error {
		return cmdKB([]string{"keygen", "-out", otherKey})
	})
	if err := cmdKB([]string{"verify", "-pub", otherKey + ".pub", path}); err == nil {
		t.Fatal("verify against a foreign key should fail")
	}
}

// TestCLIMergeEmitsManifest: `openbi kb merge` writes <out>.manifest whose
// shard digests cover every input shard, and the merged KB verifies.
// Built on the same tiny canonical grid the shard e2e test uses — but with
// -rows 40 so it stays quick enough for the default test run.
func TestCLIMergeEmitsManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small experiment grid")
	}
	dir := t.TempDir()
	shard0 := filepath.Join(dir, "shard-0-of-2.json")
	shard1 := filepath.Join(dir, "shard-1-of-2.json")
	merged := filepath.Join(dir, "kb.json")
	canonical := []string{"-rows", "40", "-folds", "2", "-seed", "7"}

	captureStdout(t, func() error {
		return cmdExperiments(append([]string{"-shard", "0/2", "-out", shard0}, canonical...))
	})
	captureStdout(t, func() error {
		return cmdExperiments(append([]string{"-shard", "1/2", "-out", shard1}, canonical...))
	})
	out := captureStdout(t, func() error {
		return cmdKB([]string{"merge", "-out", merged, shard0, shard1})
	})
	if !strings.Contains(out, "manifest "+merged+".manifest") {
		t.Fatalf("merge should report the manifest:\n%s", out)
	}
	m, err := provenance.LoadFile(merged + ".manifest")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 2 {
		t.Fatalf("manifest shard digests = %d, want 2", len(m.Shards))
	}
	if m.DatasetHash == "" || m.GridFingerprint == "" {
		t.Fatalf("merged manifest lacks chain fields: %+v", m)
	}
	out = captureStdout(t, func() error {
		return cmdKB([]string{"verify", merged})
	})
	if !strings.Contains(out, "merged from 2 shards") {
		t.Fatalf("verify of merged KB:\n%s", out)
	}
}
