// Command openbi is the user-facing entry point of the OpenBI
// reproduction: the tool a "non-expert data miner" drives. It covers the
// full pipeline of the paper — generate or ingest open data, profile its
// data quality, build the DQ4DM knowledge base, ask for algorithm advice,
// mine with the advised algorithm and share the result as LOD, and run
// OLAP reports.
//
// Usage:
//
//	openbi generate  -kind municipal -n 500 -dirty 0.2 -out data.nt
//	openbi profile   -in data.nt [-class fundingLevel] [-model model.xmi]
//	openbi ingest    -in data.nt [-format nt|ttl] [-class IRI] [-csv out.csv]   (streams; '-in -' reads stdin)
//	openbi experiments -rows 500 -workers 8 [-timeout 10m] [-progress] -out kb.json
//	openbi experiments -rows 500 -shard 0/2 -checkpoint ckpt/   (one resumable shard job)
//	openbi kb merge  -out kb.json [-key openbi.key] shard-0-of-2.json shard-1-of-2.json
//	openbi kb verify [-manifest kb.json.manifest] [-pub openbi.key.pub] kb.json
//	openbi kb keygen [-out openbi.key]
//	openbi advise    -in data.nt -class fundingLevel -kb kb.json
//	openbi mine      -in data.nt -class fundingLevel -kb kb.json -share out.nt [-timeout 1m]
//	openbi olap      -in data.nt -dims inRegion -measure avg:budgetEducationPerCapita
//	openbi validate  -kb kb.json -rows 400 -trials 10 [-timeout 5m]
//	openbi serve     -addr :8080 -kb kb.json [-cache 1024] [-batch-window 2ms] [-max-inflight 64] [-require-manifest] [-manifest-pub openbi.key.pub]
//	openbi loadgen   -target http://host:8080 -duration 10s -rps 200 -mix recorded [-out BENCH_serve.json]
//	openbi loadgen   -selfserve -kb kb.json -sweep -p99-budget 50ms   (saturation sweep, no setup)
//	openbi replay    -capture captures/loadgen-recorded-seed1.jsonl -selfserve -kb new-kb.json -fail-on-diff
//	openbi replay    -capture c.jsonl -selfserve -kb old.json -against-kb new.json   (two-sided KB diff)
//
// experiments, mine and validate honour ^C (SIGINT) and -timeout:
// cancellation takes effect between experiment grid cells; with
// -checkpoint, a killed experiments run resumes mid-grid on the next
// invocation. Sharded runs write shard files whose deterministic merge
// (openbi kb merge) is byte-identical to the monolithic run. serve drains
// in-flight requests on SIGINT/SIGTERM before exiting.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"openbi/internal/clean"
	"openbi/internal/core"
	"openbi/internal/cwm"
	"openbi/internal/dq"
	"openbi/internal/experiment"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/olap"
	"openbi/internal/rdf"
	"openbi/internal/report"
	"openbi/internal/synth"
	"openbi/internal/table"
)

// runContext returns a context for one long-running command: canceled on
// SIGINT/SIGTERM (so ^C stops the experiment grid between cells instead of
// killing it mid-write) and, when timeout > 0, after the deadline.
func runContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() { cancel(); stop() }
}

// explainRunError rewrites context terminations into actionable messages.
func explainRunError(err error) error {
	switch {
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("interrupted (partial work discarded): %w", err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("-timeout exceeded before the run finished: %w", err)
	default:
		return err
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "advise":
		err = cmdAdvise(os.Args[2:])
	case "mine":
		err = cmdMine(os.Args[2:])
	case "olap":
		err = cmdOLAP(os.Args[2:])
	case "repair":
		err = cmdRepair(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "kb":
		err = cmdKB(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "openbi: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "openbi:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `openbi - data-quality-aware mining for open data

commands:
  generate     synthesize an open-government LOD dataset (.nt) or CSV
  profile      measure data-quality criteria of a source; optionally emit a CWM model
  ingest       stream RDF (file or stdin) at constant memory: LOD profile + projected CSV
  experiments  run Phase 1 + Phase 2 and write the DQ4DM knowledge base
  advise       recommend a mining algorithm for a source ("the best option is ...")
  mine         train the advised algorithm and share predictions as LOD
  olap         roll up a source into an OLAP report
  repair       suggest and optionally apply a cleaning plan for a source
  validate     measure advisor hit-rate and regret on random corruption scenarios
  kb           knowledge-base utilities: "kb merge" recombines shard outputs,
               "kb verify" checks a KB against its provenance manifest,
               "kb keygen" makes an ed25519 manifest-signing keypair
  serve        run the HTTP advice service (batching, caching, hot KB reload)
  loadgen      load-test a serve instance: latency quantiles, throughput, saturation sweep
  replay       re-issue a recorded capture and report the blast radius of a KB or build change

scaling out:
  experiments -shard i/n -checkpoint dir   run one resumable shard of the grid
  kb merge -out kb.json shard-*.json       deterministically merge the shards

provenance:
  experiments and kb merge write <out>.manifest (merkle tree over the KB
  records); kb verify names the first corrupted record on any tampering,
  and serve -require-manifest refuses reloads that fail verification
`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	kind := fs.String("kind", "municipal", "municipal | airquality | education | classification")
	n := fs.Int("n", 500, "entities / rows")
	dirty := fs.Float64("dirty", 0, "LOD dirtiness in [0,1]")
	seed := fs.Int64("seed", 42, "random seed")
	out := fs.String("out", "", "output path (.nt for LOD kinds, .csv for classification)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("generate: -out is required")
	}

	spec := synth.LODSpec{Entities: *n, Dirtiness: *dirty, Seed: *seed}
	switch *kind {
	case "municipal", "airquality", "education":
		var g *rdf.Graph
		var err error
		switch *kind {
		case "municipal":
			g, err = synth.MunicipalBudgetLOD(spec)
		case "airquality":
			g, err = synth.AirQualityLOD(spec)
		default:
			g, err = synth.EducationLOD(spec)
		}
		if err != nil {
			return err
		}
		if err := writeFileAtomic(*out, func(f *os.File) error {
			return rdf.WriteNTriples(f, g)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %d triples to %s\n", g.Len(), *out)
		return nil
	case "classification":
		ds, err := synth.MakeClassification(synth.ClassificationSpec{Rows: *n, Seed: *seed})
		if err != nil {
			return err
		}
		if err := writeFileAtomic(*out, func(f *os.File) error {
			return writeCSV(f, ds)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %d rows to %s\n", ds.Len(), *out)
		return nil
	default:
		return fmt.Errorf("generate: unknown kind %q", *kind)
	}
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	in := fs.String("in", "", "input file (.csv .xml .html .nt .ttl)")
	class := fs.String("class", "", "class column name (optional)")
	modelOut := fs.String("model", "", "write annotated CWM model here (.xmi or .json)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("profile: -in is required")
	}

	// RDF inputs get the graph-level profile first — link problems are
	// invisible after projection.
	if strings.HasSuffix(*in, ".nt") || strings.HasSuffix(*in, ".ttl") {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		var g *rdf.Graph
		if strings.HasSuffix(*in, ".nt") {
			g, err = rdf.ReadNTriples(f)
		} else {
			g, err = rdf.ReadTurtle(f)
		}
		f.Close()
		if err != nil {
			return err
		}
		printLODProfile(dq.MeasureLOD(g))
		fmt.Println()
	}

	tb, err := core.IngestFile(*in)
	if err != nil {
		return err
	}
	m, err := core.BuildModel(tb, *class)
	if err != nil {
		return err
	}
	printProfile(tb.Name, m.Profile)

	if *modelOut != "" {
		if err := writeFileAtomic(*modelOut, func(f *os.File) error {
			if strings.HasSuffix(*modelOut, ".json") {
				return cwm.WriteJSON(f, m.Catalog)
			}
			return cwm.WriteXMI(f, m.Catalog)
		}); err != nil {
			return err
		}
		fmt.Printf("annotated model written to %s\n", *modelOut)
	}
	return nil
}

func printProfile(name string, p dq.Profile) {
	t := report.NewTable(fmt.Sprintf("Data quality profile of %q (%d rows, %d attributes)",
		name, p.Rows, p.Attributes), "criterion", "measure", "severity")
	t.AddRowf("completeness", p.Completeness, p.Severity(dq.Completeness))
	t.AddRowf("duplicates", p.DuplicateRatio, p.Severity(dq.Duplicates))
	t.AddRowf("correlation", p.MeanAbsCorrelation, p.Severity(dq.Correlation))
	t.AddRowf("imbalance", 1-p.ClassBalance, p.Severity(dq.Imbalance))
	t.AddRowf("label-noise", p.NoiseEstimate, p.Severity(dq.LabelNoise))
	t.AddRowf("attribute-noise", p.OutlierRatio, p.Severity(dq.AttributeNoise))
	t.AddRowf("dimensionality", p.Dimensionality, p.Severity(dq.Dimensionality))
	t.Render(os.Stdout)
	if dom := p.DominantCriteria(0.1); len(dom) > 0 {
		names := make([]string, len(dom))
		for i, c := range dom {
			names[i] = c.String()
		}
		fmt.Printf("dominant problems: %s\n", strings.Join(names, ", "))
	}
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	rows := fs.Int("rows", 500, "reference dataset rows")
	folds := fs.Int("folds", 5, "cross-validation folds")
	seed := fs.Int64("seed", 42, "random seed")
	workers := fs.Int("workers", 0, "parallel experiment workers (0 = all CPUs); results are identical for any value")
	timeout := fs.Duration("timeout", 0, "abort the run after this long (0 = no limit); ^C also cancels between cells")
	progress := fs.Bool("progress", false, "stream per-record progress to stderr")
	shard := fs.String("shard", "", "run one shard of the grid, as index/count with a 0-based index (e.g. 0/2); writes a shard file for `openbi kb merge` instead of a knowledge base")
	checkpoint := fs.String("checkpoint", "", "journal completed grid cells under this directory so a killed run resumes mid-grid")
	out := fs.String("out", "", "output path (default kb.json, or shard-<i>-of-<n>.json with -shard)")
	keyPath := fs.String("key", "", "ed25519 private key file to sign the provenance manifest with (see openbi kb keygen)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
	memprofile := fs.String("memprofile", "", "write an allocation profile at exit to this file (inspect with go tool pprof)")
	fs.Parse(args)

	// Fail on an unloadable signing key before hours of grid work, not after.
	priv, err := loadSigningKey(*keyPath)
	if err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush pending frees so in-use numbers are current
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	eng, err := core.New(core.WithSeed(*seed), core.WithFolds(*folds), core.WithWorkers(*workers))
	if err != nil {
		return err
	}
	ds, err := synth.MakeClassification(synth.ClassificationSpec{Rows: *rows, Seed: *seed})
	if err != nil {
		return err
	}
	ctx, cancel := runContext(*timeout)
	defer cancel()

	var runOpts []core.RunOption
	if *progress {
		runOpts = append(runOpts, core.WithProgress(func(ev experiment.Event) {
			state := ""
			if ev.Restored {
				state = " (restored)"
			}
			fmt.Fprintf(os.Stderr, "\rphase %d: %4d/%4d  %-14s %-28s", ev.Phase, ev.Completed, ev.Total,
				ev.Algorithm, fmt.Sprintf("%s@%.2f%s", ev.Criterion, ev.Severity, state))
			if ev.Completed == ev.Total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}

	if *shard != "" {
		plan, err := experiment.ParseShardPlan(*shard)
		if err != nil {
			return err
		}
		path := *out
		if path == "" {
			path = fmt.Sprintf("shard-%d-of-%d.json", plan.Index, plan.Count)
		}
		fmt.Printf("running shard %s of the grid on a %d-row reference dataset...\n", plan, *rows)
		if *checkpoint != "" {
			runOpts = append(runOpts, core.WithCheckpoint(*checkpoint))
		}
		sh, err := eng.RunExperimentShard(ctx, ds, "reference", plan, runOpts...)
		if err != nil {
			return explainRunError(err)
		}
		if err := writeFileAtomic(path, func(w *os.File) error { return sh.Save(w) }); err != nil {
			return err
		}
		fmt.Printf("shard %s: %d of %d grid records written to %s\n", plan, len(sh.Records),
			sh.Meta.Phase1Total+sh.Meta.Phase2Total, path)
		fmt.Printf("combine all %d shards with: openbi kb merge -out kb.json shard-*-of-%d.json\n",
			plan.Count, plan.Count)
		return nil
	}

	if *checkpoint != "" {
		runOpts = append(runOpts, core.WithCheckpoint(*checkpoint))
	}
	if *out == "" {
		*out = "kb.json"
	}
	fmt.Printf("running Phase 1 + Phase 2 on a %d-row reference dataset...\n", *rows)
	rep, err := eng.RunExperiments(ctx, ds, "reference", runOpts...)
	if err != nil {
		return explainRunError(err)
	}
	fmt.Printf("phase 1: %d records; phase 2: %d records\n", rep.Phase1Records, rep.Phase2Records)

	// Sensitivity table — the knowledge the advisor runs on.
	algs, crits, cells := eng.KB().SensitivityTable()
	header := append([]string{"algorithm"}, criteriaNames(crits)...)
	t := report.NewTable("Sensitivity (kappa lost per unit severity)", header...)
	for i, a := range algs {
		row := make([]any, 0, len(header))
		row = append(row, a)
		for _, v := range cells[i] {
			row = append(row, v)
		}
		t.AddRowf(row...)
	}
	t.Render(os.Stdout)

	var doc bytes.Buffer
	if err := writeFileAtomic(*out, func(f *os.File) error {
		return eng.SaveKB(io.MultiWriter(f, &doc))
	}); err != nil {
		return err
	}
	fmt.Printf("knowledge base (%d records) written to %s\n", eng.KB().Len(), *out)

	// Emit the provenance manifest beside the KB: merkle tree over the
	// record encodings plus the inputs that produced them, so `openbi kb
	// verify` and chained serve reloads can prove this exact build.
	base, err := kb.Load(bytes.NewReader(doc.Bytes()))
	if err != nil {
		return err
	}
	m, err := kb.BuildManifest(doc.Bytes(), base)
	if err != nil {
		return err
	}
	m.DatasetHash = experiment.DatasetContentHash(ds)
	m.GridFingerprint = eng.GridFingerprint(ds, "reference")
	if err := signAndWriteManifest(m, *out+".manifest", priv); err != nil {
		return err
	}
	fmt.Printf("provenance manifest written to %s (merkle root %s)\n", *out+".manifest", m.MerkleRoot)
	return nil
}

func criteriaNames(crits []dq.Criterion) []string {
	out := make([]string, len(crits))
	for i, c := range crits {
		out[i] = c.String()
	}
	return out
}

func loadKB(path string) (*kb.KnowledgeBase, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening knowledge base: %w (run `openbi experiments` first)", err)
	}
	defer f.Close()
	return kb.Load(f)
}

func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	class := fs.String("class", "", "class column name")
	kbPath := fs.String("kb", "kb.json", "knowledge base path")
	fs.Parse(args)
	if *in == "" || *class == "" {
		return fmt.Errorf("advise: -in and -class are required")
	}
	base, err := loadKB(*kbPath)
	if err != nil {
		return err
	}
	tb, err := core.IngestFile(*in)
	if err != nil {
		return err
	}
	m, err := core.BuildModel(tb, *class)
	if err != nil {
		return err
	}
	advice, err := base.Snapshot().Advise(m.Profile)
	if err != nil {
		return err
	}
	printProfile(tb.Name, m.Profile)
	fmt.Println()
	fmt.Print(advice.Explain())
	return nil
}

func cmdMine(args []string) error {
	fs := flag.NewFlagSet("mine", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	class := fs.String("class", "", "class column name")
	kbPath := fs.String("kb", "kb.json", "knowledge base path")
	share := fs.String("share", "", "write predictions as LOD (.nt) here")
	base := fs.String("base", "http://openbi.example.org/", "base IRI for shared LOD")
	timeout := fs.Duration("timeout", 0, "abort mining after this long (0 = no limit); ^C also cancels")
	fs.Parse(args)
	if *in == "" || *class == "" {
		return fmt.Errorf("mine: -in and -class are required")
	}
	eng, err := core.New(core.WithSeed(1))
	if err != nil {
		return err
	}
	kbFile, err := os.Open(*kbPath)
	if err != nil {
		return fmt.Errorf("opening knowledge base: %w (run `openbi experiments` first)", err)
	}
	err = eng.LoadKB(kbFile)
	kbFile.Close()
	if err != nil {
		return err
	}
	tb, err := core.IngestFile(*in)
	if err != nil {
		return err
	}
	ctx, cancel := runContext(*timeout)
	defer cancel()
	adv, err := eng.Advisor()
	if err != nil {
		return err
	}
	res, err := adv.MineWithAdvice(ctx, tb, *class, *base)
	if err != nil {
		return explainRunError(err)
	}
	fmt.Printf("mined with %s: accuracy %.3f, kappa %.3f, macro-F1 %.3f on %d held-out instances\n",
		res.Algorithm, res.Metrics.Accuracy, res.Metrics.Kappa, res.Metrics.MacroF1, res.Metrics.TestInstances)
	if *share != "" {
		if err := writeFileAtomic(*share, func(f *os.File) error {
			return rdf.WriteNTriples(f, res.Shared)
		}); err != nil {
			return err
		}
		fmt.Printf("shared %d prediction triples to %s\n", res.Shared.Len(), *share)
	}
	return nil
}

func cmdOLAP(args []string) error {
	fs := flag.NewFlagSet("olap", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	dims := fs.String("dims", "", "comma-separated nominal dimensions")
	measures := fs.String("measure", "", "comma-separated agg:column (agg in sum,avg,count,min,max)")
	fs.Parse(args)
	if *in == "" || *dims == "" || *measures == "" {
		return fmt.Errorf("olap: -in, -dims and -measure are required")
	}
	tb, err := core.IngestFile(*in)
	if err != nil {
		return err
	}
	dimList := strings.Split(*dims, ",")
	var ms []olap.Measure
	for _, spec := range strings.Split(*measures, ",") {
		parts := strings.SplitN(spec, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("olap: bad measure %q, want agg:column", spec)
		}
		var agg olap.Aggregation
		switch parts[0] {
		case "sum":
			agg = olap.Sum
		case "avg":
			agg = olap.Avg
		case "count":
			agg = olap.Count
		case "min":
			agg = olap.Min
		case "max":
			agg = olap.Max
		default:
			return fmt.Errorf("olap: unknown aggregation %q", parts[0])
		}
		ms = append(ms, olap.Measure{Column: parts[1], Agg: agg})
	}
	cube, err := olap.NewCube(tb, dimList, ms)
	if err != nil {
		return err
	}
	t, err := cube.RollUpTable(fmt.Sprintf("Roll-up of %q", tb.Name), dimList...)
	if err != nil {
		return err
	}
	return t.Render(os.Stdout)
}

func cmdRepair(args []string) error {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	class := fs.String("class", "", "class column name (optional; protected from repairs)")
	out := fs.String("out", "", "write the repaired table as CSV here (omit for dry run)")
	threshold := fs.Float64("threshold", 0.05, "minimum severity that triggers a repair")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("repair: -in is required")
	}
	tb, err := core.IngestFile(*in)
	if err != nil {
		return err
	}
	classIdx := -1
	if *class != "" {
		classIdx = tb.ColumnIndex(*class)
	}
	profile := dq.Measure(tb, dq.MeasureOptions{ClassColumn: classIdx})
	plan := clean.Suggest(profile, *class, *threshold)
	fmt.Print(clean.Describe(plan))
	if *out == "" || len(plan) == 0 {
		return nil
	}
	repaired, reports, err := clean.PipelineFrom(plan).Run(tb)
	if err != nil {
		return err
	}
	for _, r := range reports {
		fmt.Printf("applied %-18s changed %d cells/rows\n", r.Step, r.Changed)
	}
	if err := writeFileAtomic(*out, func(f *os.File) error {
		return table.WriteCSV(f, repaired)
	}); err != nil {
		return err
	}
	fmt.Printf("repaired table written to %s\n", *out)
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	kbPath := fs.String("kb", "kb.json", "knowledge base path")
	rows := fs.Int("rows", 400, "held-out dataset rows")
	trials := fs.Int("trials", 10, "random corruption scenarios")
	seed := fs.Int64("seed", 1234, "random seed")
	timeout := fs.Duration("timeout", 0, "abort validation after this long (0 = no limit); ^C also cancels")
	fs.Parse(args)

	base, err := loadKB(*kbPath)
	if err != nil {
		return err
	}
	ds, err := synth.MakeClassification(synth.ClassificationSpec{Rows: *rows, Seed: *seed})
	if err != nil {
		return err
	}
	ctx, cancel := runContext(*timeout)
	defer cancel()
	cfg := experiment.Config{Seed: *seed, Folds: 5}
	res, err := experiment.Validate(ctx, cfg, ds, base.Snapshot(), *trials)
	if err != nil {
		return explainRunError(err)
	}
	t := report.NewTable("Advisor validation", "scenario", "advised", "empirical best", "regret")
	for _, d := range res.Detail {
		t.AddRowf(d.Scenario, d.Advised, d.Empirical, d.Regret)
	}
	t.Render(os.Stdout)
	fmt.Printf("top-1 hit rate %.2f, top-2 %.2f, mean regret %.3f kappa (static %q policy regret %.3f)\n",
		res.Top1Rate(), res.Top2Rate(), res.MeanRegret, res.StaticPolicy, res.StaticRegret)
	return nil
}

// writeCSV writes a generated dataset's table as CSV.
func writeCSV(f *os.File, ds *mining.Dataset) error {
	return table.WriteCSV(f, ds.Table())
}
