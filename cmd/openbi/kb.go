package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"openbi/internal/kb"
)

// cmdKB dispatches the knowledge-base utility subcommands.
func cmdKB(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("kb: usage: openbi kb merge -out kb.json <shard files...>")
	}
	switch args[0] {
	case "merge":
		return cmdKBMerge(args[1:])
	default:
		return fmt.Errorf("kb: unknown subcommand %q (want merge)", args[0])
	}
}

// cmdKBMerge recombines the shard files of one `openbi experiments -shard`
// run into a single knowledge base. The merge is deterministic and
// validated: shard files may be given in any order, but they must all
// belong to the same run and together cover every grid cell exactly once.
// The resulting kb.json is byte-identical to the monolithic run with the
// same seed; the printed sha256 makes that easy to verify across machines.
func cmdKBMerge(args []string) error {
	fs := flag.NewFlagSet("kb merge", flag.ExitOnError)
	out := fs.String("out", "kb.json", "merged knowledge base output path")
	fs.Parse(args)
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("kb merge: no shard files given (run `openbi experiments -shard i/n` first)")
	}
	shards := make([]*kb.Shard, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return fmt.Errorf("kb merge: %w", err)
		}
		sh, err := kb.LoadShard(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("kb merge: %s: %w", p, err)
		}
		shards = append(shards, sh)
	}
	merged, err := kb.Merge(shards...)
	if err != nil {
		return fmt.Errorf("kb merge: %w", err)
	}
	digest := sha256.New()
	if err := writeFileAtomic(*out, func(w *os.File) error {
		return merged.Save(io.MultiWriter(w, digest))
	}); err != nil {
		return err
	}
	fmt.Printf("merged %d shards (%d records) into %s\nsha256 %s\n",
		len(shards), merged.Len(), *out, hex.EncodeToString(digest.Sum(nil)))
	return nil
}

// writeFileAtomic writes via a temp file + rename so a crash mid-write
// never leaves a torn output where a complete one is expected.
func writeFileAtomic(path string, write func(*os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	// CreateTemp uses 0600; match os.Create's umask-filtered 0666 so the
	// output is readable by the same audience as a plain `-out` write
	// (e.g. a serve process under another user).
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
