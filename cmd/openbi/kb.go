package main

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"openbi/internal/kb"
	"openbi/internal/provenance"
)

// cmdKB dispatches the knowledge-base utility subcommands.
func cmdKB(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("kb: usage: openbi kb <merge|verify|keygen> ...")
	}
	switch args[0] {
	case "merge":
		return cmdKBMerge(args[1:])
	case "verify":
		return cmdKBVerify(args[1:])
	case "keygen":
		return cmdKBKeygen(args[1:])
	default:
		return fmt.Errorf("kb: unknown subcommand %q (want merge, verify or keygen)", args[0])
	}
}

// cmdKBMerge recombines the shard files of one `openbi experiments -shard`
// run into a single knowledge base. The merge is deterministic and
// validated: shard files may be given in any order, but they must all
// belong to the same run and together cover every grid cell exactly once.
// The resulting kb.json is byte-identical to the monolithic run with the
// same seed; the printed sha256 makes that easy to verify across machines.
// A provenance manifest is emitted beside the output: its merkle root is
// recomputed two ways (from the per-shard trees and from the merged
// records) and the merge refuses to finish if they disagree.
func cmdKBMerge(args []string) error {
	fs := flag.NewFlagSet("kb merge", flag.ExitOnError)
	out := fs.String("out", "kb.json", "merged knowledge base output path")
	keyPath := fs.String("key", "", "ed25519 private key file to sign the manifest with (see openbi kb keygen)")
	fs.Parse(args)
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("kb merge: no shard files given (run `openbi experiments -shard i/n` first)")
	}
	priv, err := loadSigningKey(*keyPath)
	if err != nil {
		return fmt.Errorf("kb merge: %w", err)
	}
	shards := make([]*kb.Shard, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return fmt.Errorf("kb merge: %w", err)
		}
		sh, err := kb.LoadShard(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("kb merge: %s: %w", p, err)
		}
		shards = append(shards, sh)
	}
	merged, err := kb.Merge(shards...)
	if err != nil {
		return fmt.Errorf("kb merge: %w", err)
	}
	digest := sha256.New()
	var doc bytes.Buffer
	if err := writeFileAtomic(*out, func(w *os.File) error {
		return merged.Save(io.MultiWriter(w, digest, &doc))
	}); err != nil {
		return err
	}
	m, err := kb.BuildMergedManifest(doc.Bytes(), merged, shards...)
	if err != nil {
		return fmt.Errorf("kb merge: %w", err)
	}
	if err := signAndWriteManifest(m, *out+".manifest", priv); err != nil {
		return fmt.Errorf("kb merge: %w", err)
	}
	fmt.Printf("merged %d shards (%d records) into %s\nsha256 %s\nmanifest %s (merkle root %s)\n",
		len(shards), merged.Len(), *out, hex.EncodeToString(digest.Sum(nil)),
		*out+".manifest", m.MerkleRoot)
	return nil
}

// cmdKBVerify re-derives the merkle tree from a knowledge base on disk and
// checks it against the manifest emitted when the KB was built. Any
// single-byte corruption is detected; when the damage is inside a record's
// canonical encoding, the first corrupted record is named along with its
// merkle audit path, so the bad record can be pinpointed without diffing
// the whole file.
func cmdKBVerify(args []string) error {
	fs := flag.NewFlagSet("kb verify", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "manifest to verify against (default <kb path>.manifest)")
	pubPath := fs.String("pub", "", "require the manifest to be signed by exactly this ed25519 public key file")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("kb verify: usage: openbi kb verify [-manifest m] [-pub key.pub] kb.json")
	}
	path := fs.Arg(0)
	if *manifestPath == "" {
		*manifestPath = path + ".manifest"
	}

	var pub ed25519.PublicKey
	if *pubPath != "" {
		var err error
		pub, err = provenance.LoadPublicKeyFile(*pubPath)
		if err != nil {
			return fmt.Errorf("kb verify: %w", err)
		}
	}
	doc, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kb verify: %w", err)
	}
	m, err := provenance.LoadFile(*manifestPath)
	if err != nil {
		return fmt.Errorf("kb verify: %w", err)
	}

	// Signature policy first: a tampered manifest must not get to vouch
	// for tampered records.
	switch sigErr := m.VerifySignature(pub); {
	case sigErr == nil:
		fmt.Printf("signature: OK (key %s)\n", m.Signer())
	case errors.Is(sigErr, provenance.ErrUnsigned) && pub == nil:
		fmt.Println("signature: WARNING — manifest is unsigned; integrity only, no authenticity")
	default:
		return fmt.Errorf("kb verify: %w", sigErr)
	}

	base, err := kb.Load(bytes.NewReader(doc))
	if err != nil {
		return fmt.Errorf("kb verify: %s is not a loadable knowledge base (document hash check impossible to attribute to a record): %w", path, err)
	}
	leaves, err := kb.RecordLeaves(base.Records)
	if err != nil {
		return fmt.Errorf("kb verify: %w", err)
	}
	if err := m.Verify(doc, leaves); err != nil {
		var rec *provenance.RecordMismatchError
		if errors.As(err, &rec) {
			fmt.Printf("FAIL: record %d does not match the manifest\n  want leaf %s\n  got  leaf %s\n  audit path: %s\n",
				rec.Index, rec.Want, rec.Got, strings.Join(rec.Proof, " -> "))
		}
		return fmt.Errorf("kb verify: %w", err)
	}
	fmt.Printf("OK: %d records, merkle root %s\n", m.Records, m.MerkleRoot)
	if m.DatasetHash != "" {
		fmt.Printf("dataset sha256 %s\n", m.DatasetHash)
	}
	if m.GridFingerprint != "" {
		fmt.Printf("grid fingerprint %s\n", m.GridFingerprint)
	}
	if len(m.Shards) > 0 {
		fmt.Printf("merged from %d shards\n", len(m.Shards))
	}
	return nil
}

// cmdKBKeygen writes a fresh ed25519 keypair for manifest signing. The
// private key file is created 0600; hand the public half to `openbi serve
// -manifest-pub` and `openbi kb verify -pub`.
func cmdKBKeygen(args []string) error {
	fs := flag.NewFlagSet("kb keygen", flag.ExitOnError)
	out := fs.String("out", "openbi.key", "private key output path (public key goes to <out>.pub)")
	fs.Parse(args)
	pub, priv, err := provenance.GenerateKeyPair()
	if err != nil {
		return fmt.Errorf("kb keygen: %w", err)
	}
	if err := provenance.SavePrivateKeyFile(*out, priv); err != nil {
		return fmt.Errorf("kb keygen: %w", err)
	}
	pubPath := *out + ".pub"
	if err := provenance.SavePublicKeyFile(pubPath, pub); err != nil {
		return fmt.Errorf("kb keygen: %w", err)
	}
	fmt.Printf("private key %s\npublic key  %s (%s)\n", *out, pubPath, hex.EncodeToString(pub))
	return nil
}

// loadSigningKey loads an optional ed25519 private key; "" means unsigned.
func loadSigningKey(path string) (ed25519.PrivateKey, error) {
	if path == "" {
		return nil, nil
	}
	return provenance.LoadPrivateKeyFile(path)
}

// signAndWriteManifest optionally signs m and writes it atomically.
func signAndWriteManifest(m *provenance.Manifest, path string, priv ed25519.PrivateKey) error {
	if priv != nil {
		if err := m.Sign(priv); err != nil {
			return err
		}
	}
	return writeFileAtomic(path, func(w *os.File) error {
		return m.Save(w)
	})
}
