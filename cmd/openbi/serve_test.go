package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLIServeRejectsCorruptKB(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "kb.json")
	if err := os.WriteFile(bad, []byte("not a knowledge base"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := cmdServe([]string{"-kb", bad, "-addr", "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "loading") {
		t.Fatalf("err = %v, want load failure", err)
	}
}

func TestCLIServeRejectsBadAddr(t *testing.T) {
	// No KB on disk is fine (serve starts empty), but the listen must fail
	// fast on a nonsense address instead of hanging the command.
	err := cmdServe([]string{"-kb", filepath.Join(t.TempDir(), "absent.json"),
		"-addr", "256.256.256.256:99999"})
	if err == nil || !strings.Contains(err.Error(), "listen") {
		t.Fatalf("err = %v, want listen failure", err)
	}
}
