package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed. A goroutine drains the pipe concurrently so commands
// larger than the pipe buffer cannot deadlock.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	errRun := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if errRun != nil {
		t.Fatalf("command failed: %v", errRun)
	}
	return out
}

func TestCLIGenerateAndProfile(t *testing.T) {
	dir := t.TempDir()
	nt := filepath.Join(dir, "m.nt")
	out := captureStdout(t, func() error {
		return cmdGenerate([]string{"-kind", "municipal", "-n", "80", "-dirty", "0.2", "-out", nt, "-seed", "3"})
	})
	if !strings.Contains(out, "triples") {
		t.Fatalf("generate output: %q", out)
	}
	if _, err := os.Stat(nt); err != nil {
		t.Fatal("no output file")
	}

	out = captureStdout(t, func() error {
		return cmdProfile([]string{"-in", nt, "-class", "fundingLevel"})
	})
	if !strings.Contains(out, "LOD profile") {
		t.Fatalf("profile should include the graph-level section:\n%s", out)
	}
	if !strings.Contains(out, "completeness") {
		t.Fatalf("profile output:\n%s", out)
	}
}

func TestCLIGenerateCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "d.csv")
	captureStdout(t, func() error {
		return cmdGenerate([]string{"-kind", "classification", "-n", "50", "-out", csv})
	})
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "num1,") {
		t.Fatalf("csv header: %q", string(data[:40]))
	}
}

func TestCLIGenerateValidation(t *testing.T) {
	if err := cmdGenerate([]string{"-kind", "municipal"}); err == nil {
		t.Fatal("missing -out should error")
	}
	if err := cmdGenerate([]string{"-kind", "bogus", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestCLIProfileWritesModel(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "d.csv")
	captureStdout(t, func() error {
		return cmdGenerate([]string{"-kind", "classification", "-n", "60", "-out", csv})
	})
	model := filepath.Join(dir, "m.json")
	captureStdout(t, func() error {
		return cmdProfile([]string{"-in", csv, "-class", "class", "-model", model})
	})
	data, err := os.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "dq.severity.completeness") {
		t.Fatal("model lacks severity annotations")
	}
}

func TestCLIRepairDryRun(t *testing.T) {
	dir := t.TempDir()
	nt := filepath.Join(dir, "m.nt")
	captureStdout(t, func() error {
		return cmdGenerate([]string{"-kind", "municipal", "-n", "80", "-dirty", "0.4", "-out", nt})
	})
	out := captureStdout(t, func() error {
		return cmdRepair([]string{"-in", nt, "-class", "fundingLevel"})
	})
	if !strings.Contains(out, "impute") && !strings.Contains(out, "standardize") {
		t.Fatalf("repair plan empty for a dirty source:\n%s", out)
	}
}

func TestCLIOLAP(t *testing.T) {
	dir := t.TempDir()
	nt := filepath.Join(dir, "a.nt")
	captureStdout(t, func() error {
		return cmdGenerate([]string{"-kind", "airquality", "-n", "120", "-out", nt})
	})
	out := captureStdout(t, func() error {
		return cmdOLAP([]string{"-in", nt, "-dims", "alertLevel", "-measure", "avg:no2,count:no2"})
	})
	if !strings.Contains(out, "avg(no2)") {
		t.Fatalf("olap output:\n%s", out)
	}
}

func TestCLIOLAPValidation(t *testing.T) {
	if err := cmdOLAP([]string{"-in", "x", "-dims", "d", "-measure", "badspec"}); err == nil {
		t.Fatal("bad measure spec should error")
	}
}

func TestCLIAdviseRequiresKB(t *testing.T) {
	dir := t.TempDir()
	err := cmdAdvise([]string{"-in", "x.csv", "-class", "c", "-kb", filepath.Join(dir, "absent.json")})
	if err == nil || !strings.Contains(err.Error(), "knowledge base") {
		t.Fatalf("err = %v", err)
	}
}

func TestCLIExperimentsWorkersFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment grid")
	}
	dir := t.TempDir()
	kb1 := filepath.Join(dir, "kb1.json")
	kb2 := filepath.Join(dir, "kb2.json")
	run := func(kbPath, workers string) {
		out := captureStdout(t, func() error {
			return cmdExperiments([]string{"-rows", "60", "-folds", "2", "-seed", "5",
				"-workers", workers, "-out", kbPath})
		})
		if !strings.Contains(out, "knowledge base") {
			t.Fatalf("experiments output:\n%s", out)
		}
	}
	// The Workers knob must be wired through AND must not change results.
	run(kb1, "1")
	run(kb2, "4")
	b1, err := os.ReadFile(kb1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(kb2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("knowledge base depends on -workers; per-task seeds must make it invariant")
	}
}

func TestCLIExperimentsTimeout(t *testing.T) {
	// A 1ns budget expires before the first grid cell: the run must stop
	// with a deadline explanation instead of writing a knowledge base.
	out := filepath.Join(t.TempDir(), "kb.json")
	err := cmdExperiments([]string{"-rows", "60", "-folds", "2", "-timeout", "1ns", "-out", out})
	if err == nil || !strings.Contains(err.Error(), "-timeout exceeded") {
		t.Fatalf("err = %v, want -timeout exceeded", err)
	}
	if _, statErr := os.Stat(out); statErr == nil {
		t.Fatal("timed-out run must not write a knowledge base")
	}
}

func TestCLIMineTimeoutFlagParses(t *testing.T) {
	// Missing KB is reported before the deadline matters; the flag must
	// parse without tripping flag.ExitOnError.
	err := cmdMine([]string{"-in", "x.csv", "-class", "c", "-timeout", "5s",
		"-kb", filepath.Join(t.TempDir(), "absent.json")})
	if err == nil || !strings.Contains(err.Error(), "knowledge base") {
		t.Fatalf("err = %v", err)
	}
}

func TestCLIValidateTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small experiment grid")
	}
	dir := t.TempDir()
	kbPath := filepath.Join(dir, "kb.json")
	captureStdout(t, func() error {
		return cmdExperiments([]string{"-rows", "60", "-folds", "2", "-seed", "5", "-out", kbPath})
	})
	err := cmdValidate([]string{"-kb", kbPath, "-rows", "60", "-trials", "3", "-timeout", "1ns"})
	if err == nil || !strings.Contains(err.Error(), "-timeout exceeded") {
		t.Fatalf("err = %v, want -timeout exceeded", err)
	}
}
