package main

import (
	"os"
	"path/filepath"
)

// writeFileAtomic writes via a temp file + rename so a crash mid-write
// never leaves a torn output where a complete one is expected. Every KB
// and derived-artifact write in this command goes through it: a kill at
// any instant leaves either the old bytes or the new ones on disk, never
// a prefix — which is also what provenance verification assumes (a torn
// kb.json beside an intact manifest must be impossible to produce, not
// merely detectable).
func writeFileAtomic(path string, write func(*os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	// CreateTemp uses 0600; match os.Create's umask-filtered 0666 so the
	// output is readable by the same audience as a plain `-out` write
	// (e.g. a serve process under another user).
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
