package clean

import (
	"fmt"
	"strings"

	"openbi/internal/dq"
)

// Suggestion pairs a ready-to-run cleaning step with the measured evidence
// that motivated it — the paper's "all steps undertaken should be reported
// to the user or even interactively controlled by the user" requirement
// (§1, quoting ref [11]). The OpenBI UI shows the Reason, the user accepts
// or rejects, and the accepted steps form a Pipeline.
type Suggestion struct {
	Step   Step
	Reason string
	// Severity is the measured severity of the criterion that triggered
	// the suggestion, for ordering.
	Severity float64
}

// Suggest derives a repair plan from a measured data-quality profile.
// classColumn (may be "") is excluded from destructive repairs. Steps come
// back most-severe-problem first; an empty slice means the source needs no
// repair at the given threshold.
//
// The mapping is deliberately conservative: only criteria that cleaning can
// actually repair yield steps (label noise and dimensionality are advice
// problems — the kb layer handles them by algorithm choice, not by data
// surgery).
func Suggest(p dq.Profile, classColumn string, threshold float64) []Suggestion {
	if threshold <= 0 {
		threshold = 0.05
	}
	var out []Suggestion
	var exclude []string
	if classColumn != "" {
		exclude = []string{classColumn}
	}

	if s := p.Severity(dq.Duplicates); s >= threshold {
		out = append(out, Suggestion{
			Step:     Dedup{Fuzzy: s >= 0.2},
			Severity: s,
			Reason: fmt.Sprintf("%.0f%% of rows repeat an earlier row; duplicate rows leak across "+
				"cross-validation folds and inflate apparent accuracy", s*100),
		})
	}
	if s := p.Severity(dq.Completeness); s >= threshold {
		strategy := MeanMode
		// Heavy incompleteness deserves the better estimator.
		if s >= 0.25 {
			strategy = KNNImpute
		}
		out = append(out, Suggestion{
			Step:     Imputer{Strategy: strategy, ExcludeColumns: exclude},
			Severity: s,
			Reason: fmt.Sprintf("%.0f%% of attribute cells are missing; imputation restores "+
				"instances that row-deletion would discard", s*100),
		})
	}
	if s := p.Severity(dq.AttributeNoise); s >= threshold {
		out = append(out, Suggestion{
			Step:     OutlierFilter{K: 3, ExcludeColumns: exclude},
			Severity: s,
			Reason: fmt.Sprintf("%.0f%% of numeric cells sit outside the Tukey fences; extreme "+
				"outliers distort distance-based and linear methods", s*100),
		})
	}
	// Inconsistent spellings surface as implausibly large nominal
	// dictionaries relative to the rows.
	for _, cp := range p.Columns {
		if cp.Kind == "nominal" && p.Rows > 20 && cp.Levels > p.Rows/3 {
			out = append(out, Suggestion{
				Step:     Standardizer{Lowercase: true, Dates: true},
				Severity: float64(cp.Levels) / float64(p.Rows),
				Reason: fmt.Sprintf("column %q has %d distinct labels over %d rows; spelling "+
					"variants likely split one category into many", cp.Name, cp.Levels, p.Rows),
			})
			break // one standardizer covers every column
		}
	}

	// Most severe first, stable for equal severities.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Severity > out[j-1].Severity; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// PipelineFrom assembles the suggested steps into a runnable Pipeline in
// suggestion order.
func PipelineFrom(suggestions []Suggestion) Pipeline {
	p := Pipeline{}
	for _, s := range suggestions {
		p.Steps = append(p.Steps, s.Step)
	}
	return p
}

// Describe renders the plan for the user.
func Describe(suggestions []Suggestion) string {
	if len(suggestions) == 0 {
		return "no repairs suggested: the source meets the quality threshold\n"
	}
	var b strings.Builder
	for i, s := range suggestions {
		fmt.Fprintf(&b, "%d. %s — %s\n", i+1, s.Step.Name(), s.Reason)
	}
	return b.String()
}
