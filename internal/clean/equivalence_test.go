package clean

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// This file checks that the cursor-backed cleaning kernels are exact
// ports: each step must produce a table byte-identical (table.Equal, NaN
// matching NaN, nominal cells by label) to the pre-port row-at-a-time
// implementation, with the same change count, over randomized dirty
// tables. The ref* helpers below are copies of the old implementations.

// refImputerApply is the pre-cursor Imputer.Apply (mean/median + mode).
func refImputerApply(im Imputer, t *table.Table) (*table.Table, int) {
	out := t.ShallowClone()
	excluded := map[string]bool{}
	for _, n := range im.ExcludeColumns {
		excluded[n] = true
	}
	changed := 0
	for j := 0; j < out.NumCols(); j++ {
		c := out.Column(j)
		if excluded[c.Name] {
			continue
		}
		if c.Kind == table.Numeric {
			fill := stats.Mean(c.Nums)
			if im.Strategy == Median {
				fill = stats.Median(c.Nums)
			}
			if stats.IsMissing(fill) {
				continue
			}
			var owned *table.Column
			for r := range c.Nums {
				if c.IsMissing(r) {
					if owned == nil {
						owned = out.OwnedColumn(j)
					}
					owned.Nums[r] = fill
					changed++
				}
			}
			continue
		}
		counts := c.Counts()
		mode, best := -1, 0
		for code, n := range counts {
			if n > best {
				mode, best = code, n
			}
		}
		if mode < 0 {
			continue
		}
		var owned *table.Column
		for r := range c.Cats {
			if c.Cats[r] == table.MissingCat {
				if owned == nil {
					owned = out.OwnedColumn(j)
				}
				owned.Cats[r] = mode
				changed++
			}
		}
	}
	return out, changed
}

// refRowKey is the old label-rendered row key, without its "?"/separator
// collisions folded in: the equivalence corpus uses collision-free labels,
// so old and new keys partition rows identically there.
func refRowKey(t *table.Table, r int) string {
	var b strings.Builder
	for i := 0; i < t.NumCols(); i++ {
		c := t.Column(i)
		if i > 0 {
			b.WriteByte(0x1f)
		}
		if c.IsMissing(r) {
			b.WriteByte('?')
			continue
		}
		if c.Kind == table.Numeric {
			fmt.Fprintf(&b, "%.9g", c.Nums[r])
		} else {
			b.WriteString(c.Label(c.Cats[r]))
		}
	}
	return b.String()
}

// refFuzzyRowMatch is the pre-port fuzzyRowMatch working through *Table.
func refFuzzyRowMatch(t *table.Table, a, b int, ranges []float64, maxEdit int, tol float64) bool {
	for j, c := range t.Columns() {
		am, bm := c.IsMissing(a), c.IsMissing(b)
		if am != bm {
			return false
		}
		if am {
			continue
		}
		if c.Kind == table.Numeric {
			if ranges[j] == 0 {
				if c.Nums[a] != c.Nums[b] {
					return false
				}
				continue
			}
			if math.Abs(c.Nums[a]-c.Nums[b]) > tol*ranges[j] {
				return false
			}
			continue
		}
		la, lb := c.Label(c.Cats[a]), c.Label(c.Cats[b])
		if la == lb {
			continue
		}
		na := strings.ToLower(normalizeLabel(la))
		nb := strings.ToLower(normalizeLabel(lb))
		if Levenshtein(na, nb) > maxEdit {
			return false
		}
	}
	return true
}

// refDedupApply is the pre-port Dedup.Apply over string row keys.
func refDedupApply(d Dedup, t *table.Table) (*table.Table, int) {
	rows := t.NumRows()
	keep := make([]int, 0, rows)
	seen := make(map[string]bool, rows)
	var survivors []int

	maxEdit := d.MaxEditDistance
	if maxEdit <= 0 {
		maxEdit = 1
	}
	tol := d.Tolerance
	if tol <= 0 {
		tol = 0.01
	}
	cols := t.Columns()
	ranges := make([]float64, len(cols))
	for j, c := range cols {
		if c.Kind != table.Numeric {
			continue
		}
		lo, hi := stats.MinMax(c.Nums)
		if !stats.IsMissing(lo) && hi > lo {
			ranges[j] = hi - lo
		}
	}
	blockCol := -1
	for j, c := range cols {
		if c.Kind == table.Nominal {
			blockCol = j
			break
		}
	}
	blockKey := func(r int) (rune, bool) {
		if blockCol < 0 || cols[blockCol].IsMissing(r) {
			return 0, false
		}
		lbl := strings.ToLower(normalizeLabel(cols[blockCol].Label(cols[blockCol].Cats[r])))
		if lbl == "" {
			return 0, false
		}
		return []rune(lbl)[0], true
	}
	blocks := map[rune][]int{}
	for r := 0; r < rows; r++ {
		key := refRowKey(t, r)
		if seen[key] {
			continue
		}
		isDup := false
		if d.Fuzzy {
			candidates := survivors
			if bk, ok := blockKey(r); ok {
				candidates = blocks[bk]
			}
			for _, q := range candidates {
				if refFuzzyRowMatch(t, r, q, ranges, maxEdit, tol) {
					isDup = true
					break
				}
			}
		}
		if isDup {
			continue
		}
		seen[key] = true
		keep = append(keep, r)
		survivors = append(survivors, r)
		if bk, ok := blockKey(r); ok {
			blocks[bk] = append(blocks[bk], r)
		}
	}
	return t.SelectRows(keep), rows - len(keep)
}

// refStandardizerApply is the pre-COW-fix Standardizer.Apply, minus its
// unconditional column replacement (the fixed behaviour is pinned by
// TestStandardizerCopyOnWriteUnchangedColumns; here only cell values and
// the change count are compared).
func refStandardizerApply(s Standardizer, t *table.Table) (*table.Table, int, error) {
	out := t.ShallowClone()
	changed := 0
	for j := 0; j < out.NumCols(); j++ {
		c := out.Column(j)
		if c.Kind == table.Numeric {
			continue
		}
		nc := table.NewNominalColumn(c.Name)
		for r := 0; r < c.Len(); r++ {
			if c.IsMissing(r) {
				nc.AppendMissing()
				continue
			}
			orig := c.Label(c.Cats[r])
			lbl := normalizeLabel(orig)
			if s.Lowercase {
				lbl = strings.ToLower(lbl)
			}
			if s.Dates {
				if iso, ok := parseDate(lbl); ok {
					lbl = iso
				}
			}
			if lbl != orig {
				changed++
			}
			nc.AppendLabel(lbl)
		}
		if err := out.ReplaceColumn(j, nc); err != nil {
			return nil, 0, err
		}
	}
	return out, changed, nil
}

// refOutlierApply is the pre-port OutlierFilter.Apply over map fences.
func refOutlierApply(o OutlierFilter, t *table.Table) (*table.Table, int) {
	k := o.K
	if k <= 0 {
		k = 3
	}
	excluded := map[string]bool{}
	for _, n := range o.ExcludeColumns {
		excluded[n] = true
	}
	type fence struct{ lo, hi float64 }
	fences := map[int]fence{}
	for j, c := range t.Columns() {
		if c.Kind != table.Numeric || excluded[c.Name] {
			continue
		}
		q1, q3 := stats.Quantile(c.Nums, 0.25), stats.Quantile(c.Nums, 0.75)
		if stats.IsMissing(q1) || stats.IsMissing(q3) {
			continue
		}
		iqr := q3 - q1
		fences[j] = fence{q1 - k*iqr, q3 + k*iqr}
	}
	rows := t.NumRows()
	keep := make([]int, 0, rows)
	for r := 0; r < rows; r++ {
		ok := true
		for j, f := range fences {
			c := t.Column(j)
			if c.IsMissing(r) {
				continue
			}
			if c.Nums[r] < f.lo || c.Nums[r] > f.hi {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, r)
		}
	}
	return t.SelectRows(keep), rows - len(keep)
}

// randomDirtyTable fabricates the shapes the cleaning steps dispatch on:
// messy nominal labels (case/whitespace variants, date spellings), numeric
// columns with missing cells and occasional extreme outliers, duplicated
// rows, and sometimes an all-missing numeric column.
func randomDirtyTable(seed int64, rows int) *table.Table {
	rng := stats.NewRand(seed)
	labels := []string{
		"red", "Red", " RED ", "blue", "BLUE", "green green",
		"05/06/2020", "Jan 2, 2006", "2006-01-02", "12/25/2020",
	}
	tb := table.New("dirty")
	c1 := table.NewNominalColumn("c1")
	c2 := table.NewNominalColumn("c2")
	n1 := table.NewNumericColumn("n1")
	n2 := table.NewNumericColumn("n2")
	allMissing := rng.Intn(5) == 0
	appendRow := func() {
		if rng.Float64() < 0.15 {
			c1.AppendMissing()
		} else {
			c1.AppendLabel(labels[rng.Intn(len(labels))])
		}
		if rng.Float64() < 0.15 {
			c2.AppendMissing()
		} else {
			c2.AppendLabel(labels[rng.Intn(len(labels))])
		}
		switch {
		case rng.Float64() < 0.2:
			n1.AppendFloat(math.NaN())
		case rng.Float64() < 0.1:
			n1.AppendFloat(rng.NormFloat64() * 1e6) // extreme outlier
		default:
			n1.AppendFloat(rng.NormFloat64())
		}
		if allMissing || rng.Float64() < 0.2 {
			n2.AppendFloat(math.NaN())
		} else {
			n2.AppendFloat(float64(rng.Intn(10)))
		}
	}
	for r := 0; r < rows; r++ {
		if r > 0 && rng.Float64() < 0.25 {
			// Duplicate an earlier row exactly.
			src := rng.Intn(r)
			for _, c := range []*table.Column{c1, c2} {
				if c.Cats[src] == table.MissingCat {
					c.AppendMissing()
				} else {
					c.AppendCode(c.Cats[src])
				}
			}
			n1.AppendFloat(n1.Nums[src])
			n2.AppendFloat(n2.Nums[src])
			continue
		}
		appendRow()
	}
	tb.MustAddColumn(c1)
	tb.MustAddColumn(c2)
	tb.MustAddColumn(n1)
	tb.MustAddColumn(n2)
	return tb
}

// TestCleanStepsMatchRowAtATimeReferences is the equivalence property
// test: every ported step must reproduce its pre-port reference exactly
// on randomized dirty tables.
func TestCleanStepsMatchRowAtATimeReferences(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		tb := randomDirtyTable(seed, 50+int(seed)*9)

		for _, strat := range []ImputeStrategy{MeanMode, Median} {
			im := Imputer{Strategy: strat, ExcludeColumns: []string{"c2"}}
			got, gotN, err := im.Apply(tb)
			if err != nil {
				t.Fatal(err)
			}
			want, wantN := refImputerApply(im, tb)
			if gotN != wantN || !table.Equal(got, want) {
				t.Fatalf("seed %d: %s diverged from reference (changed %d vs %d)", seed, im.Name(), gotN, wantN)
			}
		}

		for _, d := range []Dedup{{}, {Fuzzy: true, MaxEditDistance: 1, Tolerance: 0.01}} {
			got, gotN, err := d.Apply(tb)
			if err != nil {
				t.Fatal(err)
			}
			want, wantN := refDedupApply(d, tb)
			if gotN != wantN || !table.Equal(got, want) {
				t.Fatalf("seed %d: %s diverged from reference (removed %d vs %d)", seed, d.Name(), gotN, wantN)
			}
		}

		st := Standardizer{Lowercase: true, Dates: true}
		got, gotN, err := st.Apply(tb)
		if err != nil {
			t.Fatal(err)
		}
		want, wantN, err := refStandardizerApply(st, tb)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != wantN || !table.Equal(got, want) {
			t.Fatalf("seed %d: standardize diverged from reference (changed %d vs %d)", seed, gotN, wantN)
		}

		for _, o := range []OutlierFilter{{K: 3}, {K: 1.5, ExcludeColumns: []string{"n2"}}} {
			got, gotN, err := o.Apply(tb)
			if err != nil {
				t.Fatal(err)
			}
			want, wantN := refOutlierApply(o, tb)
			if gotN != wantN || !table.Equal(got, want) {
				t.Fatalf("seed %d: outlier-filter diverged from reference (removed %d vs %d)", seed, gotN, wantN)
			}
		}
	}
}
