// Package clean implements the preprocessing/ETL phase of the KDD process
// (Figure 1, phase i) — the cleaning techniques the paper's related-work
// section surveys: duplicate detection and elimination [1,5], missing
// value imputation [16], and representation standardization [13]. The
// E-CLEAN experiment measures how much classifier quality each technique
// buys back on corrupted data.
package clean

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// Step is a cleaning operation over a table; steps never mutate their
// input. Steps are copy-on-write: the returned table may share untouched
// columns with the input (cloning them lazily if written later), so only
// the columns a repair actually changes are copied.
type Step interface {
	// Name identifies the step in reports.
	Name() string
	// Apply returns the cleaned copy and the number of cells/rows changed.
	Apply(t *table.Table) (*table.Table, int, error)
}

// Pipeline chains steps in order, collecting a per-step change report.
type Pipeline struct {
	Steps []Step
}

// Report records what one step did.
type Report struct {
	Step    string
	Changed int
}

// Run applies the pipeline and returns the final table plus the report.
func (p Pipeline) Run(t *table.Table) (*table.Table, []Report, error) {
	out := t
	reports := make([]Report, 0, len(p.Steps))
	for _, s := range p.Steps {
		next, changed, err := s.Apply(out)
		if err != nil {
			return nil, nil, fmt.Errorf("clean: step %s: %w", s.Name(), err)
		}
		reports = append(reports, Report{Step: s.Name(), Changed: changed})
		out = next
	}
	return out, reports, nil
}

// ---- Imputation ----

// ImputeStrategy selects how missing cells are filled.
type ImputeStrategy int

const (
	// MeanMode fills numeric cells with the column mean and nominal cells
	// with the column mode.
	MeanMode ImputeStrategy = iota
	// Median fills numeric cells with the column median (nominal: mode).
	Median
	// KNNImpute fills cells from the k nearest rows by Gower distance —
	// the microarray-style estimator of Troyanskaya et al. [16].
	KNNImpute
)

// Imputer fills missing cells.
type Imputer struct {
	Strategy ImputeStrategy
	// K is the neighbourhood size for KNNImpute (default 5).
	K int
	// ExcludeColumns names columns to leave untouched (e.g. the class).
	ExcludeColumns []string
}

// Name implements Step.
func (im Imputer) Name() string {
	switch im.Strategy {
	case Median:
		return "impute-median"
	case KNNImpute:
		return "impute-knn"
	default:
		return "impute-mean-mode"
	}
}

// Apply fills missing cells per the strategy. Copy-on-write: columns with
// nothing to impute stay shared with the input. The scan reads raw column
// spans through one shared Cursor (the write side still promotes through
// OwnedColumn on the first fill only — reading the pre-promotion span stays
// correct because observed cells are never rewritten).
func (im Imputer) Apply(t *table.Table) (*table.Table, int, error) {
	out := t.ShallowClone()
	excluded := map[string]bool{}
	for _, n := range im.ExcludeColumns {
		excluded[n] = true
	}
	if im.Strategy == KNNImpute {
		return im.applyKNN(out, excluded)
	}
	cur := table.NewCursor(t)
	changed := 0
	for j := 0; j < out.NumCols(); j++ {
		c := out.Column(j)
		if excluded[c.Name] {
			continue
		}
		if c.Kind == table.Numeric {
			nums, _ := cur.NumsSpan(j)
			fill := stats.Mean(nums)
			if im.Strategy == Median {
				fill = stats.Median(nums)
			}
			if stats.IsMissing(fill) {
				continue
			}
			var owned *table.Column // cloned on the first write only
			for r, v := range nums {
				if math.IsNaN(v) {
					if owned == nil {
						owned = out.OwnedColumn(j)
					}
					owned.Nums[r] = fill
					changed++
				}
			}
			continue
		}
		cats, _ := cur.CatsSpan(j)
		counts := c.Counts()
		mode, best := -1, 0
		for code, n := range counts {
			if n > best {
				mode, best = code, n
			}
		}
		if mode < 0 {
			continue
		}
		var owned *table.Column
		for r, code := range cats {
			if code == table.MissingCat {
				if owned == nil {
					owned = out.OwnedColumn(j)
				}
				owned.Cats[r] = mode
				changed++
			}
		}
	}
	return out, changed, nil
}

// applyKNN fills each incomplete row's gaps from its k nearest complete-ish
// neighbours (numeric: mean of observed neighbour values; nominal: mode).
// out is a shallow clone; columns promote to owned copies on first write,
// and the cols slice tracks promotions because Columns() exposes the live
// backing array.
func (im Imputer) applyKNN(out *table.Table, excluded map[string]bool) (*table.Table, int, error) {
	k := im.K
	if k <= 0 {
		k = 5
	}
	rows := out.NumRows()
	cols := out.Columns()

	// Ranges for Gower scaling.
	ranges := make([]float64, len(cols))
	for j, c := range cols {
		if c.Kind != table.Numeric {
			continue
		}
		lo, hi := stats.MinMax(c.Nums)
		if !stats.IsMissing(lo) && hi > lo {
			ranges[j] = hi - lo
		}
	}
	dist := func(a, b int) float64 {
		sum, n := 0.0, 0
		for j, c := range cols {
			if c.IsMissing(a) || c.IsMissing(b) {
				continue
			}
			n++
			if c.Kind == table.Numeric {
				if ranges[j] == 0 {
					continue
				}
				d := math.Abs(c.Nums[a]-c.Nums[b]) / ranges[j]
				if d > 1 {
					d = 1
				}
				sum += d
			} else if c.Cats[a] != c.Cats[b] {
				sum++
			}
		}
		if n == 0 {
			return math.Inf(1)
		}
		return sum / float64(n)
	}

	changed := 0
	for r := 0; r < rows; r++ {
		hasGap := false
		for j, c := range cols {
			if excluded[cols[j].Name] {
				continue
			}
			if c.IsMissing(r) {
				hasGap = true
				break
			}
		}
		if !hasGap {
			continue
		}
		// k nearest other rows.
		type nd struct {
			row int
			d   float64
		}
		var best []nd
		for q := 0; q < rows; q++ {
			if q == r {
				continue
			}
			d := dist(r, q)
			if math.IsInf(d, 1) {
				continue
			}
			best = append(best, nd{q, d})
		}
		sort.Slice(best, func(a, b int) bool {
			if best[a].d != best[b].d {
				return best[a].d < best[b].d
			}
			return best[a].row < best[b].row
		})
		if len(best) > k {
			best = best[:k]
		}
		for j := range cols {
			c := cols[j] // re-read: reflects promotions from earlier rows
			if excluded[c.Name] || !c.IsMissing(r) {
				continue
			}
			if c.Kind == table.Numeric {
				sum, n := 0.0, 0
				for _, nb := range best {
					if !c.IsMissing(nb.row) {
						sum += c.Nums[nb.row]
						n++
					}
				}
				if n > 0 {
					out.OwnedColumn(j).Nums[r] = sum / float64(n)
					changed++
				}
				continue
			}
			votes := map[int]int{}
			for _, nb := range best {
				if !c.IsMissing(nb.row) {
					votes[c.Cats[nb.row]]++
				}
			}
			mode, bestV := -1, 0
			codes := make([]int, 0, len(votes))
			for code := range votes {
				codes = append(codes, code)
			}
			sort.Ints(codes)
			for _, code := range codes {
				if votes[code] > bestV {
					mode, bestV = code, votes[code]
				}
			}
			if mode >= 0 {
				out.OwnedColumn(j).Cats[r] = mode
				changed++
			}
		}
	}
	return out, changed, nil
}

// ---- Deduplication ----

// Dedup removes duplicate rows: exact duplicates always, and (optionally)
// fuzzy duplicates whose nominal cells are within MaxEditDistance of an
// earlier row while numeric cells agree within Tolerance of the column
// range (blocking on the first nominal column keeps it near-linear).
type Dedup struct {
	// Fuzzy enables approximate matching beyond exact row keys.
	Fuzzy bool
	// MaxEditDistance is the per-cell Levenshtein budget (default 1).
	MaxEditDistance int
	// Tolerance is the numeric agreement band as a fraction of the column
	// range (default 0.01).
	Tolerance float64
}

// Name implements Step.
func (d Dedup) Name() string {
	if d.Fuzzy {
		return "dedup-fuzzy"
	}
	return "dedup-exact"
}

// Apply removes duplicates, keeping first occurrences; it returns the
// number of removed rows. Exact matching keys on typed cells (dictionary
// codes and 9-significant-digit numeric renderings, with an explicit
// missing tag — see table.AppendRowKey), so a row whose label is literally
// "?" is never merged with a row holding a missing cell.
func (d Dedup) Apply(t *table.Table) (*table.Table, int, error) {
	rows := t.NumRows()
	keep := make([]int, 0, rows)
	seen := make(map[string]bool, rows)
	var keyBuf []byte   // reused typed row key
	var survivors []int // for fuzzy comparison

	maxEdit := d.MaxEditDistance
	if maxEdit <= 0 {
		maxEdit = 1
	}
	tol := d.Tolerance
	if tol <= 0 {
		tol = 0.01
	}
	cols := t.Columns()
	ranges := make([]float64, len(cols))
	for j, c := range cols {
		if c.Kind != table.Numeric {
			continue
		}
		lo, hi := stats.MinMax(c.Nums)
		if !stats.IsMissing(lo) && hi > lo {
			ranges[j] = hi - lo
		}
	}

	// Blocking index for fuzzy matching: the first letter of the first
	// nominal column's normalized label. Coarser than the label itself so
	// spelling variants ("Alicante" / "alicante ") still share a block,
	// while keeping comparisons near-linear.
	blockCol := -1
	for j, c := range cols {
		if c.Kind == table.Nominal {
			blockCol = j
			break
		}
	}
	blockKey := func(r int) (rune, bool) {
		if blockCol < 0 || cols[blockCol].IsMissing(r) {
			return 0, false
		}
		lbl := strings.ToLower(normalizeLabel(cols[blockCol].Label(cols[blockCol].Cats[r])))
		if lbl == "" {
			return 0, false
		}
		return []rune(lbl)[0], true
	}
	blocks := map[rune][]int{}

	for r := 0; r < rows; r++ {
		keyBuf = t.AppendRowKey(keyBuf[:0], r)
		if seen[string(keyBuf)] {
			continue
		}
		isDup := false
		if d.Fuzzy {
			candidates := survivors
			if bk, ok := blockKey(r); ok {
				candidates = blocks[bk]
			}
			for _, q := range candidates {
				if fuzzyRowMatch(cols, r, q, ranges, maxEdit, tol) {
					isDup = true
					break
				}
			}
		}
		if isDup {
			continue
		}
		seen[string(keyBuf)] = true
		keep = append(keep, r)
		survivors = append(survivors, r)
		if bk, ok := blockKey(r); ok {
			blocks[bk] = append(blocks[bk], r)
		}
	}
	return t.SelectRows(keep), rows - len(keep), nil
}

// fuzzyRowMatch reports whether rows a and b agree cell-wise within the
// fuzzy budgets.
func fuzzyRowMatch(cols []*table.Column, a, b int, ranges []float64, maxEdit int, tol float64) bool {
	for j, c := range cols {
		am, bm := c.IsMissing(a), c.IsMissing(b)
		if am != bm {
			return false
		}
		if am {
			continue
		}
		if c.Kind == table.Numeric {
			if ranges[j] == 0 {
				if c.Nums[a] != c.Nums[b] {
					return false
				}
				continue
			}
			if math.Abs(c.Nums[a]-c.Nums[b]) > tol*ranges[j] {
				return false
			}
			continue
		}
		la, lb := c.Label(c.Cats[a]), c.Label(c.Cats[b])
		if la == lb {
			continue
		}
		na := strings.ToLower(normalizeLabel(la))
		nb := strings.ToLower(normalizeLabel(lb))
		if Levenshtein(na, nb) > maxEdit {
			return false
		}
	}
	return true
}

// Levenshtein returns the edit distance between two strings (runes).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(minInt(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// ---- Standardization ----

// Standardizer normalizes the spelling of nominal cells: trims and
// collapses whitespace, optionally lowercases, and rewrites recognizable
// dates to ISO-8601 — the "standardization of data representation, such as
// dates" example of §2.
type Standardizer struct {
	// Lowercase folds labels to lower case.
	Lowercase bool
	// Dates rewrites parseable date spellings to YYYY-MM-DD.
	Dates bool
}

// Name implements Step.
func (s Standardizer) Name() string { return "standardize" }

// dateLayouts are the spellings the standardizer recognizes, most specific
// first. Order is semantics: "02/01/2006" (day-first) is tried before
// "01/02/2006" (month-first), so an ambiguous spelling like "05/06/2020"
// deliberately resolves day-first to 2020-06-05 — matching the European
// open-data portals the paper draws from. Month-first spellings are only
// used when day-first cannot parse (e.g. "12/25/2020"). Pinned by
// TestStandardizerDateAmbiguity.
var dateLayouts = []string{
	"2006-01-02", "02/01/2006", "01/02/2006", "2/1/2006", "02-01-2006",
	"Jan 2, 2006", "2 Jan 2006", "January 2, 2006", "2006/01/02",
}

// Apply rewrites labels; a rewritten column's nominal dictionary is
// rebuilt so merged spellings share one code. Numeric columns and nominal
// columns whose labels were already standard are untouched and stay shared
// with the input (copy-on-write: only columns with at least one rewritten
// cell are replaced).
func (s Standardizer) Apply(t *table.Table) (*table.Table, int, error) {
	out := t.ShallowClone()
	changed := 0
	for j := 0; j < out.NumCols(); j++ {
		c := out.Column(j)
		if c.Kind == table.Numeric {
			continue
		}
		nc := table.NewNominalColumn(c.Name)
		colChanged := 0
		for r := 0; r < c.Len(); r++ {
			if c.IsMissing(r) {
				nc.AppendMissing()
				continue
			}
			orig := c.Label(c.Cats[r])
			lbl := normalizeLabel(orig)
			if s.Lowercase {
				lbl = strings.ToLower(lbl)
			}
			if s.Dates {
				if iso, ok := parseDate(lbl); ok {
					lbl = iso
				}
			}
			if lbl != orig {
				colChanged++
			}
			nc.AppendLabel(lbl)
		}
		if colChanged == 0 {
			continue // nothing rewritten: keep sharing the input's column
		}
		changed += colChanged
		if err := out.ReplaceColumn(j, nc); err != nil {
			return nil, 0, err
		}
	}
	return out, changed, nil
}

// parseDate tries the known layouts and returns the ISO rendering.
func parseDate(s string) (string, bool) {
	for _, layout := range dateLayouts {
		if ts, err := time.Parse(layout, s); err == nil {
			return ts.Format("2006-01-02"), true
		}
	}
	return "", false
}

// normalizeLabel trims and collapses internal whitespace.
func normalizeLabel(s string) string { return strings.Join(strings.Fields(s), " ") }

// ---- Outlier filtering ----

// OutlierFilter removes rows holding a numeric cell outside the Tukey
// fence [Q1 - K·IQR, Q3 + K·IQR] on any column.
type OutlierFilter struct {
	// K is the fence multiplier (default 3: only extreme outliers).
	K float64
	// ExcludeColumns names columns not checked.
	ExcludeColumns []string
}

// Name implements Step.
func (o OutlierFilter) Name() string { return "outlier-filter" }

// Apply drops out-of-fence rows; it returns the number removed. The scan
// is columnar: one sweep per fenced column's span marks offending rows
// (missing cells are never outliers — NaN comparisons are false), instead
// of re-resolving every column per row.
func (o OutlierFilter) Apply(t *table.Table) (*table.Table, int, error) {
	k := o.K
	if k <= 0 {
		k = 3
	}
	excluded := map[string]bool{}
	for _, n := range o.ExcludeColumns {
		excluded[n] = true
	}
	cur := table.NewCursor(t)
	rows := t.NumRows()
	bad := make([]bool, rows)
	for j, c := range t.Columns() {
		if c.Kind != table.Numeric || excluded[c.Name] {
			continue
		}
		nums, _ := cur.NumsSpan(j)
		q1, q3 := stats.Quantile(nums, 0.25), stats.Quantile(nums, 0.75)
		if stats.IsMissing(q1) || stats.IsMissing(q3) {
			continue
		}
		iqr := q3 - q1
		lo, hi := q1-k*iqr, q3+k*iqr
		for r, v := range nums {
			if v < lo || v > hi {
				bad[r] = true
			}
		}
	}
	keep := make([]int, 0, rows)
	for r, b := range bad {
		if !b {
			keep = append(keep, r)
		}
	}
	return t.SelectRows(keep), rows - len(keep), nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
