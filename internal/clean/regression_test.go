package clean

import (
	"testing"

	"openbi/internal/table"
)

// TestStandardizerCopyOnWriteUnchangedColumns is the regression test for
// the broken copy-on-write: Standardizer rebuilt and replaced every
// nominal column even when it rewrote nothing, so downstream steps saw a
// fresh allocation per column instead of sharing the input's storage. A
// column whose labels are already standard must stay pointer-identical.
func TestStandardizerCopyOnWriteUnchangedColumns(t *testing.T) {
	tb := table.New("cow")
	okCol := table.NewNominalColumn("ok", "red", "blue")
	dirty := table.NewNominalColumn("dirty", "Red", " blue ")
	num := table.NewNumericColumn("num")
	for r := 0; r < 3; r++ {
		okCol.AppendCode(r % 2)
		dirty.AppendCode(r % 2)
		num.AppendFloat(float64(r))
	}
	tb.MustAddColumn(okCol)
	tb.MustAddColumn(dirty)
	tb.MustAddColumn(num)

	out, changed, err := Standardizer{Lowercase: true, Dates: true}.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 3 {
		t.Fatalf("changed = %d, want 3 (only the dirty column's cells)", changed)
	}
	if out.Column(0) != tb.Column(0) {
		t.Fatal("already-standard nominal column was rebuilt; want it shared with the input")
	}
	if out.Column(2) != tb.Column(2) {
		t.Fatal("numeric column must stay shared with the input")
	}
	if out.Column(1) == tb.Column(1) {
		t.Fatal("rewritten column must not alias the input")
	}
	if got := out.Column(1).Label(out.Column(1).Cats[0]); got != "red" {
		t.Fatalf("dirty column not standardized: %q", got)
	}
}

// TestStandardizerDateAmbiguity pins the documented resolution of
// ambiguous date spellings: dateLayouts tries day-first (02/01/2006)
// before month-first (01/02/2006), so a spelling where both could apply
// resolves day-first, and month-first only catches spellings day-first
// cannot parse.
func TestStandardizerDateAmbiguity(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"05/06/2020", "2020-06-05", true}, // ambiguous: day-first wins
		{"01/02/2006", "2006-02-01", true}, // ambiguous: day-first wins
		{"25/12/2020", "2020-12-25", true}, // only day-first parses
		{"12/25/2020", "2020-12-25", true}, // month-first fallback
		{"3/4/2021", "2021-04-03", true},   // unpadded: day-first too
		{"2006-01-02", "2006-01-02", true}, // ISO passes through
		{"Jan 2, 2006", "2006-01-02", true},
		{"not a date", "", false},
		{"13/13/2020", "", false},
	}
	for _, c := range cases {
		got, ok := parseDate(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("parseDate(%q) = (%q, %v), want (%q, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}
