package clean

import (
	"math"
	"testing"

	"openbi/internal/dq"
	"openbi/internal/inject"
	"openbi/internal/synth"
	"openbi/internal/table"
)

func dirtyFixture(t *testing.T, specs []inject.Spec) (*table.Table, *table.Table, int) {
	t.Helper()
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 200, Seed: 3})
	dirty, err := inject.Apply(ds.T, ds.ClassCol, specs, 99)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Table(), dirty, ds.ClassCol
}

func TestImputerMeanMode(t *testing.T) {
	_, dirty, cc := dirtyFixture(t, []inject.Spec{{Criterion: dq.Completeness, Severity: 0.3}})
	out, changed, err := Imputer{Strategy: MeanMode}.Apply(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if out.MissingCells() != 0 {
		t.Fatalf("cells still missing: %d", out.MissingCells())
	}
	if changed != dirty.MissingCells() {
		t.Fatalf("changed = %d, want %d", changed, dirty.MissingCells())
	}
	if dirty.MissingCells() == 0 {
		t.Fatal("fixture was not dirty")
	}
	_ = cc
}

func TestImputerMedianUsesMedian(t *testing.T) {
	tb := table.New("t")
	c := table.NewNumericColumn("v")
	for _, v := range []float64{1, 2, 3, 1000} {
		c.AppendFloat(v)
	}
	c.AppendMissing()
	tb.MustAddColumn(c)
	out, _, err := Imputer{Strategy: Median}.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Float(4, 0); got != 2.5 {
		t.Fatalf("median fill = %v, want 2.5", got)
	}
}

func TestImputerExcludesColumns(t *testing.T) {
	tb := table.New("t")
	c := table.NewNumericColumn("v")
	c.AppendFloat(1)
	c.AppendMissing()
	tb.MustAddColumn(c)
	out, changed, err := Imputer{Strategy: MeanMode, ExcludeColumns: []string{"v"}}.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 || !out.IsMissing(1, 0) {
		t.Fatal("excluded column was imputed")
	}
}

func TestImputerKNNUsesNeighbours(t *testing.T) {
	// Two well-separated clusters; a gap in cluster B must be filled with
	// B-like values, not the global mean.
	tb := table.New("t")
	x := table.NewNumericColumn("x")
	y := table.NewNumericColumn("y")
	for i := 0; i < 10; i++ {
		x.AppendFloat(0 + float64(i)*0.01)
		y.AppendFloat(0 + float64(i)*0.01)
	}
	for i := 0; i < 10; i++ {
		x.AppendFloat(100 + float64(i)*0.01)
		if i == 5 {
			y.AppendMissing()
		} else {
			y.AppendFloat(100 + float64(i)*0.01)
		}
	}
	tb.MustAddColumn(x)
	tb.MustAddColumn(y)
	out, changed, err := Imputer{Strategy: KNNImpute, K: 3}.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 {
		t.Fatalf("changed = %d", changed)
	}
	if got := out.Float(15, 1); got < 90 {
		t.Fatalf("kNN fill = %v, want cluster-B-like (~100), not global mean (~50)", got)
	}
}

func TestImputerKNNNominalMode(t *testing.T) {
	tb := table.New("t")
	x := table.NewNumericColumn("x")
	c := table.NewNominalColumn("c", "a", "b")
	for i := 0; i < 6; i++ {
		x.AppendFloat(float64(i % 2 * 100))
		if i == 0 {
			c.AppendMissing()
		} else if i%2 == 0 {
			c.AppendCode(0)
		} else {
			c.AppendCode(1)
		}
	}
	tb.MustAddColumn(x)
	tb.MustAddColumn(c)
	out, _, err := Imputer{Strategy: KNNImpute, K: 2}.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 has x=0; nearest are rows 2,4 (x=0) with label "a".
	if out.Column(1).Label(out.Cat(0, 1)) != "a" {
		t.Fatalf("kNN nominal fill = %q, want a", out.Column(1).Label(out.Cat(0, 1)))
	}
}

func TestDedupExactRemovesInjected(t *testing.T) {
	_, dirty, _ := dirtyFixture(t, []inject.Spec{{Criterion: dq.Duplicates, Severity: 0.3}})
	out, removed, err := Dedup{}.Apply(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("no duplicates removed")
	}
	p := dq.Measure(out, dq.MeasureOptions{ClassColumn: out.NumCols() - 1})
	if p.DuplicateRatio != 0 {
		t.Fatalf("residual duplicates = %v", p.DuplicateRatio)
	}
}

func TestDedupFuzzyCatchesPerturbedCopies(t *testing.T) {
	tb := table.New("t")
	name := table.NewNominalColumn("name")
	v := table.NewNumericColumn("v")
	// original + noisy near-copy + distinct row
	name.AppendLabel("Alicante")
	v.AppendFloat(100)
	name.AppendLabel("Alicante ") // whitespace variant, same after normalize
	v.AppendFloat(100.0001)
	name.AppendLabel("Matanzas")
	v.AppendFloat(50)
	tb.MustAddColumn(name)
	tb.MustAddColumn(v)

	out, removed, err := Dedup{Fuzzy: true, MaxEditDistance: 1, Tolerance: 0.01}.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || out.NumRows() != 2 {
		t.Fatalf("fuzzy dedup removed %d rows, want 1 (rows=%d)", removed, out.NumRows())
	}
}

func TestDedupKeepsFirstOccurrence(t *testing.T) {
	tb := table.New("t")
	v := table.NewNumericColumn("v")
	for _, x := range []float64{5, 7, 5} {
		v.AppendFloat(x)
	}
	tb.MustAddColumn(v)
	out, _, err := Dedup{}.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.Float(0, 0) != 5 || out.Float(1, 0) != 7 {
		t.Fatalf("dedup order wrong: %v rows", out.NumRows())
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "ab", 2},
		{"kitten", "sitting", 3}, {"flaw", "lawn", 2}, {"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestStandardizerDatesAndCase(t *testing.T) {
	tb := table.New("t")
	d := table.NewNominalColumn("date")
	d.AppendLabel("2020-01-15")
	d.AppendLabel("15/01/2020")
	d.AppendLabel("Jan 2, 2006")
	d.AppendLabel("not a date")
	city := table.NewNominalColumn("city")
	city.AppendLabel("  Alicante  ")
	city.AppendLabel("ALICANTE")
	city.AppendLabel("alicante")
	city.AppendLabel("Berlin")
	tb.MustAddColumn(d)
	tb.MustAddColumn(city)

	out, changed, err := Standardizer{Lowercase: true, Dates: true}.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Fatal("nothing standardized")
	}
	dc := out.Column(0)
	if dc.Label(dc.Cats[1]) != "2020-01-15" {
		t.Fatalf("date rewrite = %q", dc.Label(dc.Cats[1]))
	}
	if dc.Label(dc.Cats[3]) != "not a date" {
		t.Fatal("non-date mangled")
	}
	cc := out.Column(1)
	if cc.Cats[0] != cc.Cats[1] || cc.Cats[1] != cc.Cats[2] {
		t.Fatal("case variants not merged to one code")
	}
	if cc.NumLevels() != 2 {
		t.Fatalf("city levels = %d, want 2", cc.NumLevels())
	}
}

func TestOutlierFilter(t *testing.T) {
	tb := table.New("t")
	v := table.NewNumericColumn("v")
	for i := 0; i < 50; i++ {
		v.AppendFloat(float64(i % 10))
	}
	v.AppendFloat(1e6)
	tb.MustAddColumn(v)
	out, removed, err := OutlierFilter{K: 3}.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || out.NumRows() != 50 {
		t.Fatalf("removed = %d rows = %d", removed, out.NumRows())
	}
}

func TestOutlierFilterExcludes(t *testing.T) {
	tb := table.New("t")
	v := table.NewNumericColumn("v")
	for i := 0; i < 20; i++ {
		v.AppendFloat(1)
	}
	v.AppendFloat(1e9)
	tb.MustAddColumn(v)
	_, removed, err := OutlierFilter{K: 3, ExcludeColumns: []string{"v"}}.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatal("excluded column still filtered")
	}
}

func TestPipelineRunsAllStepsInOrder(t *testing.T) {
	_, dirty, _ := dirtyFixture(t, []inject.Spec{
		{Criterion: dq.Duplicates, Severity: 0.2},
		{Criterion: dq.Completeness, Severity: 0.2},
	})
	p := Pipeline{Steps: []Step{
		Dedup{},
		Imputer{Strategy: MeanMode, ExcludeColumns: []string{"class"}},
	}}
	out, reports, err := p.Run(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Step != "dedup-exact" || reports[1].Step != "impute-mean-mode" {
		t.Fatalf("reports = %+v", reports)
	}
	if out.MissingCells() != 0 {
		t.Fatal("pipeline left missing cells")
	}
	prof := dq.Measure(out, dq.MeasureOptions{ClassColumn: out.NumCols() - 1})
	if prof.DuplicateRatio > 0.01 {
		t.Fatalf("pipeline left duplicates: %v", prof.DuplicateRatio)
	}
}

func TestCleaningRecoversCompleteness(t *testing.T) {
	clean, dirty, cc := dirtyFixture(t, []inject.Spec{{Criterion: dq.Completeness, Severity: 0.4}})
	out, _, err := Imputer{Strategy: MeanMode, ExcludeColumns: []string{"class"}}.Apply(dirty)
	if err != nil {
		t.Fatal(err)
	}
	// Imputation restores completeness; imputed means stay near truth.
	p := dq.Measure(out, dq.MeasureOptions{ClassColumn: cc})
	if p.Completeness != 1 {
		t.Fatalf("completeness = %v", p.Completeness)
	}
	origMean := 0.0
	newMean := 0.0
	for r := 0; r < clean.NumRows(); r++ {
		origMean += clean.Float(r, 0)
		newMean += out.Float(r, 0)
	}
	origMean /= float64(clean.NumRows())
	newMean /= float64(out.NumRows())
	if math.Abs(origMean-newMean) > 0.3 {
		t.Fatalf("imputed mean drifted: %v vs %v", newMean, origMean)
	}
}

// TestDedupQuestionMarkLabelVsMissing is the regression test for the
// RowKey collision: a row whose nominal cell is the literal "?" category
// and a row whose cell is missing rendered the same key, so exact dedup
// dropped one of them. They are distinct rows and both must survive.
func TestDedupQuestionMarkLabelVsMissing(t *testing.T) {
	tb := table.New("q")
	c := table.NewNominalColumn("c", "?")
	v := table.NewNumericColumn("v")
	c.AppendCode(0) // literal "?" label
	v.AppendFloat(1)
	c.AppendMissing() // genuinely missing cell
	v.AppendFloat(1)
	tb.MustAddColumn(c)
	tb.MustAddColumn(v)

	out, removed, err := Dedup{}.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 || out.NumRows() != 2 {
		t.Fatalf("dedup merged a %q-label row with a missing-cell row: removed=%d rows=%d", "?", removed, out.NumRows())
	}
}
