package clean

import (
	"strings"
	"testing"

	"openbi/internal/dq"
	"openbi/internal/inject"
	"openbi/internal/synth"
)

func profileOf(t *testing.T, specs []inject.Spec) dq.Profile {
	t.Helper()
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 200, Seed: 17})
	dirty, err := inject.Apply(ds.T, ds.ClassCol, specs, 5)
	if err != nil {
		t.Fatal(err)
	}
	return dq.Measure(dirty, dq.MeasureOptions{ClassColumn: ds.ClassCol})
}

func TestSuggestCleanSourceNeedsNothing(t *testing.T) {
	p := profileOf(t, nil)
	if got := Suggest(p, "class", 0.05); len(got) != 0 {
		t.Fatalf("clean source got %d suggestions: %s", len(got), Describe(got))
	}
	if !strings.Contains(Describe(nil), "no repairs") {
		t.Fatal("empty plan description wrong")
	}
}

func TestSuggestMissingnessTriggersImputer(t *testing.T) {
	p := profileOf(t, []inject.Spec{{Criterion: dq.Completeness, Severity: 0.3}})
	got := Suggest(p, "class", 0.05)
	if len(got) == 0 {
		t.Fatal("no suggestions for 30% missing")
	}
	imp, ok := got[0].Step.(Imputer)
	if !ok {
		t.Fatalf("first step = %s, want imputer", got[0].Step.Name())
	}
	if imp.Strategy != KNNImpute {
		t.Fatal("heavy missingness should pick kNN imputation")
	}
	if len(imp.ExcludeColumns) != 1 || imp.ExcludeColumns[0] != "class" {
		t.Fatal("class column not protected")
	}
}

func TestSuggestLightMissingnessUsesMeanMode(t *testing.T) {
	p := profileOf(t, []inject.Spec{{Criterion: dq.Completeness, Severity: 0.1}})
	got := Suggest(p, "class", 0.05)
	found := false
	for _, s := range got {
		if imp, ok := s.Step.(Imputer); ok {
			found = true
			if imp.Strategy != MeanMode {
				t.Fatal("light missingness should use mean/mode")
			}
		}
	}
	if !found {
		t.Fatal("imputer not suggested")
	}
}

func TestSuggestDuplicatesTriggersDedup(t *testing.T) {
	p := profileOf(t, []inject.Spec{{Criterion: dq.Duplicates, Severity: 0.25}})
	got := Suggest(p, "class", 0.05)
	if len(got) == 0 {
		t.Fatal("no suggestions for duplicates")
	}
	dd, ok := got[0].Step.(Dedup)
	if !ok {
		t.Fatalf("first step = %s, want dedup", got[0].Step.Name())
	}
	if !dd.Fuzzy {
		t.Fatal("heavy duplication should enable fuzzy matching")
	}
	if !strings.Contains(got[0].Reason, "inflate") {
		t.Fatalf("reason should explain the leak: %q", got[0].Reason)
	}
}

func TestSuggestOrdersBySeverity(t *testing.T) {
	p := profileOf(t, []inject.Spec{
		{Criterion: dq.Completeness, Severity: 0.4},
		{Criterion: dq.Duplicates, Severity: 0.1},
	})
	got := Suggest(p, "class", 0.05)
	if len(got) < 2 {
		t.Fatalf("suggestions = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Severity > got[i-1].Severity {
			t.Fatal("suggestions not ordered by severity")
		}
	}
}

func TestSuggestedPipelineActuallyRepairs(t *testing.T) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 200, Seed: 18})
	// Missingness first, duplication second: duplicating after deleting
	// keeps the copies exact (the reverse order would give each copy its
	// own missing cells and no exact duplicates would remain).
	dirty, err := inject.Apply(ds.T, ds.ClassCol, []inject.Spec{
		{Criterion: dq.Completeness, Severity: 0.3},
		{Criterion: dq.Duplicates, Severity: 0.2},
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	before := dq.Measure(dirty, dq.MeasureOptions{ClassColumn: ds.ClassCol})
	plan := Suggest(before, "class", 0.05)
	repaired, _, err := PipelineFrom(plan).Run(dirty)
	if err != nil {
		t.Fatal(err)
	}
	after := dq.Measure(repaired, dq.MeasureOptions{ClassColumn: ds.ClassCol})
	if after.Severity(dq.Completeness) >= before.Severity(dq.Completeness) {
		t.Fatalf("completeness not repaired: %v -> %v",
			before.Severity(dq.Completeness), after.Severity(dq.Completeness))
	}
	if after.Severity(dq.Duplicates) >= before.Severity(dq.Duplicates) {
		t.Fatalf("duplicates not repaired: %v -> %v",
			before.Severity(dq.Duplicates), after.Severity(dq.Duplicates))
	}
}

func TestDescribeListsSteps(t *testing.T) {
	p := profileOf(t, []inject.Spec{{Criterion: dq.Completeness, Severity: 0.3}})
	text := Describe(Suggest(p, "class", 0.05))
	if !strings.Contains(text, "impute") {
		t.Fatalf("description: %s", text)
	}
}
