package synth

import (
	"fmt"
	"math"

	"openbi/internal/rdf"
	"openbi/internal/stats"
)

// LODSpec parameterizes the open-government LOD generators. Dirtiness in
// [0,1] injects realistic source-level defects directly into the graph
// (dangling property gaps, duplicated entities under alternate IRIs with
// owl:sameAs links, inconsistent label spellings) so that the LOD
// integration path is exercised on data as messy as real portals.
type LODSpec struct {
	// Entities is the number of primary entities (required).
	Entities int
	// Dirtiness in [0,1] controls injected source defects (default 0).
	Dirtiness float64
	// Seed drives all randomness.
	Seed int64
}

// Namespaces used by the generators.
const (
	NSBase = "http://opendata.example.org/"
	NSDef  = NSBase + "def/"
)

// MunicipalBudgetLOD generates a municipal-finance LOD graph: one
// Municipality entity per row with population, per-capita budget figures,
// an unemployment rate, a link to its Region entity, and a fundingLevel
// classification target driven by the numeric signal. Regions form a
// second entity layer with their own properties, giving the graph genuine
// multi-hop structure.
func MunicipalBudgetLOD(spec LODSpec) (*rdf.Graph, error) {
	if spec.Entities <= 0 {
		return nil, fmt.Errorf("synth: Entities must be positive, got %d", spec.Entities)
	}
	rng := stats.NewRand(spec.Seed)
	g := rdf.NewGraph()

	typePred := rdf.NewIRI(rdf.RDFType)
	labelPred := rdf.NewIRI(rdf.RDFSLabel)
	munClass := rdf.NewIRI(NSDef + "Municipality")
	regClass := rdf.NewIRI(NSDef + "Region")

	population := rdf.NewIRI(NSDef + "population")
	budgetEdu := rdf.NewIRI(NSDef + "budgetEducationPerCapita")
	budgetHealth := rdf.NewIRI(NSDef + "budgetHealthPerCapita")
	unemployment := rdf.NewIRI(NSDef + "unemploymentRate")
	inRegion := rdf.NewIRI(NSDef + "inRegion")
	fundingLevel := rdf.NewIRI(NSDef + "fundingLevel")
	gdp := rdf.NewIRI(NSDef + "gdpPerCapita")
	sameAs := rdf.NewIRI(rdf.OWLSameAs)

	// Region layer.
	const regions = 8
	regionTerms := make([]rdf.Term, regions)
	regionWealth := make([]float64, regions)
	for i := 0; i < regions; i++ {
		regionTerms[i] = rdf.NewIRI(fmt.Sprintf("%sregion/%d", NSBase, i+1))
		regionWealth[i] = 20000 + 2500*float64(i) + stats.Gaussian(rng, 0, 1500)
		g.Add(rdf.Triple{S: regionTerms[i], P: typePred, O: regClass})
		g.Add(rdf.Triple{S: regionTerms[i], P: labelPred, O: rdf.NewLangLiteral(fmt.Sprintf("Region %d", i+1), "en")})
		g.Add(rdf.Triple{S: regionTerms[i], P: gdp, O: rdf.NewDouble(round2(regionWealth[i]))})
	}

	for i := 0; i < spec.Entities; i++ {
		mun := rdf.NewIRI(fmt.Sprintf("%smunicipality/%d", NSBase, i+1))
		g.Add(rdf.Triple{S: mun, P: typePred, O: munClass})

		region := rng.Intn(regions)
		pop := math.Exp(stats.Gaussian(rng, 9.5, 1.1)) // log-normal population
		wealth := regionWealth[region] / 25000         // 0.8 .. 1.6-ish
		edu := 300*wealth + stats.Gaussian(rng, 0, 40)
		health := 420*wealth + stats.Gaussian(rng, 0, 55)
		unemp := clampF(22-12*wealth+stats.Gaussian(rng, 0, 2.5), 1, 35)

		// Target: per-capita funding tier, a noisy function of the signal.
		score := edu + health - 18*unemp
		level := "low"
		switch {
		case score > 640:
			level = "high"
		case score > 480:
			level = "medium"
		}

		label := fmt.Sprintf("Municipality %d", i+1)
		if spec.Dirtiness > 0 && rng.Float64() < spec.Dirtiness/2 {
			label = fmt.Sprintf("MUNICIPALITY %d ", i+1) // inconsistent spelling
		}
		g.Add(rdf.Triple{S: mun, P: labelPred, O: rdf.NewLangLiteral(label, "en")})
		g.Add(rdf.Triple{S: mun, P: inRegion, O: regionTerms[region]})
		g.Add(rdf.Triple{S: mun, P: fundingLevel, O: rdf.NewLiteral(level)})

		// Dirtiness: drop properties (source-level incompleteness).
		emit := func(p rdf.Term, v float64) {
			if spec.Dirtiness > 0 && rng.Float64() < spec.Dirtiness {
				return
			}
			g.Add(rdf.Triple{S: mun, P: p, O: rdf.NewDouble(round2(v))})
		}
		emit(population, math.Round(pop))
		emit(budgetEdu, edu)
		emit(budgetHealth, health)
		emit(unemployment, unemp)

		// Dirtiness: duplicate entity published under an alternate IRI by a
		// second "portal", linked (sometimes) with owl:sameAs.
		if spec.Dirtiness > 0 && rng.Float64() < spec.Dirtiness/3 {
			alt := rdf.NewIRI(fmt.Sprintf("%smirror/mun-%d", NSBase, i+1))
			g.Add(rdf.Triple{S: alt, P: typePred, O: munClass})
			g.Add(rdf.Triple{S: alt, P: labelPred, O: rdf.NewLangLiteral(label, "en")})
			g.Add(rdf.Triple{S: alt, P: fundingLevel, O: rdf.NewLiteral(level)})
			g.Add(rdf.Triple{S: alt, P: budgetEdu, O: rdf.NewDouble(round2(edu))})
			if rng.Float64() < 0.7 {
				g.Add(rdf.Triple{S: alt, P: sameAs, O: mun})
			}
		}
	}
	return g, nil
}

// AirQualityLOD generates an air-quality monitoring LOD graph: Station
// entities with pollutant concentrations, traffic intensity, an
// industrial-zone flag and an alertLevel target, linked to City entities.
func AirQualityLOD(spec LODSpec) (*rdf.Graph, error) {
	if spec.Entities <= 0 {
		return nil, fmt.Errorf("synth: Entities must be positive, got %d", spec.Entities)
	}
	rng := stats.NewRand(spec.Seed)
	g := rdf.NewGraph()

	typePred := rdf.NewIRI(rdf.RDFType)
	labelPred := rdf.NewIRI(rdf.RDFSLabel)
	stationClass := rdf.NewIRI(NSDef + "Station")
	cityClass := rdf.NewIRI(NSDef + "City")

	no2 := rdf.NewIRI(NSDef + "no2")
	pm10 := rdf.NewIRI(NSDef + "pm10")
	o3 := rdf.NewIRI(NSDef + "o3")
	traffic := rdf.NewIRI(NSDef + "trafficIntensity")
	zone := rdf.NewIRI(NSDef + "zoneType")
	inCity := rdf.NewIRI(NSDef + "inCity")
	alert := rdf.NewIRI(NSDef + "alertLevel")

	const cities = 6
	cityTerms := make([]rdf.Term, cities)
	cityPollution := make([]float64, cities)
	for i := 0; i < cities; i++ {
		cityTerms[i] = rdf.NewIRI(fmt.Sprintf("%scity/%d", NSBase, i+1))
		cityPollution[i] = 0.7 + 0.15*float64(i)
		g.Add(rdf.Triple{S: cityTerms[i], P: typePred, O: cityClass})
		g.Add(rdf.Triple{S: cityTerms[i], P: labelPred, O: rdf.NewLangLiteral(fmt.Sprintf("City %d", i+1), "en")})
	}

	zones := []string{"residential", "industrial", "suburban"}
	for i := 0; i < spec.Entities; i++ {
		st := rdf.NewIRI(fmt.Sprintf("%sstation/%d", NSBase, i+1))
		g.Add(rdf.Triple{S: st, P: typePred, O: stationClass})
		g.Add(rdf.Triple{S: st, P: labelPred, O: rdf.NewLangLiteral(fmt.Sprintf("Station %d", i+1), "en")})

		city := rng.Intn(cities)
		zi := rng.Intn(len(zones))
		base := cityPollution[city]
		zoneFactor := 1.0
		if zones[zi] == "industrial" {
			zoneFactor = 1.5
		} else if zones[zi] == "suburban" {
			zoneFactor = 0.75
		}
		traf := clampF(stats.Gaussian(rng, 50*base, 15), 2, 100)
		vNO2 := clampF(stats.Gaussian(rng, 30*base*zoneFactor+0.3*traf, 8), 1, 200)
		vPM10 := clampF(stats.Gaussian(rng, 25*base*zoneFactor, 7), 1, 180)
		vO3 := clampF(stats.Gaussian(rng, 60-0.2*vNO2, 10), 5, 160)

		idx := vNO2/40 + vPM10/50
		level := "good"
		switch {
		case idx > 2.0:
			level = "poor"
		case idx > 1.3:
			level = "moderate"
		}

		g.Add(rdf.Triple{S: st, P: inCity, O: cityTerms[city]})
		g.Add(rdf.Triple{S: st, P: zone, O: rdf.NewLiteral(zones[zi])})
		g.Add(rdf.Triple{S: st, P: alert, O: rdf.NewLiteral(level)})
		emit := func(p rdf.Term, v float64) {
			if spec.Dirtiness > 0 && rng.Float64() < spec.Dirtiness {
				return
			}
			g.Add(rdf.Triple{S: st, P: p, O: rdf.NewDouble(round2(v))})
		}
		emit(no2, vNO2)
		emit(pm10, vPM10)
		emit(o3, vO3)
		emit(traffic, traf)
	}
	return g, nil
}

// EducationLOD generates a school-statistics LOD graph: School entities
// with staffing and socio-economic attributes and a performance target.
func EducationLOD(spec LODSpec) (*rdf.Graph, error) {
	if spec.Entities <= 0 {
		return nil, fmt.Errorf("synth: Entities must be positive, got %d", spec.Entities)
	}
	rng := stats.NewRand(spec.Seed)
	g := rdf.NewGraph()

	typePred := rdf.NewIRI(rdf.RDFType)
	schoolClass := rdf.NewIRI(NSDef + "School")
	students := rdf.NewIRI(NSDef + "students")
	ratio := rdf.NewIRI(NSDef + "studentTeacherRatio")
	income := rdf.NewIRI(NSDef + "medianFamilyIncome")
	dropout := rdf.NewIRI(NSDef + "dropoutRate")
	kind := rdf.NewIRI(NSDef + "schoolType")
	performance := rdf.NewIRI(NSDef + "performance")

	kinds := []string{"public", "charter", "private"}
	for i := 0; i < spec.Entities; i++ {
		s := rdf.NewIRI(fmt.Sprintf("%sschool/%d", NSBase, i+1))
		g.Add(rdf.Triple{S: s, P: typePred, O: schoolClass})

		ki := rng.Intn(len(kinds))
		inc := math.Exp(stats.Gaussian(rng, 10.6, 0.4))
		rat := clampF(stats.Gaussian(rng, 24-inc/15000, 3), 8, 40)
		drp := clampF(stats.Gaussian(rng, 18-inc/9000+0.5*rat, 3), 0, 60)
		stu := math.Round(clampF(stats.Gaussian(rng, 600, 220), 40, 2500))

		score := inc/1000 - 1.2*drp - 0.8*rat
		level := "low"
		switch {
		case score > 12:
			level = "high"
		case score > -4:
			level = "medium"
		}

		g.Add(rdf.Triple{S: s, P: kind, O: rdf.NewLiteral(kinds[ki])})
		g.Add(rdf.Triple{S: s, P: performance, O: rdf.NewLiteral(level)})
		emit := func(p rdf.Term, v float64) {
			if spec.Dirtiness > 0 && rng.Float64() < spec.Dirtiness {
				return
			}
			g.Add(rdf.Triple{S: s, P: p, O: rdf.NewDouble(round2(v))})
		}
		emit(students, stu)
		emit(ratio, rat)
		emit(income, inc)
		emit(dropout, drp)
	}
	return g, nil
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
