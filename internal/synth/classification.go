// Package synth generates the controlled datasets the experiments of §3.1
// require: parametric classification tables with a known clean signal
// (the "initial and representative sample ... manually cleaned" of the
// paper's method) and open-government-style Linked Open Data graphs that
// stand in for the real LOD portals the authors targeted — the substitution
// DESIGN.md documents.
package synth

import (
	"fmt"
	"math"

	"openbi/internal/mining"
	"openbi/internal/stats"
	"openbi/internal/table"
)

// ClassificationSpec parameterizes MakeClassification.
type ClassificationSpec struct {
	// Rows is the number of instances (required).
	Rows int
	// Numeric is the number of informative numeric attributes (default 6).
	Numeric int
	// Nominal is the number of informative nominal attributes (default 2).
	Nominal int
	// NominalLevels is the dictionary size of nominal attributes (default 4).
	NominalLevels int
	// Irrelevant is the number of pure-noise numeric attributes (default 0).
	Irrelevant int
	// Classes is the number of class labels (default 2).
	Classes int
	// Separation scales the distance between class centroids in standard
	// deviations; 2 gives a crisp but not trivial problem (default 2).
	Separation float64
	// ClassBalance skews the class prior: 1 means uniform, values below 1
	// shrink each successive class geometrically (default 1).
	ClassBalance float64
	// Name is the table name (default "synthetic").
	Name string
	// Seed drives all randomness.
	Seed int64
}

func (s *ClassificationSpec) applyDefaults() error {
	if s.Rows <= 0 {
		return fmt.Errorf("synth: Rows must be positive, got %d", s.Rows)
	}
	if s.Numeric == 0 && s.Nominal == 0 {
		s.Numeric = 6
		s.Nominal = 2
	}
	if s.NominalLevels <= 1 {
		s.NominalLevels = 4
	}
	if s.Classes <= 1 {
		s.Classes = 2
	}
	if s.Separation == 0 {
		s.Separation = 2
	}
	if s.ClassBalance <= 0 || s.ClassBalance > 1 {
		s.ClassBalance = 1
	}
	if s.Name == "" {
		s.Name = "synthetic"
	}
	return nil
}

// MakeClassification generates a clean, learnable classification dataset:
// class-conditional Gaussians on the numeric attributes, class-skewed
// multinomials on the nominal attributes, standard Gaussian noise on the
// irrelevant ones. The class column is the last column, named "class".
func MakeClassification(spec ClassificationSpec) (*mining.Dataset, error) {
	if err := spec.applyDefaults(); err != nil {
		return nil, err
	}
	rng := stats.NewRand(spec.Seed)

	// Class prior.
	prior := make([]float64, spec.Classes)
	w := 1.0
	for c := range prior {
		prior[c] = w
		w *= spec.ClassBalance
	}

	// Class centroids on the informative numeric attributes: random unit
	// directions scaled by Separation.
	centroids := make([][]float64, spec.Classes)
	for c := range centroids {
		v := make([]float64, spec.Numeric)
		norm := 0.0
		for j := range v {
			v[j] = rng.NormFloat64()
			norm += v[j] * v[j]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			norm = 1
		}
		for j := range v {
			v[j] = v[j] / norm * spec.Separation
		}
		centroids[c] = v
	}

	// Nominal level preference per class: each class prefers a different
	// level with weight 3, others weight 1.
	labels := make([]int, spec.Rows)
	for r := range labels {
		labels[r] = stats.Categorical(rng, prior)
	}

	t := table.New(spec.Name)
	for j := 0; j < spec.Numeric; j++ {
		col := table.NewNumericColumn(fmt.Sprintf("num%d", j+1))
		for r := 0; r < spec.Rows; r++ {
			col.AppendFloat(stats.Gaussian(rng, centroids[labels[r]][j], 1))
		}
		t.MustAddColumn(col)
	}
	for j := 0; j < spec.Nominal; j++ {
		levels := make([]string, spec.NominalLevels)
		for l := range levels {
			levels[l] = fmt.Sprintf("v%d", l+1)
		}
		col := table.NewNominalColumn(fmt.Sprintf("cat%d", j+1), levels...)
		for r := 0; r < spec.Rows; r++ {
			weights := make([]float64, spec.NominalLevels)
			preferred := (labels[r] + j) % spec.NominalLevels
			for l := range weights {
				if l == preferred {
					weights[l] = 3
				} else {
					weights[l] = 1
				}
			}
			col.AppendCode(stats.Categorical(rng, weights))
		}
		t.MustAddColumn(col)
	}
	for j := 0; j < spec.Irrelevant; j++ {
		col := table.NewNumericColumn(fmt.Sprintf("irr%d", j+1))
		for r := 0; r < spec.Rows; r++ {
			col.AppendFloat(rng.NormFloat64())
		}
		t.MustAddColumn(col)
	}

	classNames := make([]string, spec.Classes)
	for c := range classNames {
		classNames[c] = fmt.Sprintf("class%c", 'A'+c%26)
	}
	cls := table.NewNominalColumn("class", classNames...)
	for r := 0; r < spec.Rows; r++ {
		cls.AppendCode(labels[r])
	}
	t.MustAddColumn(cls)

	return mining.NewDataset(t, t.NumCols()-1)
}

// MustMakeClassification panics on spec errors; for tests and benches with
// literal specs.
func MustMakeClassification(spec ClassificationSpec) *mining.Dataset {
	ds, err := MakeClassification(spec)
	if err != nil {
		panic(err)
	}
	return ds
}
