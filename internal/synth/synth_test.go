package synth

import (
	"math"
	"testing"

	"openbi/internal/dq"
	"openbi/internal/eval"
	"openbi/internal/mining"
	"openbi/internal/rdf"
	"openbi/internal/table"
)

func TestMakeClassificationDefaults(t *testing.T) {
	ds, err := MakeClassification(ClassificationSpec{Rows: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 100 {
		t.Fatalf("rows = %d", ds.Len())
	}
	// 6 numeric + 2 nominal + class.
	if ds.T.NumCols() != 9 {
		t.Fatalf("cols = %d, want 9", ds.T.NumCols())
	}
	if ds.NumClasses() != 2 {
		t.Fatalf("classes = %d", ds.NumClasses())
	}
	if ds.T.ColumnName(ds.ClassCol) != "class" {
		t.Fatal("class column name wrong")
	}
}

func TestMakeClassificationValidation(t *testing.T) {
	if _, err := MakeClassification(ClassificationSpec{Rows: 0}); err == nil {
		t.Fatal("Rows 0 should error")
	}
}

func TestMakeClassificationDeterministic(t *testing.T) {
	a := MustMakeClassification(ClassificationSpec{Rows: 80, Seed: 5})
	b := MustMakeClassification(ClassificationSpec{Rows: 80, Seed: 5})
	if !table.Equal(a.T, b.T) {
		t.Fatal("same seed, different data")
	}
	c := MustMakeClassification(ClassificationSpec{Rows: 80, Seed: 6})
	if table.Equal(a.T, c.T) {
		t.Fatal("different seed, same data")
	}
}

func TestMakeClassificationLearnable(t *testing.T) {
	ds := MustMakeClassification(ClassificationSpec{Rows: 400, Seed: 2, Separation: 2.5})
	m, err := eval.CrossValidate(func() mining.Classifier { return mining.NewNaiveBayes() }, ds, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kappa < 0.5 {
		t.Fatalf("generated data unlearnable: kappa = %v", m.Kappa)
	}
}

func TestMakeClassificationSeparationMatters(t *testing.T) {
	easy := MustMakeClassification(ClassificationSpec{Rows: 400, Seed: 3, Separation: 3})
	hard := MustMakeClassification(ClassificationSpec{Rows: 400, Seed: 3, Separation: 0.3})
	f := func() mining.Classifier { return mining.NewLogistic(1) }
	me, err := eval.CrossValidate(f, easy, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := eval.CrossValidate(f, hard, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if me.Kappa <= mh.Kappa+0.1 {
		t.Fatalf("separation had no effect: easy %v vs hard %v", me.Kappa, mh.Kappa)
	}
}

func TestMakeClassificationImbalance(t *testing.T) {
	ds := MustMakeClassification(ClassificationSpec{Rows: 1000, Seed: 4, ClassBalance: 0.3})
	counts := ds.ClassCounts()
	if counts[1] >= counts[0] {
		t.Fatalf("balance 0.3 should shrink class B: %v", counts)
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if math.Abs(ratio-0.3) > 0.08 {
		t.Fatalf("class ratio = %v, want ≈0.3", ratio)
	}
}

func TestMakeClassificationIrrelevant(t *testing.T) {
	ds := MustMakeClassification(ClassificationSpec{Rows: 50, Seed: 5, Irrelevant: 4})
	if ds.T.ColumnIndex("irr1") < 0 || ds.T.ColumnIndex("irr4") < 0 {
		t.Fatalf("irrelevant columns missing: %v", ds.T.ColumnNames())
	}
}

func TestMakeClassificationMulticlass(t *testing.T) {
	ds := MustMakeClassification(ClassificationSpec{Rows: 300, Seed: 6, Classes: 4})
	if ds.NumClasses() != 4 {
		t.Fatalf("classes = %d", ds.NumClasses())
	}
	counts := ds.ClassCounts()
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("class %d empty: %v", c, counts)
		}
	}
}

func checkLOD(t *testing.T, g *rdf.Graph, classIRI string, wantEntities int) *table.Table {
	t.Helper()
	subs := g.SubjectsOfType(rdf.NewIRI(classIRI))
	if len(subs) < wantEntities {
		t.Fatalf("entities of %s = %d, want >= %d", classIRI, len(subs), wantEntities)
	}
	tb, err := rdf.Project(g, rdf.ProjectOptions{Class: rdf.NewIRI(classIRI)})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestMunicipalBudgetLOD(t *testing.T) {
	g, err := MunicipalBudgetLOD(LODSpec{Entities: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := checkLOD(t, g, NSDef+"Municipality", 150)
	for _, col := range []string{"population", "budgetEducationPerCapita", "unemploymentRate", "fundingLevel", "inRegion"} {
		if tb.ColumnIndex(col) < 0 {
			t.Fatalf("projected column %q missing: %v", col, tb.ColumnNames())
		}
	}
	// Target must be learnable: three levels present.
	lv := tb.ColumnByName("fundingLevel")
	if lv.Kind != table.Nominal || lv.NumLevels() < 2 {
		t.Fatalf("fundingLevel levels = %d", lv.NumLevels())
	}
	// Region layer exists and is linked.
	if regions := g.SubjectsOfType(rdf.NewIRI(NSDef + "Region")); len(regions) != 8 {
		t.Fatalf("regions = %d", len(regions))
	}
}

func TestMunicipalLODLearnable(t *testing.T) {
	g, err := MunicipalBudgetLOD(LODSpec{Entities: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := rdf.Project(g, rdf.ProjectOptions{Class: rdf.NewIRI(NSDef + "Municipality")})
	if err != nil {
		t.Fatal(err)
	}
	// Drop the free-text label column; it is an identifier.
	tb = tb.DropColumn("label")
	ds, err := mining.NewDatasetByName(tb, "fundingLevel")
	if err != nil {
		t.Fatal(err)
	}
	m, err := eval.CrossValidate(func() mining.Classifier { return mining.NewC45Tree() }, ds, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kappa < 0.5 {
		t.Fatalf("LOD target unlearnable: kappa = %v", m.Kappa)
	}
}

func TestMunicipalLODDirtiness(t *testing.T) {
	cleanG, _ := MunicipalBudgetLOD(LODSpec{Entities: 300, Seed: 3})
	dirtyG, _ := MunicipalBudgetLOD(LODSpec{Entities: 300, Seed: 3, Dirtiness: 0.4})
	cleanT, _ := rdf.Project(cleanG, rdf.ProjectOptions{Class: rdf.NewIRI(NSDef + "Municipality")})
	dirtyT, _ := rdf.Project(dirtyG, rdf.ProjectOptions{Class: rdf.NewIRI(NSDef + "Municipality")})

	pc := dq.Measure(cleanT, dq.MeasureOptions{ClassColumn: -1})
	pd := dq.Measure(dirtyT, dq.MeasureOptions{ClassColumn: -1})
	if pd.Completeness >= pc.Completeness-0.1 {
		t.Fatalf("dirtiness did not reduce completeness: clean %v dirty %v",
			pc.Completeness, pd.Completeness)
	}
	// Dirty graph publishes mirror entities (possibly sameAs-linked).
	if dirtyG.Stats().SameAsLinks == 0 {
		t.Fatal("dirty LOD should contain owl:sameAs links")
	}
	if cleanG.Stats().SameAsLinks != 0 {
		t.Fatal("clean LOD should not contain sameAs mirrors")
	}
}

func TestAirQualityLOD(t *testing.T) {
	g, err := AirQualityLOD(LODSpec{Entities: 120, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tb := checkLOD(t, g, NSDef+"Station", 120)
	for _, col := range []string{"no2", "pm10", "alertLevel", "zoneType", "inCity"} {
		if tb.ColumnIndex(col) < 0 {
			t.Fatalf("column %q missing: %v", col, tb.ColumnNames())
		}
	}
	if tb.ColumnByName("no2").Kind != table.Numeric {
		t.Fatal("no2 should project numeric")
	}
}

func TestEducationLOD(t *testing.T) {
	g, err := EducationLOD(LODSpec{Entities: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tb := checkLOD(t, g, NSDef+"School", 100)
	if tb.ColumnIndex("performance") < 0 || tb.ColumnIndex("dropoutRate") < 0 {
		t.Fatalf("columns: %v", tb.ColumnNames())
	}
}

func TestLODGeneratorsValidate(t *testing.T) {
	if _, err := MunicipalBudgetLOD(LODSpec{}); err == nil {
		t.Fatal("zero entities should error")
	}
	if _, err := AirQualityLOD(LODSpec{}); err == nil {
		t.Fatal("zero entities should error")
	}
	if _, err := EducationLOD(LODSpec{}); err == nil {
		t.Fatal("zero entities should error")
	}
}

func TestLODDeterministic(t *testing.T) {
	a, _ := MunicipalBudgetLOD(LODSpec{Entities: 50, Seed: 9})
	b, _ := MunicipalBudgetLOD(LODSpec{Entities: 50, Seed: 9})
	if a.Len() != b.Len() {
		t.Fatal("same seed, different triple count")
	}
	for _, tr := range a.Triples() {
		if !b.Has(tr) {
			t.Fatalf("same seed, missing triple %v", tr)
		}
	}
}
