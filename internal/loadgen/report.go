package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// Snapshot mirrors scripts/benchjson's file layout, so BENCH_serve.json
// plugs straight into scripts/benchcmp and the `make bench-check`
// regression gate: each offered-load level is one benchmark entry whose
// ns/op is the measured p99 (the gated metric), with throughput, quantiles
// and shed/error rates alongside as informational metrics. The knee gets
// its own ns/op-free entry so it is reported but never gated on.
type Snapshot struct {
	Go         string       `json:"go"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	CPU        string       `json:"cpu,omitempty"`
	NumCPU     int          `json:"numCPU"`
	Benchmarks []BenchEntry `json:"benchmarks"`
}

// BenchEntry is one benchmark line, benchjson-compatible.
type BenchEntry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// entryName labels a level stably across runs — fixed offered loads keep
// the same name, so benchcmp pairs them up between snapshots.
func entryName(prefix string, r *Result) string {
	if r.OfferedRPS > 0 {
		return fmt.Sprintf("%s/offered=%.0frps", prefix, r.OfferedRPS)
	}
	return fmt.Sprintf("%s/closed/c=%d", prefix, r.Concurrency)
}

// levelMetrics flattens one Result into benchjson metrics.
func levelMetrics(r *Result) map[string]float64 {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return map[string]float64{
		"ns/op":          float64(r.P99), // the gated number: p99 latency
		"p50-ms":         ms(r.P50),
		"p99-ms":         ms(r.P99),
		"p999-ms":        ms(r.P999),
		"max-ms":         ms(r.Max),
		"throughput-rps": r.Throughput,
		"error-rate":     r.ErrorRate,
		"shed-rate":      r.ShedRate,
		"requests":       float64(r.Requests),
	}
}

// BuildSnapshot assembles the committed BENCH_serve.json shape from a set
// of measured levels (one, for a plain run; the whole curve for a sweep)
// plus the sweep's knee when there is one.
func BuildSnapshot(prefix string, levels []*Result, sweep *SweepResult) Snapshot {
	snap := Snapshot{
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	for _, r := range levels {
		snap.Benchmarks = append(snap.Benchmarks, BenchEntry{
			Name:       entryName(prefix, r),
			Iterations: r.Requests,
			Metrics:    levelMetrics(r),
		})
	}
	if sweep != nil {
		snap.Benchmarks = append(snap.Benchmarks, BenchEntry{
			Name:       prefix + "/knee",
			Iterations: 1,
			Metrics: map[string]float64{
				"knee-rps":            sweep.KneeRPS,
				"knee-throughput-rps": sweep.KneeThroughput,
				"p99-budget-ms":       float64(sweep.Budget) / float64(time.Millisecond),
			},
		})
	}
	return snap
}

// WriteSnapshot emits the snapshot as indented JSON (the committed-file
// convention benchjson established).
func WriteSnapshot(w io.Writer, snap Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snap)
}

// Summary renders one Result as a human line for CLI output.
func (r *Result) Summary() string {
	mode := fmt.Sprintf("closed loop, %d conns", r.Concurrency)
	if r.OfferedRPS > 0 {
		mode = fmt.Sprintf("open loop, %.0f rps offered over %d conns", r.OfferedRPS, r.Concurrency)
	}
	return fmt.Sprintf("%s, mix %s, %s measured: %d requests, %.1f/s ok, p50 %s p99 %s p999 %s max %s, shed %.1f%%, errors %.1f%%",
		mode, r.Mix, r.Duration, r.Requests, r.Throughput, r.P50, r.P99, r.P999, r.Max,
		100*r.ShedRate, 100*r.ErrorRate)
}
