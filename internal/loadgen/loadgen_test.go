package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// okHandler answers every advise POST with a tiny JSON body.
func okHandler(calls *atomic.Int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if calls != nil {
			calls.Add(1)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"advice":{"ranking":[]},"kb":{"generation":0}}`))
	}
}

func TestClosedLoopRun(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(okHandler(&calls))
	defer ts.Close()

	res, err := Run(context.Background(), Spec{
		Target:      ts.URL,
		Concurrency: 4,
		Warmup:      50 * time.Millisecond,
		Duration:    300 * time.Millisecond,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.StatusOK != res.Requests {
		t.Fatalf("requests=%d ok=%d, want all ok and nonzero", res.Requests, res.StatusOK)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Fatalf("quantiles not ordered: p50=%v p99=%v p999=%v", res.P50, res.P99, res.P999)
	}
	if calls.Load() < res.Requests {
		t.Fatalf("server saw %d calls but %d were measured", calls.Load(), res.Requests)
	}
	if res.ErrorRate != 0 || res.ShedRate != 0 {
		t.Fatalf("unexpected error/shed rates: %v / %v", res.ErrorRate, res.ShedRate)
	}
}

func TestOpenLoopOffersScheduledRate(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(okHandler(&calls))
	defer ts.Close()

	const rps = 200.0
	res, err := Run(context.Background(), Spec{
		Target:      ts.URL,
		Concurrency: 4,
		Duration:    500 * time.Millisecond,
		RPS:         rps,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := rps * 0.5
	if got := float64(res.Requests); got < 0.7*want || got > 1.3*want {
		t.Fatalf("measured %v requests at %v rps over 500ms, want ~%v", got, rps, want)
	}
}

func TestShedAndServerErrorsCounted(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 4 {
		case 0:
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":{"status":429,"code":"overloaded"}}`, http.StatusTooManyRequests)
		case 1:
			http.Error(w, "boom", http.StatusInternalServerError)
		default:
			okHandler(nil)(w, r)
		}
	}))
	defer ts.Close()

	res, err := Run(context.Background(), Spec{
		Target: ts.URL, Concurrency: 2, Duration: 200 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 || res.Server5xx == 0 {
		t.Fatalf("shed=%d 5xx=%d, want both nonzero", res.Shed, res.Server5xx)
	}
	if res.ShedRate <= 0 || res.ErrorRate <= 0 {
		t.Fatalf("rates: shed %v error %v", res.ShedRate, res.ErrorRate)
	}
	if got := res.Shed + res.Server5xx + res.StatusOK + res.Client4xx + res.Errors; got != res.Requests {
		t.Fatalf("outcome counts %d do not sum to requests %d", got, res.Requests)
	}
}

func TestRunValidatesSpec(t *testing.T) {
	if _, err := Run(context.Background(), Spec{}); err == nil {
		t.Fatal("empty Target accepted")
	}
	if _, err := Run(context.Background(), Spec{Target: "http://x", RPS: -1}); err == nil {
		t.Fatal("negative RPS accepted")
	}
}

func TestMixSamplingDeterministicAndInRange(t *testing.T) {
	for _, name := range MixNames() {
		m, err := ParseMix(name)
		if err != nil {
			t.Fatal(err)
		}
		a := rand.New(rand.NewSource(99))
		b := rand.New(rand.NewSource(99))
		for i := 0; i < 200; i++ {
			va, vb := m.Sample(a, DefaultDim), m.Sample(b, DefaultDim)
			for j := range va {
				if va[j] != vb[j] {
					t.Fatalf("mix %s not deterministic at draw %d", name, i)
				}
				if va[j] < 0 || va[j] > 1 {
					t.Fatalf("mix %s severity %v out of range", name, va[j])
				}
				// 0.01 grid (allow float64 representation error)
				if q := va[j] * 100; math.Abs(q-math.Round(q)) > 1e-9 {
					t.Fatalf("mix %s severity %v not quantized", name, va[j])
				}
			}
		}
	}
	if _, err := ParseMix("nope"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestMixesDiffer(t *testing.T) {
	// clean must stay near zero; noisy must not.
	rng := rand.New(rand.NewSource(5))
	sum := func(m Mix) float64 {
		total := 0.0
		for i := 0; i < 100; i++ {
			for _, v := range m.Sample(rng, DefaultDim) {
				total += v
			}
		}
		return total
	}
	clean, noisy := sum(MustMix("clean")), sum(MustMix("noisy"))
	if clean >= noisy {
		t.Fatalf("clean mix total severity %v >= noisy %v", clean, noisy)
	}
}

func TestRecorderCapturesPairs(t *testing.T) {
	ts := httptest.NewServer(okHandler(nil))
	defer ts.Close()

	dir := t.TempDir()
	spec := CaptureSpec{Mix: "recorded", Seed: 42, Dim: DefaultDim, Concurrency: 2, KB: KBInfo{Generation: 3}}
	rec, err := NewRecorder(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), Spec{
		Target: ts.URL, Concurrency: 2, Duration: 150 * time.Millisecond,
		Seed: 42, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Count()
	if want == 0 {
		t.Fatal("recorder captured nothing")
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// The raw layout: header first, footer last, entries between.
	raw, err := os.ReadFile(rec.Path())
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if int64(len(lines)) != want+2 {
		t.Fatalf("file has %d lines, want %d entries + header + footer", len(lines), want)
	}
	if !bytes.Contains(lines[0], []byte(`"capture":"openbi-loadgen"`)) {
		t.Fatalf("first line is not a v2 header: %s", lines[0])
	}
	if !bytes.Contains(lines[len(lines)-1], []byte(`"footer":true`)) {
		t.Fatalf("last line is not a footer: %s", lines[len(lines)-1])
	}

	// The verified read: spec round-trips, every entry is a measured pair.
	c, err := LoadCapture(rec.Path(), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Spec != spec {
		t.Fatalf("spec round-trip: got %+v want %+v", c.Spec, spec)
	}
	if int64(len(c.Entries)) != want || c.Truncated {
		t.Fatalf("read %d entries (truncated=%v), want %d", len(c.Entries), c.Truncated, want)
	}
	for i, e := range c.Entries {
		if e.Seq != int64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
		if e.Status != 200 || e.Endpoint != "/v1/advise" {
			t.Fatalf("entry %d: status=%d endpoint=%q", i, e.Status, e.Endpoint)
		}
		var req struct {
			Severities []float64 `json:"severities"`
		}
		if err := json.Unmarshal(e.Request, &req); err != nil || len(req.Severities) != DefaultDim {
			t.Fatalf("entry %d request malformed: %v %v", i, err, req)
		}
		if len(e.Response) == 0 {
			t.Fatalf("entry %d: empty response", i)
		}
	}
}

func TestRunMeasuresObservedWindowOnEarlyCancel(t *testing.T) {
	ts := httptest.NewServer(okHandler(nil))
	defer ts.Close()

	// Nominal 10s run cancelled after ~200ms: the denominators must come
	// from the observed window, not the nominal duration, or throughput on
	// a partial run collapses toward zero.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	nominal := 10 * time.Second
	res, err := Run(ctx, Spec{
		Target: ts.URL, Concurrency: 4, Warmup: 0, Duration: nominal, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration >= time.Second {
		t.Fatalf("observed duration %v, want the ~200ms cancelled window", res.Duration)
	}
	perObserved := float64(res.StatusOK) / res.Duration.Seconds()
	if res.Throughput < 0.5*perObserved || res.Throughput > 2*perObserved {
		t.Fatalf("throughput %v not computed over the observed window (%v req in %v)",
			res.Throughput, res.StatusOK, res.Duration)
	}
	perNominal := float64(res.StatusOK) / nominal.Seconds()
	if res.Throughput < 10*perNominal {
		t.Fatalf("throughput %v looks computed over the nominal duration (%v)", res.Throughput, perNominal)
	}
}

func TestSnapshotShapeIsBenchcmpCompatible(t *testing.T) {
	r := &Result{
		Mix: "recorded", Concurrency: 4, OfferedRPS: 100, Duration: time.Second,
		Requests: 100, StatusOK: 100, Throughput: 100,
		P50: time.Millisecond, P99: 2 * time.Millisecond, P999: 3 * time.Millisecond, Max: 4 * time.Millisecond,
	}
	sweep := &SweepResult{Levels: []*Result{r}, KneeRPS: 100, KneeThroughput: 100, Budget: 50 * time.Millisecond}
	snap := BuildSnapshot("LoadgenServeAdvise", sweep.Levels, sweep)
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("want level + knee entries, got %d", len(snap.Benchmarks))
	}
	lvl := snap.Benchmarks[0]
	if lvl.Name != "LoadgenServeAdvise/offered=100rps" {
		t.Fatalf("level name %q", lvl.Name)
	}
	if lvl.Metrics["ns/op"] != float64(2*time.Millisecond) {
		t.Fatalf("ns/op must be p99, got %v", lvl.Metrics["ns/op"])
	}
	knee := snap.Benchmarks[1]
	if _, gated := knee.Metrics["ns/op"]; gated {
		t.Fatal("knee entry must not carry ns/op (it would be gated)")
	}
	if knee.Metrics["knee-rps"] != 100 {
		t.Fatalf("knee-rps = %v", knee.Metrics["knee-rps"])
	}
}
