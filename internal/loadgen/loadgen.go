// Package loadgen is the closed-loop load-generation harness for the
// openbi serve HTTP advice service: it drives POST /v1/advise with
// recorded data-quality profile mixes, records per-request latency into
// log-bucketed histograms (internal/hist — the same representation the
// server exports through GET /v1/metrics, so the two sides' p99s are
// directly comparable), and reports p50/p99/p999, throughput, and
// error/shed rates. A saturation sweep (sweep.go) steps offered load
// until the p99 budget blows and locates the knee of the curve.
//
// Two pacing modes:
//
//   - Closed loop (RPS == 0): each of Concurrency workers issues its next
//     request the moment the previous response lands. Offered load adapts
//     to the server — this measures capacity.
//   - Open loop (RPS > 0): requests fire on a fixed schedule regardless
//     of response times, and latency is measured from the SCHEDULED send
//     time, so queueing delay the client would have hidden by waiting
//     (coordinated omission) is charged to the server. This measures
//     behavior at a fixed offered load — the mode the saturation sweep
//     uses.
//
// Deliberately dependency-lean: loadgen imports net/http, stdlib, and
// internal/hist only — never the server, engine, or table packages — so
// the harness can ship as its own lean binary and drive any openbi serve
// over the wire (the gert separate-binaries distribution model). All
// randomness is seeded: the same Spec reproduces the same request
// sequence byte for byte.
package loadgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"openbi/internal/hist"
)

// Spec describes one load-generation run against a live server.
type Spec struct {
	// Target is the server's base URL (e.g. http://127.0.0.1:8080).
	Target string
	// Mix is the workload: a weighted set of recorded profile archetypes
	// (see ParseMix). The zero Mix defaults to the "recorded" mix.
	Mix Mix
	// Concurrency is the number of parallel connections (default 8).
	Concurrency int
	// Duration is the measured phase (default 10s).
	Duration time.Duration
	// Warmup runs before measurement starts; its requests hit the server
	// but are excluded from every statistic (default 1s).
	Warmup time.Duration
	// RPS is the offered load for open-loop pacing, shared across all
	// workers; 0 selects closed-loop pacing.
	RPS float64
	// Timeout bounds one request (default 5s).
	Timeout time.Duration
	// Seed makes the severity-vector sequence deterministic (default 1).
	Seed int64
	// Dim is the severity-vector length, dq.AllCriteria order (default 7
	// — the paper's criteria set; kept as data so the harness needs no
	// dq import).
	Dim int
	// Recorder, when non-nil, captures measured-phase request/response
	// pairs as JSONL (see NewRecorder).
	Recorder *Recorder
	// Client overrides the HTTP client (tests); by default Run builds
	// one with an idle-connection pool sized to Concurrency.
	Client *http.Client
}

func (s Spec) withDefaults() (Spec, error) {
	if s.Target == "" {
		return s, errors.New("loadgen: Spec.Target is required")
	}
	if s.Concurrency <= 0 {
		s.Concurrency = 8
	}
	if s.Duration <= 0 {
		s.Duration = 10 * time.Second
	}
	if s.Warmup < 0 {
		s.Warmup = 0
	}
	if s.Timeout <= 0 {
		s.Timeout = 5 * time.Second
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Dim <= 0 {
		s.Dim = DefaultDim
	}
	if s.Mix.name == "" {
		s.Mix = MustMix("recorded")
	}
	if s.RPS < 0 {
		return s, fmt.Errorf("loadgen: negative RPS %v", s.RPS)
	}
	return s, nil
}

// Result is one run's measured-phase statistics.
type Result struct {
	Mix         string
	Concurrency int
	OfferedRPS  float64 // 0 = closed loop
	// Duration is the observed measured window — the nominal spec duration
	// on a full run, shorter when the context cancelled the run early. All
	// rate denominators below use it, so partial runs report true rates.
	Duration time.Duration

	Requests  int64 // measured-phase requests with any outcome
	StatusOK  int64 // 2xx
	Shed      int64 // 429 (admission control)
	Client4xx int64 // other 4xx
	Server5xx int64
	Errors    int64 // transport failures / timeouts

	Throughput float64 // 2xx per second of measured wall time
	ErrorRate  float64 // (transport + 5xx) / requests
	ShedRate   float64 // 429 / requests

	Hist                *hist.Histogram
	P50, P99, P999, Max time.Duration
}

// workerStats accumulates one worker's measured-phase outcomes; merged
// after the run so the hot loop never shares a cache line.
type workerStats struct {
	hist                                      *hist.Histogram
	requests, ok, shed, c4xx, s5xx, transport int64
}

// Run executes one load-generation run and returns its report. The
// context cancels the run early (partial statistics are still returned
// with an error only when nothing completed).
func Run(ctx context.Context, spec Spec) (*Result, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	client := spec.Client
	if client == nil {
		client = &http.Client{
			Timeout: spec.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        2 * spec.Concurrency,
				MaxIdleConnsPerHost: 2 * spec.Concurrency,
			},
		}
	}
	url := spec.Target + "/v1/advise"

	start := time.Now()
	measureFrom := start.Add(spec.Warmup)
	deadline := measureFrom.Add(spec.Duration)
	runCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	stats := make([]workerStats, spec.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < spec.Concurrency; w++ {
		wg.Add(1)
		st := &stats[w]
		st.hist = hist.New()
		// Distinct, deterministic per-worker streams: the golden-ratio
		// increment keeps adjacent worker seeds far apart in seed space.
		rng := rand.New(rand.NewSource(int64(uint64(spec.Seed) + uint64(w)*0x9E3779B97F4A7C15)))
		pc := newPacer(start, spec.RPS, w, spec.Concurrency)
		go func() {
			defer wg.Done()
			runWorker(runCtx, spec, client, url, rng, pc, st, measureFrom, deadline)
		}()
	}
	wg.Wait()

	// The measured window is what was actually observed: up to the nominal
	// deadline on a full run, to the moment the workers stopped on an early
	// cancel. Using nominal spec.Duration here would understate throughput
	// on partial runs and flip the sweep's `sustained` predicate.
	end := time.Now()
	if end.After(deadline) {
		end = deadline
	}
	observed := end.Sub(measureFrom)
	if observed < 0 {
		observed = 0 // cancelled during warmup; no requests were booked
	}

	res := &Result{
		Mix:         spec.Mix.name,
		Concurrency: spec.Concurrency,
		OfferedRPS:  spec.RPS,
		Duration:    observed,
		Hist:        hist.New(),
	}
	for i := range stats {
		st := &stats[i]
		res.Hist.Merge(st.hist)
		res.Requests += st.requests
		res.StatusOK += st.ok
		res.Shed += st.shed
		res.Client4xx += st.c4xx
		res.Server5xx += st.s5xx
		res.Errors += st.transport
	}
	if res.Requests == 0 {
		return res, fmt.Errorf("loadgen: no requests completed in the measured phase (target %s)", spec.Target)
	}
	secs := observed.Seconds()
	if secs <= 0 {
		// Requests were booked, so the window is positive but below clock
		// resolution; bound it away from a divide-by-zero.
		secs = float64(time.Millisecond) / float64(time.Second)
	}
	res.Throughput = float64(res.StatusOK) / secs
	res.ErrorRate = float64(res.Errors+res.Server5xx) / float64(res.Requests)
	res.ShedRate = float64(res.Shed) / float64(res.Requests)
	qs := res.Hist.Quantiles(0.5, 0.99, 0.999)
	res.P50, res.P99, res.P999, res.Max = qs[0], qs[1], qs[2], res.Hist.Max()
	return res, nil
}

// runWorker is one connection's request loop. Closed loop: back-to-back.
// Open loop: fire at the pacer's schedule and charge latency from the
// scheduled instant.
func runWorker(ctx context.Context, spec Spec, client *http.Client, url string,
	rng *rand.Rand, pc *pacer, st *workerStats, measureFrom, deadline time.Time) {
	var bodyBuf bytes.Buffer
	for {
		sentAt := time.Now()
		if sentAt.After(deadline) || ctx.Err() != nil {
			return
		}
		scheduled := sentAt
		if pc != nil {
			var ok bool
			scheduled, ok = pc.waitNext(ctx, deadline)
			if !ok {
				return
			}
			sentAt = time.Now()
		}
		severities := spec.Mix.Sample(rng, spec.Dim)
		reqBody := adviseBody(&bodyBuf, severities)

		status, respBody, err := doRequest(ctx, client, url, reqBody, spec.Recorder != nil)
		done := time.Now()
		// Latency from the scheduled instant in open-loop mode charges
		// client-side queueing (coordinated omission) to the server.
		lat := done.Sub(scheduled)

		if done.Before(measureFrom) || done.After(deadline) {
			continue // warmup or overrun: hit the server, skip the books
		}
		st.requests++
		st.hist.Observe(lat)
		switch {
		case err != nil:
			st.transport++
		case status >= 200 && status < 300:
			st.ok++
		case status == http.StatusTooManyRequests:
			st.shed++
		case status >= 500:
			st.s5xx++
		default:
			st.c4xx++
		}
		if spec.Recorder != nil && err == nil {
			spec.Recorder.Record(spec.RPS, status, lat, reqBody, respBody)
		}
	}
}

// doRequest POSTs one advise body. The response body is always drained
// (connection reuse); its bytes are only retained when the caller records.
func doRequest(ctx context.Context, client *http.Client, url string, body []byte, keep bool) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if keep {
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil, err
}
