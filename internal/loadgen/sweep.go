package loadgen

import (
	"context"
	"fmt"
	"time"
)

// SweepSpec configures a saturation sweep: a sequence of open-loop runs at
// geometrically increasing offered load, stopped shortly after the server
// stops sustaining its latency budget. The result locates the knee of the
// saturation curve — the highest offered load the server absorbed with
// p99 inside budget and without shedding or falling behind.
type SweepSpec struct {
	// Base carries everything a single level needs (target, mix,
	// concurrency, per-level Duration and Warmup, seed, recorder). Its
	// RPS field is overwritten per level.
	Base Spec
	// StartRPS is the first offered level (default 100).
	StartRPS float64
	// Factor multiplies the offered load between levels (default 2).
	Factor float64
	// MaxLevels caps the sweep (default 8).
	MaxLevels int
	// MinLevels levels always run, even when the budget blows early, so
	// the committed snapshot has a curve, not a point (default 3).
	MinLevels int
	// P99Budget is the latency budget defining the knee (default 50ms).
	P99Budget time.Duration
}

func (s SweepSpec) withDefaults() SweepSpec {
	if s.StartRPS <= 0 {
		s.StartRPS = 100
	}
	if s.Factor <= 1 {
		s.Factor = 2
	}
	if s.MaxLevels <= 0 {
		s.MaxLevels = 8
	}
	if s.MinLevels <= 0 {
		s.MinLevels = 3
	}
	if s.MinLevels > s.MaxLevels {
		s.MinLevels = s.MaxLevels
	}
	if s.P99Budget <= 0 {
		s.P99Budget = 50 * time.Millisecond
	}
	return s
}

// SweepResult is the measured saturation curve.
type SweepResult struct {
	Levels []*Result
	// KneeRPS is the highest offered load that sustained the budget
	// (0 when even the first level blew it).
	KneeRPS float64
	// KneeThroughput is the achieved 2xx/s at the knee level.
	KneeThroughput float64
	Budget         time.Duration
}

// sustained reports whether a level absorbed its offered load: p99 inside
// the budget, essentially nothing shed or errored, and achieved
// throughput keeping up with the schedule (a server that silently served
// only half the offered rate has saturated even if what it served was
// fast).
func sustained(r *Result, budget time.Duration) bool {
	return r.P99 <= budget &&
		r.ShedRate <= 0.01 &&
		r.ErrorRate <= 0.01 &&
		r.Throughput >= 0.95*r.OfferedRPS
}

// RunSweep steps offered load until one level past the knee (but at least
// MinLevels), then reports the curve. Progress (one line per level) goes
// through progress when non-nil.
func RunSweep(ctx context.Context, spec SweepSpec, progress func(string)) (*SweepResult, error) {
	spec = spec.withDefaults()
	out := &SweepResult{Budget: spec.P99Budget}
	rps := spec.StartRPS
	for level := 0; level < spec.MaxLevels; level++ {
		base := spec.Base
		base.RPS = rps
		res, err := Run(ctx, base)
		if err != nil {
			return out, fmt.Errorf("loadgen: sweep level %.0f rps: %w", rps, err)
		}
		out.Levels = append(out.Levels, res)
		ok := sustained(res, spec.P99Budget)
		if ok {
			out.KneeRPS = res.OfferedRPS
			out.KneeThroughput = res.Throughput
		}
		if progress != nil {
			verdict := "sustained"
			if !ok {
				verdict = "saturated"
			}
			progress(fmt.Sprintf("offered %7.0f rps: throughput %8.1f/s  p50 %8s  p99 %8s  p999 %8s  shed %5.1f%%  %s",
				res.OfferedRPS, res.Throughput, res.P50, res.P99, res.P999, 100*res.ShedRate, verdict))
		}
		if !ok && level+1 >= spec.MinLevels {
			break // one level past the knee is plotted; further ones only melt
		}
		rps *= spec.Factor
	}
	return out, nil
}
