package loadgen

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Recorder captures anonymized request/response pairs as a versioned JSON
// Lines file — the substrate of the record/replay harness (internal/replay
// re-issues the captured requests against a candidate KB and diffs the
// advice). "Anonymized" is structural: an entry carries only the two JSON
// payloads plus status and latency — no headers, addresses, host names, or
// wall-clock timestamps (offsets are relative to the run start).
//
// Capture format v2, line by line:
//
//  1. header: {"capture":"openbi-loadgen","version":2,"spec":{...}} — the
//     run configuration (mix, seed, dim, concurrency) plus the serving
//     KB's generation, so a replayer can refuse a capture that does not
//     match what it thinks it is replaying.
//  2. one Entry per recorded pair, in seq order.
//  3. footer: {"footer":true,"entries":N,"payloadSha256":"..."} — entry
//     count and the sha256 over the raw entry lines, written at Close.
//     A capture without a verifying footer is truncated or tampered with,
//     and the replay reader refuses it (ReadCapture).
//
// A failed write latches (later entries are dropped), no footer is
// written, and the error surfaces at Close — callers must treat a Close
// error as a truncated capture and fail loudly, not ship it as a golden.
type Recorder struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	h     hash.Hash // running sha256 over the entry lines
	seq   int64
	start time.Time
	err   error
}

// CaptureMagic and CaptureVersion identify capture format v2. Version 1
// was the headerless, footerless JSONL of the first -record cut; readers
// refuse it because nothing in a v1 file says what it captured or whether
// it is complete.
const (
	CaptureMagic   = "openbi-loadgen"
	CaptureVersion = 2
)

// KBInfo pins the serving knowledge-base generation a capture was recorded
// against (from GET /v1/kb). Zero when the target could not be probed.
type KBInfo struct {
	Generation uint64 `json:"generation"`
	Records    int    `json:"records,omitempty"`
	Source     string `json:"source,omitempty"`
}

// CaptureSpec is the run configuration pinned in a capture's header.
type CaptureSpec struct {
	Mix         string `json:"mix"`
	Seed        int64  `json:"seed"`
	Dim         int    `json:"dim"`
	Concurrency int    `json:"concurrency"`
	KB          KBInfo `json:"kb"`
}

// captureHeader is the capture file's first line.
type captureHeader struct {
	Capture string      `json:"capture"`
	Version int         `json:"version"`
	Spec    CaptureSpec `json:"spec"`
}

// captureFooter is the capture file's last line, written at Close.
type captureFooter struct {
	Footer        bool   `json:"footer"`
	Entries       int64  `json:"entries"`
	PayloadSHA256 string `json:"payloadSha256"`
}

// Entry is one recorded request/response pair (one JSONL line).
type Entry struct {
	Seq        int64           `json:"seq"`
	OffsetMs   float64         `json:"offsetMs"`
	OfferedRPS float64         `json:"offeredRps,omitempty"` // 0 = closed loop
	Endpoint   string          `json:"endpoint"`
	Status     int             `json:"status"`
	LatencyMs  float64         `json:"latencyMs"`
	Request    json.RawMessage `json:"request"`
	Response   json.RawMessage `json:"response,omitempty"`
}

// NewRecorder creates dir (if needed), opens one capture file in it —
// named after the mix and seed so reruns of the same spec overwrite their
// own capture instead of accreting — and writes the v2 header.
func NewRecorder(dir string, spec CaptureSpec) (*Recorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("loadgen: record dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("loadgen-%s-seed%d.jsonl", spec.Mix, spec.Seed))
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: record file: %w", err)
	}
	r := &Recorder{f: f, w: bufio.NewWriterSize(f, 1<<16), h: sha256.New(), start: time.Now()}
	head, err := json.Marshal(captureHeader{Capture: CaptureMagic, Version: CaptureVersion, Spec: spec})
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := r.w.Write(append(head, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("loadgen: writing capture header: %w", err)
	}
	return r, nil
}

// Path returns the capture file's path.
func (r *Recorder) Path() string { return r.f.Name() }

// Record appends one pair. Serialization happens synchronously under the
// lock because the caller reuses the request buffer for its next request;
// a failed write latches (the capture is truncated from that point) and
// surfaces at Close.
func (r *Recorder) Record(offeredRPS float64, status int, latency time.Duration, req, resp []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	e := Entry{
		Seq:        r.seq + 1,
		OffsetMs:   float64(time.Since(r.start)) / float64(time.Millisecond),
		OfferedRPS: offeredRPS,
		Endpoint:   "/v1/advise",
		Status:     status,
		LatencyMs:  float64(latency) / float64(time.Millisecond),
		Request:    json.RawMessage(req),
	}
	if json.Valid(resp) {
		e.Response = json.RawMessage(resp)
	}
	line, err := json.Marshal(e)
	if err != nil {
		r.err = err
		return
	}
	line = append(line, '\n')
	if _, err := r.w.Write(line); err != nil {
		r.err = err
		return
	}
	r.h.Write(line) // the footer hashes exactly what was written
	r.seq++
}

// Count returns the number of recorded pairs so far.
func (r *Recorder) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Close writes the integrity footer, flushes and closes the capture file,
// returning the first error seen anywhere in the recorder's life. On a
// non-nil return the capture carries no verifying footer and the replay
// reader will refuse it — callers must fail the run, not just log.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil {
		foot, err := json.Marshal(captureFooter{
			Footer:        true,
			Entries:       r.seq,
			PayloadSHA256: hex.EncodeToString(r.h.Sum(nil)),
		})
		if err != nil {
			r.err = err
		} else if _, err := r.w.Write(append(foot, '\n')); err != nil {
			r.err = err
		}
	}
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	if err := r.f.Sync(); err != nil && r.err == nil {
		r.err = err
	}
	if err := r.f.Close(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}
