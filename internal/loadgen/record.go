package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Recorder captures anonymized request/response pairs as JSON Lines — the
// seed of the record/replay harness: replaying the requests against a new
// KB generation and diffing the recorded responses quantifies a reload's
// blast radius. "Anonymized" is structural: an entry carries only the two
// JSON payloads plus status and latency — no headers, addresses, host
// names, or wall-clock timestamps (offsets are relative to the run start).
type Recorder struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	seq   int64
	start time.Time
	err   error
}

// recordEntry is one JSONL line.
type recordEntry struct {
	Seq        int64           `json:"seq"`
	OffsetMs   float64         `json:"offsetMs"`
	OfferedRPS float64         `json:"offeredRps,omitempty"` // 0 = closed loop
	Endpoint   string          `json:"endpoint"`
	Status     int             `json:"status"`
	LatencyMs  float64         `json:"latencyMs"`
	Request    json.RawMessage `json:"request"`
	Response   json.RawMessage `json:"response,omitempty"`
}

// NewRecorder creates dir (if needed) and opens one capture file in it,
// named after the mix and seed so reruns of the same spec overwrite their
// own capture instead of accreting.
func NewRecorder(dir, mix string, seed int64) (*Recorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("loadgen: record dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("loadgen-%s-seed%d.jsonl", mix, seed))
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: record file: %w", err)
	}
	return &Recorder{f: f, w: bufio.NewWriterSize(f, 1<<16), start: time.Now()}, nil
}

// Path returns the capture file's path.
func (r *Recorder) Path() string { return r.f.Name() }

// Record appends one pair. Serialization happens synchronously under the
// lock because the caller reuses the request buffer for its next request;
// a failed write latches and surfaces at Close.
func (r *Recorder) Record(offeredRPS float64, status int, latency time.Duration, req, resp []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.seq++
	e := recordEntry{
		Seq:        r.seq,
		OffsetMs:   float64(time.Since(r.start)) / float64(time.Millisecond),
		OfferedRPS: offeredRPS,
		Endpoint:   "/v1/advise",
		Status:     status,
		LatencyMs:  float64(latency) / float64(time.Millisecond),
		Request:    json.RawMessage(req),
	}
	if json.Valid(resp) {
		e.Response = json.RawMessage(resp)
	}
	line, err := json.Marshal(e)
	if err != nil {
		r.err = err
		return
	}
	if _, err := r.w.Write(append(line, '\n')); err != nil {
		r.err = err
	}
}

// Count returns the number of recorded pairs so far.
func (r *Recorder) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Close flushes and closes the capture file, returning the first error
// seen anywhere in the recorder's life.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	if err := r.f.Close(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}
