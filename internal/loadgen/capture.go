package loadgen

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
)

// The capture reader mirrors internal/experiment's checkpoint-journal
// semantics: a header line pins what was recorded, atomicity is per line
// (a torn final line — crash mid-write — is detected and dropped), and a
// file written by a different configuration is refused rather than
// silently mixed in. On top of that, a capture is only trusted when its
// integrity footer verifies: entry count and sha256 over the raw entry
// lines must match what the Recorder wrote at Close. Replay goldens are
// promoted from captures, so an unverifiable capture must never pass as
// one silently.

// ErrCaptureTruncated reports a capture with no verifying footer: the
// recording run crashed, hit a write error, or the tail was torn off.
// ReadOptions.AllowTruncated downgrades this to Capture.Truncated = true.
var ErrCaptureTruncated = errors.New("loadgen: capture has no verifying integrity footer (truncated recording?)")

// ErrCaptureTampered reports a capture whose footer is present but does
// not verify — the payload was edited after Close. Never downgraded.
var ErrCaptureTampered = errors.New("loadgen: capture integrity footer does not verify (payload edited after recording?)")

// Capture is one parsed capture file.
type Capture struct {
	Spec    CaptureSpec
	Entries []Entry
	// Truncated is set (only under ReadOptions.AllowTruncated) when the
	// capture had no verifying footer; Entries then holds the intact
	// prefix, torn tail dropped.
	Truncated bool
}

// ReadOptions configures capture parsing.
type ReadOptions struct {
	// AllowTruncated tolerates a missing footer and a torn tail (the
	// intact prefix is returned with Truncated set). A present-but-wrong
	// footer is still refused: truncation is an accident, a hash mismatch
	// is tampering.
	AllowTruncated bool
	// Expect, when non-nil, refuses a capture whose header does not match:
	// each non-zero field (Mix, Seed, Dim, Concurrency, KB.Generation) is
	// compared against the header.
	Expect *CaptureSpec
}

// LoadCapture reads and verifies one capture file.
func LoadCapture(path string, opt ReadOptions) (*Capture, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: reading capture: %w", err)
	}
	c, err := ReadCapture(bytes.NewReader(raw), opt)
	if err != nil {
		return nil, fmt.Errorf("loadgen: capture %s: %w", path, err)
	}
	return c, nil
}

// ReadCapture parses a v2 capture: header, entries, integrity footer.
// Headerless (v1) files are refused — nothing in them says what they
// captured or whether they are complete.
func ReadCapture(r io.Reader, opt ReadOptions) (*Capture, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	line, rest, ok := cutLine(raw)
	if !ok {
		return nil, errors.New("capture is empty or its header line is torn")
	}
	var head captureHeader
	if err := json.Unmarshal(line, &head); err != nil || head.Capture != CaptureMagic {
		return nil, errors.New("missing capture header (a v1 capture or not a capture at all); re-record with this build")
	}
	if head.Version != CaptureVersion {
		return nil, fmt.Errorf("capture format v%d, this build reads v%d; re-record", head.Version, CaptureVersion)
	}
	if err := matchSpec(head.Spec, opt.Expect); err != nil {
		return nil, err
	}

	c := &Capture{Spec: head.Spec}
	h := sha256.New()
	var torn bool
	var foot *captureFooter
	for len(rest) > 0 {
		line, next, ok := cutLine(rest)
		if !ok {
			torn = true // unterminated final line: crash mid-write
			break
		}
		if f := parseFooter(line); f != nil {
			if len(bytes.TrimSpace(next)) > 0 {
				return nil, errors.New("capture has content after its footer")
			}
			foot = f
			break
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			torn = true // corrupt line: drop it and everything after
			break
		}
		h.Write(rest[:len(line)+1]) // the exact bytes, newline included
		c.Entries = append(c.Entries, e)
		rest = next
	}

	switch {
	case foot != nil:
		if foot.Entries != int64(len(c.Entries)) || foot.PayloadSHA256 != hex.EncodeToString(h.Sum(nil)) {
			return nil, ErrCaptureTampered
		}
	case torn && hasFooterAhead(rest):
		// A corrupt line with a footer beyond it is mid-file damage, not a
		// torn tail; the footer cannot verify, so refuse outright.
		return nil, ErrCaptureTampered
	case !opt.AllowTruncated:
		return nil, ErrCaptureTruncated
	default:
		c.Truncated = true
	}
	return c, nil
}

// cutLine splits off the first newline-terminated line (without the
// newline). ok is false when no complete line remains.
func cutLine(b []byte) (line, rest []byte, ok bool) {
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		return nil, b, false
	}
	return b[:nl], b[nl+1:], true
}

// parseFooter returns the line's footer, or nil when it is not one.
func parseFooter(line []byte) *captureFooter {
	if !bytes.Contains(line, []byte(`"footer"`)) {
		return nil
	}
	var f captureFooter
	if err := json.Unmarshal(line, &f); err != nil || !f.Footer {
		return nil
	}
	return &f
}

// hasFooterAhead scans the unparsed remainder for a valid footer line.
func hasFooterAhead(rest []byte) bool {
	for len(rest) > 0 {
		line, next, ok := cutLine(rest)
		if !ok {
			return false
		}
		if parseFooter(line) != nil {
			return true
		}
		rest = next
	}
	return false
}

// matchSpec refuses a header that contradicts any non-zero expectation —
// the checkpoint-journal rule: a capture recorded under a different
// configuration must fail fast, not silently replay as something else.
func matchSpec(got CaptureSpec, want *CaptureSpec) error {
	if want == nil {
		return nil
	}
	mismatch := func(field string, g, w any) error {
		return fmt.Errorf("capture was recorded under a different configuration: %s %v, want %v", field, g, w)
	}
	switch {
	case want.Mix != "" && got.Mix != want.Mix:
		return mismatch("mix", got.Mix, want.Mix)
	case want.Seed != 0 && got.Seed != want.Seed:
		return mismatch("seed", got.Seed, want.Seed)
	case want.Dim != 0 && got.Dim != want.Dim:
		return mismatch("dim", got.Dim, want.Dim)
	case want.Concurrency != 0 && got.Concurrency != want.Concurrency:
		return mismatch("concurrency", got.Concurrency, want.Concurrency)
	case want.KB.Generation != 0 && got.KB.Generation != want.KB.Generation:
		return mismatch("kb generation", got.KB.Generation, want.KB.Generation)
	}
	return nil
}

// ProbeKB asks target's GET /v1/kb for the serving KB generation, so
// captures and replay reports can pin what they ran against. Targets that
// are not an openbi serve (test stubs, other services) fail the probe;
// callers degrade to a zero KBInfo.
func ProbeKB(ctx context.Context, client *http.Client, target string) (KBInfo, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v1/kb", nil)
	if err != nil {
		return KBInfo{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return KBInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return KBInfo{}, fmt.Errorf("loadgen: GET /v1/kb: status %d", resp.StatusCode)
	}
	var info KBInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return KBInfo{}, fmt.Errorf("loadgen: decoding /v1/kb: %w", err)
	}
	return info, nil
}
