package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeCapture drives the Recorder directly (no HTTP) with a seeded
// pseudo-random entry stream — multi-level offered loads, occasional
// non-2xx statuses, and occasional non-JSON response bodies, the shapes a
// sweep capture really holds — and returns the path plus what was fed in.
func writeCapture(t *testing.T, dir string, spec CaptureSpec, n int, seed int64) (string, []Entry) {
	t.Helper()
	rec, err := NewRecorder(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	levels := []float64{0, 100, 400, 1600}
	var fed []Entry
	for i := 0; i < n; i++ {
		status := 200
		switch rng.Intn(10) {
		case 0:
			status = 429
		case 1:
			status = 500
		}
		req := fmt.Sprintf(`{"severities":[%.2f,%.2f]}`, rng.Float64(), rng.Float64())
		resp := []byte(fmt.Sprintf(`{"advice":{"ranked":[{"algorithm":"A","predictedKappa":%.4f}]}}`, rng.Float64()))
		if rng.Intn(5) == 0 {
			resp = []byte("<html>proxy error") // non-JSON body: recorded as no response
		}
		rps := levels[rng.Intn(len(levels))]
		rec.Record(rps, status, time.Duration(rng.Intn(5e6)), []byte(req), resp)
		e := Entry{OfferedRPS: rps, Status: status, Request: json.RawMessage(req)}
		if json.Valid(resp) {
			e.Response = json.RawMessage(resp)
		}
		fed = append(fed, e)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return rec.Path(), fed
}

func TestCaptureRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		spec := CaptureSpec{Mix: "recorded", Seed: seed, Dim: 2, Concurrency: 4, KB: KBInfo{Generation: uint64(seed)}}
		path, fed := writeCapture(t, t.TempDir(), spec, 50+int(seed)*17, seed)
		c, err := LoadCapture(path, ReadOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if c.Spec != spec || c.Truncated {
			t.Fatalf("seed %d: spec %+v truncated %v", seed, c.Spec, c.Truncated)
		}
		if len(c.Entries) != len(fed) {
			t.Fatalf("seed %d: %d entries, fed %d", seed, len(c.Entries), len(fed))
		}
		for i, e := range c.Entries {
			want := fed[i]
			if e.Seq != int64(i+1) || e.OfferedRPS != want.OfferedRPS || e.Status != want.Status {
				t.Fatalf("seed %d entry %d: got %+v want %+v", seed, i, e, want)
			}
			if !bytes.Equal(e.Request, want.Request) || !bytes.Equal(e.Response, want.Response) {
				t.Fatalf("seed %d entry %d: payload mismatch", seed, i)
			}
		}
	}
}

func TestCaptureTornTailTruncated(t *testing.T) {
	spec := CaptureSpec{Mix: "noisy", Seed: 9, Dim: 2, Concurrency: 2}
	path, fed := writeCapture(t, t.TempDir(), spec, 30, 9)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Chop the footer off and tear the last entry mid-line: the crash shape.
	lines := bytes.SplitAfter(raw, []byte("\n"))
	torn := bytes.Join(lines[:len(lines)-2], nil) // drop footer (last line is empty split tail or footer)
	torn = append(torn, []byte(`{"seq":31,"offs`)...)
	tornPath := path + ".torn"
	if err := os.WriteFile(tornPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := LoadCapture(tornPath, ReadOptions{}); !errors.Is(err, ErrCaptureTruncated) {
		t.Fatalf("strict read of torn capture: err = %v, want ErrCaptureTruncated", err)
	}
	c, err := LoadCapture(tornPath, ReadOptions{AllowTruncated: true})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Truncated {
		t.Fatal("torn capture not flagged Truncated")
	}
	if len(c.Entries) != len(fed) {
		t.Fatalf("intact prefix has %d entries, want %d", len(c.Entries), len(fed))
	}
}

func TestCaptureFooterTamperRefused(t *testing.T) {
	spec := CaptureSpec{Mix: "recorded", Seed: 3, Dim: 2, Concurrency: 2}
	path, _ := writeCapture(t, t.TempDir(), spec, 20, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one digit inside an entry's latency: the line still parses, only
	// the footer hash can notice.
	i := bytes.Index(raw, []byte(`"latencyMs":`))
	if i < 0 {
		t.Fatal("no latency field to tamper with")
	}
	tampered := append([]byte(nil), raw...)
	for j := i + len(`"latencyMs":`); j < len(tampered); j++ {
		if tampered[j] >= '0' && tampered[j] <= '9' {
			tampered[j] = '0' + (tampered[j]-'0'+1)%10
			break
		}
	}
	tpath := path + ".tampered"
	if err := os.WriteFile(tpath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, opt := range []ReadOptions{{}, {AllowTruncated: true}} {
		if _, err := LoadCapture(tpath, opt); !errors.Is(err, ErrCaptureTampered) {
			t.Fatalf("tampered capture (opts %+v): err = %v, want ErrCaptureTampered", opt, err)
		}
	}

	// Mid-file corruption with the footer still ahead is damage, not a torn
	// tail — AllowTruncated must not accept it.
	corrupt := append([]byte(nil), raw...)
	j := bytes.Index(corrupt, []byte(`{"seq":5,`))
	if j < 0 {
		t.Fatal("no entry 5")
	}
	corrupt[j] = 'X'
	cpath := path + ".corrupt"
	if err := os.WriteFile(cpath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCapture(cpath, ReadOptions{AllowTruncated: true}); !errors.Is(err, ErrCaptureTampered) {
		t.Fatalf("mid-file corruption: err = %v, want ErrCaptureTampered", err)
	}
}

func TestCaptureRefusesHeaderlessAndMismatchedSpecs(t *testing.T) {
	dir := t.TempDir()

	// v1-style file: entries only, no header.
	v1 := filepath.Join(dir, "v1.jsonl")
	if err := os.WriteFile(v1, []byte(`{"seq":1,"endpoint":"/v1/advise","status":200,"request":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCapture(v1, ReadOptions{AllowTruncated: true}); err == nil || !strings.Contains(err.Error(), "missing capture header") {
		t.Fatalf("headerless capture: err = %v", err)
	}

	// Future-versioned header.
	v3 := filepath.Join(dir, "v3.jsonl")
	if err := os.WriteFile(v3, []byte(`{"capture":"openbi-loadgen","version":3,"spec":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCapture(v3, ReadOptions{AllowTruncated: true}); err == nil || !strings.Contains(err.Error(), "format v3") {
		t.Fatalf("future version: err = %v", err)
	}

	// Spec expectation mismatches.
	spec := CaptureSpec{Mix: "recorded", Seed: 7, Dim: 2, Concurrency: 2, KB: KBInfo{Generation: 4}}
	path, _ := writeCapture(t, dir, spec, 5, 7)
	for _, want := range []CaptureSpec{
		{Mix: "noisy"}, {Seed: 8}, {Dim: 7}, {Concurrency: 16}, {KB: KBInfo{Generation: 5}},
	} {
		want := want
		if _, err := LoadCapture(path, ReadOptions{Expect: &want}); err == nil ||
			!strings.Contains(err.Error(), "different configuration") {
			t.Fatalf("expect %+v: err = %v", want, err)
		}
	}
	// And the matching expectation passes.
	if _, err := LoadCapture(path, ReadOptions{Expect: &spec}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderWriteErrorSurfacesAtClose(t *testing.T) {
	spec := CaptureSpec{Mix: "recorded", Seed: 1, Dim: 2, Concurrency: 1}
	rec, err := NewRecorder(t.TempDir(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Close the file out from under the buffered writer, then write past
	// the buffer: the flush fails, latches, and must surface at Close so
	// the CLI exits non-zero instead of shipping a truncated capture.
	rec.f.Close()
	big := bytes.Repeat([]byte("x"), 1<<17)
	rec.Record(0, 200, time.Millisecond, []byte(`{"severities":[0]}`), big)
	rec.Record(0, 200, time.Millisecond, []byte(`{"severities":[0]}`), big)
	if err := rec.Close(); err == nil {
		t.Fatal("Close returned nil after a latched write error")
	}
}

func TestProbeKB(t *testing.T) {
	ts := httptest.NewServer(okHandler(nil))
	defer ts.Close()
	// okHandler answers every route with an advise body; /v1/kb decodes to
	// a zero-generation KBInfo without error.
	if _, err := ProbeKB(context.Background(), nil, ts.URL); err != nil {
		t.Fatal(err)
	}
	if _, err := ProbeKB(context.Background(), nil, "http://127.0.0.1:1"); err == nil {
		t.Fatal("unreachable target probed successfully")
	}
}
