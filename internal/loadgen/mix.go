package loadgen

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
)

// DefaultDim is the severity-vector length: the paper's seven data-quality
// criteria in dq.AllCriteria order — completeness, duplicates,
// correlation, imbalance, label-noise, attribute-noise, dimensionality.
// Kept as a constant (not an import) so the harness stays free of server
// and pipeline dependencies.
const DefaultDim = 7

// Criterion indices into severity vectors, mirroring dq.AllCriteria.
const (
	cCompleteness = iota
	cDuplicates
	cCorrelation
	cImbalance
	cLabelNoise
	cAttributeNoise
	cDimensionality
)

// archetype is one recorded profile shape: the severity fingerprint of a
// recognizable real-world dataset condition. A request samples an
// archetype, then jitters each coordinate so the stream is realistic —
// clustered around a few shapes, never byte-identical for long.
type archetype struct {
	name   string
	weight float64
	base   []float64
	jitter float64
}

// recordedArchetypes are the profile shapes behind the "recorded" mix,
// weighted the way dirty open data actually arrives: mostly clean-ish
// tables, a long tail of one-dominant-problem profiles.
var recordedArchetypes = []archetype{
	{name: "clean", weight: 0.35, base: vec(), jitter: 0.02},
	{name: "missing", weight: 0.20, base: vec(cCompleteness, 0.35), jitter: 0.05},
	{name: "noisy-labels", weight: 0.15, base: vec(cLabelNoise, 0.30), jitter: 0.05},
	{name: "imbalanced", weight: 0.10, base: vec(cImbalance, 0.40), jitter: 0.05},
	{name: "duplicated", weight: 0.08, base: vec(cDuplicates, 0.25), jitter: 0.04},
	{name: "outliers", weight: 0.07, base: vec(cAttributeNoise, 0.30, cCorrelation, 0.15), jitter: 0.05},
	{name: "wide", weight: 0.05, base: vec(cDimensionality, 0.50, cCompleteness, 0.10), jitter: 0.05},
}

// vec builds a sparse severity vector from (index, value) pairs.
func vec(pairs ...float64) []float64 {
	v := make([]float64, DefaultDim)
	for i := 0; i+1 < len(pairs); i += 2 {
		v[int(pairs[i])] = pairs[i+1]
	}
	return v
}

// Mix is a weighted set of profile archetypes to sample requests from.
// The zero value is invalid; construct with ParseMix or MustMix.
type Mix struct {
	name       string
	uniform    bool // every coordinate ~U[0,1]; ignores archetypes
	archetypes []archetype
	cum        []float64 // cumulative weights, normalized to [0,1]
}

// mixes maps the named workloads onto their archetype sets.
var mixes = map[string]Mix{
	"recorded": newMix("recorded", recordedArchetypes...),
	"clean":    newMix("clean", recordedArchetypes[0]),
	"noisy": newMix("noisy",
		archetype{name: "noisy-labels", weight: 0.5, base: vec(cLabelNoise, 0.45, cAttributeNoise, 0.20), jitter: 0.08},
		archetype{name: "outliers", weight: 0.5, base: vec(cAttributeNoise, 0.45, cCorrelation, 0.20), jitter: 0.08},
	),
	"uniform": {name: "uniform", uniform: true},
}

func newMix(name string, as ...archetype) Mix {
	m := Mix{name: name, archetypes: as, cum: make([]float64, len(as))}
	total := 0.0
	for _, a := range as {
		total += a.weight
	}
	run := 0.0
	for i, a := range as {
		run += a.weight / total
		m.cum[i] = run
	}
	m.cum[len(as)-1] = 1 // close rounding gaps
	return m
}

// MixNames lists the available workload mixes, sorted.
func MixNames() []string {
	names := make([]string, 0, len(mixes))
	for n := range mixes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseMix resolves a mix by name.
func ParseMix(name string) (Mix, error) {
	m, ok := mixes[name]
	if !ok {
		return Mix{}, fmt.Errorf("loadgen: unknown mix %q (have %v)", name, MixNames())
	}
	return m, nil
}

// MustMix is ParseMix for the package's own names; panics on a typo.
func MustMix(name string) Mix {
	m, err := ParseMix(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Name returns the mix's name ("" for the zero value).
func (m Mix) Name() string { return m.name }

// Sample draws one severity vector of length dim: pick an archetype by
// weight, jitter every coordinate with gaussian noise, clamp to [0,1] and
// quantize to the server's 0.01 cache grid (so cache hit rates under the
// generated load match what a real clustered workload would see).
func (m Mix) Sample(rng *rand.Rand, dim int) []float64 {
	out := make([]float64, dim)
	if m.uniform {
		for i := range out {
			out[i] = quantize(rng.Float64())
		}
		return out
	}
	u := rng.Float64()
	a := m.archetypes[sort.SearchFloat64s(m.cum, u)]
	for i := range out {
		base := 0.0
		if i < len(a.base) {
			base = a.base[i]
		}
		out[i] = quantize(base + rng.NormFloat64()*a.jitter)
	}
	return out
}

// quantize clamps to [0,1] and snaps to the 0.01 grid.
func quantize(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return float64(int(v*100+0.5)) / 100
}

// adviseBody serializes {"severities":[...]} into buf's backing array and
// returns a copy-free view of it — the request is re-encoded per call, so
// the hot loop allocates only what the recorder keeps.
func adviseBody(buf *bytes.Buffer, severities []float64) []byte {
	buf.Reset()
	buf.WriteString(`{"severities":[`)
	for i, v := range severities {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(strconv.AppendFloat(buf.AvailableBuffer(), v, 'g', -1, 64))
	}
	buf.WriteString(`]}`)
	return buf.Bytes()
}
