package loadgen

import (
	"context"
	"time"
)

// pacer hands one worker its slice of an open-loop schedule. For offered
// load R over C workers, worker w fires at start + (w + i*C)/R — the
// global sequence is a perfectly even R-per-second grid, interleaved
// round-robin so no two workers share an instant.
//
// waitNext never skips a slot: when the worker falls behind (responses
// slower than its slice of the schedule), overdue slots fire back to back
// and the measured latency — taken from the SCHEDULED time by the caller
// — absorbs the backlog. That is the coordinated-omission correction:
// a client that politely waits out a stall must still charge the stall
// to every request the schedule says it should have sent.
type pacer struct {
	next     time.Time
	interval time.Duration
}

// newPacer returns nil for rps <= 0 (closed-loop pacing: no schedule).
func newPacer(start time.Time, rps float64, worker, workers int) *pacer {
	if rps <= 0 {
		return nil
	}
	perReq := time.Duration(float64(time.Second) / rps)
	return &pacer{
		next:     start.Add(time.Duration(worker) * perReq),
		interval: time.Duration(float64(workers) * float64(perReq)),
	}
}

// waitNext blocks until the worker's next scheduled slot (or returns
// immediately when already overdue) and returns the slot's scheduled
// time. ok is false when the schedule runs past the deadline or the
// context ends first.
func (p *pacer) waitNext(ctx context.Context, deadline time.Time) (time.Time, bool) {
	scheduled := p.next
	p.next = p.next.Add(p.interval)
	if scheduled.After(deadline) {
		return time.Time{}, false
	}
	if wait := time.Until(scheduled); wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return time.Time{}, false
		}
	}
	return scheduled, true
}
