package loadgen

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// queueServer models a server with hard capacity: K concurrent slots at a
// fixed service time — max throughput K/serviceTime. Below capacity the
// latency is ~serviceTime; offered load past capacity builds an unbounded
// backlog, and open-loop latency (measured from the schedule) explodes.
func queueServer(slots int, service time.Duration) *httptest.Server {
	sem := make(chan struct{}, slots)
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the net/http server only watches for client
		// disconnect (canceling r.Context()) once the body is consumed, and
		// the cancellation paths below are what keep one sweep level's
		// abandoned queue from eating the next level's capacity.
		io.Copy(io.Discard, r.Body)
		select {
		case sem <- struct{}{}:
		case <-r.Context().Done():
			return // canceled while queued: a real server drops the work
		}
		if r.Context().Err() != nil {
			// Lost the race: ctx was already done when the slot freed.
			<-sem
			return
		}
		t := time.NewTimer(service)
		select {
		case <-t.C:
		case <-r.Context().Done():
			t.Stop() // canceled mid-service: free the slot immediately
		}
		<-sem
		w.Write([]byte(`{"advice":{}}`))
	}))
}

func TestSweepFindsKnee(t *testing.T) {
	// Capacity = 2 slots / 10ms = 200 rps. Levels 40, 160, 640:
	// the first two sustain, 640 (3.2x capacity) must blow the budget.
	ts := queueServer(2, 10*time.Millisecond)
	defer ts.Close()

	res, err := RunSweep(context.Background(), SweepSpec{
		Base: Spec{
			Target:      ts.URL,
			Concurrency: 16,
			Duration:    600 * time.Millisecond,
			Warmup:      150 * time.Millisecond,
			Seed:        42,
		},
		StartRPS:  40,
		Factor:    4,
		MaxLevels: 3,
		P99Budget: 100 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("ran %d levels, want 3", len(res.Levels))
	}
	if res.KneeRPS != 160 {
		for _, l := range res.Levels {
			t.Logf("offered %.0f: throughput %.1f p99 %v shed %.2f", l.OfferedRPS, l.Throughput, l.P99, l.ShedRate)
		}
		t.Fatalf("knee = %.0f rps, want 160", res.KneeRPS)
	}
	last := res.Levels[2]
	if sustained(last, res.Budget) {
		t.Fatalf("3.2x-capacity level unexpectedly sustained: p99 %v throughput %v", last.P99, last.Throughput)
	}
}

func TestSweepStopsEarlyPastKnee(t *testing.T) {
	// A server that can never keep up: every level fails, so the sweep
	// must stop at MinLevels, not run all MaxLevels.
	ts := queueServer(1, 50*time.Millisecond) // capacity 20 rps
	defer ts.Close()

	res, err := RunSweep(context.Background(), SweepSpec{
		Base: Spec{
			Target:      ts.URL,
			Concurrency: 8,
			Duration:    300 * time.Millisecond,
			Warmup:      50 * time.Millisecond,
			Seed:        1,
		},
		StartRPS:  500,
		Factor:    2,
		MaxLevels: 8,
		MinLevels: 2,
		P99Budget: 60 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 2 {
		t.Fatalf("ran %d levels, want MinLevels=2 then stop", len(res.Levels))
	}
	if res.KneeRPS != 0 {
		t.Fatalf("knee = %v for a server that never sustained", res.KneeRPS)
	}
}

func TestPacerScheduleIsEvenAndComplete(t *testing.T) {
	start := time.Now().Add(time.Hour) // far future: waitNext won't sleep usefully, so only inspect next/interval
	p := newPacer(start, 100, 1, 4)
	if p.interval != 40*time.Millisecond {
		t.Fatalf("interval = %v, want 40ms (4 workers at 100 rps)", p.interval)
	}
	if got := p.next.Sub(start); got != 10*time.Millisecond {
		t.Fatalf("worker 1 first slot offset = %v, want 10ms", got)
	}
	if newPacer(start, 0, 0, 4) != nil {
		t.Fatal("rps=0 must disable pacing")
	}
}
