package kb

import (
	"fmt"
	"sort"
	"strings"

	"openbi/internal/dq"
	"openbi/internal/oberr"
)

// Recommendation is one ranked entry of the advisor's answer.
type Recommendation struct {
	Algorithm      string  `json:"algorithm"`
	PredictedKappa float64 `json:"predictedKappa"`
	BaselineKappa  float64 `json:"baselineKappa"`
	// Penalties lists the predicted kappa loss per criterion that
	// contributed (criterion name -> loss).
	Penalties map[string]float64 `json:"penalties,omitempty"`
}

// Advice is the full advisor output for one data source.
type Advice struct {
	// Ranked is ordered best-first; Ranked[0] is "ALGORITHM X".
	Ranked []Recommendation `json:"ranked"`
	// Dominant lists the source's dominant quality defects, most severe
	// first (severity >= 0.05).
	Dominant []string `json:"dominant"`
	// Warnings carries human-readable cautions (e.g. nothing beats ZeroR).
	Warnings []string `json:"warnings,omitempty"`
}

// Best returns the top recommendation ("the best option is ALGORITHM X").
func (a Advice) Best() Recommendation {
	if len(a.Ranked) == 0 {
		return Recommendation{}
	}
	return a.Ranked[0]
}

// Advise ranks every algorithm in the snapshot for a source with the
// given measured profile. This is Figure 2's right-hand side: the
// annotated common representation (its severity vector) meets the DQ4DM
// knowledge base and yields guidance for the non-expert data miner. The
// call is a pure read over precomputed curves — lock-free and safe from
// any number of goroutines.
func (s *Snapshot) Advise(p dq.Profile) (Advice, error) {
	return s.AdviseSeverities(p.Severities())
}

// AdviseSeverities is Advise for a raw severity vector (dq.AllCriteria
// order), used when the profile was read back from an annotated model.
// It returns oberr.ErrEmptyKB when the snapshot holds no experiments.
func (s *Snapshot) AdviseSeverities(severities []float64) (Advice, error) {
	if len(s.algorithms) == 0 {
		return Advice{}, fmt.Errorf("kb: %w; run experiments first", oberr.ErrEmptyKB)
	}
	var advice Advice
	for _, c := range dq.AllCriteria() {
		if int(c) < len(severities) && severities[c] >= 0.05 {
			advice.Dominant = append(advice.Dominant, c.String())
		}
	}
	sort.SliceStable(advice.Dominant, func(i, j int) bool {
		ci, _ := dq.ParseCriterion(advice.Dominant[i])
		cj, _ := dq.ParseCriterion(advice.Dominant[j])
		return severities[ci] > severities[cj]
	})

	for _, alg := range s.algorithms {
		rec := Recommendation{
			Algorithm:     alg,
			BaselineKappa: s.BaselineKappa(alg),
			Penalties:     map[string]float64{},
		}
		rec.PredictedKappa = s.PredictKappa(alg, severities)
		for _, c := range dq.AllCriteria() {
			sev := 0.0
			if int(c) < len(severities) {
				sev = severities[c]
			}
			if sev <= 0 {
				continue
			}
			loss := s.interpolatedLoss(alg, c, sev)
			if loss > 0.005 {
				rec.Penalties[c.String()] = loss
			}
		}
		advice.Ranked = append(advice.Ranked, rec)
	}
	sort.SliceStable(advice.Ranked, func(i, j int) bool {
		if advice.Ranked[i].PredictedKappa != advice.Ranked[j].PredictedKappa {
			return advice.Ranked[i].PredictedKappa > advice.Ranked[j].PredictedKappa
		}
		return advice.Ranked[i].Algorithm < advice.Ranked[j].Algorithm
	})

	if best := advice.Best(); best.PredictedKappa < 0.1 {
		advice.Warnings = append(advice.Warnings,
			"predicted agreement is near chance for every algorithm: the source's data quality problems should be repaired before mining (see internal/clean)")
	}
	return advice, nil
}

// Explain renders the advice as the plain-language report OpenBI shows a
// citizen: the recommendation, why, and what to watch out for.
func (a Advice) Explain() string {
	var b strings.Builder
	if len(a.Ranked) == 0 {
		return "no advice available (empty knowledge base)\n"
	}
	best := a.Best()
	fmt.Fprintf(&b, "The best option is %s (predicted kappa %.3f, clean baseline %.3f).\n",
		strings.ToUpper(best.Algorithm), best.PredictedKappa, best.BaselineKappa)
	if len(a.Dominant) > 0 {
		fmt.Fprintf(&b, "Dominant data quality problems: %s.\n", strings.Join(a.Dominant, ", "))
	}
	if len(best.Penalties) > 0 {
		names := make([]string, 0, len(best.Penalties))
		for n := range best.Penalties {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = fmt.Sprintf("%s costs %.3f kappa", n, best.Penalties[n])
		}
		fmt.Fprintf(&b, "Expected quality impact on the recommendation: %s.\n", strings.Join(parts, "; "))
	}
	fmt.Fprintf(&b, "Full ranking:\n")
	for i, r := range a.Ranked {
		fmt.Fprintf(&b, "  %d. %-14s predicted kappa %.3f\n", i+1, r.Algorithm, r.PredictedKappa)
	}
	for _, w := range a.Warnings {
		fmt.Fprintf(&b, "WARNING: %s\n", w)
	}
	return b.String()
}
