package kb

import (
	"bytes"
	"errors"
	"testing"

	"openbi/internal/oberr"
	"openbi/internal/provenance"
)

// saveBytes serializes a base exactly as Save writes kb.json.
func saveBytes(t *testing.T, k *KnowledgeBase) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadRejectsTrailingBytes(t *testing.T) {
	doc := saveBytes(t, seedKB())
	if _, err := Load(bytes.NewReader(doc)); err != nil {
		t.Fatalf("clean document rejected: %v", err)
	}
	for _, tail := range []string{"garbage", "{\"records\": []}", "\x00\x01"} {
		_, err := Load(bytes.NewReader(append(append([]byte(nil), doc...), tail...)))
		if !errors.Is(err, oberr.ErrBadSyntax) {
			t.Fatalf("kb.json + %q: want ErrBadSyntax, got %v", tail, err)
		}
	}
	// Trailing whitespace is not data: Save itself ends with a newline.
	if _, err := Load(bytes.NewReader(append(append([]byte(nil), doc...), " \n\t"...))); err != nil {
		t.Fatalf("trailing whitespace rejected: %v", err)
	}
}

func TestLoadShardRejectsConcatenatedShards(t *testing.T) {
	sh := splitShards(1)[0]
	var one bytes.Buffer
	if err := sh.Save(&one); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShard(bytes.NewReader(one.Bytes())); err != nil {
		t.Fatalf("clean shard rejected: %v", err)
	}
	two := append(append([]byte(nil), one.Bytes()...), one.Bytes()...)
	if _, err := LoadShard(bytes.NewReader(two)); !errors.Is(err, oberr.ErrBadSyntax) {
		t.Fatalf("two concatenated shards: want ErrBadSyntax, got %v", err)
	}
}

func TestManifestRoundTripAndSnapshotRoot(t *testing.T) {
	k := seedKB()
	doc := saveBytes(t, k)
	m, err := BuildManifest(doc, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyManifest(m, doc, k); err != nil {
		t.Fatalf("clean verify failed: %v", err)
	}
	if m.Records != k.Len() {
		t.Fatalf("manifest pins %d records, base has %d", m.Records, k.Len())
	}
	if root := k.Snapshot().ProvenanceRoot(); root != m.MerkleRoot {
		t.Fatalf("snapshot root %s != manifest root %s", root, m.MerkleRoot)
	}
	// A reloaded base verifies against the producer's manifest.
	back, err := Load(bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyManifest(m, doc, back); err != nil {
		t.Fatalf("reloaded base does not verify: %v", err)
	}
}

// firstManifestMismatch verifies and requires a record-level mismatch,
// returning the named record.
func firstManifestMismatch(t *testing.T, m *provenance.Manifest, doc []byte, k *KnowledgeBase) int {
	t.Helper()
	err := VerifyManifest(m, doc, k)
	var me *oberr.ManifestError
	if !errors.As(err, &me) {
		t.Fatalf("want ManifestError, got %v", err)
	}
	if !errors.Is(err, oberr.ErrManifestMismatch) {
		t.Fatal("ManifestError does not match ErrManifestMismatch")
	}
	return me.Record
}

func TestVerifyManifestNamesCorruptedRecord(t *testing.T) {
	k := seedKB()
	doc := saveBytes(t, k)
	m, err := BuildManifest(doc, k)
	if err != nil {
		t.Fatal(err)
	}

	// A flipped field value in one record names exactly that record.
	tampered, err := Load(bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	tampered.Records[3].Seed ^= 1
	if got := firstManifestMismatch(t, m, doc, tampered); got != 3 {
		t.Fatalf("named record %d, want 3", got)
	}

	// Reordered records: the first moved position is named.
	reordered, _ := Load(bytes.NewReader(doc))
	reordered.Records[1], reordered.Records[4] = reordered.Records[4], reordered.Records[1]
	if got := firstManifestMismatch(t, m, doc, reordered); got != 1 {
		t.Fatalf("reorder named record %d, want 1", got)
	}

	// A record added or removed fails on the count, not as hash soup.
	shrunk, _ := Load(bytes.NewReader(doc))
	shrunk.Records = shrunk.Records[:len(shrunk.Records)-1]
	if got := firstManifestMismatch(t, m, doc, shrunk); got != -1 {
		t.Fatalf("removed record named %d, want -1 (count mismatch)", got)
	}
	grown, _ := Load(bytes.NewReader(doc))
	grown.Add(Record{Algorithm: "forged"})
	if got := firstManifestMismatch(t, m, doc, grown); got != -1 {
		t.Fatalf("added record named %d, want -1 (count mismatch)", got)
	}
}

func TestVerifyManifestCatchesDocumentTamper(t *testing.T) {
	k := seedKB()
	doc := saveBytes(t, k)
	m, err := BuildManifest(doc, k)
	if err != nil {
		t.Fatal(err)
	}
	// Whitespace-only tampering decodes to identical records; the document
	// hash still refuses it.
	flipped := append([]byte(nil), doc...)
	flipped[bytes.IndexByte(flipped, '\n')] = ' '
	back, err := Load(bytes.NewReader(flipped))
	if err != nil {
		t.Fatal(err)
	}
	err = VerifyManifest(m, flipped, back)
	if !errors.Is(err, oberr.ErrManifestMismatch) {
		t.Fatalf("whitespace tamper: want ErrManifestMismatch, got %v", err)
	}
}

func TestVerifyManifestRejectsSwappedManifest(t *testing.T) {
	k := seedKB()
	doc := saveBytes(t, k)
	other := seedKB()
	other.Records[0].Algorithm = "a-different-run"
	otherDoc := saveBytes(t, other)
	m, err := BuildManifest(otherDoc, other)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyManifest(m, doc, k); !errors.Is(err, oberr.ErrManifestMismatch) {
		t.Fatalf("manifest from a different run: want ErrManifestMismatch, got %v", err)
	}
}

func TestBuildMergedManifestAgreesAndChains(t *testing.T) {
	shards := splitShards(3)
	for _, sh := range shards {
		sh.Meta.DatasetHash = "feedbeef"
	}
	merged, err := Merge(shards[0], shards[1], shards[2])
	if err != nil {
		t.Fatal(err)
	}
	doc := saveBytes(t, merged)
	m, err := BuildMergedManifest(doc, merged, shards...)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyManifest(m, doc, merged); err != nil {
		t.Fatalf("merged manifest does not verify: %v", err)
	}
	if m.DatasetHash != "feedbeef" || m.GridFingerprint != shards[0].Meta.Fingerprint {
		t.Fatalf("chain fields not carried: dataset %q fingerprint %q", m.DatasetHash, m.GridFingerprint)
	}
	if len(m.Shards) != 3 {
		t.Fatalf("manifest pins %d shards, want 3", len(m.Shards))
	}
	// Each shard digest matches an independent recompute over that shard.
	for i, sh := range shards {
		leaves, err := RecordLeaves(recordsOf(sh))
		if err != nil {
			t.Fatal(err)
		}
		if got := provenance.NewTree(leaves).RootHex(); got != m.Shards[i].MerkleRoot {
			t.Fatalf("shard %d digest %s, recomputed %s", i, m.Shards[i].MerkleRoot, got)
		}
	}
	// The monolithic manifest of the same base pins the identical root:
	// merge provenance is indistinguishable from a single-run's.
	mono, err := BuildManifest(doc, merged)
	if err != nil {
		t.Fatal(err)
	}
	if mono.MerkleRoot != m.MerkleRoot {
		t.Fatalf("merged root %s != monolithic root %s", m.MerkleRoot, mono.MerkleRoot)
	}
}

func recordsOf(sh *Shard) []Record {
	out := make([]Record, len(sh.Records))
	for i, pr := range sh.Records {
		out[i] = pr.Record
	}
	return out
}

func TestBuildMergedManifestDetectsShardRecordDrift(t *testing.T) {
	shards := splitShards(2)
	merged, err := Merge(shards[0], shards[1])
	if err != nil {
		t.Fatal(err)
	}
	doc := saveBytes(t, merged)
	// A shard edited after the merge validated: the shard-level root no
	// longer agrees with the record-level recomputation.
	shards[1].Records[0].Record.Seed ^= 1
	if _, err := BuildMergedManifest(doc, merged, shards...); !errors.Is(err, oberr.ErrManifestMismatch) {
		t.Fatalf("drifted shard: want ErrManifestMismatch, got %v", err)
	}
}
