// Package kb implements the DQ4DM knowledge base of Figure 2: the
// persistent store of experiment outcomes ("applying algorithms in the
// presence of data quality criteria") and the advisor that turns it into
// the paper's promise to the non-expert user — "the best option is
// ALGORITHM X".
//
// The package is split along the paper's offline/online boundary:
//
//   - KnowledgeBase is the write side — an append-only record store that
//     experiment runs populate and Save/Load persist. It is not safe for
//     concurrent use; one writer owns it.
//   - Snapshot is the read side — an immutable view with every curve,
//     baseline and sensitivity precomputed at construction, so Advise and
//     PredictKappa are lock-free lookups that any number of goroutines can
//     share (see Snapshot).
package kb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"openbi/internal/dq"
	"openbi/internal/eval"
	"openbi/internal/oberr"
)

// Record is one experiment outcome: an algorithm evaluated by
// cross-validation on a dataset corrupted along one criterion at one
// severity. Severity 0 records are the clean baselines. Mixed-criteria
// (Phase 2) runs store one record per involved criterion, flagged Mixed.
type Record struct {
	Algorithm string  `json:"algorithm"`
	Criterion string  `json:"criterion"`
	Severity  float64 `json:"severity"`
	// MeasuredSeverity is the dq-measured severity of the injected
	// criterion on the corrupted data. Injected and measured severities
	// differ because measurement has an intrinsic floor (e.g. the 1-NN
	// label-noise estimate reads the Bayes overlap of even clean data);
	// tables report the injected axis, while the advisor interpolates on
	// the measured axis so that recording and querying share coordinates.
	MeasuredSeverity float64 `json:"measuredSeverity"`
	// MeasuredAll, on clean (severity-0) records, carries the measured
	// severity of *every* criterion on the clean data, keyed by criterion
	// name — the left anchor of each measured-axis curve.
	MeasuredAll map[string]float64 `json:"measuredAll,omitempty"`
	Mechanism   string             `json:"mechanism,omitempty"` // completeness only
	Dataset     string             `json:"dataset"`
	Mixed       bool               `json:"mixed,omitempty"`
	Folds       int                `json:"folds"`
	Seed        int64              `json:"seed"`
	Metrics     eval.Metrics       `json:"metrics"`
}

// KnowledgeBase is the write side of the DQ4DM store: an append-only
// sequence of experiment records. Mutation is Add only; reads for serving
// go through Snapshot(). A KnowledgeBase is owned by a single writer —
// it does no internal locking (core.Engine serializes its writes).
type KnowledgeBase struct {
	Records []Record `json:"records"`
}

// New returns an empty knowledge base.
func New() *KnowledgeBase { return &KnowledgeBase{} }

// Add appends a record.
func (k *KnowledgeBase) Add(r Record) { k.Records = append(k.Records, r) }

// Len returns the number of records.
func (k *KnowledgeBase) Len() int { return len(k.Records) }

// Algorithms returns the distinct algorithm names, sorted.
func (k *KnowledgeBase) Algorithms() []string { return algorithmsOf(k.Records) }

func algorithmsOf(records []Record) []string {
	set := map[string]bool{}
	for _, r := range records {
		set[r.Algorithm] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// CurvePoint is one (severity, mean metric) sample of a degradation curve.
type CurvePoint struct {
	Severity float64
	Kappa    float64
	Accuracy float64
	MacroF1  float64
	N        int // records averaged
}

// curveOf computes the Phase-1 degradation curve of one algorithm under
// one criterion over a record sequence: records grouped by severity
// (mixed-run records excluded), averaged in record order, sorted by
// severity. With measured set, severities come from the measured axis
// (MeasuredAll anchors for clean records, MeasuredSeverity otherwise).
func curveOf(records []Record, algorithm string, criterion dq.Criterion, measured bool) []CurvePoint {
	groups := map[float64][]eval.Metrics{}
	for _, r := range records {
		if r.Algorithm != algorithm || r.Mixed {
			continue
		}
		if r.Severity == 0 || r.Criterion == criterion.String() {
			x := r.Severity
			if measured {
				if r.Severity == 0 {
					x = r.MeasuredAll[criterion.String()]
				} else {
					x = r.MeasuredSeverity
				}
			}
			groups[x] = append(groups[x], r.Metrics)
		}
	}
	sevs := make([]float64, 0, len(groups))
	for s := range groups {
		sevs = append(sevs, s)
	}
	sort.Float64s(sevs)
	out := make([]CurvePoint, 0, len(sevs))
	for _, s := range sevs {
		ms := groups[s]
		p := CurvePoint{Severity: s, N: len(ms)}
		for _, m := range ms {
			p.Kappa += m.Kappa
			p.Accuracy += m.Accuracy
			p.MacroF1 += m.MacroF1
		}
		n := float64(len(ms))
		p.Kappa /= n
		p.Accuracy /= n
		p.MacroF1 /= n
		out = append(out, p)
	}
	return out
}

// baselineOf computes the mean clean (severity-0, non-mixed) kappa of an
// algorithm over a record sequence, or 0 when no baseline exists.
func baselineOf(records []Record, algorithm string) float64 {
	sum, n := 0.0, 0
	for _, r := range records {
		if r.Algorithm == algorithm && r.Severity == 0 && !r.Mixed {
			sum += r.Metrics.Kappa
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// slopeOf is the least-squares slope of kappa on severity over a curve.
func slopeOf(curve []CurvePoint) float64 {
	if len(curve) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range curve {
		sx += p.Severity
		sy += p.Kappa
		sxx += p.Severity * p.Severity
		sxy += p.Severity * p.Kappa
	}
	n := float64(len(curve))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// lossAt reads the kappa loss at measured severity s off a measured-axis
// degradation curve by piecewise-linear interpolation; below the clean
// anchor the loss is zero, beyond the last point it is linearly
// extrapolated with the curve's own slope. The loss is floored at zero:
// a sampled curve can be locally non-monotone (cross-validation noise),
// but a quality defect is never credited with *improving* an algorithm —
// without the floor, predicted kappa could exceed the clean baseline,
// which reads as nonsense in the advice shown to users.
func lossAt(curve []CurvePoint, s float64) float64 {
	if len(curve) < 2 {
		return 0
	}
	anchor := curve[0].Kappa
	if s <= curve[0].Severity {
		return 0
	}
	loss := 0.0
	interpolated := false
	for i := 1; i < len(curve); i++ {
		if s <= curve[i].Severity {
			lo, hi := curve[i-1], curve[i]
			frac := 0.0
			if hi.Severity > lo.Severity {
				frac = (s - lo.Severity) / (hi.Severity - lo.Severity)
			}
			kappa := lo.Kappa + frac*(hi.Kappa-lo.Kappa)
			loss = anchor - kappa
			interpolated = true
			break
		}
	}
	if !interpolated {
		last := curve[len(curve)-1]
		loss = (anchor - last.Kappa) - (s-last.Severity)*slopeOf(curve)
	}
	if loss < 0 {
		return 0
	}
	return loss
}

// ---- Deprecated read shims ----
//
// The methods below predate the builder/Snapshot split. They delegate to a
// freshly built Snapshot per call, which recomputes every curve — fine for
// a one-off query or a test fixture, wasteful in a loop. Serving paths
// should hold a Snapshot and query it instead.

// Curve returns the degradation curve on the injected-severity axis.
//
// Deprecated: use Snapshot().Curve; hold the snapshot across queries.
func (k *KnowledgeBase) Curve(algorithm string, criterion dq.Criterion) []CurvePoint {
	return curveOf(k.Records, algorithm, criterion, false)
}

// MeasuredCurve returns the degradation curve on the measured-severity axis.
//
// Deprecated: use Snapshot().MeasuredCurve; hold the snapshot across queries.
func (k *KnowledgeBase) MeasuredCurve(algorithm string, criterion dq.Criterion) []CurvePoint {
	return curveOf(k.Records, algorithm, criterion, true)
}

// BaselineKappa returns the mean clean kappa of an algorithm.
//
// Deprecated: use Snapshot().BaselineKappa; hold the snapshot across queries.
func (k *KnowledgeBase) BaselineKappa(algorithm string) float64 {
	return baselineOf(k.Records, algorithm)
}

// Sensitivity returns the per-unit-severity kappa loss of an algorithm
// under a criterion.
//
// Deprecated: use Snapshot().Sensitivity; hold the snapshot across queries.
func (k *KnowledgeBase) Sensitivity(algorithm string, criterion dq.Criterion) float64 {
	return -slopeOf(k.Curve(algorithm, criterion))
}

// PredictKappa estimates the kappa an algorithm would achieve on a source
// with the given severity vector.
//
// Deprecated: use Snapshot().PredictKappa; hold the snapshot across queries.
func (k *KnowledgeBase) PredictKappa(algorithm string, severities []float64) float64 {
	return k.Snapshot().PredictKappa(algorithm, severities)
}

// SensitivityTable renders the algorithm × criterion sensitivity matrix.
//
// Deprecated: use Snapshot().SensitivityTable; hold the snapshot across queries.
func (k *KnowledgeBase) SensitivityTable() (algorithms []string, criteria []dq.Criterion, cells [][]float64) {
	return k.Snapshot().SensitivityTable()
}

// Advise ranks every algorithm for a source with the given profile.
//
// Deprecated: use Snapshot().Advise; hold the snapshot across queries.
func (k *KnowledgeBase) Advise(p dq.Profile) (Advice, error) {
	return k.Snapshot().Advise(p)
}

// AdviseSeverities is Advise for a raw severity vector.
//
// Deprecated: use Snapshot().AdviseSeverities; hold the snapshot across queries.
func (k *KnowledgeBase) AdviseSeverities(severities []float64) (Advice, error) {
	return k.Snapshot().AdviseSeverities(severities)
}

// ---- Persistence ----

// Save writes the knowledge base as indented JSON.
func (k *KnowledgeBase) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(k)
}

// Load reads a knowledge base from JSON. The document must span the whole
// stream: trailing bytes after the JSON value (a truncated upload
// concatenated with an old file, an appended log line, a second document)
// are rejected with oberr.ErrBadSyntax instead of being silently ignored,
// because the bytes on disk would then diverge from the records served —
// and from what a provenance manifest was computed over.
func Load(r io.Reader) (*KnowledgeBase, error) {
	dec := json.NewDecoder(r)
	var k KnowledgeBase
	if err := dec.Decode(&k); err != nil {
		return nil, fmt.Errorf("kb: decoding: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("kb: %w", &oberr.SyntaxError{Format: "kb json", Reason: "trailing data after the JSON document"})
	}
	return &k, nil
}
