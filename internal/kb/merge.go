package kb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"openbi/internal/oberr"
)

// ShardMetaVersion is the current shard/checkpoint format version; bumped
// whenever the grid enumeration or record layout changes incompatibly.
// Version 2 added DatasetHash (provenance chaining).
const ShardMetaVersion = 2

// ShardMeta identifies the run and grid slice a shard's records belong to.
// Merge refuses to combine shards whose metadata disagree on anything but
// Index — mixing seeds, grids or datasets would silently corrupt the
// knowledge base.
type ShardMeta struct {
	Version int `json:"version"`
	// Seed is the run's base seed; every per-cell seed derives from it.
	Seed int64 `json:"seed"`
	// Index and Count locate this shard in the plan (Index in [0, Count)).
	Index int `json:"shard"`
	Count int `json:"shards"`
	// Dataset names the corpus the grid ran over.
	Dataset string `json:"dataset"`
	// DatasetHash is the sha256 of the dataset's canonical CSV
	// serialization — the provenance chain from a merged knowledge base
	// back to the exact data contents it was derived from.
	DatasetHash string `json:"datasetHash,omitempty"`
	// Fingerprint digests everything that shapes the grid — algorithm
	// suite, criteria, severities, folds, combos, dataset dimensions — so
	// shards and checkpoints from different configurations cannot be
	// combined by accident.
	Fingerprint string `json:"fingerprint"`
	// Phase1Total and Phase2Total are the full (un-sharded) grid sizes;
	// Merge uses them to prove the shards cover every cell exactly once.
	Phase1Total int `json:"phase1Total"`
	Phase2Total int `json:"phase2Total"`
}

// CompatibleWith reports whether two shards belong to the same run (they
// may differ only in Index).
func (m ShardMeta) CompatibleWith(o ShardMeta) bool {
	m.Index = o.Index
	return m == o
}

// PositionedRecord pairs a Record with its canonical grid coordinates: the
// phase and the record's index within that phase's task enumeration. The
// position lives here — not in Record — so kb.json stays byte-identical to
// a monolithic run after merging.
type PositionedRecord struct {
	Phase  int    `json:"phase"`
	Index  int    `json:"index"`
	Record Record `json:"record"`
}

// Shard is one shard job's output: the run identity plus every record the
// shard owns, positioned in the canonical grid.
type Shard struct {
	Meta    ShardMeta          `json:"meta"`
	Records []PositionedRecord `json:"records"`
}

// Save writes the shard as indented JSON (the `openbi experiments -shard`
// output format).
func (s *Shard) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// LoadShard reads a shard written by Save. Like Load, it requires the
// document to span the whole stream: two concatenated shard files would
// otherwise silently load as the first one.
func LoadShard(r io.Reader) (*Shard, error) {
	dec := json.NewDecoder(r)
	var s Shard
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("kb: decoding shard: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("kb: %w", &oberr.SyntaxError{Format: "kb shard json", Reason: "trailing data after the JSON document"})
	}
	if s.Meta.Version != ShardMetaVersion {
		return nil, fmt.Errorf("kb: shard format version %d, want %d", s.Meta.Version, ShardMetaVersion)
	}
	return &s, nil
}

// Merge combines shard outputs into one write-side knowledge base with
// canonical record ordering: Phase-1 records in grid order, then Phase-2
// records in grid order — exactly the order a monolithic run appends them,
// so Save of the merged base is byte-identical to the monolithic kb.json.
// The argument order never matters.
//
// Merge fails when the shards disagree on their run identity (seed, grid
// fingerprint, dataset, shard count), when two records claim the same grid
// position, or when positions are missing — a partial merge would serve
// silently wrong advice.
func Merge(shards ...*Shard) (*KnowledgeBase, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("kb: merge of zero shards")
	}
	ordered := append([]*Shard(nil), shards...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Meta.Index < ordered[j].Meta.Index })
	meta := ordered[0].Meta
	if meta.Phase1Total < 0 || meta.Phase2Total < 0 {
		return nil, fmt.Errorf("kb: corrupt shard metadata: negative grid totals (%d, %d)",
			meta.Phase1Total, meta.Phase2Total)
	}
	// Validate identity and count before allocating: the grid totals come
	// from the shard files, so allocation must be bounded by the records
	// actually present, not by a (possibly corrupt or hostile) header.
	count := 0
	for _, sh := range ordered {
		if !sh.Meta.CompatibleWith(meta) {
			return nil, fmt.Errorf("kb: shard %d/%d (dataset %q, seed %d, fingerprint %s) does not belong to the run of shard %d/%d (dataset %q, seed %d, fingerprint %s)",
				sh.Meta.Index, sh.Meta.Count, sh.Meta.Dataset, sh.Meta.Seed, sh.Meta.Fingerprint,
				meta.Index, meta.Count, meta.Dataset, meta.Seed, meta.Fingerprint)
		}
		if sh.Meta.Index < 0 || sh.Meta.Index >= sh.Meta.Count {
			return nil, fmt.Errorf("kb: shard index %d out of range [0,%d)", sh.Meta.Index, sh.Meta.Count)
		}
		count += len(sh.Records)
	}
	total := meta.Phase1Total + meta.Phase2Total
	if count != total {
		return nil, fmt.Errorf("kb: incomplete merge: %d records across the shards for a %d-cell grid (a shard output is missing, duplicated, or was produced by an interrupted run)",
			count, total)
	}
	slots := make([]Record, total)
	seen := make([]bool, total)
	for _, sh := range ordered {
		for _, pr := range sh.Records {
			slot, err := slotOf(meta, pr.Phase, pr.Index)
			if err != nil {
				return nil, err
			}
			if seen[slot] {
				return nil, fmt.Errorf("kb: duplicate record for phase %d index %d (same shard merged twice?)", pr.Phase, pr.Index)
			}
			seen[slot] = true
			slots[slot] = pr.Record
		}
	}
	// count == total plus the per-slot duplicate check above guarantee full
	// coverage (pigeonhole), so every slot is filled here.
	return &KnowledgeBase{Records: slots}, nil
}

// slotOf maps (phase, index) onto the canonical record position.
func slotOf(meta ShardMeta, phase, index int) (int, error) {
	switch phase {
	case 1:
		if index < 0 || index >= meta.Phase1Total {
			return 0, fmt.Errorf("kb: phase 1 index %d out of range [0,%d)", index, meta.Phase1Total)
		}
		return index, nil
	case 2:
		if index < 0 || index >= meta.Phase2Total {
			return 0, fmt.Errorf("kb: phase 2 index %d out of range [0,%d)", index, meta.Phase2Total)
		}
		return meta.Phase1Total + index, nil
	default:
		return 0, fmt.Errorf("kb: record with unknown phase %d", phase)
	}
}
