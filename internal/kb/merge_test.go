package kb

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// testMeta builds a coherent ShardMeta for a tiny 2-phase grid.
func testMeta(index, count int) ShardMeta {
	return ShardMeta{
		Version:     ShardMetaVersion,
		Seed:        42,
		Index:       index,
		Count:       count,
		Dataset:     "unit",
		Fingerprint: "f00ff00ff00ff00f",
		Phase1Total: 4,
		Phase2Total: 2,
	}
}

// testRecord returns a distinguishable record for one grid position.
func testRecord(phase, index int) Record {
	return Record{
		Algorithm: fmt.Sprintf("alg-%d-%d", phase, index),
		Criterion: "clean",
		Dataset:   "unit",
		Folds:     3,
		Seed:      int64(100*phase + index),
	}
}

// splitShards distributes the full 4+2 grid across count shards
// round-robin, mimicking what RunShard emits.
func splitShards(count int) []*Shard {
	shards := make([]*Shard, count)
	for i := range shards {
		shards[i] = &Shard{Meta: testMeta(i, count)}
	}
	slot := 0
	for _, pt := range []struct{ phase, total int }{{1, 4}, {2, 2}} {
		phase, total := pt.phase, pt.total
		for i := 0; i < total; i++ {
			sh := shards[slot%count]
			sh.Records = append(sh.Records, PositionedRecord{Phase: phase, Index: i, Record: testRecord(phase, i)})
			slot++
		}
	}
	return shards
}

func TestMergeCanonicalOrderAnyArgumentOrder(t *testing.T) {
	a := splitShards(3)
	merged1, err := Merge(a[0], a[1], a[2])
	if err != nil {
		t.Fatal(err)
	}
	b := splitShards(3)
	merged2, err := Merge(b[2], b[0], b[1])
	if err != nil {
		t.Fatal(err)
	}
	var buf1, buf2 bytes.Buffer
	if err := merged1.Save(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := merged2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("merge result depends on shard argument order")
	}
	// Canonical order: phase 1 indices 0..3, then phase 2 indices 0..1.
	if merged1.Len() != 6 {
		t.Fatalf("merged %d records, want 6", merged1.Len())
	}
	for i, want := range []string{"alg-1-0", "alg-1-1", "alg-1-2", "alg-1-3", "alg-2-0", "alg-2-1"} {
		if got := merged1.Records[i].Algorithm; got != want {
			t.Fatalf("record %d = %s, want %s (canonical grid order)", i, got, want)
		}
	}
}

func TestMergeRejectsBadInputs(t *testing.T) {
	for _, tc := range []struct {
		name    string
		shards  func() []*Shard
		wantErr string
	}{
		{"no shards", func() []*Shard { return nil }, "zero shards"},
		{"foreign fingerprint", func() []*Shard {
			s := splitShards(2)
			s[1].Meta.Fingerprint = "deadbeefdeadbeef"
			return s
		}, "does not belong"},
		{"foreign seed", func() []*Shard {
			s := splitShards(2)
			s[1].Meta.Seed = 43
			return s
		}, "does not belong"},
		{"surplus record", func() []*Shard {
			// One record claimed twice: the count check fires before any
			// slot is allocated (7 records for a 6-cell grid).
			s := splitShards(2)
			s[0].Records = append(s[0].Records, s[1].Records[0])
			return s
		}, "7 records across the shards for a 6-cell grid"},
		{"duplicate position with matching count", func() []*Shard {
			// Same total, but one position twice and one missing: caught
			// by the per-slot duplicate check.
			s := splitShards(2)
			s[0].Records[0] = s[1].Records[0]
			return s
		}, "duplicate record"},
		{"negative totals", func() []*Shard {
			s := splitShards(1)
			s[0].Meta.Phase1Total = -1
			return s
		}, "negative grid totals"},
		{"hostile totals do not allocate", func() []*Shard {
			// A huge total must be rejected by the count check, not
			// allocated.
			s := splitShards(1)
			s[0].Meta.Phase1Total = 1 << 40
			return s
		}, "records across the shards"},
		{"same shard twice", func() []*Shard {
			s := splitShards(2)
			return []*Shard{s[0], s[0]}
		}, "duplicate record"},
		{"missing shard", func() []*Shard {
			return splitShards(3)[:2]
		}, "incomplete merge"},
		{"index out of range", func() []*Shard {
			s := splitShards(1)
			s[0].Records[5].Index = 99
			return s
		}, "out of range"},
		{"unknown phase", func() []*Shard {
			s := splitShards(1)
			s[0].Records[0].Phase = 3
			return s
		}, "unknown phase"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Merge(tc.shards()...)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestShardSaveLoadRoundTrip(t *testing.T) {
	sh := splitShards(2)[0]
	var buf bytes.Buffer
	if err := sh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadShard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != sh.Meta || len(got.Records) != len(sh.Records) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got.Meta, sh.Meta)
	}
	for i := range got.Records {
		if got.Records[i].Record.Algorithm != sh.Records[i].Record.Algorithm {
			t.Fatalf("record %d drifted through the round trip", i)
		}
	}
}

func TestLoadShardRejectsWrongVersion(t *testing.T) {
	sh := splitShards(1)[0]
	sh.Meta.Version = ShardMetaVersion + 1
	var buf bytes.Buffer
	if err := sh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShard(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want version mismatch", err)
	}
}
