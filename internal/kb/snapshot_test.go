package kb

import (
	"errors"
	"math"
	"sync"
	"testing"

	"openbi/internal/dq"
	"openbi/internal/eval"
	"openbi/internal/oberr"
)

// TestSnapshotMatchesBuilderReads pins the builder/snapshot split: every
// precomputed read must equal the legacy on-the-fly computation over the
// same records, bit for bit.
func TestSnapshotMatchesBuilderReads(t *testing.T) {
	k := seedKB()
	s := k.Snapshot()
	if s.Len() != k.Len() {
		t.Fatalf("snapshot size %d != %d", s.Len(), k.Len())
	}
	algs := k.Algorithms()
	if got := s.Algorithms(); len(got) != len(algs) || got[0] != algs[0] || got[1] != algs[1] {
		t.Fatalf("algorithms %v != %v", got, algs)
	}
	for _, alg := range algs {
		if s.BaselineKappa(alg) != k.BaselineKappa(alg) {
			t.Fatalf("%s baseline differs", alg)
		}
		for _, crit := range dq.AllCriteria() {
			for name, pair := range map[string][2][]CurvePoint{
				"injected": {s.Curve(alg, crit), k.Curve(alg, crit)},
				"measured": {s.MeasuredCurve(alg, crit), k.MeasuredCurve(alg, crit)},
			} {
				snap, legacy := pair[0], pair[1]
				if len(snap) != len(legacy) {
					t.Fatalf("%s/%s %s curve length %d != %d", alg, crit, name, len(snap), len(legacy))
				}
				for i := range snap {
					if snap[i] != legacy[i] {
						t.Fatalf("%s/%s %s curve point %d: %+v != %+v", alg, crit, name, i, snap[i], legacy[i])
					}
				}
			}
			if s.Sensitivity(alg, crit) != k.Sensitivity(alg, crit) {
				t.Fatalf("%s/%s sensitivity differs", alg, crit)
			}
		}
	}
	sev := make([]float64, len(dq.AllCriteria()))
	sev[dq.LabelNoise] = 0.4
	sev[dq.Completeness] = 0.2
	for _, alg := range algs {
		if s.PredictKappa(alg, sev) != k.PredictKappa(alg, sev) {
			t.Fatalf("%s prediction differs", alg)
		}
	}
	sa, err := s.AdviseSeverities(sev)
	if err != nil {
		t.Fatal(err)
	}
	ka, err := k.AdviseSeverities(sev)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Best().Algorithm != ka.Best().Algorithm || sa.Best().PredictedKappa != ka.Best().PredictedKappa {
		t.Fatalf("advice differs: %+v vs %+v", sa.Best(), ka.Best())
	}
}

// TestSnapshotDetachedFromBuilder: records added after Snapshot() must not
// leak into it — that isolation is what makes lock-free serving sound.
func TestSnapshotDetachedFromBuilder(t *testing.T) {
	k := seedKB()
	s := k.Snapshot()
	before := s.BaselineKappa("robust")
	k.Add(Record{Algorithm: "robust", Criterion: "clean", Severity: 0,
		Dataset: "late", Metrics: eval.Metrics{Kappa: -1}})
	k.Add(Record{Algorithm: "newcomer", Criterion: "clean", Severity: 0,
		Dataset: "late", Metrics: eval.Metrics{Kappa: 0.9}})
	if s.BaselineKappa("robust") != before {
		t.Fatal("later Add mutated a snapshot baseline")
	}
	if len(s.Algorithms()) != 2 || s.Len() != 10 {
		t.Fatalf("later Add changed snapshot shape: %v, %d records", s.Algorithms(), s.Len())
	}
}

func TestSnapshotEmptyKBTypedError(t *testing.T) {
	_, err := New().Snapshot().AdviseSeverities(make([]float64, 7))
	if !errors.Is(err, oberr.ErrEmptyKB) {
		t.Fatalf("err = %v, want ErrEmptyKB", err)
	}
}

// TestSnapshotConcurrentReads hammers one snapshot from many goroutines;
// run under -race this asserts the read side is genuinely lock-free safe.
func TestSnapshotConcurrentReads(t *testing.T) {
	s := seedKB().Snapshot()
	sev := make([]float64, len(dq.AllCriteria()))
	sev[dq.LabelNoise] = 0.5
	want, err := s.AdviseSeverities(sev)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				adv, err := s.AdviseSeverities(sev)
				if err != nil || adv.Best().Algorithm != want.Best().Algorithm {
					t.Errorf("concurrent advice diverged: %v %v", adv.Best(), err)
					return
				}
				s.SensitivityTable()
				if math.IsNaN(s.PredictKappa("robust", sev)) {
					t.Error("NaN prediction")
					return
				}
			}
		}()
	}
	wg.Wait()
}
