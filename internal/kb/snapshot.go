package kb

import (
	"math"

	"openbi/internal/dq"
	"openbi/internal/provenance"
)

// curveKey addresses one precomputed degradation curve.
type curveKey struct {
	algorithm string
	criterion dq.Criterion
}

// Snapshot is the immutable read side of the knowledge base: every
// degradation curve (both axes), clean baseline and sensitivity is
// precomputed at construction, so all query methods — Advise,
// PredictKappa, Curve, SensitivityTable — are pure map lookups with no
// locks and no mutation. A Snapshot is therefore safe to share across any
// number of concurrent goroutines, and stays internally consistent no
// matter what the builder it came from does afterwards.
//
// Returned slices are the snapshot's own precomputed storage; treat them
// as read-only.
type Snapshot struct {
	size       int
	algorithms []string
	baselines  map[string]float64
	injected   map[curveKey][]CurvePoint // injected-severity axis
	measured   map[curveKey][]CurvePoint // measured-severity axis
	sens       map[curveKey]float64
	provRoot   string // Merkle root over the records (see ProvenanceRoot)
}

// Snapshot freezes the current records into an immutable, query-optimized
// view. The snapshot is fully detached: later Adds to k do not affect it.
func (k *KnowledgeBase) Snapshot() *Snapshot {
	s := &Snapshot{
		size:       len(k.Records),
		algorithms: algorithmsOf(k.Records),
		baselines:  map[string]float64{},
		injected:   map[curveKey][]CurvePoint{},
		measured:   map[curveKey][]CurvePoint{},
		sens:       map[curveKey]float64{},
	}
	if leaves, err := RecordLeaves(k.Records); err == nil {
		s.provRoot = provenance.NewTree(leaves).RootHex()
	}
	for _, alg := range s.algorithms {
		s.baselines[alg] = baselineOf(k.Records, alg)
		for _, crit := range dq.AllCriteria() {
			key := curveKey{alg, crit}
			inj := curveOf(k.Records, alg, crit, false)
			s.injected[key] = inj
			s.measured[key] = curveOf(k.Records, alg, crit, true)
			s.sens[key] = -slopeOf(inj)
		}
	}
	return s
}

// Len returns the number of records the snapshot was built from.
func (s *Snapshot) Len() int { return s.size }

// ProvenanceRoot returns the Merkle root (lowercase hex) over the
// snapshot's records in their canonical encoding — the same value a
// manifest built for the saved kb.json pins, so the serving stack and
// mined provenance triples can cite the lineage of the advice they give.
// Empty when the records could not be canonically encoded.
func (s *Snapshot) ProvenanceRoot() string { return s.provRoot }

// Algorithms returns the distinct algorithm names, sorted. Read-only.
func (s *Snapshot) Algorithms() []string { return s.algorithms }

// Curve returns the Phase-1 degradation curve of one algorithm under one
// criterion on the *injected*-severity axis: records grouped by severity
// (mixed-run records excluded), averaged, sorted. The severity-0 clean
// baselines of every criterion are pooled into the first point. This is
// the axis experiment tables report.
func (s *Snapshot) Curve(algorithm string, criterion dq.Criterion) []CurvePoint {
	return s.injected[curveKey{algorithm, criterion}]
}

// MeasuredCurve is Curve on the *measured*-severity axis — the coordinate
// system dq.Profile produces and therefore the one advice interpolates in.
func (s *Snapshot) MeasuredCurve(algorithm string, criterion dq.Criterion) []CurvePoint {
	return s.measured[curveKey{algorithm, criterion}]
}

// BaselineKappa returns the mean clean (severity-0, non-mixed) kappa of an
// algorithm, or 0 when no baseline exists.
func (s *Snapshot) BaselineKappa(algorithm string) float64 {
	return s.baselines[algorithm]
}

// Sensitivity returns the per-unit-severity kappa loss of an algorithm
// under a criterion, estimated by least squares over the degradation
// curve. Positive values mean degradation (kappa falls as severity rises);
// this is the "algorithm × criterion sensitivity table" the F2-KB
// experiment reports.
func (s *Snapshot) Sensitivity(algorithm string, criterion dq.Criterion) float64 {
	return s.sens[curveKey{algorithm, criterion}]
}

// PredictKappa estimates the kappa an algorithm would achieve on a source
// whose dq severity vector (dq.AllCriteria order) is given: clean baseline
// minus the interpolated per-criterion losses, additive across criteria.
// The additive composition is first-order; the Phase-2 mixed experiments
// measure how far reality departs from it, and the advisor's validation
// experiment (F2-ADV) shows it ranks algorithms well regardless.
func (s *Snapshot) PredictKappa(algorithm string, severities []float64) float64 {
	pred := s.baselines[algorithm]
	for _, c := range dq.AllCriteria() {
		sev := 0.0
		if int(c) < len(severities) {
			sev = severities[c]
		}
		if sev <= 0 {
			continue
		}
		pred -= s.interpolatedLoss(algorithm, c, sev)
	}
	if pred < -1 {
		pred = -1
	}
	return pred
}

// interpolatedLoss reads the kappa loss at measured severity sev off the
// precomputed measured-axis curve (see lossAt for the interpolation and
// flooring rules).
func (s *Snapshot) interpolatedLoss(algorithm string, c dq.Criterion, sev float64) float64 {
	return lossAt(s.measured[curveKey{algorithm, c}], sev)
}

// SensitivityTable renders the algorithm × criterion sensitivity matrix:
// rows keyed by algorithm name in sorted order, one column per criterion
// in dq.AllCriteria order. NaN cells mean "no data".
func (s *Snapshot) SensitivityTable() (algorithms []string, criteria []dq.Criterion, cells [][]float64) {
	algorithms = s.algorithms
	criteria = dq.AllCriteria()
	cells = make([][]float64, len(algorithms))
	for i, a := range algorithms {
		cells[i] = make([]float64, len(criteria))
		for j, c := range criteria {
			key := curveKey{a, c}
			if len(s.injected[key]) < 2 {
				cells[i][j] = math.NaN()
				continue
			}
			cells[i][j] = s.sens[key]
		}
	}
	return algorithms, criteria, cells
}
