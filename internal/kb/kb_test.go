package kb

import (
	"bytes"
	"math"
	"testing"

	"openbi/internal/dq"
	"openbi/internal/eval"
)

// seedKB builds a small hand-crafted knowledge base with two algorithms:
// "robust" degrades slowly under label noise, "fragile" fast; under
// completeness the roles reverse. Measured severities equal injected plus
// a floor of 0.1 for label-noise (mimicking the 1-NN estimator bias).
func seedKB() *KnowledgeBase {
	k := New()
	add := func(alg, crit string, injected, measured, kappa float64, measures map[string]float64) {
		k.Add(Record{
			Algorithm: alg, Criterion: crit, Severity: injected,
			MeasuredSeverity: measured, MeasuredAll: measures,
			Dataset: "unit", Folds: 5,
			Metrics: eval.Metrics{Kappa: kappa, Accuracy: (kappa + 1) / 2},
		})
	}
	cleanMeasures := map[string]float64{
		"label-noise": 0.1, "completeness": 0, "correlation": 0.05,
	}
	for _, alg := range []string{"robust", "fragile"} {
		base := 0.8
		if alg == "fragile" {
			base = 0.85
		}
		add(alg, "clean", 0, 0, base, cleanMeasures)
	}
	// Label noise curves.
	add("robust", "label-noise", 0.2, 0.3, 0.75, nil)
	add("robust", "label-noise", 0.4, 0.5, 0.70, nil)
	add("fragile", "label-noise", 0.2, 0.3, 0.55, nil)
	add("fragile", "label-noise", 0.4, 0.5, 0.25, nil)
	// Completeness curves (roles reversed).
	add("robust", "completeness", 0.2, 0.2, 0.55, nil)
	add("robust", "completeness", 0.4, 0.4, 0.35, nil)
	add("fragile", "completeness", 0.2, 0.2, 0.80, nil)
	add("fragile", "completeness", 0.4, 0.4, 0.75, nil)
	return k
}

func TestAlgorithms(t *testing.T) {
	k := seedKB()
	algs := k.Algorithms()
	if len(algs) != 2 || algs[0] != "fragile" || algs[1] != "robust" {
		t.Fatalf("algorithms = %v", algs)
	}
}

func TestBaselineKappa(t *testing.T) {
	k := seedKB()
	if got := k.BaselineKappa("robust"); got != 0.8 {
		t.Fatalf("baseline = %v", got)
	}
	if got := k.BaselineKappa("missing-alg"); got != 0 {
		t.Fatalf("missing baseline = %v", got)
	}
}

func TestCurveInjectedAxis(t *testing.T) {
	k := seedKB()
	c := k.Curve("fragile", dq.LabelNoise)
	if len(c) != 3 {
		t.Fatalf("curve points = %d, want 3", len(c))
	}
	if c[0].Severity != 0 || c[1].Severity != 0.2 || c[2].Severity != 0.4 {
		t.Fatalf("severities = %+v", c)
	}
	if c[0].Kappa != 0.85 || c[2].Kappa != 0.25 {
		t.Fatalf("kappas = %+v", c)
	}
}

func TestMeasuredCurveUsesMeasuredAxis(t *testing.T) {
	k := seedKB()
	c := k.MeasuredCurve("fragile", dq.LabelNoise)
	if c[0].Severity != 0.1 {
		t.Fatalf("clean anchor = %v, want measured 0.1", c[0].Severity)
	}
	if c[1].Severity != 0.3 || c[2].Severity != 0.5 {
		t.Fatalf("measured severities = %+v", c)
	}
}

func TestSensitivitySigns(t *testing.T) {
	k := seedKB()
	if s := k.Sensitivity("fragile", dq.LabelNoise); s <= 0 {
		t.Fatalf("fragile noise sensitivity = %v, want positive", s)
	}
	if sr, sf := k.Sensitivity("robust", dq.LabelNoise), k.Sensitivity("fragile", dq.LabelNoise); sr >= sf {
		t.Fatalf("robust (%v) should be less noise-sensitive than fragile (%v)", sr, sf)
	}
	if s := k.Sensitivity("robust", dq.Duplicates); s != 0 {
		t.Fatalf("no-data sensitivity = %v, want 0", s)
	}
}

func TestPredictKappaCleanEqualsBaseline(t *testing.T) {
	k := seedKB()
	sev := make([]float64, len(dq.AllCriteria()))
	sev[dq.LabelNoise] = 0.1 // the measured floor of clean data
	got := k.PredictKappa("fragile", sev)
	if math.Abs(got-0.85) > 1e-9 {
		t.Fatalf("clean prediction = %v, want baseline 0.85", got)
	}
}

func TestPredictKappaInterpolates(t *testing.T) {
	k := seedKB()
	sev := make([]float64, len(dq.AllCriteria()))
	sev[dq.LabelNoise] = 0.4 // midway between measured 0.3 and 0.5
	got := k.PredictKappa("fragile", sev)
	want := 0.85 - (0.85 - (0.55+0.25)/2) // interpolated kappa 0.40
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("interpolated prediction = %v, want %v", got, want)
	}
}

func TestPredictKappaAdditiveAcrossCriteria(t *testing.T) {
	k := seedKB()
	sev := make([]float64, len(dq.AllCriteria()))
	sev[dq.LabelNoise] = 0.3
	sev[dq.Completeness] = 0.2
	got := k.PredictKappa("fragile", sev)
	want := 0.85 - (0.85 - 0.55) - (0.85 - 0.80)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("additive prediction = %v, want %v", got, want)
	}
}

func TestPredictKappaExtrapolatesBeyondCurve(t *testing.T) {
	k := seedKB()
	sev := make([]float64, len(dq.AllCriteria()))
	sev[dq.LabelNoise] = 0.9
	got := k.PredictKappa("fragile", sev)
	if got >= 0.25 {
		t.Fatalf("extrapolated prediction = %v, want below last curve point", got)
	}
	if got < -1 {
		t.Fatalf("prediction below kappa floor: %v", got)
	}
}

func TestAdviseRanksByScenario(t *testing.T) {
	k := seedKB()
	// Scenario A: heavy label noise -> robust wins despite lower baseline.
	sevA := make([]float64, len(dq.AllCriteria()))
	sevA[dq.LabelNoise] = 0.5
	advA, err := k.AdviseSeverities(sevA)
	if err != nil {
		t.Fatal(err)
	}
	if advA.Best().Algorithm != "robust" {
		t.Fatalf("noise scenario best = %s, want robust", advA.Best().Algorithm)
	}
	// Scenario B: heavy missingness -> fragile wins.
	sevB := make([]float64, len(dq.AllCriteria()))
	sevB[dq.Completeness] = 0.4
	sevB[dq.LabelNoise] = 0.1 // clean floor
	advB, err := k.AdviseSeverities(sevB)
	if err != nil {
		t.Fatal(err)
	}
	if advB.Best().Algorithm != "fragile" {
		t.Fatalf("missing scenario best = %s, want fragile", advB.Best().Algorithm)
	}
}

func TestAdviseDominantAndPenalties(t *testing.T) {
	k := seedKB()
	sev := make([]float64, len(dq.AllCriteria()))
	sev[dq.LabelNoise] = 0.5
	sev[dq.Completeness] = 0.2
	adv, err := k.AdviseSeverities(sev)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Dominant) < 2 || adv.Dominant[0] != "label-noise" {
		t.Fatalf("dominant = %v", adv.Dominant)
	}
	best := adv.Best()
	if len(best.Penalties) == 0 {
		t.Fatal("penalties missing")
	}
	if _, ok := best.Penalties["label-noise"]; !ok {
		t.Fatalf("label-noise penalty missing: %v", best.Penalties)
	}
}

func TestAdviseEmptyKB(t *testing.T) {
	if _, err := New().AdviseSeverities(make([]float64, 7)); err == nil {
		t.Fatal("empty KB should error")
	}
}

func TestAdviseWarnsOnHopelessSource(t *testing.T) {
	k := seedKB()
	sev := make([]float64, len(dq.AllCriteria()))
	sev[dq.LabelNoise] = 1
	sev[dq.Completeness] = 1
	adv, err := k.AdviseSeverities(sev)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Warnings) == 0 {
		t.Fatal("expected a repair-first warning")
	}
}

func TestExplainMentionsBest(t *testing.T) {
	k := seedKB()
	sev := make([]float64, len(dq.AllCriteria()))
	sev[dq.LabelNoise] = 0.5
	adv, _ := k.AdviseSeverities(sev)
	text := adv.Explain()
	if !bytes.Contains([]byte(text), []byte("ROBUST")) {
		t.Fatalf("explanation does not announce the best option:\n%s", text)
	}
	if !bytes.Contains([]byte(text), []byte("Full ranking")) {
		t.Fatalf("explanation lacks the ranking:\n%s", text)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	k := seedKB()
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != k.Len() {
		t.Fatalf("roundtrip records = %d, want %d", back.Len(), k.Len())
	}
	// Advice identical after roundtrip.
	sev := make([]float64, len(dq.AllCriteria()))
	sev[dq.LabelNoise] = 0.5
	a, _ := k.AdviseSeverities(sev)
	b, _ := back.AdviseSeverities(sev)
	if a.Best().Algorithm != b.Best().Algorithm ||
		math.Abs(a.Best().PredictedKappa-b.Best().PredictedKappa) > 1e-12 {
		t.Fatal("advice changed across persistence")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage should error")
	}
}

func TestSensitivityTableShape(t *testing.T) {
	k := seedKB()
	algs, crits, cells := k.SensitivityTable()
	if len(algs) != 2 || len(crits) != len(dq.AllCriteria()) {
		t.Fatalf("table shape %dx%d", len(algs), len(crits))
	}
	if len(cells) != 2 || len(cells[0]) != len(crits) {
		t.Fatal("cells shape wrong")
	}
	// No-data cells are NaN; measured cells are finite.
	if !math.IsNaN(cells[0][int(dq.Duplicates)]) {
		t.Fatal("no-data cell should be NaN")
	}
	if math.IsNaN(cells[0][int(dq.LabelNoise)]) {
		t.Fatal("measured cell should be finite")
	}
}

func TestMixedRecordsExcludedFromCurves(t *testing.T) {
	k := seedKB()
	k.Add(Record{
		Algorithm: "fragile", Criterion: "label-noise+completeness",
		Severity: 0.3, Mixed: true, Dataset: "unit",
		Metrics: eval.Metrics{Kappa: -0.5},
	})
	c := k.Curve("fragile", dq.LabelNoise)
	for _, p := range c {
		if p.Kappa == -0.5 {
			t.Fatal("mixed record leaked into a simple curve")
		}
	}
}
