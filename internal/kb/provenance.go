package kb

// Provenance glue: internal/provenance is a stdlib-only Merkle/manifest
// library that knows nothing about knowledge bases; this file supplies the
// canonical record encodings, builds manifests for saved and merged KBs,
// and translates verification failures into the oberr taxonomy the serving
// stack maps to HTTP statuses.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"openbi/internal/oberr"
	"openbi/internal/provenance"
)

// RecordLeaves returns the canonical per-record encoding of each record —
// compact JSON, one leaf per record in kb.json order. This is the byte
// sequence Merkle leaves hash, on both the producing and verifying side.
func RecordLeaves(records []Record) ([][]byte, error) {
	leaves := make([][]byte, len(records))
	for i := range records {
		b, err := json.Marshal(&records[i])
		if err != nil {
			return nil, fmt.Errorf("kb: encoding record %d: %w", i, err)
		}
		leaves[i] = b
	}
	return leaves, nil
}

// BuildManifest builds the provenance manifest of a saved knowledge base:
// doc is the exact serialized kb.json bytes, k the base it serializes.
// Chain fields (dataset hash, grid fingerprint) and the signature are the
// caller's to fill.
func BuildManifest(doc []byte, k *KnowledgeBase) (*provenance.Manifest, error) {
	leaves, err := RecordLeaves(k.Records)
	if err != nil {
		return nil, err
	}
	return provenance.New(doc, leaves), nil
}

// BuildMergedManifest builds the manifest of a merged knowledge base and
// pins the shard set it came from. The global Merkle root is computed
// twice — once over the merged base's records and once from the shard
// files' records placed into their canonical grid slots — and the two must
// agree, so a bug in either path (or a shard edited after the merge
// validated) cannot emit a manifest that contradicts the artifact. Chain
// fields are taken from the shard metadata.
func BuildMergedManifest(doc []byte, merged *KnowledgeBase, shards ...*Shard) (*provenance.Manifest, error) {
	m, err := BuildManifest(doc, merged)
	if err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return m, nil
	}
	ordered := append([]*Shard(nil), shards...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Meta.Index < ordered[j].Meta.Index })
	meta := ordered[0].Meta
	total := meta.Phase1Total + meta.Phase2Total
	if total != len(merged.Records) {
		return nil, fmt.Errorf("kb: merged base has %d records for a %d-cell grid", len(merged.Records), total)
	}
	slotHashes := make([][provenance.HashSize]byte, total)
	digests := make([]provenance.ShardDigest, 0, len(ordered))
	for _, sh := range ordered {
		shardLeaves := make([][]byte, len(sh.Records))
		for j := range sh.Records {
			pr := &sh.Records[j]
			b, err := json.Marshal(&pr.Record)
			if err != nil {
				return nil, fmt.Errorf("kb: encoding shard %d record %d: %w", sh.Meta.Index, j, err)
			}
			shardLeaves[j] = b
			slot, err := slotOf(meta, pr.Phase, pr.Index)
			if err != nil {
				return nil, err
			}
			slotHashes[slot] = provenance.LeafHash(b)
		}
		digests = append(digests, provenance.ShardDigest{
			Index:      sh.Meta.Index,
			Count:      sh.Meta.Count,
			Records:    len(sh.Records),
			MerkleRoot: provenance.NewTree(shardLeaves).RootHex(),
		})
	}
	if shardRoot := provenance.NewTreeFromLeafHashes(slotHashes).RootHex(); shardRoot != m.MerkleRoot {
		return nil, fmt.Errorf("kb: %w: shard-level merkle root %s disagrees with the record-level root %s",
			oberr.ErrManifestMismatch, shardRoot, m.MerkleRoot)
	}
	m.Shards = digests
	m.DatasetHash = meta.DatasetHash
	m.GridFingerprint = meta.Fingerprint
	return m, nil
}

// VerifyManifest checks the exact serialized KB bytes and the decoded
// records against a manifest, translating failures into the oberr
// taxonomy: a record-level mismatch names the first corrupted record, and
// everything else distinguishes "the manifest is unusable"
// (oberr.ErrBadManifest) from "the artifact does not match it"
// (oberr.ErrManifestMismatch). Signature policy is separate — see
// provenance.Manifest.VerifySignature and WrapManifestError.
func VerifyManifest(m *provenance.Manifest, doc []byte, k *KnowledgeBase) error {
	leaves, err := RecordLeaves(k.Records)
	if err != nil {
		return err
	}
	return WrapManifestError(m.Verify(doc, leaves))
}

// WrapManifestError translates a provenance verification error into the
// oberr taxonomy (nil passes through). provenance.ErrUnsigned is left
// untranslated: whether unsigned is an error is the caller's policy.
func WrapManifestError(err error) error {
	if err == nil {
		return nil
	}
	var rec *provenance.RecordMismatchError
	switch {
	case errors.As(err, &rec):
		return fmt.Errorf("kb: %w", &oberr.ManifestError{Record: rec.Index, Reason: rec.Error()})
	case errors.Is(err, provenance.ErrBadManifest):
		return fmt.Errorf("kb: %w: %w", oberr.ErrBadManifest, err)
	case errors.Is(err, provenance.ErrMismatch):
		// ManifestError.Error() re-adds the "provenance mismatch" prefix.
		reason := strings.TrimPrefix(err.Error(), provenance.ErrMismatch.Error()+": ")
		return fmt.Errorf("kb: %w", &oberr.ManifestError{Record: -1, Reason: reason})
	}
	return err
}
