package olap

import (
	"math"
	"strings"
	"testing"

	"openbi/internal/table"
)

// budgets is a small fact table: region × type with spend and population.
func budgets() *table.Table {
	t := table.New("budgets")
	region := table.NewNominalColumn("region", "north", "south")
	kind := table.NewNominalColumn("kind", "edu", "health")
	spend := table.NewNumericColumn("spend")
	pop := table.NewNumericColumn("pop")
	add := func(r, k int, s, p float64) {
		region.AppendCode(r)
		kind.AppendCode(k)
		spend.AppendFloat(s)
		pop.AppendFloat(p)
	}
	add(0, 0, 100, 10)
	add(0, 1, 200, 10)
	add(1, 0, 50, 5)
	add(1, 1, 70, 5)
	add(0, 0, 140, 12)
	t.MustAddColumn(region)
	t.MustAddColumn(kind)
	t.MustAddColumn(spend)
	t.MustAddColumn(pop)
	return t
}

func newCube(t *testing.T) *Cube {
	t.Helper()
	c, err := NewCube(budgets(), []string{"region", "kind"}, []Measure{
		{Column: "spend", Agg: Sum},
		{Column: "spend", Agg: Avg},
		{Column: "pop", Agg: Max},
		{Column: "spend", Agg: Count},
		{Column: "spend", Agg: Min},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCubeValidation(t *testing.T) {
	tb := budgets()
	if _, err := NewCube(tb, []string{"ghost"}, nil); err == nil {
		t.Fatal("unknown dimension should error")
	}
	if _, err := NewCube(tb, []string{"spend"}, nil); err == nil {
		t.Fatal("numeric dimension should error")
	}
	if _, err := NewCube(tb, []string{"region"}, []Measure{{Column: "ghost", Agg: Sum}}); err == nil {
		t.Fatal("unknown measure should error")
	}
	if _, err := NewCube(tb, []string{"region"}, []Measure{{Column: "kind", Agg: Sum}}); err == nil {
		t.Fatal("nominal sum measure should error")
	}
}

func TestRollUpGrandTotal(t *testing.T) {
	c := newCube(t)
	cells, err := c.RollUp()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("grand total cells = %d", len(cells))
	}
	g := cells[0]
	if g.Values[0] != 560 { // sum spend
		t.Fatalf("sum = %v, want 560", g.Values[0])
	}
	if math.Abs(g.Values[1]-112) > 1e-9 { // avg spend
		t.Fatalf("avg = %v, want 112", g.Values[1])
	}
	if g.Values[2] != 12 { // max pop
		t.Fatalf("max = %v, want 12", g.Values[2])
	}
	if g.Values[3] != 5 { // count
		t.Fatalf("count = %v, want 5", g.Values[3])
	}
	if g.Values[4] != 50 { // min
		t.Fatalf("min = %v, want 50", g.Values[4])
	}
	if g.Rows != 5 {
		t.Fatalf("rows = %d", g.Rows)
	}
}

func TestRollUpByOneDimension(t *testing.T) {
	c := newCube(t)
	cells, err := c.RollUp("region")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	// Sorted: north then south.
	if cells[0].Keys[0] != "north" || cells[0].Values[0] != 440 {
		t.Fatalf("north sum = %v", cells[0].Values[0])
	}
	if cells[1].Keys[0] != "south" || cells[1].Values[0] != 120 {
		t.Fatalf("south sum = %v", cells[1].Values[0])
	}
}

func TestRollUpByTwoDimensions(t *testing.T) {
	c := newCube(t)
	cells, err := c.RollUp("region", "kind")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	// north/edu = 100 + 140.
	if cells[0].Keys[0] != "north" || cells[0].Keys[1] != "edu" || cells[0].Values[0] != 240 {
		t.Fatalf("north/edu = %+v", cells[0])
	}
}

func TestRollUpUnknownDimension(t *testing.T) {
	c := newCube(t)
	if _, err := c.RollUp("ghost"); err == nil {
		t.Fatal("unknown roll-up dimension should error")
	}
}

func TestSliceRestrictsRows(t *testing.T) {
	c := newCube(t)
	s, err := c.Slice("region", "north")
	if err != nil {
		t.Fatal(err)
	}
	if s.ActiveRows() != 3 {
		t.Fatalf("sliced rows = %d, want 3", s.ActiveRows())
	}
	cells, err := s.RollUp("kind")
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Values[0] != 240 || cells[1].Values[0] != 200 {
		t.Fatalf("sliced sums = %v / %v", cells[0].Values[0], cells[1].Values[0])
	}
	// Dice: chain a second slice.
	d, err := s.Slice("kind", "edu")
	if err != nil {
		t.Fatal(err)
	}
	if d.ActiveRows() != 2 {
		t.Fatalf("diced rows = %d", d.ActiveRows())
	}
}

func TestSliceValidation(t *testing.T) {
	c := newCube(t)
	if _, err := c.Slice("ghost", "x"); err == nil {
		t.Fatal("unknown slice dimension should error")
	}
	if _, err := c.Slice("region", "mars"); err == nil {
		t.Fatal("unknown slice value should error")
	}
}

func TestSliceHandlesMissingDimensionCells(t *testing.T) {
	tb := budgets()
	tb.SetMissing(0, 0) // region missing on row 0
	c, err := NewCube(tb, []string{"region"}, []Measure{{Column: "spend", Agg: Sum}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Slice("region", "north")
	if err != nil {
		t.Fatal(err)
	}
	if s.ActiveRows() != 2 {
		t.Fatalf("missing-dim slice rows = %d, want 2", s.ActiveRows())
	}
	// The missing cell groups under "?" in a roll-up.
	cells, _ := c.RollUp("region")
	found := false
	for _, cell := range cells {
		if cell.Keys[0] == "?" {
			found = true
		}
	}
	if !found {
		t.Fatal("missing dimension value should group under ?")
	}
}

func TestRollUpTableRendering(t *testing.T) {
	c := newCube(t)
	tab, err := c.RollUpTable("Spend by region", "region")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "sum(spend)") || !strings.Contains(out, "north") {
		t.Fatalf("rendered table:\n%s", out)
	}
}

func TestPivot(t *testing.T) {
	c := newCube(t)
	tab, err := c.Pivot("Spend", "region", "kind", 0)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "edu") || !strings.Contains(out, "health") {
		t.Fatalf("pivot columns missing:\n%s", out)
	}
	if !strings.Contains(out, "240.000") {
		t.Fatalf("pivot cell missing:\n%s", out)
	}
}

func TestPivotValidation(t *testing.T) {
	c := newCube(t)
	if _, err := c.Pivot("x", "region", "kind", 99); err == nil {
		t.Fatal("bad measure index should error")
	}
}

func TestMeasureLabels(t *testing.T) {
	m := Measure{Column: "spend", Agg: Avg}
	if m.Label() != "avg(spend)" {
		t.Fatalf("label = %q", m.Label())
	}
	if Sum.String() != "sum" || Count.String() != "count" || Min.String() != "min" || Max.String() != "max" {
		t.Fatal("aggregation names wrong")
	}
}

func TestAvgIgnoresMissingMeasureCells(t *testing.T) {
	tb := budgets()
	tb.SetMissing(0, 2) // spend missing on row 0
	c, err := NewCube(tb, []string{"region"}, []Measure{{Column: "spend", Agg: Avg}})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := c.RollUp("region")
	if err != nil {
		t.Fatal(err)
	}
	// north: (200+140)/2 = 170.
	if math.Abs(cells[0].Values[0]-170) > 1e-9 {
		t.Fatalf("avg with missing = %v, want 170", cells[0].Values[0])
	}
}
