// Package olap implements the OpenBI analysis layer of §1(i): "reporting,
// OLAP analysis, dashboards" over tables derived from open data. A Cube
// aggregates measures over nominal dimensions and supports roll-up,
// slice/dice and pivoting; the dashboard renderer produces the text
// reports the examples and cmd/openbi show users.
package olap

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"openbi/internal/report"
	"openbi/internal/table"
)

// Aggregation selects how a measure is folded.
type Aggregation int

const (
	// Sum totals the measure.
	Sum Aggregation = iota
	// Count counts non-missing measure cells.
	Count
	// Avg averages the measure.
	Avg
	// Min takes the minimum.
	Min
	// Max takes the maximum.
	Max
)

// String names the aggregation.
func (a Aggregation) String() string {
	switch a {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("Aggregation(%d)", int(a))
	}
}

// Measure is one aggregated column of a cube.
type Measure struct {
	Column string
	Agg    Aggregation
}

// Label renders "avg(budget)".
func (m Measure) Label() string { return fmt.Sprintf("%s(%s)", m.Agg, m.Column) }

// Cube is an aggregation-ready view over a table: nominal dimensions plus
// numeric measures. The cube keeps the base rows, so any dimension subset
// can be rolled up on demand (a ROLAP-style cube rather than a
// materialized lattice — adequate at open-data scale).
type Cube struct {
	t        *table.Table
	dims     []int // nominal dimension column indices
	dimNames []string
	measures []Measure
	mcols    []int
	rows     []int // active rows after slicing
}

// NewCube builds a cube over t with the named dimensions and measures.
func NewCube(t *table.Table, dimensions []string, measures []Measure) (*Cube, error) {
	c := &Cube{t: t, measures: measures}
	for _, d := range dimensions {
		idx := t.ColumnIndex(d)
		if idx < 0 {
			return nil, fmt.Errorf("olap: dimension %q not found", d)
		}
		if t.Column(idx).Kind != table.Nominal {
			return nil, fmt.Errorf("olap: dimension %q must be nominal", d)
		}
		c.dims = append(c.dims, idx)
		c.dimNames = append(c.dimNames, d)
	}
	for _, m := range measures {
		idx := t.ColumnIndex(m.Column)
		if idx < 0 {
			return nil, fmt.Errorf("olap: measure column %q not found", m.Column)
		}
		if t.Column(idx).Kind != table.Numeric && m.Agg != Count {
			return nil, fmt.Errorf("olap: measure column %q must be numeric for %s", m.Column, m.Agg)
		}
		c.mcols = append(c.mcols, idx)
	}
	c.rows = make([]int, t.NumRows())
	for i := range c.rows {
		c.rows[i] = i
	}
	return c, nil
}

// Dimensions returns the dimension names.
func (c *Cube) Dimensions() []string { return c.dimNames }

// ActiveRows returns the number of rows after slicing.
func (c *Cube) ActiveRows() int { return len(c.rows) }

// Slice returns a sub-cube restricted to rows where dimension dim has the
// given value (dice by chaining slices).
func (c *Cube) Slice(dim, value string) (*Cube, error) {
	di := -1
	for i, n := range c.dimNames {
		if n == dim {
			di = i
			break
		}
	}
	if di < 0 {
		return nil, fmt.Errorf("olap: slice dimension %q not in cube", dim)
	}
	col := c.t.Column(c.dims[di])
	code := col.CodeOf(value)
	if code == table.MissingCat {
		return nil, fmt.Errorf("olap: value %q not found in dimension %q", value, dim)
	}
	out := *c
	out.rows = nil
	for _, r := range c.rows {
		if !col.IsMissing(r) && col.Cats[r] == code {
			out.rows = append(out.rows, r)
		}
	}
	return &out, nil
}

// Cell is one aggregated result row.
type Cell struct {
	// Keys holds the dimension values in roll-up dimension order.
	Keys []string
	// Values holds one aggregate per cube measure.
	Values []float64
	// Rows is the number of base rows folded into the cell.
	Rows int
}

// RollUp aggregates the cube's measures grouped by the named dimensions
// (a subset of the cube's dimensions; empty means the grand total). The
// result is sorted by the groups' decoded labels, deterministic.
//
// Grouping is by packed dictionary-code tuples, not rendered labels:
// a missing dimension cell is its own sentinel (rendered "?" only at
// report time), so it never merges with a genuine "?" category, and
// labels may contain arbitrary bytes without corrupting group identity.
func (c *Cube) RollUp(dimensions ...string) ([]Cell, error) {
	var groupCols []int
	for _, d := range dimensions {
		found := false
		for i, n := range c.dimNames {
			if n == d {
				groupCols = append(groupCols, c.dims[i])
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("olap: roll-up dimension %q not in cube", d)
		}
	}

	// Pass 1: assign each active row a dense group id from its packed
	// code tuple. The packed key is uvarints over (code+1) — 0 is the
	// missing sentinel — into one reused buffer; no per-row strings.
	cur := table.NewCursor(c.t)
	dims := make([][]int, len(groupCols))
	for i, gc := range groupCols {
		dims[i], _ = cur.CatsSpan(gc)
	}
	nm := len(c.measures)
	gids := make([]int32, len(c.rows))
	groupOf := make(map[string]int32, 16)
	var keyBuf []byte
	var tuples [][]int // per group, its dimension codes in groupCols order
	for i, r := range c.rows {
		keyBuf = keyBuf[:0]
		for _, span := range dims {
			keyBuf = binary.AppendUvarint(keyBuf, uint64(span[r]+1))
		}
		id, ok := groupOf[string(keyBuf)]
		if !ok {
			id = int32(len(tuples))
			groupOf[string(keyBuf)] = id
			tuple := make([]int, len(dims))
			for d, span := range dims {
				tuple[d] = span[r]
			}
			tuples = append(tuples, tuple)
		}
		gids[i] = id
	}
	ng := len(tuples)

	// Pass 2: columnar accumulation, one sweep per measure column over
	// its span, into flat per-group accumulators (slot = group*nm+measure).
	rowsPer := make([]int, ng)
	for _, id := range gids {
		rowsPer[id]++
	}
	sums := make([]float64, ng*nm)
	counts := make([]int, ng*nm)
	mins := make([]float64, ng*nm)
	maxs := make([]float64, ng*nm)
	for i := range mins {
		mins[i] = math.Inf(1)
		maxs[i] = math.Inf(-1)
	}
	for mi, mc := range c.mcols {
		if c.t.Column(mc).Kind == table.Numeric {
			nums, _ := cur.NumsSpan(mc)
			for i, r := range c.rows {
				v := nums[r]
				if math.IsNaN(v) {
					continue
				}
				slot := int(gids[i])*nm + mi
				sums[slot] += v
				counts[slot]++
				if v < mins[slot] {
					mins[slot] = v
				}
				if v > maxs[slot] {
					maxs[slot] = v
				}
			}
			continue
		}
		// Nominal measure column: only Count is legal (NewCube enforces
		// it); each observed cell contributes 1.
		cats, _ := cur.CatsSpan(mc)
		for i, r := range c.rows {
			if cats[r] == table.MissingCat {
				continue
			}
			slot := int(gids[i])*nm + mi
			sums[slot]++
			counts[slot]++
			if 1 < mins[slot] {
				mins[slot] = 1
			}
			if 1 > maxs[slot] {
				maxs[slot] = 1
			}
		}
	}

	// Sort groups by code-decoded labels. A genuine "?" category and the
	// missing sentinel render identically, so ties break missing-last to
	// stay deterministic.
	order := make([]int, ng)
	for i := range order {
		order[i] = i
	}
	dimLabel := func(d, code int) string {
		if code == table.MissingCat {
			return "?"
		}
		return c.t.Column(groupCols[d]).Label(code)
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := tuples[order[a]], tuples[order[b]]
		for d := range ta {
			la, lb := dimLabel(d, ta[d]), dimLabel(d, tb[d])
			if la != lb {
				return la < lb
			}
			if ta[d] != tb[d] {
				return tb[d] == table.MissingCat
			}
		}
		return false
	})

	out := make([]Cell, 0, ng)
	for _, g := range order {
		keys := make([]string, len(groupCols))
		for d, code := range tuples[g] {
			keys[d] = dimLabel(d, code)
		}
		cell := Cell{Keys: keys, Rows: rowsPer[g], Values: make([]float64, nm)}
		for i, m := range c.measures {
			slot := g*nm + i
			switch m.Agg {
			case Sum:
				cell.Values[i] = sums[slot]
			case Count:
				cell.Values[i] = float64(counts[slot])
			case Avg:
				if counts[slot] > 0 {
					cell.Values[i] = sums[slot] / float64(counts[slot])
				} else {
					cell.Values[i] = math.NaN()
				}
			case Min:
				if counts[slot] > 0 {
					cell.Values[i] = mins[slot]
				} else {
					cell.Values[i] = math.NaN()
				}
			case Max:
				if counts[slot] > 0 {
					cell.Values[i] = maxs[slot]
				} else {
					cell.Values[i] = math.NaN()
				}
			}
		}
		out = append(out, cell)
	}
	return out, nil
}

// RollUpTable renders a roll-up as a report table.
func (c *Cube) RollUpTable(title string, dimensions ...string) (*report.Table, error) {
	cells, err := c.RollUp(dimensions...)
	if err != nil {
		return nil, err
	}
	header := append([]string{}, dimensions...)
	for _, m := range c.measures {
		header = append(header, m.Label())
	}
	header = append(header, "rows")
	t := report.NewTable(title, header...)
	for _, cell := range cells {
		vals := make([]any, 0, len(header))
		for _, k := range cell.Keys {
			vals = append(vals, k)
		}
		for _, v := range cell.Values {
			vals = append(vals, v)
		}
		vals = append(vals, cell.Rows)
		t.AddRowf(vals...)
	}
	return t, nil
}

// Pivot renders a 2-D pivot of one measure: rows by rowDim, columns by
// colDim values.
func (c *Cube) Pivot(title, rowDim, colDim string, measure int) (*report.Table, error) {
	if measure < 0 || measure >= len(c.measures) {
		return nil, fmt.Errorf("olap: measure index %d out of range", measure)
	}
	cells, err := c.RollUp(rowDim, colDim)
	if err != nil {
		return nil, err
	}
	colSet := map[string]bool{}
	rowSet := map[string]bool{}
	val := map[[2]string]float64{}
	for _, cell := range cells {
		rowSet[cell.Keys[0]] = true
		colSet[cell.Keys[1]] = true
		val[[2]string{cell.Keys[0], cell.Keys[1]}] = cell.Values[measure]
	}
	colKeys := sortedStrings(colSet)
	rowKeys := sortedStrings(rowSet)

	header := append([]string{rowDim + `\` + colDim}, colKeys...)
	t := report.NewTable(title, header...)
	for _, rk := range rowKeys {
		row := make([]any, 0, len(header))
		row = append(row, rk)
		for _, ck := range colKeys {
			if v, ok := val[[2]string{rk, ck}]; ok {
				row = append(row, v)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRowf(row...)
	}
	return t, nil
}

func sortedStrings(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
