package olap

import (
	"math"
	"testing"

	"openbi/internal/table"
)

// edgeTable builds a small table with the pathological shapes the cube
// must survive: a single-level dimension, an all-missing measure and a
// partially missing one.
func edgeTable(rows int) *table.Table {
	t := table.New("edge")
	region := table.NewNominalColumn("region")
	constant := table.NewNominalColumn("constant") // single level everywhere
	val := table.NewNumericColumn("val")
	void := table.NewNumericColumn("void") // every cell missing
	for i := 0; i < rows; i++ {
		region.AppendLabel([]string{"north", "south"}[i%2])
		constant.AppendLabel("only")
		if i%3 == 0 {
			val.AppendMissing()
		} else {
			val.AppendFloat(float64(i))
		}
		void.AppendMissing()
	}
	t.MustAddColumn(region)
	t.MustAddColumn(constant)
	t.MustAddColumn(val)
	t.MustAddColumn(void)
	return t
}

// TestRollUpEdgeCases is the table-driven sweep over empty cubes,
// all-missing measures and single-level dimensions.
func TestRollUpEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		rows     int
		dims     []string
		measures []Measure
		check    func(t *testing.T, cells []Cell)
	}{
		{
			name: "empty cube rolls up to nothing",
			rows: 0, dims: []string{"region"},
			measures: []Measure{{Column: "val", Agg: Sum}},
			check: func(t *testing.T, cells []Cell) {
				if len(cells) != 0 {
					t.Fatalf("cells = %+v, want none", cells)
				}
			},
		},
		{
			name: "empty cube grand total is empty too",
			rows: 0, dims: []string{"region"},
			measures: []Measure{{Column: "val", Agg: Count}},
			check: func(t *testing.T, cells []Cell) {
				if len(cells) != 0 {
					t.Fatalf("grand total over zero rows = %+v", cells)
				}
			},
		},
		{
			name: "all-missing measure: sum 0, count 0, avg/min/max NaN",
			rows: 6, dims: []string{"region"},
			measures: []Measure{
				{Column: "void", Agg: Sum}, {Column: "void", Agg: Count},
				{Column: "void", Agg: Avg}, {Column: "void", Agg: Min}, {Column: "void", Agg: Max},
			},
			check: func(t *testing.T, cells []Cell) {
				if len(cells) != 2 {
					t.Fatalf("want 2 region cells, got %d", len(cells))
				}
				for _, c := range cells {
					if c.Values[0] != 0 || c.Values[1] != 0 {
						t.Fatalf("sum/count over missing = %+v", c.Values)
					}
					for _, v := range c.Values[2:] {
						if !math.IsNaN(v) {
							t.Fatalf("avg/min/max over missing should be NaN: %+v", c.Values)
						}
					}
				}
			},
		},
		{
			name: "single-level dimension folds to one cell",
			rows: 6, dims: []string{"constant"},
			measures: []Measure{{Column: "val", Agg: Count}},
			check: func(t *testing.T, cells []Cell) {
				if len(cells) != 1 || cells[0].Keys[0] != "only" || cells[0].Rows != 6 {
					t.Fatalf("cells = %+v", cells)
				}
				if cells[0].Values[0] != 4 { // rows 0 and 3 have a missing val
					t.Fatalf("count = %v, want 4 non-missing", cells[0].Values[0])
				}
			},
		},
		{
			name: "grand total (no group dims) over data",
			rows: 6, dims: []string{"region", "constant"},
			measures: []Measure{{Column: "val", Agg: Sum}},
			check: func(t *testing.T, cells []Cell) {
				if len(cells) != 1 || cells[0].Rows != 6 {
					t.Fatalf("cells = %+v", cells)
				}
				if cells[0].Values[0] != 1+2+4+5 {
					t.Fatalf("sum = %v", cells[0].Values[0])
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cube, err := NewCube(edgeTable(tc.rows), tc.dims, tc.measures)
			if err != nil {
				t.Fatal(err)
			}
			groupBy := tc.dims
			if tc.name == "empty cube grand total is empty too" || tc.name == "grand total (no group dims) over data" {
				groupBy = nil
			}
			cells, err := cube.RollUp(groupBy...)
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, cells)
		})
	}
}

// TestSliceEdgeCases: slicing to empty keeps the cube usable; unknown
// dimensions and values fail cleanly.
func TestSliceEdgeCases(t *testing.T) {
	cube, err := NewCube(edgeTable(6), []string{"region", "constant"},
		[]Measure{{Column: "val", Agg: Avg}})
	if err != nil {
		t.Fatal(err)
	}
	north, err := cube.Slice("region", "north")
	if err != nil {
		t.Fatal(err)
	}
	if north.ActiveRows() != 3 {
		t.Fatalf("north rows = %d", north.ActiveRows())
	}
	// Dicing the slice by the single-level dimension changes nothing.
	diced, err := north.Slice("constant", "only")
	if err != nil {
		t.Fatal(err)
	}
	if diced.ActiveRows() != north.ActiveRows() {
		t.Fatalf("dice changed rows: %d vs %d", diced.ActiveRows(), north.ActiveRows())
	}
	if _, err := cube.Slice("nope", "x"); err == nil {
		t.Fatal("unknown dimension should error")
	}
	if _, err := cube.Slice("region", "west"); err == nil {
		t.Fatal("unknown value should error")
	}
	// Roll-up of a sliced-to-known-value cube still aggregates only the slice.
	cells, err := north.RollUp("region")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Keys[0] != "north" {
		t.Fatalf("cells = %+v", cells)
	}
}

// TestPivotEdgeCases: pivots over sparse combinations render "-" holes
// and reject bad measure indexes; single-level dims pivot to one row.
func TestPivotEdgeCases(t *testing.T) {
	cube, err := NewCube(edgeTable(6), []string{"region", "constant"},
		[]Measure{{Column: "val", Agg: Count}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Pivot("bad", "region", "constant", 1); err == nil {
		t.Fatal("out-of-range measure index should error")
	}
	pt, err := cube.Pivot("ok", "constant", "region", 0)
	if err != nil {
		t.Fatal(err)
	}
	if pt == nil {
		t.Fatal("nil pivot table")
	}
}

// TestNominalCountMeasure: Count is the one aggregation a nominal column
// supports — it counts non-missing cells.
func TestNominalCountMeasure(t *testing.T) {
	tb := edgeTable(4)
	cube, err := NewCube(tb, []string{"region"}, []Measure{{Column: "region", Agg: Count}})
	if err != nil {
		t.Fatalf("nominal count measure should be allowed: %v", err)
	}
	cells, err := cube.RollUp()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Values[0] != 4 {
		t.Fatalf("cells = %+v", cells)
	}
}
