package olap

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// TestRollUpQuestionMarkLevelIsNotMissing is the regression test for the
// label-keyed grouping bug: a dimension whose dictionary contains a
// genuine "?" category must not merge with rows whose dimension cell is
// missing. Both render as "?" in Cell.Keys, but they are distinct groups.
func TestRollUpQuestionMarkLevelIsNotMissing(t *testing.T) {
	tb := table.New("q")
	dim := table.NewNominalColumn("dim", "?", "a")
	val := table.NewNumericColumn("val")
	// Two rows in the literal "?" category, one missing, one "a".
	dim.AppendCode(0)
	val.AppendFloat(1)
	dim.AppendCode(0)
	val.AppendFloat(2)
	dim.AppendMissing()
	val.AppendFloat(10)
	dim.AppendCode(1)
	val.AppendFloat(100)
	tb.MustAddColumn(dim)
	tb.MustAddColumn(val)

	c, err := NewCube(tb, []string{"dim"}, []Measure{{Column: "val", Agg: Sum}})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := c.RollUp("dim")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("want 3 groups (%q category, missing, %q), got %d: %+v", "?", "a", len(cells), cells)
	}
	// Sorted by label with the missing sentinel after a tied "?" category.
	wantSums := []float64{3, 10, 100}
	wantRows := []int{2, 1, 1}
	for i, cell := range cells {
		if cell.Values[0] != wantSums[i] || cell.Rows != wantRows[i] {
			t.Fatalf("cell %d = %+v, want sum %v over %d rows", i, cell, wantSums[i], wantRows[i])
		}
	}
	if cells[0].Keys[0] != "?" || cells[1].Keys[0] != "?" {
		t.Fatalf("both the %q category and the missing sentinel should render %q: %+v", "?", "?", cells)
	}
}

// TestRollUpSeparatorByteInLabel is the second half of the regression: the
// old implementation joined group labels with 0x1f, so the label pair
// ("a\x1fb", "c") collided with ("a", "b\x1fc") across two dimensions.
func TestRollUpSeparatorByteInLabel(t *testing.T) {
	tb := table.New("sep")
	d1 := table.NewNominalColumn("d1", "a\x1fb", "a")
	d2 := table.NewNominalColumn("d2", "c", "b\x1fc")
	val := table.NewNumericColumn("val")
	d1.AppendCode(0)
	d2.AppendCode(0)
	val.AppendFloat(1) // ("a\x1fb", "c")
	d1.AppendCode(1)
	d2.AppendCode(1)
	val.AppendFloat(2) // ("a", "b\x1fc")
	tb.MustAddColumn(d1)
	tb.MustAddColumn(d2)
	tb.MustAddColumn(val)

	c, err := NewCube(tb, []string{"d1", "d2"}, []Measure{{Column: "val", Agg: Sum}})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := c.RollUp("d1", "d2")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("labels containing the old separator byte merged: got %d cells %+v", len(cells), cells)
	}
	for _, cell := range cells {
		if cell.Rows != 1 {
			t.Fatalf("each group holds one row, got %+v", cells)
		}
	}
}

// refRollUp is a deliberately naive row-at-a-time roll-up used as the
// equivalence oracle for the columnar kernel: group on dimension code
// tuples row by row, fold every measure per row, then sort by decoded
// labels (missing sentinel last on a label tie). It shares no code with
// Cube.RollUp beyond the column accessors.
func refRollUp(tb *table.Table, dims []string, measures []Measure) []Cell {
	dimIdx := make([]int, len(dims))
	for i, d := range dims {
		dimIdx[i] = tb.ColumnIndex(d)
	}
	mIdx := make([]int, len(measures))
	for i, m := range measures {
		mIdx[i] = tb.ColumnIndex(m.Column)
	}
	type group struct {
		tuple  []int
		sums   []float64
		counts []int
		mins   []float64
		maxs   []float64
		rows   int
	}
	byKey := map[string]*group{}
	var groups []*group
	for r := 0; r < tb.NumRows(); r++ {
		tuple := make([]int, len(dimIdx))
		for i, j := range dimIdx {
			if tb.Column(j).IsMissing(r) {
				tuple[i] = table.MissingCat
			} else {
				tuple[i] = tb.Column(j).Cats[r]
			}
		}
		key := fmt.Sprint(tuple)
		g := byKey[key]
		if g == nil {
			g = &group{tuple: tuple,
				sums: make([]float64, len(measures)), counts: make([]int, len(measures)),
				mins: make([]float64, len(measures)), maxs: make([]float64, len(measures))}
			for i := range g.mins {
				g.mins[i] = math.Inf(1)
				g.maxs[i] = math.Inf(-1)
			}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.rows++
		for i, j := range mIdx {
			c := tb.Column(j)
			if c.IsMissing(r) {
				continue
			}
			v := 1.0
			if c.Kind == table.Numeric {
				v = c.Nums[r]
			}
			g.sums[i] += v
			g.counts[i]++
			g.mins[i] = math.Min(g.mins[i], v)
			g.maxs[i] = math.Max(g.maxs[i], v)
		}
	}
	label := func(d, code int) string {
		if code == table.MissingCat {
			return "?"
		}
		return tb.Column(dimIdx[d]).Label(code)
	}
	sort.Slice(groups, func(a, b int) bool {
		ta, tc := groups[a].tuple, groups[b].tuple
		for d := range ta {
			la, lb := label(d, ta[d]), label(d, tc[d])
			if la != lb {
				return la < lb
			}
			if ta[d] != tc[d] {
				return tc[d] == table.MissingCat
			}
		}
		return false
	})
	out := make([]Cell, 0, len(groups))
	for _, g := range groups {
		cell := Cell{Keys: make([]string, len(dimIdx)), Rows: g.rows, Values: make([]float64, len(measures))}
		for d, code := range g.tuple {
			cell.Keys[d] = label(d, code)
		}
		for i, m := range measures {
			switch m.Agg {
			case Sum:
				cell.Values[i] = g.sums[i]
			case Count:
				cell.Values[i] = float64(g.counts[i])
			case Avg:
				cell.Values[i] = math.NaN()
				if g.counts[i] > 0 {
					cell.Values[i] = g.sums[i] / float64(g.counts[i])
				}
			case Min:
				cell.Values[i] = math.NaN()
				if g.counts[i] > 0 {
					cell.Values[i] = g.mins[i]
				}
			case Max:
				cell.Values[i] = math.NaN()
				if g.counts[i] > 0 {
					cell.Values[i] = g.maxs[i]
				}
			}
		}
		out = append(out, cell)
	}
	return out
}

// randomFactTable builds a randomized fact table: two nominal dimensions
// with duplicate-free but arbitrary labels plus missing cells, two numeric
// measures with missing cells, and occasionally an all-missing measure.
func randomFactTable(seed int64, rows int) *table.Table {
	rng := stats.NewRand(seed)
	tb := table.New("rand")
	d1 := table.NewNominalColumn("d1")
	d2 := table.NewNominalColumn("d2")
	m1 := table.NewNumericColumn("m1")
	m2 := table.NewNumericColumn("m2")
	n1 := 1 + rng.Intn(6)
	n2 := 1 + rng.Intn(4)
	allMissing := rng.Intn(4) == 0
	for r := 0; r < rows; r++ {
		if rng.Float64() < 0.2 {
			d1.AppendMissing()
		} else {
			d1.AppendLabel(fmt.Sprintf("g%d", rng.Intn(n1)))
		}
		if rng.Float64() < 0.2 {
			d2.AppendMissing()
		} else {
			d2.AppendLabel(fmt.Sprintf("h%d", rng.Intn(n2)))
		}
		if rng.Float64() < 0.25 {
			m1.AppendFloat(math.NaN())
		} else {
			m1.AppendFloat(rng.NormFloat64() * 100)
		}
		if allMissing || rng.Float64() < 0.25 {
			m2.AppendFloat(math.NaN())
		} else {
			m2.AppendFloat(float64(rng.Intn(50)))
		}
	}
	tb.MustAddColumn(d1)
	tb.MustAddColumn(d2)
	tb.MustAddColumn(m1)
	tb.MustAddColumn(m2)
	return tb
}

func cellsEqual(a, b []Cell) bool {
	if len(a) != len(b) {
		return false
	}
	feq := func(x, y float64) bool { return x == y || (math.IsNaN(x) && math.IsNaN(y)) }
	for i := range a {
		if a[i].Rows != b[i].Rows || len(a[i].Keys) != len(b[i].Keys) || len(a[i].Values) != len(b[i].Values) {
			return false
		}
		for k := range a[i].Keys {
			if a[i].Keys[k] != b[i].Keys[k] {
				return false
			}
		}
		for v := range a[i].Values {
			if !feq(a[i].Values[v], b[i].Values[v]) {
				return false
			}
		}
	}
	return true
}

// TestRollUpMatchesRowAtATimeReference is the equivalence property test:
// the columnar kernel must reproduce the naive row-at-a-time reference
// exactly (values with ==, NaN matching NaN) over randomized tables, for
// every aggregation and for one- and two-dimension roll-ups.
func TestRollUpMatchesRowAtATimeReference(t *testing.T) {
	measures := []Measure{
		{Column: "m1", Agg: Sum},
		{Column: "m1", Agg: Avg},
		{Column: "m2", Agg: Min},
		{Column: "m2", Agg: Max},
		{Column: "m2", Agg: Count},
		{Column: "d2", Agg: Count}, // nominal measure: Count only
	}
	for seed := int64(0); seed < 20; seed++ {
		tb := randomFactTable(seed, 60+int(seed)*7)
		c, err := NewCube(tb, []string{"d1", "d2"}, measures)
		if err != nil {
			t.Fatal(err)
		}
		for _, dims := range [][]string{{"d1"}, {"d2"}, {"d1", "d2"}, {"d2", "d1"}} {
			got, err := c.RollUp(dims...)
			if err != nil {
				t.Fatal(err)
			}
			want := refRollUp(tb, dims, measures)
			if !cellsEqual(got, want) {
				t.Fatalf("seed %d dims %v:\n got %+v\nwant %+v", seed, dims, got, want)
			}
		}
	}
}
