// Package rdf implements the Linked Open Data substrate of the OpenBI
// reproduction: RDF terms and triples, an indexed in-memory triple store,
// N-Triples and Turtle (subset) parsing and serialization, link statistics,
// and the entity→table projection the paper's "LOD integration module"
// (§3.3) performs to obtain a common representation from LOD.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind distinguishes the three RDF term kinds.
type TermKind int

const (
	// IRI is an absolute IRI reference.
	IRI TermKind = iota
	// Blank is a blank node with a document-scoped label.
	Blank
	// Literal is a literal with optional language tag or datatype IRI.
	Literal
)

// Well-known datatype and vocabulary IRIs used across the package.
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDate    = "http://www.w3.org/2001/XMLSchema#date"

	RDFType    = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSLabel  = "http://www.w3.org/2000/01/rdf-schema#label"
	RDFSClass  = "http://www.w3.org/2000/01/rdf-schema#Class"
	OWLSameAs  = "http://www.w3.org/2002/07/owl#sameAs"
	DCTSource  = "http://purl.org/dc/terms/source"
	DCTCreated = "http://purl.org/dc/terms/created"
)

// Term is an RDF term. Terms are value types and safe to copy; two terms
// are equal iff all fields are equal, which matches RDF term equality.
type Term struct {
	Kind TermKind
	// Value is the IRI string, blank label (without "_:"), or literal
	// lexical form, according to Kind.
	Value string
	// Lang is the language tag of a language-tagged literal ("" otherwise).
	Lang string
	// Datatype is the datatype IRI of a typed literal ("" for plain/string).
	Datatype string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewBlank returns a blank-node term with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewLiteral returns a plain string literal.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return NewTypedLiteral(fmt.Sprintf("%d", v), XSDInteger)
}

// NewDouble returns an xsd:double literal.
func NewDouble(v float64) Term {
	return NewTypedLiteral(fmt.Sprintf("%g", v), XSDDouble)
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsNumericLiteral reports whether the term is a literal with a numeric
// XSD datatype.
func (t Term) IsNumericLiteral() bool {
	if t.Kind != Literal {
		return false
	}
	switch t.Datatype {
	case XSDInteger, XSDDecimal, XSDDouble:
		return true
	}
	return false
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + escapeIRI(t.Value) + ">"
	case Blank:
		return "_:" + t.Value
	default:
		s := `"` + escapeLiteral(t.Value) + `"`
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != XSDString {
			return s + "^^<" + escapeIRI(t.Datatype) + ">"
		}
		return s
	}
}

// LocalName returns the fragment or last path segment of an IRI term —
// the human-facing name used when projecting predicates to column names.
// For non-IRI terms it returns the raw value.
func (t Term) LocalName() string {
	if t.Kind != IRI {
		return t.Value
	}
	v := t.Value
	if i := strings.LastIndexByte(v, '#'); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	v = strings.TrimRight(v, "/")
	if i := strings.LastIndexByte(v, '/'); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}

// Triple is an RDF statement.
type Triple struct {
	S, P, O Term
}

// String renders the triple in N-Triples syntax (without trailing newline).
func (tr Triple) String() string {
	return tr.S.String() + " " + tr.P.String() + " " + tr.O.String() + " ."
}

// escapeIRI makes an IRI safe inside <...>: characters the N-Triples
// grammar forbids there — controls, space, the bracket/quote set and '\'
// itself — become \uXXXX escapes, which the parser decodes back. Parsing
// can produce such values legitimately (a > escape decodes to '>');
// without re-escaping, writing them would tear the output line apart and
// break parse→write→parse round-trips (found by FuzzParseNTriples).
func escapeIRI(s string) string {
	needsEscape := func(r rune) bool {
		switch r {
		case '<', '>', '"', '{', '}', '|', '^', '`', '\\':
			return true
		}
		return r <= 0x20
	}
	if !strings.ContainsFunc(s, needsEscape) {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		if needsEscape(r) {
			fmt.Fprintf(&b, `\u%04X`, r)
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
