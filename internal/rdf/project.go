package rdf

import (
	"fmt"
	"strconv"

	"openbi/internal/oberr"
	"openbi/internal/table"
)

// ProjectOptions controls the entity→table projection.
type ProjectOptions struct {
	// Class restricts the projection to subjects with rdf:type Class.
	// Zero-value Class (no IRI) projects every subject in the graph
	// (unless LargestClass is set).
	Class Term
	// LargestClass, when Class is unset, restricts the projection to the
	// most populous rdf:type class — the default behaviour of the
	// CLI/engine ingestion paths. A graph with no typed subjects falls
	// back to projecting every subject. Ignored when Class is set.
	LargestClass bool
	// IncludeSubject adds a leading nominal "@id" column with subject IRIs.
	IncludeSubject bool
	// NumericThreshold is the fraction of observed values that must be
	// numeric literals for a property column to be typed Numeric. The
	// zero value defaults to 0.9 at every call site (Project,
	// StreamProject, Projector); values outside (0,1] fail with
	// oberr.ErrBadConfig instead of silently misclassifying columns.
	NumericThreshold float64
	// MaxLevels drops property columns whose nominal dictionary would
	// exceed this many levels — an identifier-like property carries no
	// mining signal (default 0: keep everything).
	MaxLevels int
}

// normalize applies the documented NumericThreshold default and rejects
// out-of-range values. It is called by every projection entry point so
// the zero value means 0.9 everywhere.
func (opts *ProjectOptions) normalize() error {
	if opts.NumericThreshold == 0 {
		opts.NumericThreshold = 0.9
		return nil
	}
	if !(opts.NumericThreshold > 0 && opts.NumericThreshold <= 1) {
		return fmt.Errorf("rdf: %w", &oberr.ConfigError{
			Field:  "NumericThreshold",
			Reason: fmt.Sprintf("must be in (0,1], got %v", opts.NumericThreshold),
		})
	}
	return nil
}

// Project flattens a graph into the "common representation" table of
// §3.2.1: one row per entity (subject), one column per predicate. This is
// the LOD integration module of the paper's implementation sketch (§3.3).
//
// Multi-valued properties keep their first value and are additionally
// summarized by a "<name>#count" numeric column when any subject has more
// than one value, so the link multiplicity the paper worries about is not
// silently discarded. Numeric-literal-dominated properties become Numeric
// columns; everything else (IRIs, strings, mixed) becomes Nominal on the
// object's local name.
func Project(g *Graph, opts ProjectOptions) (*table.Table, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	var subjects []Term
	hasClass := opts.Class.IsIRI() && opts.Class.Value != ""
	if !hasClass && opts.LargestClass {
		if best, ok := largestClass(g.Classes(), func(c Term) int { return len(g.SubjectsOfType(c)) }); ok {
			opts.Class, hasClass = best, true
		}
	}
	if hasClass {
		subjects = g.SubjectsOfType(opts.Class)
	} else {
		subjects = g.Subjects()
	}
	if len(subjects) == 0 {
		return nil, errNoSubjects
	}

	// Collect predicates in deterministic order, skipping rdf:type (it is
	// the class selector, not an attribute).
	preds := g.Predicates()
	typeIRI := NewIRI(RDFType)

	gathers := make([]predGather, 0, len(preds))
	for _, p := range preds {
		if p == typeIRI {
			continue
		}
		pg := predGather{
			pred:      p,
			firstVals: make([]Term, len(subjects)),
			present:   make([]bool, len(subjects)),
			counts:    make([]int, len(subjects)),
		}
		for i, s := range subjects {
			vals := g.PropertyValues(s, p)
			pg.counts[i] = len(vals)
			if len(vals) == 0 {
				continue
			}
			if len(vals) > 1 {
				pg.multi = true
			}
			pg.present[i] = true
			pg.firstVals[i] = vals[0]
			pg.observed++
			if isNumericTerm(vals[0]) {
				pg.numeric++
			}
		}
		gathers = append(gathers, pg)
	}
	return assembleProjection(subjects, gathers, opts)
}

// predGather is the per-predicate evidence both projection paths (batch
// Project and the streaming Projector) collect before column assembly:
// the first value and value count per subject, plus the numeric vote.
// Slices are indexed by position in the sorted subject list.
type predGather struct {
	pred      Term
	firstVals []Term
	present   []bool
	counts    []int
	numeric   int // subjects whose first value is numeric
	observed  int // subjects carrying the predicate at all
	multi     bool
}

// errNoSubjects is shared by Project and the streaming Projector so the
// two paths stay indistinguishable to callers. It matches
// oberr.ErrTooFewRows so the serving layer maps it to a client error (an
// empty upload is the client's problem, not the server's).
var errNoSubjects = fmt.Errorf("rdf: projection found no subjects: %w", oberr.ErrTooFewRows)

// largestClass picks the most populous class — first strict maximum in
// sorted class order, matching the historical ProjectLargestClass
// tie-break. ok is false when there are no classes.
func largestClass(classes []Term, count func(Term) int) (Term, bool) {
	if len(classes) == 0 {
		return Term{}, false
	}
	best, bestN := classes[0], -1
	for _, c := range classes {
		if n := count(c); n > bestN {
			best, bestN = c, n
		}
	}
	return best, true
}

// assembleProjection turns gathered per-predicate evidence into the final
// table. Both Project and the streaming Projector end here, which is what
// makes their outputs byte-identical: column order, name disambiguation,
// the numeric vote, level interning order and the #count columns all run
// through this one routine. opts must already be normalized, with
// opts.Class resolved (zero Class means "all subjects", named "lod").
func assembleProjection(subjects []Term, gathers []predGather, opts ProjectOptions) (*table.Table, error) {
	name := "lod"
	if opts.Class.IsIRI() && opts.Class.Value != "" {
		name = opts.Class.LocalName()
	}
	t := table.New(name)
	if opts.IncludeSubject {
		idCol := table.NewNominalColumn("@id")
		for _, s := range subjects {
			idCol.AppendLabel(s.Value)
		}
		if err := t.AddColumn(idCol); err != nil {
			return nil, err
		}
	}

	for _, pg := range gathers {
		if pg.observed == 0 {
			continue // predicate never applies to this class
		}
		colName := pg.pred.LocalName()
		if t.ColumnIndex(colName) >= 0 {
			colName = colName + "_" + shortHash(pg.pred.Value)
		}
		if float64(pg.numeric) >= opts.NumericThreshold*float64(pg.observed) {
			col := table.NewNumericColumn(colName)
			for i := range subjects {
				if !pg.present[i] {
					col.AppendMissing()
					continue
				}
				v, err := numericValue(pg.firstVals[i])
				if err != nil {
					col.AppendMissing()
					continue
				}
				col.AppendFloat(v)
			}
			if err := t.AddColumn(col); err != nil {
				return nil, err
			}
		} else {
			col := table.NewNominalColumn(colName)
			for i := range subjects {
				if !pg.present[i] {
					col.AppendMissing()
					continue
				}
				col.AppendLabel(termCellLabel(pg.firstVals[i]))
			}
			if opts.MaxLevels > 0 && col.NumLevels() > opts.MaxLevels {
				continue // identifier-like: drop
			}
			if err := t.AddColumn(col); err != nil {
				return nil, err
			}
		}
		if pg.multi {
			cc := table.NewNumericColumn(colName + "#count")
			for i := range subjects {
				cc.AppendFloat(float64(pg.counts[i]))
			}
			if err := t.AddColumn(cc); err != nil {
				return nil, err
			}
		}
	}
	if t.NumCols() == 0 {
		return nil, fmt.Errorf("rdf: projection produced no columns")
	}
	return t, nil
}

// isNumericTerm reports whether a term projects to a number: either a
// numerically typed literal or a plain literal that parses as a float.
func isNumericTerm(t Term) bool {
	if !t.IsLiteral() {
		return false
	}
	if t.IsNumericLiteral() {
		return true
	}
	if t.Lang != "" {
		return false
	}
	_, err := strconv.ParseFloat(t.Value, 64)
	return err == nil
}

func numericValue(t Term) (float64, error) {
	return strconv.ParseFloat(t.Value, 64)
}

// termCellLabel renders a term as a nominal cell label: IRIs shorten to
// their local name (keeping the link target's identity while staying
// readable), literals keep their lexical form.
func termCellLabel(t Term) string {
	if t.IsIRI() {
		return t.LocalName()
	}
	return t.Value
}

// shortHash returns a 6-hex-digit FNV hash of s, used to disambiguate
// clashing local names from different namespaces.
func shortHash(s string) string {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return fmt.Sprintf("%06x", h&0xffffff)
}

// TableToGraph re-exports a table as LOD, implementing the paper's second
// OpenBI duty: "share the new acquired information as LOD to be reused by
// anyone" (§1(ii)). Every row becomes a subject IRI under base, every
// column a predicate under base+"def/", numeric cells become xsd:double
// literals and nominal cells plain literals. Missing cells emit nothing.
func TableToGraph(t *table.Table, base string, class string) *Graph {
	g := NewGraph()
	classTerm := NewIRI(base + "def/" + class)
	typePred := NewIRI(RDFType)
	preds := make([]Term, t.NumCols())
	for j, c := range t.Columns() {
		preds[j] = NewIRI(base + "def/" + sanitizeLocal(c.Name))
	}
	for r := 0; r < t.NumRows(); r++ {
		subj := NewIRI(fmt.Sprintf("%s%s/%d", base, class, r))
		g.Add(Triple{S: subj, P: typePred, O: classTerm})
		for j, c := range t.Columns() {
			if c.IsMissing(r) {
				continue
			}
			var obj Term
			if c.Kind == table.Numeric {
				obj = NewDouble(c.Nums[r])
			} else {
				obj = NewLiteral(c.Label(c.Cats[r]))
			}
			g.Add(Triple{S: subj, P: preds[j], O: obj})
		}
	}
	return g
}

// sanitizeLocal makes a column name safe as an IRI local part.
func sanitizeLocal(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			out = append(out, c)
		case c == ' ', c == '.', c == '/', c == '#':
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "col"
	}
	return string(out)
}
