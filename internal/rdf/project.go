package rdf

import (
	"fmt"
	"strconv"

	"openbi/internal/table"
)

// ProjectOptions controls the entity→table projection.
type ProjectOptions struct {
	// Class restricts the projection to subjects with rdf:type Class.
	// Zero-value Class (no IRI) projects every subject in the graph.
	Class Term
	// IncludeSubject adds a leading nominal "@id" column with subject IRIs.
	IncludeSubject bool
	// NumericThreshold is the fraction of observed values that must be
	// numeric literals for a property column to be typed Numeric
	// (default 0.9).
	NumericThreshold float64
	// MaxLevels drops property columns whose nominal dictionary would
	// exceed this many levels — an identifier-like property carries no
	// mining signal (default 0: keep everything).
	MaxLevels int
}

// Project flattens a graph into the "common representation" table of
// §3.2.1: one row per entity (subject), one column per predicate. This is
// the LOD integration module of the paper's implementation sketch (§3.3).
//
// Multi-valued properties keep their first value and are additionally
// summarized by a "<name>#count" numeric column when any subject has more
// than one value, so the link multiplicity the paper worries about is not
// silently discarded. Numeric-literal-dominated properties become Numeric
// columns; everything else (IRIs, strings, mixed) becomes Nominal on the
// object's local name.
func Project(g *Graph, opts ProjectOptions) (*table.Table, error) {
	if opts.NumericThreshold == 0 {
		opts.NumericThreshold = 0.9
	}
	var subjects []Term
	hasClass := opts.Class.IsIRI() && opts.Class.Value != ""
	if hasClass {
		subjects = g.SubjectsOfType(opts.Class)
	} else {
		subjects = g.Subjects()
	}
	if len(subjects) == 0 {
		return nil, fmt.Errorf("rdf: projection found no subjects")
	}

	// Collect predicates in deterministic order, skipping rdf:type (it is
	// the class selector, not an attribute).
	preds := g.Predicates()
	typeIRI := NewIRI(RDFType)

	name := "lod"
	if hasClass {
		name = opts.Class.LocalName()
	}
	t := table.New(name)
	if opts.IncludeSubject {
		idCol := table.NewNominalColumn("@id")
		for _, s := range subjects {
			idCol.AppendLabel(s.Value)
		}
		if err := t.AddColumn(idCol); err != nil {
			return nil, err
		}
	}

	for _, p := range preds {
		if p == typeIRI {
			continue
		}
		firstVals := make([]Term, len(subjects))
		present := make([]bool, len(subjects))
		counts := make([]int, len(subjects))
		numeric, observed, multi := 0, 0, false
		for i, s := range subjects {
			vals := g.PropertyValues(s, p)
			counts[i] = len(vals)
			if len(vals) == 0 {
				continue
			}
			if len(vals) > 1 {
				multi = true
			}
			present[i] = true
			firstVals[i] = vals[0]
			observed++
			if isNumericTerm(vals[0]) {
				numeric++
			}
		}
		if observed == 0 {
			continue // predicate never applies to this class
		}
		colName := p.LocalName()
		if t.ColumnIndex(colName) >= 0 {
			colName = colName + "_" + shortHash(p.Value)
		}
		if float64(numeric) >= opts.NumericThreshold*float64(observed) {
			col := table.NewNumericColumn(colName)
			for i := range subjects {
				if !present[i] {
					col.AppendMissing()
					continue
				}
				v, err := numericValue(firstVals[i])
				if err != nil {
					col.AppendMissing()
					continue
				}
				col.AppendFloat(v)
			}
			if err := t.AddColumn(col); err != nil {
				return nil, err
			}
		} else {
			col := table.NewNominalColumn(colName)
			for i := range subjects {
				if !present[i] {
					col.AppendMissing()
					continue
				}
				col.AppendLabel(termCellLabel(firstVals[i]))
			}
			if opts.MaxLevels > 0 && col.NumLevels() > opts.MaxLevels {
				continue // identifier-like: drop
			}
			if err := t.AddColumn(col); err != nil {
				return nil, err
			}
		}
		if multi {
			cc := table.NewNumericColumn(colName + "#count")
			for i := range subjects {
				cc.AppendFloat(float64(counts[i]))
			}
			if err := t.AddColumn(cc); err != nil {
				return nil, err
			}
		}
	}
	if t.NumCols() == 0 {
		return nil, fmt.Errorf("rdf: projection produced no columns")
	}
	return t, nil
}

// isNumericTerm reports whether a term projects to a number: either a
// numerically typed literal or a plain literal that parses as a float.
func isNumericTerm(t Term) bool {
	if !t.IsLiteral() {
		return false
	}
	if t.IsNumericLiteral() {
		return true
	}
	if t.Lang != "" {
		return false
	}
	_, err := strconv.ParseFloat(t.Value, 64)
	return err == nil
}

func numericValue(t Term) (float64, error) {
	return strconv.ParseFloat(t.Value, 64)
}

// termCellLabel renders a term as a nominal cell label: IRIs shorten to
// their local name (keeping the link target's identity while staying
// readable), literals keep their lexical form.
func termCellLabel(t Term) string {
	if t.IsIRI() {
		return t.LocalName()
	}
	return t.Value
}

// shortHash returns a 6-hex-digit FNV hash of s, used to disambiguate
// clashing local names from different namespaces.
func shortHash(s string) string {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return fmt.Sprintf("%06x", h&0xffffff)
}

// TableToGraph re-exports a table as LOD, implementing the paper's second
// OpenBI duty: "share the new acquired information as LOD to be reused by
// anyone" (§1(ii)). Every row becomes a subject IRI under base, every
// column a predicate under base+"def/", numeric cells become xsd:double
// literals and nominal cells plain literals. Missing cells emit nothing.
func TableToGraph(t *table.Table, base string, class string) *Graph {
	g := NewGraph()
	classTerm := NewIRI(base + "def/" + class)
	typePred := NewIRI(RDFType)
	preds := make([]Term, t.NumCols())
	for j, c := range t.Columns() {
		preds[j] = NewIRI(base + "def/" + sanitizeLocal(c.Name))
	}
	for r := 0; r < t.NumRows(); r++ {
		subj := NewIRI(fmt.Sprintf("%s%s/%d", base, class, r))
		g.Add(Triple{S: subj, P: typePred, O: classTerm})
		for j, c := range t.Columns() {
			if c.IsMissing(r) {
				continue
			}
			var obj Term
			if c.Kind == table.Numeric {
				obj = NewDouble(c.Nums[r])
			} else {
				obj = NewLiteral(c.Label(c.Cats[r]))
			}
			g.Add(Triple{S: subj, P: preds[j], O: obj})
		}
	}
	return g
}

// sanitizeLocal makes a column name safe as an IRI local part.
func sanitizeLocal(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			out = append(out, c)
		case c == ' ', c == '.', c == '/', c == '#':
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "col"
	}
	return string(out)
}
