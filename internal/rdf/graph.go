package rdf

import (
	"sort"
)

// Graph is an in-memory RDF graph with three hash indexes (by subject, by
// predicate, by object) so that every single-position pattern lookup is a
// map hit. Duplicate triples are stored once. Graph is not safe for
// concurrent mutation; concurrent reads are safe once loading is done.
type Graph struct {
	triples []Triple
	seen    map[Triple]int // triple -> index in triples
	bySubj  map[Term][]int
	byPred  map[Term][]int
	byObj   map[Term][]int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		seen:   make(map[Triple]int),
		bySubj: make(map[Term][]int),
		byPred: make(map[Term][]int),
		byObj:  make(map[Term][]int),
	}
}

// Len returns the number of distinct triples.
func (g *Graph) Len() int { return len(g.triples) }

// Add inserts a triple; re-adding an existing triple is a no-op. It
// reports whether the triple was new.
func (g *Graph) Add(tr Triple) bool {
	if _, dup := g.seen[tr]; dup {
		return false
	}
	idx := len(g.triples)
	g.triples = append(g.triples, tr)
	g.seen[tr] = idx
	g.bySubj[tr.S] = append(g.bySubj[tr.S], idx)
	g.byPred[tr.P] = append(g.byPred[tr.P], idx)
	g.byObj[tr.O] = append(g.byObj[tr.O], idx)
	return true
}

// AddAll inserts every triple of other into g.
func (g *Graph) AddAll(other *Graph) {
	for _, tr := range other.triples {
		g.Add(tr)
	}
}

// Has reports whether the graph contains the triple.
func (g *Graph) Has(tr Triple) bool {
	_, ok := g.seen[tr]
	return ok
}

// Triples returns all triples in insertion order. The slice is shared;
// callers must not modify it.
func (g *Graph) Triples() []Triple { return g.triples }

// Wildcard returns a pattern term matching anything when passed to Match.
func Wildcard() *Term { return nil }

// Match returns all triples matching the pattern, where a nil term matches
// anything. It picks the most selective available index.
func (g *Graph) Match(s, p, o *Term) []Triple {
	candidate := g.candidateIndices(s, p, o)
	var out []Triple
	for _, i := range candidate {
		tr := g.triples[i]
		if s != nil && tr.S != *s {
			continue
		}
		if p != nil && tr.P != *p {
			continue
		}
		if o != nil && tr.O != *o {
			continue
		}
		out = append(out, tr)
	}
	return out
}

// candidateIndices chooses the smallest index posting list covering the
// bound positions, or all triples when the pattern is fully unbound.
func (g *Graph) candidateIndices(s, p, o *Term) []int {
	best := -1 // -1 means "scan all"
	var bestList []int
	consider := func(list []int, bound bool) {
		if !bound {
			return
		}
		if best < 0 || len(list) < best {
			best = len(list)
			bestList = list
		}
	}
	if s != nil {
		consider(g.bySubj[*s], true)
	}
	if p != nil {
		consider(g.byPred[*p], true)
	}
	if o != nil {
		consider(g.byObj[*o], true)
	}
	if best < 0 {
		all := make([]int, len(g.triples))
		for i := range all {
			all[i] = i
		}
		return all
	}
	return bestList
}

// Subjects returns the distinct subjects in deterministic (sorted) order.
func (g *Graph) Subjects() []Term {
	return sortedKeys(g.bySubj)
}

// Predicates returns the distinct predicates in deterministic order.
func (g *Graph) Predicates() []Term {
	return sortedKeys(g.byPred)
}

// Objects returns the distinct objects in deterministic order.
func (g *Graph) Objects() []Term {
	return sortedKeys(g.byObj)
}

// SubjectsOfType returns subjects having an rdf:type triple with the given
// class IRI, in deterministic order.
func (g *Graph) SubjectsOfType(class Term) []Term {
	typ := NewIRI(RDFType)
	var out []Term
	seen := make(map[Term]bool)
	for _, tr := range g.Match(nil, &typ, &class) {
		if !seen[tr.S] {
			seen[tr.S] = true
			out = append(out, tr.S)
		}
	}
	sortTerms(out)
	return out
}

// Classes returns all distinct rdf:type objects in deterministic order.
func (g *Graph) Classes() []Term {
	typ := NewIRI(RDFType)
	seen := make(map[Term]bool)
	var out []Term
	for _, tr := range g.Match(nil, &typ, nil) {
		if !seen[tr.O] {
			seen[tr.O] = true
			out = append(out, tr.O)
		}
	}
	sortTerms(out)
	return out
}

// PropertyValues returns the objects of (subject, predicate, ?) in
// insertion order.
func (g *Graph) PropertyValues(subject, predicate Term) []Term {
	var out []Term
	for _, i := range g.bySubj[subject] {
		tr := g.triples[i]
		if tr.P == predicate {
			out = append(out, tr.O)
		}
	}
	return out
}

// FirstValue returns the first object of (subject, predicate, ?) and
// whether one exists.
func (g *Graph) FirstValue(subject, predicate Term) (Term, bool) {
	for _, i := range g.bySubj[subject] {
		tr := g.triples[i]
		if tr.P == predicate {
			return tr.O, true
		}
	}
	return Term{}, false
}

// OutDegree returns the number of triples with the given subject.
func (g *Graph) OutDegree(t Term) int { return len(g.bySubj[t]) }

// InDegree returns the number of triples with the given object.
func (g *Graph) InDegree(t Term) int { return len(g.byObj[t]) }

// LinkStats summarizes the link structure of a graph — the "different kind
// of links among data" the paper singles out as an LOD-specific mining
// difficulty (§1).
type LinkStats struct {
	Triples        int
	Subjects       int
	Predicates     int
	Objects        int
	IRIObjectLinks int     // triples whose object is an IRI (entity-to-entity links)
	LiteralTriples int     // triples whose object is a literal
	SameAsLinks    int     // owl:sameAs triples (inter-source identity links)
	AvgOutDegree   float64 // triples per distinct subject
	MaxOutDegree   int
	AvgInDegree    float64 // IRI-object links per distinct IRI object
}

// Stats computes LinkStats over the graph.
func (g *Graph) Stats() LinkStats {
	st := LinkStats{
		Triples:    len(g.triples),
		Subjects:   len(g.bySubj),
		Predicates: len(g.byPred),
		Objects:    len(g.byObj),
	}
	sameAs := NewIRI(OWLSameAs)
	inDeg := make(map[Term]int)
	for _, tr := range g.triples {
		switch {
		case tr.O.IsLiteral():
			st.LiteralTriples++
		case tr.O.IsIRI():
			st.IRIObjectLinks++
			inDeg[tr.O]++
		}
		if tr.P == sameAs {
			st.SameAsLinks++
		}
	}
	if st.Subjects > 0 {
		st.AvgOutDegree = float64(st.Triples) / float64(st.Subjects)
	}
	for s := range g.bySubj {
		if d := len(g.bySubj[s]); d > st.MaxOutDegree {
			st.MaxOutDegree = d
		}
	}
	if len(inDeg) > 0 {
		total := 0
		for _, d := range inDeg {
			total += d
		}
		st.AvgInDegree = float64(total) / float64(len(inDeg))
	}
	return st
}

func sortedKeys(m map[Term][]int) []Term {
	out := make([]Term, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sortTerms(out)
	return out
}

func sortTerms(ts []Term) {
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].Kind != ts[b].Kind {
			return ts[a].Kind < ts[b].Kind
		}
		if ts[a].Value != ts[b].Value {
			return ts[a].Value < ts[b].Value
		}
		if ts[a].Lang != ts[b].Lang {
			return ts[a].Lang < ts[b].Lang
		}
		return ts[a].Datatype < ts[b].Datatype
	})
}
