package rdf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseNTriples hunts for parser crashes and writer/parser round-trip
// breaks: any graph the parser accepts must serialize to N-Triples that
// parse back to the same number of (deduplicated) triples. Historically
// this property caught IRIs whose \uXXXX escapes decoded to '>' or
// newlines — written raw, they tore the output line apart.
func FuzzParseNTriples(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"<http://a> <http://b> <http://c> .",
		"<http://a> <http://b> \"lit\" .",
		"<http://a> <http://b> \"v\"@en-GB .",
		"<http://a> <http://b> \"3.4\"^^<http://www.w3.org/2001/XMLSchema#double> .",
		"_:b1 <http://b> _:b2 .",
		"<http://a> <http://b> \"tab\\t nl\\n q\\\" bs\\\\\" .",
		"<http://a> <http://b> \"\\u00e9\\U0001F600\" .",
		"<http://a\\u003e> <http://b> \"escaped gt in iri\" .",
		"<http://a> <http://b> \"unterminated",
		"<http://a> <http://b> .",
		"<http://a> <http://b> <http://c> . trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadNTriples(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine; crashing is not
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			t.Fatalf("serializing parsed graph: %v", err)
		}
		g2, err := ReadNTriples(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\ninput: %q\nwrote: %q", err, input, buf.String())
		}
		if g2.Len() != g.Len() {
			t.Fatalf("round-trip changed triple count %d -> %d\ninput: %q\nwrote: %q",
				g.Len(), g2.Len(), input, buf.String())
		}
	})
}

// FuzzParseTurtle stresses the Turtle tokenizer + parser; anything it
// accepts must survive re-serialization through the N-Triples writer (the
// two parsers share the term model, so a graph valid in one must round-trip
// through the other).
func FuzzParseTurtle(f *testing.F) {
	seeds := []string{
		"",
		"@prefix ex: <http://ex.org/> .\nex:a ex:b ex:c .",
		"PREFIX ex: <http://ex.org/>\nex:a a ex:C .",
		"@base <http://ex.org/> .\n</a> <b> <#c> .",
		"<http://a> <http://b> \"v\"@en ; <http://c> 42, 3.14, 1e-3, true .",
		"_:x <http://p> \"\"\"long\nstring\"\"\" .",
		"<http://a> <http://p> \"typed\"^^<http://dt> .",
		"@prefix ex: <http://ex.org/> .\nex:a ex:p \"x\"^^ex:dt .",
		"# comment\n<http://a> <http://b> -7 .",
		"<http://a> <http://b> .5 .",
		"@prefix : <http://ex.org/> .\n:a :b :c .",
		"<http://a> <http://b> 'bad quote' .",
		"@prefix ex <http://missing-colon> .",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadTurtle(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			t.Fatalf("serializing parsed graph: %v", err)
		}
		g2, err := ReadNTriples(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("turtle graph does not round-trip as n-triples: %v\ninput: %q\nwrote: %q",
				err, input, buf.String())
		}
		if g2.Len() != g.Len() {
			t.Fatalf("round-trip changed triple count %d -> %d\ninput: %q\nwrote: %q",
				g.Len(), g2.Len(), input, buf.String())
		}
	})
}
