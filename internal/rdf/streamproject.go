package rdf

import (
	"io"

	"openbi/internal/table"
)

// Projector is the streaming counterpart of Project: feed it triples one
// at a time (its Add is a TripleFunc) and call Table once the stream
// ends. It gathers exactly the evidence Project derives from a resident
// graph — per (subject, predicate) the first distinct value and the
// distinct-value count, in stream order — and finishes through the same
// assembleProjection routine, so the resulting table is byte-identical
// to Project over the equivalent graph.
//
// Memory scales with the number of distinct (subject, predicate, object)
// combinations — the content of the projected table — not with the
// triple count: duplicate triples, repeated links and the graph's
// reverse indexes cost nothing. That is what lets the ingestion pipeline
// project graphs whose serialized form exceeds memory.
type Projector struct {
	opts     ProjectOptions
	subs     map[Term]*subjState
	order    []Term // subjects in first-seen order (stable iteration)
	preds    map[Term]struct{}
	classCnt map[Term]int

	// class is the entity class the last Table call resolved (explicit
	// Class, or the LargestClass winner); hasClass is false when every
	// subject was projected.
	class    Term
	hasClass bool
}

// subjState is the per-subject evidence of one streaming projection.
// Predicates and objects are small linear-scanned slices rather than
// nested maps: subjects in real LOD carry a handful of predicates with
// one to a few values each, and slices keep the projector's working set
// several times below a resident Graph (maps cost hundreds of bytes per
// entry; hub subjects degrade to linear scans, never break).
type subjState struct {
	types []Term
	preds []spEntry
}

// spEntry is the per-(subject, predicate) evidence: the first distinct
// object (PropertyValues order == first-occurrence order of distinct
// triples) and the distinct objects seen.
type spEntry struct {
	pred Term
	objs []Term // distinct objects in first-seen order; objs[0] is the first value
}

// NewProjector validates opts (same rules and defaults as Project) and
// returns an empty streaming projector.
func NewProjector(opts ProjectOptions) (*Projector, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	return &Projector{
		opts:     opts,
		subs:     make(map[Term]*subjState),
		preds:    make(map[Term]struct{}),
		classCnt: make(map[Term]int),
	}, nil
}

// Add observes one triple. It never fails; the TripleFunc signature lets
// it plug straight into Stream.
func (p *Projector) Add(tr Triple) error {
	st := p.subs[tr.S]
	if st == nil {
		st = &subjState{}
		p.subs[tr.S] = st
		p.order = append(p.order, tr.S)
	}
	if tr.P.Kind == IRI && tr.P.Value == RDFType {
		for _, t := range st.types {
			if t == tr.O {
				return nil
			}
		}
		st.types = append(st.types, tr.O)
		p.classCnt[tr.O]++
		return nil
	}
	p.preds[tr.P] = struct{}{}
	for i := range st.preds {
		if st.preds[i].pred != tr.P {
			continue
		}
		for _, o := range st.preds[i].objs {
			if o == tr.O {
				return nil // duplicate triple
			}
		}
		st.preds[i].objs = append(st.preds[i].objs, tr.O)
		return nil
	}
	st.preds = append(st.preds, spEntry{pred: tr.P, objs: []Term{tr.O}})
	return nil
}

// Subjects returns the number of distinct subjects seen so far (a cheap
// progress indicator; the projector does not count raw triples).
func (p *Projector) Subjects() int { return len(p.subs) }

// Class returns the entity class the last Table call projected, and
// whether one was used at all (false = every subject was projected).
func (p *Projector) Class() (Term, bool) { return p.class, p.hasClass }

// Table assembles the projected table from everything Added so far,
// applying the class restriction (explicit Class, LargestClass, or all
// subjects) exactly as Project does.
func (p *Projector) Table() (*table.Table, error) {
	opts := p.opts
	hasClass := opts.Class.IsIRI() && opts.Class.Value != ""
	if !hasClass && opts.LargestClass {
		classes := make([]Term, 0, len(p.classCnt))
		for c := range p.classCnt {
			classes = append(classes, c)
		}
		sortTerms(classes)
		if best, ok := largestClass(classes, func(c Term) int { return p.classCnt[c] }); ok {
			opts.Class, hasClass = best, true
		}
	}
	p.class, p.hasClass = opts.Class, hasClass

	var subjects []Term
	for _, s := range p.order {
		if hasClass && !p.subs[s].hasType(opts.Class) {
			continue
		}
		subjects = append(subjects, s)
	}
	if len(subjects) == 0 {
		return nil, errNoSubjects
	}
	sortTerms(subjects)

	preds := make([]Term, 0, len(p.preds))
	for pr := range p.preds {
		preds = append(preds, pr)
	}
	sortTerms(preds)

	predIdx := make(map[Term]int, len(preds))
	gathers := make([]predGather, len(preds))
	for gi, pr := range preds {
		predIdx[pr] = gi
		gathers[gi] = predGather{
			pred:      pr,
			firstVals: make([]Term, len(subjects)),
			present:   make([]bool, len(subjects)),
			counts:    make([]int, len(subjects)),
		}
	}
	for i, s := range subjects {
		for _, sp := range p.subs[s].preds {
			pg := &gathers[predIdx[sp.pred]]
			pg.counts[i] = len(sp.objs)
			if len(sp.objs) > 1 {
				pg.multi = true
			}
			pg.present[i] = true
			pg.firstVals[i] = sp.objs[0]
			pg.observed++
			if isNumericTerm(sp.objs[0]) {
				pg.numeric++
			}
		}
	}
	return assembleProjection(subjects, gathers, opts)
}

func (st *subjState) hasType(class Term) bool {
	for _, t := range st.types {
		if t == class {
			return true
		}
	}
	return false
}

// StreamProject decodes RDF from r (format as in Stream) straight into a
// projected table without materializing the graph. The output is
// byte-identical to Project over ReadNTriples/ReadTurtle of the same
// document; peak memory is bounded by the projected content plus one
// statement, not the triple count.
func StreamProject(r io.Reader, format string, opts ProjectOptions) (*table.Table, error) {
	pr, err := NewProjector(opts)
	if err != nil {
		return nil, err
	}
	if err := Stream(r, format, pr.Add); err != nil {
		return nil, err
	}
	return pr.Table()
}
