package rdf

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"openbi/internal/oberr"
	"openbi/internal/table"
)

// randomGraph builds a seeded random graph exercising everything the
// projection and profiling paths care about: several classes, numeric and
// nominal properties, multi-valued properties, dangling and resolvable
// links, sameAs mirrors, labels, blank nodes, colliding local names and
// escaped characters.
func randomGraph(seed int64, entities int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	typePred := NewIRI(RDFType)
	labelPred := NewIRI(RDFSLabel)
	sameAs := NewIRI(OWLSameAs)
	classes := []Term{NewIRI("http://ex.org/def/City"), NewIRI("http://ex.org/def/Region")}
	pop := NewIRI("http://ex.org/def/pop")
	name := NewIRI("http://ex.org/def/name")
	nameClash := NewIRI("http://other.org/vocab#name") // same local name
	link := NewIRI("http://ex.org/def/link")
	for i := 0; i < entities; i++ {
		s := NewIRI(fmt.Sprintf("http://ex.org/e/%d", i))
		if rng.Intn(10) > 0 { // some subjects stay classless
			g.Add(Triple{S: s, P: typePred, O: classes[rng.Intn(len(classes))]})
		}
		if rng.Intn(10) > 1 {
			g.Add(Triple{S: s, P: pop, O: NewInteger(int64(rng.Intn(100000)))})
		}
		switch rng.Intn(4) {
		case 0:
			g.Add(Triple{S: s, P: name, O: NewLiteral(fmt.Sprintf("entity %d \"quoted\"", i))})
		case 1:
			g.Add(Triple{S: s, P: name, O: NewLangLiteral(fmt.Sprintf("entité\n%d", i), "fr")})
		case 2:
			g.Add(Triple{S: s, P: nameClash, O: NewLiteral(fmt.Sprintf("alt %d", i))})
		}
		for k := 0; k < rng.Intn(3); k++ { // multi-valued links, some dangling
			target := fmt.Sprintf("http://ex.org/e/%d", rng.Intn(entities*2))
			g.Add(Triple{S: s, P: link, O: NewIRI(target)})
		}
		if rng.Intn(6) == 0 {
			g.Add(Triple{S: s, P: sameAs, O: NewIRI(fmt.Sprintf("http://mirror.org/e/%d", i))})
		}
		if rng.Intn(8) == 0 {
			g.Add(Triple{S: NewBlank(fmt.Sprintf("b%d", i)), P: labelPred, O: NewLiteral("anon")})
		}
	}
	return g
}

func collectStream(t *testing.T, data []byte, format string) (*Graph, error) {
	t.Helper()
	g := NewGraph()
	err := Stream(bytes.NewReader(data), format, func(tr Triple) error {
		g.Add(tr)
		return nil
	})
	return g, err
}

func sameGraph(a, b *Graph) bool {
	if a.Len() != b.Len() {
		return false
	}
	for _, tr := range a.Triples() {
		if !b.Has(tr) {
			return false
		}
	}
	return true
}

// TestStreamNTriplesMatchesBatch streams serialized random graphs and
// checks triple-for-triple agreement with ReadNTriples.
func TestStreamNTriplesMatchesBatch(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := randomGraph(seed, 40)
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			t.Fatal(err)
		}
		batch, err := ReadNTriples(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := collectStream(t, buf.Bytes(), "nt")
		if err != nil {
			t.Fatalf("seed %d: stream failed: %v", seed, err)
		}
		if !sameGraph(batch, streamed) {
			t.Fatalf("seed %d: stream (%d) != batch (%d)", seed, streamed.Len(), batch.Len())
		}
	}
}

// TestStreamTurtleMatchesBatch covers the chunker against both the Turtle
// writer's output (prefixes, ';'/',' abbreviation) and hand-written edge
// cases targeting every place a '.' is not a statement terminator.
func TestStreamTurtleMatchesBatch(t *testing.T) {
	docs := []string{
		"",
		"# only a comment\n",
		"@prefix ex: <http://ex.org/> .\nex:a ex:b ex:c .",
		"PREFIX ex: <http://ex.org/>\nex:a a ex:C .",
		"@prefix ex: <http://ex.org/> .", // trailing directive, no statement
		"<http://a> <http://b> 3.14 .",
		"<http://a> <http://b> 3. <http://a> <http://b2> .5 .", // terminator glued to a digit-less dot
		"<http://a> <http://b> _:x.y .",                        // internal dot in blank label
		"<http://a> <http://b> _:x. <http://a> <http://c> _:z .",
		"<http://a> <http://b> \"dot . inside\" .",
		"<http://a> <http://b> \"\"\"long . with\n dots .\n\"\"\" .",
		"<http://a> <http://b> \"esc \\\" . quote\" .",
		"<http://a.b/c.d> <http://p.q/r> <http://x.y/z> .", // dots inside IRIs
		"<http://a> <http://b> <http://c> . # trailing comment with . dot\n<http://a> <http://d> 1 .",
		"@base <http://base.org/> .\n</rel> <http://p> <#frag> .",
		"<http://a> <http://b> \"v\"@en-GB ; <http://c> 42, true, false .",
		"<http://a> <http://b> \"typed\"^^<http://dt.org/t> .",
		"@prefix : <http://ex.org/> .\n:a :b :c .",
		// Rejected documents: both paths must reject.
		"ex:a ex:b ex:c .",                 // undeclared prefix
		"<http://a> <http://b> <http://c>", // missing final dot
		"<http://a> <http://b> 'bad' .",
		"<http://a> <http://b> \"unterminated .",
		"<http://a> <http://b> <never-closed .",
		"<http://a> .",
		". .",
	}
	for seed := int64(1); seed <= 3; seed++ {
		g := randomGraph(seed, 25)
		var buf bytes.Buffer
		if err := WriteTurtle(&buf, g, map[string]string{"ex": "http://ex.org/def/"}); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, buf.String())
	}
	for i, doc := range docs {
		batch, berr := ReadTurtle(strings.NewReader(doc))
		streamed, serr := collectStream(t, []byte(doc), "ttl")
		if (berr == nil) != (serr == nil) {
			t.Fatalf("doc %d: accept mismatch: batch err=%v, stream err=%v\ndoc: %q", i, berr, serr, doc)
		}
		if berr != nil {
			continue
		}
		if !sameGraph(batch, streamed) {
			t.Fatalf("doc %d: stream (%d triples) != batch (%d)\ndoc: %q", i, streamed.Len(), batch.Len(), doc)
		}
	}
}

// TestStreamTurtleSmallChunks forces tiny reads so every lookahead pause
// in the chunker is exercised.
func TestStreamTurtleSmallChunks(t *testing.T) {
	doc := "@prefix ex: <http://ex.org/> .\nex:a ex:b \"\"\"x.\"\"\", 3.5, _:l.m ; ex:c ex:d .\n"
	batch, err := ReadTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph()
	err = StreamTurtle(&oneByteReader{data: []byte(doc)}, func(tr Triple) error {
		g.Add(tr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(batch, g) {
		t.Fatalf("one-byte-read stream diverged: %d vs %d triples", g.Len(), batch.Len())
	}
}

// oneByteReader yields one byte per Read, like iotest.OneByteReader.
type oneByteReader struct {
	data []byte
	pos  int
}

func (r *oneByteReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	p[0] = r.data[r.pos]
	r.pos++
	return 1, nil
}

// TestStreamConsumerErrorPropagates checks that a TripleFunc error stops
// the stream and comes back unwrapped (not retagged as a syntax error).
func TestStreamConsumerErrorPropagates(t *testing.T) {
	sentinel := errors.New("stop here")
	for _, tc := range []struct{ format, doc string }{
		{"nt", "<http://a> <http://b> <http://c> .\n<http://a> <http://b> <http://d> .\n"},
		{"ttl", "<http://a> <http://b> <http://c>, <http://d> ."},
	} {
		n := 0
		err := Stream(strings.NewReader(tc.doc), tc.format, func(Triple) error {
			n++
			return sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("%s: want sentinel error back, got %v", tc.format, err)
		}
		if errors.Is(err, oberr.ErrBadSyntax) {
			t.Fatalf("%s: consumer error retagged as syntax error", tc.format)
		}
		if n != 1 {
			t.Fatalf("%s: fn called %d times after erroring, want 1", tc.format, n)
		}
	}
}

// TestStreamSyntaxErrors checks the oberr taxonomy on malformed input and
// unknown formats.
func TestStreamSyntaxErrors(t *testing.T) {
	err := Stream(strings.NewReader("not a triple\n"), "nt", func(Triple) error { return nil })
	if !errors.Is(err, oberr.ErrBadSyntax) {
		t.Fatalf("nt parse error should match ErrBadSyntax, got %v", err)
	}
	var se *oberr.SyntaxError
	if !errors.As(err, &se) || se.Line != 1 {
		t.Fatalf("want SyntaxError with line 1, got %#v", err)
	}
	err = Stream(strings.NewReader("# c\n\nstray ^ here"), "ttl", func(Triple) error { return nil })
	if !errors.Is(err, oberr.ErrBadSyntax) {
		t.Fatalf("ttl parse error should match ErrBadSyntax, got %v", err)
	}
	if !errors.As(err, &se) || se.Line != 3 {
		t.Fatalf("turtle SyntaxError should carry line 3, got %#v", se)
	}
	err = Stream(strings.NewReader(""), "json-ld", func(Triple) error { return nil })
	if !errors.Is(err, oberr.ErrUnsupportedFormat) {
		t.Fatalf("unknown format should match ErrUnsupportedFormat, got %v", err)
	}
}

// csvBytes renders a table to CSV for byte-identity comparison.
func csvBytes(t *testing.T, tb *table.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := table.WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamProjectMatchesProject is the projection equivalence property:
// on seeded random graphs, StreamProject over the serialized graph must
// produce a table byte-identical (as CSV) to Project over the loaded
// graph — for explicit classes, the largest class and the all-subjects
// default, with and without the subject column and level caps.
func TestStreamProjectMatchesProject(t *testing.T) {
	optVariants := []ProjectOptions{
		{},
		{LargestClass: true},
		{Class: NewIRI("http://ex.org/def/City"), IncludeSubject: true},
		{Class: NewIRI("http://ex.org/def/Region"), MaxLevels: 4},
		{LargestClass: true, NumericThreshold: 0.5},
	}
	for seed := int64(1); seed <= 6; seed++ {
		g := randomGraph(seed, 30)
		var nt bytes.Buffer
		if err := WriteNTriples(&nt, g); err != nil {
			t.Fatal(err)
		}
		for vi, opts := range optVariants {
			batchT, berr := Project(g, opts)
			streamT, serr := StreamProject(bytes.NewReader(nt.Bytes()), "nt", opts)
			if (berr == nil) != (serr == nil) {
				t.Fatalf("seed %d variant %d: error mismatch: batch %v, stream %v", seed, vi, berr, serr)
			}
			if berr != nil {
				continue
			}
			if got, want := csvBytes(t, streamT), csvBytes(t, batchT); !bytes.Equal(got, want) {
				t.Fatalf("seed %d variant %d: projected CSV differs\n--- stream\n%s\n--- batch\n%s",
					seed, vi, got, want)
			}
			if streamT.Name != batchT.Name {
				t.Fatalf("seed %d variant %d: table name %q != %q", seed, vi, streamT.Name, batchT.Name)
			}
		}
	}
}

// TestStreamProjectDuplicateTriples feeds raw duplicates (which a Graph
// deduplicates on load) and checks the projector's internal dedup keeps
// the outputs identical — including the #count columns.
func TestStreamProjectDuplicateTriples(t *testing.T) {
	g := randomGraph(9, 20)
	var nt bytes.Buffer
	for range 2 { // every triple twice
		if err := WriteNTriples(&nt, g); err != nil {
			t.Fatal(err)
		}
	}
	opts := ProjectOptions{LargestClass: true, IncludeSubject: true}
	batchT, err := Project(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	streamT, err := StreamProject(bytes.NewReader(nt.Bytes()), "nt", opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := csvBytes(t, streamT), csvBytes(t, batchT); !bytes.Equal(got, want) {
		t.Fatalf("duplicated stream changed projection:\n--- stream\n%s\n--- batch\n%s", got, want)
	}
}

// TestProjectThresholdValidation pins the NumericThreshold contract: zero
// defaults to 0.9 on every entry point, anything outside (0,1] fails with
// ErrBadConfig.
func TestProjectThresholdValidation(t *testing.T) {
	g := randomGraph(3, 10)
	var nt bytes.Buffer
	if err := WriteNTriples(&nt, g); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-0.1, 1.5, 2} {
		if _, err := Project(g, ProjectOptions{NumericThreshold: bad}); !errors.Is(err, oberr.ErrBadConfig) {
			t.Fatalf("Project(threshold=%v) err = %v, want ErrBadConfig", bad, err)
		}
		if _, err := StreamProject(bytes.NewReader(nt.Bytes()), "nt", ProjectOptions{NumericThreshold: bad}); !errors.Is(err, oberr.ErrBadConfig) {
			t.Fatalf("StreamProject(threshold=%v) err = %v, want ErrBadConfig", bad, err)
		}
		if _, err := NewProjector(ProjectOptions{NumericThreshold: bad}); !errors.Is(err, oberr.ErrBadConfig) {
			t.Fatalf("NewProjector(threshold=%v) err = %v, want ErrBadConfig", bad, err)
		}
	}
	defaulted, err := Project(g, ProjectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Project(g, ProjectOptions{NumericThreshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvBytes(t, defaulted), csvBytes(t, explicit)) {
		t.Fatal("zero-value NumericThreshold does not behave like the documented 0.9 default")
	}
}
