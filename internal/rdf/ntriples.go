package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// ReadNTriples parses an N-Triples document into a new graph. Comment
// lines (#...) and blank lines are skipped. The parser is line-oriented
// and reports the offending line number on error (matching
// oberr.ErrBadSyntax, like the streaming decoder it is built on).
func ReadNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	err := StreamNTriples(r, func(tr Triple) error {
		g.Add(tr)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// WriteNTriples serializes the graph as N-Triples in insertion order.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, tr := range g.Triples() {
		if _, err := bw.WriteString(tr.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func parseNTriplesLine(line string) (Triple, error) {
	p := &termParser{s: line}
	s, err := p.parseTerm()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	if s.IsLiteral() {
		return Triple{}, fmt.Errorf("subject must not be a literal")
	}
	p.skipWS()
	pr, err := p.parseTerm()
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	if !pr.IsIRI() {
		return Triple{}, fmt.Errorf("predicate must be an IRI")
	}
	p.skipWS()
	o, err := p.parseTerm()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	p.skipWS()
	if !p.consume('.') {
		return Triple{}, fmt.Errorf("missing terminating '.'")
	}
	p.skipWS()
	if !p.eof() {
		return Triple{}, fmt.Errorf("trailing content %q", p.rest())
	}
	return Triple{S: s, P: pr, O: o}, nil
}

// termParser is a shared cursor-based scanner used by both the N-Triples
// and Turtle readers for the term grammar they have in common.
type termParser struct {
	s   string
	pos int
}

func (p *termParser) eof() bool     { return p.pos >= len(p.s) }
func (p *termParser) rest() string  { return p.s[p.pos:] }
func (p *termParser) peek() byte    { return p.s[p.pos] }
func (p *termParser) advance() byte { b := p.s[p.pos]; p.pos++; return b }

func (p *termParser) skipWS() {
	for !p.eof() && (p.peek() == ' ' || p.peek() == '\t') {
		p.pos++
	}
}

func (p *termParser) consume(b byte) bool {
	if !p.eof() && p.peek() == b {
		p.pos++
		return true
	}
	return false
}

// parseTerm parses one IRI, blank node or literal at the cursor.
func (p *termParser) parseTerm() (Term, error) {
	if p.eof() {
		return Term{}, fmt.Errorf("unexpected end of input")
	}
	switch p.peek() {
	case '<':
		return p.parseIRI()
	case '_':
		return p.parseBlank()
	case '"':
		return p.parseLiteral()
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.peek())
	}
}

func (p *termParser) parseIRI() (Term, error) {
	if !p.consume('<') {
		return Term{}, fmt.Errorf("expected '<'")
	}
	start := p.pos
	for !p.eof() && p.peek() != '>' {
		p.pos++
	}
	if p.eof() {
		return Term{}, fmt.Errorf("unterminated IRI")
	}
	iri := p.s[start:p.pos]
	p.pos++ // '>'
	return NewIRI(unescapeUnicode(iri)), nil
}

func (p *termParser) parseBlank() (Term, error) {
	if !strings.HasPrefix(p.rest(), "_:") {
		return Term{}, fmt.Errorf("expected blank node '_:'")
	}
	p.pos += 2
	start := p.pos
	for !p.eof() && isBlankLabelByte(p.peek()) {
		p.pos++
	}
	if p.pos == start {
		return Term{}, fmt.Errorf("empty blank node label")
	}
	return NewBlank(p.s[start:p.pos]), nil
}

func (p *termParser) parseLiteral() (Term, error) {
	if !p.consume('"') {
		return Term{}, fmt.Errorf("expected '\"'")
	}
	var b strings.Builder
	for {
		if p.eof() {
			return Term{}, fmt.Errorf("unterminated literal")
		}
		c := p.advance()
		if c == '"' {
			break
		}
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		if p.eof() {
			return Term{}, fmt.Errorf("dangling escape")
		}
		e := p.advance()
		switch e {
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'u', 'U':
			n := 4
			if e == 'U' {
				n = 8
			}
			if p.pos+n > len(p.s) {
				return Term{}, fmt.Errorf("truncated \\%c escape", e)
			}
			var cp rune
			for i := 0; i < n; i++ {
				d := hexVal(p.advance())
				if d < 0 {
					return Term{}, fmt.Errorf("invalid hex in \\%c escape", e)
				}
				cp = cp<<4 | rune(d)
			}
			b.WriteRune(cp)
		default:
			return Term{}, fmt.Errorf("unknown escape \\%c", e)
		}
	}
	t := Term{Kind: Literal, Value: b.String()}
	if p.consume('@') {
		start := p.pos
		for !p.eof() && (isAlnumByte(p.peek()) || p.peek() == '-') {
			p.pos++
		}
		if p.pos == start {
			return Term{}, fmt.Errorf("empty language tag")
		}
		t.Lang = p.s[start:p.pos]
		return t, nil
	}
	if strings.HasPrefix(p.rest(), "^^") {
		p.pos += 2
		dt, err := p.parseIRI()
		if err != nil {
			return Term{}, fmt.Errorf("datatype: %w", err)
		}
		t.Datatype = dt.Value
	}
	return t, nil
}

func isBlankLabelByte(b byte) bool {
	return isAlnumByte(b) || b == '_' || b == '-' || b == '.'
}

func isAlnumByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

func hexVal(b byte) int {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0')
	case b >= 'a' && b <= 'f':
		return int(b-'a') + 10
	case b >= 'A' && b <= 'F':
		return int(b-'A') + 10
	}
	return -1
}

// unescapeUnicode resolves \uXXXX / \UXXXXXXXX escapes inside IRIs.
func unescapeUnicode(s string) string {
	if !strings.Contains(s, `\u`) && !strings.Contains(s, `\U`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '\\' && i+1 < len(s) && (s[i+1] == 'u' || s[i+1] == 'U') {
			n := 4
			if s[i+1] == 'U' {
				n = 8
			}
			if i+2+n <= len(s) {
				var cp rune
				ok := true
				for k := 0; k < n; k++ {
					d := hexVal(s[i+2+k])
					if d < 0 {
						ok = false
						break
					}
					cp = cp<<4 | rune(d)
				}
				if ok && utf8.ValidRune(cp) {
					b.WriteRune(cp)
					i += 2 + n
					continue
				}
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}
