package rdf

import (
	"strings"
	"testing"
)

// streamEquivalence is the shared fuzz property: the streaming decoder
// must accept exactly the documents the batch parser accepts, and on
// acceptance deliver the same triple set. (On rejection the streaming
// path may have delivered a prefix of the triples before the offending
// statement — that is its documented contract — so only the verdict is
// compared.)
func streamEquivalence(t *testing.T, input string,
	batch func(string) (*Graph, error), stream func(string, TripleFunc) error) {
	t.Helper()
	bg, berr := batch(input)
	sg := NewGraph()
	serr := stream(input, func(tr Triple) error {
		sg.Add(tr)
		return nil
	})
	if (berr == nil) != (serr == nil) {
		t.Fatalf("accept mismatch:\nbatch err:  %v\nstream err: %v\ninput: %q", berr, serr, input)
	}
	if berr != nil {
		return
	}
	if !sameGraph(bg, sg) {
		t.Fatalf("triple sets differ: stream %d vs batch %d\ninput: %q", sg.Len(), bg.Len(), input)
	}
}

// FuzzStreamNTriples hunts for divergence between StreamNTriples and
// ReadNTriples. ReadNTriples is built on the streaming decoder, so this
// mostly guards the delegation (graph dedup vs raw callback delivery)
// and keeps a seed corpus flowing into the shared line grammar.
func FuzzStreamNTriples(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"<http://a> <http://b> <http://c> .",
		"<http://a> <http://b> \"lit\" .\n<http://a> <http://b> \"lit\" .\n", // duplicate
		"<http://a> <http://b> \"v\"@en-GB .",
		"<http://a> <http://b> \"3.4\"^^<http://www.w3.org/2001/XMLSchema#double> .",
		"_:b1 <http://b> _:b2 .",
		"<http://a> <http://b> \"\\u00e9\\U0001F600\" .",
		"<http://a> <http://b> \"unterminated",
		"<http://a> <http://b> <http://c> . trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		streamEquivalence(t, input,
			func(s string) (*Graph, error) { return ReadNTriples(strings.NewReader(s)) },
			func(s string, fn TripleFunc) error { return StreamNTriples(strings.NewReader(s), fn) })
	})
}

// FuzzStreamTurtle stresses the statement chunker: its state machine must
// agree with the batch tokenizer about every '.' in the document —
// comments, IRIs, short/long strings, escapes, blank labels and decimals.
// A disagreement shows up as an accept/reject or triple-set mismatch
// against ReadTurtle.
func FuzzStreamTurtle(f *testing.F) {
	seeds := []string{
		"",
		"@prefix ex: <http://ex.org/> .\nex:a ex:b ex:c .",
		"PREFIX ex: <http://ex.org/>\nex:a a ex:C .",
		"@base <http://ex.org/> .\n</a> <b> <#c> .",
		"<http://a> <http://b> \"v\"@en ; <http://c> 42, 3.14, 1e-3, true .",
		"_:x <http://p> \"\"\"long\nstring with . dots\"\"\" .",
		"<http://a> <http://p> \"typed\"^^<http://dt> .",
		"<http://a> <http://b> .5 .",
		"<http://a> <http://b> 3. <http://a> <http://c> 4 .",
		"<http://a> <http://b> _:x.y .",
		"<http://a> <http://b> _:x. <http://a> <http://c> _:z .",
		"<http://a> <http://b> \"dot . in \\\" string\" .",
		"<http://a.b/c> <http://p> <http://x> . # comment . with dot",
		"@prefix : <http://ex.org/> .\n:a :b :c .",
		"<http://a> <http://b> 'bad quote' .",
		"<http://a> <http://b> \"\"\"unterminated long .",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		streamEquivalence(t, input,
			func(s string) (*Graph, error) { return ReadTurtle(strings.NewReader(s)) },
			func(s string, fn TripleFunc) error { return StreamTurtle(strings.NewReader(s), fn) })
	})
}
