package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/a"), "<http://x/a>"},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("hola", "es"), `"hola"@es`},
		{NewTypedLiteral("5", XSDInteger), `"5"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewLiteral("a\"b\nc"), `"a\"b\nc"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %s, want %s", got, c.want)
		}
	}
}

func TestLocalName(t *testing.T) {
	cases := []struct{ iri, want string }{
		{"http://x/def#population", "population"},
		{"http://x/def/population", "population"},
		{"http://x/def/population/", "population"},
		{"urn:thing", "urn:thing"},
	}
	for _, c := range cases {
		if got := NewIRI(c.iri).LocalName(); got != c.want {
			t.Errorf("LocalName(%s) = %s, want %s", c.iri, got, c.want)
		}
	}
}

func TestNumericLiteral(t *testing.T) {
	if !NewInteger(5).IsNumericLiteral() || !NewDouble(1.5).IsNumericLiteral() {
		t.Fatal("typed numbers should be numeric literals")
	}
	if NewLiteral("5").IsNumericLiteral() {
		t.Fatal("plain literal is not a *typed* numeric literal")
	}
}

func tri(s, p, o string) Triple {
	return Triple{S: NewIRI(s), P: NewIRI(p), O: NewIRI(o)}
}

func TestGraphAddDeduplicates(t *testing.T) {
	g := NewGraph()
	if !g.Add(tri("http://a", "http://p", "http://b")) {
		t.Fatal("first add should be new")
	}
	if g.Add(tri("http://a", "http://p", "http://b")) {
		t.Fatal("second add should dedupe")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func buildTestGraph() *Graph {
	g := NewGraph()
	g.Add(tri("http://m/1", RDFType, "http://d/Mun"))
	g.Add(tri("http://m/2", RDFType, "http://d/Mun"))
	g.Add(tri("http://r/1", RDFType, "http://d/Region"))
	g.Add(Triple{S: NewIRI("http://m/1"), P: NewIRI("http://d/pop"), O: NewInteger(1000)})
	g.Add(Triple{S: NewIRI("http://m/2"), P: NewIRI("http://d/pop"), O: NewInteger(2000)})
	g.Add(tri("http://m/1", "http://d/inRegion", "http://r/1"))
	g.Add(tri("http://m/2", "http://d/inRegion", "http://r/1"))
	return g
}

func TestGraphMatchPatterns(t *testing.T) {
	g := buildTestGraph()
	s := NewIRI("http://m/1")
	if got := len(g.Match(&s, nil, nil)); got != 3 {
		t.Fatalf("subject match = %d, want 3", got)
	}
	p := NewIRI("http://d/pop")
	if got := len(g.Match(nil, &p, nil)); got != 2 {
		t.Fatalf("predicate match = %d, want 2", got)
	}
	o := NewIRI("http://r/1")
	if got := len(g.Match(nil, nil, &o)); got != 2 {
		t.Fatalf("object match = %d, want 2 (inRegion links)", got)
	}
	if got := len(g.Match(&s, &p, nil)); got != 1 {
		t.Fatalf("s+p match = %d, want 1", got)
	}
	if got := len(g.Match(nil, nil, nil)); got != g.Len() {
		t.Fatalf("full scan = %d, want %d", got, g.Len())
	}
}

func TestSubjectsOfType(t *testing.T) {
	g := buildTestGraph()
	muns := g.SubjectsOfType(NewIRI("http://d/Mun"))
	if len(muns) != 2 {
		t.Fatalf("municipalities = %d", len(muns))
	}
	// Deterministic sorted order.
	if muns[0].Value != "http://m/1" || muns[1].Value != "http://m/2" {
		t.Fatalf("order = %v", muns)
	}
}

func TestClasses(t *testing.T) {
	g := buildTestGraph()
	cls := g.Classes()
	if len(cls) != 2 {
		t.Fatalf("classes = %v", cls)
	}
}

func TestPropertyValuesAndFirst(t *testing.T) {
	g := buildTestGraph()
	vals := g.PropertyValues(NewIRI("http://m/1"), NewIRI("http://d/pop"))
	if len(vals) != 1 || vals[0].Value != "1000" {
		t.Fatalf("PropertyValues = %v", vals)
	}
	if _, ok := g.FirstValue(NewIRI("http://m/1"), NewIRI("http://d/none")); ok {
		t.Fatal("FirstValue on absent predicate should report false")
	}
}

func TestDegreesAndStats(t *testing.T) {
	g := buildTestGraph()
	if g.OutDegree(NewIRI("http://m/1")) != 3 {
		t.Fatalf("out degree = %d", g.OutDegree(NewIRI("http://m/1")))
	}
	if g.InDegree(NewIRI("http://r/1")) != 2 {
		t.Fatalf("in degree = %d", g.InDegree(NewIRI("http://r/1")))
	}
	st := g.Stats()
	if st.Triples != 7 || st.Subjects != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LiteralTriples != 2 {
		t.Fatalf("literal triples = %d", st.LiteralTriples)
	}
	if st.IRIObjectLinks != 5 {
		t.Fatalf("IRI object links = %d", st.IRIObjectLinks)
	}
}

func TestNTriplesRoundtrip(t *testing.T) {
	g := buildTestGraph()
	g.Add(Triple{S: NewBlank("x"), P: NewIRI("http://d/label"),
		O: NewLangLiteral("café \"especial\"\nnew", "es")})
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Len() {
		t.Fatalf("roundtrip Len = %d, want %d", back.Len(), g.Len())
	}
	for _, tr := range g.Triples() {
		if !back.Has(tr) {
			t.Fatalf("roundtrip lost %v", tr)
		}
	}
}

func TestReadNTriplesComments(t *testing.T) {
	in := "# comment\n\n<http://a> <http://p> \"v\" .\n"
	g, err := ReadNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestReadNTriplesUnicodeEscape(t *testing.T) {
	in := `<http://a> <http://p> "café" .` + "\n"
	g, err := ReadNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Triples()[0]
	if tr.O.Value != "café" {
		t.Fatalf("unicode escape = %q", tr.O.Value)
	}
}

func TestReadNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://a> <http://p> "v"`,            // missing dot
		`"lit" <http://p> <http://o> .`,        // literal subject
		`<http://a> _:b <http://o> .`,          // blank predicate
		`<http://a> <http://p> <http://o> . x`, // trailing garbage
		`<http://a <http://p> <http://o> .`,    // unterminated IRI
	}
	for _, in := range bad {
		if _, err := ReadNTriples(strings.NewReader(in + "\n")); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestReadTurtleBasics(t *testing.T) {
	in := `@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:m1 a ex:Municipality ;
    ex:pop 1000 ;
    ex:rate 3.5 ;
    ex:active true ;
    ex:label "Alicante"@es ;
    ex:area "12.5"^^xsd:decimal ;
    ex:linked ex:m2, ex:m3 .
`
	g, err := ReadTurtle(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 8 {
		t.Fatalf("Len = %d, want 8", g.Len())
	}
	subj := NewIRI("http://example.org/m1")
	typ := NewIRI(RDFType)
	if v, ok := g.FirstValue(subj, typ); !ok || v.Value != "http://example.org/Municipality" {
		t.Fatal("'a' keyword not expanded")
	}
	if v, ok := g.FirstValue(subj, NewIRI("http://example.org/pop")); !ok || v.Datatype != XSDInteger || v.Value != "1000" {
		t.Fatalf("integer literal = %+v", v)
	}
	if v, ok := g.FirstValue(subj, NewIRI("http://example.org/rate")); !ok || v.Datatype != XSDDecimal {
		t.Fatalf("decimal literal = %+v", v)
	}
	if v, ok := g.FirstValue(subj, NewIRI("http://example.org/active")); !ok || v.Datatype != XSDBoolean {
		t.Fatalf("boolean literal = %+v", v)
	}
	if v, ok := g.FirstValue(subj, NewIRI("http://example.org/label")); !ok || v.Lang != "es" {
		t.Fatalf("lang literal = %+v", v)
	}
	linked := g.PropertyValues(subj, NewIRI("http://example.org/linked"))
	if len(linked) != 2 {
		t.Fatalf("object list = %v", linked)
	}
}

func TestReadTurtleBase(t *testing.T) {
	in := `@base <http://b.org/> .
<m1> <p> <m2> .
`
	g, err := ReadTurtle(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Triples()[0]
	if tr.S.Value != "http://b.org/m1" || tr.O.Value != "http://b.org/m2" {
		t.Fatalf("base resolution = %v", tr)
	}
}

func TestReadTurtleUndeclaredPrefix(t *testing.T) {
	if _, err := ReadTurtle(strings.NewReader("ex:a ex:b ex:c .")); err == nil {
		t.Fatal("undeclared prefix should error")
	}
}

func TestReadTurtleMissingDot(t *testing.T) {
	in := "@prefix ex: <http://e/> .\nex:a ex:b ex:c"
	if _, err := ReadTurtle(strings.NewReader(in)); err == nil {
		t.Fatal("missing final dot should error")
	}
}

func TestReadTurtleComments(t *testing.T) {
	in := "@prefix ex: <http://e/> . # ns\nex:a ex:b ex:c . # stmt\n"
	g, err := ReadTurtle(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestWriteTurtleRoundtrip(t *testing.T) {
	g := buildTestGraph()
	var buf bytes.Buffer
	prefixes := map[string]string{"d": "http://d/", "m": "http://m/", "r": "http://r/"}
	if err := WriteTurtle(&buf, g, prefixes); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "@prefix d: <http://d/>") {
		t.Fatalf("prefix header missing:\n%s", out)
	}
	if !strings.Contains(out, " a ") {
		t.Fatalf("rdf:type not abbreviated:\n%s", out)
	}
	back, err := ReadTurtle(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if back.Len() != g.Len() {
		t.Fatalf("roundtrip Len = %d, want %d", back.Len(), g.Len())
	}
	for _, tr := range g.Triples() {
		if !back.Has(tr) {
			t.Fatalf("roundtrip lost %v", tr)
		}
	}
}

// Property: any literal value survives an N-Triples write/read cycle.
func TestNTriplesLiteralRoundtripProperty(t *testing.T) {
	f := func(val string) bool {
		g := NewGraph()
		g.Add(Triple{S: NewIRI("http://s"), P: NewIRI("http://p"), O: NewLiteral(val)})
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			return false
		}
		back, err := ReadNTriples(&buf)
		if err != nil || back.Len() != 1 {
			return false
		}
		return back.Triples()[0].O.Value == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
