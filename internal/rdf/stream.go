package rdf

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"openbi/internal/oberr"
)

// TripleFunc receives one parsed triple from a streaming decoder. A
// non-nil return stops the stream immediately and is propagated to the
// caller. Unlike the batch readers, which load into a deduplicating
// Graph, a TripleFunc sees every syntactic triple, duplicates included —
// consumers that need set semantics (LODSketch, the stream projector)
// deduplicate themselves.
type TripleFunc func(Triple) error

// Stream decodes RDF from r in one pass, dispatching on format ("nt" /
// "n-triples" or "ttl" / "turtle"), and invokes fn for every triple. The
// decoder's memory is bounded by the longest single statement, not the
// graph: arbitrarily large documents stream at constant peak RSS. Parse
// failures match oberr.ErrBadSyntax; unknown formats match
// oberr.ErrUnsupportedFormat.
func Stream(r io.Reader, format string, fn TripleFunc) error {
	switch strings.ToLower(format) {
	case "nt", "ntriples", "n-triples":
		return StreamNTriples(r, fn)
	case "ttl", "turtle":
		return StreamTurtle(r, fn)
	default:
		return fmt.Errorf("rdf: %w",
			&oberr.UnsupportedFormatError{Input: "rdf stream", Format: format})
	}
}

// StreamNTriples parses an N-Triples document line by line, holding only
// the current line in memory, and calls fn per triple. It accepts and
// rejects exactly the documents ReadNTriples does (same line grammar) and
// yields the same triples in the same order, duplicates included.
func StreamNTriples(r io.Reader, fn TripleFunc) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tr, err := parseNTriplesLine(line)
		if err != nil {
			return fmt.Errorf("rdf: %w",
				&oberr.SyntaxError{Format: "n-triples", Line: lineNo, Reason: err.Error()})
		}
		if err := fn(tr); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("rdf: reading n-triples: %w", err)
	}
	return nil
}

// StreamTurtle parses the same Turtle subset as ReadTurtle in one pass,
// holding only the current statement in memory. The byte stream is sliced
// into chunks ending exactly at top-level statement terminators by a
// small state machine (stmtChunker) that mirrors the tokenizer's string /
// IRI / comment / blank-label lexing; each chunk is then tokenized and
// parsed by the very same tokenizer and statement parser the batch reader
// uses, with prefix and base declarations persisting across chunks. It
// therefore accepts exactly the documents ReadTurtle accepts and yields
// the same triples; on a rejected document, triples from statements
// before the offending one may already have been delivered to fn.
func StreamTurtle(r io.Reader, fn TripleFunc) error {
	p := &turtleParser{prefixes: map[string]string{}, emit: func(tr Triple) error {
		if err := fn(tr); err != nil {
			return &consumerError{err} // keep it apart from parse errors
		}
		return nil
	}}
	ch := &stmtChunker{r: r}
	var toks []ttToken
	line := 1
	for {
		chunk, err := ch.next()
		if len(chunk) > 0 {
			var terr error
			toks, terr = tokenizeTurtleInto(toks[:0], string(chunk), line)
			if terr != nil {
				return turtleSyntaxErr(terr)
			}
			line += bytes.Count(chunk, []byte{'\n'})
			p.toks, p.pos = toks, 0
			if perr := p.run(); perr != nil {
				var ce *consumerError
				if errors.As(perr, &ce) {
					return ce.err
				}
				return turtleSyntaxErr(perr)
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("rdf: reading turtle: %w", err)
		}
	}
}

// consumerError marks an error returned by the caller's TripleFunc so it
// propagates unchanged instead of being retagged as a syntax error.
type consumerError struct{ err error }

func (e *consumerError) Error() string { return e.err.Error() }
func (e *consumerError) Unwrap() error { return e.err }

// turtleSyntaxErr retags a tokenizer/parser error ("rdf: turtle line N:
// ...") with the oberr taxonomy so errors.Is(err, oberr.ErrBadSyntax)
// holds for streaming callers (the serving layer maps it to 422), lifting
// the line number out of the message into SyntaxError.Line so both
// streaming formats report it structurally.
func turtleSyntaxErr(err error) error {
	msg := err.Error()
	msg = strings.TrimPrefix(msg, "rdf: turtle: ")
	msg = strings.TrimPrefix(msg, "rdf: turtle ")
	line := 0
	if rest, ok := strings.CutPrefix(msg, "line "); ok {
		if num, tail, ok := strings.Cut(rest, ": "); ok {
			if n, err := strconv.Atoi(num); err == nil {
				line, msg = n, tail
			}
		}
	}
	return fmt.Errorf("rdf: %w", &oberr.SyntaxError{Format: "turtle", Line: line, Reason: msg})
}

// stmtChunker slices a Turtle byte stream into chunks that end exactly at
// a top-level statement terminator '.', reading fixed-size blocks and
// keeping only the bytes of the statement in flight. Its state machine
// tracks the lexical contexts in which a '.' is NOT a terminator —
// comments, <IRI>s, short and long string literals (with escapes), blank
// node labels, and decimals ('.' followed by a digit) — replicating
// exactly where tokenizeTurtle would emit a ttDot token. Chunk boundaries
// therefore always coincide with batch token boundaries, which is what
// makes StreamTurtle accept-equivalent to ReadTurtle.
type stmtChunker struct {
	r    io.Reader
	buf  []byte // unconsumed bytes of the stream
	n    int    // scan position: buf[:n] has been classified
	drop int    // bytes of buf already returned to the caller
	st   chunkState
	eof  bool
}

type chunkState int

const (
	csDefault chunkState = iota
	csComment
	csIRI
	csShort
	csShortEsc
	csLong
	csLongEsc
	csBlank
)

// next returns the next chunk of input ending right after a top-level
// '.', or the final remainder together with io.EOF. The returned slice is
// only valid until the following next call.
func (c *stmtChunker) next() ([]byte, error) {
	if c.drop > 0 {
		c.buf = append(c.buf[:0], c.buf[c.drop:]...)
		c.n -= c.drop
		c.drop = 0
	}
	for {
		if end, ok := c.scan(); ok {
			c.drop = end
			return c.buf[:end], nil
		}
		if c.eof {
			c.drop = len(c.buf)
			c.n = len(c.buf)
			return c.buf, io.EOF
		}
		if err := c.fill(); err != nil {
			return nil, err
		}
	}
}

// fill reads one more block from the underlying reader into buf, growing
// capacity geometrically so buffering one huge statement (a multi-MB long
// string) stays linear in its size rather than quadratic.
func (c *stmtChunker) fill() error {
	const block = 32 * 1024
	if cap(c.buf)-len(c.buf) < block {
		newCap := 2 * cap(c.buf)
		if newCap < len(c.buf)+block {
			newCap = len(c.buf) + block
		}
		grown := make([]byte, len(c.buf), newCap)
		copy(grown, c.buf)
		c.buf = grown
	}
	n, err := c.r.Read(c.buf[len(c.buf):cap(c.buf)])
	c.buf = c.buf[:len(c.buf)+n]
	if err == io.EOF {
		c.eof = true
		return nil
	}
	return err
}

// scan advances the state machine over the unclassified tail of buf. It
// returns (end, true) when a terminator '.' was found at buf[end-1], or
// (0, false) when more input is needed — either because the buffer ran
// out or because a classification (long-string open/close, decimal
// lookahead) needs bytes not yet read. At EOF missing lookahead bytes are
// treated as absent, matching how the batch tokenizer sees the document
// end.
func (c *stmtChunker) scan() (int, bool) {
	for c.n < len(c.buf) {
		b := c.buf[c.n]
		switch c.st {
		case csDefault:
			switch b {
			case '#':
				c.st = csComment
				c.n++
			case '<':
				c.st = csIRI
				c.n++
			case '"':
				if c.n+2 >= len(c.buf) && !c.eof {
					return 0, false // need lookahead to classify """ vs "
				}
				switch {
				case c.n+2 < len(c.buf) && c.buf[c.n+1] == '"' && c.buf[c.n+2] == '"':
					c.st = csLong
					c.n += 3
				case c.n+1 < len(c.buf) && c.buf[c.n+1] == '"':
					c.n += 2 // empty short string ""
				default:
					c.st = csShort
					c.n++
				}
			case '.':
				if c.n+1 >= len(c.buf) && !c.eof {
					return 0, false
				}
				if c.n+1 < len(c.buf) && c.buf[c.n+1] >= '0' && c.buf[c.n+1] <= '9' {
					c.n++ // decimal like .5 or 3.14: the '.' is part of a number
					continue
				}
				c.n++
				return c.n, true
			case '_':
				if c.n+1 >= len(c.buf) && !c.eof {
					return 0, false
				}
				if c.n+1 < len(c.buf) && c.buf[c.n+1] == ':' {
					c.st = csBlank
					c.n += 2
				} else {
					c.n++
				}
			default:
				c.n++
			}
		case csComment:
			if b == '\n' {
				c.st = csDefault
			}
			c.n++
		case csIRI:
			if b == '>' {
				c.st = csDefault
			}
			c.n++
		case csShort:
			switch b {
			case '\\':
				if c.n+1 >= len(c.buf) && !c.eof {
					return 0, false
				}
				if c.n+1 < len(c.buf) {
					c.st = csShortEsc
				}
				c.n++
			case '"':
				c.st = csDefault
				c.n++
			default:
				c.n++
			}
		case csShortEsc:
			c.st = csShort
			c.n++
		case csLong:
			switch b {
			case '"':
				if c.n+2 >= len(c.buf) && !c.eof {
					return 0, false
				}
				if c.n+2 < len(c.buf) && c.buf[c.n+1] == '"' && c.buf[c.n+2] == '"' {
					c.st = csDefault
					c.n += 3
				} else {
					c.n++
				}
			case '\\':
				if c.n+1 >= len(c.buf) && !c.eof {
					return 0, false
				}
				if c.n+1 < len(c.buf) {
					c.st = csLongEsc
				}
				c.n++
			default:
				c.n++
			}
		case csLongEsc:
			c.st = csLong
			c.n++
		case csBlank:
			switch {
			case b == '.':
				if c.n+1 >= len(c.buf) && !c.eof {
					return 0, false
				}
				if c.n+1 < len(c.buf) && isBlankLabelByte(c.buf[c.n+1]) {
					c.n++ // internal dot stays in the label (_:a.b)
					continue
				}
				// Trailing dot: the tokenizer strips it from the label and
				// re-reads it as the statement terminator.
				c.st = csDefault
				c.n++
				return c.n, true
			case isBlankLabelByte(b):
				c.n++
			default:
				c.st = csDefault // re-examine this byte in the default state
			}
		}
	}
	return 0, false
}
