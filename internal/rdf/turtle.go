package rdf

import (
	"fmt"
	"io"
	"strings"
)

// ReadTurtle parses a practical subset of Turtle into a graph:
//
//   - @prefix / PREFIX declarations and prefixed names (ex:thing)
//   - @base / BASE declarations and relative IRI resolution against it
//   - the 'a' keyword for rdf:type
//   - predicate lists (';') and object lists (',')
//   - string literals with language tags and datatypes (IRI or prefixed)
//   - numeric (integer/decimal/double) and boolean literal abbreviations
//   - blank nodes (_:label) and comments
//
// Collections and anonymous blank-node property lists are not supported —
// open-data Turtle exports in the wild virtually never use them, and the
// synthetic LOD generators in this repository do not emit them.
func ReadTurtle(r io.Reader) (*Graph, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("rdf: reading turtle: %w", err)
	}
	toks, err := tokenizeTurtle(string(raw))
	if err != nil {
		return nil, err
	}
	g := NewGraph()
	p := &turtleParser{toks: toks, prefixes: map[string]string{},
		emit: func(tr Triple) error { g.Add(tr); return nil }}
	if err := p.run(); err != nil {
		return nil, err
	}
	return g, nil
}

// ttKind classifies Turtle tokens.
type ttKind int

const (
	ttIRI      ttKind = iota // <...>
	ttPName                  // prefix:local or prefix: (namespace itself)
	ttBlank                  // _:label
	ttString                 // "..." (value unescaped)
	ttLangTag                // @en
	ttCaret                  // ^^
	ttNumber                 // 42, 3.14, 1e-3
	ttBoolean                // true / false
	ttA                      // a
	ttDot                    // .
	ttSemi                   // ;
	ttComma                  // ,
	ttAtPrefix               // @prefix or PREFIX
	ttAtBase                 // @base or BASE
)

type ttToken struct {
	kind ttKind
	val  string
	line int
}

func tokenizeTurtle(s string) ([]ttToken, error) {
	return tokenizeTurtleInto(nil, s, 1)
}

// tokenizeTurtleInto appends the tokens of s to dst (reusing its capacity)
// with line numbers counted from startLine — the form the streaming decoder
// uses to tokenize one statement chunk at a time while keeping document
// line numbers in errors.
func tokenizeTurtleInto(dst []ttToken, s string, startLine int) ([]ttToken, error) {
	toks := dst
	line := startLine
	i := 0
	emit := func(k ttKind, v string) { toks = append(toks, ttToken{k, v, line}) }
	for i < len(s) {
		c := s[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case c == '<':
			j := strings.IndexByte(s[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("rdf: turtle line %d: unterminated IRI", line)
			}
			emit(ttIRI, unescapeUnicode(s[i+1:i+j]))
			i += j + 1
		case c == '"':
			val, consumed, err := scanTurtleString(s[i:])
			if err != nil {
				return nil, fmt.Errorf("rdf: turtle line %d: %w", line, err)
			}
			line += strings.Count(s[i:i+consumed], "\n")
			emit(ttString, val)
			i += consumed
		case c == '@':
			j := i + 1
			for j < len(s) && (isAlnumByte(s[j]) || s[j] == '-') {
				j++
			}
			word := s[i+1 : j]
			switch strings.ToLower(word) {
			case "prefix":
				emit(ttAtPrefix, "")
			case "base":
				emit(ttAtBase, "")
			default:
				emit(ttLangTag, word)
			}
			i = j
		case c == '^':
			if i+1 < len(s) && s[i+1] == '^' {
				emit(ttCaret, "")
				i += 2
			} else {
				return nil, fmt.Errorf("rdf: turtle line %d: stray '^'", line)
			}
		case c == '.':
			// '.' may start a decimal like .5 — only when followed by a digit.
			if i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' {
				j, v := scanTurtleNumber(s, i)
				emit(ttNumber, v)
				i = j
			} else {
				emit(ttDot, "")
				i++
			}
		case c == ';':
			emit(ttSemi, "")
			i++
		case c == ',':
			emit(ttComma, "")
			i++
		case c == '_' && i+1 < len(s) && s[i+1] == ':':
			j := i + 2
			for j < len(s) && isBlankLabelByte(s[j]) {
				j++
			}
			// A trailing '.' belongs to the statement terminator, not the label.
			for j > i+2 && s[j-1] == '.' {
				j--
			}
			if j == i+2 {
				return nil, fmt.Errorf("rdf: turtle line %d: empty blank node label", line)
			}
			emit(ttBlank, s[i+2:j])
			i = j
		case c == '+' || c == '-' || (c >= '0' && c <= '9'):
			j, v := scanTurtleNumber(s, i)
			emit(ttNumber, v)
			i = j
		default:
			// Bare word: 'a', true/false, or a prefixed name.
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\r\n;,.#<>\"^@", rune(s[j])) {
				j++
			}
			// Statement-final '.' glued to a pname was excluded above; but a
			// pname may legally contain dots internally (rare) — we stop at
			// any '.', which the subset accepts.
			word := s[i:j]
			if word == "" {
				return nil, fmt.Errorf("rdf: turtle line %d: unexpected character %q", line, c)
			}
			switch word {
			case "a":
				emit(ttA, "")
			case "true", "false":
				emit(ttBoolean, word)
			case "PREFIX", "prefix":
				emit(ttAtPrefix, "")
			case "BASE", "base":
				emit(ttAtBase, "")
			default:
				if !strings.Contains(word, ":") {
					return nil, fmt.Errorf("rdf: turtle line %d: unexpected token %q", line, word)
				}
				emit(ttPName, word)
			}
			i = j
		}
	}
	return toks, nil
}

// scanTurtleString scans a quoted literal starting at s[0]=='"', returning
// the unescaped value and the number of bytes consumed. Both short ("...")
// and long ("""...""") forms are handled.
func scanTurtleString(s string) (string, int, error) {
	long := strings.HasPrefix(s, `"""`)
	var body strings.Builder
	i := 1
	if long {
		i = 3
	}
	for i < len(s) {
		if long && strings.HasPrefix(s[i:], `"""`) {
			return body.String(), i + 3, nil
		}
		if !long && s[i] == '"' {
			return body.String(), i + 1, nil
		}
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 't':
				body.WriteByte('\t')
			case 'n':
				body.WriteByte('\n')
			case 'r':
				body.WriteByte('\r')
			case '"':
				body.WriteByte('"')
			case '\\':
				body.WriteByte('\\')
			default:
				body.WriteByte(s[i+1])
			}
			i += 2
			continue
		}
		if !long && s[i] == '\n' {
			return "", 0, fmt.Errorf("newline in short string literal")
		}
		body.WriteByte(s[i])
		i++
	}
	return "", 0, fmt.Errorf("unterminated string literal")
}

// scanTurtleNumber scans a numeric literal at position i and returns the
// end position and the lexical form.
func scanTurtleNumber(s string, i int) (int, string) {
	j := i
	if j < len(s) && (s[j] == '+' || s[j] == '-') {
		j++
	}
	digits := func() {
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
	}
	digits()
	if j < len(s) && s[j] == '.' && j+1 < len(s) && s[j+1] >= '0' && s[j+1] <= '9' {
		j++
		digits()
	}
	if j < len(s) && (s[j] == 'e' || s[j] == 'E') {
		k := j + 1
		if k < len(s) && (s[k] == '+' || s[k] == '-') {
			k++
		}
		if k < len(s) && s[k] >= '0' && s[k] <= '9' {
			j = k
			digits()
		}
	}
	return j, s[i:j]
}

type turtleParser struct {
	toks     []ttToken
	pos      int
	prefixes map[string]string
	base     string
	// emit receives each parsed triple; a non-nil return aborts parsing.
	// Prefixes and base persist across run() calls, so the streaming
	// decoder can feed the parser one statement chunk at a time.
	emit func(Triple) error
}

func (p *turtleParser) eof() bool     { return p.pos >= len(p.toks) }
func (p *turtleParser) peek() ttToken { return p.toks[p.pos] }
func (p *turtleParser) next() ttToken { t := p.toks[p.pos]; p.pos++; return t }
func (p *turtleParser) errf(t ttToken, format string, args ...any) error {
	return fmt.Errorf("rdf: turtle line %d: %s", t.line, fmt.Sprintf(format, args...))
}

// run parses every directive and statement in p.toks, emitting triples
// through p.emit.
func (p *turtleParser) run() error {
	for !p.eof() {
		t := p.peek()
		switch t.kind {
		case ttAtPrefix:
			p.next()
			if err := p.parsePrefixDecl(); err != nil {
				return err
			}
		case ttAtBase:
			p.next()
			if err := p.parseBaseDecl(); err != nil {
				return err
			}
		default:
			if err := p.parseStatement(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *turtleParser) parsePrefixDecl() error {
	if p.eof() || p.peek().kind != ttPName {
		return fmt.Errorf("rdf: turtle: @prefix expects 'name:'")
	}
	name := p.next()
	pfx := strings.TrimSuffix(name.val, ":")
	if p.eof() || p.peek().kind != ttIRI {
		return p.errf(name, "@prefix %s expects an IRI", pfx)
	}
	iri := p.next()
	p.prefixes[pfx] = p.resolve(iri.val)
	// Optional '.' terminator (@prefix has it, SPARQL-style PREFIX doesn't).
	if !p.eof() && p.peek().kind == ttDot {
		p.next()
	}
	return nil
}

func (p *turtleParser) parseBaseDecl() error {
	if p.eof() || p.peek().kind != ttIRI {
		return fmt.Errorf("rdf: turtle: @base expects an IRI")
	}
	p.base = p.next().val
	if !p.eof() && p.peek().kind == ttDot {
		p.next()
	}
	return nil
}

// resolve resolves a possibly relative IRI against the current base.
func (p *turtleParser) resolve(iri string) string {
	if p.base == "" || strings.Contains(iri, "://") || strings.HasPrefix(iri, "urn:") {
		return iri
	}
	if strings.HasPrefix(iri, "#") || !strings.HasPrefix(iri, "/") {
		return p.base + iri
	}
	return p.base + strings.TrimPrefix(iri, "/")
}

func (p *turtleParser) parseStatement() error {
	subj, err := p.parseSubject()
	if err != nil {
		return err
	}
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		for {
			obj, err := p.parseObject()
			if err != nil {
				return err
			}
			if err := p.emit(Triple{S: subj, P: pred, O: obj}); err != nil {
				return err
			}
			if !p.eof() && p.peek().kind == ttComma {
				p.next()
				continue
			}
			break
		}
		if !p.eof() && p.peek().kind == ttSemi {
			p.next()
			// A ';' may be immediately followed by '.', ending the statement.
			if !p.eof() && p.peek().kind == ttDot {
				p.next()
				return nil
			}
			continue
		}
		break
	}
	if p.eof() || p.peek().kind != ttDot {
		if p.eof() {
			return fmt.Errorf("rdf: turtle: missing '.' at end of input")
		}
		return p.errf(p.peek(), "expected '.' after statement")
	}
	p.next()
	return nil
}

func (p *turtleParser) parseSubject() (Term, error) {
	if p.eof() {
		return Term{}, fmt.Errorf("rdf: turtle: unexpected end of input (subject)")
	}
	t := p.next()
	switch t.kind {
	case ttIRI:
		return NewIRI(p.resolve(t.val)), nil
	case ttPName:
		return p.expandPName(t)
	case ttBlank:
		return NewBlank(t.val), nil
	default:
		return Term{}, p.errf(t, "invalid subject token")
	}
}

func (p *turtleParser) parsePredicate() (Term, error) {
	if p.eof() {
		return Term{}, fmt.Errorf("rdf: turtle: unexpected end of input (predicate)")
	}
	t := p.next()
	switch t.kind {
	case ttA:
		return NewIRI(RDFType), nil
	case ttIRI:
		return NewIRI(p.resolve(t.val)), nil
	case ttPName:
		return p.expandPName(t)
	default:
		return Term{}, p.errf(t, "invalid predicate token")
	}
}

func (p *turtleParser) parseObject() (Term, error) {
	if p.eof() {
		return Term{}, fmt.Errorf("rdf: turtle: unexpected end of input (object)")
	}
	t := p.next()
	switch t.kind {
	case ttIRI:
		return NewIRI(p.resolve(t.val)), nil
	case ttPName:
		return p.expandPName(t)
	case ttBlank:
		return NewBlank(t.val), nil
	case ttBoolean:
		return NewTypedLiteral(t.val, XSDBoolean), nil
	case ttNumber:
		dt := XSDInteger
		if strings.ContainsAny(t.val, "eE") {
			dt = XSDDouble
		} else if strings.Contains(t.val, ".") {
			dt = XSDDecimal
		}
		return NewTypedLiteral(t.val, dt), nil
	case ttString:
		lit := Term{Kind: Literal, Value: t.val}
		if !p.eof() && p.peek().kind == ttLangTag {
			lit.Lang = p.next().val
			return lit, nil
		}
		if !p.eof() && p.peek().kind == ttCaret {
			p.next()
			if p.eof() {
				return Term{}, fmt.Errorf("rdf: turtle: missing datatype after '^^'")
			}
			dt := p.next()
			switch dt.kind {
			case ttIRI:
				lit.Datatype = p.resolve(dt.val)
			case ttPName:
				expanded, err := p.expandPName(dt)
				if err != nil {
					return Term{}, err
				}
				lit.Datatype = expanded.Value
			default:
				return Term{}, p.errf(dt, "invalid datatype token")
			}
		}
		return lit, nil
	default:
		return Term{}, p.errf(t, "invalid object token")
	}
}

func (p *turtleParser) expandPName(t ttToken) (Term, error) {
	idx := strings.Index(t.val, ":")
	pfx, local := t.val[:idx], t.val[idx+1:]
	ns, ok := p.prefixes[pfx]
	if !ok {
		return Term{}, p.errf(t, "undeclared prefix %q", pfx)
	}
	return NewIRI(ns + local), nil
}

// WriteTurtle serializes the graph as Turtle, grouping triples by subject
// and abbreviating with ';' / ',' and the given prefix map (namespace IRI
// keyed by prefix name). Subjects are emitted in deterministic order.
func WriteTurtle(w io.Writer, g *Graph, prefixes map[string]string) error {
	// Longest-namespace-first matching for abbreviation.
	type pfx struct{ name, ns string }
	var ps []pfx
	for name, ns := range prefixes {
		ps = append(ps, pfx{name, ns})
	}
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			if len(ps[j].ns) > len(ps[i].ns) || (len(ps[j].ns) == len(ps[i].ns) && ps[j].name < ps[i].name) {
				ps[i], ps[j] = ps[j], ps[i]
			}
		}
	}
	abbrev := func(t Term) string {
		if t.Kind == IRI {
			if t.Value == RDFType {
				return "a"
			}
			for _, p := range ps {
				if strings.HasPrefix(t.Value, p.ns) {
					local := t.Value[len(p.ns):]
					if local != "" && !strings.ContainsAny(local, "/#:") {
						return p.name + ":" + local
					}
				}
			}
		}
		return t.String()
	}

	var b strings.Builder
	// Deterministic prefix header: sort by name.
	names := make([]string, 0, len(prefixes))
	for n := range prefixes {
		names = append(names, n)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		fmt.Fprintf(&b, "@prefix %s: <%s> .\n", n, prefixes[n])
	}
	if len(names) > 0 {
		b.WriteByte('\n')
	}

	for _, s := range g.Subjects() {
		trs := g.Match(&s, nil, nil)
		if len(trs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s ", abbrev(s))
		for i, tr := range trs {
			if i > 0 {
				b.WriteString(" ;\n    ")
			}
			fmt.Fprintf(&b, "%s %s", abbrev(tr.P), abbrev(tr.O))
		}
		b.WriteString(" .\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
