// Package eval implements the evaluation phase of the KDD process
// (Figure 1, phase iii): confusion matrices, the classification metrics
// the experiment grid records (accuracy, per-class and macro F1, Cohen's
// kappa, binary AUC), and stratified k-fold cross-validation.
package eval

import (
	"fmt"
	"math"
	"sort"

	"openbi/internal/mining"
	"openbi/internal/oberr"
	"openbi/internal/stats"
	"openbi/internal/table"
)

// ConfusionMatrix accumulates prediction outcomes; Cell[actual][predicted].
type ConfusionMatrix struct {
	Classes int
	Cell    [][]int
}

// NewConfusionMatrix returns an empty k-class matrix.
func NewConfusionMatrix(k int) *ConfusionMatrix {
	m := &ConfusionMatrix{Classes: k, Cell: make([][]int, k)}
	for i := range m.Cell {
		m.Cell[i] = make([]int, k)
	}
	return m
}

// Add records one (actual, predicted) outcome; out-of-range codes are
// ignored (they correspond to missing labels).
func (m *ConfusionMatrix) Add(actual, predicted int) {
	if actual < 0 || actual >= m.Classes || predicted < 0 || predicted >= m.Classes {
		return
	}
	m.Cell[actual][predicted]++
}

// Merge adds another matrix of the same shape into m.
func (m *ConfusionMatrix) Merge(other *ConfusionMatrix) {
	for i := range m.Cell {
		for j := range m.Cell[i] {
			m.Cell[i][j] += other.Cell[i][j]
		}
	}
}

// Total returns the number of recorded outcomes.
func (m *ConfusionMatrix) Total() int {
	n := 0
	for i := range m.Cell {
		for j := range m.Cell[i] {
			n += m.Cell[i][j]
		}
	}
	return n
}

// Accuracy returns the fraction of correct predictions (0 on empty).
func (m *ConfusionMatrix) Accuracy() float64 {
	n := m.Total()
	if n == 0 {
		return 0
	}
	correct := 0
	for i := range m.Cell {
		correct += m.Cell[i][i]
	}
	return float64(correct) / float64(n)
}

// Kappa returns Cohen's kappa: chance-corrected agreement. It is the
// imbalance-robust headline metric of the experiment tables, because under
// heavy class skew raw accuracy rewards the degenerate majority guess.
func (m *ConfusionMatrix) Kappa() float64 {
	n := float64(m.Total())
	if n == 0 {
		return 0
	}
	po := m.Accuracy()
	pe := 0.0
	for c := 0; c < m.Classes; c++ {
		rowSum, colSum := 0, 0
		for j := 0; j < m.Classes; j++ {
			rowSum += m.Cell[c][j]
			colSum += m.Cell[j][c]
		}
		pe += float64(rowSum) / n * float64(colSum) / n
	}
	if pe >= 1 {
		return 0
	}
	return (po - pe) / (1 - pe)
}

// PrecisionRecallF1 returns the per-class precision, recall and F1 for
// class c (zero when undefined).
func (m *ConfusionMatrix) PrecisionRecallF1(c int) (precision, recall, f1 float64) {
	tp := m.Cell[c][c]
	fp, fn := 0, 0
	for j := 0; j < m.Classes; j++ {
		if j == c {
			continue
		}
		fp += m.Cell[j][c]
		fn += m.Cell[c][j]
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// MacroF1 averages F1 over classes that actually occur.
func (m *ConfusionMatrix) MacroF1() float64 {
	sum, k := 0.0, 0
	for c := 0; c < m.Classes; c++ {
		occurs := false
		for j := 0; j < m.Classes; j++ {
			if m.Cell[c][j] > 0 {
				occurs = true
				break
			}
		}
		if !occurs {
			continue
		}
		_, _, f1 := m.PrecisionRecallF1(c)
		sum += f1
		k++
	}
	if k == 0 {
		return 0
	}
	return sum / float64(k)
}

// MinorityRecall returns the recall of the rarest occurring class — the
// imbalance experiment's primary casualty.
func (m *ConfusionMatrix) MinorityRecall() float64 {
	minority, minCount := -1, math.MaxInt
	for c := 0; c < m.Classes; c++ {
		count := 0
		for j := 0; j < m.Classes; j++ {
			count += m.Cell[c][j]
		}
		if count > 0 && count < minCount {
			minority, minCount = c, count
		}
	}
	if minority < 0 {
		return 0
	}
	_, recall, _ := m.PrecisionRecallF1(minority)
	return recall
}

// Metrics is the flat record the experiment harness and knowledge base
// store per run.
type Metrics struct {
	Accuracy       float64 `json:"accuracy"`
	Kappa          float64 `json:"kappa"`
	MacroF1        float64 `json:"macroF1"`
	MinorityRecall float64 `json:"minorityRecall"`
	AUC            float64 `json:"auc"` // binary only; 0.5 when undefined
	TestInstances  int     `json:"testInstances"`
}

// FromMatrix summarizes a confusion matrix into Metrics (AUC left at 0.5;
// use BinaryAUC separately when probabilities are available).
func FromMatrix(m *ConfusionMatrix) Metrics {
	return Metrics{
		Accuracy:       m.Accuracy(),
		Kappa:          m.Kappa(),
		MacroF1:        m.MacroF1(),
		MinorityRecall: m.MinorityRecall(),
		AUC:            0.5,
		TestInstances:  m.Total(),
	}
}

// BinaryAUC computes the ROC AUC for the positive class from scores
// (higher = more positive) and binary labels, via the rank-sum identity.
// Ties receive average ranks. It returns 0.5 when a class is absent.
func BinaryAUC(scores []float64, positive []bool) float64 {
	if len(scores) != len(positive) {
		return 0.5
	}
	nPos, nNeg := 0, 0
	for _, p := range positive {
		if p {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	ranks := stats.Ranks(scores)
	sumPos := 0.0
	for i, p := range positive {
		if p {
			sumPos += ranks[i]
		}
	}
	u := sumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// Holdout fits a fresh classifier on train and evaluates on test,
// returning the metrics and the confusion matrix.
func Holdout(factory mining.Factory, train, test *mining.Dataset) (Metrics, *ConfusionMatrix, error) {
	return holdout(factory, train, test, nil)
}

// holdout is Holdout with an optional scratch arena, offered to the
// classifier (mining.ArenaUser) before fitting. The caller owns the
// arena's lifetime: it must not Reset until the returned metrics are
// final, because the fitted classifier may alias arena memory.
func holdout(factory mining.Factory, train, test *mining.Dataset, arena *mining.Arena) (Metrics, *ConfusionMatrix, error) {
	clf := factory()
	if au, ok := clf.(mining.ArenaUser); ok {
		au.UseArena(arena)
	}
	if err := clf.Fit(train); err != nil {
		return Metrics{}, nil, fmt.Errorf("eval: fitting %s: %w", clf.Name(), err)
	}
	k := train.NumClasses()
	cm := NewConfusionMatrix(k)
	var scores []float64
	var positives []bool
	prob, hasProba := clf.(mining.ProbClassifier)
	binary := k == 2
	for r := 0; r < test.Len(); r++ {
		actual := test.Label(r)
		if actual == table.MissingCat {
			continue
		}
		cm.Add(actual, clf.Predict(test, r))
		if binary && hasProba {
			p := prob.Proba(test, r)
			if len(p) == 2 {
				scores = append(scores, p[1])
				positives = append(positives, actual == 1)
			}
		}
	}
	metrics := FromMatrix(cm)
	if binary && hasProba {
		metrics.AUC = BinaryAUC(scores, positives)
	}
	return metrics, cm, nil
}

// CrossValidate runs stratified k-fold cross-validation and returns the
// pooled metrics (confusion matrices merged across folds, AUC averaged).
// Train and test splits are zero-copy views over ds (mining.Dataset.Subset)
// — per fold the only allocations are the row-index slices, not cell
// copies, which is what keeps the 7-criteria × severities × algorithms ×
// folds experiment grid cheap.
func CrossValidate(factory mining.Factory, ds *mining.Dataset, folds int, seed int64) (Metrics, error) {
	return CrossValidateWith(factory, ds, folds, seed, nil)
}

// CrossValidateWith is CrossValidate with a caller-owned scratch arena.
// Classifiers implementing mining.ArenaUser draw their fold-lifetime
// buffers from it; the arena is Reset after each fold (once the fold's
// confusion matrix has been merged), so one arena serves every fold of
// every cell a worker processes. A nil arena is CrossValidate exactly.
func CrossValidateWith(factory mining.Factory, ds *mining.Dataset, folds int, seed int64, arena *mining.Arena) (Metrics, error) {
	if folds < 2 {
		return Metrics{}, fmt.Errorf("eval: %w", &oberr.ConfigError{
			Field: "folds", Reason: fmt.Sprintf("need >= 2, got %d", folds)})
	}
	assignments, err := StratifiedFolds(ds, folds, seed)
	if err != nil {
		return Metrics{}, err
	}
	pooled := NewConfusionMatrix(ds.NumClasses())
	aucSum, aucFolds := 0.0, 0
	for f := 0; f < folds; f++ {
		var trainRows, testRows []int
		for r, fold := range assignments {
			if fold == f {
				testRows = append(testRows, r)
			} else {
				trainRows = append(trainRows, r)
			}
		}
		if len(trainRows) == 0 || len(testRows) == 0 {
			continue
		}
		train := ds.Subset(trainRows)
		test := ds.Subset(testRows)
		m, cm, err := holdout(factory, train, test, arena)
		if err != nil {
			return Metrics{}, fmt.Errorf("eval: fold %d: %w", f, err)
		}
		pooled.Merge(cm)
		aucSum += m.AUC
		aucFolds++
		// The fold's classifier is fully consumed (matrix merged, AUC
		// banked); its arena-backed scratch can be recycled for the next.
		arena.Reset()
	}
	out := FromMatrix(pooled)
	if aucFolds > 0 {
		out.AUC = aucSum / float64(aucFolds)
	}
	return out, nil
}

// StratifiedFolds assigns every row a fold in [0,folds) preserving class
// proportions; rows with missing labels are spread round-robin. The
// assignment is deterministic for a seed.
func StratifiedFolds(ds *mining.Dataset, folds int, seed int64) ([]int, error) {
	n := ds.Len()
	if n < folds {
		return nil, fmt.Errorf("eval: %w: %d rows < %d folds", oberr.ErrTooFewRows, n, folds)
	}
	rng := stats.NewRand(seed)
	byClass := make(map[int][]int)
	for r := 0; r < n; r++ {
		byClass[ds.Label(r)] = append(byClass[ds.Label(r)], r)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)

	out := make([]int, n)
	next := 0
	for _, c := range classes {
		rows := byClass[c]
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		for _, r := range rows {
			out[r] = next % folds
			next++
		}
	}
	return out, nil
}

// TrainTestSplit returns stratified train/test row index sets with the
// given test fraction.
func TrainTestSplit(ds *mining.Dataset, testFraction float64, seed int64) (train, test []int, err error) {
	if testFraction <= 0 || testFraction >= 1 {
		return nil, nil, fmt.Errorf("eval: %w", &oberr.ConfigError{
			Field: "testFraction", Reason: fmt.Sprintf("%.3f out of (0,1)", testFraction)})
	}
	folds := int(math.Round(1 / testFraction))
	if folds < 2 {
		folds = 2
	}
	assignment, err := StratifiedFolds(ds, folds, seed)
	if err != nil {
		return nil, nil, err
	}
	for r, f := range assignment {
		if f == 0 {
			test = append(test, r)
		} else {
			train = append(train, r)
		}
	}
	return train, test, nil
}
