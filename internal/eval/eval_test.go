package eval

import (
	"math"
	"testing"

	"openbi/internal/mining"
	"openbi/internal/synth"
)

// knownMatrix builds the 3-class confusion matrix
//
//	actual\pred  a  b  c
//	a            5  1  0
//	b            2  6  2
//	c            0  1  3
func knownMatrix() *ConfusionMatrix {
	m := NewConfusionMatrix(3)
	add := func(a, p, n int) {
		for i := 0; i < n; i++ {
			m.Add(a, p)
		}
	}
	add(0, 0, 5)
	add(0, 1, 1)
	add(1, 0, 2)
	add(1, 1, 6)
	add(1, 2, 2)
	add(2, 1, 1)
	add(2, 2, 3)
	return m
}

func TestConfusionAccuracy(t *testing.T) {
	m := knownMatrix()
	if m.Total() != 20 {
		t.Fatalf("total = %d", m.Total())
	}
	if got := m.Accuracy(); math.Abs(got-14.0/20.0) > 1e-12 {
		t.Fatalf("accuracy = %v, want 0.7", got)
	}
}

func TestConfusionKappa(t *testing.T) {
	m := knownMatrix()
	// po = 0.7; pe = (6*7 + 10*8 + 4*5)/400 = (42+80+20)/400 = 0.355
	want := (0.7 - 0.355) / (1 - 0.355)
	if got := m.Kappa(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("kappa = %v, want %v", got, want)
	}
}

func TestConfusionPerClassF1(t *testing.T) {
	m := knownMatrix()
	p, r, f1 := m.PrecisionRecallF1(0)
	if math.Abs(p-5.0/7.0) > 1e-12 || math.Abs(r-5.0/6.0) > 1e-12 {
		t.Fatalf("class a precision/recall = %v/%v", p, r)
	}
	wantF1 := 2 * p * r / (p + r)
	if math.Abs(f1-wantF1) > 1e-12 {
		t.Fatalf("f1 = %v, want %v", f1, wantF1)
	}
}

func TestConfusionMacroF1(t *testing.T) {
	m := knownMatrix()
	sum := 0.0
	for c := 0; c < 3; c++ {
		_, _, f1 := m.PrecisionRecallF1(c)
		sum += f1
	}
	if got := m.MacroF1(); math.Abs(got-sum/3) > 1e-12 {
		t.Fatalf("macro F1 = %v, want %v", got, sum/3)
	}
}

func TestMacroF1SkipsAbsentClasses(t *testing.T) {
	m := NewConfusionMatrix(3)
	m.Add(0, 0)
	m.Add(1, 1)
	// Class 2 never occurs; macro must average over 2 classes = 1.0.
	if got := m.MacroF1(); got != 1 {
		t.Fatalf("macro F1 = %v, want 1", got)
	}
}

func TestMinorityRecall(t *testing.T) {
	m := NewConfusionMatrix(2)
	for i := 0; i < 90; i++ {
		m.Add(0, 0)
	}
	m.Add(1, 0)
	m.Add(1, 0)
	m.Add(1, 1)
	m.Add(1, 1)
	// Minority class 1: 4 instances, 2 recalled.
	if got := m.MinorityRecall(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("minority recall = %v, want 0.5", got)
	}
}

func TestKappaZeroForChance(t *testing.T) {
	// Predictions independent of truth -> kappa ~ 0.
	m := NewConfusionMatrix(2)
	for i := 0; i < 25; i++ {
		m.Add(0, 0)
		m.Add(0, 1)
		m.Add(1, 0)
		m.Add(1, 1)
	}
	if got := m.Kappa(); math.Abs(got) > 1e-12 {
		t.Fatalf("chance kappa = %v, want 0", got)
	}
}

func TestAddIgnoresInvalidCodes(t *testing.T) {
	m := NewConfusionMatrix(2)
	m.Add(-1, 0)
	m.Add(0, 5)
	if m.Total() != 0 {
		t.Fatal("invalid codes should be ignored")
	}
}

func TestMergeAccumulates(t *testing.T) {
	a, b := knownMatrix(), knownMatrix()
	a.Merge(b)
	if a.Total() != 40 {
		t.Fatalf("merged total = %d", a.Total())
	}
	if math.Abs(a.Accuracy()-0.7) > 1e-12 {
		t.Fatal("merge changed accuracy")
	}
}

func TestBinaryAUCPerfectRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	pos := []bool{true, true, false, false}
	if got := BinaryAUC(scores, pos); got != 1 {
		t.Fatalf("AUC = %v, want 1", got)
	}
}

func TestBinaryAUCInvertedRanking(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	pos := []bool{true, true, false, false}
	if got := BinaryAUC(scores, pos); got != 0 {
		t.Fatalf("AUC = %v, want 0", got)
	}
}

func TestBinaryAUCTies(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	pos := []bool{true, false, true, false}
	if got := BinaryAUC(scores, pos); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("all-tied AUC = %v, want 0.5", got)
	}
}

func TestBinaryAUCDegenerate(t *testing.T) {
	if got := BinaryAUC([]float64{1, 2}, []bool{true, true}); got != 0.5 {
		t.Fatalf("single-class AUC = %v, want 0.5", got)
	}
	if got := BinaryAUC([]float64{1}, []bool{true, false}); got != 0.5 {
		t.Fatalf("mismatched lengths AUC = %v, want 0.5", got)
	}
}

func TestStratifiedFoldsPreserveProportions(t *testing.T) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{
		Rows: 300, Seed: 1, ClassBalance: 0.4, Classes: 3,
	})
	folds, err := StratifiedFolds(ds, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	total := ds.ClassCounts()
	for f := 0; f < 5; f++ {
		counts := make([]int, ds.NumClasses())
		n := 0
		for r, fr := range folds {
			if fr == f {
				counts[ds.Label(r)]++
				n++
			}
		}
		if n < 50 || n > 70 {
			t.Fatalf("fold %d size = %d", f, n)
		}
		for c := range counts {
			wantFrac := float64(total[c]) / float64(ds.Len())
			gotFrac := float64(counts[c]) / float64(n)
			if math.Abs(wantFrac-gotFrac) > 0.08 {
				t.Fatalf("fold %d class %d fraction %v vs %v", f, c, gotFrac, wantFrac)
			}
		}
	}
}

func TestStratifiedFoldsTooFewRows(t *testing.T) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 3, Seed: 1})
	if _, err := StratifiedFolds(ds, 5, 1); err == nil {
		t.Fatal("folds > rows should error")
	}
}

func TestHoldoutEvaluatesOnTestOnly(t *testing.T) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 200, Seed: 2})
	trainRows, testRows, err := TrainTestSplit(ds, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, cm, err := Holdout(func() mining.Classifier { return mining.NewNaiveBayes() },
		ds.Subset(trainRows), ds.Subset(testRows))
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != len(testRows) {
		t.Fatalf("test outcomes = %d, want %d", cm.Total(), len(testRows))
	}
	if m.Accuracy < 0.8 {
		t.Fatalf("holdout accuracy = %v on easy data", m.Accuracy)
	}
	if m.AUC <= 0.8 {
		t.Fatalf("AUC = %v, want high on separable binary data", m.AUC)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 150, Seed: 4})
	run := func() Metrics {
		m, err := CrossValidate(func() mining.Classifier { return mining.NewC45Tree() }, ds, 5, 77)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("CV not deterministic: %+v vs %+v", a, b)
	}
}

func TestCrossValidatePoolsAllRows(t *testing.T) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 150, Seed: 5})
	m, err := CrossValidate(func() mining.Classifier { return mining.NewZeroR() }, ds, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.TestInstances != 150 {
		t.Fatalf("pooled test instances = %d, want 150", m.TestInstances)
	}
}

func TestCrossValidateRejectsBadFolds(t *testing.T) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 50, Seed: 6})
	if _, err := CrossValidate(func() mining.Classifier { return mining.NewZeroR() }, ds, 1, 1); err == nil {
		t.Fatal("folds < 2 should error")
	}
}

func TestTrainTestSplitValidation(t *testing.T) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 50, Seed: 7})
	if _, _, err := TrainTestSplit(ds, 0, 1); err == nil {
		t.Fatal("fraction 0 should error")
	}
	if _, _, err := TrainTestSplit(ds, 1, 1); err == nil {
		t.Fatal("fraction 1 should error")
	}
	train, test, err := TrainTestSplit(ds, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(test) != 50 {
		t.Fatalf("split sizes %d+%d != 50", len(train), len(test))
	}
}

func TestFromMatrixFields(t *testing.T) {
	m := knownMatrix()
	metrics := FromMatrix(m)
	if metrics.Accuracy != m.Accuracy() || metrics.Kappa != m.Kappa() ||
		metrics.MacroF1 != m.MacroF1() || metrics.TestInstances != m.Total() {
		t.Fatalf("FromMatrix mismatch: %+v", metrics)
	}
	if metrics.AUC != 0.5 {
		t.Fatal("FromMatrix AUC should default 0.5")
	}
}
