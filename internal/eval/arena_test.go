package eval

import (
	"sync"
	"testing"

	"openbi/internal/mining"
	"openbi/internal/synth"
)

// TestCrossValidateWithArenaMatchesPlain checks the arena path is a pure
// allocation strategy: for every standard-suite algorithm, cross-validation
// drawing scratch from a reused arena must produce exactly (==) the metrics
// of the plain path, with the same arena carried across algorithms the way
// an experiment worker carries it across grid cells.
func TestCrossValidateWithArenaMatchesPlain(t *testing.T) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{
		Rows: 150, Seed: 11, Classes: 3, ClassBalance: 0.4,
	})
	arena := mining.NewArena()
	for _, name := range mining.SuiteNames() {
		factory := mining.StandardSuite(5)[name]
		plain, err := CrossValidate(factory, ds, 4, 99)
		if err != nil {
			t.Fatalf("%s plain: %v", name, err)
		}
		withArena, err := CrossValidateWith(factory, ds, 4, 99, arena)
		if err != nil {
			t.Fatalf("%s arena: %v", name, err)
		}
		if withArena != plain {
			t.Errorf("%s: arena metrics %+v != plain %+v", name, withArena, plain)
		}
	}
}

// TestSharedIndexArenaConcurrency runs the full suite on several goroutines
// at once over one shared dataset — shared presorted column index, shared
// cached column materializations — with a private arena per goroutine, and
// requires every goroutine to reproduce the sequential metrics exactly.
// Under -race this is the regression gate for the "workers only read shared
// state" contract of the experiment grid.
func TestSharedIndexArenaConcurrency(t *testing.T) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{
		Rows: 200, Seed: 21, Classes: 3, ClassBalance: 0.5,
	})
	ds.Index() // build eagerly, as prepareCells does; workers only read it
	suite := mining.StandardSuite(5)
	names := mining.SuiteNames()

	want := make(map[string]Metrics, len(names))
	for _, name := range names {
		m, err := CrossValidate(suite[name], ds, 3, 77)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		want[name] = m
	}

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena := mining.NewArena()
			for _, name := range names {
				m, err := CrossValidateWith(suite[name], ds, 3, 77, arena)
				if err != nil {
					t.Errorf("worker %d %s: %v", w, name, err)
					return
				}
				if m != want[name] {
					t.Errorf("worker %d %s: %+v != sequential %+v", w, name, m, want[name])
				}
			}
		}(w)
	}
	wg.Wait()
}
