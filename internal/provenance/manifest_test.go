package provenance

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func buildFixture(t *testing.T, n int) (*Manifest, []byte, [][]byte) {
	t.Helper()
	leaves := makeLeaves(n)
	doc := []byte("{\"records\": " + strings.Repeat("x", n) + "}")
	return New(doc, leaves), doc, leaves
}

func TestManifestVerifyCleanAndDeterministic(t *testing.T) {
	m, doc, leaves := buildFixture(t, 7)
	if err := m.Verify(doc, leaves); err != nil {
		t.Fatalf("clean verify failed: %v", err)
	}
	var a, b bytes.Buffer
	if err := m.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := New(doc, leaves).Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("manifest bytes are not deterministic")
	}
	back, err := Load(&a)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(doc, leaves); err != nil {
		t.Fatalf("round-tripped manifest does not verify: %v", err)
	}
}

func TestManifestNamesFirstCorruptRecord(t *testing.T) {
	m, _, leaves := buildFixture(t, 9)
	leaves[4] = append([]byte(nil), leaves[4]...)
	leaves[4][0] ^= 1
	leaves[7] = []byte("also wrong") // first mismatch must win
	err := m.VerifyLeaves(leaves)
	var rec *RecordMismatchError
	if !errors.As(err, &rec) {
		t.Fatalf("want RecordMismatchError, got %v", err)
	}
	if rec.Index != 4 {
		t.Fatalf("named record %d, want 4", rec.Index)
	}
	if !errors.Is(err, ErrMismatch) {
		t.Fatal("RecordMismatchError does not match ErrMismatch")
	}
	// The returned proof verifies the *pinned* leaf against the root: the
	// mismatch report is itself checkable.
	stored, err2 := m.storedLeafHashes()
	if err2 != nil {
		t.Fatal(err2)
	}
	tree := NewTreeFromLeafHashes(stored)
	proof, _ := tree.Proof(4)
	if !VerifyProof(tree.Root(), stored[4], 4, m.Records, proof) {
		t.Fatal("audit path of the named record does not verify")
	}
}

func TestManifestRecordCountMismatch(t *testing.T) {
	m, _, leaves := buildFixture(t, 5)
	if err := m.VerifyLeaves(leaves[:4]); !errors.Is(err, ErrMismatch) {
		t.Fatalf("removed record: %v", err)
	}
	if err := m.VerifyLeaves(append(leaves, []byte("extra"))); !errors.Is(err, ErrMismatch) {
		t.Fatalf("added record: %v", err)
	}
}

func TestManifestTamperedLeafListRejected(t *testing.T) {
	m, _, leaves := buildFixture(t, 6)
	// Re-pin leaf 2 to match a forged record: without the root check this
	// would verify.
	forged := append([]byte(nil), leaves[2]...)
	forged[0] ^= 1
	h := LeafHash(forged)
	m.LeafHashes[2] = bytesToHex(h[:])
	fake := append([][]byte{}, leaves...)
	fake[2] = forged
	err := m.VerifyLeaves(fake)
	if !errors.Is(err, ErrMismatch) || !strings.Contains(err.Error(), "root") {
		t.Fatalf("tampered leaf list: %v", err)
	}
}

func bytesToHex(b []byte) string {
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 0, 2*len(b))
	for _, c := range b {
		out = append(out, hexdigits[c>>4], hexdigits[c&0xf])
	}
	return string(out)
}

func TestManifestDocumentMismatch(t *testing.T) {
	m, doc, leaves := buildFixture(t, 3)
	other := append([]byte(nil), doc...)
	other[0] ^= 1
	if err := m.Verify(other, leaves); !errors.Is(err, ErrMismatch) {
		t.Fatalf("document tamper: %v", err)
	}
}

func TestManifestSignatures(t *testing.T) {
	m, doc, leaves := buildFixture(t, 4)
	if err := m.VerifySignature(nil); !errors.Is(err, ErrUnsigned) {
		t.Fatalf("unsigned manifest with no key: %v", err)
	}
	pub, priv, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifySignature(pub); !errors.Is(err, ErrMismatch) {
		t.Fatalf("unsigned manifest with pinned key must mismatch: %v", err)
	}
	if err := m.Sign(priv); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifySignature(nil); err != nil {
		t.Fatalf("embedded-key verify: %v", err)
	}
	if err := m.VerifySignature(pub); err != nil {
		t.Fatalf("pinned-key verify: %v", err)
	}
	if err := m.Verify(doc, leaves); err != nil {
		t.Fatalf("signed manifest content verify: %v", err)
	}

	// Wrong pinned key: refused even though the embedded signature is fine.
	otherPub, otherPriv, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.VerifySignature(otherPub); !errors.Is(err, ErrMismatch) {
		t.Fatalf("wrong pinned key: %v", err)
	}

	// Re-signing by an attacker key is integrity-valid but fails the pin.
	if err := m.Sign(otherPriv); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifySignature(nil); err != nil {
		t.Fatalf("attacker-signed manifest should pass integrity-only: %v", err)
	}
	if err := m.VerifySignature(pub); !errors.Is(err, ErrMismatch) {
		t.Fatalf("attacker-signed manifest must fail the pinned key: %v", err)
	}

	// Any content change after signing invalidates the signature.
	if err := m.Sign(priv); err != nil {
		t.Fatal(err)
	}
	m.Records++
	if err := m.VerifySignature(pub); !errors.Is(err, ErrMismatch) {
		t.Fatalf("content tamper after signing: %v", err)
	}
}

func TestManifestLoadRejectsTrailingBytesAndBadVersion(t *testing.T) {
	m, _, _ := buildFixture(t, 2)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := Load(bytes.NewReader(append(append([]byte(nil), good...), []byte("garbage")...))); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("trailing bytes: %v", err)
	}
	bad := bytes.Replace(good, []byte(`"version": 1`), []byte(`"version": 9`), 1)
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("future version: %v", err)
	}
}

func TestKeyFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pub, priv, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	privPath, pubPath := filepath.Join(dir, "sign.key"), filepath.Join(dir, "sign.pub")
	if err := SavePrivateKeyFile(privPath, priv); err != nil {
		t.Fatal(err)
	}
	if err := SavePublicKeyFile(pubPath, pub); err != nil {
		t.Fatal(err)
	}
	priv2, err := LoadPrivateKeyFile(privPath)
	if err != nil {
		t.Fatal(err)
	}
	pub2, err := LoadPublicKeyFile(pubPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(priv, priv2) || !bytes.Equal(pub, pub2) {
		t.Fatal("key round trip changed the keys")
	}
	if _, err := LoadPublicKeyFile(privPath); err == nil {
		t.Fatal("private key accepted as public key")
	}
}
