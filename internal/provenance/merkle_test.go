package provenance

import (
	"fmt"
	"testing"
)

func makeLeaves(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("record-%d", i))
	}
	return leaves
}

// Every leaf of every tree size proves against the root, and no proof
// survives a different leaf, index, or count — including the awkward
// odd-count shapes where nodes are promoted.
func TestProofRoundTripAllSizes(t *testing.T) {
	for n := 0; n <= 17; n++ {
		leaves := makeLeaves(n)
		tree := NewTree(leaves)
		if tree.Len() != n {
			t.Fatalf("n=%d: Len() = %d", n, tree.Len())
		}
		root := tree.Root()
		for i := 0; i < n; i++ {
			proof, err := tree.Proof(i)
			if err != nil {
				t.Fatalf("n=%d proof(%d): %v", n, i, err)
			}
			if !VerifyProof(root, LeafHash(leaves[i]), i, n, proof) {
				t.Errorf("n=%d leaf %d: valid proof rejected", n, i)
			}
			if VerifyProof(root, LeafHash([]byte("tampered")), i, n, proof) {
				t.Errorf("n=%d leaf %d: tampered leaf accepted", n, i)
			}
			if n > 1 && VerifyProof(root, LeafHash(leaves[i]), (i+1)%n, n, proof) {
				t.Errorf("n=%d leaf %d: proof accepted at wrong index", n, i)
			}
		}
	}
}

func TestRootChangesWithAnyLeaf(t *testing.T) {
	base := NewTree(makeLeaves(9)).Root()
	for i := 0; i < 9; i++ {
		leaves := makeLeaves(9)
		leaves[i] = append(leaves[i], '!')
		if NewTree(leaves).Root() == base {
			t.Errorf("flipping leaf %d did not change the root", i)
		}
	}
	// Reordering changes the root too: position is part of identity.
	leaves := makeLeaves(9)
	leaves[0], leaves[8] = leaves[8], leaves[0]
	if NewTree(leaves).Root() == base {
		t.Error("reordering leaves did not change the root")
	}
}

// A leaf must never verify as an interior node or vice versa: the domain
// tags make sha256(x) under the two roles distinct.
func TestLeafNodeDomainSeparation(t *testing.T) {
	l, r := LeafHash([]byte("a")), LeafHash([]byte("b"))
	parent := nodeHash(l, r)
	var concat []byte
	concat = append(concat, l[:]...)
	concat = append(concat, r[:]...)
	if LeafHash(concat) == parent {
		t.Fatal("leaf hash of concatenated children equals their parent node hash")
	}
}

func TestEmptyTreeRootIsStable(t *testing.T) {
	a, b := NewTree(nil).Root(), NewTree([][]byte{}).Root()
	if a != b {
		t.Fatal("empty-tree roots differ")
	}
	if a == NewTree(makeLeaves(1)).Root() {
		t.Fatal("empty root collides with a 1-leaf root")
	}
}

func TestProofOutOfRange(t *testing.T) {
	tree := NewTree(makeLeaves(3))
	if _, err := tree.Proof(-1); err == nil {
		t.Error("Proof(-1) succeeded")
	}
	if _, err := tree.Proof(3); err == nil {
		t.Error("Proof(len) succeeded")
	}
	if VerifyProof(tree.Root(), LeafHash([]byte("record-0")), 0, 0, nil) {
		t.Error("VerifyProof accepted n=0")
	}
}
