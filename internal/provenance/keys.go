package provenance

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
)

// Key files are one lowercase-hex line: 64 bytes (ed25519 seed || public
// key) for private keys, 32 bytes for public keys. Plain hex keeps the
// files diff-able, curl-able and trivially generated elsewhere.

// GenerateKeyPair creates a fresh ed25519 signing key pair.
func GenerateKeyPair() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("provenance: generating key: %w", err)
	}
	return pub, priv, nil
}

// SavePrivateKeyFile writes a private key hex-encoded with owner-only
// permissions.
func SavePrivateKeyFile(path string, priv ed25519.PrivateKey) error {
	if len(priv) != ed25519.PrivateKeySize {
		return fmt.Errorf("provenance: private key has %d bytes, want %d", len(priv), ed25519.PrivateKeySize)
	}
	return os.WriteFile(path, []byte(hex.EncodeToString(priv)+"\n"), 0o600)
}

// SavePublicKeyFile writes a public key hex-encoded.
func SavePublicKeyFile(path string, pub ed25519.PublicKey) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("provenance: public key has %d bytes, want %d", len(pub), ed25519.PublicKeySize)
	}
	return os.WriteFile(path, []byte(hex.EncodeToString(pub)+"\n"), 0o644)
}

// readKeyFile reads one hex line of the expected byte length.
func readKeyFile(path string, wantBytes int) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("provenance: reading key %s: %w", path, err)
	}
	key, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		return nil, fmt.Errorf("provenance: key %s is not hex: %w", path, err)
	}
	if len(key) != wantBytes {
		return nil, fmt.Errorf("provenance: key %s has %d bytes, want %d", path, len(key), wantBytes)
	}
	return key, nil
}

// LoadPrivateKeyFile reads a private key written by SavePrivateKeyFile.
func LoadPrivateKeyFile(path string) (ed25519.PrivateKey, error) {
	key, err := readKeyFile(path, ed25519.PrivateKeySize)
	if err != nil {
		return nil, err
	}
	return ed25519.PrivateKey(key), nil
}

// LoadPublicKeyFile reads a public key written by SavePublicKeyFile.
func LoadPublicKeyFile(path string) (ed25519.PublicKey, error) {
	key, err := readKeyFile(path, ed25519.PublicKeySize)
	if err != nil {
		return nil, err
	}
	return ed25519.PublicKey(key), nil
}
