package provenance

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
)

// ManifestVersion is the current manifest format version; Load refuses
// documents from a different version rather than mis-verifying them.
const ManifestVersion = 1

// Sentinel errors. Structured errors below match them via errors.Is.
var (
	// ErrMismatch reports a verification failure: the artifact does not
	// match the manifest (corrupt record, wrong document, bad signature,
	// broken chain).
	ErrMismatch = errors.New("provenance mismatch")
	// ErrBadManifest reports a manifest that is malformed or internally
	// inconsistent — it cannot be used to verify anything.
	ErrBadManifest = errors.New("bad provenance manifest")
	// ErrUnsigned reports a manifest that carries no signature. Callers
	// that merely flag unsigned manifests branch on it; callers that pin a
	// key treat it as a mismatch.
	ErrUnsigned = errors.New("manifest is unsigned")
)

// RecordMismatchError names the first record whose canonical encoding does
// not hash to the manifest's leaf: the corruption is localized, not just
// detected. Proof is the record's Merkle audit path from the manifest's
// own leaf list, so the mismatch is independently checkable against the
// signed root.
type RecordMismatchError struct {
	Index int      // 0-based record index in kb.json order
	Want  string   // leaf hash pinned by the manifest (hex)
	Got   string   // leaf hash of the record as loaded (hex)
	Proof []string // audit path of leaf Index against the manifest root (hex)
}

func (e *RecordMismatchError) Error() string {
	return fmt.Sprintf("record %d does not match the manifest (leaf %s, manifest pins %s)", e.Index, e.Got, e.Want)
}

// Is makes errors.Is(err, ErrMismatch) match.
func (e *RecordMismatchError) Is(target error) bool { return target == ErrMismatch }

// ShardDigest pins one shard of a merged run: its plan coordinates, record
// count, and the Merkle root over its records in shard order. A fleet
// distributing shard files verifies each against its digest before
// merging.
type ShardDigest struct {
	Index      int    `json:"shard"`
	Count      int    `json:"shards"`
	Records    int    `json:"records"`
	MerkleRoot string `json:"merkleRoot"`
}

// Manifest is the provenance record written beside a knowledge base
// (kb.json.manifest): everything needed to re-derive and check the KB's
// lineage from the artifacts alone. All hashes are lowercase hex sha256.
//
// The manifest is deterministic for a deterministic pipeline — same
// records, same toolchain, same key ⇒ byte-identical manifest (ed25519
// signatures are deterministic) — so manifests can be golden-pinned and
// content-addressed exactly like the KBs they describe.
type Manifest struct {
	Version int `json:"version"`
	// MerkleRoot is the root over LeafHashes; the one value a signature
	// ultimately anchors every record to.
	MerkleRoot string `json:"merkleRoot"`
	Records    int    `json:"records"`
	// LeafHashes pin each record individually (kb.json order), which is
	// what lets verification name the first corrupted record instead of
	// only failing at the root. The list itself is tamper-evident: it must
	// rebuild to MerkleRoot.
	LeafHashes []string `json:"leafHashes"`
	// KBSHA256 is the hash of the exact kb.json bytes the manifest was
	// produced for (the content address a serving fleet pulls by).
	KBSHA256 string `json:"kbSha256"`
	// DatasetHash chains the KB to the dataset contents its experiment
	// grid ran over (sha256 of the dataset's canonical CSV serialization).
	DatasetHash string `json:"datasetHash,omitempty"`
	// GridFingerprint chains the KB to the full run configuration — the
	// same fingerprint shard files and checkpoint journals carry.
	GridFingerprint string `json:"gridFingerprint,omitempty"`
	// Shards digests the shard set a merged KB was assembled from.
	Shards []ShardDigest `json:"shards,omitempty"`
	// Toolchain records the Go toolchain that produced the KB.
	Toolchain string `json:"toolchain"`
	// PublicKey and Signature are the optional ed25519 signature over the
	// manifest's canonical payload (all fields above). Unsigned manifests
	// are allowed but flagged by verifiers.
	PublicKey string `json:"publicKey,omitempty"`
	Signature string `json:"signature,omitempty"`
}

// New builds the manifest of a saved knowledge-base document: doc is the
// exact serialized kb.json bytes, leaves the canonical per-record
// encodings in record order. Chain fields (dataset hash, fingerprint,
// shard set) and the signature are filled in by the caller.
func New(doc []byte, leaves [][]byte) *Manifest {
	tree := NewTree(leaves)
	hashes := make([]string, len(leaves))
	for i := range leaves {
		h, _ := tree.LeafHashAt(i)
		hashes[i] = hex.EncodeToString(h[:])
	}
	sum := sha256.Sum256(doc)
	return &Manifest{
		Version:    ManifestVersion,
		MerkleRoot: tree.RootHex(),
		Records:    len(leaves),
		LeafHashes: hashes,
		KBSHA256:   hex.EncodeToString(sum[:]),
		Toolchain:  runtime.Version(),
	}
}

// signingPayload is the canonical byte sequence a signature covers: the
// manifest JSON with the signature fields cleared.
func (m *Manifest) signingPayload() ([]byte, error) {
	c := *m
	c.PublicKey = ""
	c.Signature = ""
	return json.Marshal(&c)
}

// Sign signs the manifest with an ed25519 private key, embedding the
// public key so verifiers without a pinned key can still check integrity
// (pin the key to also check identity).
func (m *Manifest) Sign(priv ed25519.PrivateKey) error {
	if len(priv) != ed25519.PrivateKeySize {
		return fmt.Errorf("%w: private key has %d bytes, want %d", ErrBadManifest, len(priv), ed25519.PrivateKeySize)
	}
	payload, err := m.signingPayload()
	if err != nil {
		return err
	}
	m.PublicKey = hex.EncodeToString(priv.Public().(ed25519.PublicKey))
	m.Signature = hex.EncodeToString(ed25519.Sign(priv, payload))
	return nil
}

// Signed reports whether the manifest carries a signature.
func (m *Manifest) Signed() bool { return m.Signature != "" }

// Signer returns the hex public key the manifest claims to be signed by
// ("" when unsigned).
func (m *Manifest) Signer() string { return m.PublicKey }

// VerifySignature checks the manifest's signature. With pub nil the
// embedded public key is used (integrity only — any signer passes); with a
// pinned pub the manifest must be signed by exactly that key. An unsigned
// manifest returns ErrUnsigned when no key is pinned, and a mismatch when
// one is: a fleet that configures a key must never accept unsigned
// artifacts, or stripping the signature would bypass the check entirely.
func (m *Manifest) VerifySignature(pub ed25519.PublicKey) error {
	if !m.Signed() {
		if pub == nil {
			return ErrUnsigned
		}
		return fmt.Errorf("%w: manifest is unsigned but a signing key is required", ErrMismatch)
	}
	sig, err := hex.DecodeString(m.Signature)
	if err != nil || len(sig) != ed25519.SignatureSize {
		return fmt.Errorf("%w: malformed signature", ErrBadManifest)
	}
	key := pub
	if key == nil {
		raw, err := hex.DecodeString(m.PublicKey)
		if err != nil || len(raw) != ed25519.PublicKeySize {
			return fmt.Errorf("%w: malformed embedded public key", ErrBadManifest)
		}
		key = ed25519.PublicKey(raw)
	} else if m.PublicKey != "" && m.PublicKey != hex.EncodeToString(pub) {
		return fmt.Errorf("%w: manifest was signed by %s, not the pinned key %s",
			ErrMismatch, m.PublicKey, hex.EncodeToString(pub))
	}
	payload, err := m.signingPayload()
	if err != nil {
		return err
	}
	if !ed25519.Verify(key, payload, sig) {
		return fmt.Errorf("%w: signature does not verify", ErrMismatch)
	}
	return nil
}

// VerifyDocument checks the exact serialized KB bytes against the
// manifest's content address.
func (m *Manifest) VerifyDocument(doc []byte) error {
	sum := sha256.Sum256(doc)
	if got := hex.EncodeToString(sum[:]); got != m.KBSHA256 {
		return fmt.Errorf("%w: kb.json sha256 %s, manifest pins %s", ErrMismatch, got, m.KBSHA256)
	}
	return nil
}

// storedLeafHashes decodes the manifest's pinned leaf hashes, validating
// shape.
func (m *Manifest) storedLeafHashes() ([][HashSize]byte, error) {
	if len(m.LeafHashes) != m.Records {
		return nil, fmt.Errorf("%w: %d leaf hashes for %d records", ErrBadManifest, len(m.LeafHashes), m.Records)
	}
	out := make([][HashSize]byte, len(m.LeafHashes))
	for i, s := range m.LeafHashes {
		raw, err := hex.DecodeString(s)
		if err != nil || len(raw) != HashSize {
			return nil, fmt.Errorf("%w: leaf hash %d is not a sha256 hex digest", ErrBadManifest, i)
		}
		copy(out[i][:], raw)
	}
	return out, nil
}

// VerifyLeaves re-derives the record-level Merkle tree and checks it
// against the manifest: the pinned leaf list must rebuild to the signed
// root (a tampered list cannot hide behind intact leaves), the counts must
// agree (a record added or removed is named as such, not as a hash soup),
// and every record's canonical encoding must hash to its pinned leaf — the
// first that does not is returned as a RecordMismatchError carrying its
// audit path.
func (m *Manifest) VerifyLeaves(leaves [][]byte) error {
	stored, err := m.storedLeafHashes()
	if err != nil {
		return err
	}
	tree := NewTreeFromLeafHashes(stored)
	if tree.RootHex() != m.MerkleRoot {
		return fmt.Errorf("%w: manifest leaf list rebuilds to root %s, manifest pins %s",
			ErrMismatch, tree.RootHex(), m.MerkleRoot)
	}
	if len(leaves) != m.Records {
		return fmt.Errorf("%w: knowledge base has %d records, manifest pins %d (records were added or removed)",
			ErrMismatch, len(leaves), m.Records)
	}
	for i, leaf := range leaves {
		got := LeafHash(leaf)
		if got != stored[i] {
			proof, _ := tree.Proof(i)
			return &RecordMismatchError{
				Index: i,
				Want:  hex.EncodeToString(stored[i][:]),
				Got:   hex.EncodeToString(got[:]),
				Proof: HexProof(proof),
			}
		}
	}
	return nil
}

// Verify checks a serialized KB document and its canonical record
// encodings against the manifest. The leaf check runs first so a
// corruption names its record; the document check then catches byte-level
// tampering that JSON decoding normalized away (reformatted whitespace,
// duplicate keys). Signature policy is the caller's (VerifySignature).
func (m *Manifest) Verify(doc []byte, leaves [][]byte) error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("%w: manifest version %d, want %d", ErrBadManifest, m.Version, ManifestVersion)
	}
	if err := m.VerifyLeaves(leaves); err != nil {
		return err
	}
	return m.VerifyDocument(doc)
}

// Save writes the manifest as indented JSON.
func (m *Manifest) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// Load reads a manifest, requiring EOF after the document — trailing bytes
// mean a concatenated or appended-to file, which must not verify as
// pristine.
func Load(r io.Reader) (*Manifest, error) {
	dec := json.NewDecoder(r)
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after the manifest document", ErrBadManifest)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("%w: manifest version %d, want %d", ErrBadManifest, m.Version, ManifestVersion)
	}
	return &m, nil
}

// LoadFile is Load over a file path.
func LoadFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	defer f.Close()
	return Load(f)
}
