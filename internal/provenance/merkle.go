// Package provenance makes knowledge-base artifacts tamper-evident: a
// Merkle tree over canonical record encodings whose root is pinned in a
// signed manifest, so any replica that pulls a kb.json can prove — from
// the artifact alone, trusting nothing about the producer or the transport
// — that it chains back to the run that built it, and, when it does not,
// name the first record that differs.
//
// The package follows the hash-anchored audit-log template: leaves are
// domain-separated sha256 hashes of each record's canonical encoding,
// interior nodes hash their children under a distinct tag (so a leaf can
// never be replayed as a node), and per-leaf audit paths let a verifier
// check one record against the root in O(log n) without the other leaves.
//
// provenance deliberately imports only the standard library (the lean-core
// distribution model): it operates on raw byte leaves and documents, and
// knows nothing about knowledge bases. internal/kb supplies the canonical
// record encodings and wraps the typed errors for the serving stack.
package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// HashSize is the byte length of every leaf, node and root hash.
const HashSize = sha256.Size

// Domain-separation tags: a leaf hash and an interior-node hash of
// identical bytes must never collide, or an attacker could splice a
// subtree root in as a "record".
const (
	leafTag = 0x00
	nodeTag = 0x01
)

// LeafHash hashes one leaf's content: sha256(0x00 || content).
func LeafHash(content []byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{leafTag})
	h.Write(content)
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two child hashes: sha256(0x01 || left || right).
func nodeHash(left, right [HashSize]byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{nodeTag})
	h.Write(left[:])
	h.Write(right[:])
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// emptyRoot is the root of a tree with zero leaves — a fixed
// domain-separated constant, so "no records" is still a checkable value.
func emptyRoot() [HashSize]byte {
	return sha256.Sum256([]byte("openbi:provenance:empty"))
}

// Tree is an immutable Merkle tree built over a leaf sequence. An
// odd-count level promotes its last node unchanged (no duplication), so
// every leaf's audit path is uniquely determined by (index, leaf count).
type Tree struct {
	levels [][][HashSize]byte // levels[0] = leaf hashes, last = [root]
}

// NewTree builds the tree over the given leaf contents.
func NewTree(leaves [][]byte) *Tree {
	hashes := make([][HashSize]byte, len(leaves))
	for i, l := range leaves {
		hashes[i] = LeafHash(l)
	}
	return NewTreeFromLeafHashes(hashes)
}

// NewTreeFromLeafHashes builds the tree over precomputed leaf hashes (the
// form manifests store, so a verifier can rebuild the root without the
// full records).
func NewTreeFromLeafHashes(hashes [][HashSize]byte) *Tree {
	level := append([][HashSize]byte(nil), hashes...)
	t := &Tree{levels: [][][HashSize]byte{level}}
	for len(level) > 1 {
		next := make([][HashSize]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // odd node promoted
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

// Len returns the number of leaves.
func (t *Tree) Len() int { return len(t.levels[0]) }

// Root returns the tree's root hash.
func (t *Tree) Root() [HashSize]byte {
	if t.Len() == 0 {
		return emptyRoot()
	}
	return t.levels[len(t.levels)-1][0]
}

// RootHex returns the root as lowercase hex, the manifest wire form.
func (t *Tree) RootHex() string {
	r := t.Root()
	return hex.EncodeToString(r[:])
}

// LeafHashAt returns the stored hash of leaf i.
func (t *Tree) LeafHashAt(i int) ([HashSize]byte, error) {
	if i < 0 || i >= t.Len() {
		return [HashSize]byte{}, fmt.Errorf("provenance: leaf index %d out of range [0,%d)", i, t.Len())
	}
	return t.levels[0][i], nil
}

// Proof returns the audit path of leaf i: the sibling hash at every level,
// bottom-up, skipping levels where the node was promoted without a
// sibling. VerifyProof(root, leafHash, i, Len(), proof) accepts exactly
// this path.
func (t *Tree) Proof(i int) ([][HashSize]byte, error) {
	if i < 0 || i >= t.Len() {
		return nil, fmt.Errorf("provenance: leaf index %d out of range [0,%d)", i, t.Len())
	}
	var path [][HashSize]byte
	idx := i
	for _, level := range t.levels[:len(t.levels)-1] {
		if idx%2 == 1 {
			path = append(path, level[idx-1])
		} else if idx+1 < len(level) {
			path = append(path, level[idx+1])
		}
		// idx+1 == len(level): promoted, no sibling at this level.
		idx /= 2
	}
	return path, nil
}

// VerifyProof checks a leaf hash against a root via its audit path, for a
// tree of n leaves. The path layout must match Proof's promotion rule.
func VerifyProof(root [HashSize]byte, leaf [HashSize]byte, index, n int, path [][HashSize]byte) bool {
	if index < 0 || index >= n || n <= 0 {
		return false
	}
	cur := leaf
	idx, size, used := index, n, 0
	for size > 1 {
		switch {
		case idx%2 == 1:
			if used >= len(path) {
				return false
			}
			cur = nodeHash(path[used], cur)
			used++
		case idx+1 < size:
			if used >= len(path) {
				return false
			}
			cur = nodeHash(cur, path[used])
			used++
		default:
			// promoted: hash carries up unchanged
		}
		idx /= 2
		size = (size + 1) / 2
	}
	return used == len(path) && cur == root
}

// HexProof renders an audit path as hex strings (for human-readable
// verify output and JSON reports).
func HexProof(path [][HashSize]byte) []string {
	out := make([]string, len(path))
	for i, h := range path {
		out[i] = hex.EncodeToString(h[:])
	}
	return out
}
