package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"openbi/internal/experiment"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/oberr"
	"openbi/internal/synth"
)

// corpusTestOptions keeps the multi-run tests fast: two algorithms, the
// standard grid otherwise.
func corpusTestOptions() []Option {
	return []Option{WithSeed(42), WithFolds(3), WithAlgorithms("zero-r", "naive-bayes")}
}

func corpusDataset(t *testing.T, rows int, seed int64) *mining.Dataset {
	t.Helper()
	ds, err := synth.MakeClassification(synth.ClassificationSpec{Rows: rows, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func engineKBBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.SaveKB(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunCorporaMatchesSequentialRuns: mining the grid over registered
// corpora must be exactly the sequential composition of single-corpus
// runs — same records, same order, same bytes.
func TestRunCorporaMatchesSequentialRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment grid four times")
	}
	ds1 := corpusDataset(t, 60, 1)
	ds2 := corpusDataset(t, 70, 2)

	seq, err := New(corpusTestOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.RunExperiments(context.Background(), ds1, "first"); err != nil {
		t.Fatal(err)
	}
	if _, err := seq.RunExperiments(context.Background(), ds2, "second"); err != nil {
		t.Fatal(err)
	}

	multi, err := New(append(corpusTestOptions(), WithCorpus("first", ds1), WithCorpus("second", ds2))...)
	if err != nil {
		t.Fatal(err)
	}
	if got := multi.Corpora(); len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("Corpora() = %v", got)
	}
	var events int
	datasets := map[string]bool{}
	rep, err := multi.RunCorpora(context.Background(), WithProgress(func(ev experiment.Event) {
		events++
		datasets[ev.Dataset] = true
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phase1Records+rep.Phase2Records == 0 {
		t.Fatal("empty report")
	}
	if events != rep.Phase1Records+rep.Phase2Records {
		t.Fatalf("progress events = %d, want %d", events, rep.Phase1Records+rep.Phase2Records)
	}
	if !datasets["first"] || !datasets["second"] {
		t.Fatalf("events named datasets %v, want both corpora", datasets)
	}
	if !bytes.Equal(engineKBBytes(t, seq), engineKBBytes(t, multi)) {
		t.Fatal("RunCorpora KB differs from sequential RunExperiments runs")
	}
}

func TestCorpusValidation(t *testing.T) {
	ds := corpusDataset(t, 60, 1)
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"empty name", []Option{WithCorpus("", ds)}},
		{"nil dataset", []Option{WithCorpus("a", nil)}},
		{"duplicate name", []Option{WithCorpus("a", ds), WithCorpus("a", ds)}},
	} {
		if _, err := New(tc.opts...); !errors.Is(err, oberr.ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", tc.name, err)
		}
	}
	eng, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunCorpora(context.Background()); !errors.Is(err, oberr.ErrBadConfig) {
		t.Fatalf("RunCorpora without corpora: err = %v, want ErrBadConfig", err)
	}
}

// TestCheckpointedRunByteIdentical: WithCheckpoint must not change the
// knowledge base — fresh run, checkpointed run and fully-replayed rerun
// all produce the same bytes, and the replayed rerun executes nothing.
func TestCheckpointedRunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment grid three times")
	}
	ds := corpusDataset(t, 60, 1)
	dir := t.TempDir()

	plain, err := New(corpusTestOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.RunExperiments(context.Background(), ds, "reference"); err != nil {
		t.Fatal(err)
	}
	want := engineKBBytes(t, plain)

	ckpt, err := New(corpusTestOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ckpt.RunExperiments(context.Background(), ds, "reference", WithCheckpoint(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mixed != nil {
		t.Fatal("checkpointed runs must not fabricate Mixed interaction results")
	}
	if got := engineKBBytes(t, ckpt); !bytes.Equal(got, want) {
		t.Fatal("checkpointed KB differs from plain run")
	}

	replay, err := New(corpusTestOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	executed := 0
	if _, err := replay.RunExperiments(context.Background(), ds, "reference",
		WithCheckpoint(dir), WithProgress(func(ev experiment.Event) {
			if !ev.Restored {
				executed++
			}
		})); err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Fatalf("rerun over a complete journal executed %d cells, want 0", executed)
	}
	if got := engineKBBytes(t, replay); !bytes.Equal(got, want) {
		t.Fatal("replayed KB differs from plain run")
	}
}

// TestRunExperimentShardMergeReplace: the engine-level scale-out loop —
// run each shard, merge, ReplaceKB — must reproduce RunExperiments
// byte-for-byte and leave the engine untouched until ReplaceKB.
func TestRunExperimentShardMergeReplace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment grid twice")
	}
	ds := corpusDataset(t, 60, 1)

	mono, err := New(corpusTestOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mono.RunExperiments(context.Background(), ds, "reference"); err != nil {
		t.Fatal(err)
	}
	want := engineKBBytes(t, mono)

	eng, err := New(corpusTestOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	var shards []*kb.Shard
	for i := 0; i < 3; i++ {
		sh, err := eng.RunExperimentShard(context.Background(), ds, "reference",
			experiment.ShardPlan{Index: i, Count: 3})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, sh)
	}
	if eng.KB().Len() != 0 {
		t.Fatal("shard runs mutated the engine's knowledge base")
	}
	merged, err := kb.Merge(shards...)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ReplaceKB(merged); err != nil {
		t.Fatal(err)
	}
	if got := engineKBBytes(t, eng); !bytes.Equal(got, want) {
		t.Fatal("shard+merge+ReplaceKB KB differs from RunExperiments")
	}
	if _, err := eng.Advisor(); err != nil {
		t.Fatalf("advisor after ReplaceKB: %v", err)
	}
	if err := eng.ReplaceKB(nil); !errors.Is(err, oberr.ErrBadConfig) {
		t.Fatalf("ReplaceKB(nil): err = %v, want ErrBadConfig", err)
	}
}
