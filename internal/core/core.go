// Package core wires the substrates into the OpenBI pipeline of the paper:
// ingest raw open data (CSV/XML/HTML/RDF) → build the common
// representation (CWM model) → measure and annotate data-quality criteria
// → consult the DQ4DM knowledge base for advice → mine → share the result
// back as Linked Open Data. The root package openbi re-exports this as the
// library's public API.
//
// This file holds the stateless pipeline stages (ingestion, common
// representation, controlled corruption); engine.go holds the Engine that
// composes them with a knowledge base for serving.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"openbi/internal/cwm"
	"openbi/internal/dq"
	"openbi/internal/inject"
	"openbi/internal/oberr"
	"openbi/internal/rdf"
	"openbi/internal/table"
)

// ---- Ingestion (Figure 1, phase i) ----

// IngestFile reads one open-data file into a table, dispatching on the
// extension: .csv, .xml, .html/.htm, .nt (N-Triples) and .ttl (Turtle).
// RDF inputs are projected to the most frequent entity class. Unknown
// extensions return an error matching oberr.ErrUnsupportedFormat.
func IngestFile(path string) (*table.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening %s: %w", path, err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return table.ReadCSV(f, table.ReadCSVOptions{HasHeader: true, Name: name})
	case ".xml":
		return table.ReadXML(f, name)
	case ".html", ".htm":
		return table.ReadHTMLTable(f, name)
	case ".nt":
		g, err := rdf.ReadNTriples(f)
		if err != nil {
			return nil, err
		}
		return ProjectLargestClass(g)
	case ".ttl":
		g, err := rdf.ReadTurtle(f)
		if err != nil {
			return nil, err
		}
		return ProjectLargestClass(g)
	default:
		return nil, fmt.Errorf("core: %w",
			&oberr.UnsupportedFormatError{Input: path, Format: filepath.Ext(path)})
	}
}

// ProjectLargestClass projects an RDF graph onto its most populous entity
// class — the default "LOD integration module" behaviour when the user
// has not picked a class.
func ProjectLargestClass(g *rdf.Graph) (*table.Table, error) {
	return rdf.Project(g, rdf.ProjectOptions{LargestClass: true})
}

// ---- Common representation + annotation (§3.2) ----

// Model is the annotated common representation of one data source.
type Model struct {
	Catalog *cwm.Catalog
	Profile dq.Profile
}

// BuildModel profiles a source and returns the CWM catalog annotated with
// every data-quality measure (§3.2.1 + §3.2.2 in one call). classColumn
// may be "" when the source has no classification target; a non-empty
// classColumn absent from the table returns an error matching
// oberr.ErrColumnNotFound. a may be a concrete table or a zero-copy view
// (views are materialized once here).
func BuildModel(a table.Access, classColumn string) (*Model, error) {
	t := a.Materialize()
	profile, err := ProfileTable(t, classColumn, nil)
	if err != nil {
		return nil, err
	}
	catalog := cwm.CatalogFromTable(t, "openbi")
	dq.Annotate(catalog.Table(t.Name), profile)
	return &Model{Catalog: catalog, Profile: profile}, nil
}

// ProfileTable measures a source's data-quality profile with the same
// class resolution and error semantics as BuildModel, without building
// the CWM catalog. sc may be nil; servers that profile many uploads pass
// pooled scratch so steady-state measurement reuses one worker's buffers
// (see dq.MeasureWith).
func ProfileTable(a table.Access, classColumn string, sc *dq.Scratch) (dq.Profile, error) {
	t := a.Materialize()
	classIdx := -1
	if classColumn != "" {
		classIdx = t.ColumnIndex(classColumn)
		if classIdx < 0 {
			return dq.Profile{}, fmt.Errorf("core: class %w",
				&oberr.ColumnNotFoundError{Column: classColumn, Table: t.Name})
		}
	}
	return dq.MeasureWith(t, dq.MeasureOptions{ClassColumn: classIdx}, sc), nil
}

// ---- Controlled corruption (§3.1 step 1) ----

// CorruptForDemo injects the given specs — exposed so examples and the CLI
// can fabricate dirty sources without importing internal packages. t may be
// a concrete table or a zero-copy view (e.g. a Dataset's backing Access).
// A non-empty classColumn that does not exist returns an error matching
// oberr.ErrColumnNotFound instead of silently corrupting without class
// protection.
func CorruptForDemo(t table.Access, classColumn string, specs []inject.Spec, seed int64) (*table.Table, error) {
	classIdx := -1
	if classColumn != "" {
		classIdx = t.ColumnIndex(classColumn)
		if classIdx < 0 {
			// Access carries no table name; the column alone identifies the miss.
			return nil, fmt.Errorf("core: class %w",
				&oberr.ColumnNotFoundError{Column: classColumn})
		}
	}
	return inject.Apply(t, classIdx, specs, seed)
}

func sanitizeClassName(s string) string {
	if s == "" {
		return "result"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}
