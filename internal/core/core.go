// Package core wires the substrates into the OpenBI pipeline of the paper:
// ingest raw open data (CSV/XML/HTML/RDF) → build the common
// representation (CWM model) → measure and annotate data-quality criteria
// → consult the DQ4DM knowledge base for advice → mine → share the result
// back as Linked Open Data. The root package openbi re-exports this as the
// library's public API.
package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"openbi/internal/cwm"
	"openbi/internal/dq"
	"openbi/internal/eval"
	"openbi/internal/experiment"
	"openbi/internal/inject"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/rdf"
	"openbi/internal/table"
)

// Engine is the OpenBI session object: a knowledge base plus the
// configuration shared by profiling, advice and experiment runs.
type Engine struct {
	// KB is the DQ4DM knowledge base consulted for advice. A fresh Engine
	// starts empty; populate it with RunExperiments or LoadKB.
	KB *kb.KnowledgeBase
	// Folds is the cross-validation folds used everywhere (default 5).
	Folds int
	// Seed drives all stochastic components.
	Seed int64
	// Workers bounds experiment parallelism (0 = GOMAXPROCS).
	Workers int
}

// NewEngine returns an Engine with an empty knowledge base.
func NewEngine(seed int64) *Engine {
	return &Engine{KB: kb.New(), Folds: 5, Seed: seed}
}

// ---- Ingestion (Figure 1, phase i) ----

// IngestFile reads one open-data file into a table, dispatching on the
// extension: .csv, .xml, .html/.htm, .nt (N-Triples) and .ttl (Turtle).
// RDF inputs are projected to the most frequent entity class.
func (e *Engine) IngestFile(path string) (*table.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening %s: %w", path, err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return table.ReadCSV(f, table.ReadCSVOptions{HasHeader: true, Name: name})
	case ".xml":
		return table.ReadXML(f, name)
	case ".html", ".htm":
		return table.ReadHTMLTable(f, name)
	case ".nt":
		g, err := rdf.ReadNTriples(f)
		if err != nil {
			return nil, err
		}
		return ProjectLargestClass(g)
	case ".ttl":
		g, err := rdf.ReadTurtle(f)
		if err != nil {
			return nil, err
		}
		return ProjectLargestClass(g)
	default:
		return nil, fmt.Errorf("core: unsupported input extension %q", filepath.Ext(path))
	}
}

// ProjectLargestClass projects an RDF graph onto its most populous entity
// class — the default "LOD integration module" behaviour when the user
// has not picked a class.
func ProjectLargestClass(g *rdf.Graph) (*table.Table, error) {
	classes := g.Classes()
	if len(classes) == 0 {
		return rdf.Project(g, rdf.ProjectOptions{})
	}
	best, bestN := classes[0], -1
	for _, c := range classes {
		n := len(g.SubjectsOfType(c))
		if n > bestN {
			best, bestN = c, n
		}
	}
	return rdf.Project(g, rdf.ProjectOptions{Class: best})
}

// ---- Common representation + annotation (§3.2) ----

// Model is the annotated common representation of one data source.
type Model struct {
	Catalog *cwm.Catalog
	Profile dq.Profile
}

// BuildModel profiles a source and returns the CWM catalog annotated with
// every data-quality measure (§3.2.1 + §3.2.2 in one call). classColumn
// may be "" when the source has no classification target. a may be a
// concrete table or a zero-copy view (views are materialized once here).
func (e *Engine) BuildModel(a table.Access, classColumn string) (*Model, error) {
	t := a.Materialize()
	classIdx := -1
	if classColumn != "" {
		classIdx = t.ColumnIndex(classColumn)
		if classIdx < 0 {
			return nil, fmt.Errorf("core: class column %q not found in %q", classColumn, t.Name)
		}
	}
	profile := dq.Measure(t, dq.MeasureOptions{ClassColumn: classIdx})
	catalog := cwm.CatalogFromTable(t, "openbi")
	dq.Annotate(catalog.Table(t.Name), profile)
	return &Model{Catalog: catalog, Profile: profile}, nil
}

// ---- Advice (Figure 2, right side) ----

// Advise measures a source and ranks the suite's algorithms for it using
// the engine's knowledge base.
func (e *Engine) Advise(a table.Access, classColumn string) (kb.Advice, *Model, error) {
	m, err := e.BuildModel(a, classColumn)
	if err != nil {
		return kb.Advice{}, nil, err
	}
	advice, err := e.KB.Advise(m.Profile)
	if err != nil {
		return kb.Advice{}, nil, err
	}
	return advice, m, nil
}

// ---- Experiments (Figure 2, left side; §3.1) ----

// ExperimentReport summarizes a RunExperiments call.
type ExperimentReport struct {
	Phase1Records int
	Phase2Records int
	Mixed         []experiment.MixedResult
}

// RunExperiments executes Phase 1 (simple criteria) and Phase 2 (mixed
// criteria pairs) on a clean dataset and merges all records into the
// engine's knowledge base.
func (e *Engine) RunExperiments(ds *mining.Dataset, datasetName string) (*ExperimentReport, error) {
	cfg := experiment.Config{Folds: e.Folds, Seed: e.Seed, Workers: e.Workers}
	p1, err := experiment.Phase1(cfg, ds, datasetName)
	if err != nil {
		return nil, err
	}
	for _, r := range p1 {
		e.KB.Add(r)
	}
	combos := experiment.DefaultCombos([]dq.Criterion{
		dq.Completeness, dq.LabelNoise, dq.Imbalance, dq.Correlation,
	})
	mixed, p2, err := experiment.Phase2(cfg, ds, datasetName, e.KB, combos, 0.3)
	if err != nil {
		return nil, err
	}
	for _, r := range p2 {
		e.KB.Add(r)
	}
	return &ExperimentReport{Phase1Records: len(p1), Phase2Records: len(p2), Mixed: mixed}, nil
}

// ---- Mining + sharing (§1 (i) and (ii)) ----

// MiningResult is the outcome of MineWithAdvice.
type MiningResult struct {
	Algorithm string
	Metrics   eval.Metrics
	// Shared is the result re-exported as LOD: one entity per test
	// instance with its predicted label.
	Shared *rdf.Graph
}

// MineWithAdvice runs the full user path: advise on the source, train the
// recommended algorithm on a stratified 70/30 split, evaluate, and share
// predictions as LOD under the given base IRI.
func (e *Engine) MineWithAdvice(a table.Access, classColumn, baseIRI string) (*MiningResult, error) {
	t := a.Materialize()
	advice, _, err := e.Advise(t, classColumn)
	if err != nil {
		return nil, err
	}
	best := advice.Best().Algorithm
	factory, err := mining.Lookup(best, e.Seed)
	if err != nil {
		return nil, err
	}
	ds, err := mining.NewDatasetByName(t, classColumn)
	if err != nil {
		return nil, err
	}
	trainRows, testRows, err := eval.TrainTestSplit(ds, 0.3, e.Seed)
	if err != nil {
		return nil, err
	}
	train, test := ds.Subset(trainRows), ds.Subset(testRows)
	metrics, _, err := eval.Holdout(factory, train, test)
	if err != nil {
		return nil, err
	}

	// Share: predictions on the test split go back out as LOD.
	clf := factory()
	if err := clf.Fit(train); err != nil {
		return nil, err
	}
	shared := t.SelectRows(testRows)
	pred := table.NewNominalColumn("predicted_" + classColumn)
	for r := 0; r < test.Len(); r++ {
		pred.AppendLabel(test.ClassName(clf.Predict(test, r)))
	}
	shared.MustAddColumn(pred)
	if baseIRI == "" {
		baseIRI = "http://openbi.example.org/"
	}
	g := rdf.TableToGraph(shared, baseIRI, sanitizeClassName(t.Name))
	return &MiningResult{Algorithm: best, Metrics: metrics, Shared: g}, nil
}

func sanitizeClassName(s string) string {
	if s == "" {
		return "result"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}

// ---- KB persistence ----

// SaveKB writes the knowledge base to w.
func (e *Engine) SaveKB(w io.Writer) error { return e.KB.Save(w) }

// LoadKB replaces the engine's knowledge base with one read from r.
func (e *Engine) LoadKB(r io.Reader) error {
	loaded, err := kb.Load(r)
	if err != nil {
		return err
	}
	e.KB = loaded
	return nil
}

// CorruptForDemo injects the given specs — exposed so examples and the CLI
// can fabricate dirty sources without importing internal packages. t may be
// a concrete table or a zero-copy view (e.g. a Dataset's backing Access).
func CorruptForDemo(t table.Access, classColumn string, specs []inject.Spec, seed int64) (*table.Table, error) {
	classIdx := -1
	if classColumn != "" {
		classIdx = t.ColumnIndex(classColumn)
	}
	return inject.Apply(t, classIdx, specs, seed)
}
