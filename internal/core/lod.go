package core

import (
	"io"

	"openbi/internal/dq"
	"openbi/internal/rdf"
	"openbi/internal/table"
)

// LODIngest is the result of one streaming RDF ingestion: the projected
// common-representation table and the graph-level quality profile, both
// computed from a single decoder pass over the document.
type LODIngest struct {
	// Table is the entity→table projection (identical, byte for byte, to
	// rdf.Project over the loaded graph).
	Table *table.Table
	// Profile is the graph-level quality profile (identical to
	// dq.MeasureLOD over the loaded graph).
	Profile dq.LODProfile
	// Class is the IRI of the projected entity class — the explicit
	// opts.Class or the LargestClass winner; "" when every subject was
	// projected (Table.Name is "lod" in that case).
	Class string
	// Triples counts the raw triples streamed, duplicates included.
	Triples int
}

// IngestLOD streams an RDF document (format "nt" or "ttl", as in
// rdf.Stream) exactly once, feeding the data-quality sketch and the table
// projector from the same decoder pass — no indexed graph is ever
// resident. The decoder itself runs at constant memory (bounded by the
// longest statement); the sketch and projector retain only distinct
// content, so peak memory scales with the graph's distinct triples and
// projected entities, not with the raw stream: duplicate triples,
// repeated links and multi-portal re-exports cost nothing, and the
// working set stays well below the batch path's indexed graph (see
// BenchmarkIngestLOD). Zero-value opts project every subject; set
// opts.LargestClass or opts.Class to restrict (IngestFile's historical
// behaviour is LargestClass).
func IngestLOD(r io.Reader, format string, opts rdf.ProjectOptions) (*LODIngest, error) {
	sk := dq.NewLODSketch()
	proj, err := rdf.NewProjector(opts)
	if err != nil {
		return nil, err
	}
	n := 0
	err = rdf.Stream(r, format, func(tr rdf.Triple) error {
		n++
		sk.Add(tr)
		return proj.Add(tr)
	})
	if err != nil {
		return nil, err
	}
	t, err := proj.Table()
	if err != nil {
		return nil, err
	}
	ing := &LODIngest{Table: t, Profile: sk.Profile(), Triples: n}
	if cls, ok := proj.Class(); ok {
		ing.Class = cls.Value
	}
	return ing, nil
}

// IngestLOD streams one RDF document through the engine-independent
// pipeline; see the package function.
func (e *Engine) IngestLOD(r io.Reader, format string, opts rdf.ProjectOptions) (*LODIngest, error) {
	return IngestLOD(r, format, opts)
}
