package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"openbi/internal/dq"
	"openbi/internal/eval"
	"openbi/internal/experiment"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/oberr"
	"openbi/internal/rdf"
	"openbi/internal/table"
)

// Engine is the OpenBI serving object. Its configuration (seed, folds,
// workers, combos, algorithm suite) is fixed at New and never mutated, so
// any number of goroutines can call Advise and MineWithAdvice while
// another runs RunExperiments or LoadKB: readers serve from an immutable
// kb.Snapshot swapped atomically, writers serialize on an internal mutex.
// The old mutable-field API (KB, Folds, Workers as exported fields) is
// gone; use functional options at construction and accessors afterwards.
type Engine struct {
	seed          int64
	folds         int
	workers       int
	combos        [][]dq.Criterion
	mixedSeverity float64
	algorithms    map[string]mining.Factory
	corpora       []Corpus

	// mu serializes the write side (store mutation + snapshot publication).
	mu    sync.Mutex
	store *kb.KnowledgeBase
	// snap is the published read side; never nil after New.
	snap atomic.Pointer[kb.Snapshot]
}

// Corpus is one named experiment dataset; see WithCorpus.
type Corpus struct {
	Name    string
	Dataset *mining.Dataset
}

// settings collects option values before validation.
type settings struct {
	seed       int64
	folds      int
	workers    int
	combos     [][]dq.Criterion
	algorithms []string
	corpora    []corpusEntry
}

// corpusEntry is one registered corpus before resolution: either a ready
// dataset (WithCorpus) or an RDF stream to ingest at New (WithLODCorpus).
type corpusEntry struct {
	name string
	ds   *mining.Dataset
	lod  *lodCorpusSpec
}

// lodCorpusSpec defers a streaming LOD ingestion to New, where its
// failure can be reported.
type lodCorpusSpec struct {
	r      io.Reader
	format string
	class  string // class column of the projected table
	opts   rdf.ProjectOptions
}

// Option configures an Engine at construction; see With*.
type Option func(*settings)

// WithSeed sets the seed driving all stochastic components (default 0).
func WithSeed(seed int64) Option {
	return func(s *settings) { s.seed = seed }
}

// WithFolds sets the cross-validation fold count used everywhere
// (default 5; must be >= 2).
func WithFolds(folds int) Option {
	return func(s *settings) { s.folds = folds }
}

// WithWorkers bounds experiment parallelism (default 0 = GOMAXPROCS).
// Results are identical for any worker count.
func WithWorkers(workers int) Option {
	return func(s *settings) { s.workers = workers }
}

// WithCombos sets the Phase-2 mixed-criteria combinations RunExperiments
// sweeps. The default is every pair from {completeness, label-noise,
// imbalance, correlation}.
func WithCombos(combos [][]dq.Criterion) Option {
	return func(s *settings) { s.combos = combos }
}

// WithAlgorithms restricts the mining suite to the named registry
// algorithms (default: the full mining.StandardSuite). Unknown names make
// New fail with an error matching oberr.ErrUnknownAlgorithm.
func WithAlgorithms(names ...string) Option {
	return func(s *settings) { s.algorithms = names }
}

// WithCorpus registers a named experiment corpus; call it once per
// dataset. RunCorpora mines the full Phase 1 + Phase 2 grid over every
// registered corpus in registration order, so the knowledge base learns
// degradation curves from several data shapes instead of one synthetic
// reference. Names must be unique and non-empty (oberr.ErrBadConfig
// otherwise).
func WithCorpus(name string, ds *mining.Dataset) Option {
	return func(s *settings) { s.corpora = append(s.corpora, corpusEntry{name: name, ds: ds}) }
}

// WithLODCorpus registers an experiment corpus ingested from an RDF
// stream: New consumes r once through the constant-memory decoder (see
// IngestLOD), projects the most populous entity class to a table, and
// supervises it on classColumn — so RunCorpora can learn degradation
// curves straight from Linked Open Data next to tabular corpora, in
// registration order. format is "nt" or "ttl". Ingestion or projection
// failures (bad syntax, unknown class column, no subjects) are reported
// by New.
func WithLODCorpus(name string, r io.Reader, format string, classColumn string) Option {
	return func(s *settings) {
		s.corpora = append(s.corpora, corpusEntry{name: name, lod: &lodCorpusSpec{
			r: r, format: format, class: classColumn,
			opts: rdf.ProjectOptions{LargestClass: true},
		}})
	}
}

// DefaultCombos returns the canonical Phase-2 criteria pairs an Engine
// uses when WithCombos is not given.
func DefaultCombos() [][]dq.Criterion {
	return experiment.DefaultCombos([]dq.Criterion{
		dq.Completeness, dq.LabelNoise, dq.Imbalance, dq.Correlation,
	})
}

// New builds an immutable Engine with an empty knowledge base. Option
// validation is eager: bad folds/workers return an error matching
// oberr.ErrBadConfig, unknown algorithm names one matching
// oberr.ErrUnknownAlgorithm.
func New(opts ...Option) (*Engine, error) {
	s := settings{folds: 5}
	for _, opt := range opts {
		opt(&s)
	}
	if s.folds < 2 {
		return nil, fmt.Errorf("core: %w", &oberr.ConfigError{
			Field: "WithFolds", Reason: fmt.Sprintf("need >= 2 folds, got %d", s.folds)})
	}
	if s.workers < 0 {
		return nil, fmt.Errorf("core: %w", &oberr.ConfigError{
			Field: "WithWorkers", Reason: fmt.Sprintf("need >= 0 workers, got %d", s.workers)})
	}
	for _, combo := range s.combos {
		if len(combo) < 2 {
			return nil, fmt.Errorf("core: %w", &oberr.ConfigError{
				Field: "WithCombos", Reason: fmt.Sprintf("combo %v needs >= 2 criteria", combo)})
		}
	}
	seenCorpora := map[string]bool{}
	corpora := make([]Corpus, 0, len(s.corpora))
	for _, c := range s.corpora {
		field := "WithCorpus"
		if c.lod != nil {
			field = "WithLODCorpus"
		}
		switch {
		case c.name == "":
			return nil, fmt.Errorf("core: %w", &oberr.ConfigError{
				Field: field, Reason: "corpus name must not be empty"})
		case c.ds == nil && c.lod == nil:
			return nil, fmt.Errorf("core: %w", &oberr.ConfigError{
				Field: field, Reason: fmt.Sprintf("corpus %q has a nil dataset", c.name)})
		case seenCorpora[c.name]:
			return nil, fmt.Errorf("core: %w", &oberr.ConfigError{
				Field: field, Reason: fmt.Sprintf("corpus %q registered twice", c.name)})
		}
		seenCorpora[c.name] = true
		ds := c.ds
		if c.lod != nil {
			if c.lod.r == nil {
				return nil, fmt.Errorf("core: %w", &oberr.ConfigError{
					Field: "WithLODCorpus", Reason: fmt.Sprintf("corpus %q has a nil reader", c.name)})
			}
			ing, err := IngestLOD(c.lod.r, c.lod.format, c.lod.opts)
			if err != nil {
				return nil, fmt.Errorf("core: ingesting LOD corpus %q: %w", c.name, err)
			}
			ds, err = mining.NewDatasetByName(ing.Table, c.lod.class)
			if err != nil {
				return nil, fmt.Errorf("core: LOD corpus %q: %w", c.name, err)
			}
		}
		corpora = append(corpora, Corpus{Name: c.name, Dataset: ds})
	}
	suite := mining.StandardSuite(s.seed)
	algorithms := suite
	if s.algorithms != nil {
		algorithms = make(map[string]mining.Factory, len(s.algorithms))
		for _, name := range s.algorithms {
			f, ok := suite[name]
			if !ok {
				return nil, fmt.Errorf("core: %w",
					&oberr.UnknownAlgorithmError{Name: name, Known: mining.SuiteNames()})
			}
			algorithms[name] = f
		}
	}
	combos := s.combos
	if combos == nil {
		combos = DefaultCombos()
	}
	e := &Engine{
		seed:          s.seed,
		folds:         s.folds,
		workers:       s.workers,
		combos:        combos,
		mixedSeverity: 0.3,
		algorithms:    algorithms,
		corpora:       corpora,
		store:         kb.New(),
	}
	e.snap.Store(e.store.Snapshot())
	return e, nil
}

// NewEngine returns an Engine with an empty DQ4DM knowledge base.
//
// Deprecated: use New(WithSeed(seed)); configure folds and workers with
// WithFolds / WithWorkers instead of the removed struct fields.
func NewEngine(seed int64) *Engine {
	e, err := New(WithSeed(seed))
	if err != nil {
		panic(err) // unreachable: defaults validate
	}
	return e
}

// Seed returns the engine's base seed.
func (e *Engine) Seed() int64 { return e.seed }

// Folds returns the cross-validation fold count.
func (e *Engine) Folds() int { return e.folds }

// Workers returns the configured parallelism bound (0 = GOMAXPROCS).
func (e *Engine) Workers() int { return e.workers }

// KB returns the currently published knowledge-base snapshot: an immutable
// view safe to query from any goroutine. Snapshots are replaced atomically
// by RunExperiments and LoadKB; hold one to keep a consistent view across
// queries (or use Advisor for the same plus mining entry points).
func (e *Engine) KB() *kb.Snapshot { return e.snap.Load() }

// IngestFile reads one open-data file into a table; see core.IngestFile.
func (e *Engine) IngestFile(path string) (*table.Table, error) { return IngestFile(path) }

// BuildModel profiles a source into an annotated common representation;
// see core.BuildModel.
func (e *Engine) BuildModel(a table.Access, classColumn string) (*Model, error) {
	return BuildModel(a, classColumn)
}

// ---- Experiments (Figure 2, left side; §3.1) ----

// ExperimentReport summarizes a RunExperiments / RunCorpora call.
type ExperimentReport struct {
	Phase1Records int
	Phase2Records int
	// Mixed carries the Phase-2 interaction results (actual vs. additive
	// prediction). Checkpointed runs leave it nil: the resumable path runs
	// Phase 2 without the in-memory Phase-1 snapshot that predictions are
	// read from (the knowledge-base records are identical either way).
	Mixed []experiment.MixedResult
}

// RunOption configures one RunExperiments call; see WithProgress and
// WithCheckpoint.
type RunOption func(*runSettings)

type runSettings struct {
	progress   func(experiment.Event)
	checkpoint string
}

// WithProgress streams one experiment.Event per completed grid record to
// sink. Events arrive serially (no two at once) but on worker goroutines;
// keep the sink fast. Checkpoint-resumed runs replay journaled records as
// Restored events before executing new cells.
func WithProgress(sink func(experiment.Event)) RunOption {
	return func(r *runSettings) { r.progress = sink }
}

// WithCheckpoint makes the run resumable: every completed grid cell is
// journaled (synced, torn-tail safe) under dir, and a rerun with the same
// engine configuration resumes mid-grid instead of restarting. The journal
// refuses configurations it was not written by. The resulting knowledge
// base is byte-identical to an un-checkpointed run; only the report's
// Mixed interaction results are omitted.
func WithCheckpoint(dir string) RunOption {
	return func(r *runSettings) { r.checkpoint = dir }
}

// RunExperiments executes Phase 1 (simple criteria) and Phase 2 (mixed
// criteria pairs) on a clean dataset and merges all records into the
// engine's knowledge base, publishing a fresh snapshot when done —
// advisors holding the previous snapshot are unaffected. The run is
// all-or-nothing: a failed or canceled run (ctx.Err() between grid cells)
// leaves the store untouched, so a retry on the same engine cannot
// duplicate records (resume a long grid across failures with
// WithCheckpoint). Writers — concurrent RunExperiments, LoadKB, SaveKB —
// serialize on the engine's mutex for the full run; readers are never
// blocked.
func (e *Engine) RunExperiments(ctx context.Context, ds *mining.Dataset, datasetName string, opts ...RunOption) (*ExperimentReport, error) {
	return e.runExperiments(ctx, []Corpus{{Name: datasetName, Dataset: ds}}, opts...)
}

// RunCorpora is RunExperiments over every corpus registered with
// WithCorpus, in registration order, committed and published as one
// atomic knowledge-base update. It fails with oberr.ErrBadConfig when the
// engine has no corpora.
func (e *Engine) RunCorpora(ctx context.Context, opts ...RunOption) (*ExperimentReport, error) {
	if len(e.corpora) == 0 {
		return nil, fmt.Errorf("core: %w", &oberr.ConfigError{
			Field: "WithCorpus", Reason: "RunCorpora needs at least one corpus; register them at New"})
	}
	return e.runExperiments(ctx, e.corpora, opts...)
}

// Corpora returns the names of the corpora registered with WithCorpus, in
// registration order.
func (e *Engine) Corpora() []string {
	names := make([]string, len(e.corpora))
	for i, c := range e.corpora {
		names[i] = c.Name
	}
	return names
}

// experimentConfig assembles the experiment.Config the engine's options
// pin down.
func (e *Engine) experimentConfig(progress func(experiment.Event)) experiment.Config {
	return experiment.Config{
		Algorithms: e.algorithms,
		Folds:      e.folds,
		Seed:       e.seed,
		Workers:    e.workers,
		Progress:   progress,
	}
}

// GridFingerprint returns the experiment-grid fingerprint this engine's
// configuration produces over a dataset — the same value shard metadata
// and checkpoint journals record — so provenance manifests written for
// monolithic and sharded runs of one configuration chain on equal
// fingerprints.
func (e *Engine) GridFingerprint(ds *mining.Dataset, datasetName string) string {
	return experiment.Fingerprint(e.experimentConfig(nil), datasetName, ds, e.combos, e.mixedSeverity)
}

func (e *Engine) runExperiments(ctx context.Context, corpora []Corpus, opts ...RunOption) (*ExperimentReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var rs runSettings
	for _, opt := range opts {
		opt(&rs)
	}
	cfg := e.experimentConfig(rs.progress)
	e.mu.Lock()
	defer e.mu.Unlock()
	// All mutation happens on a staged (unpublished, uncommitted) copy;
	// the store and snapshot move only after every corpus succeeded.
	staged := &kb.KnowledgeBase{Records: append([]kb.Record(nil), e.store.Records...)}
	report := &ExperimentReport{}
	for _, corpus := range corpora {
		if rs.checkpoint != "" {
			// Resumable path: the whole grid as one checkpointed shard.
			sh, err := experiment.RunShard(ctx, cfg, corpus.Dataset, corpus.Name, experiment.ShardRun{
				Plan:          experiment.MonolithicPlan(),
				Combos:        e.combos,
				MixedSeverity: e.mixedSeverity,
				CheckpointDir: rs.checkpoint,
			})
			if err != nil {
				return nil, err
			}
			merged, err := kb.Merge(sh)
			if err != nil {
				return nil, err
			}
			report.Phase1Records += sh.Meta.Phase1Total
			report.Phase2Records += sh.Meta.Phase2Total
			staged.Records = append(staged.Records, merged.Records...)
			continue
		}
		p1, err := experiment.Phase1(ctx, cfg, corpus.Dataset, corpus.Name)
		if err != nil {
			return nil, err
		}
		// Phase 2 predicts from the store as of Phase 1 — the same records
		// the advisor would see.
		staged.Records = append(staged.Records, p1...)
		mixed, p2, err := experiment.Phase2(ctx, cfg, corpus.Dataset, corpus.Name, staged.Snapshot(), e.combos, e.mixedSeverity)
		if err != nil {
			return nil, err
		}
		staged.Records = append(staged.Records, p2...)
		report.Phase1Records += len(p1)
		report.Phase2Records += len(p2)
		report.Mixed = append(report.Mixed, mixed...)
	}
	e.store = staged
	e.snap.Store(e.store.Snapshot())
	return report, nil
}

// RunExperimentShard executes one shard of the engine's experiment grid —
// the slice of Phase 1 + Phase 2 cells that plan owns — and returns its
// positioned records without touching the engine's knowledge base: shard
// outputs are partial by design and only become a servable KB through
// kb.Merge (or `openbi kb merge`). Pass WithCheckpoint to journal
// completed cells so a killed shard job resumes mid-grid.
//
// Merging every shard of a plan yields a knowledge base byte-identical to
// RunExperiments on the same engine configuration.
func (e *Engine) RunExperimentShard(ctx context.Context, ds *mining.Dataset, datasetName string,
	plan experiment.ShardPlan, opts ...RunOption) (*kb.Shard, error) {
	var rs runSettings
	for _, opt := range opts {
		opt(&rs)
	}
	return experiment.RunShard(ctx, e.experimentConfig(rs.progress), ds, datasetName, experiment.ShardRun{
		Plan:          plan,
		Combos:        e.combos,
		MixedSeverity: e.mixedSeverity,
		CheckpointDir: rs.checkpoint,
	})
}

// ---- Advice + mining (Figure 2, right side) ----

// Advisor is one online advice session: a read-only handle pinned to the
// knowledge-base snapshot current at creation. All its methods are
// lock-free reads, safe to call from any number of goroutines, and keep
// answering from the same consistent KB even while the engine re-runs
// experiments or loads a different knowledge base.
type Advisor struct {
	snap *kb.Snapshot
	seed int64
}

// Advisor opens an advice session against the current snapshot. It fails
// with an error matching oberr.ErrEmptyKB when no experiments have been
// run or loaded yet.
func (e *Engine) Advisor() (*Advisor, error) {
	s := e.snap.Load()
	if s.Len() == 0 {
		return nil, fmt.Errorf("core: %w; run experiments first", oberr.ErrEmptyKB)
	}
	return &Advisor{snap: s, seed: e.seed}, nil
}

// KB returns the snapshot the session is pinned to.
func (a *Advisor) KB() *kb.Snapshot { return a.snap }

// Advise measures a source and ranks the suite's algorithms for it using
// the session's snapshot.
func (a *Advisor) Advise(ctx context.Context, src table.Access, classColumn string) (kb.Advice, *Model, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return kb.Advice{}, nil, err
		}
	}
	m, err := BuildModel(src, classColumn)
	if err != nil {
		return kb.Advice{}, nil, err
	}
	advice, err := a.snap.Advise(m.Profile)
	if err != nil {
		return kb.Advice{}, nil, err
	}
	return advice, m, nil
}

// MiningResult is the outcome of MineWithAdvice.
type MiningResult struct {
	Algorithm string
	Metrics   eval.Metrics
	// Advice is the full ranking that selected Algorithm.
	Advice kb.Advice
	// Model is the annotated common representation measured for the
	// advice — returned so callers need not profile the source again.
	Model *Model
	// Shared is the result re-exported as LOD: one entity per test
	// instance with its predicted label.
	Shared *rdf.Graph
}

// MineWithAdvice runs the full user path: advise on the source, train the
// recommended algorithm on a stratified 70/30 split, evaluate, and share
// predictions as LOD under the given base IRI. The source is profiled
// exactly once; the resulting Model and Advice ride along in the result.
// Cancellation is checked between the profile, training and sharing
// stages.
func (a *Advisor) MineWithAdvice(ctx context.Context, src table.Access, classColumn, baseIRI string) (*MiningResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t := src.Materialize()
	advice, model, err := a.Advise(ctx, t, classColumn)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	best := advice.Best().Algorithm
	factory, err := mining.Lookup(best, a.seed)
	if err != nil {
		return nil, err
	}
	ds, err := mining.NewDatasetByName(t, classColumn)
	if err != nil {
		return nil, err
	}
	trainRows, testRows, err := eval.TrainTestSplit(ds, 0.3, a.seed)
	if err != nil {
		return nil, err
	}
	train, test := ds.Subset(trainRows), ds.Subset(testRows)
	metrics, _, err := eval.Holdout(factory, train, test)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Share: predictions on the test split go back out as LOD.
	clf := factory()
	if err := clf.Fit(train); err != nil {
		return nil, err
	}
	shared := t.SelectRows(testRows)
	pred := table.NewNominalColumn("predicted_" + classColumn)
	for r := 0; r < test.Len(); r++ {
		pred.AppendLabel(test.ClassName(clf.Predict(test, r)))
	}
	shared.MustAddColumn(pred)
	if baseIRI == "" {
		baseIRI = "http://openbi.example.org/"
	}
	g := rdf.TableToGraph(shared, baseIRI, sanitizeClassName(t.Name))

	// Provenance triples: the shared predictions carry the lineage they
	// were derived under — the knowledge base's Merkle root (the value a
	// kb.json.manifest pins), the exact source contents, and the toolchain —
	// so a consumer of the LOD can trace every prediction back to a
	// verifiable advisor state.
	srcHash := sha256.New()
	_ = table.WriteCSV(srcHash, t)
	prov := rdf.NewIRI(baseIRI + "provenance/" + sanitizeClassName(t.Name))
	if root := a.snap.ProvenanceRoot(); root != "" {
		g.Add(rdf.Triple{S: prov, P: rdf.NewIRI(baseIRI + "def/kbMerkleRoot"), O: rdf.NewLiteral(root)})
	}
	g.Add(rdf.Triple{S: prov, P: rdf.NewIRI(baseIRI + "def/sourceSha256"), O: rdf.NewLiteral(hex.EncodeToString(srcHash.Sum(nil)))})
	g.Add(rdf.Triple{S: prov, P: rdf.NewIRI(baseIRI + "def/toolchain"), O: rdf.NewLiteral(runtime.Version())})
	return &MiningResult{Algorithm: best, Metrics: metrics, Advice: advice, Model: model, Shared: g}, nil
}

// Advise measures a source and ranks the suite's algorithms for it using
// the engine's current snapshot. For several queries against one
// consistent KB view, open an Advisor session instead.
func (e *Engine) Advise(ctx context.Context, src table.Access, classColumn string) (kb.Advice, *Model, error) {
	a := &Advisor{snap: e.snap.Load(), seed: e.seed}
	return a.Advise(ctx, src, classColumn)
}

// MineWithAdvice is Advisor.MineWithAdvice against the engine's current
// snapshot.
func (e *Engine) MineWithAdvice(ctx context.Context, src table.Access, classColumn, baseIRI string) (*MiningResult, error) {
	a := &Advisor{snap: e.snap.Load(), seed: e.seed}
	return a.MineWithAdvice(ctx, src, classColumn, baseIRI)
}

// ---- KB persistence ----

// SaveKB writes the knowledge base to w.
func (e *Engine) SaveKB(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.Save(w)
}

// LoadKB replaces the engine's knowledge base with one read from r and
// publishes it atomically; existing Advisor sessions keep their snapshot.
func (e *Engine) LoadKB(r io.Reader) error {
	loaded, err := kb.Load(r)
	if err != nil {
		return err
	}
	return e.ReplaceKB(loaded)
}

// ReplaceKB swaps in an already-built knowledge base — typically the
// output of kb.Merge over shard files — and publishes it atomically;
// existing Advisor sessions keep their snapshot. The engine takes
// ownership of k; the caller must not mutate it afterwards.
func (e *Engine) ReplaceKB(k *kb.KnowledgeBase) error {
	if k == nil {
		return fmt.Errorf("core: %w", &oberr.ConfigError{
			Field: "ReplaceKB", Reason: "knowledge base must not be nil"})
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.store = k
	e.snap.Store(k.Snapshot())
	return nil
}
