package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"openbi/internal/dq"
	"openbi/internal/oberr"
	"openbi/internal/rdf"
	"openbi/internal/synth"
	"openbi/internal/table"
)

// lodNT serializes a synthetic municipal LOD graph to N-Triples bytes.
func lodNT(t *testing.T, spec synth.LODSpec) (*rdf.Graph, []byte) {
	t.Helper()
	g, err := synth.MunicipalBudgetLOD(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	return g, buf.Bytes()
}

// TestIngestLODMatchesBatchPath: the single-pass streaming ingestion must
// reproduce exactly what the batch path (load graph, MeasureLOD,
// ProjectLargestClass) computes — profile equal, table byte-identical.
func TestIngestLODMatchesBatchPath(t *testing.T) {
	g, nt := lodNT(t, synth.LODSpec{Entities: 150, Seed: 5, Dirtiness: 0.25})

	ing, err := IngestLOD(bytes.NewReader(nt), "nt", rdf.ProjectOptions{LargestClass: true})
	if err != nil {
		t.Fatal(err)
	}
	if ing.Profile != dq.MeasureLOD(g) {
		t.Fatalf("streamed profile %+v != batch %+v", ing.Profile, dq.MeasureLOD(g))
	}
	if ing.Triples != g.Len() {
		t.Fatalf("raw triple count %d != %d (generator emits no duplicates)", ing.Triples, g.Len())
	}
	batchT, err := ProjectLargestClass(g)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := table.WriteCSV(&want, batchT); err != nil {
		t.Fatal(err)
	}
	if err := table.WriteCSV(&got, ing.Table); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("streamed projection differs from batch:\n--- stream\n%s\n--- batch\n%s",
			got.String(), want.String())
	}
}

// TestIngestLODBadInput: syntax errors surface with the oberr taxonomy.
func TestIngestLODBadInput(t *testing.T) {
	_, err := IngestLOD(bytes.NewReader([]byte("this is not rdf\n")), "nt", rdf.ProjectOptions{})
	if !errors.Is(err, oberr.ErrBadSyntax) {
		t.Fatalf("want ErrBadSyntax, got %v", err)
	}
	_, err = IngestLOD(bytes.NewReader(nil), "parquet", rdf.ProjectOptions{})
	if !errors.Is(err, oberr.ErrUnsupportedFormat) {
		t.Fatalf("want ErrUnsupportedFormat, got %v", err)
	}
}

// TestWithLODCorpus: an RDF stream registered at New becomes a runnable
// corpus; a bad class column or bad syntax fails New eagerly.
func TestWithLODCorpus(t *testing.T) {
	_, nt := lodNT(t, synth.LODSpec{Entities: 60, Seed: 9})
	eng, err := New(
		WithSeed(1), WithFolds(2), WithAlgorithms("zero-r", "one-r"),
		WithCombos([][]dq.Criterion{{dq.Completeness, dq.Imbalance}}),
		WithLODCorpus("municipal", bytes.NewReader(nt), "nt", "fundingLevel"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Corpora(); len(got) != 1 || got[0] != "municipal" {
		t.Fatalf("Corpora() = %v", got)
	}
	rep, err := eng.RunCorpora(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phase1Records == 0 || rep.Phase2Records == 0 {
		t.Fatalf("LOD corpus produced an empty grid: %+v", rep)
	}
	if eng.KB().Len() != rep.Phase1Records+rep.Phase2Records {
		t.Fatalf("KB records %d != %d+%d", eng.KB().Len(), rep.Phase1Records, rep.Phase2Records)
	}

	_, err = New(WithLODCorpus("municipal", bytes.NewReader(nt), "nt", "noSuchColumn"))
	if !errors.Is(err, oberr.ErrColumnNotFound) {
		t.Fatalf("bad class column: want ErrColumnNotFound, got %v", err)
	}
	_, err = New(WithLODCorpus("junk", bytes.NewReader([]byte("junk\n")), "nt", "fundingLevel"))
	if !errors.Is(err, oberr.ErrBadSyntax) {
		t.Fatalf("bad stream: want ErrBadSyntax, got %v", err)
	}
}
