package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"openbi/internal/dq"
	"openbi/internal/experiment"
	"openbi/internal/inject"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/rdf"
	"openbi/internal/synth"
)

// writeTemp drops content into a temp file with the given name and returns
// its path.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIngestFileCSV(t *testing.T) {
	e := NewEngine(1)
	path := writeTemp(t, "data.csv", "a,b\n1,x\n2,y\n")
	tb, err := e.IngestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 || tb.Name != "data" {
		t.Fatalf("csv ingest: %d rows name %q", tb.NumRows(), tb.Name)
	}
}

func TestIngestFileXMLAndHTML(t *testing.T) {
	e := NewEngine(1)
	xml := writeTemp(t, "d.xml", "<r><e><v>1</v></e><e><v>2</v></e></r>")
	if tb, err := e.IngestFile(xml); err != nil || tb.NumRows() != 2 {
		t.Fatalf("xml ingest: %v", err)
	}
	html := writeTemp(t, "d.html", "<table><tr><th>v</th></tr><tr><td>1</td></tr></table>")
	if tb, err := e.IngestFile(html); err != nil || tb.NumRows() != 1 {
		t.Fatalf("html ingest: %v", err)
	}
}

func TestIngestFileNTriplesProjectsLargestClass(t *testing.T) {
	e := NewEngine(1)
	nt := `<http://x/a1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Big> .
<http://x/a2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Big> .
<http://x/b1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Small> .
<http://x/a1> <http://x/v> "1" .
<http://x/a2> <http://x/v> "2" .
<http://x/b1> <http://x/v> "9" .
`
	path := writeTemp(t, "d.nt", nt)
	tb, err := e.IngestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Name != "Big" || tb.NumRows() != 2 {
		t.Fatalf("projected %q with %d rows, want Big/2", tb.Name, tb.NumRows())
	}
}

func TestIngestFileUnsupported(t *testing.T) {
	e := NewEngine(1)
	path := writeTemp(t, "d.parquet", "xx")
	if _, err := e.IngestFile(path); err == nil {
		t.Fatal("unsupported extension should error")
	}
	if _, err := e.IngestFile(filepath.Join(t.TempDir(), "absent.csv")); err == nil {
		t.Fatal("absent file should error")
	}
}

func TestBuildModelAnnotates(t *testing.T) {
	e := NewEngine(1)
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 120, Seed: 2})
	m, err := e.BuildModel(ds.T, "class")
	if err != nil {
		t.Fatal(err)
	}
	def := m.Catalog.Table(ds.Table().Name)
	if def == nil {
		t.Fatal("catalog missing table def")
	}
	if _, ok := def.AnnotationValue(dq.AnnCompleteness); !ok {
		t.Fatal("model not annotated")
	}
	sev := dq.SeveritiesFromModel(def)
	for _, c := range dq.AllCriteria() {
		if sev[c] != m.Profile.Severity(c) {
			t.Fatalf("model severity mismatch for %v", c)
		}
	}
}

func TestBuildModelUnknownClass(t *testing.T) {
	e := NewEngine(1)
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 50, Seed: 3})
	if _, err := e.BuildModel(ds.T, "ghost"); err == nil {
		t.Fatal("unknown class column should error")
	}
}

// populateKB runs a tiny Phase-1 so advice tests have a knowledge base.
func populateKB(t *testing.T, e *Engine, ds *mining.Dataset) {
	t.Helper()
	cfg := experiment.Config{
		Algorithms: map[string]mining.Factory{
			"naive-bayes": func() mining.Classifier { return mining.NewNaiveBayes() },
			"c45":         func() mining.Classifier { return mining.NewC45Tree() },
		},
		Criteria:   []dq.Criterion{dq.LabelNoise, dq.Completeness},
		Severities: []float64{0, 0.25, 0.5},
		Folds:      3,
		Seed:       e.Seed,
	}
	recs, err := experiment.Phase1(cfg, ds, "core-test")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		e.KB.Add(r)
	}
}

func TestAdviseEndToEnd(t *testing.T) {
	e := NewEngine(4)
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 240, Seed: 4})
	populateKB(t, e, ds)

	dirty, err := CorruptForDemo(ds.T, "class",
		[]inject.Spec{{Criterion: dq.LabelNoise, Severity: 0.35}}, 9)
	if err != nil {
		t.Fatal(err)
	}
	advice, model, err := e.Advise(dirty, "class")
	if err != nil {
		t.Fatal(err)
	}
	if len(advice.Ranked) != 2 {
		t.Fatalf("ranked = %d", len(advice.Ranked))
	}
	if model.Profile.Severity(dq.LabelNoise) < 0.2 {
		t.Fatalf("profile did not detect the injected noise: %v",
			model.Profile.Severity(dq.LabelNoise))
	}
	best := advice.Best()
	if best.PredictedKappa > best.BaselineKappa {
		t.Fatal("noise should not improve predicted kappa")
	}
}

func TestAdviseEmptyKBFails(t *testing.T) {
	e := NewEngine(1)
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 60, Seed: 5})
	if _, _, err := e.Advise(ds.T, "class"); err == nil {
		t.Fatal("advice without KB should error")
	}
}

func TestRunExperimentsPopulatesKB(t *testing.T) {
	e := NewEngine(6)
	e.Folds = 3
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 150, Seed: 6})
	rep, err := e.RunExperiments(ds, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phase1Records == 0 || rep.Phase2Records == 0 || len(rep.Mixed) == 0 {
		t.Fatalf("report: %+v", rep)
	}
	if e.KB.Len() != rep.Phase1Records+rep.Phase2Records {
		t.Fatalf("KB size %d != %d+%d", e.KB.Len(), rep.Phase1Records, rep.Phase2Records)
	}
}

func TestMineWithAdviceSharesLOD(t *testing.T) {
	e := NewEngine(7)
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 240, Seed: 7})
	populateKB(t, e, ds)

	res, err := e.MineWithAdvice(ds.T, "class", "http://test.example/")
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm == "" {
		t.Fatal("no algorithm chosen")
	}
	if res.Metrics.Accuracy < 0.6 {
		t.Fatalf("advised mining accuracy = %v", res.Metrics.Accuracy)
	}
	if res.Shared == nil || res.Shared.Len() == 0 {
		t.Fatal("shared LOD empty")
	}
	// Shared graph contains predicted labels.
	pred := rdf.NewIRI("http://test.example/def/predicted_class")
	found := false
	for _, tr := range res.Shared.Triples() {
		if tr.P == pred {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("shared LOD lacks predicted_class triples")
	}
}

func TestKBSaveLoadThroughEngine(t *testing.T) {
	e := NewEngine(8)
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 150, Seed: 8})
	populateKB(t, e, ds)

	var buf bytes.Buffer
	if err := e.SaveKB(&buf); err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(8)
	if err := e2.LoadKB(&buf); err != nil {
		t.Fatal(err)
	}
	if e2.KB.Len() != e.KB.Len() {
		t.Fatalf("KB roundtrip %d != %d", e2.KB.Len(), e.KB.Len())
	}
	if err := e2.LoadKB(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk KB should error")
	}
	_ = kb.New() // keep import for clarity of what LoadKB replaces
}

func TestProjectLargestClassNoTypes(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: rdf.NewIRI("http://a"), P: rdf.NewIRI("http://p"), O: rdf.NewLiteral("1")})
	tb, err := ProjectLargestClass(g)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("typeless projection rows = %d", tb.NumRows())
	}
}
