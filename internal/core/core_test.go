package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"openbi/internal/dq"
	"openbi/internal/experiment"
	"openbi/internal/inject"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/oberr"
	"openbi/internal/rdf"
	"openbi/internal/synth"
)

// writeTemp drops content into a temp file with the given name and returns
// its path.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// newEngine builds an engine for tests, failing the test on bad options.
func newEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	e, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestIngestFileCSV(t *testing.T) {
	path := writeTemp(t, "data.csv", "a,b\n1,x\n2,y\n")
	tb, err := IngestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 || tb.Name != "data" {
		t.Fatalf("csv ingest: %d rows name %q", tb.NumRows(), tb.Name)
	}
}

func TestIngestFileXMLAndHTML(t *testing.T) {
	// The Engine method delegates to the package function; exercise both.
	e := newEngine(t)
	xml := writeTemp(t, "d.xml", "<r><e><v>1</v></e><e><v>2</v></e></r>")
	if tb, err := e.IngestFile(xml); err != nil || tb.NumRows() != 2 {
		t.Fatalf("xml ingest: %v", err)
	}
	html := writeTemp(t, "d.html", "<table><tr><th>v</th></tr><tr><td>1</td></tr></table>")
	if tb, err := IngestFile(html); err != nil || tb.NumRows() != 1 {
		t.Fatalf("html ingest: %v", err)
	}
}

func TestIngestFileNTriplesProjectsLargestClass(t *testing.T) {
	nt := `<http://x/a1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Big> .
<http://x/a2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Big> .
<http://x/b1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Small> .
<http://x/a1> <http://x/v> "1" .
<http://x/a2> <http://x/v> "2" .
<http://x/b1> <http://x/v> "9" .
`
	path := writeTemp(t, "d.nt", nt)
	tb, err := IngestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Name != "Big" || tb.NumRows() != 2 {
		t.Fatalf("projected %q with %d rows, want Big/2", tb.Name, tb.NumRows())
	}
}

func TestIngestFileUnsupported(t *testing.T) {
	path := writeTemp(t, "d.parquet", "xx")
	_, err := IngestFile(path)
	if !errors.Is(err, oberr.ErrUnsupportedFormat) {
		t.Fatalf("err = %v, want ErrUnsupportedFormat", err)
	}
	var ufe *oberr.UnsupportedFormatError
	if !errors.As(err, &ufe) || ufe.Format != ".parquet" {
		t.Fatalf("detail lost: %v", err)
	}
	if _, err := IngestFile(filepath.Join(t.TempDir(), "absent.csv")); err == nil {
		t.Fatal("absent file should error")
	}
}

func TestBuildModelAnnotates(t *testing.T) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 120, Seed: 2})
	m, err := BuildModel(ds.T, "class")
	if err != nil {
		t.Fatal(err)
	}
	def := m.Catalog.Table(ds.Table().Name)
	if def == nil {
		t.Fatal("catalog missing table def")
	}
	if _, ok := def.AnnotationValue(dq.AnnCompleteness); !ok {
		t.Fatal("model not annotated")
	}
	sev := dq.SeveritiesFromModel(def)
	for _, c := range dq.AllCriteria() {
		if sev[c] != m.Profile.Severity(c) {
			t.Fatalf("model severity mismatch for %v", c)
		}
	}
}

func TestBuildModelUnknownClass(t *testing.T) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 50, Seed: 3})
	_, err := BuildModel(ds.T, "ghost")
	if !errors.Is(err, oberr.ErrColumnNotFound) {
		t.Fatalf("err = %v, want ErrColumnNotFound", err)
	}
	var cnf *oberr.ColumnNotFoundError
	if !errors.As(err, &cnf) || cnf.Column != "ghost" {
		t.Fatalf("detail lost: %v", err)
	}
}

func TestCorruptForDemoUnknownClass(t *testing.T) {
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 50, Seed: 3})
	// A misspelled class column must fail loudly instead of silently
	// injecting without class protection.
	_, err := CorruptForDemo(ds.T, "ghost",
		[]inject.Spec{{Criterion: dq.LabelNoise, Severity: 0.2}}, 1)
	if !errors.Is(err, oberr.ErrColumnNotFound) {
		t.Fatalf("err = %v, want ErrColumnNotFound", err)
	}
	// Empty classColumn still means "no class" and succeeds.
	if _, err := CorruptForDemo(ds.T, "",
		[]inject.Spec{{Criterion: dq.Completeness, Severity: 0.2}}, 1); err != nil {
		t.Fatalf("classless corruption failed: %v", err)
	}
}

func TestEngineOptionValidation(t *testing.T) {
	if _, err := New(WithFolds(1)); !errors.Is(err, oberr.ErrBadConfig) {
		t.Fatalf("folds=1 err = %v, want ErrBadConfig", err)
	}
	if _, err := New(WithWorkers(-1)); !errors.Is(err, oberr.ErrBadConfig) {
		t.Fatalf("workers=-1 err = %v, want ErrBadConfig", err)
	}
	if _, err := New(WithCombos([][]dq.Criterion{{dq.Completeness}})); !errors.Is(err, oberr.ErrBadConfig) {
		t.Fatalf("1-combo err = %v, want ErrBadConfig", err)
	}
	_, err := New(WithAlgorithms("c45", "j48"))
	if !errors.Is(err, oberr.ErrUnknownAlgorithm) {
		t.Fatalf("unknown algorithm err = %v, want ErrUnknownAlgorithm", err)
	}
	var ua *oberr.UnknownAlgorithmError
	if !errors.As(err, &ua) || ua.Name != "j48" || len(ua.Known) != 8 {
		t.Fatalf("detail lost: %v", err)
	}

	e := newEngine(t, WithSeed(9), WithFolds(3), WithWorkers(2), WithAlgorithms("c45", "naive-bayes"))
	if e.Seed() != 9 || e.Folds() != 3 || e.Workers() != 2 {
		t.Fatalf("accessors: seed=%d folds=%d workers=%d", e.Seed(), e.Folds(), e.Workers())
	}
}

func TestDeprecatedNewEngineShim(t *testing.T) {
	e := NewEngine(42)
	if e.Seed() != 42 || e.Folds() != 5 || e.Workers() != 0 {
		t.Fatalf("shim defaults: seed=%d folds=%d workers=%d", e.Seed(), e.Folds(), e.Workers())
	}
	if e.KB().Len() != 0 {
		t.Fatal("fresh engine should publish an empty snapshot")
	}
}

// populateKB runs a tiny Phase-1 and loads the records into the engine via
// the persistence path (the only write entry points are RunExperiments and
// LoadKB by design).
func populateKB(t *testing.T, e *Engine, ds *mining.Dataset) {
	t.Helper()
	cfg := experiment.Config{
		Algorithms: map[string]mining.Factory{
			"naive-bayes": func() mining.Classifier { return mining.NewNaiveBayes() },
			"c45":         func() mining.Classifier { return mining.NewC45Tree() },
		},
		Criteria:   []dq.Criterion{dq.LabelNoise, dq.Completeness},
		Severities: []float64{0, 0.25, 0.5},
		Folds:      3,
		Seed:       e.Seed(),
	}
	recs, err := experiment.Phase1(context.Background(), cfg, ds, "core-test")
	if err != nil {
		t.Fatal(err)
	}
	store := kb.New()
	for _, r := range recs {
		store.Add(r)
	}
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadKB(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAdviseEndToEnd(t *testing.T) {
	e := newEngine(t, WithSeed(4))
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 240, Seed: 4})
	populateKB(t, e, ds)

	dirty, err := CorruptForDemo(ds.T, "class",
		[]inject.Spec{{Criterion: dq.LabelNoise, Severity: 0.35}}, 9)
	if err != nil {
		t.Fatal(err)
	}
	advice, model, err := e.Advise(context.Background(), dirty, "class")
	if err != nil {
		t.Fatal(err)
	}
	if len(advice.Ranked) != 2 {
		t.Fatalf("ranked = %d", len(advice.Ranked))
	}
	if model.Profile.Severity(dq.LabelNoise) < 0.2 {
		t.Fatalf("profile did not detect the injected noise: %v",
			model.Profile.Severity(dq.LabelNoise))
	}
	best := advice.Best()
	if best.PredictedKappa > best.BaselineKappa {
		t.Fatal("noise should not improve predicted kappa")
	}
}

func TestAdviseEmptyKBFails(t *testing.T) {
	e := newEngine(t)
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 60, Seed: 5})
	_, _, err := e.Advise(context.Background(), ds.T, "class")
	if !errors.Is(err, oberr.ErrEmptyKB) {
		t.Fatalf("err = %v, want ErrEmptyKB", err)
	}
	if _, err := e.Advisor(); !errors.Is(err, oberr.ErrEmptyKB) {
		t.Fatalf("Advisor err = %v, want ErrEmptyKB", err)
	}
}

func TestRunExperimentsPopulatesKB(t *testing.T) {
	e := newEngine(t, WithSeed(6), WithFolds(3))
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 150, Seed: 6})
	rep, err := e.RunExperiments(context.Background(), ds, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phase1Records == 0 || rep.Phase2Records == 0 || len(rep.Mixed) == 0 {
		t.Fatalf("report: %+v", rep)
	}
	if e.KB().Len() != rep.Phase1Records+rep.Phase2Records {
		t.Fatalf("KB size %d != %d+%d", e.KB().Len(), rep.Phase1Records, rep.Phase2Records)
	}
}

func TestRunExperimentsCancellation(t *testing.T) {
	e := newEngine(t, WithSeed(6), WithFolds(3), WithWorkers(1))
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 150, Seed: 6})
	ctx, cancel := context.WithCancel(context.Background())
	_, err := e.RunExperiments(ctx, ds, "tiny",
		WithProgress(func(experiment.Event) { cancel() }))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e.KB().Len() != 0 {
		t.Fatal("canceled run must not publish records")
	}
	// The run is all-or-nothing: retrying after a cancellation must yield
	// exactly one run's worth of records, not leftovers plus a rerun.
	rep, err := e.RunExperiments(context.Background(), ds, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if e.KB().Len() != rep.Phase1Records+rep.Phase2Records {
		t.Fatalf("retry duplicated records: KB %d != %d+%d",
			e.KB().Len(), rep.Phase1Records, rep.Phase2Records)
	}
}

// TestRunExperimentsPhase2CancellationRollsBack cancels after Phase 1
// completes (first Phase-2 event): no records at all may be committed.
func TestRunExperimentsPhase2CancellationRollsBack(t *testing.T) {
	e := newEngine(t, WithSeed(6), WithFolds(2), WithWorkers(1),
		WithAlgorithms("naive-bayes"),
		WithCombos([][]dq.Criterion{{dq.Completeness, dq.LabelNoise}, {dq.Completeness, dq.Imbalance}}))
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 120, Seed: 6})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := e.RunExperiments(ctx, ds, "tiny",
		WithProgress(func(ev experiment.Event) {
			if ev.Phase == 2 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e.KB().Len() != 0 {
		t.Fatalf("Phase-2 cancellation leaked %d records into the store", e.KB().Len())
	}
}

func TestRunExperimentsProgressStreams(t *testing.T) {
	e := newEngine(t, WithSeed(6), WithFolds(2), WithAlgorithms("naive-bayes"),
		WithCombos([][]dq.Criterion{{dq.Completeness, dq.LabelNoise}}))
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 120, Seed: 6})
	var phase1, phase2 int
	rep, err := e.RunExperiments(context.Background(), ds, "tiny",
		WithProgress(func(ev experiment.Event) {
			switch ev.Phase {
			case 1:
				phase1++
			case 2:
				phase2++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if phase1 != rep.Phase1Records || phase2 != rep.Phase2Records {
		t.Fatalf("events %d/%d, records %d/%d", phase1, phase2, rep.Phase1Records, rep.Phase2Records)
	}
}

func TestMineWithAdviceSharesLOD(t *testing.T) {
	e := newEngine(t, WithSeed(7))
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 240, Seed: 7})
	populateKB(t, e, ds)

	res, err := e.MineWithAdvice(context.Background(), ds.T, "class", "http://test.example/")
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm == "" {
		t.Fatal("no algorithm chosen")
	}
	if res.Metrics.Accuracy < 0.6 {
		t.Fatalf("advised mining accuracy = %v", res.Metrics.Accuracy)
	}
	// The model and advice are threaded through so the caller never has to
	// profile the source a second time.
	if res.Model == nil || res.Model.Profile.Rows != ds.Len() {
		t.Fatalf("mining result lacks the profiled model: %+v", res.Model)
	}
	if res.Advice.Best().Algorithm != res.Algorithm {
		t.Fatal("result advice does not match the chosen algorithm")
	}
	if res.Shared == nil || res.Shared.Len() == 0 {
		t.Fatal("shared LOD empty")
	}
	// Shared graph contains predicted labels.
	pred := rdf.NewIRI("http://test.example/def/predicted_class")
	found := false
	for _, tr := range res.Shared.Triples() {
		if tr.P == pred {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("shared LOD lacks predicted_class triples")
	}
	// Shared graph carries provenance: the KB Merkle root the advice was
	// served from, the source content hash, and the toolchain.
	wantProv := map[rdf.Term]bool{
		rdf.NewIRI("http://test.example/def/kbMerkleRoot"): false,
		rdf.NewIRI("http://test.example/def/sourceSha256"): false,
		rdf.NewIRI("http://test.example/def/toolchain"):    false,
	}
	for _, tr := range res.Shared.Triples() {
		if _, ok := wantProv[tr.P]; ok {
			wantProv[tr.P] = true
		}
	}
	for p, ok := range wantProv {
		if !ok {
			t.Fatalf("shared LOD lacks provenance triple %v", p)
		}
	}
	if root := e.KB().ProvenanceRoot(); root == "" {
		t.Fatal("populated snapshot has no provenance root")
	}
}

func TestKBSaveLoadThroughEngine(t *testing.T) {
	e := newEngine(t, WithSeed(8))
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 150, Seed: 8})
	populateKB(t, e, ds)

	var buf bytes.Buffer
	if err := e.SaveKB(&buf); err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(t, WithSeed(8))
	if err := e2.LoadKB(&buf); err != nil {
		t.Fatal(err)
	}
	if e2.KB().Len() != e.KB().Len() {
		t.Fatalf("KB roundtrip %d != %d", e2.KB().Len(), e.KB().Len())
	}
	if err := e2.LoadKB(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk KB should error")
	}
}

// TestAdvisorSessionPinnedToSnapshot: an open session keeps serving from
// its snapshot even after the engine's KB is replaced.
func TestAdvisorSessionPinnedToSnapshot(t *testing.T) {
	e := newEngine(t, WithSeed(4))
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 240, Seed: 4})
	populateKB(t, e, ds)

	adv, err := e.Advisor()
	if err != nil {
		t.Fatal(err)
	}
	before := adv.KB().Len()

	// Replace the engine's KB with an empty one.
	empty := kb.New()
	var buf bytes.Buffer
	if err := empty.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadKB(&buf); err != nil {
		t.Fatal(err)
	}
	if e.KB().Len() != 0 {
		t.Fatal("engine should now serve the empty KB")
	}
	if adv.KB().Len() != before {
		t.Fatal("advisor session lost its pinned snapshot")
	}
	if _, _, err := adv.Advise(context.Background(), ds.T, "class"); err != nil {
		t.Fatalf("pinned session stopped serving: %v", err)
	}
}

// TestConcurrentServing hammers one populated engine with parallel Advise
// and MineWithAdvice calls while a LoadKB swaps the knowledge base
// mid-flight. Run under -race this is the serving-safety contract of the
// redesign: immutable snapshots + atomic publication.
func TestConcurrentServing(t *testing.T) {
	e := newEngine(t, WithSeed(4))
	ds := synth.MustMakeClassification(synth.ClassificationSpec{Rows: 240, Seed: 4})
	populateKB(t, e, ds)

	var kbBytes bytes.Buffer
	if err := e.SaveKB(&kbBytes); err != nil {
		t.Fatal(err)
	}

	dirty, err := CorruptForDemo(ds.T, "class",
		[]inject.Spec{{Criterion: dq.LabelNoise, Severity: 0.3}}, 9)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				advice, _, err := e.Advise(ctx, dirty, "class")
				if err != nil || advice.Best().Algorithm == "" {
					t.Errorf("goroutine %d: advise: %v", g, err)
					return
				}
				if g%2 == 0 {
					res, err := e.MineWithAdvice(ctx, dirty, "class", "http://t.example/")
					if err != nil || res.Shared.Len() == 0 {
						t.Errorf("goroutine %d: mine: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	// Concurrent write side: re-publish the same KB while readers serve.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := e.LoadKB(bytes.NewReader(kbBytes.Bytes())); err != nil {
				t.Errorf("LoadKB: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestProjectLargestClassNoTypes(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: rdf.NewIRI("http://a"), P: rdf.NewIRI("http://p"), O: rdf.NewLiteral("1")})
	tb, err := ProjectLargestClass(g)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("typeless projection rows = %d", tb.NumRows())
	}
}
