// Package report renders the tables and "figures" of the reproduction:
// aligned plain-text tables, Markdown tables, CSV export and ASCII line /
// bar charts. Every experiment's output goes through this package so that
// CLI output, EXPERIMENTS.md extracts and test goldens agree.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple row-major string table with a header.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns an empty table with the given title and header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64 format as %.3f, ints as %d.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			cells[i] = x
		case float64:
			if math.IsNaN(x) {
				cells[i] = "-"
			} else {
				cells[i] = fmt.Sprintf("%.3f", x)
			}
		case int:
			cells[i] = fmt.Sprintf("%d", x)
		case int64:
			cells[i] = fmt.Sprintf("%d", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.AddRow(cells...)
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the table as a GitHub-flavoured Markdown table.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as CSV (no quoting beyond the minimum: cells with
// commas or quotes are quoted).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one named line of an ASCII chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LineChart renders series as an ASCII chart of the given size — the
// "figure" rendering for degradation curves. Each series draws with its
// own marker; a legend follows the plot.
func LineChart(w io.Writer, title string, series []Series, width, height int) error {
	if width < 16 {
		width = 60
	}
	if height < 4 {
		height = 16
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '^'}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("report: chart %q has no data", title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, m byte) {
		cx := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		cy := int(math.Round((y - minY) / (maxY - minY) * float64(height-1)))
		row := height - 1 - cy
		if row >= 0 && row < height && cx >= 0 && cx < width {
			grid[row][cx] = m
		}
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			plot(s.X[i], s.Y[i], m)
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, row := range grid {
		label := "        "
		if i == 0 {
			label = fmt.Sprintf("%7.3f ", maxY)
		} else if i == height-1 {
			label = fmt.Sprintf("%7.3f ", minY)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        %-10.3g%*s\n", minX, width-2, fmt.Sprintf("%.3g", maxX))
	for si, s := range series {
		fmt.Fprintf(&b, "        %c %s\n", markers[si%len(markers)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BarChart renders a horizontal ASCII bar chart of labelled values.
func BarChart(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("report: bar chart %q: %d labels vs %d values", title, len(labels), len(values))
	}
	if width < 10 {
		width = 40
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if math.Abs(v) > maxV {
			maxV = math.Abs(v)
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := int(math.Round(math.Abs(v) / maxV * float64(width)))
		fmt.Fprintf(&b, "%-*s |%s %.3f\n", maxL, labels[i], strings.Repeat("=", n), v)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
