package report

import (
	"math"
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("Results", "algorithm", "kappa", "n")
	t.AddRowf("naive-bayes", 0.8125, 200)
	t.AddRowf("c45", 0.54, 200)
	t.AddRowf("zero-r", math.NaN(), 200)
	return t
}

func TestRenderAligned(t *testing.T) {
	var b strings.Builder
	if err := sample().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Results" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "algorithm") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[3], "0.812") {
		t.Fatalf("float formatting: %q", lines[3])
	}
	if !strings.Contains(out, "-\n") && !strings.Contains(lines[5], "-") {
		t.Fatal("NaN should render as -")
	}
	// Alignment: all rows equal width per column -> header starts of col 2 align.
	idx := strings.Index(lines[1], "kappa")
	for _, ln := range lines[3:] {
		if len(ln) < idx {
			t.Fatalf("row shorter than header: %q", ln)
		}
	}
}

func TestAddRowPadsShortRows(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("only")
	if len(tab.Rows[0]) != 3 {
		t.Fatalf("row = %v", tab.Rows[0])
	}
}

func TestMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sample().Markdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "| algorithm | kappa | n |") {
		t.Fatalf("markdown header:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Fatalf("markdown separator:\n%s", out)
	}
	if !strings.Contains(out, "**Results**") {
		t.Fatalf("markdown title:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := NewTable("", "name", "note")
	tab.AddRow("a,b", `say "hi"`)
	var b strings.Builder
	if err := tab.CSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"a,b"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Fatalf("quote cell not escaped: %s", out)
	}
}

func TestLineChartRendersSeries(t *testing.T) {
	var b strings.Builder
	err := LineChart(&b, "Degradation", []Series{
		{Name: "nb", X: []float64{0, 0.2, 0.4}, Y: []float64{0.8, 0.6, 0.3}},
		{Name: "tree", X: []float64{0, 0.2, 0.4}, Y: []float64{0.7, 0.65, 0.6}},
	}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Degradation") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* nb") || !strings.Contains(out, "o tree") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers missing")
	}
	// Axis labels carry min/max of Y.
	if !strings.Contains(out, "0.800") || !strings.Contains(out, "0.300") {
		t.Fatalf("y labels missing:\n%s", out)
	}
}

func TestLineChartEmpty(t *testing.T) {
	var b strings.Builder
	if err := LineChart(&b, "x", []Series{{Name: "e"}}, 20, 5); err == nil {
		t.Fatal("empty chart should error")
	}
}

func TestLineChartSkipsNaN(t *testing.T) {
	var b strings.Builder
	err := LineChart(&b, "n", []Series{
		{Name: "s", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), 3}},
	}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarChart(t *testing.T) {
	var b strings.Builder
	err := BarChart(&b, "Sensitivity", []string{"nb", "knn"}, []float64{0.5, 1.0}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	linesOut := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(linesOut) != 3 {
		t.Fatalf("bar chart lines = %d:\n%s", len(linesOut), out)
	}
	nbBars := strings.Count(linesOut[1], "=")
	knnBars := strings.Count(linesOut[2], "=")
	if knnBars != 20 || nbBars != 10 {
		t.Fatalf("bar lengths nb=%d knn=%d, want 10/20", nbBars, knnBars)
	}
}

func TestBarChartValidation(t *testing.T) {
	var b strings.Builder
	if err := BarChart(&b, "x", []string{"a"}, []float64{1, 2}, 10); err == nil {
		t.Fatal("mismatched labels/values should error")
	}
}

func TestTableCSVRoundLines(t *testing.T) {
	var b strings.Builder
	if err := sample().CSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d", len(lines))
	}
}
