package dq

import (
	"math"
	"testing"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// randomMixedTable builds a table with numeric, constant, and nominal
// columns (including an identifier-like one), ~15% missing cells, and a
// class column — every shape the fused Measure kernels dispatch on.
func randomMixedTable(seed int64, rows int) (*table.Table, int) {
	rng := stats.NewRand(seed)
	t := table.New("rand")
	n1 := table.NewNumericColumn("n1")
	n2 := table.NewNumericColumn("n2")
	cn := table.NewNumericColumn("const")
	c1 := table.NewNominalColumn("c1", "a", "b", "c")
	cls := table.NewNominalColumn("class", "x", "y")
	for i := 0; i < rows; i++ {
		n1.AppendFloat(rng.NormFloat64() * 10)
		n2.AppendFloat(float64(rng.Intn(5))) // ties for the quantile path
		cn.AppendFloat(3)
		c1.AppendCode(rng.Intn(3))
		cls.AppendCode(rng.Intn(2))
	}
	t.MustAddColumn(n1)
	t.MustAddColumn(n2)
	t.MustAddColumn(cn)
	t.MustAddColumn(c1)
	t.MustAddColumn(cls)
	for r := 0; r < rows; r++ {
		for j := 0; j < 4; j++ {
			if rng.Float64() < 0.15 {
				t.SetMissing(r, j)
			}
		}
	}
	return t, 4
}

// eq is exact equality with NaN == NaN (the fused kernels promise
// bit-identical results, not epsilon-close ones).
func eq(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestMeasureFusionMatchesReference checks every fused per-column measure
// against its unfused stats.* reference with ==.
func TestMeasureFusionMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tb, classCol := randomMixedTable(seed, 90)
		p := Measure(tb, MeasureOptions{ClassColumn: classCol})
		ci := 0
		for j := 0; j < tb.NumCols(); j++ {
			if j == classCol {
				continue
			}
			c := tb.Column(j)
			cp := p.Columns[ci]
			ci++
			wantCompleteness := float64(tb.NumRows()-c.MissingCount()) / float64(tb.NumRows())
			if !eq(cp.Completeness, wantCompleteness) {
				t.Fatalf("seed %d col %s: completeness %v != %v", seed, c.Name, cp.Completeness, wantCompleteness)
			}
			if c.Kind == table.Numeric {
				if !eq(cp.Mean, stats.Mean(c.Nums)) {
					t.Fatalf("seed %d col %s: mean %v != %v", seed, c.Name, cp.Mean, stats.Mean(c.Nums))
				}
				if !eq(cp.StdDev, stats.StdDev(c.Nums)) {
					t.Fatalf("seed %d col %s: stddev %v != %v", seed, c.Name, cp.StdDev, stats.StdDev(c.Nums))
				}
				if !eq(cp.OutlierRatio, stats.IQROutlierRatio(c.Nums, 1.5)) {
					t.Fatalf("seed %d col %s: outliers %v != %v", seed, c.Name, cp.OutlierRatio, stats.IQROutlierRatio(c.Nums, 1.5))
				}
			} else {
				if !eq(cp.Entropy, stats.Entropy(c.Counts())) {
					t.Fatalf("seed %d col %s: entropy %v != %v", seed, c.Name, cp.Entropy, stats.Entropy(c.Counts()))
				}
				if cp.Levels != c.NumLevels() {
					t.Fatalf("seed %d col %s: levels %d != %d", seed, c.Name, cp.Levels, c.NumLevels())
				}
			}
		}
	}
}

// refAssociation is the pre-memoization per-pair association: bins are
// recomputed for every pair. The cached path must match it exactly.
func refAssociation(t *table.Table, a, b int) float64 {
	ca, cb := t.Column(a), t.Column(b)
	switch {
	case ca.Kind == table.Numeric && cb.Kind == table.Numeric:
		return math.Abs(stats.Pearson(ca.Nums, cb.Nums))
	case ca.Kind == table.Nominal && cb.Kind == table.Nominal:
		return stats.CramersV(crossTab(ca.Cats, ca.NumLevels(), cb.Cats, cb.NumLevels()))
	case ca.Kind == table.Numeric:
		return stats.CramersV(crossTab(binNumeric(ca.Nums, 4), 4, cb.Cats, cb.NumLevels()))
	default:
		return stats.CramersV(crossTab(binNumeric(cb.Nums, 4), 4, ca.Cats, ca.NumLevels()))
	}
}

// refPairwise mirrors pairwiseAssociation without the bin cache.
func refPairwise(t *table.Table, cols []int) (mean, max float64, strong int) {
	if len(cols) < 2 {
		return 0, 0, 0
	}
	sum, cnt := 0.0, 0
	for a := 0; a < len(cols); a++ {
		for b := a + 1; b < len(cols); b++ {
			v := refAssociation(t, cols[a], cols[b])
			sum += v
			cnt++
			if v > max {
				max = v
			}
			if v >= 0.8 {
				strong++
			}
		}
	}
	return sum / float64(cnt), max, strong
}

// refOneNN is the pre-kernel 1-NN disagreement: per-pair gowerDistance
// through the column interface.
func refOneNN(t *table.Table, attrCols []int, classCol, maxSample int) float64 {
	rows := t.NumRows()
	if rows < 4 || len(attrCols) == 0 {
		return 0
	}
	cls := t.Column(classCol)
	sample := strideSample(make([]int, min(rows, maxSample)), rows, maxSample)
	ranges := make(map[int]float64, len(attrCols))
	for _, j := range attrCols {
		c := t.Column(j)
		if c.Kind != table.Numeric {
			continue
		}
		lo, hi := stats.MinMax(c.Nums)
		if !stats.IsMissing(lo) && hi > lo {
			ranges[j] = hi - lo
		}
	}
	gower := func(a, b int) float64 {
		sum := 0.0
		for _, j := range attrCols {
			c := t.Column(j)
			if c.IsMissing(a) || c.IsMissing(b) {
				sum++
				continue
			}
			if c.Kind == table.Numeric {
				rg := ranges[j]
				if rg == 0 {
					continue
				}
				d := math.Abs(c.Nums[a]-c.Nums[b]) / rg
				if d > 1 {
					d = 1
				}
				sum += d
			} else if c.Cats[a] != c.Cats[b] {
				sum++
			}
		}
		return sum / float64(len(attrCols))
	}
	disagree, counted := 0, 0
	for _, r := range sample {
		if cls.IsMissing(r) {
			continue
		}
		bestD := math.Inf(1)
		bestRow := -1
		for _, q := range sample {
			if q == r || cls.IsMissing(q) {
				continue
			}
			if d := gower(r, q); d < bestD {
				bestD = d
				bestRow = q
			}
		}
		if bestRow < 0 {
			continue
		}
		counted++
		if cls.Cats[r] != cls.Cats[bestRow] {
			disagree++
		}
	}
	if counted == 0 {
		return 0
	}
	return float64(disagree) / float64(counted)
}

// TestMeasureKernelsMatchNaiveReferences checks the memoized association
// matrix and the dense 1-NN noise kernel against their per-pair
// references, exactly, over random tables (including one large enough to
// trigger stride sampling).
func TestMeasureKernelsMatchNaiveReferences(t *testing.T) {
	for seed := int64(10); seed < 16; seed++ {
		rows := 90
		maxSample := 300
		if seed == 15 {
			rows, maxSample = 400, 120 // stride-sampled path
		}
		tb, classCol := randomMixedTable(seed, rows)
		p := Measure(tb, MeasureOptions{ClassColumn: classCol, MaxNoiseSample: maxSample})

		attrCols := []int{0, 1, 2, 3}
		corrCols := make([]int, 0, len(attrCols))
		for _, j := range attrCols {
			c := tb.Column(j)
			if c.Kind == table.Nominal && rows > 4 && c.NumLevels() > rows/2 {
				continue
			}
			corrCols = append(corrCols, j)
		}
		wantMean, wantMax, wantStrong := refPairwise(tb, corrCols)
		if !eq(p.MeanAbsCorrelation, wantMean) || !eq(p.MaxAbsCorrelation, wantMax) || p.CorrelatedPairs != wantStrong {
			t.Fatalf("seed %d: association (%v,%v,%d) != reference (%v,%v,%d)",
				seed, p.MeanAbsCorrelation, p.MaxAbsCorrelation, p.CorrelatedPairs, wantMean, wantMax, wantStrong)
		}
		if want := refOneNN(tb, attrCols, classCol, maxSample); !eq(p.NoiseEstimate, want) {
			t.Fatalf("seed %d: noise %v != reference %v", seed, p.NoiseEstimate, want)
		}
	}
}
