// Package dq implements the data-quality module of the paper (§3.2.2,
// §3.3): it measures the data-quality criteria of a dataset ("fitness for
// use" [14]), produces a Profile, and annotates a CWM-style model with the
// measures so the advisor layer can pick a mining algorithm that is robust
// to exactly the defects this source exhibits.
package dq

import "fmt"

// Criterion identifies one data-quality criterion. The set follows the
// criteria the paper and its companion experiments [6] manipulate:
// incompleteness, duplication, attribute correlation, class imbalance,
// noise (label and attribute) and dimensionality.
type Criterion int

const (
	// Completeness: fraction of cells observed (1 = no missing values).
	Completeness Criterion = iota
	// Duplicates: fraction of rows that are exact duplicates of an
	// earlier row.
	Duplicates
	// Correlation: strength of inter-attribute dependence (redundant
	// attributes mislead e.g. Naive Bayes, the paper's §3.1 example).
	Correlation
	// Imbalance: skew of the class distribution.
	Imbalance
	// LabelNoise: estimated fraction of mislabeled instances.
	LabelNoise
	// AttributeNoise: corruption of attribute values (measured via
	// outlier mass).
	AttributeNoise
	// Dimensionality: attribute count relative to row count — the
	// LOD-specific "high dimensionality" problem of §1.
	Dimensionality

	numCriteria
)

// AllCriteria lists every criterion in canonical order.
func AllCriteria() []Criterion {
	out := make([]Criterion, numCriteria)
	for i := range out {
		out[i] = Criterion(i)
	}
	return out
}

// String returns the canonical lowercase name of the criterion.
func (c Criterion) String() string {
	switch c {
	case Completeness:
		return "completeness"
	case Duplicates:
		return "duplicates"
	case Correlation:
		return "correlation"
	case Imbalance:
		return "imbalance"
	case LabelNoise:
		return "label-noise"
	case AttributeNoise:
		return "attribute-noise"
	case Dimensionality:
		return "dimensionality"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// ParseCriterion resolves a canonical name back to its Criterion.
func ParseCriterion(s string) (Criterion, error) {
	for _, c := range AllCriteria() {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("dq: unknown criterion %q", s)
}
