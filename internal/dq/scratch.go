package dq

// Scratch is reusable per-call scratch for Measure, in the style of
// mining.Arena: a profile server keeps a pool of them so a profile request
// allocates per-column metadata, not per-cell temporaries. All buffers are
// grown in place and reused (not freed) between calls; the zero value is
// ready. A Scratch is single-goroutine state — pool one per worker. A nil
// *Scratch is valid everywhere and degrades to plain allocation.
type Scratch struct {
	obs    []float64           // numeric gather scratch (one column at a time)
	counts []int               // nominal level-count scratch
	key    []byte              // typed row-key buffer for the duplicate pass
	seen   map[string]struct{} // duplicate-pass key set (cleared per call)
	f64    []float64           // flat backing for 1-NN vectors + distances
	i32    []int32             // flat backing for 1-NN nominal codes
	sample []int               // stride-sample row indices
}

// NewScratch returns an empty scratch ready for MeasureWith.
func NewScratch() *Scratch { return &Scratch{} }

// f64Buf returns a length-n float buffer, reusing (and keeping) the
// backing allocation across calls. Contents are unspecified.
func (s *Scratch) f64Buf(n int) []float64 {
	if cap(s.f64) < n {
		s.f64 = make([]float64, n)
	}
	return s.f64[:n]
}

// i32Buf returns a length-n int32 buffer; contents are unspecified.
func (s *Scratch) i32Buf(n int) []int32 {
	if cap(s.i32) < n {
		s.i32 = make([]int32, n)
	}
	return s.i32[:n]
}

// sampleBuf returns a length-n int buffer; contents are unspecified.
func (s *Scratch) sampleBuf(n int) []int {
	if cap(s.sample) < n {
		s.sample = make([]int, n)
	}
	return s.sample[:n]
}

// seenSet returns the cleared duplicate-key set.
func (s *Scratch) seenSet(sizeHint int) map[string]struct{} {
	if s.seen == nil {
		s.seen = make(map[string]struct{}, sizeHint)
	} else {
		clear(s.seen)
	}
	return s.seen
}
