package dq

import (
	"fmt"

	"openbi/internal/cwm"
)

// Annotation names written onto CWM models. Table-level names carry the
// whole-dataset measures; severity names carry the [0,1] coordinates the
// advisor queries the knowledge base with.
const (
	AnnCompleteness   = "dq.completeness"
	AnnDuplicateRatio = "dq.duplicateRatio"
	AnnMeanAbsCorr    = "dq.meanAbsCorrelation"
	AnnMaxAbsCorr     = "dq.maxAbsCorrelation"
	AnnClassBalance   = "dq.classBalance"
	AnnNoiseEstimate  = "dq.noiseEstimate"
	AnnOutlierRatio   = "dq.outlierRatio"
	AnnDimensionality = "dq.dimensionality"

	annSource = "dq"
)

// SeverityAnnotation returns the model annotation name that carries the
// severity of one criterion (e.g. "dq.severity.completeness").
func SeverityAnnotation(c Criterion) string {
	return fmt.Sprintf("dq.severity.%s", c)
}

// Annotate writes the profile onto a CWM table definition — the "data
// quality criteria annotation" step of §3.2.2 that turns a structural
// model into a quality-aware one. Column profiles are written onto the
// matching column definitions.
func Annotate(def *cwm.TableDef, p Profile) {
	def.Annotate(AnnCompleteness, p.Completeness, annSource)
	def.Annotate(AnnDuplicateRatio, p.DuplicateRatio, annSource)
	def.Annotate(AnnMeanAbsCorr, p.MeanAbsCorrelation, annSource)
	def.Annotate(AnnMaxAbsCorr, p.MaxAbsCorrelation, annSource)
	def.Annotate(AnnClassBalance, p.ClassBalance, annSource)
	def.Annotate(AnnNoiseEstimate, p.NoiseEstimate, annSource)
	def.Annotate(AnnOutlierRatio, p.OutlierRatio, annSource)
	def.Annotate(AnnDimensionality, p.Dimensionality, annSource)
	for _, c := range AllCriteria() {
		def.Annotate(SeverityAnnotation(c), p.Severity(c), annSource)
	}
	for _, cp := range p.Columns {
		cd := def.Column(cp.Name)
		if cd == nil {
			continue
		}
		cd.Annotate("dq.completeness", cp.Completeness, annSource)
		if cp.Kind == "numeric" {
			cd.Annotate("dq.outlierRatio", cp.OutlierRatio, annSource)
		} else {
			cd.Annotate("dq.entropy", cp.Entropy, annSource)
			cd.Annotate("dq.levels", float64(cp.Levels), annSource)
		}
	}
}

// SeveritiesFromModel reads the severity vector back out of an annotated
// model, so advice can be produced from a shared model file without
// re-profiling the data. Missing annotations read as severity 0.
func SeveritiesFromModel(def *cwm.TableDef) []float64 {
	out := make([]float64, numCriteria)
	for _, c := range AllCriteria() {
		if v, ok := def.AnnotationValue(SeverityAnnotation(c)); ok {
			out[c] = v
		}
	}
	return out
}
