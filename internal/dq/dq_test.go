package dq

import (
	"math"
	"testing"

	"openbi/internal/cwm"
	"openbi/internal/stats"
	"openbi/internal/table"
)

// cleanTable builds a 200-row, well-behaved two-class dataset whose
// classes are cleanly separated on x (so the 1-NN noise estimate is ~0).
func cleanTable() *table.Table {
	t := table.New("clean")
	x := table.NewNumericColumn("x")
	y := table.NewNumericColumn("y")
	cls := table.NewNominalColumn("class", "a", "b")
	rng := stats.NewRand(5)
	for i := 0; i < 200; i++ {
		c := i % 2
		x.AppendFloat(float64(c)*10 + rng.NormFloat64()*0.3)
		y.AppendFloat(rng.NormFloat64())
		cls.AppendCode(c)
	}
	t.MustAddColumn(x)
	t.MustAddColumn(y)
	t.MustAddColumn(cls)
	return t
}

func TestCriterionNamesRoundtrip(t *testing.T) {
	for _, c := range AllCriteria() {
		back, err := ParseCriterion(c.String())
		if err != nil || back != c {
			t.Fatalf("roundtrip %v: %v %v", c, back, err)
		}
	}
	if _, err := ParseCriterion("bogus"); err == nil {
		t.Fatal("bogus criterion should error")
	}
}

func TestMeasureCleanProfile(t *testing.T) {
	tb := cleanTable()
	p := Measure(tb, MeasureOptions{ClassColumn: 2})
	if p.Rows != 200 || p.Attributes != 2 {
		t.Fatalf("shape: %+v", p)
	}
	if p.Completeness != 1 {
		t.Fatalf("completeness = %v, want 1", p.Completeness)
	}
	if p.DuplicateRatio != 0 {
		t.Fatalf("duplicates = %v, want 0", p.DuplicateRatio)
	}
	if p.ClassBalance < 0.99 {
		t.Fatalf("balance = %v, want ~1", p.ClassBalance)
	}
	if p.NoiseEstimate > 0.05 {
		t.Fatalf("noise estimate on separable data = %v, want ~0", p.NoiseEstimate)
	}
	if p.ClassLevels != 2 {
		t.Fatalf("class levels = %d", p.ClassLevels)
	}
}

func TestMeasureCompleteness(t *testing.T) {
	tb := cleanTable()
	// Blank 40 of 400 attribute cells -> completeness 0.9.
	for i := 0; i < 40; i++ {
		tb.SetMissing(i, i%2)
	}
	p := Measure(tb, MeasureOptions{ClassColumn: 2})
	if math.Abs(p.Completeness-0.9) > 1e-9 {
		t.Fatalf("completeness = %v, want 0.9", p.Completeness)
	}
	if math.Abs(p.Severity(Completeness)-0.1) > 1e-9 {
		t.Fatalf("severity = %v, want 0.1", p.Severity(Completeness))
	}
}

func TestMeasureDuplicates(t *testing.T) {
	tb := cleanTable()
	rows := make([]int, 0, 250)
	for i := 0; i < 200; i++ {
		rows = append(rows, i)
	}
	for i := 0; i < 50; i++ {
		rows = append(rows, i)
	}
	p := Measure(tb.SelectRows(rows), MeasureOptions{ClassColumn: 2})
	if math.Abs(p.DuplicateRatio-0.2) > 1e-9 {
		t.Fatalf("duplicate ratio = %v, want 0.2", p.DuplicateRatio)
	}
}

func TestMeasureCorrelation(t *testing.T) {
	tb := cleanTable()
	// Add a near-copy of x.
	copyCol := table.NewNumericColumn("x2")
	for r := 0; r < tb.NumRows(); r++ {
		copyCol.AppendFloat(tb.Float(r, 0) * 1.001)
	}
	tb.MustAddColumn(copyCol)
	// Move class column index: class is still col 2; x2 appended at 3.
	p := Measure(tb, MeasureOptions{ClassColumn: 2})
	if p.MaxAbsCorrelation < 0.99 {
		t.Fatalf("max corr = %v, want ~1", p.MaxAbsCorrelation)
	}
	if p.CorrelatedPairs < 1 {
		t.Fatalf("correlated pairs = %d, want >= 1", p.CorrelatedPairs)
	}
}

func TestMeasureImbalance(t *testing.T) {
	tb := cleanTable()
	// Keep only 10 of 100 'b' rows.
	var rows []int
	kept := 0
	cls := tb.Column(2)
	for r := 0; r < tb.NumRows(); r++ {
		if cls.Cats[r] == 1 {
			if kept >= 10 {
				continue
			}
			kept++
		}
		rows = append(rows, r)
	}
	p := Measure(tb.SelectRows(rows), MeasureOptions{ClassColumn: 2})
	if p.ClassBalance > 0.65 {
		t.Fatalf("balance = %v, want well below 1", p.ClassBalance)
	}
	if p.Severity(Imbalance) < 0.3 {
		t.Fatalf("imbalance severity = %v, want substantial", p.Severity(Imbalance))
	}
	if math.Abs(p.MinorityFraction-10.0/110.0) > 1e-9 {
		t.Fatalf("minority fraction = %v", p.MinorityFraction)
	}
}

func TestMeasureNoiseEstimateRisesWithFlips(t *testing.T) {
	tb := cleanTable()
	clean := Measure(tb, MeasureOptions{ClassColumn: 2}).NoiseEstimate
	// Flip 30% of labels.
	rng := stats.NewRand(9)
	cls := tb.Column(2)
	for r := 0; r < tb.NumRows(); r++ {
		if rng.Float64() < 0.3 {
			cls.Cats[r] = 1 - cls.Cats[r]
		}
	}
	noisy := Measure(tb, MeasureOptions{ClassColumn: 2}).NoiseEstimate
	if noisy < clean+0.2 {
		t.Fatalf("noise estimate clean=%v noisy=%v; want a clear rise", clean, noisy)
	}
}

func TestMeasureOutliers(t *testing.T) {
	tb := cleanTable()
	for i := 0; i < 10; i++ {
		tb.SetFloat(i, 1, 500+float64(i)) // y outliers
	}
	p := Measure(tb, MeasureOptions{ClassColumn: 2})
	if p.OutlierRatio <= 0 {
		t.Fatalf("outlier ratio = %v, want > 0", p.OutlierRatio)
	}
}

func TestMeasureDimensionality(t *testing.T) {
	tb := cleanTable()
	p := Measure(tb, MeasureOptions{ClassColumn: 2})
	if math.Abs(p.Dimensionality-2.0/200.0) > 1e-12 {
		t.Fatalf("dimensionality = %v", p.Dimensionality)
	}
	// Severity scales by /0.5.
	if math.Abs(p.Severity(Dimensionality)-(2.0/200.0)/0.5) > 1e-12 {
		t.Fatalf("dim severity = %v", p.Severity(Dimensionality))
	}
}

func TestMeasureNoClass(t *testing.T) {
	tb := cleanTable()
	p := Measure(tb, MeasureOptions{ClassColumn: -1})
	if p.ClassBalance != 1 || p.NoiseEstimate != 0 {
		t.Fatalf("class-less profile should default balance=1 noise=0: %+v", p)
	}
	if p.Attributes != 3 {
		t.Fatalf("attributes without class = %d, want 3", p.Attributes)
	}
}

func TestSeveritiesVectorOrder(t *testing.T) {
	tb := cleanTable()
	p := Measure(tb, MeasureOptions{ClassColumn: 2})
	sev := p.Severities()
	if len(sev) != len(AllCriteria()) {
		t.Fatalf("severity vector length = %d", len(sev))
	}
	for _, c := range AllCriteria() {
		if sev[c] != p.Severity(c) {
			t.Fatalf("severity order mismatch at %v", c)
		}
	}
}

func TestDominantCriteria(t *testing.T) {
	tb := cleanTable()
	for i := 0; i < 100; i++ {
		tb.SetMissing(i, 0)
		tb.SetMissing(i, 1)
	}
	p := Measure(tb, MeasureOptions{ClassColumn: 2})
	dom := p.DominantCriteria(0.2)
	if len(dom) == 0 || dom[0] != Completeness {
		t.Fatalf("dominant = %v, want completeness first", dom)
	}
}

func TestColumnProfiles(t *testing.T) {
	tb := cleanTable()
	tb.SetMissing(0, 0)
	p := Measure(tb, MeasureOptions{ClassColumn: 2})
	if len(p.Columns) != 2 {
		t.Fatalf("column profiles = %d", len(p.Columns))
	}
	if p.Columns[0].Name != "x" || p.Columns[0].Kind != "numeric" {
		t.Fatalf("col profile: %+v", p.Columns[0])
	}
	if p.Columns[0].Completeness >= 1 {
		t.Fatal("missing cell not reflected in column completeness")
	}
	if math.IsNaN(p.Columns[0].Mean) {
		t.Fatal("numeric column mean missing")
	}
}

func TestAnnotateAndReadBack(t *testing.T) {
	tb := cleanTable()
	for i := 0; i < 20; i++ {
		tb.SetMissing(i, 0)
	}
	p := Measure(tb, MeasureOptions{ClassColumn: 2})
	cat := cwm.CatalogFromTable(tb, "test")
	def := cat.Table("clean")
	Annotate(def, p)

	if v, ok := def.AnnotationValue(AnnCompleteness); !ok || math.Abs(v-p.Completeness) > 1e-12 {
		t.Fatalf("completeness annotation = %v %v", v, ok)
	}
	sev := SeveritiesFromModel(def)
	for _, c := range AllCriteria() {
		if math.Abs(sev[c]-p.Severity(c)) > 1e-12 {
			t.Fatalf("severity %v roundtrip: %v vs %v", c, sev[c], p.Severity(c))
		}
	}
	// Column annotations.
	if _, ok := def.Column("x").AnnotationValue("dq.completeness"); !ok {
		t.Fatal("column annotation missing")
	}
	if _, ok := def.Column("class").AnnotationValue("dq.entropy"); ok {
		// class column is not an attribute; profile shouldn't cover it
		t.Fatal("class column should not carry attribute annotations")
	}
}

func TestSeverityClamping(t *testing.T) {
	p := Profile{Completeness: -0.5, DuplicateRatio: 2}
	if p.Severity(Completeness) != 1 {
		t.Fatalf("over-severity should clamp to 1, got %v", p.Severity(Completeness))
	}
	if p.Severity(Duplicates) != 1 {
		t.Fatalf("duplicate severity clamp = %v", p.Severity(Duplicates))
	}
}

func TestNominalAssociationCramers(t *testing.T) {
	// Two perfectly associated nominal columns should register high
	// correlation severity.
	tb := table.New("nom")
	a := table.NewNominalColumn("a", "x", "y")
	b := table.NewNominalColumn("b", "p", "q")
	cls := table.NewNominalColumn("class", "0", "1")
	for i := 0; i < 100; i++ {
		a.AppendCode(i % 2)
		b.AppendCode(i % 2)
		cls.AppendCode((i / 2) % 2)
	}
	tb.MustAddColumn(a)
	tb.MustAddColumn(b)
	tb.MustAddColumn(cls)
	p := Measure(tb, MeasureOptions{ClassColumn: 2})
	if p.MaxAbsCorrelation < 0.99 {
		t.Fatalf("nominal association = %v, want ~1", p.MaxAbsCorrelation)
	}
}
