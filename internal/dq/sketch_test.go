package dq

import (
	"math/rand"
	"testing"

	"openbi/internal/rdf"
	"openbi/internal/synth"
)

// sketchFixtures returns graphs spanning the profile's edge cases:
// synthetic LOD (clean and dirty), multi-typed subjects, classless
// subjects, dangling links and sameAs mirrors.
func sketchFixtures(t *testing.T) map[string]*rdf.Graph {
	t.Helper()
	out := map[string]*rdf.Graph{}
	for name, spec := range map[string]synth.LODSpec{
		"municipal-clean": {Entities: 120, Seed: 3},
		"municipal-dirty": {Entities: 120, Seed: 3, Dirtiness: 0.4},
	} {
		g, err := synth.MunicipalBudgetLOD(spec)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = g
	}
	out["fixture"] = buildLODFixture()

	// A subject whose two rdf:type triples make first-type order matter.
	g := rdf.NewGraph()
	typ := rdf.NewIRI(rdf.RDFType)
	s := rdf.NewIRI("http://e/multi")
	g.Add(rdf.Triple{S: s, P: typ, O: rdf.NewIRI("http://d/A")})
	g.Add(rdf.Triple{S: s, P: typ, O: rdf.NewIRI("http://d/B")})
	g.Add(rdf.Triple{S: s, P: rdf.NewIRI("http://d/p"), O: rdf.NewInteger(1)})
	g.Add(rdf.Triple{S: rdf.NewIRI("http://e/classless"), P: rdf.NewIRI("http://d/p"), O: rdf.NewInteger(2)})
	out["multi-type"] = g
	return out
}

// TestSketchMatchesMeasureLOD: one Add pass over a graph's triples must
// reproduce MeasureLOD exactly (==, not within epsilon — the aggregation
// is shared and fully deterministic).
func TestSketchMatchesMeasureLOD(t *testing.T) {
	for name, g := range sketchFixtures(t) {
		want := MeasureLOD(g)
		sk := NewLODSketch()
		for _, tr := range g.Triples() {
			sk.Add(tr)
		}
		if got := sk.Profile(); got != want {
			t.Errorf("%s: sketch profile %+v != batch %+v", name, got, want)
		}
	}
}

// TestSketchDuplicatesIgnored: raw streams repeat triples; the sketch
// must profile the distinct set like a Graph would.
func TestSketchDuplicatesIgnored(t *testing.T) {
	for name, g := range sketchFixtures(t) {
		want := MeasureLOD(g)
		sk := NewLODSketch()
		for pass := 0; pass < 3; pass++ {
			for _, tr := range g.Triples() {
				sk.Add(tr)
			}
		}
		if got := sk.Profile(); got != want {
			t.Errorf("%s: duplicated stream changed profile: %+v != %+v", name, got, want)
		}
		if sk.Len() != g.Len() {
			t.Errorf("%s: distinct count %d != %d", name, sk.Len(), g.Len())
		}
	}
}

// TestSketchPartitionMerge is the mergeability property mirroring
// kb.Merge: cut the raw stream into k contiguous partitions at random
// points, sketch each independently with its stream offset, merge in a
// random permutation — the profile must equal the monolithic one exactly,
// for every k and permutation tried.
func TestSketchPartitionMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for name, g := range sketchFixtures(t) {
		want := MeasureLOD(g)
		// Raw stream with duplicates sprinkled in, so partitions overlap
		// on content and dedup-by-position is actually exercised.
		var raw []rdf.Triple
		for _, tr := range g.Triples() {
			raw = append(raw, tr)
			if rng.Intn(4) == 0 {
				raw = append(raw, tr)
			}
		}
		for _, k := range []int{1, 2, 3, 7} {
			for trial := 0; trial < 4; trial++ {
				// Random contiguous partition bounds.
				cuts := make([]int, 0, k+1)
				cuts = append(cuts, 0)
				for i := 1; i < k; i++ {
					cuts = append(cuts, rng.Intn(len(raw)+1))
				}
				cuts = append(cuts, len(raw))
				sortInts(cuts)

				parts := make([]*LODSketch, k)
				for i := 0; i < k; i++ {
					parts[i] = NewLODSketchAt(uint64(cuts[i]))
					for _, tr := range raw[cuts[i]:cuts[i+1]] {
						parts[i].Add(tr)
					}
				}
				perm := rng.Perm(k)
				merged := NewLODSketch()
				for _, i := range perm {
					merged.Merge(parts[i])
				}
				if got := merged.Profile(); got != want {
					t.Fatalf("%s: k=%d trial=%d perm=%v: merged profile %+v != monolithic %+v",
						name, k, trial, perm, got, want)
				}
				if merged.Observed() != uint64(len(raw)) {
					t.Fatalf("%s: merged Observed() = %d, want %d", name, merged.Observed(), len(raw))
				}
			}
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestSketchFirstTypeAcrossPartitions pins the order-sensitive case: a
// subject typed A early and B later, with the cut between the two type
// triples. Whatever order the partitions merge in, the subject's class
// must resolve to A (the earlier position), as in a monolithic pass.
func TestSketchFirstTypeAcrossPartitions(t *testing.T) {
	typ := rdf.NewIRI(rdf.RDFType)
	s := rdf.NewIRI("http://e/s")
	p := rdf.NewIRI("http://d/p")
	raw := []rdf.Triple{
		{S: s, P: typ, O: rdf.NewIRI("http://d/A")},
		{S: s, P: p, O: rdf.NewInteger(1)},
		{S: s, P: typ, O: rdf.NewIRI("http://d/B")},
	}
	mono := NewLODSketch()
	for _, tr := range raw {
		mono.Add(tr)
	}
	want := mono.Profile()

	first := NewLODSketchAt(0)
	first.Add(raw[0])
	second := NewLODSketchAt(1)
	second.Add(raw[1])
	second.Add(raw[2])

	for _, order := range [][]*LODSketch{{first, second}, {second, first}} {
		m := NewLODSketch()
		m.Merge(order...)
		if got := m.Profile(); got != want {
			t.Fatalf("merge order changed profile: %+v != %+v", got, want)
		}
	}
}

// TestSketchEmpty: zero triples must behave like MeasureLOD on an empty
// graph, and merging empties stays empty.
func TestSketchEmpty(t *testing.T) {
	sk := NewLODSketch()
	sk.Merge(NewLODSketch(), NewLODSketchAt(5))
	got := sk.Profile()
	want := MeasureLOD(rdf.NewGraph())
	if got != want {
		t.Fatalf("empty sketch profile %+v != empty graph %+v", got, want)
	}
}
