package dq

import (
	"math"
	"sort"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// ColumnProfile holds the per-attribute measures.
type ColumnProfile struct {
	Name         string
	Kind         string  // "numeric" | "nominal"
	Completeness float64 // observed fraction
	Levels       int     // nominal dictionary size
	OutlierRatio float64 // Tukey-fence outliers (numeric only)
	Mean         float64 // numeric only (NaN otherwise)
	StdDev       float64 // numeric only (NaN otherwise)
	Entropy      float64 // nominal only: Shannon entropy in bits
}

// Profile is the measured data-quality fingerprint of a dataset. Severity
// accessors map each criterion onto [0,1] where 0 means pristine; this is
// the coordinate system the DQ4DM knowledge base is indexed by.
type Profile struct {
	Rows       int
	Attributes int // excluding the class column

	Completeness       float64 // observed cell fraction over attribute columns
	DuplicateRatio     float64 // rows that exactly repeat an earlier row / rows
	MeanAbsCorrelation float64 // mean |association| over attribute pairs
	MaxAbsCorrelation  float64
	CorrelatedPairs    int // pairs with |association| >= 0.8

	ClassBalance     float64 // normalized class entropy (1 = balanced); 1 when no class
	MinorityFraction float64 // size of smallest class / rows; 0.5-ish when balanced binary
	ClassLevels      int

	NoiseEstimate  float64 // 1-NN label disagreement on a deterministic subsample
	OutlierRatio   float64 // mean per-numeric-column Tukey outlier mass
	Dimensionality float64 // attributes / rows

	Columns []ColumnProfile
}

// MeasureOptions tunes profiling.
type MeasureOptions struct {
	// ClassColumn is the index of the class attribute, or -1 when the
	// dataset has none (class-dependent measures are then skipped).
	ClassColumn int
	// MaxCorrelationColumns caps the pairwise-association computation;
	// beyond it only the first N attribute columns enter the matrix
	// (LOD projections can be very wide). 0 means 64.
	MaxCorrelationColumns int
	// MaxNoiseSample caps the O(n²) 1-NN noise estimate; 0 means 300.
	MaxNoiseSample int
}

// Measure profiles t against every data-quality criterion. It is entirely
// deterministic: subsampling uses fixed strides, not randomness, so the
// same source always yields the same annotations.
func Measure(t *table.Table, opts MeasureOptions) Profile {
	return MeasureWith(t, opts, nil)
}

// MeasureWith is Measure with caller-provided scratch, for servers that
// profile many sources and want steady-state measurement to reuse one
// worker's buffers instead of re-allocating per request. A nil scratch is
// equivalent to Measure.
func MeasureWith(t *table.Table, opts MeasureOptions, sc *Scratch) Profile {
	if sc == nil {
		sc = &Scratch{}
	}
	if opts.MaxCorrelationColumns == 0 {
		opts.MaxCorrelationColumns = 64
	}
	if opts.MaxNoiseSample == 0 {
		opts.MaxNoiseSample = 300
	}
	rows := t.NumRows()
	p := Profile{Rows: rows, ClassBalance: 1}

	attrCols := make([]int, 0, t.NumCols())
	for j := 0; j < t.NumCols(); j++ {
		if j != opts.ClassColumn {
			attrCols = append(attrCols, j)
		}
	}
	p.Attributes = len(attrCols)
	if rows > 0 {
		p.Dimensionality = float64(p.Attributes) / float64(rows)
	}

	// Per-column profiles and completeness: one fused pass per column
	// (missing count, moments, quantile fences, level counts) instead of
	// one pass per measure. Each fused measure reproduces its stats.*
	// reference bit for bit — see TestMeasureFusionMatchesReference.
	totalCells, observedCells := 0, 0
	var outlierSum float64
	numericCount := 0
	obs := sc.obs[:0]   // numeric gather scratch, reused across columns
	counts := sc.counts // nominal level-count scratch, reused across columns
	for _, j := range attrCols {
		c := t.Column(j)
		cp := ColumnProfile{Name: c.Name, Kind: c.Kind.String(), Mean: math.NaN(), StdDev: math.NaN()}
		var miss int
		if c.Kind == table.Numeric {
			obs, miss = measureNumeric(c.Nums, obs[:0], &cp)
			outlierSum += cp.OutlierRatio
			numericCount++
		} else {
			counts, miss = measureNominal(c, counts, &cp)
		}
		totalCells += rows
		observedCells += rows - miss
		if rows > 0 {
			cp.Completeness = float64(rows-miss) / float64(rows)
		}
		p.Columns = append(p.Columns, cp)
	}
	if totalCells > 0 {
		p.Completeness = float64(observedCells) / float64(totalCells)
	} else {
		p.Completeness = 1
	}
	if numericCount > 0 {
		p.OutlierRatio = outlierSum / float64(numericCount)
	}
	sc.obs, sc.counts = obs, counts // write growth back for the next call

	// Duplicates: typed row keys (table.AppendRowKey) built into one
	// reused buffer — no per-row string construction, and a literal "?"
	// label never collides with a missing cell.
	if rows > 0 {
		seen := sc.seenSet(rows)
		dups := 0
		for r := 0; r < rows; r++ {
			sc.key = t.AppendRowKey(sc.key[:0], r)
			if _, dup := seen[string(sc.key)]; dup {
				dups++
			} else {
				seen[string(sc.key)] = struct{}{}
			}
		}
		p.DuplicateRatio = float64(dups) / float64(rows)
	}

	// Pairwise association. Identifier-like nominal columns (near one
	// level per row) are excluded: a contingency table against a unique
	// key is degenerate, Cramér's V saturates at 1 and would report
	// redundancy where there is none.
	corrCols := make([]int, 0, len(attrCols))
	for _, j := range attrCols {
		c := t.Column(j)
		if c.Kind == table.Nominal && rows > 4 && c.NumLevels() > rows/2 {
			continue
		}
		corrCols = append(corrCols, j)
	}
	if len(corrCols) > opts.MaxCorrelationColumns {
		corrCols = corrCols[:opts.MaxCorrelationColumns]
	}
	p.MeanAbsCorrelation, p.MaxAbsCorrelation, p.CorrelatedPairs = pairwiseAssociation(t, corrCols)

	// Class-dependent measures.
	if opts.ClassColumn >= 0 && opts.ClassColumn < t.NumCols() &&
		t.Column(opts.ClassColumn).Kind == table.Nominal {
		cls := t.Column(opts.ClassColumn)
		counts := cls.Counts()
		p.ClassLevels = nonZero(counts)
		p.ClassBalance = stats.NormalizedEntropy(counts)
		p.MinorityFraction = minorityFraction(counts, rows)
		p.NoiseEstimate = oneNNDisagreement(t, attrCols, opts.ClassColumn, opts.MaxNoiseSample, sc)
	}
	return p
}

// measureNumeric fills the numeric measures of cp from one gather pass
// over nums plus one sort, returning the (reused) gather scratch and the
// missing count. It reproduces stats.Mean / stats.StdDev /
// stats.IQROutlierRatio exactly: observed values are gathered in element
// order, so the mean and variance accumulate the same additions in the
// same sequence, and one sorted copy serves both type-7 quartiles and the
// (integral) Tukey fence count.
func measureNumeric(nums []float64, obs []float64, cp *ColumnProfile) (scratch []float64, miss int) {
	for _, v := range nums {
		if math.IsNaN(v) {
			miss++
			continue
		}
		obs = append(obs, v)
	}
	n := len(obs)
	if n == 0 {
		return obs, miss
	}
	// Moments before sorting: the accumulation order must stay element
	// order, exactly like the stats reference.
	sum := 0.0
	for _, v := range obs {
		sum += v
	}
	mean := sum / float64(n)
	cp.Mean = mean
	if n >= 2 {
		ss := 0.0
		for _, v := range obs {
			d := v - mean
			ss += d * d
		}
		cp.StdDev = math.Sqrt(ss / float64(n-1))
	}
	// Quartiles and the Tukey fence from one sorted copy.
	sort.Float64s(obs)
	q1 := sortedQuantile(obs, 0.25)
	q3 := sortedQuantile(obs, 0.75)
	iqr := q3 - q1
	lo, hi := q1-1.5*iqr, q3+1.5*iqr
	out := 0
	for _, v := range obs {
		if v < lo || v > hi {
			out++
		}
	}
	cp.OutlierRatio = float64(out) / float64(n)
	return obs, miss
}

// sortedQuantile is stats.Quantile's type-7 interpolation over an already
// sorted, missing-free slice.
func sortedQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// measureNominal fills the nominal measures of cp from one pass over the
// code vector (level counts + missing together, fusing Column.Counts with
// Column.MissingCount), returning the reused counts scratch and the
// missing count.
func measureNominal(c *table.Column, counts []int, cp *ColumnProfile) (scratch []int, miss int) {
	levels := c.NumLevels()
	if cap(counts) < levels {
		counts = make([]int, levels)
	}
	counts = counts[:levels]
	for i := range counts {
		counts[i] = 0
	}
	for _, code := range c.Cats {
		if code == table.MissingCat {
			miss++
		}
		if code >= 0 && code < levels {
			counts[code]++
		}
	}
	cp.Levels = levels
	cp.Entropy = stats.Entropy(counts)
	return counts, miss
}

// Severity maps the profile onto a [0,1] defect intensity for one
// criterion; 0 means pristine. These are the coordinates used both when
// recording experiment outcomes and when querying the knowledge base for
// advice, so recording and querying agree by construction.
func (p Profile) Severity(c Criterion) float64 {
	switch c {
	case Completeness:
		return clamp01(1 - p.Completeness)
	case Duplicates:
		return clamp01(p.DuplicateRatio)
	case Correlation:
		return clamp01(p.MeanAbsCorrelation)
	case Imbalance:
		return clamp01(1 - p.ClassBalance)
	case LabelNoise:
		return clamp01(p.NoiseEstimate)
	case AttributeNoise:
		return clamp01(p.OutlierRatio)
	case Dimensionality:
		// attrs/rows of 0.5 or worse is fully severe; ~0.01 is benign.
		return clamp01(p.Dimensionality / 0.5)
	default:
		return 0
	}
}

// Severities returns the severity vector over AllCriteria order.
func (p Profile) Severities() []float64 {
	out := make([]float64, numCriteria)
	for _, c := range AllCriteria() {
		out[c] = p.Severity(c)
	}
	return out
}

// DominantCriteria returns the criteria with severity >= threshold, most
// severe first — "the data quality problems this source actually has".
func (p Profile) DominantCriteria(threshold float64) []Criterion {
	type cs struct {
		c Criterion
		s float64
	}
	var list []cs
	for _, c := range AllCriteria() {
		if s := p.Severity(c); s >= threshold {
			list = append(list, cs{c, s})
		}
	}
	sort.SliceStable(list, func(i, j int) bool { return list[i].s > list[j].s })
	out := make([]Criterion, len(list))
	for i, e := range list {
		out[i] = e.c
	}
	return out
}

// pairwiseAssociation computes mean/max absolute association and the count
// of strongly associated pairs over the given columns. Numeric-numeric
// pairs use |Pearson|; nominal-nominal use Cramér's V; mixed pairs use the
// correlation ratio approximated by Cramér's V on a binned numeric side.
func pairwiseAssociation(t *table.Table, cols []int) (mean, max float64, strong int) {
	n := len(cols)
	if n < 2 {
		return 0, 0, 0
	}
	// A numeric column's quantile binning is a pure function of the
	// column, but every mixed pair needs it — memoize per column instead
	// of re-binning per pair (identical bins, so identical contingency
	// tables and Cramér's V values).
	bins := make(map[int][]int, n)
	binsFor := func(j int, c *table.Column) []int {
		if b, ok := bins[j]; ok {
			return b
		}
		b := binNumeric(c.Nums, 4)
		bins[j] = b
		return b
	}
	sum, cnt := 0.0, 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			v := association(t, cols[a], cols[b], binsFor)
			sum += v
			cnt++
			if v > max {
				max = v
			}
			if v >= 0.8 {
				strong++
			}
		}
	}
	if cnt == 0 {
		return 0, 0, 0
	}
	return sum / float64(cnt), max, strong
}

// association returns |association| in [0,1] between two columns. binsFor
// supplies memoized 4-quantile bins for a numeric column.
func association(t *table.Table, a, b int, binsFor func(int, *table.Column) []int) float64 {
	ca, cb := t.Column(a), t.Column(b)
	switch {
	case ca.Kind == table.Numeric && cb.Kind == table.Numeric:
		return math.Abs(stats.Pearson(ca.Nums, cb.Nums))
	case ca.Kind == table.Nominal && cb.Kind == table.Nominal:
		return stats.CramersV(crossTab(ca.Cats, ca.NumLevels(), cb.Cats, cb.NumLevels()))
	case ca.Kind == table.Numeric:
		return stats.CramersV(crossTab(binsFor(a, ca), 4, cb.Cats, cb.NumLevels()))
	default: // symmetric: numeric side second, swap into the same shape
		return stats.CramersV(crossTab(binsFor(b, cb), 4, ca.Cats, ca.NumLevels()))
	}
}

// crossTab builds a contingency table from two code vectors; negative
// codes (missing) are skipped pairwise.
func crossTab(as []int, aLevels int, bs []int, bLevels int) [][]int {
	if aLevels < 1 {
		aLevels = 1
	}
	if bLevels < 1 {
		bLevels = 1
	}
	tab := make([][]int, aLevels)
	for i := range tab {
		tab[i] = make([]int, bLevels)
	}
	n := len(as)
	if len(bs) < n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		if as[i] < 0 || bs[i] < 0 || as[i] >= aLevels || bs[i] >= bLevels {
			continue
		}
		tab[as[i]][bs[i]]++
	}
	return tab
}

// binNumeric discretizes a numeric column into k quantile bins, returning
// code -1 for missing cells.
func binNumeric(xs []float64, k int) []int {
	// One filter+sort serves all k-1 cut points; each cut is then the same
	// order-statistic interpolation Quantile would have computed.
	obs := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !stats.IsMissing(v) {
			obs = append(obs, v)
		}
	}
	sort.Float64s(obs)
	cuts := make([]float64, k-1)
	for i := 1; i < k; i++ {
		cuts[i-1] = stats.QuantileSorted(obs, float64(i)/float64(k))
	}
	out := make([]int, len(xs))
	for i, v := range xs {
		if stats.IsMissing(v) {
			out[i] = -1
			continue
		}
		bin := 0
		for bin < len(cuts) && v > cuts[bin] {
			bin++
		}
		out[i] = bin
	}
	return out
}

// oneNNDisagreement estimates label noise as the fraction of sampled rows
// whose nearest neighbour (heterogeneous Gower-style distance) carries a
// different label. Clean separable data scores near 0; heavily mislabeled
// data scores near the flip rate. Sampling is stride-based for determinism.
func oneNNDisagreement(t *table.Table, attrCols []int, classCol, maxSample int, sc *Scratch) float64 {
	rows := t.NumRows()
	if rows < 4 || len(attrCols) == 0 {
		return 0
	}
	cls := t.Column(classCol)
	sample := strideSample(sc.sampleBuf(min(rows, maxSample)), rows, maxSample)
	m := len(sample)

	// Gather the sampled slice of every attribute into dense vectors so
	// the O(sample²·attrs) distance pass reads contiguous storage instead
	// of resolving t.Column(j) per cell. Numeric ranges still scan the
	// full column, exactly like the per-pair reference did. Vectors come
	// from two flat scratch buffers sized up front, so a pooled Scratch
	// makes this whole pass allocation-free in steady state.
	type nnAttr struct {
		numeric bool
		span    float64
		vals    []float64
		cats    []int32
	}
	nNum := 0
	for _, j := range attrCols {
		if t.Column(j).Kind == table.Numeric {
			nNum++
		}
	}
	fbuf := sc.f64Buf(nNum*m + m)
	ibuf := sc.i32Buf((len(attrCols) - nNum) * m)
	attrs := make([]nnAttr, 0, len(attrCols))
	for _, j := range attrCols {
		c := t.Column(j)
		a := nnAttr{numeric: c.Kind == table.Numeric}
		if a.numeric {
			lo, hi := stats.MinMax(c.Nums)
			if !stats.IsMissing(lo) && hi > lo {
				a.span = hi - lo
			}
			a.vals, fbuf = fbuf[:m:m], fbuf[m:]
			for i, r := range sample {
				a.vals[i] = c.Nums[r]
			}
		} else {
			a.cats, ibuf = ibuf[:m:m], ibuf[m:]
			for i, r := range sample {
				a.cats[i] = int32(c.Cats[r])
			}
		}
		attrs = append(attrs, a)
	}

	// Per query: accumulate all candidate distances attribute-major (each
	// pair's sum still receives its contributions in attribute order, so
	// sums match the per-pair gowerDistance walk bit for bit), then take
	// the first strict minimum in sample order — the reference's scan.
	nAttrs := float64(len(attrCols))
	dist := fbuf[:m:m]
	disagree, counted := 0, 0
	for qi, r := range sample {
		if cls.IsMissing(r) {
			continue
		}
		for i := range dist {
			dist[i] = 0
		}
		for ai := range attrs {
			a := &attrs[ai]
			if a.numeric {
				q := a.vals[qi]
				if math.IsNaN(q) {
					for i := range dist {
						dist[i]++
					}
					continue
				}
				span := a.span
				for i, v := range a.vals {
					if math.IsNaN(v) {
						dist[i]++
						continue
					}
					if span == 0 {
						continue
					}
					d := math.Abs(v-q) / span
					if d > 1 {
						d = 1
					}
					dist[i] += d
				}
				continue
			}
			q := a.cats[qi]
			if q == table.MissingCat {
				for i := range dist {
					dist[i]++
				}
				continue
			}
			for i, c := range a.cats {
				if c == table.MissingCat || c != q {
					dist[i]++
				}
			}
		}
		bestD := math.Inf(1)
		bestI := -1
		for i, row := range sample {
			if i == qi || cls.IsMissing(row) {
				continue
			}
			if d := dist[i] / nAttrs; d < bestD {
				bestD = d
				bestI = i
			}
		}
		if bestI < 0 {
			continue
		}
		counted++
		if cls.Cats[r] != cls.Cats[sample[bestI]] {
			disagree++
		}
	}
	if counted == 0 {
		return 0
	}
	return float64(disagree) / float64(counted)
}

// strideSample fills dst (len min(rows,max)) with up to max row indices
// spread evenly over [0,rows) and returns it.
func strideSample(dst []int, rows, max int) []int {
	if rows <= max {
		for i := range dst {
			dst[i] = i
		}
		return dst
	}
	for i := 0; i < max; i++ {
		dst[i] = i * rows / max
	}
	return dst
}

func nonZero(counts []int) int {
	n := 0
	for _, c := range counts {
		if c > 0 {
			n++
		}
	}
	return n
}

func minorityFraction(counts []int, rows int) float64 {
	if rows == 0 {
		return 0
	}
	min := -1
	for _, c := range counts {
		if c == 0 {
			continue
		}
		if min < 0 || c < min {
			min = c
		}
	}
	if min < 0 {
		return 0
	}
	return float64(min) / float64(rows)
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
