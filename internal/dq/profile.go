package dq

import (
	"math"
	"sort"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// ColumnProfile holds the per-attribute measures.
type ColumnProfile struct {
	Name         string
	Kind         string  // "numeric" | "nominal"
	Completeness float64 // observed fraction
	Levels       int     // nominal dictionary size
	OutlierRatio float64 // Tukey-fence outliers (numeric only)
	Mean         float64 // numeric only (NaN otherwise)
	StdDev       float64 // numeric only (NaN otherwise)
	Entropy      float64 // nominal only: Shannon entropy in bits
}

// Profile is the measured data-quality fingerprint of a dataset. Severity
// accessors map each criterion onto [0,1] where 0 means pristine; this is
// the coordinate system the DQ4DM knowledge base is indexed by.
type Profile struct {
	Rows       int
	Attributes int // excluding the class column

	Completeness       float64 // observed cell fraction over attribute columns
	DuplicateRatio     float64 // rows that exactly repeat an earlier row / rows
	MeanAbsCorrelation float64 // mean |association| over attribute pairs
	MaxAbsCorrelation  float64
	CorrelatedPairs    int // pairs with |association| >= 0.8

	ClassBalance     float64 // normalized class entropy (1 = balanced); 1 when no class
	MinorityFraction float64 // size of smallest class / rows; 0.5-ish when balanced binary
	ClassLevels      int

	NoiseEstimate  float64 // 1-NN label disagreement on a deterministic subsample
	OutlierRatio   float64 // mean per-numeric-column Tukey outlier mass
	Dimensionality float64 // attributes / rows

	Columns []ColumnProfile
}

// MeasureOptions tunes profiling.
type MeasureOptions struct {
	// ClassColumn is the index of the class attribute, or -1 when the
	// dataset has none (class-dependent measures are then skipped).
	ClassColumn int
	// MaxCorrelationColumns caps the pairwise-association computation;
	// beyond it only the first N attribute columns enter the matrix
	// (LOD projections can be very wide). 0 means 64.
	MaxCorrelationColumns int
	// MaxNoiseSample caps the O(n²) 1-NN noise estimate; 0 means 300.
	MaxNoiseSample int
}

// Measure profiles t against every data-quality criterion. It is entirely
// deterministic: subsampling uses fixed strides, not randomness, so the
// same source always yields the same annotations.
func Measure(t *table.Table, opts MeasureOptions) Profile {
	if opts.MaxCorrelationColumns == 0 {
		opts.MaxCorrelationColumns = 64
	}
	if opts.MaxNoiseSample == 0 {
		opts.MaxNoiseSample = 300
	}
	rows := t.NumRows()
	p := Profile{Rows: rows, ClassBalance: 1}

	attrCols := make([]int, 0, t.NumCols())
	for j := 0; j < t.NumCols(); j++ {
		if j != opts.ClassColumn {
			attrCols = append(attrCols, j)
		}
	}
	p.Attributes = len(attrCols)
	if rows > 0 {
		p.Dimensionality = float64(p.Attributes) / float64(rows)
	}

	// Per-column profiles and completeness.
	totalCells, observedCells := 0, 0
	var outlierSum float64
	numericCount := 0
	for _, j := range attrCols {
		c := t.Column(j)
		cp := ColumnProfile{Name: c.Name, Kind: c.Kind.String(), Mean: math.NaN(), StdDev: math.NaN()}
		miss := c.MissingCount()
		totalCells += rows
		observedCells += rows - miss
		if rows > 0 {
			cp.Completeness = float64(rows-miss) / float64(rows)
		}
		if c.Kind == table.Numeric {
			cp.OutlierRatio = stats.IQROutlierRatio(c.Nums, 1.5)
			cp.Mean = stats.Mean(c.Nums)
			cp.StdDev = stats.StdDev(c.Nums)
			outlierSum += cp.OutlierRatio
			numericCount++
		} else {
			cp.Levels = c.NumLevels()
			cp.Entropy = stats.Entropy(c.Counts())
		}
		p.Columns = append(p.Columns, cp)
	}
	if totalCells > 0 {
		p.Completeness = float64(observedCells) / float64(totalCells)
	} else {
		p.Completeness = 1
	}
	if numericCount > 0 {
		p.OutlierRatio = outlierSum / float64(numericCount)
	}

	// Duplicates.
	if rows > 0 {
		seen := make(map[string]bool, rows)
		dups := 0
		for r := 0; r < rows; r++ {
			k := t.RowKey(r)
			if seen[k] {
				dups++
			} else {
				seen[k] = true
			}
		}
		p.DuplicateRatio = float64(dups) / float64(rows)
	}

	// Pairwise association. Identifier-like nominal columns (near one
	// level per row) are excluded: a contingency table against a unique
	// key is degenerate, Cramér's V saturates at 1 and would report
	// redundancy where there is none.
	corrCols := make([]int, 0, len(attrCols))
	for _, j := range attrCols {
		c := t.Column(j)
		if c.Kind == table.Nominal && rows > 4 && c.NumLevels() > rows/2 {
			continue
		}
		corrCols = append(corrCols, j)
	}
	if len(corrCols) > opts.MaxCorrelationColumns {
		corrCols = corrCols[:opts.MaxCorrelationColumns]
	}
	p.MeanAbsCorrelation, p.MaxAbsCorrelation, p.CorrelatedPairs = pairwiseAssociation(t, corrCols)

	// Class-dependent measures.
	if opts.ClassColumn >= 0 && opts.ClassColumn < t.NumCols() &&
		t.Column(opts.ClassColumn).Kind == table.Nominal {
		cls := t.Column(opts.ClassColumn)
		counts := cls.Counts()
		p.ClassLevels = nonZero(counts)
		p.ClassBalance = stats.NormalizedEntropy(counts)
		p.MinorityFraction = minorityFraction(counts, rows)
		p.NoiseEstimate = oneNNDisagreement(t, attrCols, opts.ClassColumn, opts.MaxNoiseSample)
	}
	return p
}

// Severity maps the profile onto a [0,1] defect intensity for one
// criterion; 0 means pristine. These are the coordinates used both when
// recording experiment outcomes and when querying the knowledge base for
// advice, so recording and querying agree by construction.
func (p Profile) Severity(c Criterion) float64 {
	switch c {
	case Completeness:
		return clamp01(1 - p.Completeness)
	case Duplicates:
		return clamp01(p.DuplicateRatio)
	case Correlation:
		return clamp01(p.MeanAbsCorrelation)
	case Imbalance:
		return clamp01(1 - p.ClassBalance)
	case LabelNoise:
		return clamp01(p.NoiseEstimate)
	case AttributeNoise:
		return clamp01(p.OutlierRatio)
	case Dimensionality:
		// attrs/rows of 0.5 or worse is fully severe; ~0.01 is benign.
		return clamp01(p.Dimensionality / 0.5)
	default:
		return 0
	}
}

// Severities returns the severity vector over AllCriteria order.
func (p Profile) Severities() []float64 {
	out := make([]float64, numCriteria)
	for _, c := range AllCriteria() {
		out[c] = p.Severity(c)
	}
	return out
}

// DominantCriteria returns the criteria with severity >= threshold, most
// severe first — "the data quality problems this source actually has".
func (p Profile) DominantCriteria(threshold float64) []Criterion {
	type cs struct {
		c Criterion
		s float64
	}
	var list []cs
	for _, c := range AllCriteria() {
		if s := p.Severity(c); s >= threshold {
			list = append(list, cs{c, s})
		}
	}
	sort.SliceStable(list, func(i, j int) bool { return list[i].s > list[j].s })
	out := make([]Criterion, len(list))
	for i, e := range list {
		out[i] = e.c
	}
	return out
}

// pairwiseAssociation computes mean/max absolute association and the count
// of strongly associated pairs over the given columns. Numeric-numeric
// pairs use |Pearson|; nominal-nominal use Cramér's V; mixed pairs use the
// correlation ratio approximated by Cramér's V on a binned numeric side.
func pairwiseAssociation(t *table.Table, cols []int) (mean, max float64, strong int) {
	n := len(cols)
	if n < 2 {
		return 0, 0, 0
	}
	sum, cnt := 0.0, 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			v := association(t, cols[a], cols[b])
			sum += v
			cnt++
			if v > max {
				max = v
			}
			if v >= 0.8 {
				strong++
			}
		}
	}
	if cnt == 0 {
		return 0, 0, 0
	}
	return sum / float64(cnt), max, strong
}

// association returns |association| in [0,1] between two columns.
func association(t *table.Table, a, b int) float64 {
	ca, cb := t.Column(a), t.Column(b)
	switch {
	case ca.Kind == table.Numeric && cb.Kind == table.Numeric:
		return math.Abs(stats.Pearson(ca.Nums, cb.Nums))
	case ca.Kind == table.Nominal && cb.Kind == table.Nominal:
		return stats.CramersV(crossTab(ca.Cats, ca.NumLevels(), cb.Cats, cb.NumLevels()))
	case ca.Kind == table.Numeric:
		return stats.CramersV(crossTab(binNumeric(ca.Nums, 4), 4, cb.Cats, cb.NumLevels()))
	default:
		return stats.CramersV(crossTab(ba(cb, ca))) // symmetric: swap
	}
}

// ba adapts the mixed case with the numeric column second.
func ba(num *table.Column, nom *table.Column) ([]int, int, []int, int) {
	return binNumeric(num.Nums, 4), 4, nom.Cats, nom.NumLevels()
}

// crossTab builds a contingency table from two code vectors; negative
// codes (missing) are skipped pairwise.
func crossTab(as []int, aLevels int, bs []int, bLevels int) [][]int {
	if aLevels < 1 {
		aLevels = 1
	}
	if bLevels < 1 {
		bLevels = 1
	}
	tab := make([][]int, aLevels)
	for i := range tab {
		tab[i] = make([]int, bLevels)
	}
	n := len(as)
	if len(bs) < n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		if as[i] < 0 || bs[i] < 0 || as[i] >= aLevels || bs[i] >= bLevels {
			continue
		}
		tab[as[i]][bs[i]]++
	}
	return tab
}

// binNumeric discretizes a numeric column into k quantile bins, returning
// code -1 for missing cells.
func binNumeric(xs []float64, k int) []int {
	cuts := make([]float64, k-1)
	for i := 1; i < k; i++ {
		cuts[i-1] = stats.Quantile(xs, float64(i)/float64(k))
	}
	out := make([]int, len(xs))
	for i, v := range xs {
		if stats.IsMissing(v) {
			out[i] = -1
			continue
		}
		bin := 0
		for bin < len(cuts) && v > cuts[bin] {
			bin++
		}
		out[i] = bin
	}
	return out
}

// oneNNDisagreement estimates label noise as the fraction of sampled rows
// whose nearest neighbour (heterogeneous Gower-style distance) carries a
// different label. Clean separable data scores near 0; heavily mislabeled
// data scores near the flip rate. Sampling is stride-based for determinism.
func oneNNDisagreement(t *table.Table, attrCols []int, classCol, maxSample int) float64 {
	rows := t.NumRows()
	if rows < 4 || len(attrCols) == 0 {
		return 0
	}
	cls := t.Column(classCol)
	sample := strideSample(rows, maxSample)

	// Precompute numeric ranges for scaling.
	ranges := make(map[int]float64, len(attrCols))
	for _, j := range attrCols {
		c := t.Column(j)
		if c.Kind != table.Numeric {
			continue
		}
		lo, hi := stats.MinMax(c.Nums)
		if !stats.IsMissing(lo) && hi > lo {
			ranges[j] = hi - lo
		}
	}

	disagree, counted := 0, 0
	for _, r := range sample {
		if cls.IsMissing(r) {
			continue
		}
		bestD := math.Inf(1)
		bestRow := -1
		for _, q := range sample {
			if q == r || cls.IsMissing(q) {
				continue
			}
			d := gowerDistance(t, attrCols, ranges, r, q)
			if d < bestD {
				bestD = d
				bestRow = q
			}
		}
		if bestRow < 0 {
			continue
		}
		counted++
		if cls.Cats[r] != cls.Cats[bestRow] {
			disagree++
		}
	}
	if counted == 0 {
		return 0
	}
	return float64(disagree) / float64(counted)
}

// gowerDistance is a heterogeneous distance: scaled absolute difference on
// numeric attributes, 0/1 mismatch on nominal, averaged over attributes
// observed on both rows; missing-on-either contributes maximal 1.
func gowerDistance(t *table.Table, attrCols []int, ranges map[int]float64, a, b int) float64 {
	sum := 0.0
	for _, j := range attrCols {
		c := t.Column(j)
		if c.IsMissing(a) || c.IsMissing(b) {
			sum += 1
			continue
		}
		if c.Kind == table.Numeric {
			rg := ranges[j]
			if rg == 0 {
				continue
			}
			d := math.Abs(c.Nums[a]-c.Nums[b]) / rg
			if d > 1 {
				d = 1
			}
			sum += d
		} else if c.Cats[a] != c.Cats[b] {
			sum += 1
		}
	}
	return sum / float64(len(attrCols))
}

// strideSample returns up to max row indices spread evenly over [0,rows).
func strideSample(rows, max int) []int {
	if rows <= max {
		out := make([]int, rows)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, max)
	for i := 0; i < max; i++ {
		out[i] = i * rows / max
	}
	return out
}

func nonZero(counts []int) int {
	n := 0
	for _, c := range counts {
		if c > 0 {
			n++
		}
	}
	return n
}

func minorityFraction(counts []int, rows int) float64 {
	if rows == 0 {
		return 0
	}
	min := -1
	for _, c := range counts {
		if c == 0 {
			continue
		}
		if min < 0 || c < min {
			min = c
		}
	}
	if min < 0 {
		return 0
	}
	return float64(min) / float64(rows)
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
