package dq

import (
	"sort"

	"openbi/internal/rdf"
	"openbi/internal/stats"
)

// LODSketch computes an LODProfile incrementally from a triple stream,
// without a resident graph: no subject/predicate/object indexes, no
// triple slice — just the distinct-triple set tagged with each triple's
// first-occurrence position. Feed it triples one at a time (Add is a
// TripleFunc, so it plugs straight into rdf.Stream) and call Profile at
// the end; the result is identical to MeasureLOD over the graph the same
// stream would load (MeasureLOD itself is implemented on the sketch).
//
// Sketches are mergeable, mirroring kb.Merge's discipline for KB shards:
// profile the partitions of a huge graph independently — each partition
// sketch created with NewLODSketchAt at its raw-stream offset — then
// Merge them in any order. The merged profile is deterministic under
// permutation and equal to a single pass over the whole stream, because
// every order-sensitive quantity (a subject's first rdf:type) is resolved
// by the global first-occurrence position, not by merge order.
type LODSketch struct {
	seen map[rdf.Triple]uint64 // distinct triple -> first-occurrence position
	seq  uint64                // position of the next raw triple
}

// NewLODSketch returns an empty sketch positioned at the start of the
// stream.
func NewLODSketch() *LODSketch { return NewLODSketchAt(0) }

// NewLODSketchAt returns an empty sketch for a stream partition beginning
// at the given raw-triple offset (the number of triples, duplicates
// included, that precede the partition). Offsets make first-occurrence
// positions globally comparable, so merged partition sketches resolve
// order-sensitive measures exactly as one monolithic pass would.
func NewLODSketchAt(base uint64) *LODSketch {
	return &LODSketch{seen: make(map[rdf.Triple]uint64), seq: base}
}

// Add observes one raw triple. Duplicates advance the stream position but
// are otherwise ignored (RDF graphs are triple sets). It never fails; the
// error return matches rdf.TripleFunc.
func (s *LODSketch) Add(tr rdf.Triple) error {
	if _, dup := s.seen[tr]; !dup {
		s.seen[tr] = s.seq
	}
	s.seq++
	return nil
}

// Len returns the number of distinct triples observed.
func (s *LODSketch) Len() int { return len(s.seen) }

// Observed returns the stream position after the last Add — for a sketch
// started at offset b that saw n raw triples, b+n. Use it as the next
// partition's NewLODSketchAt offset when slicing a stream sequentially.
func (s *LODSketch) Observed() uint64 { return s.seq }

// Merge folds other partition sketches into s, in any order: the distinct
// sets union and each triple keeps its smallest (earliest) position.
// Overlapping partitions are harmless — a triple seen by several sketches
// still counts once.
func (s *LODSketch) Merge(others ...*LODSketch) {
	for _, o := range others {
		for tr, pos := range o.seen {
			if cur, ok := s.seen[tr]; !ok || pos < cur {
				s.seen[tr] = pos
			}
		}
		if o.seq > s.seq {
			s.seq = o.seq
		}
	}
}

// Profile computes the LODProfile of everything observed so far. All
// iteration over internal maps is sorted before any float accumulation,
// so the result is bit-for-bit reproducible run to run and invariant
// under partitioning and merge order.
func (s *LODSketch) Profile() LODProfile {
	p := LODProfile{Triples: len(s.seen)}

	typePred := rdf.NewIRI(rdf.RDFType)
	labelPred := rdf.NewIRI(rdf.RDFSLabel)
	sameAs := rdf.NewIRI(rdf.OWLSameAs)

	// Pass 1: subjects, and each subject's first rdf:type (earliest
	// position; ties — possible only with misused partition offsets —
	// break on term order so the result stays deterministic).
	type subjAgg struct {
		typ     rdf.Term
		typeSeq uint64
		hasType bool
		labeled bool
	}
	subjs := make(map[rdf.Term]*subjAgg)
	for tr, pos := range s.seen {
		sa := subjs[tr.S]
		if sa == nil {
			sa = &subjAgg{}
			subjs[tr.S] = sa
		}
		if tr.P == typePred {
			if !sa.hasType || pos < sa.typeSeq || (pos == sa.typeSeq && termLess(tr.O, sa.typ)) {
				sa.typ, sa.typeSeq, sa.hasType = tr.O, pos, true
			}
		}
	}
	p.Entities = len(subjs)
	if p.Entities == 0 {
		return p
	}

	// Class membership; "" is the classless bucket.
	classCounts := map[string]int{}
	for _, sa := range subjs {
		cls := ""
		if sa.hasType {
			cls = sa.typ.Value
		}
		classCounts[cls]++
	}
	classes := make([]string, 0, len(classCounts))
	for c := range classCounts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	counts := make([]int, 0, len(classes))
	for _, c := range classes {
		counts = append(counts, classCounts[c])
	}
	p.ClassEntropy = stats.NormalizedEntropy(counts)

	// Pass 2: per (class, predicate) coverage, labels, links. rdf:type and
	// rdfs:label are meta, not attributes.
	type cp struct {
		class string
		pred  rdf.Term
	}
	carriers := map[cp]map[rdf.Term]bool{}
	dangling, iriLinks, sameAsCount, labeled := 0, 0, 0, 0
	for tr := range s.seen {
		if tr.P == typePred {
			continue
		}
		if tr.P == labelPred {
			if sa := subjs[tr.S]; !sa.labeled {
				sa.labeled = true
				labeled++
			}
			continue
		}
		if tr.P == sameAs {
			sameAsCount++
		}
		cls := ""
		if sa := subjs[tr.S]; sa.hasType {
			cls = sa.typ.Value
		}
		key := cp{cls, tr.P}
		set := carriers[key]
		if set == nil {
			set = map[rdf.Term]bool{}
			carriers[key] = set
		}
		set[tr.S] = true
		if tr.O.IsIRI() {
			iriLinks++
			if _, isSubject := subjs[tr.O]; !isSubject {
				dangling++
			}
		}
	}

	if len(carriers) > 0 {
		keys := make([]cp, 0, len(carriers))
		for key := range carriers {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].class != keys[b].class {
				return keys[a].class < keys[b].class
			}
			return termLess(keys[a].pred, keys[b].pred)
		})
		sum := 0.0
		predsPerClass := map[string]int{}
		for _, key := range keys {
			if total := classCounts[key.class]; total > 0 {
				sum += float64(len(carriers[key])) / float64(total)
			}
			predsPerClass[key.class]++
		}
		p.PropertyCompleteness = sum / float64(len(carriers))
		tot := 0
		for _, n := range predsPerClass {
			tot += n
		}
		p.PredicatesPerClass = float64(tot) / float64(len(predsPerClass))
	}
	if iriLinks > 0 {
		p.DanglingLinkRatio = float64(dangling) / float64(iriLinks)
	}
	p.SameAsRatio = float64(sameAsCount) / float64(p.Entities)
	p.LabelCoverage = float64(labeled) / float64(p.Entities)
	return p
}

// termLess is the canonical term order (kind, value, lang, datatype) —
// the same order rdf's deterministic listings use.
func termLess(a, b rdf.Term) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	if a.Lang != b.Lang {
		return a.Lang < b.Lang
	}
	return a.Datatype < b.Datatype
}
