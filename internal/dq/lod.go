package dq

import (
	"sort"

	"openbi/internal/rdf"
	"openbi/internal/stats"
)

// LODProfile measures quality criteria that exist *before* projection, on
// the graph itself — the paper's observation that mining LOD is hard "not
// only because of the different kind of links among data, but also
// because of its high dimensionality" (§1). Table-level profiling (Measure)
// sees neither dangling links nor sameAs mirrors; this does.
type LODProfile struct {
	Triples  int
	Entities int // distinct subjects

	// PropertyCompleteness is the mean, over (class, predicate) pairs, of
	// the fraction of the class's entities carrying the predicate — the
	// graph-level analogue of cell completeness.
	PropertyCompleteness float64
	// DanglingLinkRatio is the fraction of IRI-object links whose target
	// never occurs as a subject (broken inter-source links).
	DanglingLinkRatio float64
	// SameAsRatio is owl:sameAs triples per entity — a proxy for
	// duplicated entities published by multiple portals.
	SameAsRatio float64
	// LabelCoverage is the fraction of entities carrying an rdfs:label.
	LabelCoverage float64
	// PredicatesPerClass is the mean distinct predicate count per class —
	// the dimensionality a projection of that class will inherit.
	PredicatesPerClass float64
	// ClassEntropy is the normalized entropy of the entity-per-class
	// distribution; low values mean one class dominates the graph.
	ClassEntropy float64
}

// MeasureLOD profiles a graph. Entities are subjects with at least one
// triple; classless subjects are grouped under a synthetic class for the
// completeness computation.
func MeasureLOD(g *rdf.Graph) LODProfile {
	p := LODProfile{Triples: g.Len()}
	subjects := g.Subjects()
	p.Entities = len(subjects)
	if p.Entities == 0 {
		return p
	}

	typePred := rdf.NewIRI(rdf.RDFType)
	labelPred := rdf.NewIRI(rdf.RDFSLabel)
	sameAs := rdf.NewIRI(rdf.OWLSameAs)

	// Class membership; "" is the classless bucket.
	classOf := make(map[rdf.Term]string, p.Entities)
	classCounts := map[string]int{}
	for _, s := range subjects {
		cls := ""
		if v, ok := g.FirstValue(s, typePred); ok {
			cls = v.Value
		}
		classOf[s] = cls
		classCounts[cls]++
	}
	counts := make([]int, 0, len(classCounts))
	classes := make([]string, 0, len(classCounts))
	for c := range classCounts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		counts = append(counts, classCounts[c])
	}
	p.ClassEntropy = stats.NormalizedEntropy(counts)

	// Per (class, predicate) coverage; rdf:type and rdfs:label excluded
	// (they are meta, not attributes).
	type cp struct {
		class string
		pred  rdf.Term
	}
	carriers := map[cp]map[rdf.Term]bool{}
	labeled := map[rdf.Term]bool{}
	dangling, iriLinks := 0, 0
	isSubject := make(map[rdf.Term]bool, p.Entities)
	for _, s := range subjects {
		isSubject[s] = true
	}
	sameAsCount := 0
	for _, tr := range g.Triples() {
		if tr.P == typePred {
			continue
		}
		if tr.P == labelPred {
			labeled[tr.S] = true
			continue
		}
		if tr.P == sameAs {
			sameAsCount++
		}
		key := cp{classOf[tr.S], tr.P}
		set := carriers[key]
		if set == nil {
			set = map[rdf.Term]bool{}
			carriers[key] = set
		}
		set[tr.S] = true
		if tr.O.IsIRI() {
			iriLinks++
			if !isSubject[tr.O] {
				dangling++
			}
		}
	}

	if len(carriers) > 0 {
		sum := 0.0
		predsPerClass := map[string]int{}
		for key, set := range carriers {
			total := classCounts[key.class]
			if total > 0 {
				sum += float64(len(set)) / float64(total)
			}
			predsPerClass[key.class]++
		}
		p.PropertyCompleteness = sum / float64(len(carriers))
		tot := 0
		for _, n := range predsPerClass {
			tot += n
		}
		p.PredicatesPerClass = float64(tot) / float64(len(predsPerClass))
	}
	if iriLinks > 0 {
		p.DanglingLinkRatio = float64(dangling) / float64(iriLinks)
	}
	p.SameAsRatio = float64(sameAsCount) / float64(p.Entities)
	p.LabelCoverage = float64(len(labeled)) / float64(p.Entities)
	return p
}
