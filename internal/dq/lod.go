package dq

import (
	"openbi/internal/rdf"
)

// LODProfile measures quality criteria that exist *before* projection, on
// the graph itself — the paper's observation that mining LOD is hard "not
// only because of the different kind of links among data, but also
// because of its high dimensionality" (§1). Table-level profiling (Measure)
// sees neither dangling links nor sameAs mirrors; this does.
type LODProfile struct {
	Triples  int
	Entities int // distinct subjects

	// PropertyCompleteness is the mean, over (class, predicate) pairs, of
	// the fraction of the class's entities carrying the predicate — the
	// graph-level analogue of cell completeness.
	PropertyCompleteness float64
	// DanglingLinkRatio is the fraction of IRI-object links whose target
	// never occurs as a subject (broken inter-source links).
	DanglingLinkRatio float64
	// SameAsRatio is owl:sameAs triples per entity — a proxy for
	// duplicated entities published by multiple portals.
	SameAsRatio float64
	// LabelCoverage is the fraction of entities carrying an rdfs:label.
	LabelCoverage float64
	// PredicatesPerClass is the mean distinct predicate count per class —
	// the dimensionality a projection of that class will inherit.
	PredicatesPerClass float64
	// ClassEntropy is the normalized entropy of the entity-per-class
	// distribution; low values mean one class dominates the graph.
	ClassEntropy float64
}

// MeasureLOD profiles a graph. Entities are subjects with at least one
// triple; classless subjects are grouped under a synthetic class for the
// completeness computation. It is implemented on LODSketch — one pass of
// Add over the graph's triples — so the batch and streaming profiling
// paths compute the exact same numbers by construction.
func MeasureLOD(g *rdf.Graph) LODProfile {
	sk := NewLODSketch()
	for _, tr := range g.Triples() {
		sk.Add(tr) // Graph triples are already distinct, in insertion order
	}
	return sk.Profile()
}
