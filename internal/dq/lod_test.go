package dq

import (
	"math"
	"testing"

	"openbi/internal/rdf"
	"openbi/internal/synth"
)

func TestMeasureLODEmpty(t *testing.T) {
	p := MeasureLOD(rdf.NewGraph())
	if p.Entities != 0 || p.Triples != 0 {
		t.Fatalf("empty graph profile: %+v", p)
	}
}

func buildLODFixture() *rdf.Graph {
	g := rdf.NewGraph()
	typ := rdf.NewIRI(rdf.RDFType)
	label := rdf.NewIRI(rdf.RDFSLabel)
	cls := rdf.NewIRI("http://d/Thing")
	pop := rdf.NewIRI("http://d/pop")
	link := rdf.NewIRI("http://d/link")
	for i := 0; i < 4; i++ {
		s := rdf.NewIRI("http://e/" + string(rune('a'+i)))
		g.Add(rdf.Triple{S: s, P: typ, O: cls})
		if i < 2 {
			g.Add(rdf.Triple{S: s, P: label, O: rdf.NewLiteral("thing")})
		}
		if i < 3 { // pop present on 3 of 4 entities
			g.Add(rdf.Triple{S: s, P: pop, O: rdf.NewInteger(int64(i))})
		}
	}
	// One resolvable link, one dangling link.
	g.Add(rdf.Triple{S: rdf.NewIRI("http://e/a"), P: link, O: rdf.NewIRI("http://e/b")})
	g.Add(rdf.Triple{S: rdf.NewIRI("http://e/b"), P: link, O: rdf.NewIRI("http://nowhere/x")})
	return g
}

func TestMeasureLODCoverage(t *testing.T) {
	p := MeasureLOD(buildLODFixture())
	if p.Entities != 4 {
		t.Fatalf("entities = %d", p.Entities)
	}
	if math.Abs(p.LabelCoverage-0.5) > 1e-12 {
		t.Fatalf("label coverage = %v, want 0.5", p.LabelCoverage)
	}
	if math.Abs(p.DanglingLinkRatio-0.5) > 1e-12 {
		t.Fatalf("dangling ratio = %v, want 0.5 (1 of 2 IRI links)", p.DanglingLinkRatio)
	}
	// pop covers 3/4, link covers 2/4 -> mean (0.75+0.5)/2 = 0.625.
	if math.Abs(p.PropertyCompleteness-0.625) > 1e-12 {
		t.Fatalf("property completeness = %v, want 0.625", p.PropertyCompleteness)
	}
	if p.SameAsRatio != 0 {
		t.Fatalf("sameAs ratio = %v", p.SameAsRatio)
	}
	if p.ClassEntropy != 1 {
		t.Fatalf("single-class entropy = %v, want 1 by convention", p.ClassEntropy)
	}
}

func TestMeasureLODDirtinessMoves(t *testing.T) {
	cleanG, err := synth.MunicipalBudgetLOD(synth.LODSpec{Entities: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dirtyG, err := synth.MunicipalBudgetLOD(synth.LODSpec{Entities: 300, Seed: 1, Dirtiness: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	pc := MeasureLOD(cleanG)
	pd := MeasureLOD(dirtyG)
	if pd.PropertyCompleteness >= pc.PropertyCompleteness {
		t.Fatalf("dirtiness should reduce property completeness: %v vs %v",
			pd.PropertyCompleteness, pc.PropertyCompleteness)
	}
	if pd.SameAsRatio <= pc.SameAsRatio {
		t.Fatalf("dirtiness should add sameAs mirrors: %v vs %v",
			pd.SameAsRatio, pc.SameAsRatio)
	}
	if pc.LabelCoverage < 0.9 {
		t.Fatalf("clean label coverage = %v", pc.LabelCoverage)
	}
}

func TestMeasureLODClassEntropy(t *testing.T) {
	g := rdf.NewGraph()
	typ := rdf.NewIRI(rdf.RDFType)
	a := rdf.NewIRI("http://d/A")
	b := rdf.NewIRI("http://d/B")
	// 9 of class A, 1 of class B: low normalized entropy.
	for i := 0; i < 9; i++ {
		g.Add(rdf.Triple{S: rdf.NewIRI(rdf.RDFSLabel + string(rune('0'+i))), P: typ, O: a})
	}
	g.Add(rdf.Triple{S: rdf.NewIRI("http://e/only"), P: typ, O: b})
	p := MeasureLOD(g)
	if p.ClassEntropy > 0.6 {
		t.Fatalf("skewed class entropy = %v, want low", p.ClassEntropy)
	}
}
