package stats

import "math/rand"

// NewRand returns a deterministic *rand.Rand for the given seed. Every
// stochastic component in the repository (injection, sampling, SGD,
// synthetic generators) draws from an explicitly seeded source so that
// experiments — and therefore the DQ4DM knowledge base built from them —
// are reproducible bit for bit, as §3.1 of the paper requires of a
// "controlled manner" of introducing data quality problems.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Perm fills a deterministic permutation of [0,n).
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0,n). When k >= n it returns a full permutation.
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	p := rng.Perm(n)
	if k >= n {
		return p
	}
	return p[:k]
}

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func Gaussian(rng *rand.Rand, mean, sd float64) float64 {
	return mean + sd*rng.NormFloat64()
}

// Categorical draws an index from the (unnormalized, non-negative) weight
// vector w. A zero-sum weight vector yields index 0.
func Categorical(rng *rand.Rand, w []float64) int {
	total := 0.0
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		return 0
	}
	u := rng.Float64() * total
	cum := 0.0
	for i, v := range w {
		cum += v
		if u < cum {
			return i
		}
	}
	return len(w) - 1
}

// Bootstrap returns n indices drawn with replacement from [0,n).
func Bootstrap(rng *rand.Rand, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}
