package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMeanSkipsMissing(t *testing.T) {
	if got := Mean([]float64{1, math.NaN(), 3}); got != 2 {
		t.Fatalf("Mean with NaN = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); !math.IsNaN(got) {
		t.Fatalf("Mean(nil) = %v, want NaN", got)
	}
	if got := Mean([]float64{math.NaN()}); !math.IsNaN(got) {
		t.Fatalf("Mean(all-missing) = %v, want NaN", got)
	}
}

func TestVariance(t *testing.T) {
	// Known: variance of {2,4,4,4,5,5,7,9} is 4.571428... (sample, n-1)
	v := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7.0)
	}
}

func TestVarianceInsufficient(t *testing.T) {
	if got := Variance([]float64{5}); !math.IsNaN(got) {
		t.Fatalf("Variance of single value = %v, want NaN", got)
	}
}

func TestStdDevIsSqrtVariance(t *testing.T) {
	xs := []float64{1, 3, 5, 9, 11}
	if !almostEq(StdDev(xs), math.Sqrt(Variance(xs)), 1e-12) {
		t.Fatalf("StdDev != sqrt(Variance)")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, math.NaN(), -2, 7})
	if lo != -2 || hi != 7 {
		t.Fatalf("MinMax = (%v,%v), want (-2,7)", lo, hi)
	}
}

func TestMinMaxAllMissing(t *testing.T) {
	lo, hi := MinMax([]float64{math.NaN()})
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatalf("MinMax all-missing = (%v,%v), want NaN", lo, hi)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestMedianOdd(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Fatalf("Median = %v, want 5", got)
	}
}

func TestIQROutlierRatio(t *testing.T) {
	// 19 tight values, one far outlier.
	xs := make([]float64, 0, 20)
	for i := 0; i < 19; i++ {
		xs = append(xs, float64(i%5))
	}
	xs = append(xs, 1000)
	r := IQROutlierRatio(xs, 1.5)
	if !almostEq(r, 1.0/20.0, 1e-12) {
		t.Fatalf("IQROutlierRatio = %v, want 0.05", r)
	}
}

func TestIQROutlierRatioClean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if r := IQROutlierRatio(xs, 1.5); r != 0 {
		t.Fatalf("clean outlier ratio = %v, want 0", r)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantIsZero(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("Pearson constant = %v, want 0", got)
	}
}

func TestPearsonPairwiseMissing(t *testing.T) {
	xs := []float64{1, 2, math.NaN(), 4}
	ys := []float64{2, 4, 100, 8}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Fatalf("Pearson pairwise = %v, want 1", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // nonlinear but monotone
	if got := Spearman(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", got)
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEq(r[i], want[i], 1e-12) {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestRanksMissingStaysNaN(t *testing.T) {
	r := Ranks([]float64{5, math.NaN(), 1})
	if !math.IsNaN(r[1]) {
		t.Fatalf("rank of missing = %v, want NaN", r[1])
	}
	if r[2] != 1 || r[0] != 2 {
		t.Fatalf("ranks = %v, want [2 NaN 1]", r)
	}
}

func TestCovarianceMatchesVariance(t *testing.T) {
	xs := []float64{1, 4, 2, 8, 5}
	if !almostEq(Covariance(xs, xs), Variance(xs), 1e-12) {
		t.Fatalf("Cov(x,x) != Var(x)")
	}
}

func TestEntropyUniform(t *testing.T) {
	if got := Entropy([]int{5, 5, 5, 5}); !almostEq(got, 2, 1e-12) {
		t.Fatalf("Entropy uniform-4 = %v, want 2 bits", got)
	}
}

func TestEntropyDegenerate(t *testing.T) {
	if got := Entropy([]int{7, 0, 0}); got != 0 {
		t.Fatalf("Entropy degenerate = %v, want 0", got)
	}
}

func TestNormalizedEntropy(t *testing.T) {
	if got := NormalizedEntropy([]int{10, 10}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("balanced normalized entropy = %v, want 1", got)
	}
	if got := NormalizedEntropy([]int{100}); got != 1 {
		t.Fatalf("single-class normalized entropy = %v, want 1 by convention", got)
	}
	skewed := NormalizedEntropy([]int{99, 1})
	if skewed >= 0.2 || skewed <= 0 {
		t.Fatalf("skewed normalized entropy = %v, want small positive", skewed)
	}
}

func TestChiSquareIndependent(t *testing.T) {
	// Perfectly independent table: chi2 = 0.
	chi2, dof := ChiSquare([][]int{{10, 20}, {20, 40}})
	if !almostEq(chi2, 0, 1e-9) || dof != 1 {
		t.Fatalf("ChiSquare = (%v,%d), want (0,1)", chi2, dof)
	}
}

func TestChiSquareKnown(t *testing.T) {
	// {{10,20},{30,5}}: expected counts 18.4615/11.5385/21.5385/13.4615,
	// each cell contributes (obs-exp)²/exp, total ≈ 18.726.
	chi2, dof := ChiSquare([][]int{{10, 20}, {30, 5}})
	if dof != 1 {
		t.Fatalf("dof = %d, want 1", dof)
	}
	if math.Abs(chi2-18.726) > 0.01 {
		t.Fatalf("chi2 = %v, want ≈18.726", chi2)
	}
}

func TestCramersVPerfectAssociation(t *testing.T) {
	v := CramersV([][]int{{50, 0}, {0, 50}})
	if !almostEq(v, 1, 1e-12) {
		t.Fatalf("CramersV diagonal = %v, want 1", v)
	}
}

func TestCramersVIndependent(t *testing.T) {
	v := CramersV([][]int{{25, 25}, {25, 25}})
	if !almostEq(v, 0, 1e-12) {
		t.Fatalf("CramersV independent = %v, want 0", v)
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	if mi := MutualInformation([][]int{{25, 25}, {25, 25}}); !almostEq(mi, 0, 1e-12) {
		t.Fatalf("MI independent = %v, want 0", mi)
	}
}

func TestMutualInformationPerfect(t *testing.T) {
	// Perfectly dependent binary variables share 1 bit.
	if mi := MutualInformation([][]int{{50, 0}, {0, 50}}); !almostEq(mi, 1, 1e-12) {
		t.Fatalf("MI perfect = %v, want 1 bit", mi)
	}
}

func TestStandardize(t *testing.T) {
	out := Standardize([]float64{2, 4, 6})
	if !almostEq(Mean(out), 0, 1e-12) {
		t.Fatalf("standardized mean = %v, want 0", Mean(out))
	}
	if !almostEq(StdDev(out), 1, 1e-12) {
		t.Fatalf("standardized sd = %v, want 1", StdDev(out))
	}
}

func TestStandardizePreservesMissing(t *testing.T) {
	out := Standardize([]float64{1, math.NaN(), 3})
	if !math.IsNaN(out[1]) {
		t.Fatalf("missing not preserved: %v", out)
	}
}

func TestStandardizeConstantColumn(t *testing.T) {
	out := Standardize([]float64{5, 5, 5})
	for _, v := range out {
		if v != 0 {
			t.Fatalf("constant column standardize = %v, want zeros", out)
		}
	}
}

// Property: Pearson is always in [-1, 1] and symmetric.
func TestPearsonPropertyBounds(t *testing.T) {
	f := func(rawX, rawY []int32) bool {
		xs := make([]float64, len(rawX))
		for i, v := range rawX {
			xs[i] = float64(v)
		}
		ys := make([]float64, len(rawY))
		for i, v := range rawY {
			ys[i] = float64(v)
		}
		r := Pearson(xs, ys)
		r2 := Pearson(ys, xs)
		return r >= -1.0000001 && r <= 1.0000001 && almostEq(r, r2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Entropy is non-negative and maximal for uniform counts.
func TestEntropyPropertyBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int, len(raw))
		total := 0
		for i, v := range raw {
			counts[i] = int(v)
			total += int(v)
		}
		h := Entropy(counts)
		if h < 0 {
			return false
		}
		k := 0
		for _, c := range counts {
			if c > 0 {
				k++
			}
		}
		if k == 0 {
			return h == 0
		}
		return h <= math.Log2(float64(k))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bracketed by min/max.
func TestQuantilePropertyMonotone(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		lo, hi := MinMax(xs)
		q25, q50, q75 := Quantile(xs, 0.25), Quantile(xs, 0.5), Quantile(xs, 0.75)
		return lo <= q25 && q25 <= q50 && q50 <= q75 && q75 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
