package stats

import (
	"errors"
	"math"
	"sort"
)

// PCA holds the result of a principal component analysis: the column means
// used for centring, the eigenvalues of the covariance matrix in decreasing
// order, and the matching unit-length eigenvectors (components, one per row).
//
// The paper motivates PCA as the classical answer to LOD's high
// dimensionality (§1, ref [8]) — and criticises it for destroying data
// structure. The E-DIM experiment uses this implementation as the
// "structure-destroying" baseline against attribute selection.
type PCA struct {
	Means      []float64   // per-input-column mean
	Eigenvalue []float64   // decreasing
	Component  [][]float64 // Component[k][j]: weight of input column j in PC k
}

// FitPCA computes a PCA of the given column-major data (cols[j][i] is the
// i-th observation of variable j). Missing entries are replaced by the
// column mean before the covariance matrix is formed (mean imputation is
// the standard PCA fallback and keeps the fit defined on dirty data).
// It returns an error when there are no columns or no rows.
func FitPCA(cols [][]float64) (*PCA, error) {
	p := len(cols)
	if p == 0 {
		return nil, errors.New("stats: PCA requires at least one column")
	}
	n := len(cols[0])
	if n == 0 {
		return nil, errors.New("stats: PCA requires at least one row")
	}

	means := make([]float64, p)
	centered := make([][]float64, p)
	for j := 0; j < p; j++ {
		means[j] = Mean(cols[j])
		m := means[j]
		if IsMissing(m) {
			m = 0
			means[j] = 0
		}
		cj := make([]float64, n)
		for i := 0; i < n; i++ {
			v := cols[j][i]
			if IsMissing(v) {
				v = m
			}
			cj[i] = v - m
		}
		centered[j] = cj
	}

	// Covariance matrix (p×p, symmetric).
	cov := make([][]float64, p)
	for j := range cov {
		cov[j] = make([]float64, p)
	}
	denom := float64(n - 1)
	if denom <= 0 {
		denom = 1
	}
	for a := 0; a < p; a++ {
		for b := a; b < p; b++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += centered[a][i] * centered[b][i]
			}
			s /= denom
			cov[a][b] = s
			cov[b][a] = s
		}
	}

	vals, vecs := jacobiEigen(cov)

	// Order by decreasing eigenvalue.
	idx := make([]int, p)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	out := &PCA{Means: means, Eigenvalue: make([]float64, p), Component: make([][]float64, p)}
	for k, id := range idx {
		out.Eigenvalue[k] = vals[id]
		comp := make([]float64, p)
		for j := 0; j < p; j++ {
			comp[j] = vecs[j][id] // column id of the eigenvector matrix
		}
		out.Component[k] = comp
	}
	return out, nil
}

// ExplainedVariance returns, for each component, the fraction of total
// variance it explains.
func (p *PCA) ExplainedVariance() []float64 {
	total := 0.0
	for _, v := range p.Eigenvalue {
		if v > 0 {
			total += v
		}
	}
	out := make([]float64, len(p.Eigenvalue))
	if total == 0 {
		return out
	}
	for i, v := range p.Eigenvalue {
		if v > 0 {
			out[i] = v / total
		}
	}
	return out
}

// ComponentsFor returns the smallest number of leading components whose
// cumulative explained variance reaches the given fraction (0..1).
func (p *PCA) ComponentsFor(fraction float64) int {
	ev := p.ExplainedVariance()
	cum := 0.0
	for i, v := range ev {
		cum += v
		if cum >= fraction {
			return i + 1
		}
	}
	return len(ev)
}

// Transform projects column-major data onto the first k principal
// components, returning k new column-major columns. Missing values are
// mean-imputed exactly as in FitPCA.
func (p *PCA) Transform(cols [][]float64, k int) [][]float64 {
	if k > len(p.Component) {
		k = len(p.Component)
	}
	if len(cols) == 0 || k <= 0 {
		return nil
	}
	n := len(cols[0])
	out := make([][]float64, k)
	for c := 0; c < k; c++ {
		out[c] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for c := 0; c < k; c++ {
			s := 0.0
			for j := range cols {
				v := cols[j][i]
				if IsMissing(v) {
					v = p.Means[j]
				}
				s += (v - p.Means[j]) * p.Component[c][j]
			}
			out[c][i] = s
		}
	}
	return out
}

// jacobiEigen computes all eigenvalues and eigenvectors of a symmetric
// matrix with the cyclic Jacobi rotation method. It returns the eigenvalues
// and a matrix whose COLUMNS are the corresponding eigenvectors.
func jacobiEigen(a [][]float64) ([]float64, [][]float64) {
	n := len(a)
	// Work on a copy; a caller's covariance matrix must not be clobbered.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		copy(m[i], a[i])
	}
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i][i]
	}
	return vals, v
}
