package stats

import (
	"math"
	"testing"
)

// correlatedData builds two exactly linearly dependent columns plus one
// independent one.
func correlatedData(n int) [][]float64 {
	rng := NewRand(7)
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = 2 * a[i] // perfectly dependent
		c[i] = rng.NormFloat64()
	}
	return [][]float64{a, b, c}
}

func TestFitPCAErrors(t *testing.T) {
	if _, err := FitPCA(nil); err == nil {
		t.Fatal("FitPCA(nil) should error")
	}
	if _, err := FitPCA([][]float64{{}}); err == nil {
		t.Fatal("FitPCA(no rows) should error")
	}
}

func TestPCACapturesDependence(t *testing.T) {
	p, err := FitPCA(correlatedData(500))
	if err != nil {
		t.Fatal(err)
	}
	ev := p.ExplainedVariance()
	// Two of three dims are one line: 2 components must explain ~everything.
	if ev[0]+ev[1] < 0.999 {
		t.Fatalf("first two components explain %v, want ~1", ev[0]+ev[1])
	}
	if p.Eigenvalue[2] > 1e-6 {
		t.Fatalf("third eigenvalue = %v, want ~0", p.Eigenvalue[2])
	}
}

func TestPCAEigenvaluesSorted(t *testing.T) {
	p, err := FitPCA(correlatedData(200))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(p.Eigenvalue); i++ {
		if p.Eigenvalue[i] > p.Eigenvalue[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", p.Eigenvalue)
		}
	}
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	p, err := FitPCA(correlatedData(300))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Component {
		for j := range p.Component {
			dot := 0.0
			for k := range p.Component[i] {
				dot += p.Component[i][k] * p.Component[j][k]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("component dot(%d,%d) = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestPCATotalVariancePreserved(t *testing.T) {
	cols := correlatedData(400)
	p, err := FitPCA(cols)
	if err != nil {
		t.Fatal(err)
	}
	totalVar := 0.0
	for _, c := range cols {
		totalVar += Variance(c)
	}
	totalEig := 0.0
	for _, e := range p.Eigenvalue {
		totalEig += e
	}
	if math.Abs(totalVar-totalEig) > 1e-6*totalVar {
		t.Fatalf("trace mismatch: vars=%v eigs=%v", totalVar, totalEig)
	}
}

func TestPCATransformDecorrelates(t *testing.T) {
	cols := correlatedData(500)
	p, err := FitPCA(cols)
	if err != nil {
		t.Fatal(err)
	}
	proj := p.Transform(cols, 2)
	if len(proj) != 2 || len(proj[0]) != 500 {
		t.Fatalf("Transform shape = %dx%d, want 2x500", len(proj), len(proj[0]))
	}
	if r := math.Abs(Pearson(proj[0], proj[1])); r > 0.02 {
		t.Fatalf("projected correlation = %v, want ~0", r)
	}
}

func TestPCATransformVarianceMatchesEigenvalue(t *testing.T) {
	cols := correlatedData(800)
	p, _ := FitPCA(cols)
	proj := p.Transform(cols, 1)
	v := Variance(proj[0])
	if math.Abs(v-p.Eigenvalue[0]) > 0.02*p.Eigenvalue[0] {
		t.Fatalf("PC1 variance %v vs eigenvalue %v", v, p.Eigenvalue[0])
	}
}

func TestPCAComponentsFor(t *testing.T) {
	p, _ := FitPCA(correlatedData(300))
	if k := p.ComponentsFor(0.99); k != 2 {
		t.Fatalf("ComponentsFor(0.99) = %d, want 2", k)
	}
	if k := p.ComponentsFor(1.1); k != 3 {
		t.Fatalf("ComponentsFor(>1) = %d, want all (3)", k)
	}
}

func TestPCAHandlesMissing(t *testing.T) {
	cols := correlatedData(100)
	cols[0][3] = math.NaN()
	cols[2][50] = math.NaN()
	p, err := FitPCA(cols)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range p.Eigenvalue {
		if math.IsNaN(e) {
			t.Fatalf("NaN eigenvalue with missing input: %v", p.Eigenvalue)
		}
	}
	proj := p.Transform(cols, 2)
	for _, col := range proj {
		for _, v := range col {
			if math.IsNaN(v) {
				t.Fatal("NaN in projection of missing data")
			}
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := NewRand(1)
	s := SampleWithoutReplacement(rng, 10, 4)
	if len(s) != 4 {
		t.Fatalf("sample size = %d, want 4", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad sample %v", s)
		}
		seen[v] = true
	}
	if full := SampleWithoutReplacement(NewRand(2), 3, 10); len(full) != 3 {
		t.Fatalf("oversized k should return full perm, got %v", full)
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	rng := NewRand(3)
	counts := [3]int{}
	for i := 0; i < 10000; i++ {
		counts[Categorical(rng, []float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight ratio = %v, want ≈3", ratio)
	}
}

func TestCategoricalZeroWeights(t *testing.T) {
	if got := Categorical(NewRand(1), []float64{0, 0}); got != 0 {
		t.Fatalf("zero-sum weights = %d, want 0", got)
	}
}

func TestBootstrapBounds(t *testing.T) {
	b := Bootstrap(NewRand(9), 50)
	if len(b) != 50 {
		t.Fatalf("bootstrap size = %d", len(b))
	}
	for _, v := range b {
		if v < 0 || v >= 50 {
			t.Fatalf("bootstrap index %d out of range", v)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	rng := NewRand(11)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = Gaussian(rng, 10, 2)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.1 {
		t.Fatalf("gaussian mean = %v", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 0.1 {
		t.Fatalf("gaussian sd = %v", sd)
	}
}
