// Package stats provides the statistical substrate used across the OpenBI
// reproduction: descriptive statistics, correlation measures for numeric and
// nominal attributes, information-theoretic quantities, hypothesis-test
// statistics and principal component analysis.
//
// Everything is implemented on plain float64 slices so that the higher
// layers (dq, mining, inject) can use it without adopting a matrix type.
// All functions treat NaN as "missing" and skip such entries pairwise unless
// stated otherwise.
package stats

import (
	"math"
	"sort"
)

// IsMissing reports whether v encodes a missing observation. The whole
// code base uses NaN as the in-band missing marker for numeric data.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Mean returns the arithmetic mean of the non-missing entries of xs.
// It returns NaN when xs contains no observed value.
func Mean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range xs {
		if IsMissing(v) {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Variance returns the unbiased (n-1) sample variance of the non-missing
// entries of xs, or NaN when fewer than two values are observed.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	if IsMissing(m) {
		return math.NaN()
	}
	sum, n := 0.0, 0
	for _, v := range xs {
		if IsMissing(v) {
			continue
		}
		d := v - m
		sum += d * d
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	return sum / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest observed values in xs.
// Both are NaN when nothing is observed.
func MinMax(xs []float64) (min, max float64) {
	min, max = math.NaN(), math.NaN()
	for _, v := range xs {
		if IsMissing(v) {
			continue
		}
		if IsMissing(min) || v < min {
			min = v
		}
		if IsMissing(max) || v > max {
			max = v
		}
	}
	return min, max
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the observed values of
// xs using linear interpolation between order statistics (type-7, the
// default of R and NumPy). It returns NaN for an empty input.
func Quantile(xs []float64, q float64) float64 {
	obs := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !IsMissing(v) {
			obs = append(obs, v)
		}
	}
	sort.Float64s(obs)
	return QuantileSorted(obs, q)
}

// QuantileSorted is Quantile over observations already sorted ascending
// and free of missing values — callers taking several quantiles of one
// column sort once instead of once per quantile.
func QuantileSorted(obs []float64, q float64) float64 {
	if len(obs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return obs[0]
	}
	if q >= 1 {
		return obs[len(obs)-1]
	}
	pos := q * float64(len(obs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return obs[lo]
	}
	frac := pos - float64(lo)
	return obs[lo]*(1-frac) + obs[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// IQROutlierRatio returns the fraction of observed values lying outside
// [Q1 - k*IQR, Q3 + k*IQR], the classical Tukey fence used by the dq
// package's outlier criterion. k is typically 1.5.
func IQROutlierRatio(xs []float64, k float64) float64 {
	q1 := Quantile(xs, 0.25)
	q3 := Quantile(xs, 0.75)
	if IsMissing(q1) || IsMissing(q3) {
		return 0
	}
	iqr := q3 - q1
	lo, hi := q1-k*iqr, q3+k*iqr
	out, n := 0, 0
	for _, v := range xs {
		if IsMissing(v) {
			continue
		}
		n++
		if v < lo || v > hi {
			out++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(out) / float64(n)
}

// Pearson returns the Pearson product-moment correlation between xs and ys,
// skipping pairs where either side is missing. It returns 0 when either
// side is constant (rather than NaN) so that aggregate correlation summaries
// remain well-defined on degenerate columns.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	var sx, sy float64
	cnt := 0
	for i := 0; i < n; i++ {
		if IsMissing(xs[i]) || IsMissing(ys[i]) {
			continue
		}
		sx += xs[i]
		sy += ys[i]
		cnt++
	}
	if cnt < 2 {
		return 0
	}
	mx, my := sx/float64(cnt), sy/float64(cnt)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		if IsMissing(xs[i]) || IsMissing(ys[i]) {
			continue
		}
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation between xs and ys,
// i.e. the Pearson correlation of their fractional ranks.
func Spearman(xs, ys []float64) float64 {
	rx := Ranks(xs)
	ry := Ranks(ys)
	return Pearson(rx, ry)
}

// Ranks returns the fractional (average-tie) ranks of xs. Missing entries
// stay NaN and do not consume rank positions.
func Ranks(xs []float64) []float64 {
	type iv struct {
		i int
		v float64
	}
	obs := make([]iv, 0, len(xs))
	for i, v := range xs {
		if !IsMissing(v) {
			obs = append(obs, iv{i, v})
		}
	}
	sort.Slice(obs, func(a, b int) bool { return obs[a].v < obs[b].v })
	ranks := make([]float64, len(xs))
	for i := range ranks {
		ranks[i] = math.NaN()
	}
	for i := 0; i < len(obs); {
		j := i
		for j < len(obs) && obs[j].v == obs[i].v {
			j++
		}
		r := float64(i+j-1)/2 + 1 // average rank of the tie block, 1-based
		for k := i; k < j; k++ {
			ranks[obs[k].i] = r
		}
		i = j
	}
	return ranks
}

// Covariance returns the unbiased sample covariance of xs and ys over
// pairwise-complete observations.
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	var sx, sy float64
	cnt := 0
	for i := 0; i < n; i++ {
		if IsMissing(xs[i]) || IsMissing(ys[i]) {
			continue
		}
		sx += xs[i]
		sy += ys[i]
		cnt++
	}
	if cnt < 2 {
		return math.NaN()
	}
	mx, my := sx/float64(cnt), sy/float64(cnt)
	var s float64
	for i := 0; i < n; i++ {
		if IsMissing(xs[i]) || IsMissing(ys[i]) {
			continue
		}
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(cnt-1)
}

// Entropy returns the Shannon entropy, in bits, of a discrete distribution
// given as non-negative counts. Zero counts contribute nothing.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// NormalizedEntropy returns Entropy(counts) / log2(k) where k is the number
// of non-empty categories; it is 1 for a perfectly balanced distribution
// and approaches 0 for a degenerate one. A distribution with a single
// category has normalized entropy 1 by convention (it cannot be imbalanced
// against itself).
func NormalizedEntropy(counts []int) float64 {
	k := 0
	for _, c := range counts {
		if c > 0 {
			k++
		}
	}
	if k <= 1 {
		return 1
	}
	return Entropy(counts) / math.Log2(float64(k))
}

// ChiSquare computes the chi-square statistic of an r×c contingency table
// given in row-major order, together with its degrees of freedom. Rows or
// columns whose marginal is zero are ignored for the degrees of freedom.
func ChiSquare(table [][]int) (chi2 float64, dof int) {
	r := len(table)
	if r == 0 {
		return 0, 0
	}
	c := len(table[0])
	rowSum := make([]float64, r)
	colSum := make([]float64, c)
	total := 0.0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := float64(table[i][j])
			rowSum[i] += v
			colSum[j] += v
			total += v
		}
	}
	if total == 0 {
		return 0, 0
	}
	effR, effC := 0, 0
	for i := 0; i < r; i++ {
		if rowSum[i] > 0 {
			effR++
		}
	}
	for j := 0; j < c; j++ {
		if colSum[j] > 0 {
			effC++
		}
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rowSum[i] == 0 || colSum[j] == 0 {
				continue
			}
			expected := rowSum[i] * colSum[j] / total
			d := float64(table[i][j]) - expected
			chi2 += d * d / expected
		}
	}
	dof = (effR - 1) * (effC - 1)
	if dof < 0 {
		dof = 0
	}
	return chi2, dof
}

// CramersV returns Cramér's V association measure (0..1) for a contingency
// table of two nominal variables, the nominal counterpart of |Pearson|.
func CramersV(table [][]int) float64 {
	chi2, _ := ChiSquare(table)
	r := len(table)
	if r == 0 {
		return 0
	}
	c := len(table[0])
	total := 0
	for i := range table {
		for j := range table[i] {
			total += table[i][j]
		}
	}
	if total == 0 {
		return 0
	}
	k := r
	if c < k {
		k = c
	}
	if k < 2 {
		return 0
	}
	v := chi2 / (float64(total) * float64(k-1))
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// MutualInformation returns the mutual information, in bits, of the joint
// distribution given as an r×c contingency table.
func MutualInformation(table [][]int) float64 {
	r := len(table)
	if r == 0 {
		return 0
	}
	c := len(table[0])
	rowSum := make([]float64, r)
	colSum := make([]float64, c)
	total := 0.0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := float64(table[i][j])
			rowSum[i] += v
			colSum[j] += v
			total += v
		}
	}
	if total == 0 {
		return 0
	}
	mi := 0.0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if table[i][j] == 0 {
				continue
			}
			pxy := float64(table[i][j]) / total
			px := rowSum[i] / total
			py := colSum[j] / total
			mi += pxy * math.Log2(pxy/(px*py))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

// Standardize returns (xs - mean) / stddev, preserving missing entries.
// Columns with zero variance are centred only.
func Standardize(xs []float64) []float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	out := make([]float64, len(xs))
	for i, v := range xs {
		if IsMissing(v) {
			out[i] = math.NaN()
			continue
		}
		if IsMissing(sd) || sd == 0 {
			out[i] = v - m
		} else {
			out[i] = (v - m) / sd
		}
	}
	return out
}
