package replay

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"openbi/internal/loadgen"
)

// Golden promotion pins a known-good serving behavior: the capture (by
// content hash) plus the digest of the responses a trusted build produced
// for it. `openbi replay -golden` then re-replays the pinned capture and
// fails on any digest change — the serve-traffic analogue of the
// committed KB golden hash, modeled on gert's golden-promotion phase.

// Golden is the digest file written beside a promoted capture.
type Golden struct {
	// CaptureSHA256 hashes the capture file byte-for-byte; replaying a
	// different capture against this golden is a spec mismatch, not a diff.
	CaptureSHA256 string `json:"captureSha256"`
	// Spec echoes the capture header for human inspection and a second,
	// structural line of defense.
	Spec loadgen.CaptureSpec `json:"spec"`
	// Entries is the capture's verified entry count.
	Entries int `json:"entries"`
	// ResponseSHA256 pins the normalized responses of the promoting run.
	ResponseSHA256 string `json:"responseSha256"`
	// KB pins the target generation at promotion time (informational: a
	// same-KB reload bumps the generation without changing the digest).
	KB loadgen.KBInfo `json:"kb"`
}

// GoldenName returns the digest path for a promoted capture path.
func GoldenName(capturePath string) string { return capturePath + ".golden.json" }

// hashFile returns the hex sha256 of a file's bytes.
func hashFile(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// Promote copies the capture into dir and writes its golden digest from a
// just-finished replay report. The report must come from replaying exactly
// the capture at capturePath.
func Promote(dir, capturePath string, rep *Report) (goldenPath string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("replay: golden dir: %w", err)
	}
	raw, err := os.ReadFile(capturePath)
	if err != nil {
		return "", fmt.Errorf("replay: reading capture to promote: %w", err)
	}
	sum := sha256.Sum256(raw)
	pinned := filepath.Join(dir, filepath.Base(capturePath))
	if pinned != capturePath {
		if err := os.WriteFile(pinned, raw, 0o644); err != nil {
			return "", fmt.Errorf("replay: pinning capture: %w", err)
		}
	}
	g := Golden{
		CaptureSHA256:  hex.EncodeToString(sum[:]),
		Spec:           rep.Capture,
		Entries:        rep.Entries,
		ResponseSHA256: rep.ResponseSHA256,
		KB:             rep.TargetKB,
	}
	goldenPath = GoldenName(pinned)
	f, err := os.Create(goldenPath)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(g); err != nil {
		f.Close()
		return "", err
	}
	return goldenPath, f.Close()
}

// LoadGolden reads a promoted digest file.
func LoadGolden(path string) (Golden, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Golden{}, fmt.Errorf("replay: reading golden: %w", err)
	}
	var g Golden
	if err := json.Unmarshal(raw, &g); err != nil {
		return Golden{}, fmt.Errorf("replay: golden %s: %w", path, err)
	}
	if g.CaptureSHA256 == "" || g.ResponseSHA256 == "" {
		return Golden{}, fmt.Errorf("replay: golden %s is missing its digests", path)
	}
	return g, nil
}

// ErrGoldenDiff reports a candidate whose responses drifted from the
// promoted digest.
var ErrGoldenDiff = errors.New("replay: responses differ from the promoted golden digest")

// VerifyCapture refuses a capture file that is not the one the golden
// pinned (checked before replaying, so a swapped capture cannot pass as
// "zero diffs against the wrong baseline").
func (g Golden) VerifyCapture(capturePath string) error {
	sum, err := hashFile(capturePath)
	if err != nil {
		return err
	}
	if sum != g.CaptureSHA256 {
		return fmt.Errorf("replay: capture %s (sha256 %.12s…) is not the promoted capture (%.12s…)",
			capturePath, sum, g.CaptureSHA256)
	}
	return nil
}

// VerifyReport checks a replay report's response digest against the
// golden's.
func (g Golden) VerifyReport(rep *Report) error {
	if rep.ResponseSHA256 != g.ResponseSHA256 {
		return fmt.Errorf("%w (got %.12s…, promoted %.12s…)", ErrGoldenDiff, rep.ResponseSHA256, g.ResponseSHA256)
	}
	return nil
}
