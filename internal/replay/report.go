package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"openbi/internal/hist"
	"openbi/internal/loadgen"
)

// Report is the blast-radius report of one replay run. Every field is a
// deterministic function of the capture and the two servers' advice, so a
// rerun against unchanged state produces an identical report (and an
// identical rendering).
type Report struct {
	// Capture is the replayed capture's pinned spec, including the KB
	// generation it was recorded against.
	Capture loadgen.CaptureSpec `json:"capture"`
	// TargetKB / BaselineKB pin what the replay actually ran against
	// (zero when the probe failed).
	TargetKB   loadgen.KBInfo `json:"targetKb"`
	BaselineKB loadgen.KBInfo `json:"baselineKb,omitempty"`
	TwoSided   bool           `json:"twoSided"`
	Tolerance  float64        `json:"tolerance"`

	Entries  int `json:"entries"`  // entries in the capture
	Replayed int `json:"replayed"` // requests re-issued
	Compared int `json:"compared"` // entries with a usable baseline
	Skipped  int `json:"skipped"`  // no baseline (recorded non-2xx, missing body, ...)

	Identical int `json:"identical"`
	Diffs     int `json:"diffs"` // entries where anything tracked moved

	Top1Changed     int `json:"top1Changed"`     // entries whose best advice changed
	RankMoved       int `json:"rankMoved"`       // entries with any rank move
	KappaDrift      int `json:"kappaDrift"`      // entries with |Δκ| beyond tolerance
	StatusChanged   int `json:"statusChanged"`   // baseline 2xx, candidate not (or unparseable)
	TransportErrors int `json:"transportErrors"` // candidate request failed outright

	// ByCriterion attributes diff entries to the dominant quality defects
	// of their requests (severity >= 0.05; "clean" when none) — the
	// per-criterion breakdown of where in severity space the KBs disagree.
	ByCriterion map[string]int `json:"byCriterion"`

	// Kappa drift distribution across all shared algorithm pairs.
	MaxKappaDelta float64 `json:"maxKappaDelta"`
	KappaDeltaP50 float64 `json:"kappaDeltaP50"`
	KappaDeltaP99 float64 `json:"kappaDeltaP99"`

	// Examples holds the first few diff entries (seq order) as human lines.
	Examples []string `json:"examples,omitempty"`

	// ResponseSHA256 digests the normalized candidate responses in seq
	// order — what golden promotion pins and replay-check verifies.
	ResponseSHA256 string `json:"responseSha256"`

	deltaHist *hist.Histogram
}

// HasDiffs reports whether the replay found any behavior change.
func (r *Report) HasDiffs() bool { return r.Diffs > 0 }

// BlastRadius is the fraction of compared requests whose advice changed.
func (r *Report) BlastRadius() float64 {
	if r.Compared == 0 {
		return 0
	}
	return float64(r.Diffs) / float64(r.Compared)
}

// WriteJSON emits the report as indented JSON (the committed-file
// convention).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// Summary renders the report as a deterministic human-readable block.
func (r *Report) Summary() string {
	var b strings.Builder
	baseline := "recorded responses"
	if r.TwoSided {
		baseline = fmt.Sprintf("live baseline (KB gen %d)", r.BaselineKB.Generation)
	}
	fmt.Fprintf(&b, "replay: capture mix=%s seed=%d entries=%d (recorded against KB gen %d)\n",
		r.Capture.Mix, r.Capture.Seed, r.Entries, r.Capture.KB.Generation)
	fmt.Fprintf(&b, "candidate KB gen %d (%d records); baseline: %s\n",
		r.TargetKB.Generation, r.TargetKB.Records, baseline)
	fmt.Fprintf(&b, "compared %d/%d (%d skipped), tolerance %s\n",
		r.Compared, r.Replayed, r.Skipped, strconv.FormatFloat(r.Tolerance, 'g', -1, 64))

	if !r.HasDiffs() {
		fmt.Fprintf(&b, "verdict: zero diffs — advice identical across %d replayed requests\n", r.Compared)
		return b.String()
	}
	fmt.Fprintf(&b, "verdict: %d diffs / %d compared (blast radius %.1f%%)\n",
		r.Diffs, r.Compared, 100*r.BlastRadius())
	fmt.Fprintf(&b, "  top-1 advice changed: %d\n", r.Top1Changed)
	fmt.Fprintf(&b, "  ranking moved:        %d\n", r.RankMoved)
	fmt.Fprintf(&b, "  kappa drift > tol:    %d (max %s, p50 %s, p99 %s)\n",
		r.KappaDrift,
		strconv.FormatFloat(r.MaxKappaDelta, 'g', 6, 64),
		strconv.FormatFloat(r.KappaDeltaP50, 'g', 6, 64),
		strconv.FormatFloat(r.KappaDeltaP99, 'g', 6, 64))
	fmt.Fprintf(&b, "  status changed:       %d\n", r.StatusChanged)
	fmt.Fprintf(&b, "  transport errors:     %d\n", r.TransportErrors)
	if len(r.ByCriterion) > 0 {
		parts := make([]string, 0, len(r.ByCriterion))
		for _, k := range r.sortedCriteria() {
			parts = append(parts, fmt.Sprintf("%s=%d", k, r.ByCriterion[k]))
		}
		fmt.Fprintf(&b, "by dominant criterion: %s\n", strings.Join(parts, " "))
	}
	for _, ex := range r.Examples {
		fmt.Fprintf(&b, "  %s\n", ex)
	}
	return b.String()
}
