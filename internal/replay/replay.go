// Package replay is the capture-driven regression harness for the openbi
// serving layer: it reads a loadgen capture (the verified v2 JSONL format
// of internal/loadgen), re-issues the recorded /v1/advise requests against
// a target server, and diffs the fresh advice against a baseline with a
// ranking-aware structural comparison — top-1 advice changes, rank moves,
// predicted-kappa drift beyond a configurable tolerance. The aggregate is
// a deterministic blast-radius report: how much of the recorded request
// space a knowledge-base change actually re-advises.
//
// Two baselines:
//
//   - Recorded (Spec.Baseline == ""): fresh responses are compared against
//     the responses captured at record time. Replaying against the same KB
//     generation must report zero diffs — advice is byte-stable per
//     severity vector — so any diff is a real behavior change in the
//     candidate build or its KB.
//   - Live (Spec.Baseline set): the capture supplies only the request
//     stream; both servers are asked fresh and diffed against each other.
//     This diffs advice across two KB generations directly ("-kb old
//     -against-kb new"), with no dependence on how stale the capture is.
//
// Like loadgen, the package is deliberately dependency-lean — stdlib,
// internal/hist and internal/loadgen only — so the harness can ship in a
// lean binary and drive any openbi serve over the wire.
package replay

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"openbi/internal/hist"
	"openbi/internal/loadgen"
)

// Spec configures one replay run.
type Spec struct {
	// Capture is the parsed, verified capture to replay (see
	// loadgen.LoadCapture).
	Capture *loadgen.Capture
	// Target is the candidate server's base URL.
	Target string
	// Baseline, when non-empty, is a second server whose fresh responses
	// become the baseline instead of the recorded ones (two-sided mode).
	Baseline string
	// Tolerance is the allowed |Δ predictedKappa| per algorithm; 0 demands
	// exact agreement (the right gate for same-KB replays, which are
	// byte-stable).
	Tolerance float64
	// Concurrency bounds parallel replayed requests (default 8).
	Concurrency int
	// Timeout bounds one request (default 5s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// MaxExamples caps the per-entry diff lines kept in the report
	// (default 10; the counts cover the rest).
	MaxExamples int
}

func (s Spec) withDefaults() (Spec, error) {
	if s.Capture == nil || len(s.Capture.Entries) == 0 {
		return s, errors.New("replay: capture is empty")
	}
	if s.Target == "" {
		return s, errors.New("replay: Spec.Target is required")
	}
	if s.Concurrency <= 0 {
		s.Concurrency = 8
	}
	if s.Timeout <= 0 {
		s.Timeout = 5 * time.Second
	}
	if s.Tolerance < 0 {
		s.Tolerance = 0
	}
	if s.MaxExamples <= 0 {
		s.MaxExamples = 10
	}
	return s, nil
}

// fetched is one replayed request's outcome against one server.
type fetched struct {
	status int
	body   []byte
	err    error
}

// Replay executes the run and aggregates the blast-radius report. The
// replayed requests go out with bounded concurrency, but aggregation is
// strictly in capture (seq) order, so the same capture against the same
// servers yields a byte-identical report.
func Replay(ctx context.Context, spec Spec) (*Report, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	client := spec.Client
	if client == nil {
		client = &http.Client{
			Timeout: spec.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        2 * spec.Concurrency,
				MaxIdleConnsPerHost: 2 * spec.Concurrency,
			},
		}
	}
	entries := spec.Capture.Entries

	rep := &Report{
		Capture:     spec.Capture.Spec,
		Entries:     len(entries),
		Tolerance:   spec.Tolerance,
		TwoSided:    spec.Baseline != "",
		ByCriterion: map[string]int{},
		deltaHist:   hist.New(),
	}
	// Pin what we actually ran against; probe failures (test stubs, plain
	// HTTP servers) degrade to a zero KBInfo rather than failing the run.
	if info, err := loadgen.ProbeKB(ctx, client, spec.Target); err == nil {
		rep.TargetKB = info
	}
	if spec.Baseline != "" {
		if info, err := loadgen.ProbeKB(ctx, client, spec.Baseline); err == nil {
			rep.BaselineKB = info
		}
	}

	fresh := fetchAll(ctx, client, spec, spec.Target, entries)
	var baseline []fetched
	if spec.Baseline != "" {
		baseline = fetchAll(ctx, client, spec, spec.Baseline, entries)
	}
	if err := ctx.Err(); err != nil {
		return rep, fmt.Errorf("replay: cancelled: %w", err)
	}

	digest := sha256.New()
	for i := range entries {
		e := &entries[i]
		rep.Replayed++
		base, skip := baselineFor(e, baseline, i)
		if skip != "" {
			rep.Skipped++
			fmt.Fprintf(digest, "seq=%d skipped=%s\n", e.Seq, skip)
			continue
		}
		rep.Compared++
		rep.compare(e, base, fresh[i], spec)
		writeDigestLine(digest, e.Seq, fresh[i])
	}
	rep.Identical = rep.Compared - rep.Diffs
	rep.ResponseSHA256 = hex.EncodeToString(digest.Sum(nil))
	rep.finishDeltas()
	return rep, nil
}

// baselineFor resolves one entry's baseline advice bytes: the recorded
// response in one-sided mode, the baseline server's fresh response in
// two-sided mode. A non-empty skip reason means no baseline exists and the
// entry cannot be compared.
func baselineFor(e *loadgen.Entry, baseline []fetched, i int) (body []byte, skip string) {
	if baseline == nil {
		if e.Status < 200 || e.Status >= 300 {
			return nil, fmt.Sprintf("recorded-status-%d", e.Status)
		}
		if len(e.Response) == 0 {
			return nil, "recorded-response-missing"
		}
		return e.Response, ""
	}
	b := baseline[i]
	if b.err != nil {
		return nil, "baseline-transport-error"
	}
	if b.status < 200 || b.status >= 300 {
		return nil, fmt.Sprintf("baseline-status-%d", b.status)
	}
	return b.body, ""
}

// compare scores one entry's candidate response against its baseline and
// folds the outcome into the report.
func (r *Report) compare(e *loadgen.Entry, base []byte, f fetched, spec Spec) {
	diff := false
	var line string
	switch {
	case f.err != nil:
		r.TransportErrors++
		diff = true
		line = fmt.Sprintf("seq %d: transport error: %v", e.Seq, f.err)
	case f.status < 200 || f.status >= 300:
		r.StatusChanged++
		diff = true
		line = fmt.Sprintf("seq %d: status changed: baseline 2xx, candidate %d", e.Seq, f.status)
	default:
		baseAdv, berr := parseAdvice(base)
		candAdv, cerr := parseAdvice(f.body)
		if berr != nil || cerr != nil {
			if berr != nil && cerr != nil && bytes.Equal(base, f.body) {
				return // both sides served the same unparseable payload
			}
			r.StatusChanged++
			diff = true
			line = fmt.Sprintf("seq %d: unparseable advice (baseline err %v, candidate err %v)", e.Seq, berr, cerr)
			break
		}
		d := diffAdvice(baseAdv, candAdv, spec.Tolerance)
		for _, delta := range d.kappaDeltas {
			r.deltaHist.Observe(time.Duration(delta * kappaScale))
		}
		if d.maxKappaDelta > r.MaxKappaDelta {
			r.MaxKappaDelta = d.maxKappaDelta
		}
		if !d.changed() {
			return
		}
		diff = true
		if d.top1Changed {
			r.Top1Changed++
		}
		if d.rankMoves > 0 {
			r.RankMoved++
		}
		if d.kappaBeyond > 0 {
			r.KappaDrift++
		}
		top1 := ""
		if d.top1Changed {
			top1 = fmt.Sprintf("top-1 %s -> %s; ", d.top1From, d.top1To)
		}
		line = fmt.Sprintf("seq %d: %s%d rank moves; max |d-kappa| %s",
			e.Seq, top1, d.rankMoves, strconv.FormatFloat(d.maxKappaDelta, 'g', 6, 64))
	}
	if diff {
		r.Diffs++
		for _, name := range dominantCriteria(e.Request) {
			r.ByCriterion[name]++
		}
		if len(r.Examples) < spec.MaxExamples {
			r.Examples = append(r.Examples, line)
		}
	}
}

// writeDigestLine folds one compared candidate response into the
// response digest in normalized form: seq, status, and the parsed ranking
// (algorithm:kappa pairs in rank order). Byte-stable advice therefore
// yields a stable digest even if incidental JSON formatting were to
// change.
func writeDigestLine(w io.Writer, seq int64, f fetched) {
	if f.err != nil {
		fmt.Fprintf(w, "seq=%d error\n", seq)
		return
	}
	fmt.Fprintf(w, "seq=%d status=%d ", seq, f.status)
	if adv, err := parseAdvice(f.body); err == nil {
		for _, rec := range adv.Ranked {
			fmt.Fprintf(w, "%s:%s;", rec.Algorithm, strconv.FormatFloat(rec.PredictedKappa, 'g', -1, 64))
		}
	}
	io.WriteString(w, "\n")
}

// fetchAll replays every entry's request against one server with bounded
// concurrency, returning outcomes indexed like entries.
func fetchAll(ctx context.Context, client *http.Client, spec Spec, target string, entries []loadgen.Entry) []fetched {
	out := make([]fetched, len(entries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, spec.Concurrency)
	for i := range entries {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = fetchOne(ctx, client, target, &entries[i])
		}(i)
	}
	wg.Wait()
	return out
}

// fetchOne re-issues one recorded request.
func fetchOne(ctx context.Context, client *http.Client, target string, e *loadgen.Entry) fetched {
	endpoint := e.Endpoint
	if endpoint == "" {
		endpoint = "/v1/advise"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+endpoint, bytes.NewReader(e.Request))
	if err != nil {
		return fetched{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fetched{err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fetched{err: err}
	}
	return fetched{status: resp.StatusCode, body: body}
}

// kappaScale maps a kappa delta (dimensionless, ~[0,2]) onto the integer
// domain of internal/hist: 1e9 per unit kappa keeps ~3% relative bucket
// error down to 1e-6 deltas.
const kappaScale = 1e9

// finishDeltas freezes the delta histogram into the report's quantiles.
func (r *Report) finishDeltas() {
	if r.deltaHist.Count() == 0 {
		return
	}
	qs := r.deltaHist.Quantiles(0.5, 0.99)
	r.KappaDeltaP50 = float64(qs[0]) / kappaScale
	r.KappaDeltaP99 = float64(qs[1]) / kappaScale
}

// sortedCriteria returns the per-criterion breakdown keys in stable order.
func (r *Report) sortedCriteria() []string {
	keys := make([]string, 0, len(r.ByCriterion))
	for k := range r.ByCriterion {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
