package replay

import (
	"encoding/json"
	"fmt"
	"math"
)

// The comparison is ranking-aware, not byte-aware: two advise responses
// agree when they rank the same algorithms in the same order with
// predicted kappas within tolerance. KB metadata (generation, load time)
// is deliberately excluded — a hot reload of the *same* knowledge base
// bumps the generation without changing one recommendation, and that must
// read as zero blast radius.

// rankedEntry is the slice of an advise response the diff cares about.
type rankedEntry struct {
	Algorithm      string  `json:"algorithm"`
	PredictedKappa float64 `json:"predictedKappa"`
}

// advice is the parsed ranking of one advise response body.
type advice struct {
	Ranked []rankedEntry
}

// parseAdvice extracts the ranking from a recorded or fresh advise body.
func parseAdvice(body []byte) (advice, error) {
	var resp struct {
		Advice struct {
			Ranked []rankedEntry `json:"ranked"`
		} `json:"advice"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return advice{}, err
	}
	return advice{Ranked: resp.Advice.Ranked}, nil
}

// entryDiff is the structural comparison of one request's two responses.
type entryDiff struct {
	top1Changed   bool
	top1From      string
	top1To        string
	rankMoves     int       // algorithms whose rank position changed (or appeared/vanished)
	kappaBeyond   int       // algorithms whose |Δ predictedKappa| exceeds the tolerance
	maxKappaDelta float64   // largest |Δ predictedKappa| across shared algorithms
	kappaDeltas   []float64 // every shared algorithm's |Δ|, for the histogram
}

// changed reports whether anything the diff tracks moved.
func (d entryDiff) changed() bool {
	return d.top1Changed || d.rankMoves > 0 || d.kappaBeyond > 0
}

// diffAdvice compares a baseline ranking against a candidate ranking.
func diffAdvice(base, cand advice, tolerance float64) entryDiff {
	var d entryDiff
	if len(base.Ranked) > 0 || len(cand.Ranked) > 0 {
		if len(base.Ranked) > 0 {
			d.top1From = base.Ranked[0].Algorithm
		}
		if len(cand.Ranked) > 0 {
			d.top1To = cand.Ranked[0].Algorithm
		}
		d.top1Changed = d.top1From != d.top1To
	}

	basePos := make(map[string]int, len(base.Ranked))
	for i, r := range base.Ranked {
		basePos[r.Algorithm] = i
	}
	seen := make(map[string]bool, len(cand.Ranked))
	for i, r := range cand.Ranked {
		seen[r.Algorithm] = true
		j, ok := basePos[r.Algorithm]
		if !ok {
			d.rankMoves++ // appeared in the candidate ranking only
			continue
		}
		if i != j {
			d.rankMoves++
		}
		delta := math.Abs(r.PredictedKappa - base.Ranked[j].PredictedKappa)
		d.kappaDeltas = append(d.kappaDeltas, delta)
		if delta > d.maxKappaDelta {
			d.maxKappaDelta = delta
		}
		if delta > tolerance {
			d.kappaBeyond++
		}
	}
	for _, r := range base.Ranked {
		if !seen[r.Algorithm] {
			d.rankMoves++ // vanished from the candidate ranking
		}
	}
	return d
}

// criterionNames mirrors dq.AllCriteria order — kept as data so replay
// stays free of the dq/server dependency chain, the same choice loadgen
// made for DefaultDim.
var criterionNames = [...]string{
	"completeness", "duplicates", "correlation", "imbalance",
	"label-noise", "attribute-noise", "dimensionality",
}

// dominantCriteria names the request's dominant quality defects (severity
// >= 0.05, the advisor's own threshold), attributing a diff to the parts
// of severity space where the two KB generations disagree. Requests with
// no dominant defect attribute to "clean".
func dominantCriteria(request []byte) []string {
	var req struct {
		Severities []float64 `json:"severities"`
	}
	if err := json.Unmarshal(request, &req); err != nil {
		return []string{"unparseable-request"}
	}
	var out []string
	for i, v := range req.Severities {
		if v < 0.05 {
			continue
		}
		if i < len(criterionNames) {
			out = append(out, criterionNames[i])
		} else {
			out = append(out, fmt.Sprintf("criterion-%d", i))
		}
	}
	if len(out) == 0 {
		out = append(out, "clean")
	}
	return out
}
