package replay

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"openbi/internal/loadgen"
)

// advise variants: deterministic rankings computed from the request's
// severity vector, so the same request always gets the same response and
// replay reports are exactly reproducible.
const (
	variantBase      = iota // A=0.8-0.5*s0, B=0.6-0.2*s1, C=0.3
	variantSwapped          // A and B trade kappas: every ranking flips
	variantTinyShift        // A += 0.0005: below any sane tolerance, no rank change
)

func adviseHandler(variant int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Severities []float64 `json:"severities"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Severities) < 2 {
			http.Error(w, `{"error":{"code":"bad_request"}}`, http.StatusBadRequest)
			return
		}
		s0, s1 := req.Severities[0], req.Severities[1]
		if s0 > 0.9 { // deterministic shed band: these entries are skipped
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":{"status":429,"code":"overloaded"}}`, http.StatusTooManyRequests)
			return
		}
		if s1 > 0.95 { // deterministic non-JSON band: recorded without response
			w.Header().Set("Content-Type", "text/html")
			fmt.Fprint(w, "<html>proxy error</html>")
			return
		}
		kA, kB, kC := 0.8-0.5*s0, 0.6-0.2*s1, 0.3
		switch variant {
		case variantSwapped:
			kA, kB = kB, kA
		case variantTinyShift:
			kA += 0.0005
		}
		type rec struct {
			Algorithm      string  `json:"algorithm"`
			PredictedKappa float64 `json:"predictedKappa"`
		}
		ranked := []rec{{"A", kA}, {"B", kB}, {"C", kC}}
		sort.SliceStable(ranked, func(i, j int) bool {
			if ranked[i].PredictedKappa != ranked[j].PredictedKappa {
				return ranked[i].PredictedKappa > ranked[j].PredictedKappa
			}
			return ranked[i].Algorithm < ranked[j].Algorithm
		})
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"advice": map[string]any{"ranked": ranked},
			"kb":     map[string]any{"generation": 0},
		})
	}
}

// recordCapture drives loadgen against a server and returns the verified
// capture plus its path. The uniform mix exercises the full severity cube,
// including the handler's shed and non-JSON bands.
func recordCapture(t *testing.T, target string) (*loadgen.Capture, string) {
	t.Helper()
	spec := loadgen.CaptureSpec{Mix: "uniform", Seed: 42, Dim: loadgen.DefaultDim, Concurrency: 2}
	rec, err := loadgen.NewRecorder(t.TempDir(), spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loadgen.Run(context.Background(), loadgen.Spec{
		Target: target, Mix: loadgen.MustMix("uniform"), Concurrency: 2,
		Duration: 250 * time.Millisecond, Seed: 42, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := loadgen.LoadCapture(rec.Path(), loadgen.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Entries) < 10 {
		t.Fatalf("capture too small to be meaningful: %d entries", len(c.Entries))
	}
	return c, rec.Path()
}

func TestReplaySameServerReportsZeroDiffs(t *testing.T) {
	ts := httptest.NewServer(adviseHandler(variantBase))
	defer ts.Close()
	capture, _ := recordCapture(t, ts.URL)

	rep, err := Replay(context.Background(), Spec{Capture: capture, Target: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasDiffs() || rep.Diffs != 0 {
		t.Fatalf("same-server replay found diffs:\n%s", rep.Summary())
	}
	if rep.Compared == 0 || rep.Identical != rep.Compared {
		t.Fatalf("compared=%d identical=%d", rep.Compared, rep.Identical)
	}
	if rep.Replayed != len(capture.Entries) || rep.Compared+rep.Skipped != rep.Replayed {
		t.Fatalf("replayed=%d compared=%d skipped=%d entries=%d",
			rep.Replayed, rep.Compared, rep.Skipped, len(capture.Entries))
	}

	// Determinism: a rerun yields a byte-identical report.
	rep2, err := Replay(context.Background(), Spec{Capture: capture, Target: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary() != rep2.Summary() || rep.ResponseSHA256 != rep2.ResponseSHA256 {
		t.Fatal("same replay twice produced different reports")
	}
}

func TestReplayPerturbedServerReportsBlastRadius(t *testing.T) {
	old := httptest.NewServer(adviseHandler(variantBase))
	defer old.Close()
	swapped := httptest.NewServer(adviseHandler(variantSwapped))
	defer swapped.Close()
	capture, _ := recordCapture(t, old.URL)

	rep, err := Replay(context.Background(), Spec{Capture: capture, Target: swapped.URL})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasDiffs() {
		t.Fatal("swapped ranking reported zero diffs")
	}
	if rep.Top1Changed == 0 || rep.RankMoved == 0 || rep.KappaDrift == 0 {
		t.Fatalf("diff categories empty: %+v", rep)
	}
	if rep.MaxKappaDelta <= 0 || rep.KappaDeltaP99 <= 0 {
		t.Fatalf("kappa delta stats empty: max=%v p99=%v", rep.MaxKappaDelta, rep.KappaDeltaP99)
	}
	if len(rep.ByCriterion) == 0 {
		t.Fatal("per-criterion breakdown empty")
	}
	if len(rep.Examples) == 0 {
		t.Fatal("no diff examples")
	}
	if br := rep.BlastRadius(); br <= 0 || br > 1 {
		t.Fatalf("blast radius %v", br)
	}

	rep2, err := Replay(context.Background(), Spec{Capture: capture, Target: swapped.URL})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary() != rep2.Summary() {
		t.Fatalf("non-deterministic blast-radius report:\n--- first\n%s--- second\n%s", rep.Summary(), rep2.Summary())
	}
}

func TestReplayToleranceGatesKappaDrift(t *testing.T) {
	old := httptest.NewServer(adviseHandler(variantBase))
	defer old.Close()
	shifted := httptest.NewServer(adviseHandler(variantTinyShift))
	defer shifted.Close()
	capture, _ := recordCapture(t, old.URL)

	strict, err := Replay(context.Background(), Spec{Capture: capture, Target: shifted.URL, Tolerance: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if strict.KappaDrift == 0 || !strict.HasDiffs() {
		t.Fatalf("0.0005 shift under 1e-4 tolerance not flagged: %+v", strict)
	}
	if strict.Top1Changed != 0 || strict.RankMoved != 0 {
		t.Fatalf("tiny kappa shift moved rankings: %+v", strict)
	}

	loose, err := Replay(context.Background(), Spec{Capture: capture, Target: shifted.URL, Tolerance: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if loose.HasDiffs() {
		t.Fatalf("0.0005 shift flagged under 1e-2 tolerance:\n%s", loose.Summary())
	}
}

func TestReplayTwoSidedDiffsLiveBaselines(t *testing.T) {
	old := httptest.NewServer(adviseHandler(variantBase))
	defer old.Close()
	swapped := httptest.NewServer(adviseHandler(variantSwapped))
	defer swapped.Close()
	capture, _ := recordCapture(t, old.URL)

	two, err := Replay(context.Background(), Spec{
		Capture: capture, Target: swapped.URL, Baseline: old.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !two.TwoSided || !two.HasDiffs() {
		t.Fatalf("two-sided replay: twoSided=%v diffs=%d", two.TwoSided, two.Diffs)
	}
	// The live baseline equals the recorded one (same handler), so the
	// blast radius must agree with one-sided mode.
	one, err := Replay(context.Background(), Spec{Capture: capture, Target: swapped.URL})
	if err != nil {
		t.Fatal(err)
	}
	if two.Diffs != one.Diffs || two.Top1Changed != one.Top1Changed {
		t.Fatalf("two-sided diffs %d/%d disagree with one-sided %d/%d",
			two.Diffs, two.Top1Changed, one.Diffs, one.Top1Changed)
	}
	// Two-sided against identical servers: zero diffs.
	same, err := Replay(context.Background(), Spec{Capture: capture, Target: old.URL, Baseline: old.URL})
	if err != nil {
		t.Fatal(err)
	}
	if same.HasDiffs() {
		t.Fatalf("identical servers diffed:\n%s", same.Summary())
	}
}

func TestGoldenPromoteAndVerify(t *testing.T) {
	ts := httptest.NewServer(adviseHandler(variantBase))
	defer ts.Close()
	swapped := httptest.NewServer(adviseHandler(variantSwapped))
	defer swapped.Close()
	capture, path := recordCapture(t, ts.URL)

	rep, err := Replay(context.Background(), Spec{Capture: capture, Target: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	goldenPath, err := Promote(dir, path, rep)
	if err != nil {
		t.Fatal(err)
	}
	g, err := LoadGolden(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	pinned := filepath.Join(dir, filepath.Base(path))
	if err := g.VerifyCapture(pinned); err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyReport(rep); err != nil {
		t.Fatal(err)
	}

	// An unchanged build replays the pinned capture to the same digest.
	again, err := Replay(context.Background(), Spec{Capture: capture, Target: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyReport(again); err != nil {
		t.Fatal(err)
	}

	// A KB change breaks the digest.
	drifted, err := Replay(context.Background(), Spec{Capture: capture, Target: swapped.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyReport(drifted); !errors.Is(err, ErrGoldenDiff) {
		t.Fatalf("drifted responses verified: %v", err)
	}

	// A swapped capture is refused before any replay happens.
	other := filepath.Join(dir, "other.jsonl")
	if err := os.WriteFile(other, []byte("not the capture"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyCapture(other); err == nil {
		t.Fatal("foreign capture passed golden verification")
	}
}

func TestReplaySpecValidation(t *testing.T) {
	if _, err := Replay(context.Background(), Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := Replay(context.Background(), Spec{Capture: &loadgen.Capture{Entries: make([]loadgen.Entry, 1)}}); err == nil {
		t.Fatal("missing target accepted")
	}
}
