package table

// View is an immutable zero-copy window onto a base table: an optional row
// indirection (fold splits, subsamples, bootstrap resamples) combined with
// an optional column projection (attribute selection). It shares column
// storage — including nominal dictionaries — with its base, so constructing
// one costs O(selected rows + selected columns) index space instead of
// O(cells) cell copies.
//
// Views are read-only by construction: they implement Access but expose no
// mutators. Code that needs to mutate calls Materialize (or CopyOnWrite)
// first. A view observes later in-place mutations of its base table, so the
// experiment pipeline only takes views of tables it has stopped writing to.
type View struct {
	base *Table
	rows []int // base row per view row; nil = all base rows in order
	cols []int // base column per view column; nil = all base columns
}

// NewView wraps t with the given row and column selections (either may be
// nil, meaning identity). The slices are retained, not copied: callers must
// not mutate them afterwards. Row and column indices may repeat.
func NewView(t *Table, rows, cols []int) *View {
	return &View{base: t, rows: rows, cols: cols}
}

// RowView returns a zero-copy view of a restricted to the given rows (in
// order, repeats allowed). Views compose: taking a RowView of a View maps
// the indices through the existing indirection, so chains of fold splits
// and bootstrap resamples stay one indirection deep. The rows slice is
// retained and must not be mutated by the caller afterwards.
func RowView(a Access, rows []int) Access {
	switch s := a.(type) {
	case *Table:
		return &View{base: s, rows: rows}
	case *View:
		if s.rows == nil {
			return &View{base: s.base, rows: rows, cols: s.cols}
		}
		mapped := make([]int, len(rows))
		for i, r := range rows {
			mapped[i] = s.rows[r]
		}
		return &View{base: s.base, rows: mapped, cols: s.cols}
	default:
		return &View{base: a.Materialize(), rows: rows}
	}
}

// ColumnView returns a zero-copy view of a restricted to the given columns
// (in order). The cols slice is retained and must not be mutated by the
// caller afterwards.
func ColumnView(a Access, cols []int) Access {
	switch s := a.(type) {
	case *Table:
		return &View{base: s, cols: cols}
	case *View:
		if s.cols == nil {
			return &View{base: s.base, rows: s.rows, cols: cols}
		}
		mapped := make([]int, len(cols))
		for i, c := range cols {
			mapped[i] = s.cols[c]
		}
		return &View{base: s.base, rows: s.rows, cols: mapped}
	default:
		return &View{base: a.Materialize(), cols: cols}
	}
}

// Base returns the concrete table the view reads from (read-only for view
// holders). Together with RowIndex and ColIndex it lets hot loops resolve
// the indirection once and then read column storage directly.
func (v *View) Base() *Table { return v.base }

// RowIndex returns the base-row-per-view-row indirection, or nil when the
// view exposes all base rows in order. Callers must not mutate it.
func (v *View) RowIndex() []int { return v.rows }

// ColIndex returns the base-column-per-view-column projection, or nil when
// the view exposes all base columns. Callers must not mutate it.
func (v *View) ColIndex() []int { return v.cols }

// baseRow maps a view row index to a base row index.
func (v *View) baseRow(r int) int {
	if v.rows == nil {
		return r
	}
	return v.rows[r]
}

// baseCol maps a view column index to a base column index.
func (v *View) baseCol(c int) int {
	if v.cols == nil {
		return c
	}
	return v.cols[c]
}

// NumRows implements Access.
func (v *View) NumRows() int {
	if v.rows == nil {
		return v.base.NumRows()
	}
	return len(v.rows)
}

// NumCols implements Access.
func (v *View) NumCols() int {
	if v.cols == nil {
		return v.base.NumCols()
	}
	return len(v.cols)
}

// ColumnIndex implements Access; with a column projection it returns the
// view-relative index of the named column, or -1.
func (v *View) ColumnIndex(name string) int {
	if v.cols == nil {
		return v.base.ColumnIndex(name)
	}
	for i, c := range v.cols {
		if v.base.cols[c].Name == name {
			return i
		}
	}
	return -1
}

// ColumnName implements Access.
func (v *View) ColumnName(col int) string { return v.base.cols[v.baseCol(col)].Name }

// ColumnKind implements Access.
func (v *View) ColumnKind(col int) Kind { return v.base.cols[v.baseCol(col)].Kind }

// ColumnNames implements Access.
func (v *View) ColumnNames() []string {
	out := make([]string, v.NumCols())
	for i := range out {
		out[i] = v.ColumnName(i)
	}
	return out
}

// NumericColumnIndices implements Access (view-relative indices).
func (v *View) NumericColumnIndices() []int {
	var out []int
	for i, n := 0, v.NumCols(); i < n; i++ {
		if v.ColumnKind(i) == Numeric {
			out = append(out, i)
		}
	}
	return out
}

// NominalColumnIndices implements Access (view-relative indices).
func (v *View) NominalColumnIndices() []int {
	var out []int
	for i, n := 0, v.NumCols(); i < n; i++ {
		if v.ColumnKind(i) == Nominal {
			out = append(out, i)
		}
	}
	return out
}

// NumLevels implements Access; the dictionary is shared with the base, so
// codes agree across every view of one table.
func (v *View) NumLevels(col int) int { return v.base.cols[v.baseCol(col)].NumLevels() }

// Label implements Access.
func (v *View) Label(col, code int) string { return v.base.cols[v.baseCol(col)].Label(code) }

// Float implements Access.
func (v *View) Float(row, col int) float64 { return v.base.Float(v.baseRow(row), v.baseCol(col)) }

// Cat implements Access.
func (v *View) Cat(row, col int) int { return v.base.Cat(v.baseRow(row), v.baseCol(col)) }

// IsMissing implements Access.
func (v *View) IsMissing(row, col int) bool {
	return v.base.cols[v.baseCol(col)].IsMissing(v.baseRow(row))
}

// Materialize implements Access: it gathers the viewed cells into a fresh,
// fully owned *Table, exactly as the pre-view SelectRows/SelectColumns
// copies did (nominal dictionaries are deep-copied in code order, so level
// codes are preserved).
func (v *View) Materialize() *Table {
	out := New(v.base.Name)
	for i, n := 0, v.NumCols(); i < n; i++ {
		c := v.base.cols[v.baseCol(i)]
		if v.rows == nil {
			out.MustAddColumn(c.Clone())
		} else {
			out.MustAddColumn(c.Select(v.rows))
		}
	}
	return out
}
