package table

// Cursor resolves an Access value to its raw column storage plus the row
// indirection, so hot loops iterate slices directly instead of paying an
// interface call per cell:
//
//	cur := table.NewCursor(a)
//	nums, rows := cur.NumsSpan(j)
//	if rows == nil {
//	    for r, v := range nums { ... }        // dense: base order
//	} else {
//	    for _, br := range rows { v := nums[br]; ... }
//	}
//
// Aliasing contract: every slice returned by a Cursor — Nums/Cats spans and
// the Rows indirection — aliases live storage of the underlying table or
// view. Callers MUST treat them as read-only and must not retain them past
// the lifetime of the Access they came from; writing through them corrupts
// shared column storage (tables share columns copy-on-write across clones
// and views). Code that needs to mutate goes through Materialize /
// CopyOnWrite instead. Under that contract a Cursor is safe for concurrent
// readers, like the Access it wraps.
type Cursor struct {
	base *Table
	rows []int // base row per logical row; nil = identity
	cols []int // base column per logical column; nil = identity
}

// NewCursor resolves a to a cursor over its backing storage. A *Table
// resolves to itself with identity indirections; a *View resolves to its
// base with the view's row/column maps. Any other Access materializes
// (one copy) so the cursor is always span-backed.
func NewCursor(a Access) Cursor {
	switch s := a.(type) {
	case *Table:
		return Cursor{base: s}
	case *View:
		return Cursor{base: s.base, rows: s.rows, cols: s.cols}
	default:
		return Cursor{base: a.Materialize()}
	}
}

// Rows returns the base-row-per-logical-row indirection, or nil when
// logical rows are base rows in order. Read-only; see the aliasing
// contract above.
func (c Cursor) Rows() []int { return c.rows }

// NumRows returns the logical row count (length of the row indirection,
// or the base row count when dense).
func (c Cursor) NumRows() int {
	if c.rows == nil {
		return c.base.NumRows()
	}
	return len(c.rows)
}

// baseCol maps a logical column index to a base column index.
func (c Cursor) baseCol(j int) int {
	if c.cols == nil {
		return j
	}
	return c.cols[j]
}

// Column returns the backing *Column for logical column j. Read-only.
func (c Cursor) Column(j int) *Column { return c.base.cols[c.baseCol(j)] }

// NumsSpan returns the backing []float64 of numeric column j plus the row
// indirection to apply (nil = iterate the slice directly). It panics on a
// nominal column, mirroring Access.Float. The returned slices are live
// storage: read-only, per the Cursor aliasing contract.
func (c Cursor) NumsSpan(j int) (nums []float64, rows []int) {
	col := c.base.cols[c.baseCol(j)]
	if col.Kind != Numeric {
		panic("table: NumsSpan on nominal column " + col.Name)
	}
	return col.Nums, c.rows
}

// CatsSpan returns the backing []int of nominal column j (dictionary
// codes, MissingCat for missing) plus the row indirection to apply (nil =
// iterate the slice directly). It panics on a numeric column, mirroring
// Access.Cat. The returned slices are live storage: read-only, per the
// Cursor aliasing contract.
func (c Cursor) CatsSpan(j int) (cats []int, rows []int) {
	col := c.base.cols[c.baseCol(j)]
	if col.Kind != Nominal {
		panic("table: CatsSpan on numeric column " + col.Name)
	}
	return col.Cats, c.rows
}
