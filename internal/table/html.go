package table

import (
	"fmt"
	"io"
	"strings"
)

// ReadHTMLTable extracts the first <table> element from an HTML document
// into a typed Table. The parser is a small, tolerant hand-rolled tag
// scanner (stdlib-only, no golang.org/x/net): it understands <table>,
// <tr>, <th>, <td>, ignores attributes, strips nested inline markup inside
// cells, and decodes the common entities. Header cells (<th>) in the first
// row become column names; without any <th> the first row is still treated
// as the header, matching how scraped government tables behave in practice.
func ReadHTMLTable(r io.Reader, name string) (*Table, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("table: reading html: %w", err)
	}
	rows, hadTH, err := parseFirstHTMLTable(string(raw))
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("table: html input has no table rows")
	}

	header := rows[0]
	data := rows[1:]
	_ = hadTH // first row is the header either way; hadTH kept for clarity

	width := len(header)
	for _, rw := range data {
		if len(rw) > width {
			width = len(rw)
		}
	}
	for len(header) < width {
		header = append(header, "")
	}

	cells := make([][]string, width)
	for j := 0; j < width; j++ {
		cells[j] = make([]string, len(data))
		for i, rw := range data {
			if j < len(rw) {
				cells[j][i] = rw[j]
			}
		}
	}
	if name == "" {
		name = "html"
	}
	return fromRawColumns(name, dedupeNames(header), cells, 0.95)
}

// parseFirstHTMLTable scans markup and returns the cell text of the first
// table, row-major, plus whether any <th> was seen.
func parseFirstHTMLTable(doc string) ([][]string, bool, error) {
	lower := strings.ToLower(doc)
	start := strings.Index(lower, "<table")
	if start < 0 {
		return nil, false, fmt.Errorf("table: html input has no <table>")
	}
	end := strings.Index(lower[start:], "</table>")
	if end < 0 {
		end = len(doc) - start
	}
	body := doc[start : start+end]

	var (
		rows    [][]string
		current []string
		cell    strings.Builder
		inCell  bool
		hadTH   bool
	)
	flushCell := func() {
		if inCell {
			current = append(current, cleanHTMLText(cell.String()))
			cell.Reset()
			inCell = false
		}
	}
	flushRow := func() {
		flushCell()
		if current != nil {
			rows = append(rows, current)
			current = nil
		}
	}

	i := 0
	for i < len(body) {
		lt := strings.IndexByte(body[i:], '<')
		if lt < 0 {
			if inCell {
				cell.WriteString(body[i:])
			}
			break
		}
		if inCell {
			cell.WriteString(body[i : i+lt])
		}
		i += lt
		gt := strings.IndexByte(body[i:], '>')
		if gt < 0 {
			break
		}
		tag := body[i+1 : i+gt]
		i += gt + 1

		tagName := strings.ToLower(strings.TrimSpace(tag))
		closing := strings.HasPrefix(tagName, "/")
		tagName = strings.TrimPrefix(tagName, "/")
		if sp := strings.IndexAny(tagName, " \t\r\n/"); sp >= 0 {
			tagName = tagName[:sp]
		}

		switch tagName {
		case "tr":
			if closing {
				flushRow()
			} else {
				flushRow() // tolerate unclosed previous row
				current = []string{}
			}
		case "td", "th":
			if closing {
				flushCell()
			} else {
				flushCell() // tolerate unclosed previous cell
				inCell = true
				if tagName == "th" {
					hadTH = true
				}
				if current == nil {
					current = []string{}
				}
			}
		case "br":
			if inCell {
				cell.WriteByte(' ')
			}
		default:
			// Inline markup inside cells (a, b, span, ...) is ignored.
		}
	}
	flushRow()

	// Drop rows that are entirely empty (spacer rows).
	out := rows[:0]
	for _, rw := range rows {
		empty := true
		for _, c := range rw {
			if c != "" {
				empty = false
				break
			}
		}
		if !empty {
			out = append(out, rw)
		}
	}
	return out, hadTH, nil
}

// cleanHTMLText collapses whitespace and decodes the entities that matter
// for data cells.
func cleanHTMLText(s string) string {
	replacements := []struct{ from, to string }{
		{"&nbsp;", " "}, {"&amp;", "&"}, {"&lt;", "<"}, {"&gt;", ">"},
		{"&quot;", `"`}, {"&#39;", "'"}, {"&apos;", "'"},
	}
	for _, r := range replacements {
		s = strings.ReplaceAll(s, r.from, r.to)
	}
	return strings.Join(strings.Fields(s), " ")
}
