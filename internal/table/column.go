// Package table implements the tabular data substrate of the OpenBI
// reproduction: a typed, columnar, missing-value-aware in-memory table plus
// readers for the raw open-data formats the paper names in its introduction
// ("open data are generally shared as raw data in formats such as CSV, XML
// or as HTML tables").
//
// A Table holds Numeric and Nominal columns. Missing values are first-class
// (NaN for numeric cells, code -1 for nominal cells) because the whole point
// of the paper is reasoning about incomplete, dirty data rather than
// rejecting it at the door.
package table

import (
	"fmt"
	"math"
)

// Kind is the type of a column.
type Kind int

const (
	// Numeric columns store float64 values; NaN marks a missing cell.
	Numeric Kind = iota
	// Nominal columns store category codes into a per-column dictionary;
	// code -1 marks a missing cell.
	Nominal
)

// String returns "numeric" or "nominal".
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Nominal:
		return "nominal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MissingCat is the category code that marks a missing nominal cell.
const MissingCat = -1

// Column is a single typed column. Exactly one of Nums/Cats is used,
// according to Kind. Columns are mutable; Table methods keep all columns at
// equal length.
type Column struct {
	Name string
	Kind Kind

	Nums []float64 // used when Kind == Numeric
	Cats []int     // used when Kind == Nominal

	levels []string
	lookup map[string]int
}

// NewNumericColumn returns an empty numeric column.
func NewNumericColumn(name string) *Column {
	return &Column{Name: name, Kind: Numeric}
}

// NewNominalColumn returns an empty nominal column with the given initial
// levels (more levels may be interned later via Code).
func NewNominalColumn(name string, levels ...string) *Column {
	c := &Column{Name: name, Kind: Nominal, lookup: make(map[string]int, len(levels))}
	for _, l := range levels {
		c.Code(l)
	}
	return c
}

// Len returns the number of cells in the column.
func (c *Column) Len() int {
	if c.Kind == Numeric {
		return len(c.Nums)
	}
	return len(c.Cats)
}

// Levels returns the dictionary of a nominal column in code order.
// The returned slice must not be modified.
func (c *Column) Levels() []string { return c.levels }

// NumLevels returns the number of distinct categories interned so far.
func (c *Column) NumLevels() int { return len(c.levels) }

// Code interns label and returns its category code. It panics on a numeric
// column, which is always a programming error.
func (c *Column) Code(label string) int {
	if c.Kind != Nominal {
		panic("table: Code on numeric column " + c.Name)
	}
	if c.lookup == nil {
		c.lookup = make(map[string]int)
	}
	if code, ok := c.lookup[label]; ok {
		return code
	}
	code := len(c.levels)
	c.levels = append(c.levels, label)
	c.lookup[label] = code
	return code
}

// CodeOf returns the code for label without interning, or MissingCat when
// the label is unknown.
func (c *Column) CodeOf(label string) int {
	if code, ok := c.lookup[label]; ok {
		return code
	}
	return MissingCat
}

// Label returns the label for a category code, or "?" for MissingCat or an
// out-of-range code.
func (c *Column) Label(code int) string {
	if code < 0 || code >= len(c.levels) {
		return "?"
	}
	return c.levels[code]
}

// AppendFloat appends a numeric cell.
func (c *Column) AppendFloat(v float64) { c.Nums = append(c.Nums, v) }

// AppendLabel interns the label and appends the corresponding nominal cell.
func (c *Column) AppendLabel(label string) { c.Cats = append(c.Cats, c.Code(label)) }

// AppendCode appends a raw nominal code (caller guarantees validity).
func (c *Column) AppendCode(code int) { c.Cats = append(c.Cats, code) }

// AppendMissing appends a missing cell of the column's kind.
func (c *Column) AppendMissing() {
	if c.Kind == Numeric {
		c.Nums = append(c.Nums, math.NaN())
	} else {
		c.Cats = append(c.Cats, MissingCat)
	}
}

// IsMissing reports whether cell row is missing.
func (c *Column) IsMissing(row int) bool {
	if c.Kind == Numeric {
		return math.IsNaN(c.Nums[row])
	}
	return c.Cats[row] == MissingCat
}

// SetMissing marks cell row missing.
func (c *Column) SetMissing(row int) {
	if c.Kind == Numeric {
		c.Nums[row] = math.NaN()
	} else {
		c.Cats[row] = MissingCat
	}
}

// MissingCount returns the number of missing cells.
func (c *Column) MissingCount() int {
	n := 0
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) {
			n++
		}
	}
	return n
}

// CellString renders cell row for display; missing cells render as "?".
func (c *Column) CellString(row int) string {
	if c.IsMissing(row) {
		return "?"
	}
	if c.Kind == Numeric {
		v := c.Nums[row]
		if v == math.Trunc(v) && math.Abs(v) < 1e15 {
			return fmt.Sprintf("%d", int64(v))
		}
		return fmt.Sprintf("%g", v)
	}
	return c.Label(c.Cats[row])
}

// Counts returns per-level counts for a nominal column (missing excluded).
func (c *Column) Counts() []int {
	if c.Kind != Nominal {
		return nil
	}
	counts := make([]int, len(c.levels))
	for _, code := range c.Cats {
		if code >= 0 && code < len(counts) {
			counts[code]++
		}
	}
	return counts
}

// Clone returns a deep copy of the column.
func (c *Column) Clone() *Column {
	out := &Column{Name: c.Name, Kind: c.Kind}
	if c.Kind == Numeric {
		out.Nums = append([]float64(nil), c.Nums...)
		return out
	}
	out.Cats = append([]int(nil), c.Cats...)
	out.levels = append([]string(nil), c.levels...)
	out.lookup = make(map[string]int, len(c.levels))
	for i, l := range out.levels {
		out.lookup[l] = i
	}
	return out
}

// Select returns a new column containing the cells at the given rows, in
// order (rows may repeat: this implements both projection and resampling).
func (c *Column) Select(rows []int) *Column {
	out := c.emptyLike()
	if c.Kind == Numeric {
		out.Nums = make([]float64, len(rows))
		for i, r := range rows {
			out.Nums[i] = c.Nums[r]
		}
		return out
	}
	out.Cats = make([]int, len(rows))
	for i, r := range rows {
		out.Cats[i] = c.Cats[r]
	}
	return out
}

// emptyLike returns an empty column with the same name, kind and dictionary.
func (c *Column) emptyLike() *Column {
	out := &Column{Name: c.Name, Kind: c.Kind}
	if c.Kind == Nominal {
		out.levels = append([]string(nil), c.levels...)
		out.lookup = make(map[string]int, len(c.levels))
		for i, l := range out.levels {
			out.lookup[l] = i
		}
	}
	return out
}
