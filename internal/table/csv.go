package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// missingTokens are the cell spellings treated as missing by all readers.
// The set matches what open-data portals actually emit.
var missingTokens = map[string]bool{
	"": true, "?": true, "NA": true, "N/A": true, "na": true, "n/a": true,
	"null": true, "NULL": true, "Null": true, "nil": true, "-": true,
	"missing": true, "MISSING": true,
}

// IsMissingToken reports whether a raw cell string denotes a missing value.
func IsMissingToken(s string) bool { return missingTokens[strings.TrimSpace(s)] }

// ReadCSVOptions controls CSV ingestion.
type ReadCSVOptions struct {
	// Comma is the field delimiter; 0 means ','.
	Comma rune
	// HasHeader indicates the first record carries column names.
	// Without a header, columns are named c0, c1, ...
	HasHeader bool
	// NumericThreshold is the minimum fraction of non-missing cells that
	// must parse as numbers for a column to be typed Numeric; 0 means 0.95.
	NumericThreshold float64
	// Name is the resulting table name; "" means "csv".
	Name string
}

// ReadCSV ingests a CSV stream into a typed Table, inferring per-column
// types. Type inference is per the paper's motivation: open data arrives
// "without paying attention in structure nor semantics", so the reader must
// decide structure itself. A column becomes Numeric when at least
// NumericThreshold of its observed cells parse as floats; numeric-looking
// cells in a column voted Nominal are kept as their string spelling.
func ReadCSV(r io.Reader, opts ReadCSVOptions) (*Table, error) {
	if opts.Comma == 0 {
		opts.Comma = ','
	}
	if opts.NumericThreshold == 0 {
		opts.NumericThreshold = 0.95
	}
	if opts.Name == "" {
		opts.Name = "csv"
	}
	cr := csv.NewReader(r)
	cr.Comma = opts.Comma
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true

	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table: empty csv input")
	}

	var header []string
	rows := records
	if opts.HasHeader {
		header = records[0]
		rows = records[1:]
	}
	width := 0
	for _, rec := range records {
		if len(rec) > width {
			width = len(rec)
		}
	}
	if header == nil {
		header = make([]string, width)
		for i := range header {
			header[i] = fmt.Sprintf("c%d", i)
		}
	}
	for len(header) < width {
		header = append(header, fmt.Sprintf("c%d", len(header)))
	}

	cells := make([][]string, width) // column-major raw cells
	for j := 0; j < width; j++ {
		cells[j] = make([]string, len(rows))
		for i, rec := range rows {
			if j < len(rec) {
				cells[j][i] = strings.TrimSpace(rec[j])
			}
		}
	}
	return fromRawColumns(opts.Name, dedupeNames(header), cells, opts.NumericThreshold)
}

// fromRawColumns performs type inference and builds the table from raw
// column-major string cells. It is shared by the CSV, XML and HTML readers.
func fromRawColumns(name string, header []string, cells [][]string, numericThreshold float64) (*Table, error) {
	t := New(name)
	for j, raw := range cells {
		numeric, observed := 0, 0
		for _, s := range raw {
			if IsMissingToken(s) {
				continue
			}
			observed++
			if _, err := parseNumber(s); err == nil {
				numeric++
			}
		}
		isNumeric := observed > 0 && float64(numeric) >= numericThreshold*float64(observed)
		var col *Column
		if isNumeric {
			col = NewNumericColumn(header[j])
			for _, s := range raw {
				if IsMissingToken(s) {
					col.AppendFloat(math.NaN())
					continue
				}
				v, err := parseNumber(s)
				if err != nil {
					// Below-threshold stragglers in a numeric column become missing.
					col.AppendFloat(math.NaN())
					continue
				}
				col.AppendFloat(v)
			}
		} else {
			col = NewNominalColumn(header[j])
			for _, s := range raw {
				if IsMissingToken(s) {
					col.AppendMissing()
					continue
				}
				col.AppendLabel(s)
			}
		}
		if err := t.AddColumn(col); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// parseNumber parses a float allowing thousands separators and a trailing
// percent sign, two ubiquitous open-data spellings.
func parseNumber(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	if pct {
		s = strings.TrimSuffix(s, "%")
	}
	s = strings.ReplaceAll(s, ",", "")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if pct {
		v /= 100
	}
	return v, nil
}

// dedupeNames makes column names unique by suffixing duplicates with _2,
// _3, ... — open-data HTML tables repeat header labels constantly.
func dedupeNames(names []string) []string {
	seen := make(map[string]int, len(names))
	out := make([]string, len(names))
	for i, n := range names {
		if n == "" {
			n = fmt.Sprintf("c%d", i)
		}
		if k := seen[n]; k > 0 {
			out[i] = fmt.Sprintf("%s_%d", n, k+1)
		} else {
			out[i] = n
		}
		seen[n]++
	}
	return out
}

// WriteCSV writes the table as CSV with a header row; missing cells are
// written as empty fields.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for j, c := range t.Columns() {
			if c.IsMissing(r) {
				rec[j] = ""
			} else {
				rec[j] = c.CellString(r)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
