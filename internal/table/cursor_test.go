package table

import (
	"math"
	"testing"
)

// cursorFixture builds a mixed table with missing cells plus assorted
// views over it: row-selected, column-projected, composed, repeated rows.
func cursorFixture(t *testing.T) (*Table, []Access) {
	t.Helper()
	tb := New("fix")
	n := NewNumericColumn("n")
	c := NewNominalColumn("c", "a", "b")
	m := NewNumericColumn("m")
	for i := 0; i < 10; i++ {
		n.AppendFloat(float64(i) * 1.5)
		c.AppendCode(i % 2)
		m.AppendFloat(float64(-i))
	}
	tb.MustAddColumn(n)
	tb.MustAddColumn(c)
	tb.MustAddColumn(m)
	tb.SetMissing(3, 0)
	tb.SetMissing(4, 1)
	views := []Access{
		tb,
		RowView(tb, []int{9, 2, 2, 5, 0}),
		ColumnView(tb, []int{2, 1}),
		RowView(ColumnView(tb, []int{2, 0, 1}), []int{1, 3, 3, 8}),
	}
	return tb, views
}

// TestCursorSpansMatchAccess checks every span read against the Access
// interface cell reads for tables and composed views.
func TestCursorSpansMatchAccess(t *testing.T) {
	_, views := cursorFixture(t)
	for vi, a := range views {
		cur := NewCursor(a)
		if cur.NumRows() != a.NumRows() {
			t.Fatalf("view %d: NumRows %d != %d", vi, cur.NumRows(), a.NumRows())
		}
		rowOf := func(r int) int {
			if rows := cur.Rows(); rows != nil {
				return rows[r]
			}
			return r
		}
		for j := 0; j < a.NumCols(); j++ {
			switch a.ColumnKind(j) {
			case Numeric:
				nums, _ := cur.NumsSpan(j)
				for r := 0; r < a.NumRows(); r++ {
					got, want := nums[rowOf(r)], a.Float(r, j)
					if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
						t.Fatalf("view %d col %d row %d: span %v, Float %v", vi, j, r, got, want)
					}
				}
			case Nominal:
				cats, _ := cur.CatsSpan(j)
				for r := 0; r < a.NumRows(); r++ {
					if got, want := cats[rowOf(r)], a.Cat(r, j); got != want {
						t.Fatalf("view %d col %d row %d: span %v, Cat %v", vi, j, r, got, want)
					}
				}
			}
		}
	}
}

// TestCursorSpanKindPanics pins the panic behaviour promised by the API
// docs (mirroring Access.Float / Access.Cat).
func TestCursorSpanKindPanics(t *testing.T) {
	tb, _ := cursorFixture(t)
	cur := NewCursor(tb)
	assertPanics(t, "NumsSpan on nominal", func() { cur.NumsSpan(1) })
	assertPanics(t, "CatsSpan on numeric", func() { cur.CatsSpan(0) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

// TestFloatsMatchesMaterialize pins the Floats contract: identical values
// to a materialized copy for dense and row-indirected views.
func TestFloatsMatchesMaterialize(t *testing.T) {
	_, views := cursorFixture(t)
	for vi, a := range views {
		mat := a.Materialize()
		for j := 0; j < a.NumCols(); j++ {
			if a.ColumnKind(j) != Numeric {
				continue
			}
			got := Floats(a, j)
			want := mat.Column(j).Nums
			if len(got) != len(want) {
				t.Fatalf("view %d col %d: len %d != %d", vi, j, len(got), len(want))
			}
			for r := range want {
				if got[r] != want[r] && !(math.IsNaN(got[r]) && math.IsNaN(want[r])) {
					t.Fatalf("view %d col %d row %d: %v != %v", vi, j, r, got[r], want[r])
				}
			}
		}
	}
}
