package table

import (
	"math"
	"testing"
)

// viewFixture builds a small mixed table:
//
//	n:   0, 1, 2, NaN, 4
//	c:   a, b, ?, a,   c
func viewFixture() *Table {
	t := New("fix")
	nc := NewNumericColumn("n")
	for _, v := range []float64{0, 1, 2, math.NaN(), 4} {
		nc.AppendFloat(v)
	}
	t.MustAddColumn(nc)
	cc := NewNominalColumn("c")
	for _, l := range []string{"a", "b"} {
		cc.AppendLabel(l)
	}
	cc.AppendMissing()
	cc.AppendLabel("a")
	cc.AppendLabel("c")
	t.MustAddColumn(cc)
	return t
}

func TestRowViewReadsThroughIndirection(t *testing.T) {
	tb := viewFixture()
	v := RowView(tb, []int{4, 0, 3})
	if v.NumRows() != 3 || v.NumCols() != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", v.NumRows(), v.NumCols())
	}
	if got := v.Float(0, 0); got != 4 {
		t.Fatalf("Float(0,0) = %v, want 4", got)
	}
	if got := v.Cat(1, 1); tb.Label(1, got) != "a" {
		t.Fatalf("Cat(1,1) label = %q, want a", tb.Label(1, got))
	}
	if !v.IsMissing(2, 0) {
		t.Fatal("row 3 of n is NaN; view row 2 must be missing")
	}
	// Dictionaries are shared: codes agree with the base.
	if v.NumLevels(1) != tb.NumLevels(1) {
		t.Fatal("view must share the base dictionary")
	}
}

func TestViewComposition(t *testing.T) {
	tb := viewFixture()
	v1 := RowView(tb, []int{4, 3, 2, 1, 0}) // reverse
	v2 := RowView(v1, []int{0, 2})          // base rows 4, 2
	if v2.Float(0, 0) != 4 || v2.Float(1, 0) != 2 {
		t.Fatalf("composed view reads %v, %v; want 4, 2", v2.Float(0, 0), v2.Float(1, 0))
	}
	vw, ok := v2.(*View)
	if !ok {
		t.Fatal("composition should stay a *View")
	}
	if vw.Base() != tb {
		t.Fatal("composition must rebase onto the concrete table, not nest views")
	}
	c := ColumnView(v2, []int{1})
	if c.NumCols() != 1 || c.ColumnName(0) != "c" {
		t.Fatalf("column view = %v", c.ColumnNames())
	}
	if c.ColumnIndex("c") != 0 || c.ColumnIndex("n") != -1 {
		t.Fatal("ColumnIndex must be view-relative")
	}
}

func TestViewMaterializeMatchesSelect(t *testing.T) {
	tb := viewFixture()
	rows := []int{1, 1, 4}
	got := RowView(tb, rows).Materialize()
	want := tb.SelectRows(rows)
	if !Equal(got, want) {
		t.Fatalf("materialized view differs from SelectRows copy")
	}
	cols := []int{1}
	gotC := ColumnView(tb, cols).Materialize()
	wantC := tb.SelectColumns(cols)
	if !Equal(gotC, wantC) {
		t.Fatalf("materialized column view differs from SelectColumns copy")
	}
	// Materialize must detach: mutating the result leaves the base alone.
	got.SetFloat(0, 0, 99)
	if tb.Float(1, 0) != 1 {
		t.Fatal("materialized table still shares storage with the base")
	}
}

func TestViewIsZeroCopy(t *testing.T) {
	tb := viewFixture()
	v := RowView(tb, []int{0, 1})
	// Views observe base mutations — that is the sharing contract.
	tb.SetFloat(0, 0, 7)
	if v.Float(0, 0) != 7 {
		t.Fatal("view should read through to base storage")
	}
}

func TestShallowCloneCopyOnWrite(t *testing.T) {
	tb := viewFixture()
	cow := tb.ShallowClone()
	if cow.Column(0) != tb.Column(0) {
		t.Fatal("shallow clone must share columns before any write")
	}
	cow.SetFloat(0, 0, 42)
	if cow.Column(0) == tb.Column(0) {
		t.Fatal("first write must promote the column to an owned copy")
	}
	if tb.Float(0, 0) != 0 {
		t.Fatalf("base mutated through COW clone: %v", tb.Float(0, 0))
	}
	if cow.Float(0, 0) != 42 {
		t.Fatalf("COW clone lost its write: %v", cow.Float(0, 0))
	}
	if cow.Column(1) != tb.Column(1) {
		t.Fatal("untouched column should remain shared")
	}
	// Structural ops stay independent.
	extra := NewNumericColumn("extra")
	for i := 0; i < cow.NumRows(); i++ {
		extra.AppendFloat(float64(i))
	}
	cow.MustAddColumn(extra)
	if tb.NumCols() != 2 {
		t.Fatal("adding a column to the clone must not grow the base")
	}
}

func TestShallowCloneAppendRowPromotes(t *testing.T) {
	tb := viewFixture()
	cow := tb.ShallowClone()
	cow.AppendEmptyRow()
	if tb.NumRows() != 5 {
		t.Fatalf("base grew to %d rows through COW clone", tb.NumRows())
	}
	if cow.NumRows() != 6 {
		t.Fatalf("clone rows = %d, want 6", cow.NumRows())
	}
}

func TestReplaceColumn(t *testing.T) {
	tb := viewFixture()
	nc := NewNominalColumn("c")
	for i := 0; i < tb.NumRows(); i++ {
		nc.AppendLabel("x")
	}
	if err := tb.ReplaceColumn(1, nc); err != nil {
		t.Fatal(err)
	}
	if tb.Label(1, tb.Cat(0, 1)) != "x" {
		t.Fatal("ReplaceColumn did not take effect")
	}
	short := NewNumericColumn("n2")
	if err := tb.ReplaceColumn(0, short); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
}

func TestCopyOnWriteOfView(t *testing.T) {
	tb := viewFixture()
	v := RowView(tb, []int{4, 0})
	cow := CopyOnWrite(v)
	cow.SetFloat(0, 0, -1)
	if tb.Float(4, 0) != 4 {
		t.Fatal("writing a materialized view reached the base")
	}
}

func TestFloatsSharedForTableGatheredForView(t *testing.T) {
	tb := viewFixture()
	if &Floats(tb, 0)[0] != &tb.Column(0).Nums[0] {
		t.Fatal("Floats on a table should return the live backing slice")
	}
	got := Floats(RowView(tb, []int{4, 1}), 0)
	if len(got) != 2 || got[0] != 4 || got[1] != 1 {
		t.Fatalf("Floats via view = %v, want [4 1]", got)
	}
}
