package table

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadXML ingests a record-oriented XML document of the shape
//
//	<root>
//	  <record><field>value</field>...</record>
//	  ...
//	</root>
//
// which is the dominant structure of XML open-data exports. The element
// names of the record children become column names; records may omit
// fields (they become missing cells) and may introduce new fields at any
// point. Nested elements below field level are flattened with '.'
// separators (e.g. address.city).
func ReadXML(r io.Reader, name string) (*Table, error) {
	dec := xml.NewDecoder(r)

	// Find the root start element.
	var root xml.StartElement
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("table: reading xml: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			root = se
			break
		}
	}
	_ = root

	type record map[string]string
	var records []record
	fieldSet := make(map[string]bool)

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading xml: %w", err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		rec := record{}
		if err := readXMLRecord(dec, se, "", rec); err != nil {
			return nil, err
		}
		if len(rec) > 0 {
			records = append(records, rec)
			for k := range rec {
				fieldSet[k] = true
			}
		}
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table: xml input has no records")
	}

	fields := make([]string, 0, len(fieldSet))
	for f := range fieldSet {
		fields = append(fields, f)
	}
	sort.Strings(fields)

	cells := make([][]string, len(fields))
	for j, f := range fields {
		cells[j] = make([]string, len(records))
		for i, rec := range records {
			cells[j][i] = rec[f]
		}
	}
	if name == "" {
		name = "xml"
	}
	return fromRawColumns(name, dedupeNames(fields), cells, 0.95)
}

// readXMLRecord consumes the element opened by se and stores its leaf text
// content into rec under prefixed field names.
func readXMLRecord(dec *xml.Decoder, se xml.StartElement, prefix string, rec map[string]string) error {
	var text strings.Builder
	sawChild := false
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("table: reading xml record: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			sawChild = true
			childName := t.Name.Local
			if prefix != "" {
				childName = prefix + "." + childName
			}
			if err := readXMLRecord(dec, t, childName, rec); err != nil {
				return err
			}
		case xml.CharData:
			text.Write(t)
		case xml.EndElement:
			if !sawChild && prefix != "" {
				rec[prefix] = strings.TrimSpace(text.String())
			}
			return nil
		}
	}
}
