package table

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadCSV throws arbitrary bytes at the CSV ingester and checks the
// structural invariants every downstream consumer (dq, mining, olap)
// relies on: rectangular columns, unique names, missing-mask consistency,
// and numeric columns that never hold an unmasked NaN surprise.
func FuzzReadCSV(f *testing.F) {
	seeds := []struct {
		data      string
		hasHeader bool
	}{
		{"", true},
		{"a,b\n1,x\n2,y\n", true},
		{"1,2\n3,4\n", false},
		{"a,a,a\n1,2,3\n", true},      // duplicate headers
		{"a,b\n1\n1,2,3\n", true},     // ragged rows
		{"a,b\n?,NA\nnull,-\n", true}, // missing tokens
		{"a\n1,234\n56.7%\n", true},   // thousands + percent spellings
		{"a;b\n1;2\n", true},          // wrong separator: one fat column
		{"\"q\"\"uote\",b\n\"x,y\",2\n", true},
		{"a,b\n\"unclosed,2\n", true},
		{"\xff\xfe,b\n1,2\n", true}, // invalid utf-8
	}
	for _, s := range seeds {
		f.Add([]byte(s.data), s.hasHeader)
	}
	f.Fuzz(func(t *testing.T, data []byte, hasHeader bool) {
		tb, err := ReadCSV(bytes.NewReader(data), ReadCSVOptions{HasHeader: hasHeader, Name: "fuzz"})
		if err != nil {
			return // rejecting malformed input is fine; crashing is not
		}
		rows := tb.NumRows()
		seen := map[string]bool{}
		for _, col := range tb.Columns() {
			if col.Len() != rows {
				t.Fatalf("column %q has %d cells, table has %d rows", col.Name, col.Len(), rows)
			}
			if seen[col.Name] {
				t.Fatalf("duplicate column name %q survived dedupe", col.Name)
			}
			seen[col.Name] = true
			for r := 0; r < rows; r++ {
				if col.Kind == Numeric {
					if math.IsNaN(col.Nums[r]) != col.IsMissing(r) {
						t.Fatalf("column %q row %d: NaN/missing mask mismatch", col.Name, r)
					}
				}
				// CellString must never panic, missing or not.
				_ = col.CellString(r)
			}
		}
		// A parsed table must re-serialize; WriteCSV shares the row walk
		// with every exporter.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tb); err != nil {
			t.Fatalf("writing parsed table: %v", err)
		}
	})
}
