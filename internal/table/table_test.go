package table

import (
	"math"
	"testing"
	"testing/quick"
)

// makeSample builds a small mixed table used across tests:
//
//	age (numeric), city (nominal), income (numeric with one missing)
func makeSample() *Table {
	t := New("people")
	age := NewNumericColumn("age")
	for _, v := range []float64{25, 40, 31, 58} {
		age.AppendFloat(v)
	}
	city := NewNominalColumn("city")
	for _, l := range []string{"Alicante", "Berlin", "Alicante", "Matanzas"} {
		city.AppendLabel(l)
	}
	income := NewNumericColumn("income")
	income.AppendFloat(30000)
	income.AppendMissing()
	income.AppendFloat(25000)
	income.AppendFloat(41000)
	t.MustAddColumn(age)
	t.MustAddColumn(city)
	t.MustAddColumn(income)
	return t
}

func TestTableShape(t *testing.T) {
	tb := makeSample()
	if tb.NumRows() != 4 || tb.NumCols() != 3 {
		t.Fatalf("shape = %dx%d, want 4x3", tb.NumRows(), tb.NumCols())
	}
}

func TestAddColumnDuplicate(t *testing.T) {
	tb := makeSample()
	err := tb.AddColumn(NewNumericColumn("age"))
	if err == nil {
		t.Fatal("duplicate column name should error")
	}
}

func TestAddColumnLengthMismatch(t *testing.T) {
	tb := makeSample()
	short := NewNumericColumn("short")
	short.AppendFloat(1)
	if err := tb.AddColumn(short); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestColumnLookup(t *testing.T) {
	tb := makeSample()
	if tb.ColumnIndex("city") != 1 {
		t.Fatalf("ColumnIndex(city) = %d, want 1", tb.ColumnIndex("city"))
	}
	if tb.ColumnIndex("nope") != -1 {
		t.Fatal("missing column should index -1")
	}
	if tb.ColumnByName("nope") != nil {
		t.Fatal("missing column should be nil")
	}
	if got := tb.ColumnByName("age").Name; got != "age" {
		t.Fatalf("ColumnByName = %q", got)
	}
}

func TestCellAccess(t *testing.T) {
	tb := makeSample()
	if tb.Float(0, 0) != 25 {
		t.Fatalf("Float(0,0) = %v", tb.Float(0, 0))
	}
	if tb.Column(1).Label(tb.Cat(1, 1)) != "Berlin" {
		t.Fatal("Cat lookup failed")
	}
	if !tb.IsMissing(1, 2) {
		t.Fatal("income[1] should be missing")
	}
	if tb.IsMissing(0, 2) {
		t.Fatal("income[0] should be observed")
	}
}

func TestFloatOnNominalPanics(t *testing.T) {
	tb := makeSample()
	defer func() {
		if recover() == nil {
			t.Fatal("Float on nominal column should panic")
		}
	}()
	tb.Float(0, 1)
}

func TestCatOnNumericPanics(t *testing.T) {
	tb := makeSample()
	defer func() {
		if recover() == nil {
			t.Fatal("Cat on numeric column should panic")
		}
	}()
	tb.Cat(0, 0)
}

func TestCloneIsDeep(t *testing.T) {
	tb := makeSample()
	cp := tb.Clone()
	cp.SetFloat(0, 0, 99)
	cp.SetCat(0, 1, cp.Column(1).Code("Havana"))
	if tb.Float(0, 0) == 99 {
		t.Fatal("clone shares numeric storage")
	}
	if tb.Column(1).NumLevels() == cp.Column(1).NumLevels() {
		t.Fatal("clone shares nominal dictionary")
	}
	if !Equal(tb, makeSample()) {
		t.Fatal("original mutated")
	}
}

func TestSelectRows(t *testing.T) {
	tb := makeSample()
	sel := tb.SelectRows([]int{3, 0, 0})
	if sel.NumRows() != 3 {
		t.Fatalf("rows = %d", sel.NumRows())
	}
	if sel.Float(0, 0) != 58 || sel.Float(1, 0) != 25 || sel.Float(2, 0) != 25 {
		t.Fatal("SelectRows order/repeat wrong")
	}
	// Dictionary must be preserved so codes stay compatible.
	if sel.Column(1).Label(sel.Cat(0, 1)) != "Matanzas" {
		t.Fatal("nominal label lost in selection")
	}
}

func TestSelectColumnsAndDrop(t *testing.T) {
	tb := makeSample()
	sub := tb.SelectColumns([]int{2, 0})
	if sub.NumCols() != 2 || sub.Column(0).Name != "income" || sub.Column(1).Name != "age" {
		t.Fatal("SelectColumns wrong")
	}
	dropped := tb.DropColumn("city")
	if dropped.NumCols() != 2 || dropped.ColumnIndex("city") != -1 {
		t.Fatal("DropColumn wrong")
	}
	if tb.NumCols() != 3 {
		t.Fatal("DropColumn mutated receiver")
	}
}

func TestAppendRowsByName(t *testing.T) {
	a := makeSample()
	b := New("more")
	city := NewNominalColumn("city")
	city.AppendLabel("Havana") // label unknown to a's dictionary
	age := NewNumericColumn("age")
	age.AppendFloat(70)
	b.MustAddColumn(city)
	b.MustAddColumn(age)

	if err := a.AppendRows(b); err != nil {
		t.Fatal(err)
	}
	last := a.NumRows() - 1
	if a.Float(last, 0) != 70 {
		t.Fatal("age not appended")
	}
	if a.Column(1).Label(a.Cat(last, 1)) != "Havana" {
		t.Fatal("label not re-interned")
	}
	if !a.IsMissing(last, 2) {
		t.Fatal("absent column should append missing")
	}
}

func TestAppendRowsKindMismatch(t *testing.T) {
	a := makeSample()
	b := New("bad")
	cityNum := NewNumericColumn("city")
	cityNum.AppendFloat(1)
	b.MustAddColumn(cityNum)
	if err := a.AppendRows(b); err == nil {
		t.Fatal("kind mismatch should error")
	}
}

func TestRowKeyDuplicatesDetect(t *testing.T) {
	tb := makeSample()
	dup := tb.SelectRows([]int{0, 1, 2, 3, 0})
	keys := map[string]int{}
	for r := 0; r < dup.NumRows(); r++ {
		keys[dup.RowKey(r)]++
	}
	if len(keys) != 4 {
		t.Fatalf("distinct keys = %d, want 4", len(keys))
	}
}

func TestMissingCells(t *testing.T) {
	tb := makeSample()
	if tb.MissingCells() != 1 {
		t.Fatalf("MissingCells = %d, want 1", tb.MissingCells())
	}
	tb.SetMissing(0, 1)
	if tb.MissingCells() != 2 {
		t.Fatalf("MissingCells after SetMissing = %d, want 2", tb.MissingCells())
	}
}

func TestColumnIndicesByKind(t *testing.T) {
	tb := makeSample()
	num := tb.NumericColumnIndices()
	nom := tb.NominalColumnIndices()
	if len(num) != 2 || num[0] != 0 || num[1] != 2 {
		t.Fatalf("numeric indices = %v", num)
	}
	if len(nom) != 1 || nom[0] != 1 {
		t.Fatalf("nominal indices = %v", nom)
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a, b := makeSample(), makeSample()
	if !Equal(a, b) {
		t.Fatal("identical tables unequal")
	}
	b.SetFloat(2, 0, 32)
	if Equal(a, b) {
		t.Fatal("value change undetected")
	}
}

func TestEqualTreatsNaNAsEqual(t *testing.T) {
	a, b := makeSample(), makeSample()
	if !a.IsMissing(1, 2) || !b.IsMissing(1, 2) {
		t.Fatal("fixture changed")
	}
	if !Equal(a, b) {
		t.Fatal("NaN cells should compare equal")
	}
}

func TestAppendEmptyRow(t *testing.T) {
	tb := makeSample()
	r := tb.AppendEmptyRow()
	if r != 4 {
		t.Fatalf("new row index = %d", r)
	}
	for j := 0; j < tb.NumCols(); j++ {
		if !tb.IsMissing(r, j) {
			t.Fatalf("column %d of empty row not missing", j)
		}
	}
}

func TestColumnCounts(t *testing.T) {
	tb := makeSample()
	counts := tb.Column(1).Counts()
	// Alicante x2, Berlin x1, Matanzas x1.
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestColumnCellString(t *testing.T) {
	tb := makeSample()
	if got := tb.Column(0).CellString(0); got != "25" {
		t.Fatalf("integer-valued cell = %q, want 25", got)
	}
	if got := tb.Column(2).CellString(1); got != "?" {
		t.Fatalf("missing cell = %q, want ?", got)
	}
	if got := tb.Column(1).CellString(3); got != "Matanzas" {
		t.Fatalf("nominal cell = %q", got)
	}
}

func TestCodeOfUnknown(t *testing.T) {
	c := NewNominalColumn("x", "a", "b")
	if c.CodeOf("z") != MissingCat {
		t.Fatal("unknown label should map to MissingCat")
	}
	if c.CodeOf("b") != 1 {
		t.Fatal("known label code wrong")
	}
}

func TestLabelOutOfRange(t *testing.T) {
	c := NewNominalColumn("x", "a")
	if c.Label(5) != "?" || c.Label(MissingCat) != "?" {
		t.Fatal("out-of-range label should render ?")
	}
}

func TestCodeOnNumericPanics(t *testing.T) {
	c := NewNumericColumn("n")
	defer func() {
		if recover() == nil {
			t.Fatal("Code on numeric column should panic")
		}
	}()
	c.Code("x")
}

// Property: SelectRows with the identity permutation is Equal to a clone.
func TestSelectRowsIdentityProperty(t *testing.T) {
	f := func(vals []float64) bool {
		tb := New("p")
		col := NewNumericColumn("v")
		for _, v := range vals {
			if math.IsInf(v, 0) {
				v = 0
			}
			col.AppendFloat(v)
		}
		tb.MustAddColumn(col)
		idx := make([]int, tb.NumRows())
		for i := range idx {
			idx[i] = i
		}
		return Equal(tb, tb.SelectRows(idx))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: RowKey is injective over distinct nominal rows.
func TestRowKeyDistinguishesLabels(t *testing.T) {
	f := func(a, b string) bool {
		tb := New("p")
		col := NewNominalColumn("v")
		col.AppendLabel(a)
		col.AppendLabel(b)
		tb.MustAddColumn(col)
		if a == b {
			return tb.RowKey(0) == tb.RowKey(1)
		}
		return tb.RowKey(0) != tb.RowKey(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRowKeyTypedEncoding pins the regression fixes of the typed row key:
// a literal "?" label is not a missing cell, labels containing the old
// 0x1f separator cannot shift bytes between columns, and numeric cells
// still round to 9 significant digits.
func TestRowKeyTypedEncoding(t *testing.T) {
	t.Run("question mark label vs missing", func(t *testing.T) {
		tb := New("q")
		c := NewNominalColumn("c", "?")
		c.AppendCode(0)
		c.AppendMissing()
		tb.MustAddColumn(c)
		if tb.RowKey(0) == tb.RowKey(1) {
			t.Fatalf("%q-label row and missing-cell row share a key", "?")
		}
	})
	t.Run("separator byte in label", func(t *testing.T) {
		tb := New("sep")
		c1 := NewNominalColumn("c1", "a\x1fb", "a")
		c2 := NewNominalColumn("c2", "c", "b\x1fc")
		c1.AppendCode(0)
		c2.AppendCode(0) // ("a\x1fb", "c")
		c1.AppendCode(1)
		c2.AppendCode(1) // ("a", "b\x1fc")
		tb.MustAddColumn(c1)
		tb.MustAddColumn(c2)
		if tb.RowKey(0) == tb.RowKey(1) {
			t.Fatal("separator byte in a label shifted between columns")
		}
	})
	t.Run("numeric rounds to 9 significant digits", func(t *testing.T) {
		tb := New("num")
		c := NewNumericColumn("v")
		c.AppendFloat(1.0000000001) // equal at 9 significant digits
		c.AppendFloat(1.0000000002)
		c.AppendFloat(1.00000001) // differs at the 9th digit
		tb.MustAddColumn(c)
		if tb.RowKey(0) != tb.RowKey(1) {
			t.Fatal("float noise below 9 significant digits should key identically")
		}
		if tb.RowKey(0) == tb.RowKey(2) {
			t.Fatal("difference at 9 significant digits should key differently")
		}
	})
	t.Run("AppendRowKey matches RowKey", func(t *testing.T) {
		tb := makeSample()
		var buf []byte
		for r := 0; r < tb.NumRows(); r++ {
			buf = tb.AppendRowKey(buf[:0], r)
			if string(buf) != tb.RowKey(r) {
				t.Fatalf("row %d: AppendRowKey %q != RowKey %q", r, buf, tb.RowKey(r))
			}
		}
	})
}
