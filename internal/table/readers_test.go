package table

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	in := "name,age,score\nana,34,8.5\nbob,29,7.25\ncarla,41,9\n"
	tb, err := ReadCSV(strings.NewReader(in), ReadCSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 || tb.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", tb.NumRows(), tb.NumCols())
	}
	if tb.Column(0).Kind != Nominal {
		t.Fatal("name should be nominal")
	}
	if tb.Column(1).Kind != Numeric || tb.Column(2).Kind != Numeric {
		t.Fatal("age/score should be numeric")
	}
	if tb.Float(1, 1) != 29 {
		t.Fatalf("age[1] = %v", tb.Float(1, 1))
	}
}

func TestReadCSVMissingTokens(t *testing.T) {
	in := "a,b\n1,x\n?,y\nNA,z\n4,null\n"
	tb, err := ReadCSV(strings.NewReader(in), ReadCSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Column(0).Kind != Numeric {
		t.Fatal("column a should be numeric despite ?/NA")
	}
	if !tb.IsMissing(1, 0) || !tb.IsMissing(2, 0) {
		t.Fatal("?/NA should be missing")
	}
	if !tb.IsMissing(3, 1) {
		t.Fatal("null should be missing in nominal column")
	}
}

func TestReadCSVNumericThreshold(t *testing.T) {
	// Half numbers, half words: should vote nominal at default threshold.
	in := "mix\n1\ntwo\n3\nfour\n"
	tb, err := ReadCSV(strings.NewReader(in), ReadCSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Column(0).Kind != Nominal {
		t.Fatal("mixed column should be nominal")
	}
}

func TestReadCSVThousandsAndPercent(t *testing.T) {
	in := "pop,rate\n\"1,234,567\",45%\n\"2,000\",12.5%\n"
	tb, err := ReadCSV(strings.NewReader(in), ReadCSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Float(0, 0) != 1234567 {
		t.Fatalf("thousands parse = %v", tb.Float(0, 0))
	}
	if math.Abs(tb.Float(0, 1)-0.45) > 1e-12 {
		t.Fatalf("percent parse = %v", tb.Float(0, 1))
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader("1,a\n2,b\n"), ReadCSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Column(0).Name != "c0" || tb.Column(1).Name != "c1" {
		t.Fatalf("names = %v", tb.ColumnNames())
	}
}

func TestReadCSVDuplicateHeaders(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader("x,x,x\n1,2,3\n"), ReadCSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	names := tb.ColumnNames()
	if names[0] != "x" || names[1] != "x_2" || names[2] != "x_3" {
		t.Fatalf("deduped names = %v", names)
	}
}

func TestReadCSVRaggedRows(t *testing.T) {
	tb, err := ReadCSV(strings.NewReader("a,b,c\n1,2\n3,4,5\n"), ReadCSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if !tb.IsMissing(0, 2) {
		t.Fatal("short row should pad missing")
	}
	if tb.Float(1, 2) != 5 {
		t.Fatal("full row misread")
	}
}

func TestReadCSVEmpty(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), ReadCSVOptions{}); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestWriteCSVRoundtrip(t *testing.T) {
	tb := makeSample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, ReadCSVOptions{HasHeader: true, Name: "people"})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tb, back) {
		t.Fatal("CSV roundtrip not equal")
	}
}

func TestReadXMLBasic(t *testing.T) {
	in := `<?xml version="1.0"?>
<rows>
  <row><name>ana</name><age>34</age></row>
  <row><name>bob</name><age>29</age><city>Berlin</city></row>
</rows>`
	tb, err := ReadXML(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// Fields sorted: age, city, name.
	if tb.ColumnIndex("age") < 0 || tb.ColumnIndex("city") < 0 || tb.ColumnIndex("name") < 0 {
		t.Fatalf("columns = %v", tb.ColumnNames())
	}
	if tb.ColumnByName("age").Kind != Numeric {
		t.Fatal("age should be numeric")
	}
	if !tb.IsMissing(0, tb.ColumnIndex("city")) {
		t.Fatal("row 0 city should be missing")
	}
}

func TestReadXMLNested(t *testing.T) {
	in := `<data>
  <rec><id>1</id><addr><city>Alicante</city><zip>03001</zip></addr></rec>
  <rec><id>2</id><addr><city>Matanzas</city><zip>40100</zip></addr></rec>
</data>`
	tb, err := ReadXML(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if tb.ColumnIndex("addr.city") < 0 {
		t.Fatalf("nested column missing: %v", tb.ColumnNames())
	}
	c := tb.ColumnByName("addr.city")
	if c.Label(c.Cats[1]) != "Matanzas" {
		t.Fatal("nested value wrong")
	}
}

func TestReadXMLNoRecords(t *testing.T) {
	if _, err := ReadXML(strings.NewReader("<empty></empty>"), "t"); err == nil {
		t.Fatal("record-less XML should error")
	}
}

func TestReadHTMLTableBasic(t *testing.T) {
	in := `<html><body><h1>Budget</h1>
<table class="data">
 <tr><th>Municipality</th><th>Budget</th></tr>
 <tr><td>Alicante</td><td>1200</td></tr>
 <tr><td>Matanzas</td><td>900</td></tr>
</table></body></html>`
	tb, err := ReadHTMLTable(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 || tb.NumCols() != 2 {
		t.Fatalf("shape = %dx%d", tb.NumRows(), tb.NumCols())
	}
	if tb.Column(1).Kind != Numeric || tb.Float(0, 1) != 1200 {
		t.Fatal("budget column wrong")
	}
}

func TestReadHTMLTableMessyMarkup(t *testing.T) {
	// Unclosed cells/rows, inline markup, entities.
	in := `<TABLE><tr><th>Name<th>Len
<tr><td><a href="#">R&amp;D </a><td>5
<tr><td>Ops<td>3</table>`
	tb, err := ReadHTMLTable(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tb.NumRows())
	}
	c := tb.Column(0)
	if c.Label(c.Cats[0]) != "R&D" {
		t.Fatalf("entity decode = %q", c.Label(c.Cats[0]))
	}
}

func TestReadHTMLNoTable(t *testing.T) {
	if _, err := ReadHTMLTable(strings.NewReader("<p>nothing</p>"), "t"); err == nil {
		t.Fatal("table-less HTML should error")
	}
}

func TestReadHTMLFirstTableOnly(t *testing.T) {
	in := `<table><tr><th>a</th></tr><tr><td>1</td></tr></table>
<table><tr><th>b</th></tr><tr><td>2</td></tr></table>`
	tb, err := ReadHTMLTable(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if tb.ColumnIndex("a") < 0 || tb.ColumnIndex("b") >= 0 {
		t.Fatalf("should read first table only, got %v", tb.ColumnNames())
	}
}

func TestIsMissingToken(t *testing.T) {
	for _, s := range []string{"", "?", "NA", " null ", "-"} {
		if !IsMissingToken(s) {
			t.Errorf("IsMissingToken(%q) = false", s)
		}
	}
	for _, s := range []string{"0", "x", "N A"} {
		if IsMissingToken(s) {
			t.Errorf("IsMissingToken(%q) = true", s)
		}
	}
}
