package table

import (
	"fmt"
	"math"
	"strings"
)

// Table is an in-memory columnar table: a named, ordered collection of
// equally long typed columns. It is the "common representation of data
// structures" every OpenBI stage works on once raw open data has been
// ingested.
type Table struct {
	Name   string
	cols   []*Column
	byName map[string]int
}

// New returns an empty table with the given name.
func New(name string) *Table {
	return &Table{Name: name, byName: make(map[string]int)}
}

// NumRows returns the number of rows (0 for a column-less table).
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// AddColumn appends col to the table. It returns an error when a column of
// the same name exists or when the length disagrees with existing columns.
func (t *Table) AddColumn(col *Column) error {
	if _, dup := t.byName[col.Name]; dup {
		return fmt.Errorf("table %q: duplicate column %q", t.Name, col.Name)
	}
	if len(t.cols) > 0 && col.Len() != t.NumRows() {
		return fmt.Errorf("table %q: column %q has %d rows, table has %d",
			t.Name, col.Name, col.Len(), t.NumRows())
	}
	t.byName[col.Name] = len(t.cols)
	t.cols = append(t.cols, col)
	return nil
}

// MustAddColumn is AddColumn that panics on error; intended for
// construction code whose column names are literals.
func (t *Table) MustAddColumn(col *Column) {
	if err := t.AddColumn(col); err != nil {
		panic(err)
	}
}

// Column returns the i-th column.
func (t *Table) Column(i int) *Column { return t.cols[i] }

// Columns returns the backing column slice (do not mutate its structure).
func (t *Table) Columns() []*Column { return t.cols }

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// ColumnByName returns the named column or nil.
func (t *Table) ColumnByName(name string) *Column {
	i := t.ColumnIndex(name)
	if i < 0 {
		return nil
	}
	return t.cols[i]
}

// ColumnNames returns the names of all columns in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.Name
	}
	return out
}

// Float returns the numeric value at (row, col); NaN when missing.
// It panics when the column is nominal.
func (t *Table) Float(row, col int) float64 {
	c := t.cols[col]
	if c.Kind != Numeric {
		panic(fmt.Sprintf("table %q: Float on nominal column %q", t.Name, c.Name))
	}
	return c.Nums[row]
}

// Cat returns the nominal code at (row, col); MissingCat when missing.
// It panics when the column is numeric.
func (t *Table) Cat(row, col int) int {
	c := t.cols[col]
	if c.Kind != Nominal {
		panic(fmt.Sprintf("table %q: Cat on numeric column %q", t.Name, c.Name))
	}
	return c.Cats[row]
}

// IsMissing reports whether the cell at (row, col) is missing.
func (t *Table) IsMissing(row, col int) bool { return t.cols[col].IsMissing(row) }

// SetFloat stores v at (row, col) of a numeric column.
func (t *Table) SetFloat(row, col int, v float64) { t.cols[col].Nums[row] = v }

// SetCat stores nominal code v at (row, col).
func (t *Table) SetCat(row, col int, v int) { t.cols[col].Cats[row] = v }

// SetMissing marks the cell at (row, col) missing.
func (t *Table) SetMissing(row, col int) { t.cols[col].SetMissing(row) }

// AppendEmptyRow appends one all-missing row and returns its index.
func (t *Table) AppendEmptyRow() int {
	for _, c := range t.cols {
		c.AppendMissing()
	}
	return t.NumRows() - 1
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := New(t.Name)
	for _, c := range t.cols {
		out.MustAddColumn(c.Clone())
	}
	return out
}

// SelectRows returns a new table containing the given rows in order.
// Row indices may repeat, which makes this the primitive behind sampling,
// duplication injection and stratified splits alike.
func (t *Table) SelectRows(rows []int) *Table {
	out := New(t.Name)
	for _, c := range t.cols {
		out.MustAddColumn(c.Select(rows))
	}
	return out
}

// SelectColumns returns a new table containing only the columns at the
// given indices (data shared is deep-copied).
func (t *Table) SelectColumns(cols []int) *Table {
	out := New(t.Name)
	for _, i := range cols {
		out.MustAddColumn(t.cols[i].Clone())
	}
	return out
}

// DropColumn returns a copy of the table without the named column; the
// receiver is unchanged. Unknown names are ignored.
func (t *Table) DropColumn(name string) *Table {
	out := New(t.Name)
	for _, c := range t.cols {
		if c.Name == name {
			continue
		}
		out.MustAddColumn(c.Clone())
	}
	return out
}

// AppendRows appends all rows of other, matching columns by name.
// Columns present in t but absent in other receive missing cells; nominal
// labels are re-interned so dictionaries need not agree.
func (t *Table) AppendRows(other *Table) error {
	for r := 0; r < other.NumRows(); r++ {
		t.AppendEmptyRow()
		last := t.NumRows() - 1
		for j, c := range t.cols {
			oj := other.ColumnIndex(c.Name)
			if oj < 0 || other.IsMissing(r, oj) {
				continue
			}
			oc := other.cols[oj]
			if oc.Kind != c.Kind {
				return fmt.Errorf("table %q: column %q kind mismatch on append", t.Name, c.Name)
			}
			if c.Kind == Numeric {
				t.SetFloat(last, j, oc.Nums[r])
			} else {
				t.SetCat(last, j, c.Code(oc.Label(oc.Cats[r])))
			}
		}
	}
	return nil
}

// RowString renders row r as comma-separated cell strings (for debugging
// and golden tests).
func (t *Table) RowString(r int) string {
	parts := make([]string, len(t.cols))
	for i, c := range t.cols {
		parts[i] = c.CellString(r)
	}
	return strings.Join(parts, ",")
}

// MissingCells returns the total number of missing cells in the table.
func (t *Table) MissingCells() int {
	n := 0
	for _, c := range t.cols {
		n += c.MissingCount()
	}
	return n
}

// NumericColumnIndices returns the indices of all numeric columns.
func (t *Table) NumericColumnIndices() []int {
	var out []int
	for i, c := range t.cols {
		if c.Kind == Numeric {
			out = append(out, i)
		}
	}
	return out
}

// NominalColumnIndices returns the indices of all nominal columns.
func (t *Table) NominalColumnIndices() []int {
	var out []int
	for i, c := range t.cols {
		if c.Kind == Nominal {
			out = append(out, i)
		}
	}
	return out
}

// RowKey returns a canonical string for row r used by duplicate detection:
// cell renderings joined by unit separators. Numeric cells are rounded to
// 9 significant digits so that float noise below that threshold still keys
// identically.
func (t *Table) RowKey(r int) string {
	var b strings.Builder
	for i, c := range t.cols {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		if c.IsMissing(r) {
			b.WriteByte('?')
			continue
		}
		if c.Kind == Numeric {
			fmt.Fprintf(&b, "%.9g", c.Nums[r])
		} else {
			b.WriteString(c.Label(c.Cats[r]))
		}
	}
	return b.String()
}

// Equal reports whether two tables have identical schema and cell values
// (NaN cells compare equal to NaN cells). It is intended for tests.
func Equal(a, b *Table) bool {
	if a.NumCols() != b.NumCols() || a.NumRows() != b.NumRows() {
		return false
	}
	for j := 0; j < a.NumCols(); j++ {
		ca, cb := a.cols[j], b.cols[j]
		if ca.Name != cb.Name || ca.Kind != cb.Kind {
			return false
		}
		for r := 0; r < a.NumRows(); r++ {
			switch {
			case ca.IsMissing(r) != cb.IsMissing(r):
				return false
			case ca.IsMissing(r):
				// both missing: equal
			case ca.Kind == Numeric:
				if ca.Nums[r] != cb.Nums[r] && !(math.IsNaN(ca.Nums[r]) && math.IsNaN(cb.Nums[r])) {
					return false
				}
			default:
				if ca.Label(ca.Cats[r]) != cb.Label(cb.Cats[r]) {
					return false
				}
			}
		}
	}
	return true
}
