package table

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Table is an in-memory columnar table: a named, ordered collection of
// equally long typed columns. It is the "common representation of data
// structures" every OpenBI stage works on once raw open data has been
// ingested.
type Table struct {
	Name   string
	cols   []*Column
	byName map[string]int

	// shared marks columns whose storage is still shared with another
	// table (see ShallowClone); such a column is cloned on first write.
	// nil for fully owned tables, which is the common case.
	shared []bool
}

// New returns an empty table with the given name.
func New(name string) *Table {
	return &Table{Name: name, byName: make(map[string]int)}
}

// NumRows returns the number of rows (0 for a column-less table).
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// AddColumn appends col to the table. It returns an error when a column of
// the same name exists or when the length disagrees with existing columns.
func (t *Table) AddColumn(col *Column) error {
	if _, dup := t.byName[col.Name]; dup {
		return fmt.Errorf("table %q: duplicate column %q", t.Name, col.Name)
	}
	if len(t.cols) > 0 && col.Len() != t.NumRows() {
		return fmt.Errorf("table %q: column %q has %d rows, table has %d",
			t.Name, col.Name, col.Len(), t.NumRows())
	}
	t.byName[col.Name] = len(t.cols)
	t.cols = append(t.cols, col)
	if t.shared != nil {
		t.shared = append(t.shared, false)
	}
	return nil
}

// MustAddColumn is AddColumn that panics on error; intended for
// construction code whose column names are literals.
func (t *Table) MustAddColumn(col *Column) {
	if err := t.AddColumn(col); err != nil {
		panic(err)
	}
}

// Column returns the i-th column.
func (t *Table) Column(i int) *Column { return t.cols[i] }

// Columns returns the backing column slice (do not mutate its structure).
func (t *Table) Columns() []*Column { return t.cols }

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// ColumnByName returns the named column or nil.
func (t *Table) ColumnByName(name string) *Column {
	i := t.ColumnIndex(name)
	if i < 0 {
		return nil
	}
	return t.cols[i]
}

// ColumnNames returns the names of all columns in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.Name
	}
	return out
}

// ColumnName returns the name of column col (Access).
func (t *Table) ColumnName(col int) string { return t.cols[col].Name }

// ColumnKind returns the kind of column col (Access).
func (t *Table) ColumnKind(col int) Kind { return t.cols[col].Kind }

// NumLevels returns the nominal dictionary size of column col (Access).
func (t *Table) NumLevels(col int) int { return t.cols[col].NumLevels() }

// Label returns the label of a nominal code in column col (Access).
func (t *Table) Label(col, code int) string { return t.cols[col].Label(code) }

// Materialize implements Access; a table already is materialized, so it
// returns the receiver. Callers that intend to mutate the result must take
// ownership first (Clone or CopyOnWrite).
func (t *Table) Materialize() *Table { return t }

// Float returns the numeric value at (row, col); NaN when missing.
// It panics when the column is nominal.
func (t *Table) Float(row, col int) float64 {
	c := t.cols[col]
	if c.Kind != Numeric {
		panic(fmt.Sprintf("table %q: Float on nominal column %q", t.Name, c.Name))
	}
	return c.Nums[row]
}

// Cat returns the nominal code at (row, col); MissingCat when missing.
// It panics when the column is numeric.
func (t *Table) Cat(row, col int) int {
	c := t.cols[col]
	if c.Kind != Nominal {
		panic(fmt.Sprintf("table %q: Cat on numeric column %q", t.Name, c.Name))
	}
	return c.Cats[row]
}

// IsMissing reports whether the cell at (row, col) is missing.
func (t *Table) IsMissing(row, col int) bool { return t.cols[col].IsMissing(row) }

// SetFloat stores v at (row, col) of a numeric column.
func (t *Table) SetFloat(row, col int, v float64) { t.OwnedColumn(col).Nums[row] = v }

// SetCat stores nominal code v at (row, col).
func (t *Table) SetCat(row, col int, v int) { t.OwnedColumn(col).Cats[row] = v }

// SetMissing marks the cell at (row, col) missing.
func (t *Table) SetMissing(row, col int) { t.OwnedColumn(col).SetMissing(row) }

// AppendEmptyRow appends one all-missing row and returns its index.
func (t *Table) AppendEmptyRow() int {
	for i := range t.cols {
		t.OwnedColumn(i).AppendMissing()
	}
	return t.NumRows() - 1
}

// ShallowClone returns a new table sharing every column with t. Shared
// columns are cloned lazily on first write (through the Set* mutators or
// OwnedColumn), so a pipeline stage that touches two of fifty columns pays
// for two column copies instead of fifty. The receiver itself is never
// written through the clone.
//
// The sharing is one-directional by design: the receiver is NOT marked
// shared (many goroutines shallow-clone one base table concurrently, so
// the receiver must stay read-only here), which means callers must not
// mutate the base after handing out clones — doing so would reach every
// clone's untouched columns. The experiment pipeline treats reference
// tables as immutable once views or clones of them exist.
func (t *Table) ShallowClone() *Table {
	out := &Table{
		Name:   t.Name,
		cols:   append([]*Column(nil), t.cols...),
		byName: make(map[string]int, len(t.byName)),
		shared: make([]bool, len(t.cols)),
	}
	for name, i := range t.byName {
		out.byName[name] = i
	}
	for i := range out.shared {
		out.shared[i] = true
	}
	return out
}

// OwnedColumn returns column i, first cloning it if its storage is still
// shared with another table. Every code path that mutates column data in
// place must obtain the column through this method (the Table-level Set*
// mutators already do).
func (t *Table) OwnedColumn(i int) *Column {
	if i < len(t.shared) && t.shared[i] {
		t.cols[i] = t.cols[i].Clone()
		t.shared[i] = false
	}
	return t.cols[i]
}

// ReplaceColumn swaps column i for col, which must have the same length;
// the byName index is updated when the name changes. The new column is
// owned by the table.
func (t *Table) ReplaceColumn(i int, col *Column) error {
	if i < 0 || i >= len(t.cols) {
		return fmt.Errorf("table %q: ReplaceColumn index %d out of range", t.Name, i)
	}
	if col.Len() != t.NumRows() {
		return fmt.Errorf("table %q: column %q has %d rows, table has %d",
			t.Name, col.Name, col.Len(), t.NumRows())
	}
	old := t.cols[i]
	if old.Name != col.Name {
		if j, dup := t.byName[col.Name]; dup && j != i {
			return fmt.Errorf("table %q: duplicate column %q", t.Name, col.Name)
		}
		delete(t.byName, old.Name)
		t.byName[col.Name] = i
	}
	t.cols[i] = col
	if t.shared != nil {
		t.shared[i] = false
	}
	return nil
}

// Clone returns a deep copy of the table: every column's cell storage and
// nominal dictionary is copied, so the result is fully owned and mutations
// never reach the receiver. For read-only row/column windows prefer the
// zero-copy View (RowView, ColumnView).
func (t *Table) Clone() *Table {
	out := New(t.Name)
	for _, c := range t.cols {
		out.MustAddColumn(c.Clone())
	}
	return out
}

// SelectRows returns a new table containing the given rows in order, with
// all cell data copied (row indices may repeat). It is the materializing
// primitive behind duplication injection and row filtering; callers that
// only need to read a row subset — fold splits, subsamples — should use the
// zero-copy RowView instead.
func (t *Table) SelectRows(rows []int) *Table {
	out := New(t.Name)
	for _, c := range t.cols {
		out.MustAddColumn(c.Select(rows))
	}
	return out
}

// SelectColumns returns a new table containing only the columns at the
// given indices, with cell data and dictionaries deep-copied so the result
// is independently mutable. For read-only projections use the zero-copy
// ColumnView instead.
func (t *Table) SelectColumns(cols []int) *Table {
	out := New(t.Name)
	for _, i := range cols {
		out.MustAddColumn(t.cols[i].Clone())
	}
	return out
}

// DropColumn returns a deep copy of the table without the named column;
// the receiver is unchanged. Unknown names are ignored.
func (t *Table) DropColumn(name string) *Table {
	out := New(t.Name)
	for _, c := range t.cols {
		if c.Name == name {
			continue
		}
		out.MustAddColumn(c.Clone())
	}
	return out
}

// AppendRows appends all rows of other, matching columns by name.
// Columns present in t but absent in other receive missing cells; nominal
// labels are re-interned so dictionaries need not agree.
func (t *Table) AppendRows(other *Table) error {
	for r := 0; r < other.NumRows(); r++ {
		t.AppendEmptyRow()
		last := t.NumRows() - 1
		for j, c := range t.cols {
			oj := other.ColumnIndex(c.Name)
			if oj < 0 || other.IsMissing(r, oj) {
				continue
			}
			oc := other.cols[oj]
			if oc.Kind != c.Kind {
				return fmt.Errorf("table %q: column %q kind mismatch on append", t.Name, c.Name)
			}
			if c.Kind == Numeric {
				t.SetFloat(last, j, oc.Nums[r])
			} else {
				t.SetCat(last, j, c.Code(oc.Label(oc.Cats[r])))
			}
		}
	}
	return nil
}

// RowString renders row r as comma-separated cell strings (for debugging
// and golden tests).
func (t *Table) RowString(r int) string {
	parts := make([]string, len(t.cols))
	for i, c := range t.cols {
		parts[i] = c.CellString(r)
	}
	return strings.Join(parts, ",")
}

// MissingCells returns the total number of missing cells in the table.
func (t *Table) MissingCells() int {
	n := 0
	for _, c := range t.cols {
		n += c.MissingCount()
	}
	return n
}

// NumericColumnIndices returns the indices of all numeric columns.
func (t *Table) NumericColumnIndices() []int {
	var out []int
	for i, c := range t.cols {
		if c.Kind == Numeric {
			out = append(out, i)
		}
	}
	return out
}

// NominalColumnIndices returns the indices of all nominal columns.
func (t *Table) NominalColumnIndices() []int {
	var out []int
	for i, c := range t.cols {
		if c.Kind == Nominal {
			out = append(out, i)
		}
	}
	return out
}

// Cell tags for AppendRowKey's typed encoding. Missing gets its own tag so
// it can never collide with a real value of either kind.
const (
	rowKeyMissing = 0x00
	rowKeyNumeric = 0x01
	rowKeyNominal = 0x02
)

// RowKey returns a canonical string for row r used by duplicate detection.
// Cells are encoded as typed (kind, value) tuples — nominal cells by
// dictionary code, numeric cells rounded to 9 significant digits so that
// float noise below that threshold still keys identically, missing cells
// by a dedicated tag — so a label that happens to be "?" never collides
// with a missing cell and labels may contain arbitrary bytes. Keys are
// only comparable between rows of the same table (codes are per-table
// dictionary state).
func (t *Table) RowKey(r int) string {
	return string(t.AppendRowKey(make([]byte, 0, 16*len(t.cols)), r))
}

// AppendRowKey appends row r's canonical key (see RowKey) to dst and
// returns the extended slice. Hot callers reuse one buffer across rows and
// look keys up with string(buf), so the per-row key costs no allocation.
func (t *Table) AppendRowKey(dst []byte, r int) []byte {
	for _, c := range t.cols {
		if c.IsMissing(r) {
			dst = append(dst, rowKeyMissing)
			continue
		}
		if c.Kind == Numeric {
			// The decimal rendering is self-delimiting: 'g'-format bytes
			// never include control characters, so the next cell's tag
			// (0x00-0x02) cannot be read as part of the number.
			dst = append(dst, rowKeyNumeric)
			dst = strconv.AppendFloat(dst, c.Nums[r], 'g', 9, 64)
		} else {
			dst = append(dst, rowKeyNominal)
			dst = binary.AppendUvarint(dst, uint64(c.Cats[r]))
		}
	}
	return dst
}

// Equal reports whether two sources have identical schema and cell values
// (NaN cells compare equal to NaN cells; nominal cells compare by label,
// so dictionaries need not agree code-for-code). It accepts any mix of
// tables and views and is intended for tests.
func Equal(a, b Access) bool {
	if a.NumCols() != b.NumCols() || a.NumRows() != b.NumRows() {
		return false
	}
	for j := 0; j < a.NumCols(); j++ {
		if a.ColumnName(j) != b.ColumnName(j) || a.ColumnKind(j) != b.ColumnKind(j) {
			return false
		}
		for r := 0; r < a.NumRows(); r++ {
			switch {
			case a.IsMissing(r, j) != b.IsMissing(r, j):
				return false
			case a.IsMissing(r, j):
				// both missing: equal
			case a.ColumnKind(j) == Numeric:
				va, vb := a.Float(r, j), b.Float(r, j)
				if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
					return false
				}
			default:
				if a.Label(j, a.Cat(r, j)) != b.Label(j, b.Cat(r, j)) {
					return false
				}
			}
		}
	}
	return true
}
