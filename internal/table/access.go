package table

// Access is the read-only table contract shared by *Table and *View. The
// mining, eval and experiment layers are written against it, so a fold
// split or attribute projection can be served by a zero-copy view while
// ingestion and injection keep producing concrete tables.
//
// Cell accessors follow Table semantics exactly: Float panics on a nominal
// column, Cat panics on a numeric one, and missing cells read as NaN /
// MissingCat. Implementations are safe for concurrent readers as long as
// nobody mutates the backing table.
type Access interface {
	NumRows() int
	NumCols() int

	// Column metadata.
	ColumnIndex(name string) int
	ColumnName(col int) string
	ColumnKind(col int) Kind
	ColumnNames() []string
	NumericColumnIndices() []int
	NominalColumnIndices() []int
	NumLevels(col int) int
	Label(col, code int) string

	// Cell reads.
	Float(row, col int) float64
	Cat(row, col int) int
	IsMissing(row, col int) bool

	// Materialize returns a concrete *Table with the same contents. A
	// *Table returns itself (zero cost); a *View gathers its cells into a
	// freshly owned table. Callers that intend to mutate the result must
	// take ownership first (Clone or CopyOnWrite).
	Materialize() *Table
}

// Floats returns the numeric cell values of column col of a. For a concrete
// *Table — or a view without row indirection — this is the live backing
// slice: callers must treat it as read-only (the Cursor aliasing contract).
// For a row-indirected view the cells are gathered through the indirection
// into a fresh slice. Either way the result matches what Materialize()
// would expose, so statistics computed from it are identical between the
// view-backed and copying pipelines.
func Floats(a Access, col int) []float64 {
	cur := NewCursor(a)
	nums, rows := cur.NumsSpan(col)
	if rows == nil {
		return nums
	}
	out := make([]float64, len(rows))
	for i, br := range rows {
		out[i] = nums[br]
	}
	return out
}

// MaterializeColumn extracts column col of a as a freshly owned *Column
// (dictionary included for nominal columns).
func MaterializeColumn(a Access, col int) *Column {
	if t, ok := a.(*Table); ok {
		return t.cols[col].Clone()
	}
	if v, ok := a.(*View); ok {
		c := v.base.cols[v.baseCol(col)]
		if v.rows == nil {
			return c.Clone()
		}
		return c.Select(v.rows)
	}
	return a.Materialize().cols[col]
}

// CopyOnWrite returns a mutable *Table over the contents of a that clones
// column storage lazily: for a concrete *Table the result shares every
// column until it is first written (see Table.OwnedColumn), so mutators
// that touch few columns pay for few columns. Views have no safe way to
// share storage under row indirection, so they materialize fully.
func CopyOnWrite(a Access) *Table {
	if t, ok := a.(*Table); ok {
		return t.ShallowClone()
	}
	return a.Materialize()
}
