package mining

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"strings"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// SplitCriterion selects the impurity function of a decision tree.
type SplitCriterion int

const (
	// GainRatio is C4.5's normalized information gain.
	GainRatio SplitCriterion = iota
	// Gini is CART's Gini impurity decrease.
	Gini
)

// String names the criterion.
func (s SplitCriterion) String() string {
	if s == Gini {
		return "gini"
	}
	return "gain-ratio"
}

// DecisionTree is a top-down induced decision tree supporting numeric
// (binary threshold) and nominal (multiway) splits, missing-value routing
// to the majority branch, and C4.5-style pessimistic-error pruning.
//
// With Criterion GainRatio it plays the role of C4.5, with Gini the role
// of CART; the ablation benches compare both. Trees embed the paper's
// robustness story: they shrug off irrelevant attributes (a bad attribute
// is simply never split on) but overfit label noise unless pruned — the
// Phase-1 grid and the pruning ablation quantify exactly that.
type DecisionTree struct {
	// Criterion is the split quality measure (default GainRatio).
	Criterion SplitCriterion
	// MaxDepth bounds tree depth (default 25).
	MaxDepth int
	// MinLeaf is the minimum instances per leaf (default 2).
	MinLeaf int
	// Prune enables pessimistic-error subtree collapsing (default set by
	// the constructors).
	Prune bool
	// CF is the pruning confidence factor z-score (default 0.69 ≈ C4.5's
	// 25% confidence).
	CF float64
	// FeatureSample, when positive, evaluates only a random subset of
	// that many attributes per node — the randomization hook used by
	// RandomForest. 0 means all attributes.
	FeatureSample int
	// Seed drives feature sampling (unused when FeatureSample is 0).
	Seed int64

	root     *treeNode
	classes  int
	fallback int
	rng      *rand.Rand
	arena    *Arena

	// Scratch buffers reused across split evaluations. Numeric threshold
	// search runs once per (node × attribute × candidate) and dominated
	// the whole experiment grid's allocation profile before these were
	// hoisted; the arithmetic is unchanged (class counts are small exact
	// integers in float64, so reuse cannot perturb results).
	obsBuf   []valClass
	leftBuf  []float64
	sumBuf   []float64
	totalBuf []float64

	// candBuf collects the node's scored split plans; nomFlat/nomCounts
	// back the nominal level × class count matrix. Both are consumed
	// before build recurses, so one buffer serves the whole tree.
	candBuf   []splitCand
	nomFlat   []float64
	nomCounts [][]float64

	// nodeCount is the membership filter for the presorted split-search
	// walk: instances per base row of the current node (counts, not bits,
	// because bootstrap resamples repeat rows). build fills it once per
	// node before scoring candidate attributes and clears it right after,
	// so the buffer stays all-zero between nodes.
	nodeCount []int32
}

// valClass pairs one observed numeric cell with its row's class code.
type valClass struct {
	v float64
	c int
}

// splitPlan is the value-typed description of one usable split: everything
// needed to materialize the partition later. Evaluation used to return a
// materializing closure per (node × attribute) candidate; the closure and
// its captured context allocated on every candidate even though only the
// winner ever ran. A plan is copied by value instead.
type splitPlan struct {
	attr      int
	numeric   bool
	threshold float64 // numeric: <= threshold goes left
	biggest   int     // nominal: level missing values follow
	levels    int     // nominal: partition arity
}

// splitCand is a scored plan awaiting arbitration in build.
type splitCand struct {
	gain  float64
	score float64
	plan  splitPlan
}

// UseArena implements ArenaUser: scratch buffers and per-node class
// distributions are drawn from a when non-nil. The fitted tree then aliases
// arena memory and must be fully consumed before the arena is Reset.
func (dt *DecisionTree) UseArena(a *Arena) { dt.arena = a }

// NewC45Tree returns a pruned gain-ratio tree (the C4.5 stand-in).
func NewC45Tree() *DecisionTree {
	return &DecisionTree{Criterion: GainRatio, Prune: true}
}

// NewCARTTree returns a pruned Gini tree (the CART stand-in).
func NewCARTTree() *DecisionTree {
	return &DecisionTree{Criterion: Gini, Prune: true}
}

// Name implements Classifier.
func (dt *DecisionTree) Name() string {
	if dt.Criterion == Gini {
		return "cart"
	}
	return "c45"
}

type treeNode struct {
	// Leaf fields.
	leaf  bool
	class int
	dist  []float64 // training class distribution at the node

	// Split fields.
	attr      int
	numeric   bool
	threshold float64     // numeric split: <= threshold goes left
	children  []*treeNode // numeric: [left, right]; nominal: one per level
	majority  int         // child index that missing/unseen values follow

	n    float64 // training instances reaching the node
	errs float64 // training errors if this node were a leaf
}

// Fit induces the tree on ds.
func (dt *DecisionTree) Fit(ds *Dataset) error {
	rows := ds.LabeledRows()
	if len(rows) == 0 {
		return fmt.Errorf("%s: no labeled instances", dt.Name())
	}
	if dt.MaxDepth <= 0 {
		dt.MaxDepth = 25
	}
	if dt.MinLeaf <= 0 {
		dt.MinLeaf = 2
	}
	if dt.CF == 0 {
		dt.CF = 0.69
	}
	dt.classes = ds.NumClasses()
	dt.fallback = ds.MajorityClass()
	dt.rng = nil // lazily seeded in candidateAttrs; only FeatureSample needs it
	ds.Index()   // presort numeric attributes once; all nodes share the order
	dt.leftBuf = dt.arena.F64(dt.classes)
	dt.sumBuf = dt.arena.F64(dt.classes)
	dt.totalBuf = dt.arena.F64(dt.classes)
	dt.root = dt.build(ds, rows, 0)
	if dt.Prune {
		dt.prune(dt.root)
	}
	return nil
}

// build grows the subtree over the given rows.
func (dt *DecisionTree) build(ds *Dataset, rows []int, depth int) *treeNode {
	dist := dt.arena.F64(dt.classes)
	for _, r := range rows {
		dist[ds.Label(r)]++
	}
	node := dt.arena.Node()
	node.dist = dist
	node.class = argmax(dist)
	node.n = float64(len(rows))
	node.errs = node.n - dist[node.class]

	if depth >= dt.MaxDepth || len(rows) < 2*dt.MinLeaf || isPure(dist) {
		node.leaf = true
		return node
	}

	attrs := dt.candidateAttrs(ds)
	// The walk's membership counts are a node property, not an attribute
	// property: fill them once before scoring candidates, clear right
	// after (before recursing — children refill the shared buffer).
	walk := ds.indexed()
	if walk {
		nBase := ds.baseRows()
		if cap(dt.nodeCount) < nBase {
			dt.nodeCount = dt.arena.I32(nBase)
		}
		count := dt.nodeCount[:nBase]
		for _, r := range rows {
			count[ds.row(r)]++
		}
	}
	cands := dt.candBuf[:0]
	for _, j := range attrs {
		gain, score, plan, ok := dt.evaluateSplit(ds, rows, j)
		if ok && gain > 1e-12 {
			cands = append(cands, splitCand{gain, score, plan})
		}
	}
	// Selection below works on plan values only, so recursion may reuse
	// the buffer.
	dt.candBuf = cands
	if walk {
		count := dt.nodeCount[:ds.baseRows()]
		for _, r := range rows {
			count[ds.row(r)] = 0
		}
	}
	if len(cands) == 0 {
		node.leaf = true
		return node
	}
	// C4.5's average-gain constraint: gain ratio inflates for splits with
	// tiny split info (it rewards peeling off a couple of rows, producing
	// degenerate chain trees), so the ratio only arbitrates between
	// attributes whose raw gain is at least the average candidate gain.
	// For Gini the score is the impurity decrease itself and needs no guard.
	eligible := cands
	if dt.Criterion == GainRatio {
		avg := 0.0
		for _, c := range cands {
			avg += c.gain
		}
		avg /= float64(len(cands))
		eligible = eligible[:0]
		for _, c := range cands {
			if c.gain >= avg-1e-12 {
				eligible = append(eligible, c)
			}
		}
	}
	var best splitPlan
	found := false
	bestScore := 0.0
	for _, c := range eligible {
		if c.score > bestScore+1e-12 {
			bestScore = c.score
			best = c.plan
			found = true
		}
	}
	if !found {
		node.leaf = true
		return node
	}
	var parts [][]int
	if best.numeric {
		parts = dt.applyNumeric(ds, rows, best)
	} else {
		parts = dt.applyNominal(ds, rows, best)
	}
	node.attr = best.attr
	node.numeric = best.numeric
	node.threshold = best.threshold

	node.children = dt.arena.Nodes(len(parts))
	biggest, biggestIdx := -1, 0
	for i, part := range parts {
		if len(part) > biggest {
			biggest = len(part)
			biggestIdx = i
		}
	}
	node.majority = biggestIdx
	for i, part := range parts {
		if len(part) == 0 {
			// Empty branch: predict the parent majority.
			child := dt.arena.Node()
			child.leaf = true
			child.class = node.class
			child.dist = dist
			node.children[i] = child
			continue
		}
		node.children[i] = dt.build(ds, part, depth+1)
	}
	return node
}

// candidateAttrs returns the attribute columns considered at a node,
// honouring FeatureSample.
func (dt *DecisionTree) candidateAttrs(ds *Dataset) []int {
	all := ds.AttrCols()
	if dt.FeatureSample <= 0 || dt.FeatureSample >= len(all) {
		return all
	}
	if dt.rng == nil {
		// Seeding a math/rand source costs more than evaluating a small
		// node's splits, so trees that never sample features (c45, cart)
		// must not pay for it; the sampling sequence is unchanged.
		dt.rng = dt.arena.Rand(dt.Seed)
	}
	idx := stats.SampleWithoutReplacement(dt.rng, len(all), dt.FeatureSample)
	out := make([]int, len(idx))
	for i, v := range idx {
		out[i] = all[v]
	}
	sort.Ints(out)
	return out
}

// evaluateSplit scores the best split on attribute j over rows. It returns
// the raw information gain (or Gini decrease), the criterion score used to
// arbitrate between attributes, and the plan materializing the partition;
// ok is false when there is no usable split.
func (dt *DecisionTree) evaluateSplit(ds *Dataset, rows []int, j int) (gain, score float64, plan splitPlan, ok bool) {
	if ds.T.ColumnKind(j) == table.Nominal {
		return dt.evaluateNominal(ds, rows, j)
	}
	return dt.evaluateNumeric(ds, rows, j)
}

func (dt *DecisionTree) evaluateNominal(ds *Dataset, rows []int, j int) (float64, float64, splitPlan, bool) {
	col := ds.col(j)
	levels := col.NumLevels()
	if levels < 2 {
		return 0, 0, splitPlan{}, false
	}
	// counts[level][class], sliced out of one reused flat buffer; missing
	// rows excluded from the quality measure (they follow the majority
	// branch at predict time).
	if cap(dt.nomFlat) < levels*dt.classes {
		dt.nomFlat = make([]float64, levels*dt.classes)
	}
	flat := dt.nomFlat[:levels*dt.classes]
	for i := range flat {
		flat[i] = 0
	}
	if cap(dt.nomCounts) < levels {
		dt.nomCounts = make([][]float64, levels)
	}
	counts := dt.nomCounts[:levels]
	for i := range counts {
		counts[i] = flat[i*dt.classes : (i+1)*dt.classes]
	}
	observed := 0
	for _, r := range rows {
		br := ds.row(r)
		if col.IsMissing(br) {
			continue
		}
		counts[col.Cats[br]][ds.Label(r)]++
		observed++
	}
	if observed < 2*dt.MinLeaf {
		return 0, 0, splitPlan{}, false
	}
	nonEmpty := 0
	for _, c := range counts {
		if sum(c) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return 0, 0, splitPlan{}, false
	}
	gain, score := dt.partitionQuality(counts, float64(observed))
	if score <= 0 {
		return 0, 0, splitPlan{}, false
	}
	// The branch missing values follow is a function of the counts just
	// taken, so resolve it now rather than at materialization time.
	biggest := 0
	for lvl := range counts {
		if sum(counts[lvl]) > sum(counts[biggest]) {
			biggest = lvl
		}
	}
	return gain, score, splitPlan{attr: j, biggest: biggest, levels: levels}, true
}

// applyNominal materializes a nominal plan's partition: one part per
// level, missing cells routed to the biggest level.
func (dt *DecisionTree) applyNominal(ds *Dataset, rows []int, plan splitPlan) [][]int {
	col := ds.col(plan.attr)
	parts := make([][]int, plan.levels)
	// Size each level first so the arena buffers are exact (empty levels
	// keep a nil part, as before).
	sizes := dt.arena.Ints(plan.levels)
	for _, r := range rows {
		lvl := col.Cats[ds.row(r)]
		if lvl == table.MissingCat {
			lvl = plan.biggest
		}
		sizes[lvl]++
	}
	for lvl, sz := range sizes {
		if sz > 0 {
			parts[lvl] = dt.arena.IntsRaw(sz)[:0]
		}
	}
	for _, r := range rows {
		lvl := col.Cats[ds.row(r)]
		if lvl == table.MissingCat {
			lvl = plan.biggest
		}
		parts[lvl] = append(parts[lvl], r)
	}
	return parts
}

func (dt *DecisionTree) evaluateNumeric(ds *Dataset, rows []int, j int) (float64, float64, splitPlan, bool) {
	col := ds.col(j)
	if cap(dt.obsBuf) < len(rows) {
		dt.obsBuf = make([]valClass, 0, len(rows))
	}
	obs := dt.obsBuf[:0]
	// Two ways to obtain the node's observations in ascending value order,
	// chosen by cost. The presorted walk scans the whole shared column
	// order filtering by node membership — O(base rows), unbeatable for
	// large nodes; small deep nodes gather and sort their few rows
	// instead. Both orders group equal values identically, and the
	// threshold scan below only acts at value boundaries over exact
	// integer class counts, so the chosen split — and the induced tree —
	// is the same whichever path ran (see TestTreePresortedSplitSearch).
	// Class totals accumulate during the gather itself (they are exact
	// small-integer adds, so accumulation order cannot change a bit).
	total := dt.sumBuf
	for i := range total {
		total[i] = 0
	}
	order := ds.indexOrder(j)
	nRows := float64(len(rows))
	// The 4x bias reflects that one walk step (a counter test) is far
	// cheaper than one comparator call in the sort path.
	if order != nil && 4*nRows*math.Log2(nRows+1) >= float64(len(order)) {
		// build already filled nodeCount for this node.
		count := dt.nodeCount[:col.Len()]
		cls := ds.col(ds.ClassCol)
		for _, br := range order {
			if c := count[br]; c > 0 {
				o := valClass{col.Nums[br], cls.Cats[br]}
				total[o.c] += float64(c)
				for ; c > 0; c-- {
					obs = append(obs, o)
				}
			}
		}
		if len(obs) < 2*dt.MinLeaf {
			return 0, 0, splitPlan{}, false
		}
	} else {
		for _, r := range rows {
			if br := ds.row(r); !col.IsMissing(br) {
				o := valClass{col.Nums[br], ds.Label(r)}
				total[o.c]++
				obs = append(obs, o)
			}
		}
		if len(obs) < 2*dt.MinLeaf {
			return 0, 0, splitPlan{}, false
		}
		// slices.SortFunc rather than sort.Slice: same pdqsort, no per-call
		// reflection allocations. Rows with equal values may land in either
		// order; the threshold scan only acts at value boundaries, so the
		// chosen split is unaffected.
		slices.SortFunc(obs, func(a, b valClass) int {
			switch {
			case a.v < b.v:
				return -1
			case a.v > b.v:
				return 1
			default:
				return 0
			}
		})
	}

	left := dt.leftBuf
	for i := range left {
		left[i] = 0
	}
	n := float64(len(obs))

	// The parent impurity is the same at every boundary; hoist it out of
	// the threshold scan. The per-boundary arithmetic below replicates
	// partitionQuality term for term in the same accumulation order (and
	// neither branch can be empty past the MinLeaf guard), so scores —
	// and the chosen split — are bit-identical to calling it.
	var parentGini, parentH float64
	if dt.Criterion == Gini {
		parentGini = giniOf(total)
	} else {
		parentH = entropyOf(total)
	}

	// The threshold itself is chosen by raw gain (C4.5's rule for
	// continuous attributes), not by gain ratio — ratio-based threshold
	// selection degenerates into peeling extreme values.
	bestGain, bestThreshold := 0.0, math.NaN()
	var bestScore float64
	candidates := 0
	for i := 0; i < len(obs)-1; i++ {
		left[obs[i].c]++
		if obs[i].v == obs[i+1].v {
			continue
		}
		candidates++
		nl := float64(i + 1)
		if nl < float64(dt.MinLeaf) || n-nl < float64(dt.MinLeaf) {
			continue
		}
		// nl and n-nl are exact small integers in float64, so they equal
		// the float sums over the branch count vectors bit for bit. Both
		// branch impurities accumulate in one pass over the class counts —
		// independent accumulators visiting classes in the same order as
		// the two separate giniWith/entropyWith passes they replace, with
		// the right branch's counts derived on the fly instead of written
		// to a scratch vector first.
		nr := n - nl
		var gain, score float64
		if dt.Criterion == Gini {
			gl, gr := 1.0, 1.0
			for c, lv := range left {
				pl := lv / nl
				gl -= pl * pl
				pr := (total[c] - lv) / nr
				gr -= pr * pr
			}
			childGini := 0.0
			childGini += nl / n * gl
			childGini += nr / n * gr
			gain = parentGini - childGini
			score = gain
		} else {
			hl, hr := 0.0, 0.0
			for c, lv := range left {
				if lv != 0 {
					p := lv / nl
					hl -= p * math.Log2(p)
				}
				if rv := total[c] - lv; rv != 0 {
					p := rv / nr
					hr -= p * math.Log2(p)
				}
			}
			childH, splitH := 0.0, 0.0
			p := nl / n
			childH += p * hl
			splitH -= p * math.Log2(p)
			p = nr / n
			childH += p * hr
			splitH -= p * math.Log2(p)
			gain = parentH - childH
			if gain <= 1e-12 || splitH <= 1e-12 {
				gain, score = 0, 0
			} else {
				score = gain / splitH
			}
		}
		if gain > bestGain+1e-12 {
			bestGain = gain
			bestScore = score
			bestThreshold = (obs[i].v + obs[i+1].v) / 2
		}
	}
	if math.IsNaN(bestThreshold) {
		return 0, 0, splitPlan{}, false
	}
	if dt.Criterion == GainRatio && candidates > 1 {
		// C4.5's MDL correction: the many evaluated thresholds must pay
		// for themselves, log2(candidates)/n bits' worth.
		bestGain -= math.Log2(float64(candidates)) / n
		if bestGain <= 1e-12 {
			return 0, 0, splitPlan{}, false
		}
	}
	return bestGain, bestScore, splitPlan{attr: j, numeric: true, threshold: bestThreshold}, true
}

// applyNumeric materializes a numeric plan's partition: a sizing pass
// counts the non-missing sides, missing cells follow the bigger one.
func (dt *DecisionTree) applyNumeric(ds *Dataset, rows []int, plan splitPlan) [][]int {
	col := ds.col(plan.attr)
	threshold := plan.threshold
	parts := make([][]int, 2)
	nl, nr := 0, 0
	for _, r := range rows {
		br := ds.row(r)
		if col.IsMissing(br) {
			continue
		}
		if col.Nums[br] <= threshold {
			nl++
		} else {
			nr++
		}
	}
	missTo := 0
	if nr > nl {
		missTo = 1
	}
	cap0, cap1 := nl, nr
	if missTo == 0 {
		cap0 = len(rows) - nr
	} else {
		cap1 = len(rows) - nl
	}
	// Partition storage comes from the arena: child row sets live exactly
	// as long as the fitted tree (until the fold's Reset), and the sizing
	// pass above makes the buffers exact so append never spills.
	parts[0] = dt.arena.IntsRaw(cap0)[:0]
	parts[1] = dt.arena.IntsRaw(cap1)[:0]
	for _, r := range rows {
		side := missTo
		if br := ds.row(r); !col.IsMissing(br) {
			if col.Nums[br] <= threshold {
				side = 0
			} else {
				side = 1
			}
		}
		parts[side] = append(parts[side], r)
	}
	return parts
}

// partitionQuality computes, for a partition given as per-branch class
// count vectors, the raw improvement (information gain, or Gini decrease)
// and the criterion score (gain ratio, or again the Gini decrease).
func (dt *DecisionTree) partitionQuality(branches [][]float64, n float64) (gain, score float64) {
	if n <= 0 {
		return 0, 0
	}
	total := dt.totalBuf
	if len(total) != dt.classes {
		total = make([]float64, dt.classes)
	}
	for i := range total {
		total[i] = 0
	}
	for _, b := range branches {
		for c, v := range b {
			total[c] += v
		}
	}
	if dt.Criterion == Gini {
		parentGini := giniOf(total)
		childGini := 0.0
		for _, b := range branches {
			nb := sum(b)
			if nb == 0 {
				continue
			}
			childGini += nb / n * giniOf(b)
		}
		d := parentGini - childGini
		return d, d
	}
	parentH := entropyOf(total)
	childH, splitH := 0.0, 0.0
	for _, b := range branches {
		nb := sum(b)
		if nb == 0 {
			continue
		}
		p := nb / n
		childH += p * entropyOf(b)
		splitH -= p * math.Log2(p)
	}
	gain = parentH - childH
	if gain <= 1e-12 || splitH <= 1e-12 {
		return 0, 0
	}
	return gain, gain / splitH
}

// prune collapses subtrees whose pessimistic error estimate is no better
// than predicting the node's majority class (C4.5's error-based pruning).
// It returns the subtree's pessimistic error.
func (dt *DecisionTree) prune(nd *treeNode) float64 {
	if nd.leaf {
		return pessimisticError(nd.errs, nd.n, dt.CF)
	}
	subtreeErr := 0.0
	for _, ch := range nd.children {
		subtreeErr += dt.prune(ch)
	}
	leafErr := pessimisticError(nd.errs, nd.n, dt.CF)
	if leafErr <= subtreeErr+1e-12 {
		nd.leaf = true
		nd.children = nil
		return leafErr
	}
	return subtreeErr
}

// pessimisticError is the upper confidence bound on errors at a node with
// n instances and e training errors (normal approximation, z = cf).
func pessimisticError(e, n, cf float64) float64 {
	if n == 0 {
		return 0
	}
	f := e / n
	z := cf
	ub := (f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))) / (1 + z*z/n)
	return ub * n
}

// Predict routes row r down the tree.
func (dt *DecisionTree) Predict(ds *Dataset, r int) int {
	nd := dt.route(ds, r)
	if nd == nil {
		return dt.fallback
	}
	return nd.class
}

// Proba returns the training class distribution of the reached leaf.
func (dt *DecisionTree) Proba(ds *Dataset, r int) []float64 {
	nd := dt.route(ds, r)
	if nd == nil || sum(nd.dist) == 0 {
		out := make([]float64, dt.classes)
		out[dt.fallback] = 1
		return out
	}
	out := append([]float64(nil), nd.dist...)
	return normalize(out)
}

func (dt *DecisionTree) route(ds *Dataset, r int) *treeNode {
	br := ds.row(r)
	nd := dt.root
	for nd != nil && !nd.leaf {
		col := ds.col(nd.attr)
		idx := nd.majority
		if !col.IsMissing(br) {
			if nd.numeric {
				if col.Nums[br] <= nd.threshold {
					idx = 0
				} else {
					idx = 1
				}
			} else if code := col.Cats[br]; code >= 0 && code < len(nd.children) {
				idx = code
			}
		}
		if idx >= len(nd.children) {
			idx = nd.majority
		}
		nd = nd.children[idx]
	}
	return nd
}

// Depth returns the depth of the fitted tree (leaf-only tree has depth 0).
func (dt *DecisionTree) Depth() int { return depthOf(dt.root) }

// Leaves returns the number of leaves of the fitted tree.
func (dt *DecisionTree) Leaves() int { return leavesOf(dt.root) }

// Dump renders the fitted tree as an indented rule text — the
// user-facing explanation surface for OpenBI's non-expert audience.
func (dt *DecisionTree) Dump(ds *Dataset) string {
	var b strings.Builder
	dt.dump(&b, ds, dt.root, 0)
	return b.String()
}

func (dt *DecisionTree) dump(b *strings.Builder, ds *Dataset, nd *treeNode, indent int) {
	pad := strings.Repeat("  ", indent)
	if nd == nil {
		return
	}
	if nd.leaf {
		fmt.Fprintf(b, "%s-> %s (n=%.0f)\n", pad, ds.ClassName(nd.class), nd.n)
		return
	}
	name := ds.T.ColumnName(nd.attr)
	if nd.numeric {
		fmt.Fprintf(b, "%sif %s <= %.4g:\n", pad, name, nd.threshold)
		dt.dump(b, ds, nd.children[0], indent+1)
		fmt.Fprintf(b, "%selse:\n", pad)
		dt.dump(b, ds, nd.children[1], indent+1)
		return
	}
	for lvl, ch := range nd.children {
		fmt.Fprintf(b, "%sif %s = %s:\n", pad, name, ds.T.Label(nd.attr, lvl))
		dt.dump(b, ds, ch, indent+1)
	}
}

func depthOf(nd *treeNode) int {
	if nd == nil || nd.leaf {
		return 0
	}
	max := 0
	for _, ch := range nd.children {
		if d := depthOf(ch); d > max {
			max = d
		}
	}
	return max + 1
}

func leavesOf(nd *treeNode) int {
	if nd == nil {
		return 0
	}
	if nd.leaf {
		return 1
	}
	n := 0
	for _, ch := range nd.children {
		n += leavesOf(ch)
	}
	return n
}

func isPure(dist []float64) bool {
	nz := 0
	for _, v := range dist {
		if v > 0 {
			nz++
		}
	}
	return nz <= 1
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

func entropyOf(dist []float64) float64 {
	return entropyWith(dist, sum(dist))
}

// entropyWith is entropyOf with the element sum already known — the split
// scan knows each branch's size exactly, so it skips the re-summation.
func entropyWith(dist []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	h := 0.0
	for _, v := range dist {
		if v == 0 {
			continue
		}
		p := v / n
		h -= p * math.Log2(p)
	}
	return h
}

func giniOf(dist []float64) float64 {
	return giniWith(dist, sum(dist))
}

// giniWith is giniOf with the element sum already known.
func giniWith(dist []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, v := range dist {
		p := v / n
		g -= p * p
	}
	return g
}
