package mining

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"strings"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// SplitCriterion selects the impurity function of a decision tree.
type SplitCriterion int

const (
	// GainRatio is C4.5's normalized information gain.
	GainRatio SplitCriterion = iota
	// Gini is CART's Gini impurity decrease.
	Gini
)

// String names the criterion.
func (s SplitCriterion) String() string {
	if s == Gini {
		return "gini"
	}
	return "gain-ratio"
}

// DecisionTree is a top-down induced decision tree supporting numeric
// (binary threshold) and nominal (multiway) splits, missing-value routing
// to the majority branch, and C4.5-style pessimistic-error pruning.
//
// With Criterion GainRatio it plays the role of C4.5, with Gini the role
// of CART; the ablation benches compare both. Trees embed the paper's
// robustness story: they shrug off irrelevant attributes (a bad attribute
// is simply never split on) but overfit label noise unless pruned — the
// Phase-1 grid and the pruning ablation quantify exactly that.
type DecisionTree struct {
	// Criterion is the split quality measure (default GainRatio).
	Criterion SplitCriterion
	// MaxDepth bounds tree depth (default 25).
	MaxDepth int
	// MinLeaf is the minimum instances per leaf (default 2).
	MinLeaf int
	// Prune enables pessimistic-error subtree collapsing (default set by
	// the constructors).
	Prune bool
	// CF is the pruning confidence factor z-score (default 0.69 ≈ C4.5's
	// 25% confidence).
	CF float64
	// FeatureSample, when positive, evaluates only a random subset of
	// that many attributes per node — the randomization hook used by
	// RandomForest. 0 means all attributes.
	FeatureSample int
	// Seed drives feature sampling (unused when FeatureSample is 0).
	Seed int64

	root     *treeNode
	classes  int
	fallback int
	rng      *rand.Rand

	// Scratch buffers reused across split evaluations. Numeric threshold
	// search runs once per (node × attribute × candidate) and dominated
	// the whole experiment grid's allocation profile before these were
	// hoisted; the arithmetic is unchanged (class counts are small exact
	// integers in float64, so reuse cannot perturb results).
	obsBuf    []valClass
	leftBuf   []float64
	rightBuf  []float64
	sumBuf    []float64
	totalBuf  []float64
	branchBuf [][]float64
}

// valClass pairs one observed numeric cell with its row's class code.
type valClass struct {
	v float64
	c int
}

// NewC45Tree returns a pruned gain-ratio tree (the C4.5 stand-in).
func NewC45Tree() *DecisionTree {
	return &DecisionTree{Criterion: GainRatio, Prune: true}
}

// NewCARTTree returns a pruned Gini tree (the CART stand-in).
func NewCARTTree() *DecisionTree {
	return &DecisionTree{Criterion: Gini, Prune: true}
}

// Name implements Classifier.
func (dt *DecisionTree) Name() string {
	if dt.Criterion == Gini {
		return "cart"
	}
	return "c45"
}

type treeNode struct {
	// Leaf fields.
	leaf  bool
	class int
	dist  []float64 // training class distribution at the node

	// Split fields.
	attr      int
	numeric   bool
	threshold float64     // numeric split: <= threshold goes left
	children  []*treeNode // numeric: [left, right]; nominal: one per level
	majority  int         // child index that missing/unseen values follow

	n    float64 // training instances reaching the node
	errs float64 // training errors if this node were a leaf
}

// Fit induces the tree on ds.
func (dt *DecisionTree) Fit(ds *Dataset) error {
	rows := ds.LabeledRows()
	if len(rows) == 0 {
		return fmt.Errorf("%s: no labeled instances", dt.Name())
	}
	if dt.MaxDepth <= 0 {
		dt.MaxDepth = 25
	}
	if dt.MinLeaf <= 0 {
		dt.MinLeaf = 2
	}
	if dt.CF == 0 {
		dt.CF = 0.69
	}
	dt.classes = ds.NumClasses()
	dt.fallback = ds.MajorityClass()
	dt.rng = stats.NewRand(dt.Seed)
	dt.leftBuf = make([]float64, dt.classes)
	dt.rightBuf = make([]float64, dt.classes)
	dt.sumBuf = make([]float64, dt.classes)
	dt.totalBuf = make([]float64, dt.classes)
	dt.branchBuf = make([][]float64, 2)
	dt.root = dt.build(ds, rows, 0)
	if dt.Prune {
		dt.prune(dt.root)
	}
	return nil
}

// build grows the subtree over the given rows.
func (dt *DecisionTree) build(ds *Dataset, rows []int, depth int) *treeNode {
	dist := make([]float64, dt.classes)
	for _, r := range rows {
		dist[ds.Label(r)]++
	}
	node := &treeNode{dist: dist, class: argmax(dist), n: float64(len(rows))}
	node.errs = node.n - dist[node.class]

	if depth >= dt.MaxDepth || len(rows) < 2*dt.MinLeaf || isPure(dist) {
		node.leaf = true
		return node
	}

	attrs := dt.candidateAttrs(ds)
	type candidate struct {
		gain  float64
		score float64
		apply func() ([][]int, *treeNode)
	}
	var cands []candidate
	for _, j := range attrs {
		gain, score, apply := dt.evaluateSplit(ds, rows, j)
		if apply != nil && gain > 1e-12 {
			cands = append(cands, candidate{gain, score, apply})
		}
	}
	if len(cands) == 0 {
		node.leaf = true
		return node
	}
	// C4.5's average-gain constraint: gain ratio inflates for splits with
	// tiny split info (it rewards peeling off a couple of rows, producing
	// degenerate chain trees), so the ratio only arbitrates between
	// attributes whose raw gain is at least the average candidate gain.
	// For Gini the score is the impurity decrease itself and needs no guard.
	eligible := cands
	if dt.Criterion == GainRatio {
		avg := 0.0
		for _, c := range cands {
			avg += c.gain
		}
		avg /= float64(len(cands))
		eligible = eligible[:0]
		for _, c := range cands {
			if c.gain >= avg-1e-12 {
				eligible = append(eligible, c)
			}
		}
	}
	var bestSplit func() ([][]int, *treeNode)
	bestScore := 0.0
	for _, c := range eligible {
		if c.score > bestScore+1e-12 {
			bestScore = c.score
			bestSplit = c.apply
		}
	}
	if bestSplit == nil {
		node.leaf = true
		return node
	}
	parts, configured := bestSplit()
	*node = *configured // copy split config; dist/n/errs preserved below
	node.dist = dist
	node.class = argmax(dist)
	node.n = float64(len(rows))
	node.errs = node.n - dist[node.class]

	node.children = make([]*treeNode, len(parts))
	biggest, biggestIdx := -1, 0
	for i, part := range parts {
		if len(part) > biggest {
			biggest = len(part)
			biggestIdx = i
		}
	}
	node.majority = biggestIdx
	for i, part := range parts {
		if len(part) == 0 {
			// Empty branch: predict the parent majority.
			node.children[i] = &treeNode{leaf: true, class: node.class, dist: dist, n: 0}
			continue
		}
		node.children[i] = dt.build(ds, part, depth+1)
	}
	return node
}

// candidateAttrs returns the attribute columns considered at a node,
// honouring FeatureSample.
func (dt *DecisionTree) candidateAttrs(ds *Dataset) []int {
	all := ds.AttrCols()
	if dt.FeatureSample <= 0 || dt.FeatureSample >= len(all) {
		return all
	}
	idx := stats.SampleWithoutReplacement(dt.rng, len(all), dt.FeatureSample)
	out := make([]int, len(idx))
	for i, v := range idx {
		out[i] = all[v]
	}
	sort.Ints(out)
	return out
}

// evaluateSplit scores the best split on attribute j over rows. It returns
// the raw information gain (or Gini decrease), the criterion score used to
// arbitrate between attributes, and a closure materializing the partition
// and node config; a nil closure means no usable split.
func (dt *DecisionTree) evaluateSplit(ds *Dataset, rows []int, j int) (gain, score float64, apply func() ([][]int, *treeNode)) {
	if ds.T.ColumnKind(j) == table.Nominal {
		return dt.evaluateNominal(ds, rows, j)
	}
	return dt.evaluateNumeric(ds, rows, j)
}

func (dt *DecisionTree) evaluateNominal(ds *Dataset, rows []int, j int) (float64, float64, func() ([][]int, *treeNode)) {
	col := ds.col(j)
	levels := col.NumLevels()
	if levels < 2 {
		return 0, 0, nil
	}
	// counts[level][class]; missing rows excluded from the quality measure
	// (they follow the majority branch at predict time).
	counts := make([][]float64, levels)
	for i := range counts {
		counts[i] = make([]float64, dt.classes)
	}
	observed := 0
	for _, r := range rows {
		br := ds.row(r)
		if col.IsMissing(br) {
			continue
		}
		counts[col.Cats[br]][ds.Label(r)]++
		observed++
	}
	if observed < 2*dt.MinLeaf {
		return 0, 0, nil
	}
	nonEmpty := 0
	for _, c := range counts {
		if sum(c) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return 0, 0, nil
	}
	gain, score := dt.partitionQuality(counts, float64(observed))
	if score <= 0 {
		return 0, 0, nil
	}
	apply := func() ([][]int, *treeNode) {
		parts := make([][]int, levels)
		biggest := 0
		for lvl := range counts {
			if sum(counts[lvl]) > sum(counts[biggest]) {
				biggest = lvl
			}
		}
		for _, r := range rows {
			lvl := col.Cats[ds.row(r)]
			if lvl == table.MissingCat {
				lvl = biggest
			}
			parts[lvl] = append(parts[lvl], r)
		}
		return parts, &treeNode{attr: j, numeric: false}
	}
	return gain, score, apply
}

func (dt *DecisionTree) evaluateNumeric(ds *Dataset, rows []int, j int) (float64, float64, func() ([][]int, *treeNode)) {
	col := ds.col(j)
	if cap(dt.obsBuf) < len(rows) {
		dt.obsBuf = make([]valClass, 0, len(rows))
	}
	obs := dt.obsBuf[:0]
	for _, r := range rows {
		if br := ds.row(r); !col.IsMissing(br) {
			obs = append(obs, valClass{col.Nums[br], ds.Label(r)})
		}
	}
	if len(obs) < 2*dt.MinLeaf {
		return 0, 0, nil
	}
	// slices.SortFunc rather than sort.Slice: same pdqsort, no per-call
	// reflection allocations. Rows with equal values may land in either
	// order; the threshold scan only acts at value boundaries, so the
	// chosen split is unaffected.
	slices.SortFunc(obs, func(a, b valClass) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})

	total := dt.sumBuf
	for i := range total {
		total[i] = 0
	}
	for _, o := range obs {
		total[o.c]++
	}
	left := dt.leftBuf
	for i := range left {
		left[i] = 0
	}
	right := dt.rightBuf
	n := float64(len(obs))

	// The threshold itself is chosen by raw gain (C4.5's rule for
	// continuous attributes), not by gain ratio — ratio-based threshold
	// selection degenerates into peeling extreme values.
	bestGain, bestThreshold := 0.0, math.NaN()
	var bestScore float64
	candidates := 0
	for i := 0; i < len(obs)-1; i++ {
		left[obs[i].c]++
		if obs[i].v == obs[i+1].v {
			continue
		}
		candidates++
		nl := float64(i + 1)
		if nl < float64(dt.MinLeaf) || n-nl < float64(dt.MinLeaf) {
			continue
		}
		for c := range right {
			right[c] = total[c] - left[c]
		}
		dt.branchBuf[0], dt.branchBuf[1] = left, right
		gain, score := dt.partitionQuality(dt.branchBuf, n)
		if gain > bestGain+1e-12 {
			bestGain = gain
			bestScore = score
			bestThreshold = (obs[i].v + obs[i+1].v) / 2
		}
	}
	if math.IsNaN(bestThreshold) {
		return 0, 0, nil
	}
	if dt.Criterion == GainRatio && candidates > 1 {
		// C4.5's MDL correction: the many evaluated thresholds must pay
		// for themselves, log2(candidates)/n bits' worth.
		bestGain -= math.Log2(float64(candidates)) / n
		if bestGain <= 1e-12 {
			return 0, 0, nil
		}
	}
	threshold := bestThreshold
	apply := func() ([][]int, *treeNode) {
		parts := make([][]int, 2)
		nl, nr := 0, 0
		for _, r := range rows {
			br := ds.row(r)
			if col.IsMissing(br) {
				continue
			}
			if col.Nums[br] <= threshold {
				nl++
			} else {
				nr++
			}
		}
		missTo := 0
		if nr > nl {
			missTo = 1
		}
		cap0, cap1 := nl, nr
		if missTo == 0 {
			cap0 = len(rows) - nr
		} else {
			cap1 = len(rows) - nl
		}
		parts[0] = make([]int, 0, cap0)
		parts[1] = make([]int, 0, cap1)
		for _, r := range rows {
			side := missTo
			if br := ds.row(r); !col.IsMissing(br) {
				if col.Nums[br] <= threshold {
					side = 0
				} else {
					side = 1
				}
			}
			parts[side] = append(parts[side], r)
		}
		return parts, &treeNode{attr: j, numeric: true, threshold: threshold}
	}
	return bestGain, bestScore, apply
}

// partitionQuality computes, for a partition given as per-branch class
// count vectors, the raw improvement (information gain, or Gini decrease)
// and the criterion score (gain ratio, or again the Gini decrease).
func (dt *DecisionTree) partitionQuality(branches [][]float64, n float64) (gain, score float64) {
	if n <= 0 {
		return 0, 0
	}
	total := dt.totalBuf
	if len(total) != dt.classes {
		total = make([]float64, dt.classes)
	}
	for i := range total {
		total[i] = 0
	}
	for _, b := range branches {
		for c, v := range b {
			total[c] += v
		}
	}
	if dt.Criterion == Gini {
		parentGini := giniOf(total)
		childGini := 0.0
		for _, b := range branches {
			nb := sum(b)
			if nb == 0 {
				continue
			}
			childGini += nb / n * giniOf(b)
		}
		d := parentGini - childGini
		return d, d
	}
	parentH := entropyOf(total)
	childH, splitH := 0.0, 0.0
	for _, b := range branches {
		nb := sum(b)
		if nb == 0 {
			continue
		}
		p := nb / n
		childH += p * entropyOf(b)
		splitH -= p * math.Log2(p)
	}
	gain = parentH - childH
	if gain <= 1e-12 || splitH <= 1e-12 {
		return 0, 0
	}
	return gain, gain / splitH
}

// prune collapses subtrees whose pessimistic error estimate is no better
// than predicting the node's majority class (C4.5's error-based pruning).
// It returns the subtree's pessimistic error.
func (dt *DecisionTree) prune(nd *treeNode) float64 {
	if nd.leaf {
		return pessimisticError(nd.errs, nd.n, dt.CF)
	}
	subtreeErr := 0.0
	for _, ch := range nd.children {
		subtreeErr += dt.prune(ch)
	}
	leafErr := pessimisticError(nd.errs, nd.n, dt.CF)
	if leafErr <= subtreeErr+1e-12 {
		nd.leaf = true
		nd.children = nil
		return leafErr
	}
	return subtreeErr
}

// pessimisticError is the upper confidence bound on errors at a node with
// n instances and e training errors (normal approximation, z = cf).
func pessimisticError(e, n, cf float64) float64 {
	if n == 0 {
		return 0
	}
	f := e / n
	z := cf
	ub := (f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))) / (1 + z*z/n)
	return ub * n
}

// Predict routes row r down the tree.
func (dt *DecisionTree) Predict(ds *Dataset, r int) int {
	nd := dt.route(ds, r)
	if nd == nil {
		return dt.fallback
	}
	return nd.class
}

// Proba returns the training class distribution of the reached leaf.
func (dt *DecisionTree) Proba(ds *Dataset, r int) []float64 {
	nd := dt.route(ds, r)
	if nd == nil || sum(nd.dist) == 0 {
		out := make([]float64, dt.classes)
		out[dt.fallback] = 1
		return out
	}
	out := append([]float64(nil), nd.dist...)
	return normalize(out)
}

func (dt *DecisionTree) route(ds *Dataset, r int) *treeNode {
	br := ds.row(r)
	nd := dt.root
	for nd != nil && !nd.leaf {
		col := ds.col(nd.attr)
		idx := nd.majority
		if !col.IsMissing(br) {
			if nd.numeric {
				if col.Nums[br] <= nd.threshold {
					idx = 0
				} else {
					idx = 1
				}
			} else if code := col.Cats[br]; code >= 0 && code < len(nd.children) {
				idx = code
			}
		}
		if idx >= len(nd.children) {
			idx = nd.majority
		}
		nd = nd.children[idx]
	}
	return nd
}

// Depth returns the depth of the fitted tree (leaf-only tree has depth 0).
func (dt *DecisionTree) Depth() int { return depthOf(dt.root) }

// Leaves returns the number of leaves of the fitted tree.
func (dt *DecisionTree) Leaves() int { return leavesOf(dt.root) }

// Dump renders the fitted tree as an indented rule text — the
// user-facing explanation surface for OpenBI's non-expert audience.
func (dt *DecisionTree) Dump(ds *Dataset) string {
	var b strings.Builder
	dt.dump(&b, ds, dt.root, 0)
	return b.String()
}

func (dt *DecisionTree) dump(b *strings.Builder, ds *Dataset, nd *treeNode, indent int) {
	pad := strings.Repeat("  ", indent)
	if nd == nil {
		return
	}
	if nd.leaf {
		fmt.Fprintf(b, "%s-> %s (n=%.0f)\n", pad, ds.ClassName(nd.class), nd.n)
		return
	}
	name := ds.T.ColumnName(nd.attr)
	if nd.numeric {
		fmt.Fprintf(b, "%sif %s <= %.4g:\n", pad, name, nd.threshold)
		dt.dump(b, ds, nd.children[0], indent+1)
		fmt.Fprintf(b, "%selse:\n", pad)
		dt.dump(b, ds, nd.children[1], indent+1)
		return
	}
	for lvl, ch := range nd.children {
		fmt.Fprintf(b, "%sif %s = %s:\n", pad, name, ds.T.Label(nd.attr, lvl))
		dt.dump(b, ds, ch, indent+1)
	}
}

func depthOf(nd *treeNode) int {
	if nd == nil || nd.leaf {
		return 0
	}
	max := 0
	for _, ch := range nd.children {
		if d := depthOf(ch); d > max {
			max = d
		}
	}
	return max + 1
}

func leavesOf(nd *treeNode) int {
	if nd == nil {
		return 0
	}
	if nd.leaf {
		return 1
	}
	n := 0
	for _, ch := range nd.children {
		n += leavesOf(ch)
	}
	return n
}

func isPure(dist []float64) bool {
	nz := 0
	for _, v := range dist {
		if v > 0 {
			nz++
		}
	}
	return nz <= 1
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

func entropyOf(dist []float64) float64 {
	n := sum(dist)
	if n == 0 {
		return 0
	}
	h := 0.0
	for _, v := range dist {
		if v == 0 {
			continue
		}
		p := v / n
		h -= p * math.Log2(p)
	}
	return h
}

func giniOf(dist []float64) float64 {
	n := sum(dist)
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, v := range dist {
		p := v / n
		g -= p * p
	}
	return g
}
