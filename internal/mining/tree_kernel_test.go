package mining

import (
	"fmt"
	"testing"

	"openbi/internal/stats"
)

// sameTree reports whether two induced trees are structurally identical:
// same splits, thresholds (==), routing, and leaf distributions.
func sameTree(a, b *treeNode) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("nil mismatch")
	}
	if a == nil {
		return nil
	}
	if a.leaf != b.leaf || a.class != b.class || a.attr != b.attr ||
		a.numeric != b.numeric || a.majority != b.majority ||
		a.n != b.n || a.errs != b.errs {
		return fmt.Errorf("node fields differ: %+v vs %+v", a, b)
	}
	if a.threshold != b.threshold && !(a.threshold != a.threshold && b.threshold != b.threshold) {
		return fmt.Errorf("threshold %v != %v", a.threshold, b.threshold)
	}
	if len(a.dist) != len(b.dist) {
		return fmt.Errorf("dist len %d != %d", len(a.dist), len(b.dist))
	}
	for i := range a.dist {
		if a.dist[i] != b.dist[i] {
			return fmt.Errorf("dist[%d] %v != %v", i, a.dist[i], b.dist[i])
		}
	}
	if len(a.children) != len(b.children) {
		return fmt.Errorf("children %d != %d", len(a.children), len(b.children))
	}
	for i := range a.children {
		if err := sameTree(a.children[i], b.children[i]); err != nil {
			return fmt.Errorf("child %d: %w", i, err)
		}
	}
	return nil
}

// TestTreePresortedSplitSearch pits the presorted-order walk against the
// per-node gather+sort reference: over random tie-heavy datasets (missing
// cells, constant columns, view-backed resamples with repeated rows) both
// paths must induce structurally identical trees, for both criteria and
// for seeded random forests.
func TestTreePresortedSplitSearch(t *testing.T) {
	build := func(mk func() Classifier, ds *Dataset, walk bool) Classifier {
		disableIndexWalk = !walk
		defer func() { disableIndexWalk = false }()
		clf := mk()
		if err := clf.Fit(ds); err != nil {
			t.Fatalf("fit (walk=%v): %v", walk, err)
		}
		return clf
	}
	for seed := int64(0); seed < 6; seed++ {
		full := tieProneDataset(seed, 120)
		rng := stats.NewRand(seed + 50)
		boot := make([]int, 100)
		for i := range boot {
			boot[i] = rng.Intn(full.Len())
		}
		datasets := []*Dataset{full, full.Subset(boot)}
		makers := []func() Classifier{
			func() Classifier { return NewC45Tree() },
			func() Classifier { return NewCARTTree() },
			func() Classifier { return &DecisionTree{Criterion: GainRatio, MinLeaf: 1} },
			func() Classifier { return NewRandomForest(5, seed) },
		}
		for di, ds := range datasets {
			// Fresh dataset per walk mode would rebuild the index; the walk
			// is forced off via the hook instead so both fits share ds.
			for mi, mk := range makers {
				walked := build(mk, ds, true)
				sorted := build(mk, ds, false)
				var err error
				if wf, ok := walked.(*RandomForest); ok {
					sf := sorted.(*RandomForest)
					if len(wf.members) != len(sf.members) {
						t.Fatalf("seed %d ds %d maker %d: member count differs", seed, di, mi)
					}
					for k := range wf.members {
						if err = sameTree(wf.members[k].root, sf.members[k].root); err != nil {
							err = fmt.Errorf("member %d: %w", k, err)
							break
						}
					}
				} else {
					err = sameTree(walked.(*DecisionTree).root, sorted.(*DecisionTree).root)
				}
				if err != nil {
					t.Fatalf("seed %d ds %d maker %d (%s): trees differ: %v",
						seed, di, mi, walked.Name(), err)
				}
			}
		}
	}
}
