package mining

import (
	"fmt"
	"math"
	"math/rand"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// KMeans clusters the numeric attributes of a table with Lloyd's algorithm
// and k-means++ seeding. It serves OpenBI's unsupervised analysis path
// (segmenting open-data entities without a class attribute) and the E-DIM
// experiment, where clustering quality collapses as irrelevant dimensions
// are injected.
type KMeans struct {
	// K is the number of clusters.
	K int
	// MaxIter bounds Lloyd iterations (default 100).
	MaxIter int
	// Seed drives k-means++ seeding.
	Seed int64

	// Centroids are the fitted cluster centres, [k][numericCol].
	Centroids [][]float64
	// Inertia is the final within-cluster sum of squared distances.
	Inertia float64
	// Iterations actually run.
	Iterations int

	cols   []int // numeric column indices used
	means  []float64
	scales []float64
}

// NewKMeans returns an unfitted k-means.
func NewKMeans(k int, seed int64) *KMeans { return &KMeans{K: k, Seed: seed} }

// Fit clusters t's numeric columns (t may be a concrete table or a
// zero-copy view). Missing cells are mean-imputed in the standardized
// space (i.e. contribute zero distance).
func (km *KMeans) Fit(t table.Access) error {
	if km.K < 1 {
		return fmt.Errorf("kmeans: K must be >= 1, got %d", km.K)
	}
	if km.MaxIter <= 0 {
		km.MaxIter = 100
	}
	km.cols = t.NumericColumnIndices()
	if len(km.cols) == 0 {
		return fmt.Errorf("kmeans: table has no numeric columns")
	}
	n := t.NumRows()
	if n < km.K {
		return fmt.Errorf("kmeans: %d rows < K=%d", n, km.K)
	}

	// Standardize columns so distance is scale-free.
	d := len(km.cols)
	km.means = make([]float64, d)
	km.scales = make([]float64, d)
	points := make([][]float64, n)
	for i := range points {
		points[i] = make([]float64, d)
	}
	for f, j := range km.cols {
		nums := table.Floats(t, j)
		km.means[f] = stats.Mean(nums)
		sd := stats.StdDev(nums)
		if stats.IsMissing(km.means[f]) {
			km.means[f] = 0
		}
		if stats.IsMissing(sd) || sd == 0 {
			sd = 1
		}
		km.scales[f] = sd
		for i := 0; i < n; i++ {
			if stats.IsMissing(nums[i]) {
				points[i][f] = 0
			} else {
				points[i][f] = (nums[i] - km.means[f]) / sd
			}
		}
	}

	rng := stats.NewRand(km.Seed)
	km.Centroids = kmeansPlusPlus(points, km.K, rng)

	assign := make([]int, n)
	for iter := 0; iter < km.MaxIter; iter++ {
		km.Iterations = iter + 1
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range km.Centroids {
				dd := sqDist(p, cent)
				if dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, km.K)
		next := make([][]float64, km.K)
		for c := range next {
			next[c] = make([]float64, d)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for f, v := range p {
				next[c][f] += v
			}
		}
		for c := range next {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its centroid.
				far, farD := 0, -1.0
				for i, p := range points {
					dd := sqDist(p, km.Centroids[assign[i]])
					if dd > farD {
						far, farD = i, dd
					}
				}
				copy(next[c], points[far])
				counts[c] = 1
				continue
			}
			for f := range next[c] {
				next[c][f] /= float64(counts[c])
			}
		}
		km.Centroids = next
	}

	km.Inertia = 0
	for i, p := range points {
		km.Inertia += sqDist(p, km.Centroids[assign[i]])
	}
	return nil
}

// Assign returns the cluster index of row r of a table with the same
// schema as the training table.
func (km *KMeans) Assign(t table.Access, r int) int {
	p := make([]float64, len(km.cols))
	for f, j := range km.cols {
		if t.IsMissing(r, j) {
			p[f] = 0
			continue
		}
		p[f] = (t.Float(r, j) - km.means[f]) / km.scales[f]
	}
	best, bestD := 0, math.Inf(1)
	for c, cent := range km.Centroids {
		dd := sqDist(p, cent)
		if dd < bestD {
			best, bestD = c, dd
		}
	}
	return best
}

// kmeansPlusPlus seeds k centroids with the k-means++ D² weighting.
func kmeansPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	cents := make([][]float64, 0, k)
	cents = append(cents, clone(points[rng.Intn(n)]))
	d2 := make([]float64, n)
	for len(cents) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range cents {
				if dd := sqDist(p, c); dd < best {
					best = dd
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			cents = append(cents, clone(points[rng.Intn(n)]))
			continue
		}
		u := rng.Float64() * total
		cum := 0.0
		pick := n - 1
		for i, v := range d2 {
			cum += v
			if u < cum {
				pick = i
				break
			}
		}
		cents = append(cents, clone(points[pick]))
	}
	return cents
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clone(xs []float64) []float64 { return append([]float64(nil), xs...) }
