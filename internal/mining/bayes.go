package mining

import (
	"fmt"
	"math"

	"openbi/internal/table"
)

// NaiveBayes is a Gaussian/multinomial naive Bayes classifier: nominal
// attributes use Laplace-smoothed frequency estimates, numeric attributes
// per-class Gaussians. Missing attribute values are simply skipped at both
// training and prediction time, which makes NB famously robust to
// incompleteness — and its conditional-independence assumption makes it
// the canonical victim of the correlated-attribute defect the paper calls
// out in §3.1 ("though correct, will not provide the useful expected
// value"). The Phase-1 experiments quantify both behaviours.
type NaiveBayes struct {
	// Laplace is the additive smoothing constant (default 1).
	Laplace float64

	classes  int
	priors   []float64
	nominal  map[int][][]float64 // col -> [class][level] log prob
	gaussMu  map[int][]float64   // col -> [class] mean
	gaussSd  map[int][]float64   // col -> [class] stddev
	fallback int
	arena    *Arena

	// llBuf is the per-row log-likelihood scratch; logLikelihoods
	// overwrites every entry before returning it, and both callers consume
	// the slice before the next call, so one buffer serves all predictions.
	llBuf []float64
}

// UseArena implements ArenaUser.
func (nb *NaiveBayes) UseArena(a *Arena) { nb.arena = a }

// NewNaiveBayes returns an unfitted NaiveBayes with Laplace=1.
func NewNaiveBayes() *NaiveBayes { return &NaiveBayes{Laplace: 1} }

// Name implements Classifier.
func (nb *NaiveBayes) Name() string { return "naive-bayes" }

// Fit estimates priors and per-attribute conditional distributions.
func (nb *NaiveBayes) Fit(ds *Dataset) error {
	labeled := ds.LabeledRows()
	if len(labeled) == 0 {
		return fmt.Errorf("naive-bayes: no labeled instances")
	}
	if nb.Laplace <= 0 {
		nb.Laplace = 1
	}
	nb.classes = ds.NumClasses()
	nb.fallback = ds.MajorityClass()
	nb.llBuf = nb.arena.F64(nb.classes)

	counts := make([]float64, nb.classes)
	for _, r := range labeled {
		counts[ds.Label(r)]++
	}
	nb.priors = make([]float64, nb.classes)
	for c := range nb.priors {
		nb.priors[c] = (counts[c] + nb.Laplace) / (float64(len(labeled)) + nb.Laplace*float64(nb.classes))
	}

	nb.nominal = make(map[int][][]float64)
	nb.gaussMu = make(map[int][]float64)
	nb.gaussSd = make(map[int][]float64)

	for _, j := range ds.AttrCols() {
		col := ds.col(j)
		if col.Kind == table.Nominal {
			levels := col.NumLevels()
			if levels == 0 {
				continue
			}
			freq := make([][]float64, nb.classes)
			for c := range freq {
				freq[c] = make([]float64, levels)
			}
			perClass := make([]float64, nb.classes)
			for _, r := range labeled {
				br := ds.row(r)
				if col.IsMissing(br) {
					continue
				}
				freq[ds.Label(r)][col.Cats[br]]++
				perClass[ds.Label(r)]++
			}
			for c := 0; c < nb.classes; c++ {
				for l := 0; l < levels; l++ {
					freq[c][l] = math.Log((freq[c][l] + nb.Laplace) / (perClass[c] + nb.Laplace*float64(levels)))
				}
			}
			nb.nominal[j] = freq
			continue
		}
		mu := make([]float64, nb.classes)
		sd := make([]float64, nb.classes)
		n := make([]float64, nb.classes)
		for _, r := range labeled {
			br := ds.row(r)
			if col.IsMissing(br) {
				continue
			}
			c := ds.Label(r)
			mu[c] += col.Nums[br]
			n[c]++
		}
		for c := range mu {
			if n[c] > 0 {
				mu[c] /= n[c]
			}
		}
		for _, r := range labeled {
			br := ds.row(r)
			if col.IsMissing(br) {
				continue
			}
			c := ds.Label(r)
			d := col.Nums[br] - mu[c]
			sd[c] += d * d
		}
		for c := range sd {
			if n[c] > 1 {
				sd[c] = math.Sqrt(sd[c] / (n[c] - 1))
			}
			// Variance floor keeps degenerate columns from producing
			// infinite densities.
			if sd[c] < 1e-6 {
				sd[c] = 1e-6
			}
		}
		nb.gaussMu[j] = mu
		nb.gaussSd[j] = sd
	}
	return nil
}

// logLikelihoods returns unnormalized log P(class, x). The returned slice
// is nb.llBuf: valid until the next call on nb.
func (nb *NaiveBayes) logLikelihoods(ds *Dataset, r int) []float64 {
	ll := nb.llBuf
	if len(ll) != nb.classes {
		ll = make([]float64, nb.classes)
		nb.llBuf = ll
	}
	for c := range ll {
		ll[c] = math.Log(nb.priors[c])
	}
	br := ds.row(r)
	for _, j := range ds.AttrCols() {
		col := ds.col(j)
		if col.IsMissing(br) {
			continue // NB's native missing handling: marginalize the attribute out
		}
		if col.Kind == table.Nominal {
			freq, ok := nb.nominal[j]
			if !ok {
				continue
			}
			lvl := col.Cats[br]
			for c := range ll {
				if lvl < len(freq[c]) {
					ll[c] += freq[c][lvl]
				}
			}
			continue
		}
		mu, ok := nb.gaussMu[j]
		if !ok {
			continue
		}
		sd := nb.gaussSd[j]
		x := col.Nums[br]
		for c := range ll {
			d := (x - mu[c]) / sd[c]
			ll[c] += -0.5*d*d - math.Log(sd[c]) - 0.5*math.Log(2*math.Pi)
		}
	}
	return ll
}

// Predict returns the MAP class.
func (nb *NaiveBayes) Predict(ds *Dataset, r int) int {
	ll := nb.logLikelihoods(ds, r)
	if len(ll) == 0 {
		return nb.fallback
	}
	return argmax(ll)
}

// Proba returns the posterior distribution via the log-sum-exp trick.
func (nb *NaiveBayes) Proba(ds *Dataset, r int) []float64 {
	ll := nb.logLikelihoods(ds, r)
	max := math.Inf(-1)
	for _, v := range ll {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(ll))
	for i, v := range ll {
		out[i] = math.Exp(v - max)
	}
	return normalize(out)
}
