// Package mining implements the data-mining step of the KDD process
// (Figure 1) from scratch: a supervised Dataset view over tables, a common
// Classifier interface, and the classifier families the paper's framework
// arbitrates between — rules (ZeroR, OneR), Bayes (Naive Bayes), lazy
// (kNN), trees (C4.5-style and CART-style, plus a random forest) and
// functions (logistic regression) — along with k-means clustering and
// Apriori association-rule mining for the unsupervised OpenBI paths.
//
// Everything is deterministic given its configured seed.
package mining

import (
	"fmt"
	"math"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// Dataset is a supervised view over a table: attribute columns plus one
// nominal class column. It does not own the table; corrupting/splitting
// code produces new tables and wraps them in new Datasets.
type Dataset struct {
	T        *table.Table
	ClassCol int

	attrCols []int
}

// NewDataset wraps t with the class at column classCol. It validates that
// the class column exists and is nominal.
func NewDataset(t *table.Table, classCol int) (*Dataset, error) {
	if classCol < 0 || classCol >= t.NumCols() {
		return nil, fmt.Errorf("mining: class column %d out of range (table has %d columns)", classCol, t.NumCols())
	}
	if t.Column(classCol).Kind != table.Nominal {
		return nil, fmt.Errorf("mining: class column %q must be nominal", t.Column(classCol).Name)
	}
	ds := &Dataset{T: t, ClassCol: classCol}
	for j := 0; j < t.NumCols(); j++ {
		if j != classCol {
			ds.attrCols = append(ds.attrCols, j)
		}
	}
	return ds, nil
}

// NewDatasetByName wraps t with the named class column.
func NewDatasetByName(t *table.Table, className string) (*Dataset, error) {
	idx := t.ColumnIndex(className)
	if idx < 0 {
		return nil, fmt.Errorf("mining: class column %q not found", className)
	}
	return NewDataset(t, idx)
}

// MustNewDataset panics on error; for tests and generators with literal
// schemas.
func MustNewDataset(t *table.Table, classCol int) *Dataset {
	ds, err := NewDataset(t, classCol)
	if err != nil {
		panic(err)
	}
	return ds
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return d.T.NumRows() }

// AttrCols returns the attribute column indices (shared slice; read-only).
func (d *Dataset) AttrCols() []int { return d.attrCols }

// NumAttrs returns the number of attribute columns.
func (d *Dataset) NumAttrs() int { return len(d.attrCols) }

// Class returns the class column.
func (d *Dataset) Class() *table.Column { return d.T.Column(d.ClassCol) }

// NumClasses returns the class dictionary size (including levels that may
// have zero instances in this particular split — dictionaries are shared
// across splits so codes always agree).
func (d *Dataset) NumClasses() int { return d.Class().NumLevels() }

// Label returns the class code of row r (table.MissingCat when missing).
func (d *Dataset) Label(r int) int { return d.Class().Cats[r] }

// ClassName returns the label string for a class code.
func (d *Dataset) ClassName(code int) string { return d.Class().Label(code) }

// ClassCounts returns instance counts per class code.
func (d *Dataset) ClassCounts() []int { return d.Class().Counts() }

// MajorityClass returns the most frequent class code (ties break to the
// lowest code) or 0 on an empty dataset.
func (d *Dataset) MajorityClass() int {
	counts := d.ClassCounts()
	best := 0
	for code, c := range counts {
		if c > counts[best] {
			best = code
		}
	}
	return best
}

// Subset returns a Dataset over the selected rows (indices may repeat).
func (d *Dataset) Subset(rows []int) *Dataset {
	return MustNewDataset(d.T.SelectRows(rows), d.ClassCol)
}

// LabeledRows returns the indices of rows whose class is observed;
// classifiers train on these only.
func (d *Dataset) LabeledRows() []int {
	var out []int
	cls := d.Class()
	for r := 0; r < d.Len(); r++ {
		if cls.Cats[r] != table.MissingCat {
			out = append(out, r)
		}
	}
	return out
}

// Classifier is the common supervised-learning contract. Fit must be
// called before Predict; Predict returns a class code valid for the
// training dictionary (shared across splits by construction).
type Classifier interface {
	// Name returns the registry name of the algorithm ("naive-bayes", ...).
	Name() string
	// Fit trains on ds; it must cope with missing attribute values and
	// must ignore instances with a missing class.
	Fit(ds *Dataset) error
	// Predict classifies row r of ds (any dataset schema-compatible with
	// the training one).
	Predict(ds *Dataset, r int) int
}

// ProbClassifier is implemented by classifiers that can emit a class
// probability distribution (needed for AUC).
type ProbClassifier interface {
	Classifier
	// Proba returns P(class=c | x) for each class code; the slice sums
	// to 1 (up to rounding).
	Proba(ds *Dataset, r int) []float64
}

// Factory builds a fresh, unfitted classifier; cross-validation calls it
// once per fold so no state leaks between folds.
type Factory func() Classifier

// numericRange holds per-column scaling info shared by distance-based code.
type numericRange struct {
	lo, span float64 // span 0 means constant/unknown column
}

// computeRanges scans numeric attribute ranges for distance scaling.
func computeRanges(ds *Dataset) map[int]numericRange {
	out := make(map[int]numericRange)
	for _, j := range ds.AttrCols() {
		c := ds.T.Column(j)
		if c.Kind != table.Numeric {
			continue
		}
		lo, hi := stats.MinMax(c.Nums)
		r := numericRange{}
		if !stats.IsMissing(lo) && hi > lo {
			r.lo, r.span = lo, hi-lo
		}
		out[j] = r
	}
	return out
}

// heteroDistance is the shared Gower-style distance between row a of da
// and row b of db over the attribute columns of da: scaled absolute
// difference for numeric attributes, 0/1 for nominal, 1 for missing-on-
// either-side. Distances are comparable across calls with the same ranges.
func heteroDistance(da *Dataset, a int, db *Dataset, b int, ranges map[int]numericRange) float64 {
	sum := 0.0
	for _, j := range da.AttrCols() {
		ca := da.T.Column(j)
		cb := db.T.Column(j)
		if ca.IsMissing(a) || cb.IsMissing(b) {
			sum++
			continue
		}
		if ca.Kind == table.Numeric {
			rg := ranges[j]
			if rg.span == 0 {
				continue
			}
			d := math.Abs(ca.Nums[a]-cb.Nums[b]) / rg.span
			if d > 1 {
				d = 1
			}
			sum += d
		} else if ca.Cats[a] != cb.Cats[b] {
			sum++
		}
	}
	return sum
}

// argmax returns the index of the largest value (lowest index on ties).
func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// normalize scales xs to sum to 1 in place (uniform when the sum is 0).
func normalize(xs []float64) []float64 {
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	if sum <= 0 {
		u := 1 / float64(len(xs))
		for i := range xs {
			xs[i] = u
		}
		return xs
	}
	for i := range xs {
		xs[i] /= sum
	}
	return xs
}
