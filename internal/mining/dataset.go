// Package mining implements the data-mining step of the KDD process
// (Figure 1) from scratch: a supervised Dataset view over tables, a common
// Classifier interface, and the classifier families the paper's framework
// arbitrates between — rules (ZeroR, OneR), Bayes (Naive Bayes), lazy
// (kNN), trees (C4.5-style and CART-style, plus a random forest) and
// functions (logistic regression) — along with k-means clustering and
// Apriori association-rule mining for the unsupervised OpenBI paths.
//
// Everything is deterministic given its configured seed.
package mining

import (
	"fmt"
	"math"
	"sync"

	"openbi/internal/oberr"
	"openbi/internal/stats"
	"openbi/internal/table"
)

// Dataset is a supervised view over tabular data: attribute columns plus
// one nominal class column. It is written against table.Access, so it can
// wrap either a concrete *table.Table or a zero-copy *table.View — fold
// splits and bootstrap resamples produced by Subset share cell storage
// with the root table instead of copying it. It does not own the data;
// corrupting code produces new tables and wraps them in new Datasets.
type Dataset struct {
	// T is the backing data. Treat it (and ClassCol) as read-only after
	// construction: attribute indices and the resolved fast-path fields
	// below are derived from it in NewDataset, so rebinding a Dataset to
	// other data means constructing a new one, not reassigning T.
	T        table.Access
	ClassCol int

	attrCols []int

	// Resolved fast path: the concrete table behind T plus the row/column
	// indirection (nil = identity). Classifier hot loops read column
	// storage through col/row instead of paying interface dispatch per
	// cell; results are identical because a view is, by definition, the
	// same cells behind an index mapping.
	base  *table.Table
	rowIx []int
	colIx []int

	// Lazy caches over the (immutable-after-first-use) backing data. They
	// fill on first access and are safe under concurrent readers, which is
	// how prepared experiment cells share one Dataset across workers.
	// Mutating the backing table after any cache has filled violates the
	// read-only contract on T above.
	rangesOnce sync.Once
	rangeCache map[int]numericRange

	floatsMu    sync.Mutex
	floatsCache map[int][]float64

	indexMu    sync.Mutex
	indexCache *ColumnIndex

	labeledMu    sync.Mutex
	labeledCache []int
}

// resolve fills the fast-path fields from T.
func (d *Dataset) resolve() {
	switch s := d.T.(type) {
	case *table.Table:
		d.base = s
	case *table.View:
		d.base, d.rowIx, d.colIx = s.Base(), s.RowIndex(), s.ColIndex()
	default:
		// Unknown Access implementation: materialize once so reads are
		// plain column reads either way.
		d.base = d.T.Materialize()
	}
}

// col returns the concrete column behind attribute/class column j; cell
// reads must go through row to honour the view's row indirection.
func (d *Dataset) col(j int) *table.Column {
	if d.colIx != nil {
		j = d.colIx[j]
	}
	return d.base.Column(j)
}

// row maps a dataset row index onto the backing table's row index.
func (d *Dataset) row(r int) int {
	if d.rowIx != nil {
		return d.rowIx[r]
	}
	return r
}

// materializeSubsets forces Subset to deep-copy (the pre-view behavior);
// see MaterializeSubsets.
var materializeSubsets bool

// MaterializeSubsets toggles a testing hook: when on, Subset materializes
// every row selection into a fresh table instead of returning a zero-copy
// view. Equivalence tests run the experiment pipeline both ways and assert
// identical knowledge-base output. Not safe to toggle while runs are in
// flight.
func MaterializeSubsets(on bool) { materializeSubsets = on }

// NewDataset wraps a with the class at column classCol. It validates that
// the class column exists and is nominal.
func NewDataset(a table.Access, classCol int) (*Dataset, error) {
	if classCol < 0 || classCol >= a.NumCols() {
		return nil, fmt.Errorf("mining: class column %d out of range (table has %d columns)", classCol, a.NumCols())
	}
	if a.ColumnKind(classCol) != table.Nominal {
		return nil, fmt.Errorf("mining: class column %q must be nominal", a.ColumnName(classCol))
	}
	ds := &Dataset{T: a, ClassCol: classCol}
	ds.resolve()
	for j := 0; j < a.NumCols(); j++ {
		if j != classCol {
			ds.attrCols = append(ds.attrCols, j)
		}
	}
	return ds, nil
}

// NewDatasetByName wraps a with the named class column. A missing column
// returns an error matching oberr.ErrColumnNotFound.
func NewDatasetByName(a table.Access, className string) (*Dataset, error) {
	idx := a.ColumnIndex(className)
	if idx < 0 {
		return nil, fmt.Errorf("mining: class %w", &oberr.ColumnNotFoundError{Column: className})
	}
	return NewDataset(a, idx)
}

// MustNewDataset panics on error; for tests and generators with literal
// schemas.
func MustNewDataset(a table.Access, classCol int) *Dataset {
	ds, err := NewDataset(a, classCol)
	if err != nil {
		panic(err)
	}
	return ds
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return d.T.NumRows() }

// AttrCols returns the attribute column indices (shared slice; read-only).
func (d *Dataset) AttrCols() []int { return d.attrCols }

// NumAttrs returns the number of attribute columns.
func (d *Dataset) NumAttrs() int { return len(d.attrCols) }

// Table returns the concrete table behind the dataset. For a dataset over
// a *table.Table this is the live table itself; for a view-backed dataset
// it is a materialized copy, so mutations to it are not reflected in the
// dataset.
func (d *Dataset) Table() *table.Table { return d.T.Materialize() }

// Class returns the class column. For a dataset over a *table.Table this
// is the live column; for a view-backed dataset it is a materialized
// snapshot that callers must treat as read-only.
func (d *Dataset) Class() *table.Column {
	if t, ok := d.T.(*table.Table); ok {
		return t.Column(d.ClassCol)
	}
	return table.MaterializeColumn(d.T, d.ClassCol)
}

// NumClasses returns the class dictionary size (including levels that may
// have zero instances in this particular split — dictionaries are shared
// across splits so codes always agree).
func (d *Dataset) NumClasses() int { return d.T.NumLevels(d.ClassCol) }

// Label returns the class code of row r (table.MissingCat when missing).
func (d *Dataset) Label(r int) int { return d.col(d.ClassCol).Cats[d.row(r)] }

// ClassName returns the label string for a class code.
func (d *Dataset) ClassName(code int) string { return d.T.Label(d.ClassCol, code) }

// ClassCounts returns instance counts per class code (missing excluded).
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses())
	cls := d.col(d.ClassCol)
	for r, n := 0, d.Len(); r < n; r++ {
		if code := cls.Cats[d.row(r)]; code >= 0 && code < len(counts) {
			counts[code]++
		}
	}
	return counts
}

// MajorityClass returns the most frequent class code (ties break to the
// lowest code) or 0 on an empty dataset.
func (d *Dataset) MajorityClass() int {
	counts := d.ClassCounts()
	best := 0
	for code, c := range counts {
		if c > counts[best] {
			best = code
		}
	}
	return best
}

// Subset returns a Dataset over the selected rows (indices may repeat).
// The rows are served through a zero-copy view sharing cell storage with
// this dataset; the rows slice is retained, so callers must not mutate it
// afterwards. Subsets of subsets compose into a single indirection.
func (d *Dataset) Subset(rows []int) *Dataset {
	if rows == nil {
		rows = []int{} // a nil selection means empty, not identity
	}
	view := table.RowView(d.T, rows)
	if materializeSubsets {
		return MustNewDataset(view.Materialize(), d.ClassCol)
	}
	sub := MustNewDataset(view, d.ClassCol)
	// Share the presorted column index with children over the same base:
	// fold splits and bootstrap resamples reuse one build per cell.
	d.indexMu.Lock()
	ci := d.indexCache
	d.indexMu.Unlock()
	if ci != nil && ci.base == sub.base {
		sub.indexCache = ci
	}
	return sub
}

// LabeledRows returns the indices of rows whose class is observed;
// classifiers train on these only. The slice is computed once per dataset
// and shared by every caller (the whole classifier suite trains on the
// same fold split), so it is read-only like the backing data it reflects.
func (d *Dataset) LabeledRows() []int {
	d.labeledMu.Lock()
	defer d.labeledMu.Unlock()
	if d.labeledCache == nil {
		out := make([]int, 0, d.Len())
		cls := d.col(d.ClassCol)
		for r, n := 0, d.Len(); r < n; r++ {
			if cls.Cats[d.row(r)] != table.MissingCat {
				out = append(out, r)
			}
		}
		d.labeledCache = out
	}
	return d.labeledCache
}

// Classifier is the common supervised-learning contract. Fit must be
// called before Predict; Predict returns a class code valid for the
// training dictionary (shared across splits by construction).
type Classifier interface {
	// Name returns the registry name of the algorithm ("naive-bayes", ...).
	Name() string
	// Fit trains on ds; it must cope with missing attribute values and
	// must ignore instances with a missing class.
	Fit(ds *Dataset) error
	// Predict classifies row r of ds (any dataset schema-compatible with
	// the training one).
	Predict(ds *Dataset, r int) int
}

// ProbClassifier is implemented by classifiers that can emit a class
// probability distribution (needed for AUC).
type ProbClassifier interface {
	Classifier
	// Proba returns P(class=c | x) for each class code; the slice sums
	// to 1 (up to rounding).
	Proba(ds *Dataset, r int) []float64
}

// Factory builds a fresh, unfitted classifier; cross-validation calls it
// once per fold so no state leaks between folds.
type Factory func() Classifier

// numericRange holds per-column scaling info shared by distance-based code.
type numericRange struct {
	lo, span float64 // span 0 means constant/unknown column
}

// computeRanges scans numeric attribute ranges for distance scaling. It is
// the uncached reference; hot paths go through Dataset.attrRanges.
func computeRanges(ds *Dataset) map[int]numericRange {
	out := make(map[int]numericRange)
	for _, j := range ds.AttrCols() {
		if ds.T.ColumnKind(j) != table.Numeric {
			continue
		}
		lo, hi := stats.MinMax(ds.Floats(j))
		r := numericRange{}
		if !stats.IsMissing(lo) && hi > lo {
			r.lo, r.span = lo, hi-lo
		}
		out[j] = r
	}
	return out
}

// attrRanges returns the numeric attribute ranges, computed once per
// Dataset and shared (read-only) by every classifier fitted on it.
func (d *Dataset) attrRanges() map[int]numericRange {
	d.rangesOnce.Do(func() { d.rangeCache = computeRanges(d) })
	return d.rangeCache
}

// Floats returns the numeric values of column j as a slice, caching the
// gather for row-indirected views so repeated callers (range scans, OneR,
// logistic feature scaling) pay for it once per Dataset. The result
// aliases either live column storage or the shared cache: read-only, per
// the table.Cursor aliasing contract.
func (d *Dataset) Floats(j int) []float64 {
	if _, ok := d.T.(*table.Table); ok {
		return table.Floats(d.T, j) // live backing slice, zero cost
	}
	d.floatsMu.Lock()
	defer d.floatsMu.Unlock()
	if v, ok := d.floatsCache[j]; ok {
		return v
	}
	v := table.Floats(d.T, j)
	if d.floatsCache == nil {
		d.floatsCache = make(map[int][]float64)
	}
	d.floatsCache[j] = v
	return v
}

// heteroDistance is the shared Gower-style distance between row a of da
// and row b of db over the attribute columns of da: scaled absolute
// difference for numeric attributes, 0/1 for nominal, 1 for missing-on-
// either-side. Distances are comparable across calls with the same ranges.
func heteroDistance(da *Dataset, a int, db *Dataset, b int, ranges map[int]numericRange) float64 {
	ra, rb := da.row(a), db.row(b)
	sum := 0.0
	for _, j := range da.AttrCols() {
		ca, cb := da.col(j), db.col(j)
		if ca.IsMissing(ra) || cb.IsMissing(rb) {
			sum++
			continue
		}
		if ca.Kind == table.Numeric {
			rg := ranges[j]
			if rg.span == 0 {
				continue
			}
			d := math.Abs(ca.Nums[ra]-cb.Nums[rb]) / rg.span
			if d > 1 {
				d = 1
			}
			sum += d
		} else if ca.Cats[ra] != cb.Cats[rb] {
			sum++
		}
	}
	return sum
}

// argmax returns the index of the largest value (lowest index on ties).
func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// normalize scales xs to sum to 1 in place (uniform when the sum is 0).
func normalize(xs []float64) []float64 {
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	if sum <= 0 {
		u := 1 / float64(len(xs))
		for i := range xs {
			xs[i] = u
		}
		return xs
	}
	for i := range xs {
		xs[i] /= sum
	}
	return xs
}
