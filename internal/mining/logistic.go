package mining

import (
	"fmt"
	"math"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// Logistic is multinomial logistic regression trained by mini-batch-free
// SGD with L2 regularization. Nominal attributes are one-hot encoded,
// numeric attributes standardized with training statistics; missing cells
// encode as all-zero (i.e. the training mean / no level), the standard
// "mean imputation in feature space" fallback. As the linear-model
// representative it is the grid's probe for class imbalance (its decision
// boundary follows the prior hard) and tolerates redundant attributes far
// better than Naive Bayes.
type Logistic struct {
	// Epochs is the number of SGD passes (default 60).
	Epochs int
	// LearningRate is the initial step size (default 0.1, decayed 1/t).
	LearningRate float64
	// L2 is the ridge penalty (default 1e-4).
	L2 float64
	// Seed drives example shuffling.
	Seed int64

	weights  [][]float64 // [class][feature+1], last slot the bias
	features []featureSpec
	classes  int
	fallback int
	arena    *Arena

	// Reused scratch: softmax scores, plus the sparse encoding of one row —
	// indices and values of its nonzero features (one-hot levels leave most
	// of the dense vector zero, so the SGD inner loop, which skips zero
	// features anyway, only ever needs the nonzeros). Indices are ascending,
	// matching dense iteration order, so every accumulation visits the same
	// terms in the same order as the dense loops it replaces.
	scoreBuf []float64
	xIdx     []int
	xVal     []float64
}

// UseArena implements ArenaUser.
func (lg *Logistic) UseArena(a *Arena) { lg.arena = a }

// featureSpec maps one input column onto dense feature slots.
type featureSpec struct {
	col     int
	numeric bool
	offset  int     // first feature index
	width   int     // 1 for numeric, #levels for nominal
	mean    float64 // numeric standardization
	scale   float64
}

// NewLogistic returns an unfitted logistic regression.
func NewLogistic(seed int64) *Logistic { return &Logistic{Seed: seed} }

// Name implements Classifier.
func (lg *Logistic) Name() string { return "logistic" }

// Fit trains by SGD on the labeled rows.
func (lg *Logistic) Fit(ds *Dataset) error {
	labeled := ds.LabeledRows()
	if len(labeled) == 0 {
		return fmt.Errorf("logistic: no labeled instances")
	}
	if lg.Epochs <= 0 {
		lg.Epochs = 60
	}
	if lg.LearningRate <= 0 {
		lg.LearningRate = 0.1
	}
	if lg.L2 == 0 {
		lg.L2 = 1e-4
	}
	lg.classes = ds.NumClasses()
	lg.fallback = ds.MajorityClass()

	// Build the feature layout.
	lg.features = lg.features[:0]
	width := 0
	for _, j := range ds.AttrCols() {
		if ds.T.ColumnKind(j) == table.Numeric {
			nums := ds.Floats(j)
			fs := featureSpec{col: j, numeric: true, offset: width, width: 1}
			fs.mean = stats.Mean(nums)
			sd := stats.StdDev(nums)
			if stats.IsMissing(fs.mean) {
				fs.mean = 0
			}
			if stats.IsMissing(sd) || sd == 0 {
				sd = 1
			}
			fs.scale = sd
			lg.features = append(lg.features, fs)
			width++
			continue
		}
		levels := ds.T.NumLevels(j)
		if levels == 0 {
			continue
		}
		lg.features = append(lg.features, featureSpec{col: j, offset: width, width: levels})
		width += levels
	}

	lg.weights = make([][]float64, lg.classes)
	for c := range lg.weights {
		lg.weights[c] = make([]float64, width+1)
	}

	rng := lg.arena.Rand(lg.Seed)
	lg.scoreBuf = lg.arena.F64(lg.classes)
	lg.xIdx = lg.arena.IntsRaw(len(lg.features) + 1)[:0]
	lg.xVal = lg.arena.F64Raw(len(lg.features) + 1)[:0]
	// The Fisher–Yates replica below assigns every slot of order before
	// any epoch reads it, so the handout can skip zeroing.
	order := lg.arena.IntsRaw(len(labeled))

	// Encode every training row once, CSR-style: the sparse features are a
	// pure function of the static training data, so each epoch's re-encode
	// of the same rows was pure repetition. Each row holds at most
	// len(features)+1 nonzeros, making the bound exact for the arena.
	maxNZ := len(labeled) * (len(lg.features) + 1)
	indptr := lg.arena.IntsRaw(len(labeled) + 1)
	csrIdx := lg.arena.IntsRaw(maxNZ)[:0]
	csrVal := lg.arena.F64Raw(maxNZ)[:0]
	for i, r := range labeled {
		indptr[i] = len(csrIdx)
		idx, val := lg.encodeSparse(ds, r)
		csrIdx = append(csrIdx, idx...)
		csrVal = append(csrVal, val...)
	}
	indptr[len(labeled)] = len(csrIdx)

	step := 0
	for epoch := 0; epoch < lg.Epochs; epoch++ {
		// In-place replica of rand.Perm's exact Fisher–Yates (same Intn
		// sequence, every slot overwritten), minus its per-epoch allocation.
		for i := range order {
			j := rng.Intn(i + 1)
			order[i] = order[j]
			order[j] = i
		}
		for _, oi := range order {
			r := labeled[oi]
			idx := csrIdx[indptr[oi]:indptr[oi+1]]
			val := csrVal[indptr[oi]:indptr[oi+1]]
			p := lg.softmax(idx, val)
			step++
			lr := lg.LearningRate / (1 + 0.001*float64(step))
			y := ds.Label(r)
			for c := 0; c < lg.classes; c++ {
				grad := p[c]
				if c == y {
					grad -= 1
				}
				w := lg.weights[c]
				// Zero features take no update (not even L2 decay — the
				// historical dense loop skipped them), so iterating only
				// the nonzeros is the same arithmetic.
				for k, f := range idx {
					w[f] -= lr * (grad*val[k] + lg.L2*w[f])
				}
			}
		}
	}
	return nil
}

// encodeSparse fills the scratch sparse encoding of row r: ascending
// feature indices and their nonzero values, bias last. A standardized
// numeric value that lands exactly on zero is omitted, exactly as the
// dense consumers' zero-skip treated it.
func (lg *Logistic) encodeSparse(ds *Dataset, r int) (idx []int, val []float64) {
	idx, val = lg.xIdx[:0], lg.xVal[:0]
	br := ds.row(r)
	for _, fs := range lg.features {
		c := ds.col(fs.col)
		if c.IsMissing(br) {
			continue
		}
		if fs.numeric {
			if v := (c.Nums[br] - fs.mean) / fs.scale; v != 0 {
				idx = append(idx, fs.offset)
				val = append(val, v)
			}
			continue
		}
		lvl := c.Cats[br]
		if lvl >= 0 && lvl < fs.width {
			idx = append(idx, fs.offset+lvl)
			val = append(val, 1)
		}
	}
	idx = append(idx, len(lg.weights[0])-1) // bias
	val = append(val, 1)
	lg.xIdx, lg.xVal = idx, val
	return idx, val
}

// softmax returns the class distribution for the sparse feature vector
// (idx, val). The returned slice is lg.scoreBuf: valid until the next
// call on lg.
func (lg *Logistic) softmax(idx []int, val []float64) []float64 {
	scores := lg.scoreBuf
	if len(scores) != lg.classes {
		scores = make([]float64, lg.classes)
		lg.scoreBuf = scores
	}
	for c, w := range lg.weights {
		s := 0.0
		for k, f := range idx {
			s += w[f] * val[k]
		}
		scores[c] = s
	}
	max := math.Inf(-1)
	for _, s := range scores {
		if s > max {
			max = s
		}
	}
	for c := range scores {
		scores[c] = math.Exp(scores[c] - max)
	}
	return normalize(scores)
}

// Predict returns the argmax-probability class.
func (lg *Logistic) Predict(ds *Dataset, r int) int {
	p := lg.predictScores(ds, r)
	if len(p) == 0 {
		return lg.fallback
	}
	return argmax(p)
}

// Proba returns the softmax class distribution (a fresh slice).
func (lg *Logistic) Proba(ds *Dataset, r int) []float64 {
	return append([]float64(nil), lg.predictScores(ds, r)...)
}

// predictScores encodes row r into the reused sparse buffers and returns
// the shared softmax scratch.
func (lg *Logistic) predictScores(ds *Dataset, r int) []float64 {
	idx, val := lg.encodeSparse(ds, r)
	return lg.softmax(idx, val)
}
