package mining

import (
	"fmt"
	"math"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// Logistic is multinomial logistic regression trained by mini-batch-free
// SGD with L2 regularization. Nominal attributes are one-hot encoded,
// numeric attributes standardized with training statistics; missing cells
// encode as all-zero (i.e. the training mean / no level), the standard
// "mean imputation in feature space" fallback. As the linear-model
// representative it is the grid's probe for class imbalance (its decision
// boundary follows the prior hard) and tolerates redundant attributes far
// better than Naive Bayes.
type Logistic struct {
	// Epochs is the number of SGD passes (default 60).
	Epochs int
	// LearningRate is the initial step size (default 0.1, decayed 1/t).
	LearningRate float64
	// L2 is the ridge penalty (default 1e-4).
	L2 float64
	// Seed drives example shuffling.
	Seed int64

	weights  [][]float64 // [class][feature+1], last slot the bias
	features []featureSpec
	classes  int
	fallback int
}

// featureSpec maps one input column onto dense feature slots.
type featureSpec struct {
	col     int
	numeric bool
	offset  int     // first feature index
	width   int     // 1 for numeric, #levels for nominal
	mean    float64 // numeric standardization
	scale   float64
}

// NewLogistic returns an unfitted logistic regression.
func NewLogistic(seed int64) *Logistic { return &Logistic{Seed: seed} }

// Name implements Classifier.
func (lg *Logistic) Name() string { return "logistic" }

// Fit trains by SGD on the labeled rows.
func (lg *Logistic) Fit(ds *Dataset) error {
	labeled := ds.LabeledRows()
	if len(labeled) == 0 {
		return fmt.Errorf("logistic: no labeled instances")
	}
	if lg.Epochs <= 0 {
		lg.Epochs = 60
	}
	if lg.LearningRate <= 0 {
		lg.LearningRate = 0.1
	}
	if lg.L2 == 0 {
		lg.L2 = 1e-4
	}
	lg.classes = ds.NumClasses()
	lg.fallback = ds.MajorityClass()

	// Build the feature layout.
	lg.features = lg.features[:0]
	width := 0
	for _, j := range ds.AttrCols() {
		if ds.T.ColumnKind(j) == table.Numeric {
			nums := table.Floats(ds.T, j)
			fs := featureSpec{col: j, numeric: true, offset: width, width: 1}
			fs.mean = stats.Mean(nums)
			sd := stats.StdDev(nums)
			if stats.IsMissing(fs.mean) {
				fs.mean = 0
			}
			if stats.IsMissing(sd) || sd == 0 {
				sd = 1
			}
			fs.scale = sd
			lg.features = append(lg.features, fs)
			width++
			continue
		}
		levels := ds.T.NumLevels(j)
		if levels == 0 {
			continue
		}
		lg.features = append(lg.features, featureSpec{col: j, offset: width, width: levels})
		width += levels
	}

	lg.weights = make([][]float64, lg.classes)
	for c := range lg.weights {
		lg.weights[c] = make([]float64, width+1)
	}

	rng := stats.NewRand(lg.Seed)
	x := make([]float64, width+1)
	step := 0
	for epoch := 0; epoch < lg.Epochs; epoch++ {
		order := rng.Perm(len(labeled))
		for _, oi := range order {
			r := labeled[oi]
			lg.encode(ds, r, x)
			p := lg.softmax(x)
			step++
			lr := lg.LearningRate / (1 + 0.001*float64(step))
			y := ds.Label(r)
			for c := 0; c < lg.classes; c++ {
				grad := p[c]
				if c == y {
					grad -= 1
				}
				w := lg.weights[c]
				for f := range x {
					if x[f] == 0 {
						continue
					}
					w[f] -= lr * (grad*x[f] + lg.L2*w[f])
				}
			}
		}
	}
	return nil
}

// encode fills x with the dense feature vector of row r (bias last).
func (lg *Logistic) encode(ds *Dataset, r int, x []float64) {
	for i := range x {
		x[i] = 0
	}
	br := ds.row(r)
	for _, fs := range lg.features {
		c := ds.col(fs.col)
		if c.IsMissing(br) {
			continue
		}
		if fs.numeric {
			x[fs.offset] = (c.Nums[br] - fs.mean) / fs.scale
			continue
		}
		lvl := c.Cats[br]
		if lvl >= 0 && lvl < fs.width {
			x[fs.offset+lvl] = 1
		}
	}
	x[len(x)-1] = 1 // bias
}

// softmax returns the class distribution for feature vector x.
func (lg *Logistic) softmax(x []float64) []float64 {
	scores := make([]float64, lg.classes)
	for c, w := range lg.weights {
		s := 0.0
		for f, v := range x {
			if v != 0 {
				s += w[f] * v
			}
		}
		scores[c] = s
	}
	max := math.Inf(-1)
	for _, s := range scores {
		if s > max {
			max = s
		}
	}
	for c := range scores {
		scores[c] = math.Exp(scores[c] - max)
	}
	return normalize(scores)
}

// Predict returns the argmax-probability class.
func (lg *Logistic) Predict(ds *Dataset, r int) int {
	p := lg.Proba(ds, r)
	if len(p) == 0 {
		return lg.fallback
	}
	return argmax(p)
}

// Proba returns the softmax class distribution.
func (lg *Logistic) Proba(ds *Dataset, r int) []float64 {
	x := make([]float64, len(lg.weights[0]))
	lg.encode(ds, r, x)
	return lg.softmax(x)
}
