package mining

import (
	"fmt"
	"math"

	"openbi/internal/table"
)

// KNN is a k-nearest-neighbour classifier over the heterogeneous
// Gower-style distance (scaled numeric difference + nominal mismatch).
// As the lazy-learning representative it is the suite's canary for the
// dimensionality and attribute-noise criteria: every irrelevant or noised
// attribute dilutes its distance function directly, a dependence the E-DIM
// and Phase-1 experiments make visible.
//
// Prediction runs as a columnar kernel: Fit gathers each training
// attribute into a dense vector (range scale attached), Predict computes
// all candidate distances attribute-major into a reused buffer, and a
// bounded max-heap selects the k nearest. Neighbour ties at equal distance
// resolve by training order (earlier training instances win), which is
// exactly the behaviour of the historical insertion-into-sorted-slice
// implementation for every k <= 12 the suite uses.
type KNN struct {
	// K is the neighbourhood size (default 5).
	K int
	// Weighted applies 1/(d+eps) distance weighting to votes.
	Weighted bool

	train    *Dataset
	labeled  []int
	fallback int

	// Columnar kernel state built by Fit: one dense vector per attribute
	// over the labeled training rows, in AttrCols order.
	attrs []knnAttr

	// Scratch reused across Predict/Proba calls (a classifier instance is
	// confined to one goroutine by the Factory-per-fold contract).
	distBuf  []float64
	heapBuf  []knnCand
	votesBuf []float64
}

// knnAttr is one training attribute gathered into dense candidate-major
// storage: vals for numeric columns (NaN = missing), cats for nominal
// (table.MissingCat = missing).
type knnAttr struct {
	col     int // dataset column index (query side reads through this)
	numeric bool
	span    float64 // numeric range for scaling; 0 = constant/unknown
	vals    []float64
	cats    []int32
}

// knnCand is one neighbour candidate: its distance and its arrival order
// (index into the labeled slice), the tie-break key.
type knnCand struct {
	d   float64
	seq int32
}

// NewKNN returns an unfitted 5-NN.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Name implements Classifier.
func (kn *KNN) Name() string {
	return fmt.Sprintf("%d-nn", kn.k())
}

func (kn *KNN) k() int {
	if kn.K <= 0 {
		return 5
	}
	return kn.K
}

// Fit memorizes the training data, its numeric ranges, and gathers every
// attribute into a dense per-candidate vector for the distance kernel.
func (kn *KNN) Fit(ds *Dataset) error {
	labeled := ds.LabeledRows()
	if len(labeled) == 0 {
		return fmt.Errorf("knn: no labeled instances")
	}
	kn.train = ds
	kn.labeled = labeled
	kn.fallback = ds.MajorityClass()

	ranges := ds.attrRanges()
	kn.attrs = kn.attrs[:0]
	for _, j := range ds.AttrCols() {
		col := ds.col(j)
		a := knnAttr{col: j, numeric: col.Kind == table.Numeric}
		if a.numeric {
			a.span = ranges[j].span
			a.vals = make([]float64, len(labeled))
			for i, r := range labeled {
				a.vals[i] = col.Nums[ds.row(r)] // NaN encodes missing
			}
		} else {
			a.cats = make([]int32, len(labeled))
			for i, r := range labeled {
				a.cats[i] = int32(col.Cats[ds.row(r)])
			}
		}
		kn.attrs = append(kn.attrs, a)
	}
	return nil
}

// distances fills kn.distBuf with the Gower-style distance from row r of
// ds to every labeled training candidate. Contributions accumulate
// attribute-major in AttrCols order — the same per-candidate addition
// sequence as the historical per-candidate loop, so sums are bit-identical.
func (kn *KNN) distances(ds *Dataset, r int) []float64 {
	n := len(kn.labeled)
	if cap(kn.distBuf) < n {
		kn.distBuf = make([]float64, n)
	}
	dist := kn.distBuf[:n]
	for i := range dist {
		dist[i] = 0
	}
	rb := ds.row(r)
	for ai := range kn.attrs {
		a := &kn.attrs[ai]
		qcol := ds.col(a.col)
		if qcol.IsMissing(rb) {
			// Missing on the query side: every pair pays the maximal 1.
			for i := range dist {
				dist[i]++
			}
			continue
		}
		if a.numeric {
			q := qcol.Nums[rb]
			span := a.span
			for i, v := range a.vals {
				if math.IsNaN(v) {
					dist[i]++
					continue
				}
				if span == 0 {
					continue
				}
				d := math.Abs(v-q) / span
				if d > 1 {
					d = 1
				}
				dist[i] += d
			}
			continue
		}
		q := int32(qcol.Cats[rb])
		for i, c := range a.cats {
			if c == table.MissingCat || c != q {
				dist[i]++
			}
		}
	}
	return dist
}

// nearest selects the k nearest candidates from dist via a bounded
// max-heap ordered by (distance, training order) and returns them sorted
// ascending by that key — i.e. the k lexicographically smallest
// (d, arrival) pairs, matching a stable full sort of all candidates.
func (kn *KNN) nearest(dist []float64) []knnCand {
	k := kn.k()
	if cap(kn.heapBuf) < k {
		kn.heapBuf = make([]knnCand, 0, k)
	}
	h := kn.heapBuf[:0]
	for i, d := range dist {
		c := knnCand{d: d, seq: int32(i)}
		if len(h) < k {
			h = append(h, c)
			siftUp(h, len(h)-1)
			continue
		}
		// h[0] is the max by (d, seq); a later arrival replaces it only on
		// strictly smaller distance (an equal distance loses the (d, seq)
		// comparison to every incumbent, whose seq is necessarily smaller).
		if d < h[0].d {
			h[0] = c
			siftDown(h, 0)
		}
	}
	kn.heapBuf = h
	// Insertion-sort the k winners ascending by (d, seq) so vote
	// accumulation order matches the historical sorted-slice walk.
	for i := 1; i < len(h); i++ {
		c := h[i]
		j := i - 1
		for j >= 0 && candLess(c, h[j]) {
			h[j+1] = h[j]
			j--
		}
		h[j+1] = c
	}
	return h
}

// candLess orders candidates by (distance, training order).
func candLess(a, b knnCand) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.seq < b.seq
}

func siftUp(h []knnCand, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !candLess(h[p], h[i]) {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDown(h []knnCand, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && candLess(h[big], h[l]) {
			big = l
		}
		if r < n && candLess(h[big], h[r]) {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// neighbourVotes returns per-class vote mass for row r of ds. The returned
// slice is scratch owned by the classifier; callers must not retain it.
func (kn *KNN) neighbourVotes(ds *Dataset, r int) []float64 {
	best := kn.nearest(kn.distances(ds, r))
	nc := kn.train.NumClasses()
	if cap(kn.votesBuf) < nc {
		kn.votesBuf = make([]float64, nc)
	}
	votes := kn.votesBuf[:nc]
	for i := range votes {
		votes[i] = 0
	}
	for _, nb := range best {
		w := 1.0
		if kn.Weighted {
			w = 1 / (nb.d + 1e-9)
		}
		votes[kn.train.Label(kn.labeled[nb.seq])] += w
	}
	return votes
}

// Predict returns the (optionally distance-weighted) majority vote among
// the k nearest training instances.
func (kn *KNN) Predict(ds *Dataset, r int) int {
	votes := kn.neighbourVotes(ds, r)
	if len(votes) == 0 {
		return kn.fallback
	}
	return argmax(votes)
}

// Proba returns the normalized vote distribution (freshly allocated; safe
// for callers to retain).
func (kn *KNN) Proba(ds *Dataset, r int) []float64 {
	return normalize(append([]float64(nil), kn.neighbourVotes(ds, r)...))
}
