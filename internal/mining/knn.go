package mining

import (
	"fmt"
	"sort"
)

// KNN is a k-nearest-neighbour classifier over the heterogeneous
// Gower-style distance (scaled numeric difference + nominal mismatch).
// As the lazy-learning representative it is the suite's canary for the
// dimensionality and attribute-noise criteria: every irrelevant or noised
// attribute dilutes its distance function directly, a dependence the E-DIM
// and Phase-1 experiments make visible.
type KNN struct {
	// K is the neighbourhood size (default 5).
	K int
	// Weighted applies 1/(d+eps) distance weighting to votes.
	Weighted bool

	train    *Dataset
	labeled  []int
	ranges   map[int]numericRange
	fallback int
}

// NewKNN returns an unfitted 5-NN.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Name implements Classifier.
func (kn *KNN) Name() string {
	return fmt.Sprintf("%d-nn", kn.k())
}

func (kn *KNN) k() int {
	if kn.K <= 0 {
		return 5
	}
	return kn.K
}

// Fit memorizes the training data and its numeric ranges.
func (kn *KNN) Fit(ds *Dataset) error {
	labeled := ds.LabeledRows()
	if len(labeled) == 0 {
		return fmt.Errorf("knn: no labeled instances")
	}
	kn.train = ds
	kn.labeled = labeled
	kn.ranges = computeRanges(ds)
	kn.fallback = ds.MajorityClass()
	return nil
}

// neighbourVotes returns per-class vote mass for row r of ds.
func (kn *KNN) neighbourVotes(ds *Dataset, r int) []float64 {
	type nd struct {
		row int
		d   float64
	}
	k := kn.k()
	// Selection of k smallest by partial sort over a bounded slice.
	best := make([]nd, 0, k+1)
	for _, tr := range kn.labeled {
		d := heteroDistance(kn.train, tr, ds, r, kn.ranges)
		if len(best) < k {
			best = append(best, nd{tr, d})
			sort.Slice(best, func(a, b int) bool { return best[a].d < best[b].d })
			continue
		}
		if d < best[len(best)-1].d {
			best[len(best)-1] = nd{tr, d}
			sort.Slice(best, func(a, b int) bool { return best[a].d < best[b].d })
		}
	}
	votes := make([]float64, kn.train.NumClasses())
	for _, nb := range best {
		w := 1.0
		if kn.Weighted {
			w = 1 / (nb.d + 1e-9)
		}
		votes[kn.train.Label(nb.row)] += w
	}
	return votes
}

// Predict returns the (optionally distance-weighted) majority vote among
// the k nearest training instances.
func (kn *KNN) Predict(ds *Dataset, r int) int {
	votes := kn.neighbourVotes(ds, r)
	if len(votes) == 0 {
		return kn.fallback
	}
	return argmax(votes)
}

// Proba returns the normalized vote distribution.
func (kn *KNN) Proba(ds *Dataset, r int) []float64 {
	return normalize(kn.neighbourVotes(ds, r))
}
