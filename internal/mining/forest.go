package mining

import (
	"fmt"
	"math"

	"openbi/internal/stats"
)

// RandomForest bags FeatureSample-randomized decision trees over bootstrap
// resamples and classifies by majority vote. It is the suite's
// variance-reduction representative: the Phase-1 grid shows it buying back
// much of the single tree's label-noise fragility, at the price the
// bench harness measures in fit time.
type RandomForest struct {
	// Trees is the ensemble size (default 25).
	Trees int
	// FeatureSample is the per-node attribute sample size; 0 means
	// ceil(sqrt(#attributes)).
	FeatureSample int
	// MaxDepth bounds member depth (default 25).
	MaxDepth int
	// Seed drives bootstrapping and feature sampling.
	Seed int64

	members  []*DecisionTree
	classes  int
	fallback int
}

// NewRandomForest returns an unfitted forest with the given size and seed.
func NewRandomForest(trees int, seed int64) *RandomForest {
	return &RandomForest{Trees: trees, Seed: seed}
}

// Name implements Classifier.
func (rf *RandomForest) Name() string { return "random-forest" }

// Fit grows the ensemble.
func (rf *RandomForest) Fit(ds *Dataset) error {
	labeled := ds.LabeledRows()
	if len(labeled) == 0 {
		return fmt.Errorf("random-forest: no labeled instances")
	}
	if rf.Trees <= 0 {
		rf.Trees = 25
	}
	if rf.MaxDepth <= 0 {
		rf.MaxDepth = 25
	}
	fs := rf.FeatureSample
	if fs <= 0 {
		fs = int(math.Ceil(math.Sqrt(float64(ds.NumAttrs()))))
	}
	rf.classes = ds.NumClasses()
	rf.fallback = ds.MajorityClass()
	rng := stats.NewRand(rf.Seed)

	rf.members = make([]*DecisionTree, 0, rf.Trees)
	for i := 0; i < rf.Trees; i++ {
		// Bootstrap over labeled rows.
		sample := make([]int, len(labeled))
		for k := range sample {
			sample[k] = labeled[rng.Intn(len(labeled))]
		}
		boot := ds.Subset(sample)
		tree := &DecisionTree{
			Criterion:     Gini,
			MaxDepth:      rf.MaxDepth,
			MinLeaf:       1,
			Prune:         false, // bagging replaces pruning
			FeatureSample: fs,
			Seed:          rng.Int63(),
		}
		if err := tree.Fit(boot); err != nil {
			return fmt.Errorf("random-forest: member %d: %w", i, err)
		}
		rf.members = append(rf.members, tree)
	}
	return nil
}

// votes accumulates the member probability mass for row r.
func (rf *RandomForest) votes(ds *Dataset, r int) []float64 {
	out := make([]float64, rf.classes)
	for _, m := range rf.members {
		p := m.Proba(ds, r)
		for c := range out {
			if c < len(p) {
				out[c] += p[c]
			}
		}
	}
	return out
}

// Predict returns the probability-vote winner.
func (rf *RandomForest) Predict(ds *Dataset, r int) int {
	v := rf.votes(ds, r)
	if len(v) == 0 {
		return rf.fallback
	}
	return argmax(v)
}

// Proba returns the normalized ensemble vote distribution.
func (rf *RandomForest) Proba(ds *Dataset, r int) []float64 {
	return normalize(rf.votes(ds, r))
}
