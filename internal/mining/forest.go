package mining

import (
	"fmt"
	"math"
)

// RandomForest bags FeatureSample-randomized decision trees over bootstrap
// resamples and classifies by majority vote. It is the suite's
// variance-reduction representative: the Phase-1 grid shows it buying back
// much of the single tree's label-noise fragility, at the price the
// bench harness measures in fit time.
type RandomForest struct {
	// Trees is the ensemble size (default 25).
	Trees int
	// FeatureSample is the per-node attribute sample size; 0 means
	// ceil(sqrt(#attributes)).
	FeatureSample int
	// MaxDepth bounds member depth (default 25).
	MaxDepth int
	// Seed drives bootstrapping and feature sampling.
	Seed int64

	members  []*DecisionTree
	classes  int
	fallback int
	arena    *Arena
	votesBuf []float64
}

// UseArena implements ArenaUser: bootstrap row samples and the member
// trees' scratch come from a when non-nil. The fitted forest aliases arena
// memory and must be fully consumed before the arena is Reset.
func (rf *RandomForest) UseArena(a *Arena) { rf.arena = a }

// NewRandomForest returns an unfitted forest with the given size and seed.
func NewRandomForest(trees int, seed int64) *RandomForest {
	return &RandomForest{Trees: trees, Seed: seed}
}

// Name implements Classifier.
func (rf *RandomForest) Name() string { return "random-forest" }

// Fit grows the ensemble.
func (rf *RandomForest) Fit(ds *Dataset) error {
	labeled := ds.LabeledRows()
	if len(labeled) == 0 {
		return fmt.Errorf("random-forest: no labeled instances")
	}
	if rf.Trees <= 0 {
		rf.Trees = 25
	}
	if rf.MaxDepth <= 0 {
		rf.MaxDepth = 25
	}
	fs := rf.FeatureSample
	if fs <= 0 {
		fs = int(math.Ceil(math.Sqrt(float64(ds.NumAttrs()))))
	}
	rf.classes = ds.NumClasses()
	rf.fallback = ds.MajorityClass()
	rng := rf.arena.Rand(rf.Seed)
	ds.Index() // one shared presort serves every bootstrap member tree

	rf.members = make([]*DecisionTree, 0, rf.Trees)
	for i := 0; i < rf.Trees; i++ {
		// Bootstrap over labeled rows.
		// Every slot is assigned below, so the handout can skip zeroing.
		sample := rf.arena.IntsRaw(len(labeled))
		for k := range sample {
			sample[k] = labeled[rng.Intn(len(labeled))]
		}
		boot := ds.Subset(sample)
		tree := &DecisionTree{
			Criterion:     Gini,
			MaxDepth:      rf.MaxDepth,
			MinLeaf:       1,
			Prune:         false, // bagging replaces pruning
			FeatureSample: fs,
			Seed:          rng.Int63(),
			arena:         rf.arena,
		}
		if err := tree.Fit(boot); err != nil {
			return fmt.Errorf("random-forest: member %d: %w", i, err)
		}
		rf.members = append(rf.members, tree)
	}
	return nil
}

// votes accumulates the member probability mass for row r into the reused
// vote buffer (valid until the next call on rf). Each member contributes
// its reached leaf's normalized class distribution — the same values its
// Proba copy carried, accumulated without materializing the copy.
func (rf *RandomForest) votes(ds *Dataset, r int) []float64 {
	out := rf.votesBuf
	if len(out) != rf.classes {
		out = make([]float64, rf.classes)
		rf.votesBuf = out
	}
	for c := range out {
		out[c] = 0
	}
	for _, m := range rf.members {
		nd := m.route(ds, r)
		if nd == nil {
			if m.fallback < len(out) {
				out[m.fallback]++
			}
			continue
		}
		s := sum(nd.dist)
		if s == 0 {
			if m.fallback < len(out) {
				out[m.fallback]++
			}
			continue
		}
		for c := range out {
			if c < len(nd.dist) {
				out[c] += nd.dist[c] / s
			}
		}
	}
	return out
}

// Predict returns the probability-vote winner.
func (rf *RandomForest) Predict(ds *Dataset, r int) int {
	v := rf.votes(ds, r)
	if len(v) == 0 {
		return rf.fallback
	}
	return argmax(v)
}

// Proba returns the normalized ensemble vote distribution (a fresh slice).
func (rf *RandomForest) Proba(ds *Dataset, r int) []float64 {
	return normalize(append([]float64(nil), rf.votes(ds, r)...))
}
