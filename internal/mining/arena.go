package mining

import (
	"math/rand"

	"openbi/internal/stats"
)

// Arena is a per-worker scratch allocator with frame semantics: F64, Ints
// and I32 hand out zeroed buffers, Reset reclaims every buffer handed out
// since the previous Reset. Classifiers grab fold-lifetime scratch (node
// distributions, score vectors, shuffle orders) from the worker's arena so
// an experiment grid cell reuses the same handful of allocations across
// all of its folds instead of re-making them per fold.
//
// Buffers are recycled by hand-out position: a call sequence that repeats
// identically after each Reset (the cross-validation case — same
// classifier, same data shape every fold) hits the same slots and
// allocates nothing in steady state. A slot whose buffer is too small is
// simply re-made.
//
// An Arena is single-goroutine state, like the classifiers that use it:
// the experiment runner keys one arena to each worker. A nil *Arena is
// valid everywhere and degrades to plain make, so classifiers outside an
// experiment run need no special casing.
type Arena struct {
	f64             [][]float64
	ints            [][]int
	i32             [][]int32
	ptrs            [][]*treeNode
	rnds            []seededRand
	nf, ni, n32, nr int
	np              int

	// Tree nodes are pooled in fixed-size chunks so handed-out pointers
	// stay valid as the pool grows.
	nodeChunks [][]treeNode
	nodeChunk  int // index of the chunk currently being handed out
	nodeUsed   int // entries handed out from that chunk
}

// seededRand keeps a generator together with its source so the slot can be
// reseeded on reuse (rand.Rand does not expose its source).
type seededRand struct {
	src rand.Source
	rnd *rand.Rand
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// F64 returns a zeroed []float64 of length n, valid until the next Reset.
func (a *Arena) F64(n int) []float64 {
	buf := a.F64Raw(n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// F64Raw is F64 without the zero fill — recycled slots carry stale
// values, so it is only for callers that overwrite (or append over)
// every slot before reading any.
func (a *Arena) F64Raw(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	if a.nf == len(a.f64) {
		a.f64 = append(a.f64, nil)
	}
	buf := a.f64[a.nf]
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	a.f64[a.nf] = buf
	a.nf++
	return buf
}

// Ints returns a zeroed []int of length n, valid until the next Reset.
func (a *Arena) Ints(n int) []int {
	buf := a.IntsRaw(n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// IntsRaw is Ints without the zero fill — recycled slots carry stale
// values, so it is only for callers that overwrite (or append over)
// every slot before reading any.
func (a *Arena) IntsRaw(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	if a.ni == len(a.ints) {
		a.ints = append(a.ints, nil)
	}
	buf := a.ints[a.ni]
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	a.ints[a.ni] = buf
	a.ni++
	return buf
}

// I32 returns a zeroed []int32 of length n, valid until the next Reset.
func (a *Arena) I32(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	if a.n32 == len(a.i32) {
		a.i32 = append(a.i32, nil)
	}
	buf := a.i32[a.n32]
	if cap(buf) < n {
		buf = make([]int32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	a.i32[a.n32] = buf
	a.n32++
	return buf
}

// Node returns a zeroed *treeNode valid until the next Reset. Tree
// induction allocates one node per split or leaf; pooling them removes
// the dominant allocation of a forest fit. Pointers into a chunk remain
// valid as the pool grows (chunks are never reallocated, only appended).
func (a *Arena) Node() *treeNode {
	if a == nil {
		return &treeNode{}
	}
	const chunkSize = 256
	for {
		if a.nodeChunk == len(a.nodeChunks) {
			a.nodeChunks = append(a.nodeChunks, make([]treeNode, chunkSize))
		}
		c := a.nodeChunks[a.nodeChunk]
		if a.nodeUsed < len(c) {
			nd := &c[a.nodeUsed]
			a.nodeUsed++
			*nd = treeNode{}
			return nd
		}
		a.nodeChunk++
		a.nodeUsed = 0
	}
}

// Nodes returns a zeroed []*treeNode of length n (a split node's child
// list), valid until the next Reset.
func (a *Arena) Nodes(n int) []*treeNode {
	if a == nil {
		return make([]*treeNode, n)
	}
	if a.np == len(a.ptrs) {
		a.ptrs = append(a.ptrs, nil)
	}
	buf := a.ptrs[a.np]
	if cap(buf) < n {
		buf = make([]*treeNode, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = nil
	}
	a.ptrs[a.np] = buf
	a.np++
	return buf
}

// Rand returns a *rand.Rand seeded exactly like stats.NewRand(seed),
// recycling the generator's internal state array across Reset cycles —
// a random-forest fit seeds one generator per member tree, and the state
// allocation (not the seeding arithmetic) was pure churn. Reseeding
// reinitializes the source completely, so the slot yields the same number
// sequence a freshly allocated generator would.
func (a *Arena) Rand(seed int64) *rand.Rand {
	if a == nil {
		return stats.NewRand(seed)
	}
	if a.nr == len(a.rnds) {
		a.rnds = append(a.rnds, seededRand{})
	}
	sr := &a.rnds[a.nr]
	a.nr++
	if sr.rnd == nil {
		sr.src = rand.NewSource(seed)
		sr.rnd = rand.New(sr.src)
		return sr.rnd
	}
	sr.src.Seed(seed)
	return sr.rnd
}

// Reset reclaims every buffer handed out since the previous Reset. The
// caller must not read or write previously returned buffers afterwards —
// cross-validation resets only after a fold's fitted classifier is fully
// consumed.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.nf, a.ni, a.n32, a.nr, a.np = 0, 0, 0, 0, 0
	a.nodeChunk, a.nodeUsed = 0, 0
}

// ArenaUser is implemented by classifiers that can draw their scratch
// from a caller-owned arena. The evaluation harness calls UseArena right
// after constructing the classifier, before Fit; classifiers must treat a
// nil arena exactly like having none.
type ArenaUser interface {
	UseArena(*Arena)
}
