package mining

import (
	"fmt"
	"math"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// ZeroR is the majority-class baseline. It anchors every experiment table:
// an algorithm that cannot beat ZeroR on corrupted data has lost all
// signal, which is exactly the failure mode the advisor must steer
// non-expert users away from.
type ZeroR struct {
	majority int
	counts   []int
}

// NewZeroR returns an unfitted ZeroR.
func NewZeroR() *ZeroR { return &ZeroR{} }

// Name implements Classifier.
func (z *ZeroR) Name() string { return "zero-r" }

// Fit memorizes the majority class.
func (z *ZeroR) Fit(ds *Dataset) error {
	if ds.Len() == 0 {
		return fmt.Errorf("zero-r: empty training set")
	}
	z.counts = ds.ClassCounts()
	z.majority = ds.MajorityClass()
	return nil
}

// Predict returns the majority class regardless of the instance.
func (z *ZeroR) Predict(_ *Dataset, _ int) int { return z.majority }

// Proba returns the training class prior.
func (z *ZeroR) Proba(_ *Dataset, _ int) []float64 {
	out := make([]float64, len(z.counts))
	for i, c := range z.counts {
		out[i] = float64(c)
	}
	return normalize(out)
}

// OneR is Holte's 1R: pick the single attribute whose one-level rule set
// has the lowest training error. Numeric attributes are discretized into
// equal-frequency bins. It is the simplest "real" classifier in the suite
// and, per Holte's original result, a surprisingly strong baseline on
// clean low-dimensional data — and brittle on noisy or missing data, which
// the Phase-1 experiments surface.
type OneR struct {
	// Bins is the number of quantile bins for numeric attributes (default 6).
	Bins int

	attr     int       // chosen attribute column
	cuts     []float64 // bin cut points for numeric chosen attribute
	ruleFor  []int     // bin/level code -> class
	missing  int       // class predicted for missing values
	fallback int       // majority class
}

// NewOneR returns an unfitted OneR with default binning.
func NewOneR() *OneR { return &OneR{Bins: 6} }

// Name implements Classifier.
func (o *OneR) Name() string { return "one-r" }

// Fit selects the best single-attribute rule set.
func (o *OneR) Fit(ds *Dataset) error {
	if o.Bins <= 1 {
		o.Bins = 6
	}
	labeled := ds.LabeledRows()
	if len(labeled) == 0 {
		return fmt.Errorf("one-r: no labeled instances")
	}
	o.fallback = ds.MajorityClass()
	k := ds.NumClasses()

	bestErr := math.Inf(1)
	o.attr = -1
	for _, j := range ds.AttrCols() {
		codes, cuts, levels := o.codesFor(ds, j)
		// counts[level][class], plus one extra level for missing.
		counts := make([][]int, levels+1)
		for i := range counts {
			counts[i] = make([]int, k)
		}
		for _, r := range labeled {
			code := codes[r]
			if code < 0 {
				code = levels // missing bucket
			}
			counts[code][ds.Label(r)]++
		}
		errs := 0
		rule := make([]int, levels)
		for lvl := 0; lvl < levels; lvl++ {
			best, total := o.fallback, 0
			for cls, c := range counts[lvl] {
				total += c
				if c > counts[lvl][best] {
					best = cls
				}
			}
			rule[lvl] = best
			errs += total - counts[lvl][best]
		}
		missBest, missTotal := o.fallback, 0
		for cls, c := range counts[levels] {
			missTotal += c
			if c > counts[levels][missBest] {
				missBest = cls
			}
		}
		errs += missTotal - counts[levels][missBest]

		errRate := float64(errs) / float64(len(labeled))
		if errRate < bestErr {
			bestErr = errRate
			o.attr = j
			o.cuts = cuts
			o.ruleFor = rule
			o.missing = missBest
		}
	}
	if o.attr < 0 {
		return fmt.Errorf("one-r: no usable attribute")
	}
	return nil
}

// codesFor maps every row of ds to a discrete code for attribute j,
// returning codes (−1 for missing), numeric cut points (nil for nominal)
// and the number of levels.
func (o *OneR) codesFor(ds *Dataset, j int) (codes []int, cuts []float64, levels int) {
	col := ds.col(j)
	codes = make([]int, ds.Len())
	if col.Kind == table.Nominal {
		for r := range codes {
			codes[r] = col.Cats[ds.row(r)]
		}
		return codes, nil, maxInt(col.NumLevels(), 1)
	}
	nums := ds.Floats(j)
	cuts = make([]float64, o.Bins-1)
	for i := 1; i < o.Bins; i++ {
		cuts[i-1] = stats.Quantile(nums, float64(i)/float64(o.Bins))
	}
	for r := 0; r < ds.Len(); r++ {
		br := ds.row(r)
		if col.IsMissing(br) {
			codes[r] = -1
			continue
		}
		codes[r] = binOf(col.Nums[br], cuts)
	}
	return codes, cuts, o.Bins
}

// Predict applies the learned single-attribute rule.
func (o *OneR) Predict(ds *Dataset, r int) int {
	col, br := ds.col(o.attr), ds.row(r)
	if col.IsMissing(br) {
		return o.missing
	}
	var code int
	if col.Kind == table.Nominal {
		code = col.Cats[br]
	} else {
		code = binOf(col.Nums[br], o.cuts)
	}
	if code < 0 || code >= len(o.ruleFor) {
		return o.fallback
	}
	return o.ruleFor[code]
}

// Attribute returns the name of the selected attribute (after Fit) — the
// user-facing explanation OpenBI shows a citizen.
func (o *OneR) Attribute(ds *Dataset) string { return ds.T.ColumnName(o.attr) }

func binOf(v float64, cuts []float64) int {
	b := 0
	for b < len(cuts) && v > cuts[b] {
		b++
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
