package mining

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// separable builds an easily learnable two-class dataset: class decided by
// x > 0, with a supporting nominal attribute and an irrelevant column.
func separable(n int, seed int64) *Dataset {
	rng := stats.NewRand(seed)
	t := table.New("sep")
	x := table.NewNumericColumn("x")
	color := table.NewNominalColumn("color", "red", "blue", "green")
	irr := table.NewNumericColumn("irr")
	cls := table.NewNominalColumn("class", "neg", "pos")
	for i := 0; i < n; i++ {
		c := i % 2
		x.AppendFloat(float64(2*c-1)*2 + rng.NormFloat64()*0.4)
		if rng.Float64() < 0.8 {
			color.AppendCode(c) // correlated with class
		} else {
			color.AppendCode(2)
		}
		irr.AppendFloat(rng.NormFloat64())
		cls.AppendCode(c)
	}
	t.MustAddColumn(x)
	t.MustAddColumn(color)
	t.MustAddColumn(irr)
	t.MustAddColumn(cls)
	return MustNewDataset(t, 3)
}

// trainAccuracy fits clf on ds and measures its training accuracy.
func trainAccuracy(t *testing.T, clf Classifier, ds *Dataset) float64 {
	t.Helper()
	if err := clf.Fit(ds); err != nil {
		t.Fatalf("%s Fit: %v", clf.Name(), err)
	}
	correct := 0
	for r := 0; r < ds.Len(); r++ {
		if clf.Predict(ds, r) == ds.Label(r) {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

func allClassifiers(seed int64) []Classifier {
	return []Classifier{
		NewZeroR(), NewOneR(), NewNaiveBayes(), NewKNN(5),
		NewC45Tree(), NewCARTTree(), NewRandomForest(10, seed), NewLogistic(seed),
	}
}

func TestEveryClassifierLearnsSeparableData(t *testing.T) {
	ds := separable(300, 1)
	for _, clf := range allClassifiers(7) {
		acc := trainAccuracy(t, clf, ds)
		min := 0.9
		if clf.Name() == "zero-r" {
			min = 0.45 // majority baseline on balanced data
		}
		if acc < min {
			t.Errorf("%s train accuracy = %.3f, want >= %.2f", clf.Name(), acc, min)
		}
	}
}

func TestEveryClassifierHandlesMissingCells(t *testing.T) {
	ds := separable(200, 2)
	rng := stats.NewRand(3)
	tb := ds.Table() // table-backed dataset: this is the live table
	for r := 0; r < ds.Len(); r++ {
		for _, j := range ds.AttrCols() {
			if rng.Float64() < 0.2 {
				tb.SetMissing(r, j)
			}
		}
	}
	for _, clf := range allClassifiers(7) {
		acc := trainAccuracy(t, clf, ds)
		if acc < 0.4 {
			t.Errorf("%s collapsed on missing data: %.3f", clf.Name(), acc)
		}
	}
}

func TestEveryClassifierRejectsEmptyTraining(t *testing.T) {
	empty := separable(10, 1).Subset(nil)
	for _, clf := range allClassifiers(1) {
		if err := clf.Fit(empty); err == nil {
			t.Errorf("%s accepted an empty training set", clf.Name())
		}
	}
}

func TestProbaSumsToOne(t *testing.T) {
	ds := separable(150, 4)
	for _, clf := range allClassifiers(9) {
		prob, ok := clf.(ProbClassifier)
		if !ok {
			continue
		}
		if err := clf.Fit(ds); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 20; r++ {
			p := prob.Proba(ds, r)
			sum := 0.0
			for _, v := range p {
				if v < -1e-9 {
					t.Fatalf("%s negative probability %v", clf.Name(), p)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("%s Proba sums to %v", clf.Name(), sum)
			}
		}
	}
}

func TestPredictionsMatchArgmaxProba(t *testing.T) {
	ds := separable(150, 4)
	for _, clf := range allClassifiers(9) {
		prob, ok := clf.(ProbClassifier)
		if !ok {
			continue
		}
		if err := clf.Fit(ds); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 30; r++ {
			p := prob.Proba(ds, r)
			pred := clf.Predict(ds, r)
			if p[pred] < p[argmax(p)]-1e-9 {
				t.Fatalf("%s Predict disagrees with Proba argmax at row %d", clf.Name(), r)
			}
		}
	}
}

func TestZeroRMajority(t *testing.T) {
	ds := separable(100, 1)
	// Make "pos" (code 1) the clear majority.
	keep := []int{}
	for r := 0; r < ds.Len(); r++ {
		if ds.Label(r) == 1 || r%4 == 0 {
			keep = append(keep, r)
		}
	}
	sub := ds.Subset(keep)
	z := NewZeroR()
	if err := z.Fit(sub); err != nil {
		t.Fatal(err)
	}
	if z.Predict(sub, 0) != 1 {
		t.Fatal("ZeroR should predict the majority class")
	}
}

func TestOneRSelectsInformativeAttribute(t *testing.T) {
	ds := separable(300, 5)
	o := NewOneR()
	if err := o.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if got := o.Attribute(ds); got != "x" && got != "color" {
		t.Fatalf("OneR chose %q, want an informative attribute", got)
	}
}

func TestNaiveBayesRobustToMissingAtPredict(t *testing.T) {
	ds := separable(200, 6)
	nb := NewNaiveBayes()
	if err := nb.Fit(ds); err != nil {
		t.Fatal(err)
	}
	// Materialize the subset so it can be mutated without touching ds.
	probeT := ds.Subset([]int{0, 1, 2, 3}).Table()
	for j := 0; j < probeT.NumCols(); j++ {
		if j == ds.ClassCol {
			continue
		}
		for r := 0; r < probeT.NumRows(); r++ {
			probeT.SetMissing(r, j)
		}
	}
	probe := MustNewDataset(probeT, ds.ClassCol)
	// All attributes missing: prediction must fall back to the prior
	// without panicking, and Proba must stay a distribution.
	for r := 0; r < probe.Len(); r++ {
		p := nb.Proba(probe, r)
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("prior fallback distribution sums to %v", sum)
		}
	}
}

func TestKNNWeightedBeatsOrEqualsPlainOnNoisyBoundary(t *testing.T) {
	ds := separable(200, 8)
	plain := &KNN{K: 5}
	weighted := &KNN{K: 5, Weighted: true}
	accP := trainAccuracy(t, plain, ds)
	accW := trainAccuracy(t, weighted, ds)
	if accW < accP-0.05 {
		t.Fatalf("weighted kNN much worse than plain: %v vs %v", accW, accP)
	}
}

func TestKNNNames(t *testing.T) {
	if NewKNN(3).Name() != "3-nn" {
		t.Fatal("kNN name wrong")
	}
	if (&KNN{}).Name() != "5-nn" {
		t.Fatal("default kNN name wrong")
	}
}

func TestDecisionTreeIgnoresIrrelevantAttribute(t *testing.T) {
	ds := separable(400, 9)
	dt := NewC45Tree()
	if err := dt.Fit(ds); err != nil {
		t.Fatal(err)
	}
	dump := dt.Dump(ds)
	if strings.Contains(dump, "irr") {
		t.Fatalf("pruned tree split on the irrelevant attribute:\n%s", dump)
	}
}

func TestDecisionTreeDumpShape(t *testing.T) {
	ds := separable(200, 10)
	dt := NewC45Tree()
	if err := dt.Fit(ds); err != nil {
		t.Fatal(err)
	}
	dump := dt.Dump(ds)
	if !strings.Contains(dump, "->") {
		t.Fatalf("dump has no leaves:\n%s", dump)
	}
	if dt.Leaves() < 2 {
		t.Fatalf("tree did not split: %d leaves", dt.Leaves())
	}
	if dt.Depth() < 1 {
		t.Fatal("tree depth 0 after split")
	}
}

func TestDecisionTreeMaxDepthRespected(t *testing.T) {
	ds := separable(400, 11)
	dt := &DecisionTree{Criterion: GainRatio, MaxDepth: 1, MinLeaf: 1}
	if err := dt.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if dt.Depth() > 1 {
		t.Fatalf("depth = %d, want <= 1", dt.Depth())
	}
}

func TestPruningShrinksNoisyTree(t *testing.T) {
	// Label noise: pruned tree must be no larger than unpruned.
	ds := separable(400, 12)
	rng := stats.NewRand(13)
	cls := ds.Class()
	for r := 0; r < ds.Len(); r++ {
		if rng.Float64() < 0.25 {
			cls.Cats[r] = 1 - cls.Cats[r]
		}
	}
	unpruned := &DecisionTree{Criterion: GainRatio, Prune: false}
	pruned := &DecisionTree{Criterion: GainRatio, Prune: true}
	if err := unpruned.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := pruned.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if pruned.Leaves() > unpruned.Leaves() {
		t.Fatalf("pruned leaves %d > unpruned %d", pruned.Leaves(), unpruned.Leaves())
	}
	if pruned.Leaves() >= unpruned.Leaves() && unpruned.Leaves() > 4 {
		// Expect a strict reduction on this much noise.
		t.Fatalf("pruning did nothing: %d vs %d", pruned.Leaves(), unpruned.Leaves())
	}
}

func TestCARTAndC45Differ(t *testing.T) {
	if NewC45Tree().Name() != "c45" || NewCARTTree().Name() != "cart" {
		t.Fatal("tree names wrong")
	}
	if NewC45Tree().Criterion != GainRatio || NewCARTTree().Criterion != Gini {
		t.Fatal("tree criteria wrong")
	}
}

func TestRandomForestDeterministicGivenSeed(t *testing.T) {
	ds := separable(200, 14)
	a := NewRandomForest(8, 5)
	b := NewRandomForest(8, 5)
	if err := a.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ds.Len(); r++ {
		if a.Predict(ds, r) != b.Predict(ds, r) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestLogisticLearnsLinearBoundary(t *testing.T) {
	ds := separable(300, 15)
	lg := NewLogistic(1)
	if acc := trainAccuracy(t, lg, ds); acc < 0.93 {
		t.Fatalf("logistic accuracy = %v on linearly separable data", acc)
	}
}

func TestDatasetValidation(t *testing.T) {
	tb := table.New("t")
	x := table.NewNumericColumn("x")
	x.AppendFloat(1)
	tb.MustAddColumn(x)
	if _, err := NewDataset(tb, 0); err == nil {
		t.Fatal("numeric class should be rejected")
	}
	if _, err := NewDataset(tb, 5); err == nil {
		t.Fatal("out-of-range class should be rejected")
	}
	if _, err := NewDatasetByName(tb, "nope"); err == nil {
		t.Fatal("unknown class name should be rejected")
	}
}

func TestDatasetLabeledRowsSkipsMissing(t *testing.T) {
	ds := separable(10, 16)
	ds.Class().SetMissing(3)
	ds.Class().SetMissing(7)
	if got := len(ds.LabeledRows()); got != 8 {
		t.Fatalf("labeled rows = %d, want 8", got)
	}
}

func TestRegistryLookup(t *testing.T) {
	names := SuiteNames()
	if len(names) != 8 {
		t.Fatalf("suite size = %d, want 8", len(names))
	}
	for _, n := range names {
		f, err := Lookup(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := f().Name(); got != n {
			t.Fatalf("factory name %q != registry name %q", got, n)
		}
	}
	if _, err := Lookup("nonsense", 1); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

// Property: tree predictions are always valid class codes.
func TestTreePredictionsValidProperty(t *testing.T) {
	ds := separable(120, 17)
	dt := NewCARTTree()
	if err := dt.Fit(ds); err != nil {
		t.Fatal(err)
	}
	f := func(row uint8) bool {
		r := int(row) % ds.Len()
		p := dt.Predict(ds, r)
		return p >= 0 && p < ds.NumClasses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
