package mining

import (
	"math"
	"sort"
	"testing"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// naiveNeighbourVotes is the pre-kernel reference implementation: compute
// heteroDistance per candidate, stable-sort ALL candidates by distance
// (training order breaks ties), take the first k, and accumulate votes in
// that order. The heap kernel must reproduce it bit for bit.
func naiveNeighbourVotes(kn *KNN, ds *Dataset, r int) []float64 {
	ranges := computeRanges(kn.train)
	type nd struct {
		row int
		d   float64
	}
	all := make([]nd, 0, len(kn.labeled))
	for _, tr := range kn.labeled {
		all = append(all, nd{row: tr, d: heteroDistance(ds, r, kn.train, tr, ranges)})
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].d < all[j].d })
	k := kn.k()
	if k > len(all) {
		k = len(all)
	}
	votes := make([]float64, kn.train.NumClasses())
	for _, nb := range all[:k] {
		w := 1.0
		if kn.Weighted {
			w = 1 / (nb.d + 1e-9)
		}
		votes[kn.train.Label(nb.row)] += w
	}
	return votes
}

// tieProneDataset builds a random mixed dataset whose numeric values are
// quantized onto a small grid and whose nominal columns have few levels, so
// exact distance ties between distinct candidates are common, plus ~15%
// missing cells and one constant (span 0) column.
func tieProneDataset(seed int64, rows int) *Dataset {
	rng := stats.NewRand(seed)
	t := table.New("ties")
	n1 := table.NewNumericColumn("n1")
	n2 := table.NewNumericColumn("n2")
	cn := table.NewNumericColumn("const")
	c1 := table.NewNominalColumn("c1", "a", "b", "c")
	cls := table.NewNominalColumn("class", "x", "y", "z")
	for i := 0; i < rows; i++ {
		n1.AppendFloat(float64(rng.Intn(4))) // quantized → ties
		n2.AppendFloat(float64(rng.Intn(3)))
		cn.AppendFloat(7) // constant column: span 0
		c1.AppendCode(rng.Intn(3))
		cls.AppendCode(rng.Intn(3))
	}
	t.MustAddColumn(n1)
	t.MustAddColumn(n2)
	t.MustAddColumn(cn)
	t.MustAddColumn(c1)
	t.MustAddColumn(cls)
	for r := 0; r < rows; r++ {
		for j := 0; j < 4; j++ {
			if rng.Float64() < 0.15 {
				t.SetMissing(r, j)
			}
		}
	}
	return MustNewDataset(t, 4)
}

// TestKNNHeapKernelMatchesNaiveFullSort pits the heap-selection kernel
// against the stable full-sort reference over random tie-heavy datasets,
// table-backed and view-backed, weighted and unweighted, for several k.
// Votes must match exactly (==, not within epsilon).
func TestKNNHeapKernelMatchesNaiveFullSort(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		full := tieProneDataset(seed, 80)
		// A view-backed training subset with shuffled, partially repeated rows
		// exercises the row-indirection path of the kernel.
		rng := stats.NewRand(seed + 100)
		sub := make([]int, 60)
		for i := range sub {
			sub[i] = rng.Intn(full.Len())
		}
		for _, train := range []*Dataset{full, full.Subset(sub)} {
			for _, k := range []int{1, 3, 5, 12} {
				for _, weighted := range []bool{false, true} {
					kn := NewKNN(k)
					kn.Weighted = weighted
					if err := kn.Fit(train); err != nil {
						t.Fatalf("seed %d: Fit: %v", seed, err)
					}
					for r := 0; r < full.Len(); r++ {
						got := append([]float64(nil), kn.neighbourVotes(full, r)...)
						want := naiveNeighbourVotes(kn, full, r)
						for c := range want {
							if got[c] != want[c] {
								t.Fatalf("seed %d k=%d weighted=%v row %d: votes %v, reference %v",
									seed, k, weighted, r, got, want)
							}
						}
						if g, w := kn.Predict(full, r), argmax(want); g != w {
							t.Fatalf("seed %d k=%d weighted=%v row %d: Predict %d, reference %d",
								seed, k, weighted, r, g, w)
						}
					}
				}
			}
		}
	}
}

// TestKNNKernelDistancesMatchHeteroDistance checks the attribute-major
// distance accumulation against the per-candidate heteroDistance walk.
func TestKNNKernelDistancesMatchHeteroDistance(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		ds := tieProneDataset(seed, 60)
		kn := NewKNN(5)
		if err := kn.Fit(ds); err != nil {
			t.Fatal(err)
		}
		ranges := computeRanges(ds)
		for r := 0; r < ds.Len(); r++ {
			dist := kn.distances(ds, r)
			for i, tr := range kn.labeled {
				want := heteroDistance(ds, r, ds, tr, ranges)
				if dist[i] != want && !(math.IsNaN(dist[i]) && math.IsNaN(want)) {
					t.Fatalf("seed %d row %d cand %d: kernel %v, heteroDistance %v",
						seed, r, i, dist[i], want)
				}
			}
		}
	}
}
