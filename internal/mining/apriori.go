package mining

import (
	"fmt"
	"sort"
	"strings"

	"openbi/internal/table"
)

// Item is one attribute=value condition over nominal columns.
type Item struct {
	Col   int // column index
	Level int // nominal level code
}

// Rule is an association rule X => Y with its standard quality measures.
// Berti-Equille's rule-quality programme [2] is the paper's related-work
// anchor for measuring mined-pattern quality; Support/Confidence/Lift are
// the measures the kb layer records for association experiments.
type Rule struct {
	Antecedent []Item
	Consequent Item
	Support    float64 // P(X ∪ Y)
	Confidence float64 // P(Y | X)
	Lift       float64 // Confidence / P(Y)
}

// Apriori mines association rules over the nominal columns of a table
// with the classic level-wise frequent-itemset algorithm.
type Apriori struct {
	// MinSupport is the minimum itemset support in (0,1] (default 0.1).
	MinSupport float64
	// MinConfidence is the minimum rule confidence (default 0.6).
	MinConfidence float64
	// MaxLen bounds itemset length (default 4).
	MaxLen int

	// FrequentItemsets counts the frequent itemsets found, per level.
	FrequentItemsets []int
}

// NewApriori returns an Apriori miner with conventional thresholds.
func NewApriori() *Apriori {
	return &Apriori{MinSupport: 0.1, MinConfidence: 0.6, MaxLen: 4}
}

// Mine returns all rules meeting the thresholds, sorted by descending
// confidence then support (deterministic). t may be a concrete table or a
// zero-copy view.
func (ap *Apriori) Mine(t table.Access) ([]Rule, error) {
	if ap.MinSupport <= 0 || ap.MinSupport > 1 {
		return nil, fmt.Errorf("apriori: MinSupport %.3f out of (0,1]", ap.MinSupport)
	}
	if ap.MaxLen <= 1 {
		ap.MaxLen = 4
	}
	rows := t.NumRows()
	if rows == 0 {
		return nil, fmt.Errorf("apriori: empty table")
	}
	nominal := t.NominalColumnIndices()
	if len(nominal) == 0 {
		return nil, fmt.Errorf("apriori: table has no nominal columns")
	}

	// Transactions: the set of items present per row.
	txns := make([][]Item, rows)
	for r := 0; r < rows; r++ {
		for _, j := range nominal {
			if t.IsMissing(r, j) {
				continue
			}
			txns[r] = append(txns[r], Item{Col: j, Level: t.Cat(r, j)})
		}
	}

	minCount := int(ap.MinSupport * float64(rows))
	if minCount < 1 {
		minCount = 1
	}

	// Level 1.
	counts := map[string]int{}
	itemOf := map[string][]Item{}
	for _, tx := range txns {
		for _, it := range tx {
			k := itemsetKey([]Item{it})
			counts[k]++
			itemOf[k] = []Item{it}
		}
	}
	frequent := map[string]int{}
	var current []string
	for k, c := range counts {
		if c >= minCount {
			frequent[k] = c
			current = append(current, k)
		}
	}
	sort.Strings(current)
	ap.FrequentItemsets = []int{len(current)}

	allFrequent := map[string]int{}
	for k, c := range frequent {
		allFrequent[k] = c
	}

	// Level-wise expansion.
	for level := 2; level <= ap.MaxLen && len(current) > 1; level++ {
		candidates := map[string][]Item{}
		for i := 0; i < len(current); i++ {
			for j := i + 1; j < len(current); j++ {
				// current is sorted by string key, which need not agree
				// with item order, so try the join both ways.
				merged, ok := joinItemsets(itemOf[current[i]], itemOf[current[j]], level)
				if !ok {
					merged, ok = joinItemsets(itemOf[current[j]], itemOf[current[i]], level)
				}
				if !ok {
					continue
				}
				candidates[itemsetKey(merged)] = merged
			}
		}
		if len(candidates) == 0 {
			break
		}
		levelCounts := map[string]int{}
		for _, tx := range txns {
			for k, items := range candidates {
				if containsAll(tx, items) {
					levelCounts[k]++
				}
			}
		}
		current = current[:0]
		next := map[string][]Item{}
		for k, c := range levelCounts {
			if c >= minCount {
				allFrequent[k] = c
				next[k] = candidates[k]
				current = append(current, k)
			}
		}
		sort.Strings(current)
		itemOf = next
		ap.FrequentItemsets = append(ap.FrequentItemsets, len(current))
		if len(current) == 0 {
			break
		}
	}

	// Rule generation: for every frequent itemset of size >= 2, emit rules
	// with a single-item consequent (the classification-rule shape OpenBI
	// explains to users).
	itemSupport := func(items []Item) (int, bool) {
		c, ok := allFrequent[itemsetKey(items)]
		return c, ok
	}
	var rules []Rule
	for k, cnt := range allFrequent {
		items := parseItemsetKey(k)
		if len(items) < 2 {
			continue
		}
		for i := range items {
			conseq := items[i]
			antecedent := make([]Item, 0, len(items)-1)
			antecedent = append(antecedent, items[:i]...)
			antecedent = append(antecedent, items[i+1:]...)
			antCount, ok := itemSupport(antecedent)
			if !ok || antCount == 0 {
				continue
			}
			conf := float64(cnt) / float64(antCount)
			if conf < ap.MinConfidence {
				continue
			}
			conseqCount, ok := itemSupport([]Item{conseq})
			lift := 0.0
			if ok && conseqCount > 0 {
				lift = conf / (float64(conseqCount) / float64(rows))
			}
			rules = append(rules, Rule{
				Antecedent: antecedent,
				Consequent: conseq,
				Support:    float64(cnt) / float64(rows),
				Confidence: conf,
				Lift:       lift,
			})
		}
	}
	sort.Slice(rules, func(a, b int) bool {
		if rules[a].Confidence != rules[b].Confidence {
			return rules[a].Confidence > rules[b].Confidence
		}
		if rules[a].Support != rules[b].Support {
			return rules[a].Support > rules[b].Support
		}
		return ruleKey(rules[a]) < ruleKey(rules[b])
	})
	return rules, nil
}

// Format renders a rule with human-readable attribute=value conditions.
func (r Rule) Format(t table.Access) string {
	parts := make([]string, len(r.Antecedent))
	for i, it := range r.Antecedent {
		parts[i] = itemString(t, it)
	}
	return fmt.Sprintf("%s => %s (sup=%.2f conf=%.2f lift=%.2f)",
		strings.Join(parts, " & "), itemString(t, r.Consequent),
		r.Support, r.Confidence, r.Lift)
}

func itemString(t table.Access, it Item) string {
	return fmt.Sprintf("%s=%s", t.ColumnName(it.Col), t.Label(it.Col, it.Level))
}

// joinItemsets merges two sorted (k-1)-itemsets sharing a (k-2) prefix into
// a k-itemset, rejecting merges with duplicate columns (one row cannot
// have two values of the same attribute).
func joinItemsets(a, b []Item, k int) ([]Item, bool) {
	if len(a) != k-1 || len(b) != k-1 {
		return nil, false
	}
	for i := 0; i < k-2; i++ {
		if a[i] != b[i] {
			return nil, false
		}
	}
	last1, last2 := a[k-2], b[k-2]
	if !lessItem(last1, last2) {
		return nil, false
	}
	merged := append(append([]Item(nil), a...), last2)
	seen := map[int]bool{}
	for _, it := range merged {
		if seen[it.Col] {
			return nil, false
		}
		seen[it.Col] = true
	}
	return merged, true
}

func lessItem(a, b Item) bool {
	if a.Col != b.Col {
		return a.Col < b.Col
	}
	return a.Level < b.Level
}

func containsAll(tx []Item, items []Item) bool {
	for _, want := range items {
		found := false
		for _, have := range tx {
			if have == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func itemsetKey(items []Item) string {
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return lessItem(sorted[i], sorted[j]) })
	parts := make([]string, len(sorted))
	for i, it := range sorted {
		parts[i] = fmt.Sprintf("%d:%d", it.Col, it.Level)
	}
	return strings.Join(parts, ",")
}

func parseItemsetKey(k string) []Item {
	parts := strings.Split(k, ",")
	out := make([]Item, len(parts))
	for i, p := range parts {
		var col, lvl int
		fmt.Sscanf(p, "%d:%d", &col, &lvl)
		out[i] = Item{Col: col, Level: lvl}
	}
	return out
}

// ruleKey totally orders rules: the consequent participates separately so
// that the several rules generated from one frequent itemset (same items,
// different consequent) still compare deterministically.
func ruleKey(r Rule) string {
	return itemsetKey(r.Antecedent) + "=>" + fmt.Sprintf("%d:%d", r.Consequent.Col, r.Consequent.Level)
}
