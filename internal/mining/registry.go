package mining

import (
	"fmt"
	"sort"

	"openbi/internal/oberr"
)

// StandardSuite returns the classifier factories the experiment harness
// and advisor arbitrate between, keyed by registry name. This is the
// "ALGORITHM 1 ... ALGORITHM N" box of Figure 2. Seeds are derived from
// the supplied base seed so the whole suite is reproducible.
func StandardSuite(seed int64) map[string]Factory {
	return map[string]Factory{
		"zero-r":        func() Classifier { return NewZeroR() },
		"one-r":         func() Classifier { return NewOneR() },
		"naive-bayes":   func() Classifier { return NewNaiveBayes() },
		"5-nn":          func() Classifier { return NewKNN(5) },
		"c45":           func() Classifier { return NewC45Tree() },
		"cart":          func() Classifier { return NewCARTTree() },
		"random-forest": func() Classifier { return NewRandomForest(25, seed) },
		"logistic":      func() Classifier { return NewLogistic(seed + 1) },
	}
}

// SuiteNames returns the registry names of StandardSuite in deterministic
// (sorted) order; experiment tables iterate in this order.
func SuiteNames() []string {
	names := make([]string, 0, 8)
	for name := range StandardSuite(0) {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup resolves a registry name. A miss returns an error matching
// oberr.ErrUnknownAlgorithm whose oberr.UnknownAlgorithmError detail lists
// the valid names (the CLI surfaces this to users).
func Lookup(name string, seed int64) (Factory, error) {
	suite := StandardSuite(seed)
	if f, ok := suite[name]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("mining: %w", &oberr.UnknownAlgorithmError{Name: name, Known: SuiteNames()})
}
