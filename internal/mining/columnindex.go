package mining

import (
	"math"
	"slices"

	"openbi/internal/table"
)

// ColumnIndex presorts each numeric attribute of a dataset's backing table
// once: per base column, the non-missing base-row indices in ascending
// value order (ties by base row). Decision-tree split search walks this
// shared order with a per-node membership filter instead of re-sorting the
// node's rows at every (node × attribute), and because the index lives at
// the base-table level one build serves every fold split, every bootstrap
// resample, and every forest tree of an experiment cell.
//
// A ColumnIndex is immutable after construction and therefore safe to
// share across concurrent workers; Dataset.Index builds it at most once
// per dataset and Subset propagates it to children over the same base.
type ColumnIndex struct {
	base   *table.Table
	orders map[int][]int32 // base column index → sorted non-missing base rows
}

// order returns the presorted base rows of base column bj, or nil when the
// column is not indexed (nominal, or outside the indexed attribute set).
func (ci *ColumnIndex) order(bj int) []int32 {
	if ci == nil {
		return nil
	}
	return ci.orders[bj]
}

// buildColumnIndex sorts every numeric attribute column of d's base table.
func buildColumnIndex(d *Dataset) *ColumnIndex {
	ci := &ColumnIndex{base: d.base, orders: make(map[int][]int32)}
	for _, j := range d.attrCols {
		col := d.col(j)
		if col.Kind != table.Numeric {
			continue
		}
		bj := j
		if d.colIx != nil {
			bj = d.colIx[j]
		}
		if _, ok := ci.orders[bj]; ok {
			continue
		}
		nums := col.Nums
		order := make([]int32, 0, len(nums))
		for r, v := range nums {
			if !math.IsNaN(v) {
				order = append(order, int32(r))
			}
		}
		slices.SortFunc(order, func(a, b int32) int {
			va, vb := nums[a], nums[b]
			switch {
			case va < vb:
				return -1
			case va > vb:
				return 1
			}
			return int(a - b)
		})
		ci.orders[bj] = order
	}
	return ci
}

// Index returns the dataset's presorted numeric column index, building it
// on first use. Safe for concurrent callers; experiment cells build it
// eagerly before fanning tasks out so workers only ever read it.
func (d *Dataset) Index() *ColumnIndex {
	d.indexMu.Lock()
	defer d.indexMu.Unlock()
	if d.indexCache == nil || d.indexCache.base != d.base {
		d.indexCache = buildColumnIndex(d)
	}
	return d.indexCache
}

// indexed reports whether indexOrder can currently return presorted
// orders for this dataset — a built index over the dataset's own base.
func (d *Dataset) indexed() bool {
	if disableIndexWalk {
		return false
	}
	d.indexMu.Lock()
	ci := d.indexCache
	d.indexMu.Unlock()
	return ci != nil && ci.base == d.base
}

// baseRows returns the number of rows of the dataset's backing table —
// the domain of the base-row indices presorted orders are expressed in.
func (d *Dataset) baseRows() int { return d.base.NumRows() }

// disableIndexWalk is a testing hook: when set, indexOrder reports no
// index so split search always takes the gather+sort path. Equivalence
// tests induce trees both ways and require identical structure.
var disableIndexWalk bool

// indexOrder returns the presorted base rows for attribute column j (a
// dataset-relative index), or nil when no index has been built for this
// dataset's base — callers fall back to their unindexed path.
func (d *Dataset) indexOrder(j int) []int32 {
	if disableIndexWalk {
		return nil
	}
	d.indexMu.Lock()
	ci := d.indexCache
	d.indexMu.Unlock()
	if ci == nil || ci.base != d.base {
		return nil
	}
	bj := j
	if d.colIx != nil {
		bj = d.colIx[j]
	}
	return ci.order(bj)
}
