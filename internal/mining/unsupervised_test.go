package mining

import (
	"strings"
	"testing"

	"openbi/internal/stats"
	"openbi/internal/table"
)

// blobs builds three well-separated Gaussian blobs in 2-D.
func blobs(perCluster int, seed int64) *table.Table {
	rng := stats.NewRand(seed)
	t := table.New("blobs")
	x := table.NewNumericColumn("x")
	y := table.NewNumericColumn("y")
	centers := [][2]float64{{0, 0}, {10, 10}, {-10, 10}}
	for _, c := range centers {
		for i := 0; i < perCluster; i++ {
			x.AppendFloat(c[0] + rng.NormFloat64()*0.5)
			y.AppendFloat(c[1] + rng.NormFloat64()*0.5)
		}
	}
	t.MustAddColumn(x)
	t.MustAddColumn(y)
	return t
}

func TestKMeansRecoversBlobs(t *testing.T) {
	tb := blobs(50, 1)
	km := NewKMeans(3, 7)
	if err := km.Fit(tb); err != nil {
		t.Fatal(err)
	}
	// Every blob's 50 points must share a cluster; different blobs differ.
	first := make([]int, 3)
	for b := 0; b < 3; b++ {
		first[b] = km.Assign(tb, b*50)
		for i := 0; i < 50; i++ {
			if km.Assign(tb, b*50+i) != first[b] {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
	if first[0] == first[1] || first[1] == first[2] || first[0] == first[2] {
		t.Fatalf("blobs merged: %v", first)
	}
}

func TestKMeansInertiaDropsWithK(t *testing.T) {
	tb := blobs(40, 2)
	km1 := NewKMeans(1, 3)
	km3 := NewKMeans(3, 3)
	if err := km1.Fit(tb); err != nil {
		t.Fatal(err)
	}
	if err := km3.Fit(tb); err != nil {
		t.Fatal(err)
	}
	if km3.Inertia >= km1.Inertia {
		t.Fatalf("inertia k=3 (%v) not below k=1 (%v)", km3.Inertia, km1.Inertia)
	}
}

func TestKMeansValidation(t *testing.T) {
	tb := blobs(2, 1)
	if err := NewKMeans(0, 1).Fit(tb); err == nil {
		t.Fatal("K=0 should error")
	}
	if err := NewKMeans(100, 1).Fit(tb); err == nil {
		t.Fatal("K > rows should error")
	}
	nom := table.New("nom")
	c := table.NewNominalColumn("c", "a")
	c.AppendCode(0)
	nom.MustAddColumn(c)
	if err := NewKMeans(1, 1).Fit(nom); err == nil {
		t.Fatal("numeric-less table should error")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	tb := blobs(30, 4)
	a, b := NewKMeans(3, 11), NewKMeans(3, 11)
	if err := a.Fit(tb); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(tb); err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Fatal("same seed, different inertia")
	}
}

// basket builds the classic transactional fixture: bread+butter implies milk.
func basket() *table.Table {
	t := table.New("basket")
	bread := table.NewNominalColumn("bread", "no", "yes")
	butter := table.NewNominalColumn("butter", "no", "yes")
	milk := table.NewNominalColumn("milk", "no", "yes")
	rows := [][3]int{
		{1, 1, 1}, {1, 1, 1}, {1, 1, 1}, {1, 0, 0}, {0, 1, 0},
		{1, 1, 1}, {0, 0, 0}, {1, 1, 1}, {0, 1, 1}, {1, 0, 1},
	}
	for _, r := range rows {
		bread.AppendCode(r[0])
		butter.AppendCode(r[1])
		milk.AppendCode(r[2])
	}
	t.MustAddColumn(bread)
	t.MustAddColumn(butter)
	t.MustAddColumn(milk)
	return t
}

func TestAprioriFindsExpectedRule(t *testing.T) {
	tb := basket()
	ap := NewApriori()
	ap.MinSupport = 0.3
	ap.MinConfidence = 0.8
	rules, err := ap.Mine(tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules found")
	}
	found := false
	for _, r := range rules {
		s := r.Format(tb)
		if strings.Contains(s, "bread=yes") && strings.Contains(s, "butter=yes") &&
			strings.Contains(s, "=> milk=yes") {
			found = true
			if r.Confidence != 1 {
				t.Fatalf("bread&butter=>milk confidence = %v, want 1 (5/5)", r.Confidence)
			}
			if r.Lift <= 1 {
				t.Fatalf("lift = %v, want > 1", r.Lift)
			}
		}
	}
	if !found {
		for _, r := range rules {
			t.Log(r.Format(tb))
		}
		t.Fatal("expected rule bread=yes & butter=yes => milk=yes")
	}
}

func TestAprioriSupportMonotone(t *testing.T) {
	tb := basket()
	ap := NewApriori()
	ap.MinSupport = 0.2
	ap.MinConfidence = 0.0001
	rules, err := ap.Mine(tb)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Support < 0.2-1e-9 {
			t.Fatalf("rule below min support: %v", r.Format(tb))
		}
		if r.Confidence < r.Support-1e-9 {
			t.Fatalf("confidence < support is impossible: %v", r.Format(tb))
		}
	}
	// Frequent itemset counts decrease (or stay flat) per level.
	for i := 1; i < len(ap.FrequentItemsets); i++ {
		if ap.FrequentItemsets[i] > ap.FrequentItemsets[i-1]*3 {
			t.Fatalf("itemset counts exploded: %v", ap.FrequentItemsets)
		}
	}
}

func TestAprioriRulesSorted(t *testing.T) {
	tb := basket()
	ap := NewApriori()
	ap.MinSupport = 0.2
	ap.MinConfidence = 0.3
	rules, err := ap.Mine(tb)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence+1e-12 {
			t.Fatal("rules not sorted by confidence")
		}
	}
}

func TestAprioriValidation(t *testing.T) {
	tb := basket()
	ap := NewApriori()
	ap.MinSupport = 0
	if _, err := ap.Mine(tb); err == nil {
		t.Fatal("MinSupport 0 should error")
	}
	num := table.New("num")
	x := table.NewNumericColumn("x")
	x.AppendFloat(1)
	num.MustAddColumn(x)
	ap2 := NewApriori()
	if _, err := ap2.Mine(num); err == nil {
		t.Fatal("nominal-less table should error")
	}
}

func TestAprioriDeterministic(t *testing.T) {
	tb := basket()
	mine := func() string {
		ap := NewApriori()
		ap.MinSupport = 0.2
		ap.MinConfidence = 0.5
		rules, err := ap.Mine(tb)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, r := range rules {
			b.WriteString(r.Format(tb))
			b.WriteByte('\n')
		}
		return b.String()
	}
	if mine() != mine() {
		t.Fatal("Apriori output not deterministic")
	}
}
