//go:build !unix

package experiment

import "os"

// lockJournal is a no-op where advisory file locks are unavailable; on
// these platforms not sharing a live checkpoint directory between
// concurrent runs is the operator's responsibility.
func lockJournal(*os.File) error { return nil }
