package experiment

import (
	"context"
	"fmt"
	"sort"

	"openbi/internal/dq"
	"openbi/internal/eval"
	"openbi/internal/inject"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/stats"
)

// ValidationResult summarizes the advisor-validation experiment (F2-ADV):
// on freshly corrupted held-out datasets, how often does the knowledge
// base's recommendation match the empirically best algorithm?
type ValidationResult struct {
	Trials int `json:"trials"`
	// Top1Hits counts trials where the advised algorithm was empirically
	// best; Top2Hits where it was in the empirical top two.
	Top1Hits int `json:"top1Hits"`
	Top2Hits int `json:"top2Hits"`
	// MeanRegret is the mean kappa gap between the empirically best
	// algorithm and the advised one (0 = perfect advice).
	MeanRegret float64 `json:"meanRegret"`
	// StaticRegret is the same regret for the best static policy (always
	// using the single algorithm with the best mean kappa across trials) —
	// the baseline the advisor must beat for the paper's thesis to hold.
	StaticRegret float64 `json:"staticRegret"`
	// StaticPolicy names that static algorithm.
	StaticPolicy string `json:"staticPolicy"`
	// Trials detail.
	Detail []ValidationTrial `json:"detail,omitempty"`
}

// ValidationTrial records one scenario.
type ValidationTrial struct {
	Scenario  string  `json:"scenario"`
	Advised   string  `json:"advised"`
	Empirical string  `json:"empirical"`
	Regret    float64 `json:"regret"`
}

// Top1Rate returns Top1Hits / Trials.
func (v ValidationResult) Top1Rate() float64 {
	if v.Trials == 0 {
		return 0
	}
	return float64(v.Top1Hits) / float64(v.Trials)
}

// Top2Rate returns Top2Hits / Trials.
func (v ValidationResult) Top2Rate() float64 {
	if v.Trials == 0 {
		return 0
	}
	return float64(v.Top2Hits) / float64(v.Trials)
}

// Validate generates `trials` random corruption scenarios on the clean
// dataset, asks the knowledge-base snapshot for advice from the *measured*
// profile of each corrupted copy (exactly the production path: profile →
// severities → advice), then runs every algorithm to find the empirical
// winner. Scenarios draw 1-3 criteria with severities in [0.1, 0.5].
// Cancellation is honoured between trials and between per-algorithm runs.
func Validate(ctx context.Context, cfg Config, ds *mining.Dataset, base *kb.Snapshot, trials int) (ValidationResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.applyDefaults()
	if trials <= 0 {
		trials = 10
	}
	rng := stats.NewRand(cfg.Seed + 7331)
	criteria := cfg.Criteria

	out := ValidationResult{Trials: trials}
	perAlgKappa := map[string][]float64{}
	var advisedKappas []float64
	var bestKappas []float64

	for trial := 0; trial < trials; trial++ {
		if err := ctx.Err(); err != nil {
			return ValidationResult{}, err
		}
		nDefects := 1 + rng.Intn(3)
		perm := rng.Perm(len(criteria))
		specs := make([]inject.Spec, 0, nDefects)
		scenario := ""
		for d := 0; d < nDefects && d < len(perm); d++ {
			crit := criteria[perm[d]]
			sev := 0.1 + 0.4*rng.Float64()
			specs = append(specs, inject.Spec{Criterion: crit, Severity: sev, Mechanism: cfg.Mechanism})
			if scenario != "" {
				scenario += "+"
			}
			scenario += fmt.Sprintf("%s@%.2f", crit, sev)
		}
		corrupted, err := inject.Apply(ds.T, ds.ClassCol, specs, taskSeed(cfg.Seed, "validate", scenario))
		if err != nil {
			return ValidationResult{}, fmt.Errorf("experiment: validation scenario %s: %w", scenario, err)
		}
		evalDS, err := mining.NewDataset(corrupted, ds.ClassCol)
		if err != nil {
			return ValidationResult{}, err
		}

		// Production path: measure, advise.
		profile := dq.Measure(corrupted, dq.MeasureOptions{ClassColumn: ds.ClassCol})
		advice, err := base.Advise(profile)
		if err != nil {
			return ValidationResult{}, err
		}
		advised := advice.Best().Algorithm

		// Ground truth: run everything.
		type algKappa struct {
			name  string
			kappa float64
		}
		var scores []algKappa
		for _, alg := range cfg.AlgorithmNames() {
			if err := ctx.Err(); err != nil {
				return ValidationResult{}, err
			}
			m, err := eval.CrossValidate(cfg.Algorithms[alg],
				evalDS, cfg.Folds, taskSeed(cfg.Seed, "validate-cv", scenario, alg))
			if err != nil {
				return ValidationResult{}, fmt.Errorf("experiment: validating %s on %s: %w", alg, scenario, err)
			}
			scores = append(scores, algKappa{alg, m.Kappa})
			perAlgKappa[alg] = append(perAlgKappa[alg], m.Kappa)
		}
		sort.SliceStable(scores, func(i, j int) bool {
			if scores[i].kappa != scores[j].kappa {
				return scores[i].kappa > scores[j].kappa
			}
			return scores[i].name < scores[j].name
		})

		advisedKappa := 0.0
		for _, s := range scores {
			if s.name == advised {
				advisedKappa = s.kappa
				break
			}
		}
		regret := scores[0].kappa - advisedKappa
		if advised == scores[0].name {
			out.Top1Hits++
		}
		if advised == scores[0].name || (len(scores) > 1 && advised == scores[1].name) {
			out.Top2Hits++
		}
		out.MeanRegret += regret
		advisedKappas = append(advisedKappas, advisedKappa)
		bestKappas = append(bestKappas, scores[0].kappa)
		out.Detail = append(out.Detail, ValidationTrial{
			Scenario:  scenario,
			Advised:   advised,
			Empirical: scores[0].name,
			Regret:    regret,
		})
	}
	out.MeanRegret /= float64(trials)

	// Best static policy in hindsight.
	bestStatic, bestMean := "", -2.0
	for alg, ks := range perAlgKappa {
		mean := stats.Mean(ks)
		if mean > bestMean || (mean == bestMean && alg < bestStatic) {
			bestStatic, bestMean = alg, mean
		}
	}
	out.StaticPolicy = bestStatic
	for i := range bestKappas {
		out.StaticRegret += bestKappas[i] - perAlgKappa[bestStatic][i]
	}
	out.StaticRegret /= float64(trials)
	return out, nil
}
