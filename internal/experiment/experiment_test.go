package experiment

import (
	"testing"

	"openbi/internal/dq"
	"openbi/internal/inject"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/synth"
)

// smallCfg keeps unit-test runs fast: 2 algorithms, 2 criteria, 3 severities.
func smallCfg(seed int64) Config {
	return Config{
		Algorithms: map[string]mining.Factory{
			"naive-bayes": func() mining.Classifier { return mining.NewNaiveBayes() },
			"c45":         func() mining.Classifier { return mining.NewC45Tree() },
		},
		Criteria:   []dq.Criterion{dq.LabelNoise, dq.Completeness},
		Severities: []float64{0, 0.2, 0.4},
		Folds:      3,
		Seed:       seed,
	}
}

func fixture() *mining.Dataset {
	return synth.MustMakeClassification(synth.ClassificationSpec{Rows: 240, Seed: 21})
}

func TestPhase1GridSize(t *testing.T) {
	recs, err := Phase1(smallCfg(1), fixture(), "unit")
	if err != nil {
		t.Fatal(err)
	}
	// 2 algorithms × (1 clean + 2 criteria × 2 non-zero severities) = 10.
	if len(recs) != 10 {
		t.Fatalf("records = %d, want 10", len(recs))
	}
	cleans, corrupted := 0, 0
	for _, r := range recs {
		if r.Criterion == "clean" {
			cleans++
			if r.Severity != 0 || len(r.MeasuredAll) == 0 {
				t.Fatalf("clean record malformed: %+v", r)
			}
		} else {
			corrupted++
			if r.Severity == 0 {
				t.Fatalf("corrupted record without severity: %+v", r)
			}
		}
		if r.Dataset != "unit" || r.Folds != 3 {
			t.Fatalf("metadata wrong: %+v", r)
		}
	}
	if cleans != 2 || corrupted != 8 {
		t.Fatalf("cleans=%d corrupted=%d", cleans, corrupted)
	}
}

func TestPhase1MeasuredSeverityRecorded(t *testing.T) {
	recs, err := Phase1(smallCfg(2), fixture(), "unit")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Criterion == dq.LabelNoise.String() && r.Severity >= 0.2 {
			if r.MeasuredSeverity <= 0 {
				t.Fatalf("measured severity missing: %+v", r)
			}
		}
		if r.Criterion == dq.Completeness.String() {
			// Measured missing rate tracks the injected rate.
			if d := r.MeasuredSeverity - r.Severity; d > 0.1 || d < -0.1 {
				t.Fatalf("completeness measured %v vs injected %v", r.MeasuredSeverity, r.Severity)
			}
		}
	}
}

func TestPhase1DeterministicAcrossWorkers(t *testing.T) {
	cfg1 := smallCfg(3)
	cfg1.Workers = 1
	cfg8 := smallCfg(3)
	cfg8.Workers = 8
	a, err := Phase1(cfg1, fixture(), "unit")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Phase1(cfg8, fixture(), "unit")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("record counts differ")
	}
	for i := range a {
		if a[i].Algorithm != b[i].Algorithm || a[i].Criterion != b[i].Criterion ||
			a[i].Metrics != b[i].Metrics {
			t.Fatalf("parallelism changed results at %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestPhase1DegradationShape(t *testing.T) {
	recs, err := Phase1(smallCfg(4), fixture(), "unit")
	if err != nil {
		t.Fatal(err)
	}
	base := kb.New()
	for _, r := range recs {
		base.Add(r)
	}
	// Label noise at 0.4 must hurt every algorithm vs its clean baseline.
	for _, alg := range []string{"naive-bayes", "c45"} {
		curve := base.Curve(alg, dq.LabelNoise)
		if len(curve) != 3 {
			t.Fatalf("curve points = %d", len(curve))
		}
		if curve[2].Kappa >= curve[0].Kappa-0.1 {
			t.Fatalf("%s kappa did not degrade under 40%% label noise: %+v", alg, curve)
		}
	}
}

func TestPhase2InteractionAndRecords(t *testing.T) {
	ds := fixture()
	cfg := smallCfg(5)
	p1, err := Phase1(cfg, ds, "unit")
	if err != nil {
		t.Fatal(err)
	}
	base := kb.New()
	for _, r := range p1 {
		base.Add(r)
	}
	combos := [][]dq.Criterion{{dq.LabelNoise, dq.Completeness}}
	mixed, recs, err := Phase2(cfg, ds, "unit", base, combos, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != 2 || len(recs) != 2 { // one per algorithm
		t.Fatalf("mixed=%d recs=%d, want 2/2", len(mixed), len(recs))
	}
	for _, m := range mixed {
		if m.Actual.Kappa > base.BaselineKappa(m.Algorithm) {
			t.Fatalf("mixed corruption did not hurt %s", m.Algorithm)
		}
		if m.PredictedKappa == 0 {
			t.Fatalf("prediction missing for %s", m.Algorithm)
		}
	}
	for _, r := range recs {
		if !r.Mixed || r.Criterion != "label-noise+completeness" {
			t.Fatalf("mixed record malformed: %+v", r)
		}
	}
}

func TestDefaultCombos(t *testing.T) {
	combos := DefaultCombos([]dq.Criterion{dq.Completeness, dq.LabelNoise, dq.Imbalance})
	if len(combos) != 3 {
		t.Fatalf("pairs = %d, want 3", len(combos))
	}
	for _, c := range combos {
		if len(c) != 2 || c[0] == c[1] {
			t.Fatalf("bad combo %v", c)
		}
	}
}

func TestTaskSeedStable(t *testing.T) {
	a := taskSeed(1, "x", "y")
	b := taskSeed(1, "x", "y")
	c := taskSeed(1, "x", "z")
	d := taskSeed(2, "x", "y")
	if a != b {
		t.Fatal("same coordinates, different seed")
	}
	if a == c || a == d {
		t.Fatal("different coordinates, same seed")
	}
	if a < 0 {
		t.Fatal("seed must be non-negative")
	}
}

func TestValidateAdvisorBeatsChanceAndRuns(t *testing.T) {
	ds := fixture()
	cfg := smallCfg(6)
	cfg.Mechanism = inject.MCAR
	p1, err := Phase1(cfg, ds, "unit")
	if err != nil {
		t.Fatal(err)
	}
	base := kb.New()
	for _, r := range p1 {
		base.Add(r)
	}
	res, err := Validate(cfg, ds, base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 4 || len(res.Detail) != 4 {
		t.Fatalf("trials = %d detail = %d", res.Trials, len(res.Detail))
	}
	if res.Top2Rate() < res.Top1Rate() {
		t.Fatal("top2 rate cannot be below top1")
	}
	if res.MeanRegret < 0 {
		t.Fatalf("negative regret %v", res.MeanRegret)
	}
	if res.StaticPolicy == "" {
		t.Fatal("static policy missing")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.applyDefaults()
	if cfg.Folds != 5 || cfg.Workers < 1 || len(cfg.Criteria) != len(dq.AllCriteria()) {
		t.Fatalf("defaults: %+v", cfg)
	}
	if len(cfg.Severities) == 0 || cfg.Severities[0] != 0 {
		t.Fatalf("default severities: %v", cfg.Severities)
	}
	if len(cfg.AlgorithmNames()) != 8 {
		t.Fatalf("default suite size: %v", cfg.AlgorithmNames())
	}
}
