package experiment

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"openbi/internal/dq"
	"openbi/internal/inject"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/synth"
)

// smallCfg keeps unit-test runs fast: 2 algorithms, 2 criteria, 3 severities.
func smallCfg(seed int64) Config {
	return Config{
		Algorithms: map[string]mining.Factory{
			"naive-bayes": func() mining.Classifier { return mining.NewNaiveBayes() },
			"c45":         func() mining.Classifier { return mining.NewC45Tree() },
		},
		Criteria:   []dq.Criterion{dq.LabelNoise, dq.Completeness},
		Severities: []float64{0, 0.2, 0.4},
		Folds:      3,
		Seed:       seed,
	}
}

func fixture() *mining.Dataset {
	return synth.MustMakeClassification(synth.ClassificationSpec{Rows: 240, Seed: 21})
}

func TestPhase1GridSize(t *testing.T) {
	recs, err := Phase1(context.Background(), smallCfg(1), fixture(), "unit")
	if err != nil {
		t.Fatal(err)
	}
	// 2 algorithms × (1 clean + 2 criteria × 2 non-zero severities) = 10.
	if len(recs) != 10 {
		t.Fatalf("records = %d, want 10", len(recs))
	}
	cleans, corrupted := 0, 0
	for _, r := range recs {
		if r.Criterion == "clean" {
			cleans++
			if r.Severity != 0 || len(r.MeasuredAll) == 0 {
				t.Fatalf("clean record malformed: %+v", r)
			}
		} else {
			corrupted++
			if r.Severity == 0 {
				t.Fatalf("corrupted record without severity: %+v", r)
			}
		}
		if r.Dataset != "unit" || r.Folds != 3 {
			t.Fatalf("metadata wrong: %+v", r)
		}
	}
	if cleans != 2 || corrupted != 8 {
		t.Fatalf("cleans=%d corrupted=%d", cleans, corrupted)
	}
}

func TestPhase1MeasuredSeverityRecorded(t *testing.T) {
	recs, err := Phase1(context.Background(), smallCfg(2), fixture(), "unit")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Criterion == dq.LabelNoise.String() && r.Severity >= 0.2 {
			if r.MeasuredSeverity <= 0 {
				t.Fatalf("measured severity missing: %+v", r)
			}
		}
		if r.Criterion == dq.Completeness.String() {
			// Measured missing rate tracks the injected rate.
			if d := r.MeasuredSeverity - r.Severity; d > 0.1 || d < -0.1 {
				t.Fatalf("completeness measured %v vs injected %v", r.MeasuredSeverity, r.Severity)
			}
		}
	}
}

func TestPhase1DeterministicAcrossWorkers(t *testing.T) {
	cfg1 := smallCfg(3)
	cfg1.Workers = 1
	cfg8 := smallCfg(3)
	cfg8.Workers = 8
	a, err := Phase1(context.Background(), cfg1, fixture(), "unit")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Phase1(context.Background(), cfg8, fixture(), "unit")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("record counts differ")
	}
	for i := range a {
		if a[i].Algorithm != b[i].Algorithm || a[i].Criterion != b[i].Criterion ||
			a[i].Metrics != b[i].Metrics {
			t.Fatalf("parallelism changed results at %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestPhase1DegradationShape(t *testing.T) {
	recs, err := Phase1(context.Background(), smallCfg(4), fixture(), "unit")
	if err != nil {
		t.Fatal(err)
	}
	base := kb.New()
	for _, r := range recs {
		base.Add(r)
	}
	// Label noise at 0.4 must hurt every algorithm vs its clean baseline.
	for _, alg := range []string{"naive-bayes", "c45"} {
		curve := base.Curve(alg, dq.LabelNoise)
		if len(curve) != 3 {
			t.Fatalf("curve points = %d", len(curve))
		}
		if curve[2].Kappa >= curve[0].Kappa-0.1 {
			t.Fatalf("%s kappa did not degrade under 40%% label noise: %+v", alg, curve)
		}
	}
}

func TestPhase2InteractionAndRecords(t *testing.T) {
	ds := fixture()
	cfg := smallCfg(5)
	p1, err := Phase1(context.Background(), cfg, ds, "unit")
	if err != nil {
		t.Fatal(err)
	}
	base := kb.New()
	for _, r := range p1 {
		base.Add(r)
	}
	combos := [][]dq.Criterion{{dq.LabelNoise, dq.Completeness}}
	mixed, recs, err := Phase2(context.Background(), cfg, ds, "unit", base.Snapshot(), combos, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed) != 2 || len(recs) != 2 { // one per algorithm
		t.Fatalf("mixed=%d recs=%d, want 2/2", len(mixed), len(recs))
	}
	for _, m := range mixed {
		if m.Actual.Kappa > base.BaselineKappa(m.Algorithm) {
			t.Fatalf("mixed corruption did not hurt %s", m.Algorithm)
		}
		if m.PredictedKappa == 0 {
			t.Fatalf("prediction missing for %s", m.Algorithm)
		}
	}
	for _, r := range recs {
		if !r.Mixed || r.Criterion != "label-noise+completeness" {
			t.Fatalf("mixed record malformed: %+v", r)
		}
	}
}

func TestDefaultCombos(t *testing.T) {
	combos := DefaultCombos([]dq.Criterion{dq.Completeness, dq.LabelNoise, dq.Imbalance})
	if len(combos) != 3 {
		t.Fatalf("pairs = %d, want 3", len(combos))
	}
	for _, c := range combos {
		if len(c) != 2 || c[0] == c[1] {
			t.Fatalf("bad combo %v", c)
		}
	}
}

func TestTaskSeedStable(t *testing.T) {
	a := taskSeed(1, "x", "y")
	b := taskSeed(1, "x", "y")
	c := taskSeed(1, "x", "z")
	d := taskSeed(2, "x", "y")
	if a != b {
		t.Fatal("same coordinates, different seed")
	}
	if a == c || a == d {
		t.Fatal("different coordinates, same seed")
	}
	if a < 0 {
		t.Fatal("seed must be non-negative")
	}
}

func TestValidateAdvisorBeatsChanceAndRuns(t *testing.T) {
	ds := fixture()
	cfg := smallCfg(6)
	cfg.Mechanism = inject.MCAR
	p1, err := Phase1(context.Background(), cfg, ds, "unit")
	if err != nil {
		t.Fatal(err)
	}
	base := kb.New()
	for _, r := range p1 {
		base.Add(r)
	}
	res, err := Validate(context.Background(), cfg, ds, base.Snapshot(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 4 || len(res.Detail) != 4 {
		t.Fatalf("trials = %d detail = %d", res.Trials, len(res.Detail))
	}
	if res.Top2Rate() < res.Top1Rate() {
		t.Fatal("top2 rate cannot be below top1")
	}
	if res.MeanRegret < 0 {
		t.Fatalf("negative regret %v", res.MeanRegret)
	}
	if res.StaticPolicy == "" {
		t.Fatal("static policy missing")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.applyDefaults()
	if cfg.Folds != 5 || cfg.Workers < 1 || len(cfg.Criteria) != len(dq.AllCriteria()) {
		t.Fatalf("defaults: %+v", cfg)
	}
	if len(cfg.Severities) == 0 || cfg.Severities[0] != 0 {
		t.Fatalf("default severities: %v", cfg.Severities)
	}
	if len(cfg.AlgorithmNames()) != 8 {
		t.Fatalf("default suite size: %v", cfg.AlgorithmNames())
	}
}

// TestPhase1CancellationStopsMidGrid cancels the context from the progress
// sink after the first completed record: Phase1 must stop between grid
// cells, return ctx.Err(), and leave most of the grid unrun.
func TestPhase1CancellationStopsMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed atomic.Int64
	cfg := smallCfg(7)
	cfg.Workers = 1 // serialize so "stops mid-grid" is deterministic
	cfg.Progress = func(ev Event) {
		completed.Store(int64(ev.Completed))
		cancel()
	}
	recs, err := Phase1(ctx, cfg, fixture(), "unit")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if recs != nil {
		t.Fatal("canceled run must not return records")
	}
	// 10 tasks total (2 algorithms x 5 cells); cancellation after the first
	// completion must prevent the grid from finishing.
	if n := completed.Load(); n == 0 || n >= 10 {
		t.Fatalf("completed %d records, want mid-grid stop", n)
	}
}

// TestPhase1PreCanceledContext: a context canceled before the call stops
// even cell preparation.
func TestPhase1PreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Phase1(ctx, smallCfg(8), fixture(), "unit"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPhase2CancellationReturnsCtxErr mirrors the Phase-1 test for the
// mixed-criteria grid.
func TestPhase2CancellationReturnsCtxErr(t *testing.T) {
	ds := fixture()
	cfg := smallCfg(9)
	p1, err := Phase1(context.Background(), cfg, ds, "unit")
	if err != nil {
		t.Fatal(err)
	}
	base := kb.New()
	for _, r := range p1 {
		base.Add(r)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Workers = 1
	cfg.Progress = func(Event) { cancel() }
	combos := [][]dq.Criterion{{dq.LabelNoise, dq.Completeness}, {dq.LabelNoise, dq.Imbalance}}
	_, _, err = Phase2(ctx, cfg, ds, "unit", base.Snapshot(), combos, 0.3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestProgressEventsCoverTheGrid: every record completion emits exactly one
// event, serially, with a monotonically increasing Completed counter.
func TestProgressEventsCoverTheGrid(t *testing.T) {
	var events []Event
	cfg := smallCfg(10)
	cfg.Workers = 4
	cfg.Progress = func(ev Event) { events = append(events, ev) } // serial by contract
	recs, err := Phase1(context.Background(), cfg, fixture(), "unit")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(recs) {
		t.Fatalf("%d events for %d records", len(events), len(recs))
	}
	for i, ev := range events {
		if ev.Phase != 1 || ev.Total != len(recs) || ev.Completed != i+1 {
			t.Fatalf("event %d malformed: %+v", i, ev)
		}
		if ev.Algorithm == "" || ev.Criterion == "" {
			t.Fatalf("event %d lacks coordinates: %+v", i, ev)
		}
	}
}

// TestValidateCancellation: Validate honours ctx between trials.
func TestValidateCancellation(t *testing.T) {
	ds := fixture()
	cfg := smallCfg(11)
	p1, err := Phase1(context.Background(), cfg, ds, "unit")
	if err != nil {
		t.Fatal(err)
	}
	base := kb.New()
	for _, r := range p1 {
		base.Add(r)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Validate(ctx, cfg, ds, base.Snapshot(), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
