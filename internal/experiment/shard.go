// Sharded execution of the experiment grid. The grid — every
// (algorithm × criterion × severity) cell of Phase 1 plus every
// (algorithm × combo) cell of Phase 2 — is embarrassingly parallel because
// each cell derives its own seed from its coordinates (taskSeed), never
// from execution order. ShardPlan turns that property into a stable
// partition across machines: each shard job executes only the cells it
// owns, journals completions to a checkpoint so a killed run resumes
// mid-grid, and emits a kb.Shard whose records carry their canonical grid
// positions. kb.Merge recombines the shards into a knowledge base that is
// byte-identical to a monolithic run with the same seed.
package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"openbi/internal/dq"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/table"
)

// ShardPlan is a stable partition of the experiment grid into Count
// shards, of which this process executes shard Index (0-based). Membership
// is a hash of each task's grid coordinates — the same strings that feed
// its taskSeed — so the partition is a pure function of (Index, Count) and
// the grid: identical on every machine, for every worker count, and across
// restarts.
type ShardPlan struct {
	Index int
	Count int
}

// MonolithicPlan is the single-shard plan: one job owns the whole grid.
// RunShard with this plan plus a checkpoint directory is how a monolithic
// run becomes resumable.
func MonolithicPlan() ShardPlan { return ShardPlan{Index: 0, Count: 1} }

// Validate checks the plan's shape.
func (p ShardPlan) Validate() error {
	if p.Count < 1 {
		return fmt.Errorf("experiment: shard plan needs >= 1 shards, got %d", p.Count)
	}
	if p.Index < 0 || p.Index >= p.Count {
		return fmt.Errorf("experiment: shard index %d out of range [0,%d)", p.Index, p.Count)
	}
	return nil
}

// String renders the plan as "index/count" (the CLI's -shard syntax).
func (p ShardPlan) String() string { return fmt.Sprintf("%d/%d", p.Index, p.Count) }

// ParseShardPlan parses "index/count" with a 0-based index, e.g. "0/2" and
// "1/2" are the two shards of a 2-way plan.
func ParseShardPlan(s string) (ShardPlan, error) {
	lhs, rhs, ok := strings.Cut(s, "/")
	if !ok {
		return ShardPlan{}, fmt.Errorf("experiment: shard %q: want index/count, e.g. 0/2", s)
	}
	idx, err1 := strconv.Atoi(strings.TrimSpace(lhs))
	cnt, err2 := strconv.Atoi(strings.TrimSpace(rhs))
	if err1 != nil || err2 != nil {
		return ShardPlan{}, fmt.Errorf("experiment: shard %q: want index/count, e.g. 0/2", s)
	}
	p := ShardPlan{Index: idx, Count: cnt}
	if err := p.Validate(); err != nil {
		return ShardPlan{}, err
	}
	return p, nil
}

// owns reports whether the task with the given stable key parts belongs to
// this shard. The hash deliberately excludes the run seed: ownership is a
// function of grid coordinates alone, so operators can reason about which
// shard ran a cell without knowing the seed.
func (p ShardPlan) owns(parts ...string) bool {
	if p.Count == 1 {
		return true
	}
	h := fnv.New64a()
	for _, s := range parts {
		h.Write([]byte{0})
		h.Write([]byte(s))
	}
	return int(h.Sum64()%uint64(p.Count)) == p.Index
}

// p1Key returns the shard-assignment key of a Phase-1 task: the same
// parts that feed its cross-validation taskSeed.
func p1Key(tk p1Task, coords []cellCoord) []string {
	co := coords[tk.cell]
	return []string{"cv", tk.algorithm, co.name(), fmt.Sprintf("%.3f", co.severity)}
}

// p2Key returns the shard-assignment key of a Phase-2 task.
func p2Key(tk p2Task, severity float64) []string {
	return []string{"mixcv", tk.algorithm, comboString(tk.combo), fmt.Sprintf("%.3f", severity)}
}

// ShardRun parameterizes RunShard beyond the Phase-1 Config: the Phase-2
// combos and severity that complete the grid, the shard to execute, and an
// optional checkpoint directory.
type ShardRun struct {
	// Plan selects the slice of the grid this call executes. The zero
	// value is invalid; use MonolithicPlan for a whole-grid run.
	Plan ShardPlan
	// Combos are the Phase-2 mixed-criteria combinations; nil runs
	// Phase 1 only.
	Combos [][]dq.Criterion
	// MixedSeverity is the per-criterion severity of Phase-2 injections
	// (default 0.3, the engine's canonical value).
	MixedSeverity float64
	// CheckpointDir, when non-empty, makes the run resumable: each
	// completed cell is journaled there (synced, torn-tail safe), and a
	// restart with the same configuration replays journaled cells instead
	// of re-executing them. The journal file is keyed by dataset name and
	// plan, so shards and corpora can share one directory.
	CheckpointDir string
}

// gridFingerprint digests everything that shapes the grid and its records:
// seed, folds, mechanism, dataset identity and *contents* (the table's CSV
// serialization — same-shaped but different data must not share a
// fingerprint, or a resume would silently replay stale measurements), the
// algorithm suite, criteria, severities, combos and the mixed severity.
// Checkpoints and merges refuse to combine work across different
// fingerprints. Hashing the table is O(cells), noise next to one grid
// cell's cross-validation.
func gridFingerprint(cfg Config, datasetName string, ds *mining.Dataset, combos [][]dq.Criterion, mixedSeverity float64) string {
	h := fnv.New64a()
	w := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
	}
	w("grid-v2", strconv.FormatInt(cfg.Seed, 10), strconv.Itoa(cfg.Folds), cfg.Mechanism.String(),
		datasetName, strconv.Itoa(ds.T.NumRows()), strconv.Itoa(ds.T.NumCols()), strconv.Itoa(ds.ClassCol))
	_ = table.WriteCSV(h, ds.Table())
	w(cfg.AlgorithmNames()...)
	for _, c := range cfg.Criteria {
		w(c.String())
	}
	for _, s := range cfg.Severities {
		w(fmt.Sprintf("%.6f", s))
	}
	for _, combo := range combos {
		w(comboString(combo))
	}
	w(fmt.Sprintf("%.6f", mixedSeverity))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Fingerprint is the exported form of gridFingerprint for provenance
// manifests: it applies the same Config defaulting RunShard does, so the
// value equals what shard metadata and checkpoint journals record for the
// same run. Manifests from monolithic and sharded runs of one
// configuration therefore chain on equal fingerprints.
func Fingerprint(cfg Config, datasetName string, ds *mining.Dataset, combos [][]dq.Criterion, mixedSeverity float64) string {
	cfg.applyDefaults()
	if mixedSeverity <= 0 {
		mixedSeverity = 0.3
	}
	return gridFingerprint(cfg, datasetName, ds, combos, mixedSeverity)
}

// DatasetContentHash digests a dataset's exact contents (its canonical CSV
// serialization) as lowercase-hex sha256 — the provenance chain from a
// knowledge base back to the data its experiment grid ran over.
func DatasetContentHash(ds *mining.Dataset) string {
	h := sha256.New()
	_ = table.WriteCSV(h, ds.Table())
	return hex.EncodeToString(h.Sum(nil))
}

// runShardPhase runs one phase of a shard: replay every journaled cell of
// the owned task indices as a Restored progress event, then execute the
// rest through prepare's task runner, journaling each completion before it
// is reported. prepare is only called when something actually executes, so
// a fully-replayed phase does no dataset work at all.
func runShardPhase(ctx context.Context, cfg Config, ck *checkpoint, phase int, owned []int, datasetName string,
	prepare func(taskIdx []int) (func(ti int, arena *mining.Arena) (kb.Record, error), error)) ([]kb.Record, error) {
	out := make([]kb.Record, len(owned))
	prog := newProgress(cfg.Progress, phase, len(owned), datasetName)
	var todo []int // positions in owned still to execute
	for j, ti := range owned {
		if rec, ok := ck.lookup(phase, ti); ok {
			out[j] = rec
			prog.restored(rec.Algorithm, rec.Criterion, rec.Severity)
			continue
		}
		todo = append(todo, j)
	}
	if len(todo) == 0 {
		return out, nil
	}
	taskIdx := make([]int, len(todo))
	for k, j := range todo {
		taskIdx[k] = owned[j]
	}
	exec, err := prepare(taskIdx)
	if err != nil {
		return nil, err
	}
	arenas := workerArenas(cfg.Workers)
	err = runGrid(ctx, cfg.Workers, len(todo), func(k, w int) error {
		j := todo[k]
		ti := owned[j]
		rec, err := exec(ti, arenas[w])
		if err != nil {
			return err
		}
		if err := ck.append(phase, ti, rec); err != nil {
			return err
		}
		out[j] = rec
		prog.record(rec.Algorithm, rec.Criterion, rec.Severity)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunShard executes one shard of the full experiment grid (Phase 1 +
// Phase 2) and returns its positioned records. Merge the shards of a plan
// with kb.Merge to obtain a knowledge base byte-identical to the
// monolithic Phase1+Phase2 run with the same configuration.
//
// Cancellation follows the Phase1/Phase2 cell-boundary rule; with a
// checkpoint directory, cells completed before the cancellation are
// journaled, and a rerun resumes after them (emitting one Restored
// progress event per replayed cell).
//
// Note Phase-2 MixedResults (interaction effects vs. additive predictions)
// are not produced by shard runs: they need the full Phase-1 snapshot,
// which no single shard holds. The kb records are unaffected — predictions
// never enter the knowledge base.
func RunShard(ctx context.Context, cfg Config, ds *mining.Dataset, datasetName string, run ShardRun) (*kb.Shard, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.applyDefaults()
	if err := run.Plan.Validate(); err != nil {
		return nil, err
	}
	if run.MixedSeverity <= 0 {
		run.MixedSeverity = 0.3
	}
	coords := cellCoords(cfg)
	t1 := p1Tasks(cfg, len(coords))
	t2 := p2Tasks(cfg, run.Combos)
	meta := kb.ShardMeta{
		Version:     kb.ShardMetaVersion,
		Seed:        cfg.Seed,
		Index:       run.Plan.Index,
		Count:       run.Plan.Count,
		Dataset:     datasetName,
		DatasetHash: DatasetContentHash(ds),
		Fingerprint: gridFingerprint(cfg, datasetName, ds, run.Combos, run.MixedSeverity),
		Phase1Total: len(t1),
		Phase2Total: len(t2),
	}
	var own1, own2 []int
	for i, tk := range t1 {
		if run.Plan.owns(p1Key(tk, coords)...) {
			own1 = append(own1, i)
		}
	}
	for i, tk := range t2 {
		if run.Plan.owns(p2Key(tk, run.MixedSeverity)...) {
			own2 = append(own2, i)
		}
	}

	var ck *checkpoint
	if run.CheckpointDir != "" {
		var err error
		ck, err = openCheckpoint(run.CheckpointDir, meta)
		if err != nil {
			return nil, err
		}
		defer ck.close()
	}

	// Phase 1: replay journaled cells, execute the rest. Cells are only
	// materialized for tasks that actually execute.
	out1, err := runShardPhase(ctx, cfg, ck, 1, own1, datasetName, func(taskIdx []int) (func(ti int, arena *mining.Arena) (kb.Record, error), error) {
		need := map[int]bool{}
		for _, ti := range taskIdx {
			need[t1[ti].cell] = true
		}
		cells, err := prepareCells(ctx, cfg, ds, func(i int) bool { return need[i] })
		if err != nil {
			return nil, err
		}
		return func(ti int, arena *mining.Arena) (kb.Record, error) {
			return runP1Task(cfg, cells, datasetName, t1[ti], arena)
		}, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: same replay/execute split. Records never depend on the
	// Phase-1 snapshot, so a nil base is correct here — it also skips the
	// per-cell profile measurement that only feeds the discarded
	// prediction (see the note in the function comment).
	out2, err := runShardPhase(ctx, cfg, ck, 2, own2, datasetName, func([]int) (func(ti int, arena *mining.Arena) (kb.Record, error), error) {
		return func(ti int, arena *mining.Arena) (kb.Record, error) {
			_, rec, err := runP2Task(cfg, ds, datasetName, nil, run.MixedSeverity, t2[ti], arena)
			return rec, err
		}, nil
	})
	if err != nil {
		return nil, err
	}

	sh := &kb.Shard{Meta: meta, Records: make([]kb.PositionedRecord, 0, len(own1)+len(own2))}
	for j, ti := range own1 {
		sh.Records = append(sh.Records, kb.PositionedRecord{Phase: 1, Index: ti, Record: out1[j]})
	}
	for j, ti := range own2 {
		sh.Records = append(sh.Records, kb.PositionedRecord{Phase: 2, Index: ti, Record: out2[j]})
	}
	return sh, nil
}
