//go:build unix

package experiment

import (
	"os"
	"syscall"
)

// lockJournal takes an exclusive, non-blocking advisory lock on the open
// journal so two processes cannot interleave appends or truncate each
// other's tails. The kernel releases the lock when the process exits, so a
// crashed run never leaves a stale lock behind — exactly the property the
// resume path needs.
func lockJournal(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
