package experiment

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"openbi/internal/dq"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/synth"
)

// shardTestCfg is the shared sharding-test configuration: a reduced
// algorithm suite and criterion set so that running the grid a dozen times
// stays fast, but still multi-algorithm, multi-criterion and two-phase so
// the partition is non-trivial.
func shardTestCfg(t testing.TB) (Config, *mining.Dataset, [][]dq.Criterion) {
	t.Helper()
	ds, err := synth.MakeClassification(synth.ClassificationSpec{Rows: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	suite := mining.StandardSuite(42)
	cfg := Config{
		Seed:  42,
		Folds: 3,
		Algorithms: map[string]mining.Factory{
			"zero-r":      suite["zero-r"],
			"naive-bayes": suite["naive-bayes"],
			"c45":         suite["c45"],
			"5-nn":        suite["5-nn"],
		},
		Criteria:   []dq.Criterion{dq.Completeness, dq.LabelNoise, dq.Imbalance},
		Severities: []float64{0, 0.2, 0.4},
	}
	combos := DefaultCombos(cfg.Criteria)
	return cfg, ds, combos
}

// monolithicKB runs Phase 1 + Phase 2 in-process and serializes the
// knowledge base — the reference the sharded paths must reproduce byte
// for byte.
func monolithicKB(t testing.TB, cfg Config, ds *mining.Dataset, combos [][]dq.Criterion) []byte {
	t.Helper()
	p1, err := Phase1(context.Background(), cfg, ds, "shardtest")
	if err != nil {
		t.Fatal(err)
	}
	base := kb.New()
	for _, r := range p1 {
		base.Add(r)
	}
	_, p2, err := Phase2(context.Background(), cfg, ds, "shardtest", base.Snapshot(), combos, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p2 {
		base.Add(r)
	}
	var buf bytes.Buffer
	if err := base.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func saveKB(t testing.TB, k *kb.KnowledgeBase) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardMergeEquivalence is the sharding tentpole's property test: for
// n ∈ {1, 2, 3, 7}, running the grid as n independent shard jobs and
// merging — in permuted order — must produce a knowledge base
// byte-identical to the monolithic run.
func TestShardMergeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment grid many times")
	}
	cfg, ds, combos := shardTestCfg(t)
	want := monolithicKB(t, cfg, ds, combos)
	wantSum := sha256.Sum256(want)

	for _, n := range []int{1, 2, 3, 7} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			shards := make([]*kb.Shard, n)
			for i := 0; i < n; i++ {
				sh, err := RunShard(context.Background(), cfg, ds, "shardtest", ShardRun{
					Plan:   ShardPlan{Index: i, Count: n},
					Combos: combos,
				})
				if err != nil {
					t.Fatal(err)
				}
				shards[i] = sh
			}
			// Merge in a permuted order: rotate then swap ends, so no
			// shard sits at its own index (for n > 1).
			perm := make([]*kb.Shard, 0, n)
			for i := 0; i < n; i++ {
				perm = append(perm, shards[(i+1)%n])
			}
			if n > 2 {
				perm[0], perm[n-1] = perm[n-1], perm[0]
			}
			merged, err := kb.Merge(perm...)
			if err != nil {
				t.Fatal(err)
			}
			got := saveKB(t, merged)
			if gotSum := sha256.Sum256(got); gotSum != wantSum {
				t.Fatalf("merged KB of %d shards differs from monolithic run:\nmonolithic %d bytes sha256 %x\nmerged     %d bytes sha256 %x",
					n, len(want), wantSum, len(got), gotSum)
			}
		})
	}
}

// TestShardPlanPartitionsGridOnce proves the plan is a partition: across
// any shard count, every task is owned by exactly one shard.
func TestShardPlanPartitionsGridOnce(t *testing.T) {
	cfg, _, combos := shardTestCfg(t)
	cfg.applyDefaults()
	coords := cellCoords(cfg)
	t1 := p1Tasks(cfg, len(coords))
	t2 := p2Tasks(cfg, combos)
	for _, n := range []int{1, 2, 3, 5, 16} {
		for i, tk := range t1 {
			owners := 0
			for s := 0; s < n; s++ {
				if (ShardPlan{Index: s, Count: n}).owns(p1Key(tk, coords)...) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("n=%d: phase-1 task %d (%s cell %d) owned by %d shards", n, i, tk.algorithm, tk.cell, owners)
			}
		}
		for i, tk := range t2 {
			owners := 0
			for s := 0; s < n; s++ {
				if (ShardPlan{Index: s, Count: n}).owns(p2Key(tk, 0.3)...) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("n=%d: phase-2 task %d owned by %d shards", n, i, owners)
			}
		}
	}
}

func TestParseShardPlan(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ShardPlan
		ok   bool
	}{
		{"0/1", ShardPlan{0, 1}, true},
		{"1/2", ShardPlan{1, 2}, true},
		{" 2 / 7 ", ShardPlan{2, 7}, true},
		{"2/2", ShardPlan{}, false},
		{"-1/2", ShardPlan{}, false},
		{"1", ShardPlan{}, false},
		{"a/b", ShardPlan{}, false},
		{"1/0", ShardPlan{}, false},
	} {
		got, err := ParseShardPlan(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseShardPlan(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseShardPlan(%q) succeeded, want error", tc.in)
		}
	}
}

// TestCheckpointResume is the crash-resume guarantee: cancel a
// checkpointed run mid-grid, restart it, and the final KB must be
// byte-identical to an uninterrupted run with no completed cell executed
// twice — executed-cell counts of the two runs must sum exactly to the
// grid size, with the second run replaying the first run's cells as
// Restored events.
func TestCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment grid several times")
	}
	cfg, ds, combos := shardTestCfg(t)
	cfg.Workers = 2
	want := monolithicKB(t, cfg, ds, combos)
	dir := t.TempDir()

	// First run: cancel after a handful of completed cells. In-flight
	// cells finish (cell-boundary cancellation), so executed1 may exceed
	// the trigger count — what matters is that every executed cell is
	// journaled and none re-executes.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed1 atomic.Int64
	cfgRun1 := cfg
	cfgRun1.Progress = func(ev Event) {
		if ev.Restored {
			t.Errorf("first run replayed a cell from a fresh checkpoint: %+v", ev)
			return
		}
		if executed1.Add(1) == 5 {
			cancel()
		}
	}
	_, err := RunShard(ctx, cfgRun1, ds, "shardtest", ShardRun{
		Plan: MonolithicPlan(), Combos: combos, CheckpointDir: dir,
	})
	if err != context.Canceled {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
	total1, total2 := totalsOf(cfg, combos)
	total := total1 + total2
	if n := executed1.Load(); n < 5 || n >= int64(total) {
		t.Fatalf("first run executed %d cells, want a strict mid-grid cut of %d", n, total)
	}

	// Second run: must replay exactly the journaled cells and execute the
	// rest once.
	var executed2, restored2 atomic.Int64
	cfgRun2 := cfg
	cfgRun2.Progress = func(ev Event) {
		if ev.Restored {
			restored2.Add(1)
		} else {
			executed2.Add(1)
		}
	}
	sh, err := RunShard(context.Background(), cfgRun2, ds, "shardtest", ShardRun{
		Plan: MonolithicPlan(), Combos: combos, CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := restored2.Load(); got != executed1.Load() {
		t.Errorf("second run restored %d cells, want exactly the %d the first run completed", got, executed1.Load())
	}
	if got := executed1.Load() + executed2.Load(); got != int64(total) {
		t.Errorf("cells executed across both runs = %d, want exactly the grid size %d (a completed cell re-executed)", got, total)
	}

	merged, err := kb.Merge(sh)
	if err != nil {
		t.Fatal(err)
	}
	if got := saveKB(t, merged); !bytes.Equal(got, want) {
		t.Fatal("resumed KB differs from uninterrupted run")
	}

	// Third run over the now-complete journal: pure replay.
	var executed3 atomic.Int64
	cfgRun3 := cfg
	cfgRun3.Progress = func(ev Event) {
		if !ev.Restored {
			executed3.Add(1)
		}
	}
	sh3, err := RunShard(context.Background(), cfgRun3, ds, "shardtest", ShardRun{
		Plan: MonolithicPlan(), Combos: combos, CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := executed3.Load(); n != 0 {
		t.Errorf("rerun over a complete journal executed %d cells, want 0", n)
	}
	merged3, err := kb.Merge(sh3)
	if err != nil {
		t.Fatal(err)
	}
	if got := saveKB(t, merged3); !bytes.Equal(got, want) {
		t.Fatal("fully-replayed KB differs from uninterrupted run")
	}
}

func totalsOf(cfg Config, combos [][]dq.Criterion) (int, int) {
	cfg.applyDefaults()
	nCells := len(cellCoords(cfg))
	return len(cfg.AlgorithmNames()) * nCells, len(cfg.AlgorithmNames()) * len(combos)
}

// TestCheckpointTornTailRecovered simulates a crash mid-append: truncating
// the journal inside its last line must cost exactly that one cell on the
// next run, not the journal.
func TestCheckpointTornTailRecovered(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment grid")
	}
	cfg, ds, combos := shardTestCfg(t)
	want := monolithicKB(t, cfg, ds, combos)
	dir := t.TempDir()
	if _, err := RunShard(context.Background(), cfg, ds, "shardtest", ShardRun{
		Plan: MonolithicPlan(), Combos: combos, CheckpointDir: dir,
	}); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.journal"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one journal, got %v (%v)", entries, err)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	var executed atomic.Int64
	cfg2 := cfg
	cfg2.Progress = func(ev Event) {
		if !ev.Restored {
			executed.Add(1)
		}
	}
	sh, err := RunShard(context.Background(), cfg2, ds, "shardtest", ShardRun{
		Plan: MonolithicPlan(), Combos: combos, CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := executed.Load(); n != 1 {
		t.Errorf("after a torn tail, %d cells re-executed, want exactly the 1 torn cell", n)
	}
	merged, err := kb.Merge(sh)
	if err != nil {
		t.Fatal(err)
	}
	if got := saveKB(t, merged); !bytes.Equal(got, want) {
		t.Fatal("KB after torn-tail recovery differs from uninterrupted run")
	}
}

// TestCheckpointNamesDistinguishSanitizedCollisions: corpora whose names
// sanitize to the same string ("data.v1" vs "data_v1") must not collide on
// one journal file — a collision would make a checkpointed multi-corpus
// run permanently refuse to complete.
func TestCheckpointNamesDistinguishSanitizedCollisions(t *testing.T) {
	metaFor := func(dataset string) kb.ShardMeta {
		return kb.ShardMeta{Version: kb.ShardMetaVersion, Dataset: dataset, Count: 1}
	}
	a := checkpointName(metaFor("data.v1"))
	b := checkpointName(metaFor("data_v1"))
	if a == b {
		t.Fatalf("distinct datasets share journal name %q", a)
	}
	if a != checkpointName(metaFor("data.v1")) {
		t.Fatal("journal name is not stable for the same dataset")
	}
}

// TestCheckpointExclusiveLock: a journal held by a live run must refuse a
// second opener — concurrent writers would interleave appends and truncate
// each other's tails.
func TestCheckpointExclusiveLock(t *testing.T) {
	dir := t.TempDir()
	meta := kb.ShardMeta{Version: kb.ShardMetaVersion, Dataset: "lock", Count: 1, Fingerprint: "abc"}
	first, err := openCheckpoint(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer first.close()
	if _, err := openCheckpoint(dir, meta); err == nil || !strings.Contains(err.Error(), "in use") {
		t.Fatalf("second opener: err = %v, want in-use refusal", err)
	}
	first.close()
	second, err := openCheckpoint(dir, meta)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	second.close()
}

// TestCheckpointConfigMismatch: a journal written under one configuration
// must refuse to resume a different one instead of mixing records.
func TestCheckpointConfigMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs part of the experiment grid")
	}
	cfg, ds, combos := shardTestCfg(t)
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cfg1 := cfg
	cfg1.Progress = func(Event) { cancel() }
	if _, err := RunShard(ctx, cfg1, ds, "shardtest", ShardRun{
		Plan: MonolithicPlan(), Combos: combos, CheckpointDir: dir,
	}); err != context.Canceled {
		t.Fatalf("setup run: %v", err)
	}
	cfg2 := cfg
	cfg2.Seed = 43
	_, err := RunShard(context.Background(), cfg2, ds, "shardtest", ShardRun{
		Plan: MonolithicPlan(), Combos: combos, CheckpointDir: dir,
	})
	if err == nil || !strings.Contains(err.Error(), "different run configuration") {
		t.Fatalf("resuming with a different seed: err = %v, want config-mismatch refusal", err)
	}
}
