package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"

	"openbi/internal/kb"
)

// The checkpoint journal makes a (possibly sharded) grid run resumable:
// one JSON line per completed cell, appended and fsynced before the cell
// is reported complete, under a header line that pins the exact run
// configuration. A killed run therefore loses at most the cells that were
// mid-flight; the next run with the same configuration replays the journal
// and executes only what is missing. Atomicity is per line — a torn final
// line (crash mid-write) is detected on reload and truncated away, which
// merely re-executes that one cell.

// checkpointHeader is the journal's first line.
type checkpointHeader struct {
	Meta kb.ShardMeta `json:"meta"`
}

// journalEntry is one completed-cell line.
type journalEntry struct {
	Phase  int       `json:"phase"`
	Index  int       `json:"index"`
	Record kb.Record `json:"record"`
}

// checkpoint is the open journal of one shard run. A nil *checkpoint is a
// valid no-op (runs without -checkpoint pass one around freely).
type checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	done map[[2]int]kb.Record
}

// checkpointName keys the journal file by dataset and plan so shards and
// corpora can share one checkpoint directory. The sanitized name carries a
// short hash of the raw dataset name: distinct corpora whose names
// sanitize identically ("data.v1" vs "data_v1") must not collide on one
// journal, while the same corpus under a different configuration still
// maps to the same file — which is what lets openCheckpoint refuse a
// config mismatch instead of silently restarting.
func checkpointName(meta kb.ShardMeta) string {
	h := fnv.New32a()
	h.Write([]byte(meta.Dataset))
	return fmt.Sprintf("%s-%08x-shard-%d-of-%d.journal",
		sanitizeFileName(meta.Dataset), h.Sum32(), meta.Index, meta.Count)
}

func sanitizeFileName(s string) string {
	if s == "" {
		return "dataset"
	}
	out := []rune(s)
	for i, r := range out {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// openCheckpoint opens (or creates) the journal for meta under dir,
// replaying any completed cells it already holds. The journal is opened
// and exclusively locked *before* it is read, so a second process pointed
// at the same checkpoint fails fast instead of interleaving writes with
// (or truncating the tail under) the first. A journal written by a
// different run configuration — different seed, grid, dataset or plan — is
// refused rather than silently mixed in. A torn tail is truncated away.
func openCheckpoint(dir string, meta kb.ShardMeta) (*checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: checkpoint dir: %w", err)
	}
	path := filepath.Join(dir, checkpointName(meta))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment: opening checkpoint %s: %w", path, err)
	}
	if err := lockJournal(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: checkpoint %s is in use by another running shard job: %w", path, err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: reading checkpoint %s: %w", path, err)
	}

	ck := &checkpoint{done: map[[2]int]kb.Record{}}
	valid := 0 // byte length of the journal's intact prefix
	hasHeader := false
	off := 0
	for off < len(raw) {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // torn tail: line never finished
		}
		line := raw[off : off+nl]
		if !hasHeader {
			var h checkpointHeader
			if err := json.Unmarshal(line, &h); err != nil {
				break // torn/corrupt header: restart the journal from scratch
			}
			if h.Meta != meta {
				f.Close()
				return nil, fmt.Errorf("experiment: checkpoint %s was written by a different run configuration (journal: dataset %q seed %d shard %d/%d fingerprint %s; this run: dataset %q seed %d shard %d/%d fingerprint %s); delete the journal or use another -checkpoint directory",
					path, h.Meta.Dataset, h.Meta.Seed, h.Meta.Index, h.Meta.Count, h.Meta.Fingerprint,
					meta.Dataset, meta.Seed, meta.Index, meta.Count, meta.Fingerprint)
			}
			hasHeader = true
		} else {
			var e journalEntry
			if err := json.Unmarshal(line, &e); err != nil {
				break // corrupt line: drop it and everything after
			}
			ck.done[[2]int{e.Phase, e.Index}] = e.Record
		}
		off += nl + 1
		valid = off
	}

	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: truncating torn checkpoint tail: %w", err)
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, err
	}
	ck.f = f
	if !hasHeader {
		line, err := json.Marshal(checkpointHeader{Meta: meta})
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := ck.writeLine(line); err != nil {
			f.Close()
			return nil, err
		}
	}
	return ck, nil
}

// lookup returns the journaled record at (phase, index), if any.
func (c *checkpoint) lookup(phase, index int) (kb.Record, bool) {
	if c == nil {
		return kb.Record{}, false
	}
	rec, ok := c.done[[2]int{phase, index}]
	return rec, ok
}

// append journals one completed cell. The line is written in a single
// write and fsynced before returning, so a record reported complete is
// durably complete.
func (c *checkpoint) append(phase, index int, rec kb.Record) error {
	if c == nil {
		return nil
	}
	line, err := json.Marshal(journalEntry{Phase: phase, Index: index, Record: rec})
	if err != nil {
		return fmt.Errorf("experiment: encoding checkpoint entry: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeLine(line)
}

// writeLine appends line + "\n" and syncs. Callers serialize.
func (c *checkpoint) writeLine(line []byte) error {
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("experiment: writing checkpoint: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("experiment: syncing checkpoint: %w", err)
	}
	return nil
}

// close releases the journal file; the journal itself stays on disk so a
// completed run's rerun is a fast full replay.
func (c *checkpoint) close() {
	if c != nil && c.f != nil {
		c.f.Close()
	}
}
