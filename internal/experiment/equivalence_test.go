package experiment

import (
	"bytes"
	"context"
	"testing"

	"openbi/internal/dq"
	"openbi/internal/kb"
	"openbi/internal/mining"
	"openbi/internal/synth"
)

// runKB executes Phase 1 + Phase 2 on a fixed seed and serializes the
// resulting knowledge base.
func runKB(t *testing.T) []byte {
	t.Helper()
	ds, err := synth.MakeClassification(synth.ClassificationSpec{Rows: 120, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 42, Folds: 3, Severities: []float64{0, 0.3}}
	recs, err := Phase1(context.Background(), cfg, ds, "equiv")
	if err != nil {
		t.Fatal(err)
	}
	base := kb.New()
	for _, r := range recs {
		base.Add(r)
	}
	combos := DefaultCombos([]dq.Criterion{dq.Completeness, dq.LabelNoise})
	_, p2, err := Phase2(context.Background(), cfg, ds, "equiv", base.Snapshot(), combos, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p2 {
		base.Add(r)
	}
	var buf bytes.Buffer
	if err := base.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestViewPipelineMatchesMaterializedPipeline is the zero-copy refactor's
// safety net: the experiment grid run over view-backed fold splits and
// subsets must produce a byte-identical knowledge base to the same run
// with every subset deep-copied (the pre-view behavior). A view is the
// same cells behind an index mapping, so any divergence is a bug in the
// view layer, not an acceptable numerical drift.
func TestViewPipelineMatchesMaterializedPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment grid twice")
	}
	viewKB := runKB(t)

	mining.MaterializeSubsets(true)
	defer mining.MaterializeSubsets(false)
	copyKB := runKB(t)

	if !bytes.Equal(viewKB, copyKB) {
		t.Fatalf("view-backed KB differs from materialized KB:\nview: %d bytes\ncopy: %d bytes",
			len(viewKB), len(copyKB))
	}
}
